// Benchmarks regenerating the paper's tables and figures (one per
// artifact; see DESIGN.md §4 for the experiment index) plus micro-benches
// for the simulation substrate.
//
// The figure benches share one cached experiment suite, so the first bench
// to touch a configuration pays for its simulations and the series are
// attached to the bench output via ReportMetric. Set RCAST_FULL=1 to run
// at the paper's full §4.1 scale instead of the quick profile.
package rcast_test

import (
	"io"
	"math"
	"os"
	"sync"
	"testing"

	"rcast"
	"rcast/internal/experiments"
	"rcast/internal/geom"
	"rcast/internal/mobility"
	"rcast/internal/phy"
	"rcast/internal/scenario"
	"rcast/internal/sim"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		profile := experiments.Quick()
		if os.Getenv("RCAST_FULL") == "1" {
			profile = experiments.Paper()
		}
		suite = experiments.NewSuite(profile, benchOutput())
	})
	return suite
}

func benchOutput() io.Writer {
	if os.Getenv("RCAST_BENCH_VERBOSE") == "1" {
		return os.Stdout
	}
	return io.Discard
}

// BenchmarkTable1ProtocolBehavior regenerates Table 1: the protocol
// behaviour of 802.11 / ODPM / Rcast.
func BenchmarkTable1ProtocolBehavior(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.AwakeFraction, r.Scheme.String()+"_awake")
	}
}

// BenchmarkFig5PerNodeEnergy regenerates Fig. 5: per-node energy curves
// sorted ascending for the four (rate, mobility) panels.
func BenchmarkFig5PerNodeEnergy(b *testing.B) {
	s := sharedSuite()
	var panels []experiments.Fig5Panel
	for i := 0; i < b.N; i++ {
		var err error
		panels, err = s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
	}
	p := panels[0] // low rate, mobile
	for sch, curve := range p.Curves {
		b.ReportMetric(curve[len(curve)-1], sch.String()+"_maxJ")
	}
}

// BenchmarkFig6EnergyVariance regenerates Fig. 6: variance of per-node
// energy vs packet rate, mobile and static.
func BenchmarkFig6EnergyVariance(b *testing.B) {
	s := sharedSuite()
	var points []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCorner(b, points, func(p experiments.SweepPoint) float64 { return p.EnergyVariance }, "varJ")
}

// BenchmarkFig7EnergyPDREPB regenerates Fig. 7: total energy, packet
// delivery ratio and energy-per-bit vs packet rate.
func BenchmarkFig7EnergyPDREPB(b *testing.B) {
	s := sharedSuite()
	var points []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCorner(b, points, func(p experiments.SweepPoint) float64 { return p.TotalJoules }, "J")
	reportCorner(b, points, func(p experiments.SweepPoint) float64 { return p.PDR }, "pdr")
}

// BenchmarkFig8DelayOverhead regenerates Fig. 8: average delay and
// normalized routing overhead vs packet rate.
func BenchmarkFig8DelayOverhead(b *testing.B) {
	s := sharedSuite()
	var points []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCorner(b, points, func(p experiments.SweepPoint) float64 { return p.AvgDelaySec }, "delay_s")
	reportCorner(b, points, func(p experiments.SweepPoint) float64 { return p.NormalizedOverhead }, "nro")
}

// BenchmarkFig9RoleNumber regenerates Fig. 9: role number vs per-node
// energy scatter digests.
func BenchmarkFig9RoleNumber(b *testing.B) {
	s := sharedSuite()
	var panels []experiments.Fig9Panel
	for i := 0; i < b.N; i++ {
		var err error
		panels, err = s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range panels {
		if p.Rate == experiments.Quick().HighRate {
			b.ReportMetric(p.RoleMax, p.Scheme.String()+"_roleMax")
		}
	}
}

// BenchmarkAblationOverhearPolicies regenerates ablation A1: the §3.2
// overhearing-decision factors.
func BenchmarkAblationOverhearPolicies(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.PolicyResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.AblationPolicies()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.TotalJoules, r.Policy+"_J")
	}
}

// BenchmarkAblationOverhearingLevels regenerates ablation A2: the Fig. 2
// no / unconditional / randomized overhearing taxonomy.
func BenchmarkAblationOverhearingLevels(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.LevelResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.AblationLevels()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.TotalJoules, r.Scheme.String()+"_J")
	}
}

// BenchmarkAblationBroadcastRcast regenerates ablation A3: the §5
// broadcast-Rcast RREQ damping extension.
func BenchmarkAblationBroadcastRcast(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.GossipResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.AblationGossip()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := "flood"
		if r.Gossip {
			name = "gossip"
		}
		b.ReportMetric(r.RREQTx, name+"_rreq")
	}
}

// BenchmarkAblationCacheStrategies regenerates ablation A4: DSR cache
// strategies (capacity, Hu & Johnson timeouts) under limited overhearing.
func BenchmarkAblationCacheStrategies(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.CacheResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.AblationCacheStrategies()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PDR, "pdr_cap"+itoa(r.Capacity)+"_life"+itoa(int(r.Lifetime.Seconds())))
	}
}

// BenchmarkAblationLifetime regenerates ablation A5: network lifetime with
// finite batteries.
func BenchmarkAblationLifetime(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.LifetimeResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.AblationLifetime()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.DeadNodes), r.Scheme.String()+"_dead")
	}
}

// BenchmarkAblationRoutingProtocols regenerates ablation A6: DSR vs AODV.
func BenchmarkAblationRoutingProtocols(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.RoutingResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.AblationRouting()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Scheme == scenario.SchemeRcast && !r.Hello {
			b.ReportMetric(r.Overhead, r.Routing.String()+"_nro")
		}
	}
}

// BenchmarkAblationATIMReliability regenerates ablation A7: the paper's
// §4.1 reliable-ATIM assumption vs a slotted contention model.
func BenchmarkAblationATIMReliability(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.ATIMResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.AblationATIM()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Contention {
			b.ReportMetric(r.PDR, "contention_pdr_r"+itoa(int(r.Rate*10)))
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func reportCorner(b *testing.B, points []experiments.SweepPoint, get func(experiments.SweepPoint) float64, unit string) {
	b.Helper()
	low := sharedSuiteProfile().LowRate
	for _, p := range points {
		if p.Rate == low && !p.Static {
			b.ReportMetric(get(p), p.Scheme.String()+"_"+unit)
		}
	}
}

func sharedSuiteProfile() experiments.Profile {
	if os.Getenv("RCAST_FULL") == "1" {
		return experiments.Paper()
	}
	return experiments.Quick()
}

// --- substrate micro/macro benchmarks ---

// BenchmarkFullRunRcast measures one complete small Rcast simulation per
// iteration (25 nodes, 40 simulated seconds).
func BenchmarkFullRunRcast(b *testing.B) {
	benchmarkFullRun(b, rcast.SchemeRcast)
}

// BenchmarkFullRunRcastTraced is BenchmarkFullRunRcast with a packet-
// lifecycle trace streaming to a discarded NDJSON writer — the worst-case
// cost of enabling tracing. Compare against BenchmarkFullRunRcast for the
// overhead figure quoted in DESIGN.md §11.
func BenchmarkFullRunRcastTraced(b *testing.B) {
	cfg := rcast.PaperDefaults()
	cfg.Scheme = rcast.SchemeRcast
	cfg.Nodes = 25
	cfg.FieldW = 750
	cfg.Connections = 5
	cfg.Duration = 40 * rcast.Second
	cfg.Pause = 20 * rcast.Second
	cfg.Trace = rcast.NewTraceWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := rcast.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Originated == 0 {
			b.Fatal("no traffic")
		}
	}
}

// BenchmarkFullRunAlwaysOn measures one complete small 802.11 simulation
// per iteration.
func BenchmarkFullRunAlwaysOn(b *testing.B) {
	benchmarkFullRun(b, rcast.SchemeAlwaysOn)
}

// BenchmarkFullRunODPM measures one complete small ODPM simulation per
// iteration.
func BenchmarkFullRunODPM(b *testing.B) {
	benchmarkFullRun(b, rcast.SchemeODPM)
}

func benchmarkFullRun(b *testing.B, scheme rcast.Scheme) {
	cfg := rcast.PaperDefaults()
	cfg.Scheme = scheme
	cfg.Nodes = 25
	cfg.FieldW = 750
	cfg.Connections = 5
	cfg.Duration = 40 * rcast.Second
	cfg.Pause = 20 * rcast.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := rcast.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Originated == 0 {
			b.Fatal("no traffic")
		}
	}
}

// BenchmarkChannelTransmit measures one broadcast through the channel at
// fixed node density (the paper's ~4500 m²/node) for growing node counts.
// With the spatial grid, cost per transmission tracks the neighbor count,
// not the population, so ns/op should stay roughly flat across sizes.
func BenchmarkChannelTransmit(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			// Square field scaled to hold n nodes at paper density.
			side := math.Sqrt(4500 * float64(n))
			sched := sim.NewScheduler()
			ch := NewBenchChannel(sched, 250, n, side)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := ch.RadioOf(phy.NodeID(i % n))
				ch.Transmit(tx, phy.Frame{From: tx.ID(), To: phy.Broadcast, Bytes: 512}, 2)
				sched.Run()
			}
		})
	}
}

// NewBenchChannel builds a grid-enabled channel with n waypoint-mobile
// radios spread over a side×side field.
func NewBenchChannel(sched *sim.Scheduler, rangeM float64, n int, side float64) *phy.Channel {
	ch := phy.NewChannel(sched, rangeM)
	const maxSpeed = 20.0
	ch.SetMotionBound(maxSpeed)
	field := geom.Rect{W: side, H: side}
	for i := 0; i < n; i++ {
		rng := sim.Stream(int64(i+1), "bench-transmit")
		mob := mobility.NewWaypoint(mobility.WaypointConfig{
			Field:    field,
			MinSpeed: 1,
			MaxSpeed: maxSpeed,
			Start:    geom.Point{X: side * rng.Float64(), Y: side * rng.Float64()},
		}, rng)
		ch.AddRadio(phy.NodeID(i), mob)
	}
	return ch
}

// BenchmarkSimulatedSecondsPerSecond reports the simulator's time dilation
// at paper density: how many simulated seconds one wall-clock second buys.
func BenchmarkSimulatedSecondsPerSecond(b *testing.B) {
	cfg := scenario.PaperDefaults()
	cfg.Duration = 30 * rcast.Second
	cfg.Pause = 15 * rcast.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := scenario.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	simSeconds := cfg.Duration.Seconds() * float64(b.N)
	b.ReportMetric(simSeconds/b.Elapsed().Seconds(), "simsec/s")
}
