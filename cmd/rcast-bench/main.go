// Command rcast-bench regenerates the paper's tables and figures as text
// series (see DESIGN.md §4 for the experiment index).
//
// Examples:
//
//	rcast-bench                    # quick profile, every figure
//	rcast-bench -profile paper     # full §4.1 scale (tens of minutes)
//	rcast-bench -only fig7,fig8    # selected figures
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"rcast/internal/experiments"
	"rcast/internal/fault"
	"rcast/internal/profiling"
	"rcast/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcast-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rcast-bench", flag.ContinueOnError)
	var (
		profileName = fs.String("profile", "quick", "experiment profile: quick or paper")
		only        = fs.String("only", "", "comma-separated subset: table1,fig5,fig6,fig7,fig8,fig9,a1,a2,a3,a4,a5,a6,a7,a8,a9,a10")
		reps        = fs.Int("reps", 0, "override replication count (0 = profile default)")
		csvDir      = fs.String("csv", "", "also write sweep/fig5/fig9 series as CSV into this directory")
		workers     = fs.Int("workers", 0, "parallel simulation workers (0 = all CPUs, 1 = serial)")
		auditOn     = fs.Bool("audit", false, "run every simulation under the cross-layer invariant audit")
		faultsName  = fs.String("faults", "", "fault preset applied to every run: "+strings.Join(fault.PresetNames(), ", "))
		traceFile   = fs.String("trace", "", "write packet-lifecycle events for every run as NDJSON to this file (forces serial execution)")
		timeout     = fs.Duration("timeout", 0, "wall-clock budget for the whole suite (0 = unlimited); an expired budget aborts mid-simulation")
		cpuProfile  = fs.String("cpuprofile", "", "write a pprof CPU profile of the suite to this file")
		memProfile  = fs.String("memprofile", "", "write a pprof allocation profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopCPU, err := profiling.StartCPU(*cpuProfile)
	if err != nil {
		return err
	}
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, "rcast-bench:", err)
		}
	}()

	var p experiments.Profile
	switch *profileName {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.Paper()
	default:
		return fmt.Errorf("unknown profile %q (want quick or paper)", *profileName)
	}
	if *reps > 0 {
		p.Reps = *reps
	}

	s := experiments.NewSuite(p, os.Stdout)
	s.SetWorkers(*workers)
	s.SetAudit(*auditOn)
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		s.SetContext(ctx)
	}
	if *faultsName != "" {
		plan, err := fault.Preset(*faultsName)
		if err != nil {
			return err
		}
		s.SetFaults(plan)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		// Buffer the NDJSON stream: a full suite emits hundreds of
		// thousands of events and one write syscall per line dominates
		// the tracing overhead otherwise.
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		s.SetTrace(trace.NewWriter(bw))
	}
	start := time.Now()
	if err := runFigures(s, *only); err != nil {
		return err
	}
	if *csvDir != "" {
		if err := writeCSVs(s, *csvDir); err != nil {
			return fmt.Errorf("csv: %w", err)
		}
	}
	elapsed := time.Since(start)
	effective := *workers
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	// The timing line goes to stderr so stdout stays byte-identical for
	// every worker count.
	fmt.Fprintf(os.Stderr, "rcast-bench: %d simulation runs in %s (%.2f runs/s, workers=%d)\n",
		s.SimRuns(), elapsed.Round(time.Millisecond),
		float64(s.SimRuns())/elapsed.Seconds(), effective)
	return nil
}

// runFigures executes the selected generators (or all of them).
func runFigures(s *experiments.Suite, only string) error {
	if only == "" {
		return s.All()
	}
	steps := map[string]func() error{
		"table1": func() error { _, err := s.Table1(); return err },
		"fig5":   func() error { _, err := s.Fig5(); return err },
		"fig6":   func() error { _, err := s.Fig6(); return err },
		"fig7":   func() error { _, err := s.Fig7(); return err },
		"fig8":   func() error { _, err := s.Fig8(); return err },
		"fig9":   func() error { _, err := s.Fig9(); return err },
		"a1":     func() error { _, err := s.AblationPolicies(); return err },
		"a2":     func() error { _, err := s.AblationLevels(); return err },
		"a3":     func() error { _, err := s.AblationGossip(); return err },
		"a4":     func() error { _, err := s.AblationCacheStrategies(); return err },
		"a5":     func() error { _, err := s.AblationLifetime(); return err },
		"a6":     func() error { _, err := s.AblationRouting(); return err },
		"a7":     func() error { _, err := s.AblationATIM(); return err },
		"a8":     func() error { _, err := s.AblationFaults(); return err },
		"a9":     func() error { _, err := s.AblationChannels(); return err },
		"a10":    func() error { _, err := s.AblationTxPower(); return err },
	}
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		step, ok := steps[name]
		if !ok {
			return fmt.Errorf("unknown figure %q", name)
		}
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

// writeCSVs exports the machine-readable series next to the text report.
func writeCSVs(s *experiments.Suite, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	exports := []struct {
		name  string
		write func(w io.Writer) error
	}{
		{name: "sweep.csv", write: s.WriteSweepCSV},
		{name: "fig5.csv", write: s.WriteFig5CSV},
		{name: "fig9.csv", write: s.WriteFig9CSV},
	}
	for _, e := range exports {
		f, err := os.Create(filepath.Join(dir, e.name))
		if err != nil {
			return err
		}
		if err := e.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
