package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rcast/internal/trace"
)

func TestRunSelectedQuickFigure(t *testing.T) {
	// table1 on the quick profile runs three small simulation batches.
	if err := run([]string{"-only", "table1", "-reps", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-profile", "bogus"}); err == nil {
		t.Error("accepted unknown profile")
	}
	if err := run([]string{"-only", "fig99"}); err == nil {
		t.Error("accepted unknown figure")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("accepted unknown flag")
	}
}

func TestRunTimeout(t *testing.T) {
	if err := run([]string{"-only", "table1", "-reps", "1", "-timeout", "1h"}); err != nil {
		t.Fatalf("ample timeout failed the suite: %v", err)
	}
	err := run([]string{"-only", "table1", "-reps", "1", "-timeout", "1ms"})
	if err == nil || !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("tight timeout err = %v, want canceled suite", err)
	}
}

// TestRunWritesTraceArtifact exercises the -trace flag end to end: the
// suite must leave a parseable, non-empty NDJSON artifact behind.
func TestRunWritesTraceArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.jsonl")
	if err := run([]string{"-only", "table1", "-reps", "1", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := trace.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("traced suite produced an empty artifact")
	}
}
