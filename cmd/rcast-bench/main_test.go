package main

import (
	"testing"
)

func TestRunSelectedQuickFigure(t *testing.T) {
	// table1 on the quick profile runs three small simulation batches.
	if err := run([]string{"-only", "table1", "-reps", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-profile", "bogus"}); err == nil {
		t.Error("accepted unknown profile")
	}
	if err := run([]string{"-only", "fig99"}); err == nil {
		t.Error("accepted unknown figure")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("accepted unknown flag")
	}
}
