// Command rcast-serve runs the simulator as a long-lived HTTP daemon:
// scenario jobs arrive as JSON, pass through a bounded admission queue
// with backpressure, execute with per-job deadlines and cooperative
// cancellation, and memoize results in a content-addressed cache so an
// identical submission is answered without recomputing. See DESIGN.md
// §10 for the API and the determinism contract.
//
// With -coordinator the daemon becomes the head of a fleet: parameter
// sweeps (POST /api/v1/sweeps) are expanded into content-addressed cells
// and sharded across downstream rcast-serve workers with work-stealing
// dispatch, bounded retry on worker loss, and peer cache fills. Results
// are byte-identical to running the same cells locally or through the
// CLI tools.
//
// Examples:
//
//	rcast-serve -addr :8321
//	rcast-serve -addr :8321 -workers 4 -queue 32 -cache 512
//	rcast-serve -addr :8320 -coordinator http://sim-a:8321,http://sim-b:8321
//
//	curl -s localhost:8321/api/v1/jobs -d '{"scheme":"Rcast","reps":3}'
//	curl -s localhost:8321/api/v1/jobs/job-1
//	curl -s localhost:8321/api/v1/jobs/job-1/result
//	curl -s localhost:8320/api/v1/sweeps -d '{"schemes":["802.11","Rcast"],"pauses_sec":[0,300,-1]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rcast/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcast-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rcast-serve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8321", "listen address")
		workers      = fs.Int("workers", 2, "concurrent job executors")
		queue        = fs.Int("queue", 16, "admission queue depth (full queue answers 429)")
		simWorkers   = fs.Int("sim-workers", 1, "per-job replication fan-out (results are identical for any value)")
		cacheEntries = fs.Int("cache", 256, "result cache capacity (entries)")
		defTimeout   = fs.Duration("default-timeout", 10*time.Minute, "per-job deadline when the request sets none")
		maxTimeout   = fs.Duration("max-timeout", time.Hour, "ceiling on requested per-job deadlines")
		drainTimeout = fs.Duration("drain-timeout", 5*time.Minute, "how long a shutdown signal waits for admitted jobs before force-canceling")
		coordinator  = fs.String("coordinator", "", "comma-separated rcast-serve worker URLs; sweeps shard across this fleet")
		fleetRetries = fs.Int("fleet-retries", 3, "per-cell retry budget after a fleet worker is lost")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		SimWorkers:     *simWorkers,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
	}
	var srv *serve.Server
	if *coordinator != "" {
		var urls []string
		for _, u := range strings.Split(*coordinator, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
		var err error
		srv, err = serve.NewCoordinator(opts, serve.FleetOptions{
			Workers:    urls,
			MaxRetries: *fleetRetries,
		})
		if err != nil {
			return err
		}
	} else {
		srv = serve.New(opts)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.SetPrefix("rcast-serve: ")
	log.SetFlags(log.LstdFlags)
	mode := "standalone"
	if *coordinator != "" {
		mode = fmt.Sprintf("coordinator fleet=%s", *coordinator)
	}
	log.Printf("listening on %s (workers=%d queue=%d cache=%d %s)", ln.Addr(), *workers, *queue, *cacheEntries, mode)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case got := <-sig:
		log.Printf("received %v, draining (admitted jobs run to completion, up to %s)", got, *drainTimeout)
	}

	// Graceful drain: stop admitting first, so /healthz reports draining
	// and submissions 503 while the queue empties; then close the listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain expired: force-canceled running jobs (%v)", err)
	} else {
		log.Printf("drained cleanly")
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
