// Command rcast-sim runs one MANET simulation and prints its metrics.
//
// Examples:
//
//	rcast-sim -scheme Rcast -rate 0.4 -pause 600s
//	rcast-sim -scheme ODPM -rate 2.0 -static -nodes 100 -duration 1125s
//	rcast-sim -scheme Rcast -per-node   # dump per-node energy and roles
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"rcast"
	"rcast/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcast-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rcast-sim", flag.ContinueOnError)
	var (
		schemeName = fs.String("scheme", "Rcast", "scheme: 802.11, PSM, PSM-no-overhear, ODPM, Rcast")
		policyName = fs.String("policy", "", "overhearing policy: "+strings.Join(rcast.PolicyNames(), ", ")+" (default: the scheme's own)")
		nodes      = fs.Int("nodes", 100, "number of nodes")
		fieldW     = fs.Float64("field-w", 1500, "field width (m)")
		fieldH     = fs.Float64("field-h", 300, "field height (m)")
		rng        = fs.Float64("range", 250, "radio range (m)")
		txPower    = fs.Float64("tx-power", 0, "transmit power offset in dB from nominal (scales range by 10^(dB/40), energy by 10^(dB/10))")
		conns      = fs.Int("connections", 20, "CBR connections")
		rate       = fs.Float64("rate", 0.4, "packets per second per connection")
		size       = fs.Int("size", 512, "payload bytes per packet")
		duration   = fs.Duration("duration", 1125*time.Second, "simulated time")
		pause      = fs.Duration("pause", 600*time.Second, "random waypoint pause time")
		static     = fs.Bool("static", false, "static scenario (pause = duration)")
		speed      = fs.Float64("speed", 20, "maximum node speed (m/s)")
		channel    = fs.String("channel", "disk", "propagation model: disk, shadowing, fading")
		shadowSig  = fs.Float64("shadow-sigma", 4, "log-normal shadowing std-dev in dB (with -channel shadowing)")
		mobModel   = fs.String("mobility", "waypoint", "mobility model: waypoint, gauss-markov, group")
		groupSize  = fs.Int("group-size", 4, "nodes per group (with -mobility group)")
		groupRad   = fs.Float64("group-radius", 50, "group wander radius in metres (with -mobility group)")
		seed       = fs.Int64("seed", 1, "random seed")
		reps       = fs.Int("reps", 1, "replications (per-rep seeds mixed from -seed)")
		gossip     = fs.Float64("gossip", 0, "broadcast-Rcast fanout (0 disables)")
		perNode    = fs.Bool("per-node", false, "dump per-node energy and role numbers")
		routing    = fs.String("routing", "DSR", "routing protocol: DSR or AODV")
		battery    = fs.Float64("battery", 0, "battery capacity in joules (0 = unlimited)")
		traceFile  = fs.String("trace", "", "write NDJSON event trace to this file")
		replayFile = fs.String("replay", "", "replay a recorded NDJSON trace: re-execute with its decisions injected and verify byte-identity (requires the recording run's flags; -reps must be 1)")
		workers    = fs.Int("workers", 0, "parallel replication workers (0 = all CPUs, 1 = serial)")
		auditOn    = fs.Bool("audit", false, "run under the cross-layer invariant audit (violations abort the run)")
		faultsName = fs.String("faults", "", "fault preset: "+strings.Join(rcast.FaultPresetNames(), ", "))
		timeout    = fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = unlimited); an expired budget aborts mid-simulation")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof allocation profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopCPU, err := profiling.StartCPU(*cpuProfile)
	if err != nil {
		return err
	}
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, "rcast-sim:", err)
		}
	}()

	scheme, err := rcast.ParseScheme(*schemeName)
	if err != nil {
		return err
	}
	cfg := rcast.PaperDefaults()
	cfg.Scheme = scheme
	cfg.PolicyName = *policyName
	cfg.Nodes = *nodes
	cfg.FieldW, cfg.FieldH = *fieldW, *fieldH
	cfg.RangeM = *rng
	cfg.TxPowerDBm = *txPower
	cfg.Connections = *conns
	cfg.PacketRate = *rate
	cfg.PacketBytes = *size
	cfg.Duration = rcast.Seconds(duration.Seconds())
	cfg.Pause = rcast.Seconds(pause.Seconds())
	cfg.MaxSpeed = *speed
	cfg.Channel = *channel
	cfg.ShadowSigmaDB = *shadowSig
	cfg.Mobility = *mobModel
	cfg.GroupSize = *groupSize
	cfg.GroupRadiusM = *groupRad
	cfg.Seed = *seed
	cfg.GossipFanout = *gossip
	cfg.BatteryJoules = *battery
	cfg.Audit = *auditOn
	if plan, err := rcast.FaultPreset(*faultsName); err != nil {
		return err
	} else if plan != nil {
		cfg.Faults = plan
	}
	if *static {
		cfg.Pause = cfg.Duration
	}
	switch *routing {
	case "DSR":
		cfg.Routing = rcast.RoutingDSR
	case "AODV":
		cfg.Routing = rcast.RoutingAODV
	default:
		return fmt.Errorf("unknown routing %q (want DSR or AODV)", *routing)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		// Buffered: one write syscall per traced event would dominate the
		// run otherwise.
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		cfg.Trace = rcast.NewTraceWriter(bw)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var agg *rcast.Aggregate
	if *replayFile != "" {
		// Replay mode: re-execute the recorded run with its decision
		// stream injected. Replication 0 runs with cfg.Seed itself, so a
		// single-replication replay matches the recording run exactly;
		// more than one replication has no recorded counterpart.
		if *reps != 1 {
			return fmt.Errorf("-replay requires -reps 1 (a trace records one run)")
		}
		f, err := os.Open(*replayFile)
		if err != nil {
			return err
		}
		events, err := rcast.ReadTraceEvents(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			return err
		}
		res, _, err := rcast.Replay(cfg, events)
		if err != nil {
			return err
		}
		agg = rcast.AggregateResults([]*rcast.Result{res})
	} else {
		var err error
		agg, err = rcast.RunReplicationsContext(ctx, cfg, *reps, *workers)
		if err != nil {
			return err
		}
	}
	res := agg.Results[0]

	fmt.Printf("scheme            %v\n", scheme)
	fmt.Printf("nodes             %d on %.0fx%.0f m, range %.0f m\n", cfg.Nodes, cfg.FieldW, cfg.FieldH, cfg.RangeM)
	fmt.Printf("traffic           %d CBR x %.2f pkt/s x %d B, %.0f s\n",
		cfg.Connections, cfg.PacketRate, cfg.PacketBytes, cfg.Duration.Seconds())
	fmt.Printf("replications      %d\n", *reps)
	// Printed only off the defaults so default invocations keep their
	// historical byte-identical stdout.
	if cfg.Channel != "disk" || cfg.Mobility != "waypoint" {
		fmt.Printf("models            channel %s, mobility %s\n", cfg.Channel, cfg.Mobility)
	}
	if cfg.PolicyName != "" || cfg.TxPowerDBm != 0 {
		fmt.Printf("overhearing       policy %s, tx power %+.1f dB\n", cfg.EffectivePolicyName(), cfg.TxPowerDBm)
	}
	fmt.Println()
	fmt.Printf("packet delivery   %.2f%% ± %.2f\n", 100*agg.PDR.Mean(), 100*agg.PDR.CI95())
	fmt.Printf("avg delay         %.3f s\n", agg.AvgDelaySec.Mean())
	fmt.Printf("total energy      %.0f J (%.1f J/node)\n",
		agg.TotalJoules.Mean(), agg.TotalJoules.Mean()/float64(cfg.Nodes))
	fmt.Printf("energy variance   %.1f J^2\n", agg.EnergyVariance.Mean())
	fmt.Printf("energy per bit    %.3e J/bit\n", agg.EnergyPerBit.Mean())
	fmt.Printf("routing overhead  %.2f control tx per delivered packet\n", agg.NormalizedOverhead.Mean())
	fmt.Printf("delay p50/p95     %.3f / %.3f s, mean hops %.2f\n",
		res.DelayP50Sec, res.DelayP95Sec, res.MeanHops)
	if cfg.BatteryJoules > 0 {
		fmt.Printf("network lifetime  first death %.0f s, %d/%d nodes dead\n",
			res.FirstDeath.Seconds(), res.DeadNodes, cfg.Nodes)
	}
	if cfg.Faults != nil {
		fmt.Printf("fault injection   %d crashes, %d recoveries, %d pkts flushed, %d frames burst-lost\n",
			res.NodeCrashes, res.NodeRecoveries, res.CrashFlushedPackets, res.Channel.FaultLost)
	}
	fmt.Printf("drops             %v\n", res.Drops)
	fmt.Printf("channel           %d tx, %d collisions, %d missed asleep\n",
		res.Channel.Transmissions, res.Channel.Collisions, res.Channel.MissedAsleep)
	if cfg.Channel != "disk" {
		fmt.Printf("channel losses    %d chan-lost\n", res.Channel.ChannelLost)
	}

	if *perNode {
		fmt.Println("\nnode  joules    role")
		type row struct {
			id     int
			joules float64
			role   float64
		}
		rows := make([]row, len(res.PerNodeJoules))
		for i := range rows {
			rows[i] = row{id: i, joules: res.PerNodeJoules[i], role: res.RoleNumbers[i]}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].joules < rows[j].joules })
		for _, r := range rows {
			fmt.Printf("%4d  %8.1f  %6.0f\n", r.id, r.joules, r.role)
		}
	}
	return nil
}
