package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tinyArgs(extra ...string) []string {
	base := []string{
		"-nodes", "20", "-field-w", "600", "-connections", "4",
		"-duration", "20s", "-pause", "10s", "-rate", "0.5",
	}
	return append(base, extra...)
}

func TestRunDefaultScheme(t *testing.T) {
	if err := run(tinyArgs()); err != nil {
		t.Fatal(err)
	}
}

func TestRunEverySchemeAndRouting(t *testing.T) {
	for _, scheme := range []string{"802.11", "PSM", "PSM-no-overhear", "ODPM", "Rcast"} {
		if err := run(tinyArgs("-scheme", scheme)); err != nil {
			t.Fatalf("scheme %s: %v", scheme, err)
		}
	}
	if err := run(tinyArgs("-routing", "AODV")); err != nil {
		t.Fatal(err)
	}
}

func TestRunStaticPerNodeBatteryReps(t *testing.T) {
	if err := run(tinyArgs("-static", "-per-node", "-battery", "15", "-reps", "2")); err != nil {
		t.Fatal(err)
	}
}

func TestRunGossip(t *testing.T) {
	if err := run(tinyArgs("-gossip", "3")); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	if err := run(tinyArgs("-trace", path)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"originate"`) {
		t.Fatal("trace file missing originate events")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-scheme", "bogus"}); err == nil {
		t.Error("accepted unknown scheme")
	}
	if err := run([]string{"-routing", "bogus"}); err == nil {
		t.Error("accepted unknown routing")
	}
	if err := run([]string{"-nodes", "1"}); err == nil {
		t.Error("accepted one-node network")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("accepted unknown flag")
	}
	if err := run(tinyArgs("-trace", filepath.Join(t.TempDir(), "no", "such", "dir", "t"))); err == nil {
		t.Error("accepted unwritable trace path")
	}
}

func TestRunTimeout(t *testing.T) {
	if err := run(tinyArgs("-timeout", "5m")); err != nil {
		t.Fatalf("ample timeout failed the run: %v", err)
	}
	err := run([]string{"-nodes", "100", "-duration", "1125s", "-timeout", "1ms"})
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("tight timeout err = %v, want canceled run", err)
	}
}

// TestRunReplayRoundTrip records a run, replays it from the trace, and
// requires the re-emitted trace to be byte-identical to the recording.
func TestRunReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec := filepath.Join(dir, "rec.ndjson")
	rep := filepath.Join(dir, "rep.ndjson")
	if err := run(tinyArgs("-trace", rec)); err != nil {
		t.Fatal(err)
	}
	if err := run(tinyArgs("-replay", rec, "-trace", rep)); err != nil {
		t.Fatalf("replay: %v", err)
	}
	a, err := os.ReadFile(rec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(a), `"kind":"lottery"`) {
		t.Fatal("recording carries no lottery decisions; cell too small")
	}
	if string(a) != string(b) {
		t.Fatal("replayed trace differs from the recording")
	}
}

func TestRunReplayRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	rec := filepath.Join(dir, "rec.ndjson")
	if err := run(tinyArgs("-trace", rec)); err != nil {
		t.Fatal(err)
	}
	if err := run(tinyArgs("-replay", rec, "-reps", "2")); err == nil {
		t.Error("accepted -replay with -reps 2")
	}
	if err := run(tinyArgs("-replay", filepath.Join(dir, "missing.ndjson"))); err == nil {
		t.Error("accepted a missing replay file")
	}
	// Replaying under a different seed must be detected as divergence.
	if err := run(tinyArgs("-replay", rec, "-seed", "2")); err == nil {
		t.Error("replay under the wrong seed succeeded")
	}
}
