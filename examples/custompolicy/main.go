// Custom policy: the overhearing decision is a small pluggable interface
// (paper §3.2 lists four candidate factors; §5 leaves them as future work).
// This example implements a user-defined policy — a deterministic duty
// cycle that overhears every k-th opportunity — and compares it against
// the built-ins.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rcast"
)

// dutyCycle overhears exactly one in every Period randomized
// advertisements, a deterministic alternative to the paper's coin flip.
type dutyCycle struct {
	Period int
	count  int
}

func (d *dutyCycle) AdvertiseLevel(c rcast.Class) rcast.Level {
	if c == rcast.ClassRERR {
		return rcast.LevelUnconditional
	}
	if c == rcast.ClassData || c == rcast.ClassRREP {
		return rcast.LevelRandomized
	}
	return rcast.LevelUnconditional
}

func (d *dutyCycle) ShouldOverhear(_ *rand.Rand, lvl rcast.Level, _ rcast.ListenContext) bool {
	switch lvl {
	case rcast.LevelUnconditional:
		return true
	case rcast.LevelRandomized:
		d.count++
		return d.count%d.Period == 0
	default:
		return false
	}
}

func (d *dutyCycle) Name() string { return fmt.Sprintf("duty-1/%d", d.Period) }

func main() {
	fmt.Println("Custom overhearing policies on the Rcast stack (40 nodes, 200 s)")
	fmt.Printf("%-12s %10s %8s %10s\n", "policy", "energy(J)", "PDR", "overhead")

	policies := []rcast.Policy{
		rcast.PolicyRcast,
		rcast.PolicySenderID,
		rcast.PolicyCombined,
		&dutyCycle{Period: 8},
	}
	for _, pol := range policies {
		cfg := rcast.PaperDefaults()
		cfg.Scheme = rcast.SchemeRcast
		cfg.Policy = pol
		cfg.Nodes = 40
		cfg.FieldW = 900
		cfg.Connections = 8
		cfg.PacketRate = 0.5
		cfg.Duration = 200 * rcast.Second
		cfg.Pause = 100 * rcast.Second

		res, err := rcast.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.0f %7.1f%% %10.2f\n",
			pol.Name(), res.TotalJoules, 100*res.PDR, res.NormalizedOverhead)
	}
}
