// Energy balance and network lifetime: the paper's second claim is that
// Rcast spreads energy consumption more evenly than ODPM (Figs. 5/6/9).
// This example runs both schemes, prints the per-node energy distribution,
// and estimates network lifetime as the time until the hottest node would
// drain a fixed battery — the intro's motivation for energy balance.
package main

import (
	"fmt"
	"log"

	"rcast"
)

const batteryJoules = 800 // hypothetical battery budget per node

func main() {
	fmt.Println("Energy balance, 60 nodes, 12 flows at 1.0 pkt/s, 400 s, static")
	fmt.Printf("%-8s %8s %8s %8s %8s %10s %14s\n",
		"scheme", "min(J)", "med(J)", "max(J)", "var", "hottest-W", "lifetime(s)")

	for _, scheme := range []rcast.Scheme{rcast.SchemeODPM, rcast.SchemeRcast} {
		cfg := rcast.PaperDefaults()
		cfg.Scheme = scheme
		cfg.Nodes = 60
		cfg.FieldW = 1200
		cfg.Connections = 12
		cfg.PacketRate = 1.0
		cfg.Duration = 400 * rcast.Second
		cfg.Pause = cfg.Duration // static scenario: balance differs most

		res, err := rcast.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}

		lo, med, hi := distribution(res.PerNodeJoules)
		hottestW := hi / cfg.Duration.Seconds()
		lifetime := batteryJoules / hottestW
		fmt.Printf("%-8v %8.1f %8.1f %8.1f %8.1f %10.3f %14.0f\n",
			scheme, lo, med, hi, res.EnergyVariance, hottestW, lifetime)
	}

	fmt.Println("\nThe hottest node bounds network lifetime: once a relay dies the")
	fmt.Println("topology degrades. Rcast's randomized overhearing avoids the")
	fmt.Println("preferential attachment that overloads a few ODPM relays (§2.1.3).")
}

func distribution(xs []float64) (lo, med, hi float64) {
	lo, hi = xs[0], xs[0]
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1]
}
