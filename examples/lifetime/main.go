// Network lifetime: give every node the same finite battery and watch the
// network die under each scheme — the paper's introduction argues that
// both device and network lifetime hinge on the power saving mechanism,
// because dead relays take routes down with them.
package main

import (
	"fmt"
	"log"

	"rcast"
)

func main() {
	const (
		duration = 300 * rcast.Second
		battery  = 1.15 * 180 // an always-awake radio dies at t=180 s
	)
	fmt.Printf("Network lifetime, 50 nodes, %.0f J batteries, %.0f s run\n",
		battery, duration.Seconds())
	fmt.Printf("%-16s %14s %11s %8s %10s\n",
		"scheme", "firstDeath(s)", "deadNodes", "PDR", "energy(J)")

	for _, scheme := range []rcast.Scheme{
		rcast.SchemeAlwaysOn, rcast.SchemeODPM, rcast.SchemeRcast,
	} {
		cfg := rcast.PaperDefaults()
		cfg.Scheme = scheme
		cfg.Nodes = 50
		cfg.FieldW = 1000
		cfg.Connections = 10
		cfg.PacketRate = 0.4
		cfg.Duration = duration
		cfg.Pause = duration / 2
		cfg.BatteryJoules = battery

		res, err := rcast.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		first := "-"
		if res.FirstDeath > 0 {
			first = fmt.Sprintf("%.0f", res.FirstDeath.Seconds())
		}
		fmt.Printf("%-16v %14s %8d/%d %7.1f%% %10.0f\n",
			scheme, first, res.DeadNodes, cfg.Nodes, 100*res.PDR, res.TotalJoules)
	}

	fmt.Println("\nEvery always-on node dies at the same instant (the flat energy")
	fmt.Println("profile of Fig. 5 made lethal); ODPM loses its pinned-awake")
	fmt.Println("forwarders; Rcast's balanced duty cycle keeps the fleet alive.")
}
