// Quickstart: run the paper's headline comparison — always-on 802.11,
// ODPM and Rcast — on a reduced network and print the energy/PDR/delay
// trade-off each scheme makes.
package main

import (
	"fmt"
	"log"

	"rcast"
)

func main() {
	fmt.Println("Rcast quickstart: 50 nodes, 10 CBR flows at 0.4 pkt/s, 300 s")
	fmt.Printf("%-16s %10s %8s %10s %12s\n", "scheme", "energy(J)", "PDR", "delay(s)", "J/bit")

	for _, scheme := range rcast.Schemes() {
		cfg := rcast.PaperDefaults()
		cfg.Scheme = scheme
		cfg.Nodes = 50
		cfg.FieldW = 1000
		cfg.Connections = 10
		cfg.PacketRate = 0.4
		cfg.Duration = 300 * rcast.Second
		cfg.Pause = 150 * rcast.Second

		res, err := rcast.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16v %10.0f %7.1f%% %10.3f %12.2e\n",
			scheme, res.TotalJoules, 100*res.PDR, res.AvgDelaySec, res.EnergyPerBit)
	}

	fmt.Println("\nExpected shape (paper §4): 802.11 burns the most energy with the")
	fmt.Println("best delay; Rcast cuts energy sharply for ~half a beacon interval of")
	fmt.Println("extra delay per hop; ODPM sits between them on delay but keeps hot")
	fmt.Println("nodes awake, hurting both total energy and energy balance.")
}
