// Rate sweep: regenerate the shape of the paper's Fig. 7 energy-per-bit
// curves on a reduced network — sweeping the CBR packet rate and watching
// where each scheme's efficiency lands.
package main

import (
	"fmt"
	"log"

	"rcast"
)

func main() {
	rates := []float64{0.2, 0.5, 1.0, 2.0}
	schemes := []rcast.Scheme{rcast.SchemeAlwaysOn, rcast.SchemeODPM, rcast.SchemeRcast}

	fmt.Println("Energy per delivered bit (J/bit) vs packet rate — 40 nodes, 200 s")
	fmt.Printf("%-6s", "rate")
	for _, s := range schemes {
		fmt.Printf("%12v", s)
	}
	fmt.Println()

	for _, rate := range rates {
		fmt.Printf("%-6.1f", rate)
		for _, scheme := range schemes {
			cfg := rcast.PaperDefaults()
			cfg.Scheme = scheme
			cfg.Nodes = 40
			cfg.FieldW = 900
			cfg.Connections = 8
			cfg.PacketRate = rate
			cfg.Duration = 200 * rcast.Second
			cfg.Pause = 100 * rcast.Second

			agg, err := rcast.RunReplications(cfg, 2)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12.2e", agg.EnergyPerBit.Mean())
		}
		fmt.Println()
	}

	fmt.Println("\nEPB falls with rate for every scheme (fixed idle cost amortized")
	fmt.Println("over more bits) and Rcast stays the most efficient throughout —")
	fmt.Println("the paper reports up to 75% less energy per delivered bit than ODPM.")
}
