// Routing comparison: the paper's §1 footnote contrasts DSR (route caches
// fed by overhearing) with AODV (timeout-expiring routing tables, no
// overhearing, periodic hellos). This example runs both protocols on the
// Rcast power-save stack and shows why the paper builds on DSR.
package main

import (
	"fmt"
	"log"

	"rcast"
)

func main() {
	fmt.Println("DSR vs AODV on the Rcast PSM stack — 40 nodes, 8 flows, 0.4 pkt/s, 200 s")
	fmt.Printf("%-18s %8s %10s %10s %12s\n", "routing", "PDR", "overhead", "energy(J)", "ctl packets")

	type variant struct {
		label   string
		routing rcast.Routing
		hello   bool
	}
	for _, v := range []variant{
		{label: "DSR", routing: rcast.RoutingDSR},
		{label: "AODV (no hello)", routing: rcast.RoutingAODV},
		{label: "AODV (hello 1s)", routing: rcast.RoutingAODV, hello: true},
	} {
		cfg := rcast.PaperDefaults()
		cfg.Scheme = rcast.SchemeRcast
		cfg.Routing = v.routing
		cfg.Nodes = 40
		cfg.FieldW = 900
		cfg.Connections = 8
		cfg.PacketRate = 0.4
		cfg.Duration = 200 * rcast.Second
		cfg.Pause = 100 * rcast.Second
		if v.routing == rcast.RoutingAODV && !v.hello {
			cfg.AODV.HelloInterval = 0
		}

		res, err := rcast.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %7.1f%% %10.2f %10.0f %12d\n",
			v.label, 100*res.PDR, res.NormalizedOverhead, res.TotalJoules, res.ControlTx)
	}

	fmt.Println("\nAODV re-floods whenever its 3 s route timeout lapses between")
	fmt.Println("packets, and its hello broadcasts keep PSM neighborhoods awake —")
	fmt.Println("the reasons the paper integrates Rcast with DSR (§1, §2.1).")
}
