module rcast

go 1.22
