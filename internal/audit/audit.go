// Package audit is the simulator's cross-layer invariant checker. The
// paper's headline results are accounting claims — joules, awake-time
// fractions, delivery ratios — so a silent bookkeeping bug anywhere in the
// stack corrupts every figure without failing a test. An Auditor taps the
// observation hooks the lower layers expose (sim.ExecHook,
// phy.DeliveryObserver, mac.Audit, the routing hooks) and verifies,
// continuously during a run and once more at teardown:
//
//   - packet conservation: every originated data packet, identified by
//     (source, flow, sequence), is eventually delivered, dropped with a
//     reason, or still buffered somewhere when the run ends — never lost
//     silently, never terminated before it was originated;
//   - time conservation: per node, AwakeTime + SleepTime equals the powered
//     lifetime (elapsed time, or the depletion instant for a dead battery)
//     and joules decompose exactly into awakeW·awake + sleepW·sleep;
//   - PSM legality: no frame is delivered to a dozing radio, no node sleeps
//     inside an ATIM window, and active-mode horizons and DCF transmit
//     windows only move forward;
//   - scheduler sanity: event timestamps are monotone and cancelled timers
//     never reach the dispatch path.
//
// The checks are hook-shaped so the hot path pays nothing when auditing is
// off: every instrumented layer holds a nil interface/function unless a
// scenario was built with Config.Audit. See DESIGN.md §8 for the invariant
// catalogue and the differential oracles that complement it.
package audit

import (
	"fmt"
	"math"
	"sort"

	"rcast/internal/core"
	"rcast/internal/energy"
	"rcast/internal/metrics"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// NoNode marks a violation not attributable to a single node.
const NoNode phy.NodeID = -2

// Violation is one observed invariant breach.
type Violation struct {
	At     sim.Time
	Node   phy.NodeID // NoNode when not node-specific
	Rule   string     // stable kebab-case identifier, e.g. "pkt-conservation"
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Node == NoNode {
		return fmt.Sprintf("%.6fs [%s] %s", v.At.Seconds(), v.Rule, v.Detail)
	}
	return fmt.Sprintf("%.6fs %v [%s] %s", v.At.Seconds(), v.Node, v.Rule, v.Detail)
}

// Config describes the run being audited.
type Config struct {
	Nodes int
	// BeaconInterval/ATIMWindow enable the PSM-phase checks; zero interval
	// (no coordinator) disables them. BeaconStop is the instant at or after
	// which no beacon fires (the run duration).
	BeaconInterval sim.Time
	ATIMWindow     sim.Time
	BeaconStop     sim.Time
	// MaxRecorded caps stored violations (the count keeps growing past it);
	// <= 0 selects 32.
	MaxRecorded int
}

// PacketKey identifies one application data packet end to end. Copies made
// in flight (forwarding, salvaging) keep the key.
type PacketKey struct {
	Src  phy.NodeID
	Flow uint64
	Seq  uint64
}

func (k PacketKey) String() string {
	return fmt.Sprintf("%v/flow%d/seq%d", k.Src, k.Flow, k.Seq)
}

type pktState uint8

const (
	pktLive pktState = iota + 1
	pktDelivered
	pktDropped
	pktCrashed // flushed from a crashing node's buffers by fault injection
)

// Auditor accumulates invariant state for one run. It is not safe for
// concurrent use; like the rest of a world, it lives on one scheduler.
type Auditor struct {
	cfg Config

	violations []Violation
	count      int

	// Scheduler sanity.
	lastEventAt sim.Time

	// Packet conservation.
	pkts       map[PacketKey]pktState
	originated uint64
	delivered  uint64
	dropped    uint64
	crashed    uint64
	// dupTerminals counts terminal events for already-terminal keys. A
	// known in-flight race produces them legitimately: a unicast data frame
	// is decoded downstream while the MAC ACK back to the sender is lost,
	// so the sender also salvages (or drops) its copy; both copies of the
	// same key then terminate — including a second delivery, since basic
	// DSR/AODV destinations keep no duplicate-suppression state. The count
	// is reported as a diagnostic, not a violation; it bounds exactly how
	// much double-counting the delivery metrics can contain.
	dupTerminals uint64

	// PSM legality.
	amUntil   []sim.Time
	windowEnd []sim.Time

	meters []*energy.Meter
}

// New creates an auditor for a run described by cfg.
func New(cfg Config) *Auditor {
	if cfg.MaxRecorded <= 0 {
		cfg.MaxRecorded = 32
	}
	return &Auditor{
		cfg:       cfg,
		pkts:      make(map[PacketKey]pktState),
		amUntil:   make([]sim.Time, cfg.Nodes),
		windowEnd: make([]sim.Time, cfg.Nodes),
	}
}

// Violations returns the recorded violations in observation order (capped
// at Config.MaxRecorded; Count reports the true total).
func (a *Auditor) Violations() []Violation { return a.violations }

// Count returns the total number of violations observed, recorded or not.
func (a *Auditor) Count() int { return a.count }

// DupTerminals returns how many terminal events hit already-terminal packet
// keys (the in-flight duplication diagnostic; see the field comment).
func (a *Auditor) DupTerminals() uint64 { return a.dupTerminals }

// Crashed returns how many packets terminated by being flushed from a
// crashing node's buffers.
func (a *Auditor) Crashed() uint64 { return a.crashed }

func (a *Auditor) violatef(at sim.Time, node phy.NodeID, rule, format string, args ...any) {
	a.count++
	if len(a.violations) >= a.cfg.MaxRecorded {
		return
	}
	a.violations = append(a.violations, Violation{
		At: at, Node: node, Rule: rule, Detail: fmt.Sprintf(format, args...),
	})
}

// --- scheduler sanity (sim.ExecHook) ---

// SchedulerEvent implements sim.ExecHook.
func (a *Auditor) SchedulerEvent(at sim.Time, cancelled bool) {
	if cancelled {
		a.violatef(at, NoNode, "sched-cancelled-fired",
			"cancelled timer reached the dispatch path")
	}
	if at < a.lastEventAt {
		a.violatef(at, NoNode, "sched-monotone",
			"event at %v after clock reached %v", at, a.lastEventAt)
		return
	}
	a.lastEventAt = at
}

// --- PHY legality (phy.DeliveryObserver) ---

// FrameDelivered implements phy.DeliveryObserver.
func (a *Auditor) FrameDelivered(now sim.Time, rx phy.NodeID, awake bool, _ phy.Frame) {
	if !awake {
		a.violatef(now, rx, "phy-deliver-asleep", "frame delivered to a dozing radio")
	}
}

// --- PSM legality (mac.Audit) ---

// inATIM reports whether now falls strictly inside an ATIM window.
func (a *Auditor) inATIM(now sim.Time) bool {
	if a.cfg.BeaconInterval <= 0 || now >= a.cfg.BeaconStop {
		return false
	}
	return now%a.cfg.BeaconInterval < a.cfg.ATIMWindow
}

// BeaconStarted implements mac.Audit.
func (a *Auditor) BeaconStarted(now sim.Time, node phy.NodeID) {
	if a.cfg.BeaconInterval <= 0 {
		return
	}
	if now%a.cfg.BeaconInterval != 0 {
		a.violatef(now, node, "psm-beacon-cadence",
			"beacon off the %v grid", a.cfg.BeaconInterval)
	}
	if now >= a.cfg.BeaconStop {
		a.violatef(now, node, "psm-beacon-cadence",
			"beacon at or after the stop instant %v", a.cfg.BeaconStop)
	}
}

// NodeSlept implements mac.Audit.
func (a *Auditor) NodeSlept(now sim.Time, node phy.NodeID) {
	if a.inATIM(now) {
		a.violatef(now, node, "psm-sleep-in-atim",
			"dozed %v into the ATIM window", now%a.cfg.BeaconInterval)
	}
}

// AMExtended implements mac.Audit.
func (a *Auditor) AMExtended(now sim.Time, node phy.NodeID, until sim.Time) {
	if int(node) < 0 || int(node) >= len(a.amUntil) {
		a.violatef(now, node, "psm-bad-node", "AM extension for unknown node")
		return
	}
	if until < a.amUntil[node] {
		a.violatef(now, node, "psm-am-regress",
			"AM horizon moved back from %v to %v", a.amUntil[node], until)
	}
	if until <= now {
		a.violatef(now, node, "psm-am-past", "AM horizon %v not in the future", until)
	}
	a.amUntil[node] = until
}

// TxWindowSet implements mac.Audit.
func (a *Auditor) TxWindowSet(now sim.Time, node phy.NodeID, enabled bool, end sim.Time) {
	if int(node) < 0 || int(node) >= len(a.windowEnd) {
		a.violatef(now, node, "psm-bad-node", "window change for unknown node")
		return
	}
	if !enabled {
		return // closing carries no end; the last end stands for monotonicity
	}
	if end <= now {
		a.violatef(now, node, "psm-window-past", "window opened ending at %v", end)
	}
	if end < a.windowEnd[node] {
		a.violatef(now, node, "psm-window-regress",
			"window end moved back from %v to %v", a.windowEnd[node], end)
	}
	// A node in active mode (ODPM keep-alive) legitimately behaves like
	// 802.11 and opens its window regardless of the ATIM phase; ExtendAM
	// reports the horizon before the window change, so amUntil is current.
	if a.inATIM(now) && a.amUntil[node] <= now {
		a.violatef(now, node, "psm-window-in-atim",
			"transmit window opened %v into the ATIM window", now%a.cfg.BeaconInterval)
	}
	a.windowEnd[node] = end
}

// NodeDown implements mac.Audit: a fault-injected crash wiped the node's
// MAC state, so its monotonicity baselines (AM horizon, window end) reset —
// a recovered station restarts with amnesia and may legally open windows
// ending before its pre-crash horizon.
func (a *Auditor) NodeDown(now sim.Time, node phy.NodeID) {
	if int(node) < 0 || int(node) >= len(a.amUntil) {
		a.violatef(now, node, "psm-bad-node", "power-down for unknown node")
		return
	}
	a.amUntil[node] = 0
	a.windowEnd[node] = 0
}

// --- packet conservation (routing hooks) ---

// PacketOriginated records a data packet entering the network.
func (a *Auditor) PacketOriginated(now sim.Time, k PacketKey) {
	if _, dup := a.pkts[k]; dup {
		a.violatef(now, k.Src, "pkt-reoriginated", "%v originated twice", k)
		return
	}
	a.pkts[k] = pktLive
	a.originated++
}

// PacketDelivered records an end-to-end delivery.
func (a *Auditor) PacketDelivered(now sim.Time, node phy.NodeID, k PacketKey) {
	a.delivered++
	switch a.pkts[k] {
	case pktLive:
		a.pkts[k] = pktDelivered
	case pktDelivered, pktDropped, pktCrashed:
		a.dupTerminals++ // in-flight duplication race; diagnostic only
		a.pkts[k] = pktDelivered
	default:
		a.violatef(now, node, "pkt-unknown", "%v delivered but never originated", k)
	}
}

// PacketDropped records a terminal drop.
func (a *Auditor) PacketDropped(now sim.Time, node phy.NodeID, k PacketKey, reason string) {
	a.dropped++
	switch a.pkts[k] {
	case pktLive:
		a.pkts[k] = pktDropped
	case pktDelivered, pktDropped, pktCrashed:
		a.dupTerminals++ // in-flight duplication race; diagnostic only
	default:
		a.violatef(now, node, "pkt-unknown", "%v dropped (%s) but never originated", k, reason)
	}
}

// PacketCrashed records a packet flushed from a crashing node's buffers —
// a terminal class of its own so fault runs stay fully reconciled: the
// packet neither reached its destination nor passed through the routing
// layer's drop path.
func (a *Auditor) PacketCrashed(now sim.Time, node phy.NodeID, k PacketKey) {
	a.crashed++
	switch a.pkts[k] {
	case pktLive:
		a.pkts[k] = pktCrashed
	case pktDelivered, pktDropped, pktCrashed:
		a.dupTerminals++ // in-flight duplication race; diagnostic only
	default:
		a.violatef(now, node, "pkt-unknown", "%v crash-flushed but never originated", k)
	}
}

// --- time and energy conservation ---

// ObserveMeters registers the per-node energy meters, indexed by node ID.
func (a *Auditor) ObserveMeters(ms []*energy.Meter) { a.meters = ms }

// CheckMeters verifies time and joule conservation for every registered
// meter against its own last-update instant. It reads meter state only (no
// ObserveAt), so audited runs stay bit-identical to unaudited ones. When
// final is true, every meter must additionally have been driven to now.
func (a *Auditor) CheckMeters(now sim.Time, final bool) {
	for i, m := range a.meters {
		id := phy.NodeID(i)
		powered := m.LastUpdate()
		if at, dead := m.DepletedAt(); dead && at < powered {
			powered = at
		}
		if got := m.AwakeTime() + m.SleepTime(); got != powered {
			a.violatef(now, id, "energy-time-conservation",
				"awake %v + sleep %v != powered lifetime %v",
				m.AwakeTime(), m.SleepTime(), powered)
		}
		want := m.AwakeWatts()*m.AwakeTime().Seconds() + m.SleepWatts()*m.SleepTime().Seconds() + m.TxExtraJoules()
		if cap := m.Capacity(); cap > 0 && want > cap {
			want = cap
		}
		tol := 1e-6 * (1 + math.Abs(want))
		if diff := m.Joules() - want; diff > tol || diff < -tol {
			a.violatef(now, id, "energy-joule-decomposition",
				"joules %.9f != awakeW*awake + sleepW*sleep + txExtra = %.9f", m.Joules(), want)
		}
		if cap := m.Capacity(); cap > 0 && m.Joules() > cap {
			a.violatef(now, id, "energy-over-capacity",
				"joules %.9f exceed capacity %.9f", m.Joules(), cap)
		}
		if final && m.LastUpdate() != now {
			a.violatef(now, id, "energy-not-finalized",
				"meter last updated at %v, run ended at %v", m.LastUpdate(), now)
		}
	}
}

// --- teardown ---

// FinalizePackets reconciles the end-of-run packet census. buffered is
// every data-packet key still held in a routing send buffer or MAC queue;
// col is the run's metrics collector; routerDelivered/routerDropped are the
// summed routing-layer data counters and routerControl the summed per-class
// control transmissions (nil skips the per-class check). It must be called
// exactly once, after the final CheckMeters.
func (a *Auditor) FinalizePackets(now sim.Time, buffered []PacketKey, col *metrics.Collector, routerDelivered, routerDropped uint64, routerControl map[core.Class]uint64) {
	inBuf := make(map[PacketKey]struct{}, len(buffered))
	for _, k := range buffered {
		inBuf[k] = struct{}{}
		if _, known := a.pkts[k]; !known {
			a.violatef(now, k.Src, "pkt-unknown", "%v buffered but never originated", k)
		}
	}
	// Every key is in exactly one state, so originated = terminal + live by
	// construction; the content of the conservation check is that every
	// live key is still held somewhere — nothing vanished in flight.
	var leaked []PacketKey
	live := uint64(0)
	for k, st := range a.pkts {
		if st != pktLive {
			continue
		}
		live++
		if _, ok := inBuf[k]; !ok {
			leaked = append(leaked, k)
		}
	}
	sort.Slice(leaked, func(i, j int) bool {
		ki, kj := leaked[i], leaked[j]
		if ki.Src != kj.Src {
			return ki.Src < kj.Src
		}
		if ki.Flow != kj.Flow {
			return ki.Flow < kj.Flow
		}
		return ki.Seq < kj.Seq
	})
	for _, k := range leaked {
		a.violatef(now, k.Src, "pkt-leaked",
			"%v neither delivered, dropped, nor buffered", k)
	}
	terminal := a.originated - live
	sum := a.delivered + a.dropped + a.crashed
	if sum < terminal || sum-a.dupTerminals > terminal {
		a.violatef(now, NoNode, "pkt-conservation",
			"originated %d = delivered %d + dropped %d + crashed %d + live %d does not balance (%d duplicate terminals)",
			a.originated, a.delivered, a.dropped, a.crashed, live, a.dupTerminals)
	}

	// Cross-layer census: the collector, the routing layer and the auditor
	// observed the same events through independent paths.
	if col.Originated() != a.originated {
		a.violatef(now, NoNode, "metrics-mismatch",
			"collector originated %d, audit saw %d", col.Originated(), a.originated)
	}
	if col.Delivered() != a.delivered {
		a.violatef(now, NoNode, "metrics-mismatch",
			"collector delivered %d, audit saw %d", col.Delivered(), a.delivered)
	}
	var colDrops uint64
	for _, n := range col.Drops() {
		colDrops += n
	}
	// Crash flushes reach the collector as "node-crash" drops but the
	// auditor classes them separately, so the census splits accordingly.
	if colDrops != a.dropped+a.crashed {
		a.violatef(now, NoNode, "metrics-mismatch",
			"collector drops %d, audit saw %d dropped + %d crashed", colDrops, a.dropped, a.crashed)
	}
	if routerDelivered != a.delivered {
		a.violatef(now, NoNode, "router-mismatch",
			"router stats delivered %d, audit saw %d", routerDelivered, a.delivered)
	}
	if routerDropped != a.dropped {
		a.violatef(now, NoNode, "router-mismatch",
			"router stats dropped %d, audit saw %d", routerDropped, a.dropped)
	}
	if routerControl != nil {
		// Per-class control conservation: the routing layer's own counters
		// and the collector's hook-fed tallies must agree class by class.
		_, colByClass := col.ControlTransmissions()
		for _, cl := range []core.Class{core.ClassRREQ, core.ClassRREP, core.ClassRERR} {
			if colByClass[cl] != routerControl[cl] {
				a.violatef(now, NoNode, "router-mismatch",
					"collector %v transmissions %d, router stats %d",
					cl, colByClass[cl], routerControl[cl])
			}
		}
	}
	for _, s := range col.SelfCheck() {
		a.violatef(now, NoNode, "metrics-selfcheck", "%s", s)
	}
}
