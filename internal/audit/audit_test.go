package audit

import (
	"strings"
	"testing"

	"rcast/internal/core"
	"rcast/internal/energy"
	"rcast/internal/metrics"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

func newAuditor(nodes int) *Auditor {
	return New(Config{
		Nodes:          nodes,
		BeaconInterval: sim.FromSeconds(0.25),
		ATIMWindow:     sim.FromSeconds(0.05),
		BeaconStop:     sim.FromSeconds(100),
	})
}

func wantRule(t *testing.T, a *Auditor, rule string) {
	t.Helper()
	for _, v := range a.Violations() {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("expected a %q violation, got %v", rule, a.Violations())
}

func wantClean(t *testing.T, a *Auditor) {
	t.Helper()
	if a.Count() != 0 {
		t.Fatalf("expected no violations, got %v", a.Violations())
	}
}

func TestSchedulerMonotoneAndCancelled(t *testing.T) {
	a := newAuditor(1)
	a.SchedulerEvent(10, false)
	a.SchedulerEvent(10, false) // same instant is fine
	a.SchedulerEvent(20, false)
	wantClean(t, a)
	a.SchedulerEvent(15, false)
	wantRule(t, a, "sched-monotone")

	b := newAuditor(1)
	b.SchedulerEvent(5, true)
	wantRule(t, b, "sched-cancelled-fired")
}

func TestFrameDeliveredToSleeper(t *testing.T) {
	a := newAuditor(2)
	a.FrameDelivered(100, 1, true, phy.Frame{})
	wantClean(t, a)
	a.FrameDelivered(200, 1, false, phy.Frame{})
	wantRule(t, a, "phy-deliver-asleep")
}

func TestPSMPhaseRules(t *testing.T) {
	iv := sim.FromSeconds(0.25)
	atim := sim.FromSeconds(0.05)

	a := newAuditor(2)
	a.BeaconStarted(3*iv, 0)
	a.NodeSlept(3*iv+atim, 0) // at the boundary: legal
	wantClean(t, a)

	a.BeaconStarted(3*iv+1, 0)
	wantRule(t, a, "psm-beacon-cadence")

	b := newAuditor(2)
	b.NodeSlept(5*iv+atim/2, 1)
	wantRule(t, b, "psm-sleep-in-atim")

	// After BeaconStop the ATIM structure no longer exists.
	c := newAuditor(2)
	c.NodeSlept(sim.FromSeconds(100)+atim/2, 1)
	wantClean(t, c)
}

func TestAMHorizonMonotone(t *testing.T) {
	a := newAuditor(2)
	a.AMExtended(100, 0, 500)
	a.AMExtended(200, 0, 500) // re-assert same horizon: fine
	a.AMExtended(300, 0, 900)
	wantClean(t, a)
	a.AMExtended(400, 0, 700)
	wantRule(t, a, "psm-am-regress")

	b := newAuditor(2)
	b.AMExtended(400, 0, 400) // not in the future
	wantRule(t, b, "psm-am-past")
}

func TestTxWindowRules(t *testing.T) {
	iv := sim.FromSeconds(0.25)
	atim := sim.FromSeconds(0.05)

	a := newAuditor(2)
	a.TxWindowSet(atim, 0, true, iv)
	a.TxWindowSet(iv, 0, false, 0) // closing never regresses
	a.TxWindowSet(iv+atim, 0, true, 2*iv)
	wantClean(t, a)
	a.TxWindowSet(iv+atim+1, 0, true, iv)
	wantRule(t, a, "psm-window-regress")

	b := newAuditor(2)
	b.TxWindowSet(atim/2, 0, true, iv)
	wantRule(t, b, "psm-window-in-atim")

	c := newAuditor(2)
	c.TxWindowSet(atim, 0, true, atim)
	wantRule(t, c, "psm-window-past")
}

func TestPacketLifecycle(t *testing.T) {
	a := newAuditor(3)
	k1 := PacketKey{Src: 0, Flow: 1, Seq: 1}
	k2 := PacketKey{Src: 0, Flow: 1, Seq: 2}
	k3 := PacketKey{Src: 1, Flow: 2, Seq: 1}
	a.PacketOriginated(10, k1)
	a.PacketOriginated(20, k2)
	a.PacketOriginated(30, k3)
	a.PacketDelivered(40, 2, k1)
	a.PacketDropped(50, 1, k2, "no-route")

	col := metrics.NewCollector(3)
	col.DataOriginated()
	col.DataOriginated()
	col.DataOriginated()
	col.DataDelivered(30, 512, 2)
	col.DataDropped("no-route")

	// k3 still buffered: conservation holds.
	a.CheckMeters(100, false)
	a.FinalizePackets(100, []PacketKey{k3}, col, 1, 1, nil)
	wantClean(t, a)
}

func TestPacketLeakDetected(t *testing.T) {
	a := newAuditor(2)
	k := PacketKey{Src: 0, Flow: 1, Seq: 1}
	a.PacketOriginated(10, k)
	col := metrics.NewCollector(2)
	col.DataOriginated()
	a.FinalizePackets(100, nil, col, 0, 0, nil)
	wantRule(t, a, "pkt-leaked")
}

func TestPacketAnomalies(t *testing.T) {
	a := newAuditor(2)
	k := PacketKey{Src: 0, Flow: 1, Seq: 1}
	a.PacketOriginated(10, k)
	a.PacketOriginated(20, k)
	wantRule(t, a, "pkt-reoriginated")

	b := newAuditor(2)
	b.PacketDelivered(10, 1, k)
	wantRule(t, b, "pkt-unknown")

	// Terminal-after-terminal is the legitimate ACK-lost duplication race
	// (basic DSR/AODV destinations keep no dedup state): diagnostic only.
	c := newAuditor(2)
	c.PacketOriginated(10, k)
	c.PacketDelivered(20, 1, k)
	c.PacketDelivered(30, 1, k)
	wantClean(t, c)
	if c.DupTerminals() != 1 {
		t.Fatalf("DupTerminals = %d, want 1", c.DupTerminals())
	}

	d := newAuditor(2)
	d.PacketOriginated(10, k)
	d.PacketDelivered(20, 1, k)
	d.PacketDropped(30, 0, k, "link-failure")
	wantClean(t, d)
	if d.DupTerminals() != 1 {
		t.Fatalf("DupTerminals = %d, want 1", d.DupTerminals())
	}
}

func TestCollectorMismatch(t *testing.T) {
	a := newAuditor(2)
	k := PacketKey{Src: 0, Flow: 1, Seq: 1}
	a.PacketOriginated(10, k)
	a.PacketDelivered(20, 1, k)
	col := metrics.NewCollector(2) // saw nothing
	a.FinalizePackets(100, nil, col, 1, 0, nil)
	wantRule(t, a, "metrics-mismatch")
}

func TestMeterConservation(t *testing.T) {
	m := energy.NewMeter(1.0, 0.1, 0)
	end := sim.FromSeconds(100)
	if err := m.SetState(sim.FromSeconds(40), energy.Asleep); err != nil {
		t.Fatal(err)
	}
	if err := m.ObserveAt(end); err != nil {
		t.Fatal(err)
	}

	a := newAuditor(1)
	a.ObserveMeters([]*energy.Meter{m})
	a.CheckMeters(end, true)
	wantClean(t, a)

	// A meter not driven to the final instant is flagged on the final sweep.
	b := newAuditor(1)
	b.ObserveMeters([]*energy.Meter{m})
	b.CheckMeters(end+1, true)
	wantRule(t, b, "energy-not-finalized")
}

func TestMeterDepletionConservation(t *testing.T) {
	m := energy.NewMeter(1.0, 0.1, 10) // awake: dies at 10s
	end := sim.FromSeconds(50)
	if err := m.ObserveAt(end); err != nil {
		t.Fatal(err)
	}
	a := newAuditor(1)
	a.ObserveMeters([]*energy.Meter{m})
	a.CheckMeters(end, true)
	wantClean(t, a)
}

func TestViolationCapAndString(t *testing.T) {
	a := New(Config{Nodes: 1, MaxRecorded: 2})
	for i := 0; i < 5; i++ {
		a.SchedulerEvent(sim.Time(10-i), false)
	}
	if a.Count() != 4 {
		t.Fatalf("Count = %d, want 4", a.Count())
	}
	if len(a.Violations()) != 2 {
		t.Fatalf("recorded %d, want cap 2", len(a.Violations()))
	}
	s := a.Violations()[0].String()
	if !strings.Contains(s, "sched-monotone") {
		t.Fatalf("String() = %q, want rule name", s)
	}
}

func TestControlClassMismatch(t *testing.T) {
	a := newAuditor(2)
	col := metrics.NewCollector(2)
	col.ControlSent(core.ClassRREQ)
	col.ControlSent(core.ClassRREP)
	// Routers claim an extra RERR the collector never saw.
	a.FinalizePackets(100, nil, col, 0, 0, map[core.Class]uint64{
		core.ClassRREQ: 1, core.ClassRREP: 1, core.ClassRERR: 1,
	})
	wantRule(t, a, "router-mismatch")

	b := newAuditor(2)
	b.FinalizePackets(100, nil, col, 0, 0, map[core.Class]uint64{
		core.ClassRREQ: 1, core.ClassRREP: 1,
	})
	wantClean(t, b)
}
