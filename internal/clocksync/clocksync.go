// Package clocksync implements the IEEE 802.11 IBSS timing synchronization
// function (TSF) that the paper's PSM machinery presupposes.
//
// The paper assumes beacon-synchronized stations, citing Tseng et al. and
// Huang & Lai for distributed clock synchronization (§2.2): "we assume
// that all mobile devices operate in synchrony using one such algorithm".
// The scenario package realizes that assumption with a global beacon
// coordinator; this package justifies it by simulating the underlying
// mechanism — drifting local oscillators disciplined by contention-won
// beacon timestamps, where receivers adopt any faster clock they hear —
// and demonstrating that the residual spread stays orders of magnitude
// below the ATIM window.
package clocksync

import (
	"errors"
	"math"
	"math/rand"

	"rcast/internal/sim"
)

// MaxDriftPPM is the 802.11 oscillator tolerance (±100 ppm).
const MaxDriftPPM = 100.0

// Station is one synchronizing node with an imperfect oscillator.
type Station struct {
	// offset is the local-clock error in microseconds at true time zero,
	// updated whenever a faster timestamp is adopted.
	offset float64
	// driftPPM is the oscillator rate error in parts per million.
	driftPPM float64
	// lastAdjust is the true time of the last adoption (the drift accrues
	// from here on the current offset).
	lastAdjust sim.Time

	adoptions uint64
}

// LocalTime returns the station's clock reading at true time t.
func (s *Station) LocalTime(t sim.Time) float64 {
	dt := float64(t - s.lastAdjust)
	return float64(t) + s.offset + s.driftPPM*1e-6*dt
}

// adopt sets the local clock to `ts` (µs) at true time t. TSF only ever
// moves clocks forward (stations adopt faster timestamps).
func (s *Station) adopt(t sim.Time, ts float64) {
	s.offset = ts - float64(t)
	s.lastAdjust = t
	s.adoptions++
}

// Adoptions returns how many timestamps the station adopted.
func (s *Station) Adoptions() uint64 { return s.adoptions }

// Config parameterizes a synchronization simulation.
type Config struct {
	Stations int
	// BeaconPeriod is the TBTT spacing (the paper's 250 ms beacon
	// interval).
	BeaconPeriod sim.Time
	// Slots is the beacon contention window in slots; per 802.11 TSF each
	// station draws a uniform slot and cancels if it hears a beacon first.
	Slots int
	// MaxDriftPPM bounds per-station oscillator error (default 100).
	MaxDriftPPM float64
	// MaxInitialOffsetMicros bounds the initial clock scatter.
	MaxInitialOffsetMicros float64
	Seed                   int64
}

// DefaultConfig returns a single-hop IBSS at the paper's beacon cadence.
func DefaultConfig() Config {
	return Config{
		Stations:               20,
		BeaconPeriod:           250 * sim.Millisecond,
		Slots:                  31,
		MaxDriftPPM:            MaxDriftPPM,
		MaxInitialOffsetMicros: 500,
		Seed:                   1,
	}
}

// Network simulates TSF over an adjacency graph.
type Network struct {
	rng      *rand.Rand
	cfg      Config
	stations []*Station
	adj      [][]int

	now       sim.Time
	lastRound sim.Time

	beacons    uint64
	collisions uint64
}

// New creates a TSF simulation. adj[i] lists the neighbors of station i;
// nil selects a fully connected (single-hop) network.
func New(cfg Config, adj [][]int) (*Network, error) {
	if cfg.Stations < 2 {
		return nil, errors.New("clocksync: need at least two stations")
	}
	if cfg.BeaconPeriod <= 0 {
		return nil, errors.New("clocksync: beacon period must be positive")
	}
	if cfg.Slots < 1 {
		cfg.Slots = 31
	}
	if cfg.MaxDriftPPM <= 0 {
		cfg.MaxDriftPPM = MaxDriftPPM
	}
	if adj != nil && len(adj) != cfg.Stations {
		return nil, errors.New("clocksync: adjacency size mismatch")
	}
	if adj == nil {
		adj = make([][]int, cfg.Stations)
		for i := range adj {
			for j := 0; j < cfg.Stations; j++ {
				if j != i {
					adj[i] = append(adj[i], j)
				}
			}
		}
	}
	n := &Network{
		rng: sim.Stream(cfg.Seed, "clocksync"),
		cfg: cfg,
		adj: adj,
	}
	for i := 0; i < cfg.Stations; i++ {
		n.stations = append(n.stations, &Station{
			offset:   (n.rng.Float64()*2 - 1) * cfg.MaxInitialOffsetMicros,
			driftPPM: (n.rng.Float64()*2 - 1) * cfg.MaxDriftPPM,
		})
	}
	return n, nil
}

// Stations returns the simulated stations (for inspection).
func (n *Network) Stations() []*Station { return n.stations }

// Beacons returns (beacons transmitted, beacon collisions).
func (n *Network) Beacons() (sent, collided uint64) { return n.beacons, n.collisions }

// Run advances the simulation to true time `until`, performing one TSF
// beacon contention per period: every station draws a backoff slot; in
// each neighborhood the smallest slot wins and broadcasts its timestamp;
// receivers adopt any timestamp ahead of their own clock. Ties collide
// and no one adopts. Run may be called repeatedly with increasing times;
// the beacon schedule continues where it left off.
func (n *Network) Run(until sim.Time) {
	for {
		next := n.lastRound + n.cfg.BeaconPeriod
		if next > until {
			break
		}
		n.beaconRound(next)
		n.lastRound = next
	}
	if until > n.now {
		n.now = until
	}
}

func (n *Network) beaconRound(now sim.Time) {
	slots := make([]int, len(n.stations))
	for i := range slots {
		slots[i] = n.rng.Intn(n.cfg.Slots)
	}
	// A station transmits if no neighbor drew a strictly smaller slot;
	// equal smallest slots in one neighborhood collide at the receivers
	// shared by both winners.
	for i, s := range n.stations {
		transmits := true
		for _, j := range n.adj[i] {
			if slots[j] < slots[i] {
				transmits = false
				break
			}
		}
		if !transmits {
			continue
		}
		n.beacons++
		ts := s.LocalTime(now)
		for _, j := range n.adj[i] {
			// Collision: another same-slot winner also reaches j.
			collided := false
			for _, k := range n.adj[j] {
				if k != i && slots[k] == slots[i] && n.wins(k, slots) {
					collided = true
					break
				}
			}
			if collided {
				n.collisions++
				continue
			}
			r := n.stations[j]
			if ts > r.LocalTime(now) {
				r.adopt(now, ts)
			}
		}
	}
}

func (n *Network) wins(k int, slots []int) bool {
	for _, j := range n.adj[k] {
		if slots[j] < slots[k] {
			return false
		}
	}
	return true
}

// Spread returns the maximum pairwise clock difference in microseconds at
// true time t across all stations.
func (n *Network) Spread(t sim.Time) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range n.stations {
		lt := s.LocalTime(t)
		lo = math.Min(lo, lt)
		hi = math.Max(hi, lt)
	}
	return hi - lo
}
