package clocksync

import (
	"testing"

	"rcast/internal/sim"
)

func TestTSFKeepsSpreadBelowATIMWindow(t *testing.T) {
	cfg := DefaultConfig()
	n, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(120 * sim.Second)
	spread := n.Spread(120 * sim.Second)
	// The ATIM window is 50 ms = 50 000 µs; TSF must hold the spread
	// orders of magnitude below it (the paper's synchrony assumption).
	if spread > 1000 {
		t.Fatalf("clock spread = %.0f µs after 120 s, want < 1000", spread)
	}
	sent, _ := n.Beacons()
	if sent == 0 {
		t.Fatal("no beacons transmitted")
	}
}

func TestUnsynchronizedClocksDiverge(t *testing.T) {
	// Control: without beacon rounds, ±100 ppm drift over 120 s spreads
	// clocks by up to 24 ms — TSF is doing real work in the test above.
	cfg := DefaultConfig()
	n, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Spread(120 * sim.Second); got < 5000 {
		t.Fatalf("free-running spread = %.0f µs, expected millisecond-scale drift", got)
	}
}

func TestFastestClockBecomesReference(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stations = 8
	n, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Identify the fastest station (max drift): TSF converges everyone
	// towards it, so it should adopt (almost) never.
	fastest, rate := 0, -1e9
	for i, s := range n.stations {
		if s.driftPPM > rate {
			rate = s.driftPPM
			fastest = i
		}
	}
	// Give the fastest clock a head start so initial offsets don't mask
	// the drift ordering during the test horizon.
	n.stations[fastest].offset = cfg.MaxInitialOffsetMicros + 1
	n.Run(60 * sim.Second)
	for i, s := range n.stations {
		if i == fastest {
			if s.Adoptions() != 0 {
				t.Fatalf("fastest station adopted %d times", s.Adoptions())
			}
			continue
		}
		if s.Adoptions() == 0 {
			t.Fatalf("station %d never adopted a timestamp", i)
		}
	}
}

func TestClocksOnlyMoveForward(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stations = 10
	n, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sample each station's clock at beacon boundaries: adoption must
	// never make a clock read earlier than a previous sample plus zero.
	prev := make([]float64, cfg.Stations)
	for i, s := range n.stations {
		prev[i] = s.LocalTime(0)
	}
	for step := sim.Time(1); step <= 40; step++ {
		at := step * 250 * sim.Millisecond
		n.Run(at)
		for i, s := range n.stations {
			now := s.LocalTime(at)
			if now < prev[i] {
				t.Fatalf("station %d clock moved backwards: %f -> %f", i, prev[i], now)
			}
			prev[i] = now
		}
	}
}

func TestPartitionedComponentsSyncIndependently(t *testing.T) {
	// Two disjoint cliques of 4: spreads within each component shrink, but
	// the components need not agree with each other.
	cfg := DefaultConfig()
	cfg.Stations = 8
	adj := make([][]int, 8)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				adj[i] = append(adj[i], j)
				adj[i+4] = append(adj[i+4], j+4)
			}
		}
	}
	n, err := New(cfg, adj)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(60 * sim.Second)
	at := 60 * sim.Second
	spreadWithin := func(lo, hi int) float64 {
		minT, maxT := n.stations[lo].LocalTime(at), n.stations[lo].LocalTime(at)
		for i := lo; i < hi; i++ {
			lt := n.stations[i].LocalTime(at)
			if lt < minT {
				minT = lt
			}
			if lt > maxT {
				maxT = lt
			}
		}
		return maxT - minT
	}
	if s := spreadWithin(0, 4); s > 1000 {
		t.Fatalf("component A spread = %.0f µs", s)
	}
	if s := spreadWithin(4, 8); s > 1000 {
		t.Fatalf("component B spread = %.0f µs", s)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Stations: 1, BeaconPeriod: sim.Second}, nil); err == nil {
		t.Error("accepted one station")
	}
	if _, err := New(Config{Stations: 3}, nil); err == nil {
		t.Error("accepted zero beacon period")
	}
	if _, err := New(Config{Stations: 3, BeaconPeriod: sim.Second}, make([][]int, 2)); err == nil {
		t.Error("accepted mismatched adjacency")
	}
	// Defaults are filled in.
	n, err := New(Config{Stations: 3, BeaconPeriod: sim.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.cfg.Slots != 31 || n.cfg.MaxDriftPPM != MaxDriftPPM {
		t.Fatalf("defaults not applied: %+v", n.cfg)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		n, err := New(DefaultConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		n.Run(30 * sim.Second)
		return n.Spread(30 * sim.Second)
	}
	if run() != run() {
		t.Fatal("same seed produced different spreads")
	}
}
