// Package core implements the paper's primary contribution: the RandomCast
// (Rcast) overhearing model.
//
// Under IEEE 802.11 PSM a sender advertises each buffered packet with an
// ATIM frame during the ATIM window. Rcast (§3.2 of the paper) repurposes
// two reserved management-frame subtypes so the sender can state the desired
// level of overhearing for the advertised packet:
//
//	subtype 1001₂ — no overhearing (standard ATIM)
//	subtype 1110₂ — randomized overhearing
//	subtype 1111₂ — unconditional overhearing
//
// A non-addressed neighbor that receives the advertisement consults the
// level: under LevelNone it sleeps, under LevelUnconditional it stays awake,
// and under LevelRandomized it stays awake with probability P_R. The paper
// evaluates P_R = 1 / (number of neighbors) and names three further factors
// (sender ID, mobility, remaining battery energy) as future work; this
// package implements all of them.
package core

import (
	"fmt"
	"math/rand"
)

// Level is the overhearing level a sender advertises for a packet,
// corresponding to the ATIM subtype encodings above.
type Level int

// Overhearing levels.
const (
	LevelNone Level = iota + 1
	LevelRandomized
	LevelUnconditional
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelRandomized:
		return "randomized"
	case LevelUnconditional:
		return "unconditional"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Subtype returns the 4-bit IEEE 802.11 management-frame subtype the level
// is encoded as in the ATIM frame control field (paper Fig. 4).
func (l Level) Subtype() uint8 {
	switch l {
	case LevelRandomized:
		return 0b1110
	case LevelUnconditional:
		return 0b1111
	default:
		return 0b1001 // standard ATIM
	}
}

// LevelFromSubtype decodes a management-frame subtype into a Level.
// Unknown subtypes decode as LevelNone, the standard-conforming reading.
func LevelFromSubtype(s uint8) Level {
	switch s {
	case 0b1110:
		return LevelRandomized
	case 0b1111:
		return LevelUnconditional
	default:
		return LevelNone
	}
}

// Class is the routing-layer packet class; the sender-side half of a policy
// maps it to an advertised Level (paper §3.3).
type Class int

// Packet classes.
const (
	ClassData Class = iota + 1
	ClassRREQ
	ClassRREP
	ClassRERR
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassRREQ:
		return "rreq"
	case ClassRREP:
		return "rrep"
	case ClassRERR:
		return "rerr"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// IsControl reports whether the class is a routing control packet (used by
// the normalized-routing-overhead metric).
func (c Class) IsControl() bool {
	return c == ClassRREQ || c == ClassRREP || c == ClassRERR
}

// ListenContext carries the local state a listener may consult when making
// the randomized overhearing decision — one field per factor in §3.2.
type ListenContext struct {
	// Neighbors is the listener's current neighbor count (≥ 0).
	Neighbors int
	// SenderRecentlyHeard reports whether the announcing sender has been
	// heard or overheard within the recency window (sender-ID factor).
	SenderRecentlyHeard bool
	// RemainingEnergy is the listener's battery fraction in [0, 1].
	RemainingEnergy float64
	// LinkChangesPerSec estimates local mobility as the rate of neighbor-set
	// churn observed by the listener.
	LinkChangesPerSec float64
}

// Policy is an overhearing policy: the sender side chooses an advertised
// level per packet class, and the listener side decides whether a
// non-addressed node stays awake for an advertisement.
type Policy interface {
	// AdvertiseLevel returns the level a sender advertises for class c.
	AdvertiseLevel(c Class) Level
	// ShouldOverhear decides whether a non-addressed listener stays awake
	// for an advertisement with level lvl. It must be deterministic given
	// rng state and ctx.
	ShouldOverhear(rng *rand.Rand, lvl Level, ctx ListenContext) bool
	// Name returns a short identifier for reports.
	Name() string
}

// probRandomized applies lvl semantics around a randomized-case probability.
func probRandomized(rng *rand.Rand, lvl Level, p float64) bool {
	switch lvl {
	case LevelUnconditional:
		return true
	case LevelRandomized:
		if p >= 1 {
			return true
		}
		if p <= 0 {
			return false
		}
		return rng.Float64() < p
	default:
		return false
	}
}

// invNeighbors returns the paper's base probability P_R = 1/neighbors.
func invNeighbors(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 / float64(n)
}

// Rcast is the policy evaluated in the paper (§3.3): randomized overhearing
// for RREP and data packets, unconditional for RERR, with
// P_R = 1/(number of neighbors).
type Rcast struct{}

var _ Policy = Rcast{}

// AdvertiseLevel implements Policy.
func (Rcast) AdvertiseLevel(c Class) Level {
	switch c {
	case ClassRERR:
		return LevelUnconditional
	case ClassData, ClassRREP:
		return LevelRandomized
	default:
		return LevelUnconditional // broadcasts (RREQ) must propagate
	}
}

// ShouldOverhear implements Policy.
func (Rcast) ShouldOverhear(rng *rand.Rand, lvl Level, ctx ListenContext) bool {
	return probRandomized(rng, lvl, invNeighbors(ctx.Neighbors))
}

// Name implements Policy.
func (Rcast) Name() string { return "rcast" }

// Unconditional models unmodified IEEE 802.11 PSM carrying DSR: because DSR
// needs overhearing, every unicast keeps all neighbors awake.
type Unconditional struct{}

var _ Policy = Unconditional{}

// AdvertiseLevel implements Policy.
func (Unconditional) AdvertiseLevel(Class) Level { return LevelUnconditional }

// ShouldOverhear implements Policy.
func (Unconditional) ShouldOverhear(*rand.Rand, Level, ListenContext) bool { return true }

// Name implements Policy.
func (Unconditional) Name() string { return "unconditional" }

// None is the naive no-overhearing integration: nodes receive only packets
// addressed to them. The paper's §1 predicts this hurts routing because
// caches starve and RREQ floods multiply.
type None struct{}

var _ Policy = None{}

// AdvertiseLevel implements Policy.
func (None) AdvertiseLevel(Class) Level { return LevelNone }

// ShouldOverhear implements Policy.
func (None) ShouldOverhear(_ *rand.Rand, lvl Level, _ ListenContext) bool {
	// Even a naive node honours an explicit unconditional advertisement
	// (standard nodes never send one, so this only matters in mixed runs).
	return lvl == LevelUnconditional
}

// Name implements Policy.
func (None) Name() string { return "none" }

// SenderID is the §5 future-work policy the authors call "the most
// compelling": overhear with certainty when the announcing sender has not
// been heard for a while (new traffic, or too many skipped packets), and
// fall back to 1/neighbors when its route information is likely redundant.
type SenderID struct{}

var _ Policy = SenderID{}

// AdvertiseLevel implements Policy.
func (SenderID) AdvertiseLevel(c Class) Level { return Rcast{}.AdvertiseLevel(c) }

// ShouldOverhear implements Policy.
func (SenderID) ShouldOverhear(rng *rand.Rand, lvl Level, ctx ListenContext) bool {
	if lvl == LevelRandomized && !ctx.SenderRecentlyHeard {
		return true
	}
	return probRandomized(rng, lvl, invNeighbors(ctx.Neighbors))
}

// Name implements Policy.
func (SenderID) Name() string { return "sender-id" }

// Battery scales the overhearing probability by remaining battery energy:
// nodes running low overhear less, extending device and network lifetime.
type Battery struct{}

var _ Policy = Battery{}

// AdvertiseLevel implements Policy.
func (Battery) AdvertiseLevel(c Class) Level { return Rcast{}.AdvertiseLevel(c) }

// ShouldOverhear implements Policy.
func (Battery) ShouldOverhear(rng *rand.Rand, lvl Level, ctx ListenContext) bool {
	e := ctx.RemainingEnergy
	if e < 0 {
		e = 0
	} else if e > 1 {
		e = 1
	}
	return probRandomized(rng, lvl, invNeighbors(ctx.Neighbors)*e)
}

// Name implements Policy.
func (Battery) Name() string { return "battery" }

// Mobility overhears more conservatively when the local link-change rate is
// high, since freshly overheard routes go stale quickly under mobility.
type Mobility struct{}

var _ Policy = Mobility{}

// AdvertiseLevel implements Policy.
func (Mobility) AdvertiseLevel(c Class) Level { return Rcast{}.AdvertiseLevel(c) }

// ShouldOverhear implements Policy.
func (Mobility) ShouldOverhear(rng *rand.Rand, lvl Level, ctx ListenContext) bool {
	damp := 1 / (1 + ctx.LinkChangesPerSec)
	return probRandomized(rng, lvl, invNeighbors(ctx.Neighbors)*damp)
}

// Name implements Policy.
func (Mobility) Name() string { return "mobility" }

// Combined folds all four §3.2 factors together: the 1/neighbors base rate,
// boosted to certainty for unheard senders, damped by low battery and by
// high mobility.
type Combined struct{}

var _ Policy = Combined{}

// AdvertiseLevel implements Policy.
func (Combined) AdvertiseLevel(c Class) Level { return Rcast{}.AdvertiseLevel(c) }

// ShouldOverhear implements Policy.
func (Combined) ShouldOverhear(rng *rand.Rand, lvl Level, ctx ListenContext) bool {
	if lvl == LevelRandomized && !ctx.SenderRecentlyHeard {
		return true
	}
	e := ctx.RemainingEnergy
	if e < 0 {
		e = 0
	} else if e > 1 {
		e = 1
	}
	p := invNeighbors(ctx.Neighbors) * e / (1 + ctx.LinkChangesPerSec)
	return probRandomized(rng, lvl, p)
}

// Name implements Policy.
func (Combined) Name() string { return "combined" }

// FixedProb advertises like Rcast but overhears randomized advertisements
// with a fixed probability P instead of 1/neighbors. It exists for
// calibration and differential testing: P >= 1 never consults the rng
// (probRandomized short-circuits), which makes FixedProb{P: 1} listeners
// bit-identical to Unconditional ones — the scenario-level oracle tests
// rely on exactly that.
type FixedProb struct {
	// P is the stay-awake probability for LevelRandomized advertisements;
	// values are used as-is (clamped only by probRandomized's semantics).
	P float64
}

var _ Policy = FixedProb{}

// AdvertiseLevel implements Policy.
func (FixedProb) AdvertiseLevel(c Class) Level { return Rcast{}.AdvertiseLevel(c) }

// ShouldOverhear implements Policy.
func (f FixedProb) ShouldOverhear(rng *rand.Rand, lvl Level, _ ListenContext) bool {
	return probRandomized(rng, lvl, f.P)
}

// Name implements Policy.
func (f FixedProb) Name() string { return fmt.Sprintf("fixed-%.2f", f.P) }

// BroadcastGossip implements the §5 extension of applying Rcast to
// broadcast packets (RREQ) to damp redundant rebroadcasts in dense networks
// (the broadcast-storm problem, Ni et al.). A node rebroadcasts with
// probability min(1, Fanout/neighbors): conservative, so floods still
// propagate, but dense neighborhoods suppress duplicates.
type BroadcastGossip struct {
	// Fanout is the expected number of rebroadcasting neighbors to retain;
	// values below 1 are treated as 1. The paper stresses the decision
	// "must be made conservatively"; 3–4 keeps floods reliable.
	Fanout float64
}

// ShouldRebroadcast decides whether a node forwards a flooded packet.
func (b BroadcastGossip) ShouldRebroadcast(rng *rand.Rand, neighbors int) bool {
	fanout := b.Fanout
	if fanout < 1 {
		fanout = 1
	}
	if neighbors <= int(fanout) {
		return true
	}
	return rng.Float64() < fanout/float64(neighbors)
}
