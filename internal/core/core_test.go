package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestLevelSubtypeRoundTrip(t *testing.T) {
	tests := []struct {
		lvl     Level
		subtype uint8
	}{
		{LevelNone, 0b1001},
		{LevelRandomized, 0b1110},
		{LevelUnconditional, 0b1111},
	}
	for _, tt := range tests {
		if got := tt.lvl.Subtype(); got != tt.subtype {
			t.Errorf("%v.Subtype() = %04b, want %04b", tt.lvl, got, tt.subtype)
		}
		if got := LevelFromSubtype(tt.subtype); got != tt.lvl {
			t.Errorf("LevelFromSubtype(%04b) = %v, want %v", tt.subtype, got, tt.lvl)
		}
	}
	// Unknown subtype: conforming readers treat it as a standard ATIM.
	if got := LevelFromSubtype(0b0000); got != LevelNone {
		t.Errorf("LevelFromSubtype(0) = %v, want none", got)
	}
}

func TestStrings(t *testing.T) {
	if LevelNone.String() != "none" || LevelRandomized.String() != "randomized" ||
		LevelUnconditional.String() != "unconditional" || Level(9).String() != "Level(9)" {
		t.Error("Level.String broken")
	}
	if ClassData.String() != "data" || ClassRREQ.String() != "rreq" ||
		ClassRREP.String() != "rrep" || ClassRERR.String() != "rerr" || Class(9).String() != "Class(9)" {
		t.Error("Class.String broken")
	}
}

func TestClassIsControl(t *testing.T) {
	if ClassData.IsControl() {
		t.Error("data marked control")
	}
	for _, c := range []Class{ClassRREQ, ClassRREP, ClassRERR} {
		if !c.IsControl() {
			t.Errorf("%v not marked control", c)
		}
	}
}

func TestRcastAdvertiseLevels(t *testing.T) {
	// Paper §3.3: RREP and data randomized, RERR unconditional.
	p := Rcast{}
	tests := []struct {
		give Class
		want Level
	}{
		{ClassData, LevelRandomized},
		{ClassRREP, LevelRandomized},
		{ClassRERR, LevelUnconditional},
		{ClassRREQ, LevelUnconditional},
	}
	for _, tt := range tests {
		if got := p.AdvertiseLevel(tt.give); got != tt.want {
			t.Errorf("AdvertiseLevel(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRcastOverhearProbabilityMatchesInverseNeighbors(t *testing.T) {
	// Paper §3.2: "if a node has five neighbors ... it overhears randomly
	// with the probability P_R of 0.2".
	p := Rcast{}
	rng := newRNG()
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if p.ShouldOverhear(rng, LevelRandomized, ListenContext{Neighbors: 5}) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.18 || got > 0.22 {
		t.Fatalf("empirical P_R = %v, want ~0.2", got)
	}
}

func TestRcastLevelSemantics(t *testing.T) {
	p := Rcast{}
	rng := newRNG()
	ctx := ListenContext{Neighbors: 50}
	for i := 0; i < 100; i++ {
		if p.ShouldOverhear(rng, LevelNone, ctx) {
			t.Fatal("overheard under LevelNone")
		}
		if !p.ShouldOverhear(rng, LevelUnconditional, ctx) {
			t.Fatal("slept under LevelUnconditional")
		}
	}
}

func TestRcastIsolatedNodeAlwaysOverhears(t *testing.T) {
	// With ≤1 neighbor P_R = 1: the single neighbor is the only possible
	// cache carrier.
	p := Rcast{}
	rng := newRNG()
	for _, n := range []int{0, 1} {
		if !p.ShouldOverhear(rng, LevelRandomized, ListenContext{Neighbors: n}) {
			t.Fatalf("neighbors=%d: should always overhear", n)
		}
	}
}

func TestUnconditionalAndNonePolicies(t *testing.T) {
	rng := newRNG()
	ctx := ListenContext{Neighbors: 10}
	u := Unconditional{}
	if u.AdvertiseLevel(ClassData) != LevelUnconditional {
		t.Error("Unconditional.AdvertiseLevel broken")
	}
	if !u.ShouldOverhear(rng, LevelNone, ctx) {
		t.Error("Unconditional listener must always stay awake")
	}
	n := None{}
	if n.AdvertiseLevel(ClassRERR) != LevelNone {
		t.Error("None.AdvertiseLevel broken")
	}
	if n.ShouldOverhear(rng, LevelRandomized, ctx) {
		t.Error("None listener overheard a randomized advertisement")
	}
	if !n.ShouldOverhear(rng, LevelUnconditional, ctx) {
		t.Error("None listener must honour an unconditional advertisement")
	}
}

func TestSenderIDBoostsUnheardSenders(t *testing.T) {
	p := SenderID{}
	rng := newRNG()
	unheard := ListenContext{Neighbors: 50, SenderRecentlyHeard: false}
	for i := 0; i < 100; i++ {
		if !p.ShouldOverhear(rng, LevelRandomized, unheard) {
			t.Fatal("unheard sender must be overheard with certainty")
		}
	}
	heard := ListenContext{Neighbors: 50, SenderRecentlyHeard: true}
	hits := 0
	for i := 0; i < 10000; i++ {
		if p.ShouldOverhear(rng, LevelRandomized, heard) {
			hits++
		}
	}
	if got := float64(hits) / 10000; got > 0.05 {
		t.Fatalf("recently-heard sender overheard with p=%v, want ~0.02", got)
	}
}

func TestBatteryScalesDown(t *testing.T) {
	p := Battery{}
	rng := newRNG()
	count := func(e float64) int {
		hits := 0
		for i := 0; i < 20000; i++ {
			if p.ShouldOverhear(rng, LevelRandomized, ListenContext{Neighbors: 4, RemainingEnergy: e}) {
				hits++
			}
		}
		return hits
	}
	full, low := count(1.0), count(0.2)
	if low >= full {
		t.Fatalf("low battery (%d) should overhear less than full (%d)", low, full)
	}
	if empty := count(0); empty != 0 {
		t.Fatalf("empty battery overheard %d times, want 0", empty)
	}
	// Out-of-range inputs are clamped, not propagated.
	if !p.ShouldOverhear(rng, LevelUnconditional, ListenContext{Neighbors: 1, RemainingEnergy: -3}) {
		t.Fatal("unconditional must win regardless of battery")
	}
}

func TestMobilityDamps(t *testing.T) {
	p := Mobility{}
	rng := newRNG()
	count := func(rate float64) int {
		hits := 0
		for i := 0; i < 20000; i++ {
			if p.ShouldOverhear(rng, LevelRandomized, ListenContext{Neighbors: 4, LinkChangesPerSec: rate}) {
				hits++
			}
		}
		return hits
	}
	calm, churny := count(0), count(9)
	if churny >= calm/2 {
		t.Fatalf("high mobility (%d) should damp overhearing well below calm (%d)", churny, calm)
	}
}

func TestCombinedRespectsAllFactors(t *testing.T) {
	p := Combined{}
	rng := newRNG()
	// Unheard sender wins outright.
	if !p.ShouldOverhear(rng, LevelRandomized, ListenContext{Neighbors: 100, RemainingEnergy: 0.01}) {
		t.Fatal("combined: unheard sender must be overheard")
	}
	// Heard sender, low battery, high churn: essentially never.
	ctx := ListenContext{Neighbors: 20, SenderRecentlyHeard: true, RemainingEnergy: 0.1, LinkChangesPerSec: 9}
	hits := 0
	for i := 0; i < 10000; i++ {
		if p.ShouldOverhear(rng, LevelRandomized, ctx) {
			hits++
		}
	}
	if hits > 50 {
		t.Fatalf("combined overheard %d/10000 under adverse context", hits)
	}
}

func TestPolicyNames(t *testing.T) {
	policies := []Policy{Rcast{}, Unconditional{}, None{}, SenderID{}, Battery{}, Mobility{}, Combined{}}
	seen := make(map[string]bool, len(policies))
	for _, p := range policies {
		name := p.Name()
		if name == "" || seen[name] {
			t.Fatalf("duplicate or empty policy name %q", name)
		}
		seen[name] = true
	}
}

func TestBroadcastGossip(t *testing.T) {
	g := BroadcastGossip{Fanout: 3}
	rng := newRNG()
	// Sparse neighborhoods always rebroadcast.
	for _, n := range []int{0, 1, 2, 3} {
		if !g.ShouldRebroadcast(rng, n) {
			t.Fatalf("neighbors=%d: sparse node must rebroadcast", n)
		}
	}
	// Dense neighborhoods damp towards fanout/neighbors.
	hits := 0
	for i := 0; i < 30000; i++ {
		if g.ShouldRebroadcast(rng, 30) {
			hits++
		}
	}
	got := float64(hits) / 30000
	if got < 0.07 || got > 0.13 {
		t.Fatalf("empirical rebroadcast p = %v, want ~0.1", got)
	}
	// Fanout below 1 is clamped to 1.
	weak := BroadcastGossip{Fanout: 0}
	if !weak.ShouldRebroadcast(rng, 1) {
		t.Fatal("fanout clamp broken")
	}
}

// Property: ShouldOverhear respects level ordering — whenever a policy
// overhears under LevelNone semantics it must also overhear under
// unconditional; randomized always allows unconditional.
func TestLevelMonotonicityProperty(t *testing.T) {
	policies := []Policy{Rcast{}, SenderID{}, Battery{}, Mobility{}, Combined{}}
	prop := func(nbrs uint8, energy float64, churn float64, heard bool, pick uint8) bool {
		p := policies[int(pick)%len(policies)]
		ctx := ListenContext{
			Neighbors:           int(nbrs),
			SenderRecentlyHeard: heard,
			RemainingEnergy:     energy,
			LinkChangesPerSec:   churn,
		}
		rng := newRNG()
		if p.ShouldOverhear(rng, LevelNone, ctx) {
			return false // none must never overhear for these policies
		}
		return p.ShouldOverhear(rng, LevelUnconditional, ctx)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBroadcastGossipFractionalFanout pins down the boundary between the
// always-rebroadcast regime and the probabilistic one when Fanout is not an
// integer: the guarantee applies to neighborhoods of at most ⌊fanout⌋
// nodes, and the first probabilistic neighborhood size is ⌊fanout⌋+1.
func TestBroadcastGossipFractionalFanout(t *testing.T) {
	g := BroadcastGossip{Fanout: 3.5}
	rng := newRNG()
	// neighbors <= ⌊3.5⌋ = 3: certain rebroadcast, no randomness drawn.
	for _, n := range []int{0, 1, 2, 3} {
		for i := 0; i < 100; i++ {
			if !g.ShouldRebroadcast(rng, n) {
				t.Fatalf("neighbors=%d below fractional fanout must rebroadcast", n)
			}
		}
	}
	// neighbors = 4 crosses the boundary: probabilistic at 3.5/4 = 0.875.
	hits := 0
	const trials = 30000
	for i := 0; i < trials; i++ {
		if g.ShouldRebroadcast(rng, 4) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.85 || got > 0.90 {
		t.Fatalf("empirical rebroadcast p = %v at the fractional boundary, want ~0.875", got)
	}
	if hits == trials {
		t.Fatal("boundary neighborhood rebroadcast with certainty; gossip damping is off")
	}

	// A sub-unit fractional fanout clamps to 1: two neighbors damp at 1/2.
	weak := BroadcastGossip{Fanout: 0.4}
	hits = 0
	for i := 0; i < trials; i++ {
		if weak.ShouldRebroadcast(rng, 2) {
			hits++
		}
	}
	got = float64(hits) / trials
	if got < 0.47 || got > 0.53 {
		t.Fatalf("clamped fanout: empirical p = %v, want ~0.5", got)
	}
}
