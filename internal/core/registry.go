package core

import "fmt"

// policyRegistry is the table of named overhearing policies, in
// presentation order. Adding a policy to the simulator is one entry here:
// the name then resolves everywhere a policy can be spelled — the
// scenario.Config.PolicyName field and its canonical encoding, the
// Grid/sweep policy axes, the rcast-sim/rcast-bench -policy flags, the
// rcast-serve job and sweep APIs, and the {policy} metrics label.
//
// Registered policies must be stateless values (their behaviour a pure
// function of the RNG stream and ListenContext) so that resolving a name
// twice yields interchangeable policies and named runs stay deterministic.
var policyRegistry = []Policy{
	Rcast{},
	Unconditional{},
	None{},
	SenderID{},
	Battery{},
	Mobility{},
	Combined{},
}

// Policies returns the registered policies in presentation order. The
// slice is a copy; mutating it does not affect the registry.
func Policies() []Policy {
	return append([]Policy(nil), policyRegistry...)
}

// PolicyNames lists the registered policy names in presentation order.
func PolicyNames() []string {
	names := make([]string, len(policyRegistry))
	for i, p := range policyRegistry {
		names[i] = p.Name()
	}
	return names
}

// ParsePolicy resolves a registered policy by its Name.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range policyRegistry {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("core: unknown policy %q (want one of %v)", name, PolicyNames())
}

// PolicyKnown reports whether name resolves to a registered policy.
func PolicyKnown(name string) bool {
	_, err := ParsePolicy(name)
	return err == nil
}
