package core

import (
	"reflect"
	"testing"
)

func TestPolicyNamesOrderAndCoverage(t *testing.T) {
	want := []string{"rcast", "unconditional", "none", "sender-id", "battery", "mobility", "combined"}
	if got := PolicyNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PolicyNames() = %v, want %v", got, want)
	}
}

func TestParsePolicyRoundTrips(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
		if !PolicyKnown(name) {
			t.Fatalf("PolicyKnown(%q) = false", name)
		}
	}
}

func TestParsePolicyUnknown(t *testing.T) {
	if _, err := ParsePolicy("fixed-0.50"); err == nil {
		t.Fatal("FixedProb must not be a registered (canonical) policy")
	}
	if PolicyKnown("") {
		t.Fatal(`PolicyKnown("") = true; the empty name is "scheme default", not a policy`)
	}
}

func TestPoliciesReturnsCopy(t *testing.T) {
	ps := Policies()
	if len(ps) == 0 {
		t.Fatal("no registered policies")
	}
	ps[0] = nil
	if policyRegistry[0] == nil {
		t.Fatal("Policies() exposed the registry backing array")
	}
}
