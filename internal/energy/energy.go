// Package energy implements the paper's two-state radio energy model.
//
// Following §4.2 of the paper (Lucent WaveLAN-II numbers), a node consumes
// DefaultAwakeWatts while awake — the paper collapses idle listening,
// receiving and transmitting into one figure — and DefaultSleepWatts in the
// low-power doze state, a ~25× difference.
package energy

import (
	"errors"
	"fmt"

	"rcast/internal/sim"
)

// Power figures (Lucent IEEE 802.11 WaveLAN-II, paper §4.2). The paper is
// internally inconsistent about the sleep figure: its §4.3 arithmetic
// ("1.15 W × 225 s + .45 W × 900 s") uses 0.45 W, but the hardware doze
// current it cites (9 mA × 5 V) is 0.045 W, and the abstract's headline
// ratios (Rcast 157–236% less energy than PSM — impossible when sleeping
// costs 39% of being awake) are only reachable with 0.045 W. We default to
// the hardware figure, which also preserves the intro's "25×" claim, and
// export the alternative for sensitivity runs (see EXPERIMENTS.md).
const (
	DefaultAwakeWatts  = 1.15  // idle listening / rx / tx
	DefaultSleepWatts  = 0.045 // low-power doze (9 mA × 5 V)
	PaperTextSleepWatt = 0.45  // the figure §4.3's in-text arithmetic uses
)

// DefaultTxWatts is the nominal radiated transmit power (ns-2's two-ray
// ground default Pt = 0.2818 W, the paper's 250 m range). The two-state
// model above already folds nominal transmission into the awake draw; only
// the *delta* from scaling transmit power up or down is charged separately,
// via AddTxJoules, per transmission.
const DefaultTxWatts = 0.2818

// State is the radio power state.
type State int

// Radio power states.
const (
	Awake State = iota + 1
	Asleep
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Awake:
		return "awake"
	case Asleep:
		return "asleep"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ErrTimeReversal is returned when the meter is driven backwards in time.
var ErrTimeReversal = errors.New("energy: observation before last update")

// Meter integrates a node's energy consumption over time. It is driven by
// SetState calls at power-state transitions; consumption between calls is
// attributed to the state in force.
type Meter struct {
	awakeW, sleepW float64

	state  State
	lastAt sim.Time
	joules float64

	awakeFor sim.Time
	sleepFor sim.Time

	// txExtra is the cumulative per-transmission energy delta charged via
	// AddTxJoules (variable TX power), already included in joules. The
	// invariant joules == awake/sleep integral + txExtra holds by
	// construction: every clamp applied to joules is applied to txExtra.
	txExtra float64

	capacity   float64 // joules; 0 means unlimited
	depletedAt sim.Time
	depleted   bool
}

// NewMeter returns a meter that is Awake at t=0. Non-positive power values
// fall back to the paper defaults. capacityJoules limits the battery;
// pass 0 for an unlimited battery (the paper's setting).
func NewMeter(awakeW, sleepW, capacityJoules float64) *Meter {
	if awakeW <= 0 {
		awakeW = DefaultAwakeWatts
	}
	if sleepW <= 0 {
		sleepW = DefaultSleepWatts
	}
	return &Meter{awakeW: awakeW, sleepW: sleepW, state: Awake, capacity: capacityJoules}
}

// State returns the current power state.
func (m *Meter) State() State { return m.state }

// SetState integrates consumption up to now and switches to s. Setting the
// current state is a harmless (and common) no-op apart from the
// integration. It returns ErrTimeReversal if now precedes the last update.
func (m *Meter) SetState(now sim.Time, s State) error {
	if err := m.accrue(now); err != nil {
		return err
	}
	m.state = s
	return nil
}

// ObserveAt integrates consumption up to now without changing state.
func (m *Meter) ObserveAt(now sim.Time) error { return m.accrue(now) }

func (m *Meter) accrue(now sim.Time) error {
	if now < m.lastAt {
		return ErrTimeReversal
	}
	prev := m.lastAt
	dt := now - m.lastAt
	m.lastAt = now
	if m.Depleted() {
		return nil // a dead battery draws nothing
	}
	var watts float64
	switch m.state {
	case Awake:
		watts = m.awakeW
	case Asleep:
		watts = m.sleepW
	}
	// When this interval crosses the depletion point, split it at the
	// depletion instant: joules stop at capacity and time-in-state stops
	// with them, so AwakeTime+SleepTime always equals the powered lifetime.
	if m.capacity > 0 && watts > 0 && m.joules+watts*dt.Seconds() >= m.capacity {
		ttl := sim.FromSeconds((m.capacity - m.joules) / watts)
		if ttl > dt {
			ttl = dt
		}
		dt = ttl
		m.joules = m.capacity
		m.depleted = true
		m.depletedAt = prev + ttl
	} else {
		m.joules += watts * dt.Seconds()
	}
	switch m.state {
	case Awake:
		m.awakeFor += dt
	case Asleep:
		m.sleepFor += dt
	}
	return nil
}

// AddTxJoules integrates consumption up to now, then charges j extra
// joules for a transmission at non-nominal power (j may be negative for
// reduced-power radios — the awake draw already includes nominal
// transmission cost). A negative charge never drives total consumption
// below zero, and a charge that crosses a limited battery's capacity
// depletes it at now. It returns ErrTimeReversal if now precedes the last
// update; a depleted battery absorbs nothing.
func (m *Meter) AddTxJoules(now sim.Time, j float64) error {
	if err := m.accrue(now); err != nil {
		return err
	}
	if m.Depleted() {
		return nil
	}
	if m.joules+j < 0 {
		j = -m.joules
	}
	if m.capacity > 0 && m.joules+j >= m.capacity {
		j = m.capacity - m.joules
		m.joules = m.capacity
		m.txExtra += j
		m.depleted = true
		m.depletedAt = now
		return nil
	}
	m.joules += j
	m.txExtra += j
	return nil
}

// TxExtraJoules returns the cumulative per-transmission energy delta
// charged via AddTxJoules (already included in Joules).
func (m *Meter) TxExtraJoules() float64 { return m.txExtra }

// DepletionIn returns how long the battery lasts from the last update at
// the current state's draw, or sim.MaxTime for an unlimited battery or a
// zero-draw state. A depleted battery returns 0.
func (m *Meter) DepletionIn() sim.Time {
	if m.capacity <= 0 {
		return sim.MaxTime
	}
	remaining := m.capacity - m.joules
	if remaining <= 0 {
		return 0
	}
	var watts float64
	switch m.state {
	case Awake:
		watts = m.awakeW
	case Asleep:
		watts = m.sleepW
	}
	if watts <= 0 {
		return sim.MaxTime
	}
	return sim.FromSeconds(remaining / watts)
}

// Joules returns total consumption through the last update.
func (m *Meter) Joules() float64 { return m.joules }

// LastUpdate returns the instant of the most recent accrual (SetState or
// ObserveAt).
func (m *Meter) LastUpdate() sim.Time { return m.lastAt }

// DepletedAt returns the instant a limited battery ran out, if it has.
func (m *Meter) DepletedAt() (sim.Time, bool) { return m.depletedAt, m.depleted }

// AwakeWatts returns the awake-state draw.
func (m *Meter) AwakeWatts() float64 { return m.awakeW }

// SleepWatts returns the doze-state draw.
func (m *Meter) SleepWatts() float64 { return m.sleepW }

// Capacity returns the battery capacity in joules (0 = unlimited).
func (m *Meter) Capacity() float64 { return m.capacity }

// AwakeTime returns cumulative time spent awake through the last update.
func (m *Meter) AwakeTime() sim.Time { return m.awakeFor }

// SleepTime returns cumulative time spent asleep through the last update.
func (m *Meter) SleepTime() sim.Time { return m.sleepFor }

// RemainingFraction returns the battery fraction left in [0, 1]. With an
// unlimited battery it always returns 1.
func (m *Meter) RemainingFraction() float64 {
	if m.capacity <= 0 {
		return 1
	}
	rem := 1 - m.joules/m.capacity
	if rem < 0 {
		return 0
	}
	return rem
}

// Depleted reports whether a limited battery has been exhausted.
func (m *Meter) Depleted() bool {
	return m.capacity > 0 && m.joules >= m.capacity
}
