package energy

import (
	"math"
	"testing"
	"testing/quick"

	"rcast/internal/sim"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAlwaysAwakeMatchesPaperFigure(t *testing.T) {
	// Paper §4.3: 802.11 nodes consume 1.15 W × 1125 s = 1293.75 J.
	m := NewMeter(0, 0, 0)
	if err := m.ObserveAt(1125 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := m.Joules(); !almostEqual(got, 1293.75) {
		t.Fatalf("Joules = %v, want 1293.75", got)
	}
}

func TestPSMIdleBudgetMatchesPaperFigure(t *testing.T) {
	// Paper §4.3 in-text arithmetic: a PS node awake only for ATIM windows
	// (20% duty cycle over 1125 s) consumes
	// 1.15 W × 225 s + 0.45 W × 900 s = 663.75 J under the paper's sleep
	// figure (PaperTextSleepWatt).
	m := NewMeter(0, PaperTextSleepWatt, 0)
	beacon, atim := 250*sim.Millisecond, 50*sim.Millisecond
	var now sim.Time
	for now < 1125*sim.Second {
		if err := m.SetState(now, Awake); err != nil {
			t.Fatal(err)
		}
		if err := m.SetState(now+atim, Asleep); err != nil {
			t.Fatal(err)
		}
		now += beacon
	}
	if err := m.ObserveAt(1125 * sim.Second); err != nil {
		t.Fatal(err)
	}
	want := 1.15*225 + 0.45*900
	if got := m.Joules(); !almostEqual(got, want) || !almostEqual(got, 663.75) {
		t.Fatalf("Joules = %v, want %v", got, want)
	}
	if got := m.AwakeTime(); got != 225*sim.Second {
		t.Fatalf("AwakeTime = %v, want 225s", got)
	}
	if got := m.SleepTime(); got != 900*sim.Second {
		t.Fatalf("SleepTime = %v, want 900s", got)
	}
}

func TestSleepIsCheaper(t *testing.T) {
	awake := NewMeter(0, 0, 0)
	asleep := NewMeter(0, 0, 0)
	if err := asleep.SetState(0, Asleep); err != nil {
		t.Fatal(err)
	}
	_ = awake.ObserveAt(100 * sim.Second)
	_ = asleep.ObserveAt(100 * sim.Second)
	ratio := awake.Joules() / asleep.Joules()
	if ratio < 25 || ratio > 26 {
		t.Fatalf("awake/sleep ratio = %v, want ~25.6 (paper's 25x)", ratio)
	}
}

func TestTimeReversalRejected(t *testing.T) {
	m := NewMeter(0, 0, 0)
	if err := m.ObserveAt(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.ObserveAt(5 * sim.Second); err != ErrTimeReversal {
		t.Fatalf("err = %v, want ErrTimeReversal", err)
	}
	if err := m.SetState(5*sim.Second, Asleep); err != ErrTimeReversal {
		t.Fatalf("err = %v, want ErrTimeReversal", err)
	}
}

func TestRedundantSetStateIsHarmless(t *testing.T) {
	m := NewMeter(0, 0, 0)
	for s := 1; s <= 10; s++ {
		if err := m.SetState(sim.Time(s)*sim.Second, Awake); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Joules(); !almostEqual(got, 11.5) {
		t.Fatalf("Joules = %v, want 11.5", got)
	}
}

func TestBattery(t *testing.T) {
	m := NewMeter(1.0, 0.1, 10) // 10 J capacity, 1 W awake
	if m.RemainingFraction() != 1 || m.Depleted() {
		t.Fatal("fresh battery not full")
	}
	_ = m.ObserveAt(5 * sim.Second)
	if got := m.RemainingFraction(); !almostEqual(got, 0.5) {
		t.Fatalf("RemainingFraction = %v, want 0.5", got)
	}
	_ = m.ObserveAt(20 * sim.Second)
	if !m.Depleted() {
		t.Fatal("battery should be depleted")
	}
	if m.RemainingFraction() != 0 {
		t.Fatalf("RemainingFraction = %v, want 0", m.RemainingFraction())
	}
}

func TestUnlimitedBatteryNeverDepletes(t *testing.T) {
	m := NewMeter(0, 0, 0)
	_ = m.ObserveAt(1e6 * sim.Second)
	if m.Depleted() || m.RemainingFraction() != 1 {
		t.Fatal("unlimited battery depleted")
	}
}

func TestDepletionIn(t *testing.T) {
	m := NewMeter(1.0, 0.1, 100) // 100 J, 1 W awake, 0.1 W asleep
	if got := m.DepletionIn(); got != 100*sim.Second {
		t.Fatalf("awake DepletionIn = %v, want 100s", got)
	}
	if err := m.SetState(50*sim.Second, Asleep); err != nil {
		t.Fatal(err)
	}
	// 50 J left at 0.1 W -> 500 s.
	if got := m.DepletionIn(); got != 500*sim.Second {
		t.Fatalf("asleep DepletionIn = %v, want 500s", got)
	}
	_ = m.ObserveAt(550 * sim.Second)
	if got := m.DepletionIn(); got != 0 {
		t.Fatalf("depleted DepletionIn = %v, want 0", got)
	}
	unlimited := NewMeter(1, 0.1, 0)
	if got := unlimited.DepletionIn(); got != sim.MaxTime {
		t.Fatalf("unlimited DepletionIn = %v, want MaxTime", got)
	}
}

func TestDepletedBatteryStopsAccruing(t *testing.T) {
	m := NewMeter(1.0, 0.1, 10)
	_ = m.ObserveAt(20 * sim.Second) // depletes at t=10
	if got := m.Joules(); got != 10 {
		t.Fatalf("Joules = %v, want capped at 10", got)
	}
	awakeBefore := m.AwakeTime()
	_ = m.ObserveAt(40 * sim.Second)
	if m.Joules() != 10 {
		t.Fatal("dead battery kept consuming")
	}
	if m.AwakeTime() != awakeBefore {
		t.Fatal("dead battery accumulated state time")
	}
}

func TestStateString(t *testing.T) {
	if Awake.String() != "awake" || Asleep.String() != "asleep" {
		t.Error("State.String broken")
	}
	if State(99).String() != "State(99)" {
		t.Error("unknown State.String broken")
	}
}

// Property: total energy equals awakeW*awakeTime + sleepW*sleepTime for any
// schedule of state changes.
func TestEnergyDecompositionProperty(t *testing.T) {
	prop := func(steps []uint8) bool {
		m := NewMeter(2.0, 0.25, 0)
		var now sim.Time
		for _, s := range steps {
			now += sim.Time(s) * sim.Millisecond
			st := Awake
			if s%2 == 0 {
				st = Asleep
			}
			if err := m.SetState(now, st); err != nil {
				return false
			}
		}
		want := 2.0*m.AwakeTime().Seconds() + 0.25*m.SleepTime().Seconds()
		return math.Abs(m.Joules()-want) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// An interval that crosses the depletion point must be split there: joules
// clamp to capacity AND time-in-state stops at the depletion instant, so
// AwakeTime+SleepTime equals the powered lifetime rather than the
// observation horizon.
func TestDepletionBoundarySplit(t *testing.T) {
	m := NewMeter(1.0, 0.1, 10) // 4 J awake + 6 J asleep => dead at t=64s
	if err := m.SetState(4*sim.Second, Asleep); err != nil {
		t.Fatal(err)
	}
	if err := m.ObserveAt(100 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !m.Depleted() {
		t.Fatal("meter should be depleted")
	}
	if got := m.Joules(); got != 10 {
		t.Errorf("Joules = %v, want capacity 10", got)
	}
	at, ok := m.DepletedAt()
	if !ok || at != 64*sim.Second {
		t.Errorf("DepletedAt = %v, %v; want 64s, true", at, ok)
	}
	if m.AwakeTime() != 4*sim.Second || m.SleepTime() != 60*sim.Second {
		t.Errorf("time-in-state = awake %v + sleep %v; want 4s + 60s",
			m.AwakeTime(), m.SleepTime())
	}
	if sum := m.AwakeTime() + m.SleepTime(); sum != at {
		t.Errorf("awake+sleep = %v, want depletion instant %v", sum, at)
	}
	if m.LastUpdate() != 100*sim.Second {
		t.Errorf("LastUpdate = %v, want 100s", m.LastUpdate())
	}
	// Post-depletion observations change nothing.
	if err := m.ObserveAt(200 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if m.AwakeTime() != 4*sim.Second || m.SleepTime() != 60*sim.Second || m.Joules() != 10 {
		t.Error("depleted meter kept accruing")
	}
}

// Depletion exactly at an observation instant must not over- or under-count.
func TestDepletionExactBoundary(t *testing.T) {
	m := NewMeter(1.0, 0.045, 10)
	if err := m.ObserveAt(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !m.Depleted() || m.Joules() != 10 {
		t.Fatalf("joules = %v, depleted = %v; want 10, true", m.Joules(), m.Depleted())
	}
	if at, ok := m.DepletedAt(); !ok || at != 10*sim.Second {
		t.Errorf("DepletedAt = %v, %v; want 10s, true", at, ok)
	}
	if m.AwakeTime() != 10*sim.Second {
		t.Errorf("AwakeTime = %v, want 10s", m.AwakeTime())
	}
}

// TestAddTxJoulesMaintainsInvariant: the extra TX energy folds into the
// meter while keeping joules == awakeW*awake + sleepW*sleep + txExtra —
// the decomposition the cross-layer audit checks.
func TestAddTxJoulesMaintainsInvariant(t *testing.T) {
	m := NewMeter(1.0, 0.05, 0)
	if err := m.AddTxJoules(2*sim.Second, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTxJoules(5*sim.Second, 0.25); err != nil {
		t.Fatal(err)
	}
	if got := m.TxExtraJoules(); !almostEqual(got, 0.75) {
		t.Fatalf("TxExtraJoules = %v, want 0.75", got)
	}
	want := m.AwakeWatts()*m.AwakeTime().Seconds() + m.SleepWatts()*m.SleepTime().Seconds() + m.TxExtraJoules()
	if !almostEqual(m.Joules(), want) {
		t.Fatalf("joules %v != decomposition %v", m.Joules(), want)
	}
}

// TestAddTxJoulesNegativeFloorsAtZeroSpend: a reduced-power radio saves
// energy, but the saving can never exceed what the meter has accrued.
func TestAddTxJoulesNegativeFloorsAtZeroSpend(t *testing.T) {
	m := NewMeter(1.0, 0.05, 0)
	if err := m.AddTxJoules(1*sim.Second, -5); err != nil { // accrued only 1 J
		t.Fatal(err)
	}
	if got := m.Joules(); got != 0 {
		t.Fatalf("joules = %v, want clamp at 0", got)
	}
	if got := m.TxExtraJoules(); !almostEqual(got, -1) {
		t.Fatalf("TxExtraJoules = %v, want -1 (the accrued joule)", got)
	}
}

// TestAddTxJoulesDepletesBattery: TX-driven spend that hits a finite
// capacity depletes the node at that instant, not at the next accrual.
func TestAddTxJoulesDepletesBattery(t *testing.T) {
	m := NewMeter(1.0, 0.05, 3)
	if err := m.AddTxJoules(2*sim.Second, 10); err != nil { // 2 accrued + 10 >> 3
		t.Fatal(err)
	}
	if !m.Depleted() {
		t.Fatal("meter not depleted after TX spend past capacity")
	}
	if at, ok := m.DepletedAt(); !ok || at != 2*sim.Second {
		t.Fatalf("DepletedAt = %v,%v; want 2s", at, ok)
	}
	if got := m.Joules(); !almostEqual(got, 3) {
		t.Fatalf("joules = %v, want capacity 3", got)
	}
	// The decomposition still holds: txExtra absorbed only what fit.
	want := m.AwakeWatts()*m.AwakeTime().Seconds() + m.SleepWatts()*m.SleepTime().Seconds() + m.TxExtraJoules()
	if !almostEqual(m.Joules(), want) {
		t.Fatalf("joules %v != decomposition %v", m.Joules(), want)
	}
}
