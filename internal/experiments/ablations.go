package experiments

import (
	"rcast/internal/core"
	"rcast/internal/scenario"
)

// PolicyResult is one row of the overhearing-policy ablation.
type PolicyResult struct {
	Policy         string
	TotalJoules    float64
	EnergyVariance float64
	PDR            float64
	AvgDelaySec    float64
	Overhead       float64
}

// AblationPolicies compares the paper's evaluated P_R = 1/neighbors policy
// against the §3.2/§5 factor policies (sender ID, battery, mobility, and
// all factors combined) on the Rcast stack at the low-rate mobile point.
func (s *Suite) AblationPolicies() ([]PolicyResult, error) {
	policies := []string{"rcast", "sender-id", "battery", "mobility", "combined"}
	cfgs := make([]scenario.Config, len(policies))
	for i, name := range policies {
		cfgs[i] = s.config(runKey{scheme: scenario.SchemeRcast, rate: s.p.LowRate})
		cfgs[i].PolicyName = name
	}
	aggs, err := s.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	s.printf("== Ablation A1: overhearing-decision factors (Rcast stack, rate=%.1f, mobile) ==\n", s.p.LowRate)
	s.printf("%-10s %10s %10s %8s %9s %9s\n", "policy", "energy(J)", "varJ", "PDR", "delay(s)", "overhead")
	var rows []PolicyResult
	for i, name := range policies {
		a := aggs[i]
		row := PolicyResult{
			Policy:         name,
			TotalJoules:    a.TotalJoules.Mean(),
			EnergyVariance: a.EnergyVariance.Mean(),
			PDR:            a.PDR.Mean(),
			AvgDelaySec:    a.AvgDelaySec.Mean(),
			Overhead:       a.NormalizedOverhead.Mean(),
		}
		rows = append(rows, row)
		s.printf("%-10s %10.0f %10.0f %8.3f %9.3f %9.2f\n",
			row.Policy, row.TotalJoules, row.EnergyVariance, row.PDR, row.AvgDelaySec, row.Overhead)
	}
	s.printf("\n")
	return rows, nil
}

// LevelResult is one row of the overhearing-level ablation.
type LevelResult struct {
	Scheme         scenario.Scheme
	TotalJoules    float64
	PDR            float64
	Overhead       float64
	EnergyPerBit   float64
	EnergyVariance float64
}

// AblationLevels compares the Fig. 2 overhearing taxonomy end to end:
// no overhearing (naive PSM), unconditional overhearing (unmodified PSM),
// and randomized overhearing (Rcast).
func (s *Suite) AblationLevels() ([]LevelResult, error) {
	schemes := []scenario.Scheme{
		scenario.SchemePSMNoOverhear, scenario.SchemePSM, scenario.SchemeRcast,
	}
	keys := make([]runKey, len(schemes))
	for i, sch := range schemes {
		keys[i] = runKey{scheme: sch, rate: s.p.LowRate}
	}
	if err := s.prefetch(keys...); err != nil {
		return nil, err
	}
	s.printf("== Ablation A2: no / unconditional / randomized overhearing (rate=%.1f, mobile) ==\n", s.p.LowRate)
	s.printf("%-16s %10s %8s %9s %10s %10s\n", "scheme", "energy(J)", "PDR", "overhead", "EPB", "varJ")
	var rows []LevelResult
	for _, sch := range schemes {
		a, err := s.agg(runKey{scheme: sch, rate: s.p.LowRate})
		if err != nil {
			return nil, err
		}
		row := LevelResult{
			Scheme:         sch,
			TotalJoules:    a.TotalJoules.Mean(),
			PDR:            a.PDR.Mean(),
			Overhead:       a.NormalizedOverhead.Mean(),
			EnergyPerBit:   a.EnergyPerBit.Mean(),
			EnergyVariance: a.EnergyVariance.Mean(),
		}
		rows = append(rows, row)
		s.printf("%-16s %10.0f %8.3f %9.2f %10.2e %10.0f\n",
			sch, row.TotalJoules, row.PDR, row.Overhead, row.EnergyPerBit, row.EnergyVariance)
	}
	s.printf("\n")
	return rows, nil
}

// GossipResult is one row of the broadcast-Rcast ablation.
type GossipResult struct {
	Gossip   bool
	PDR      float64
	RREQTx   float64 // mean RREQ transmissions per replication
	Overhead float64
}

// AblationGossip compares plain RREQ flooding against the §5 extension of
// Rcast-ing broadcasts (probabilistic rebroadcast damping) on the Rcast
// stack at the high-rate mobile point, where discoveries are most frequent.
func (s *Suite) AblationGossip() ([]GossipResult, error) {
	if err := s.prefetch(
		runKey{scheme: scenario.SchemeRcast, rate: s.p.HighRate},
		runKey{scheme: scenario.SchemeRcast, rate: s.p.HighRate, gossip: true},
	); err != nil {
		return nil, err
	}
	s.printf("== Ablation A3: broadcast Rcast (RREQ rebroadcast damping, rate=%.1f, mobile) ==\n", s.p.HighRate)
	s.printf("%-8s %8s %12s %9s\n", "gossip", "PDR", "RREQ tx", "overhead")
	var rows []GossipResult
	for _, gossip := range []bool{false, true} {
		a, err := s.agg(runKey{scheme: scenario.SchemeRcast, rate: s.p.HighRate, gossip: gossip})
		if err != nil {
			return nil, err
		}
		var rreq float64
		for _, r := range a.Results {
			rreq += float64(r.ControlByClass[core.ClassRREQ])
		}
		rreq /= float64(len(a.Results))
		row := GossipResult{
			Gossip:   gossip,
			PDR:      a.PDR.Mean(),
			RREQTx:   rreq,
			Overhead: a.NormalizedOverhead.Mean(),
		}
		rows = append(rows, row)
		s.printf("%-8v %8.3f %12.0f %9.2f\n", gossip, row.PDR, row.RREQTx, row.Overhead)
	}
	s.printf("\n")
	return rows, nil
}
