package experiments

import (
	"rcast/internal/scenario"
)

// ChannelResult is one row of the A9 channel/mobility ablation.
type ChannelResult struct {
	Channel     string
	Mobility    string
	Scheme      scenario.Scheme
	PDR         float64
	TotalJoules float64
	AvgDelaySec float64
	ChanLost    float64 // mean frames lost to the propagation model
	DeltaPDR    float64 // Rcast PDR minus PSM PDR for this cell (Rcast rows only)
}

// channelSchemes are the two schemes A9 compares: Rcast against
// unconditional overhearing (unmodified PSM), the pair behind the paper's
// "at most 3% delivery loss" claim.
var channelSchemes = []scenario.Scheme{scenario.SchemePSM, scenario.SchemeRcast}

// pdrLossBudget is the paper's claimed ceiling on Rcast's delivery-ratio
// loss versus unconditional overhearing (§4.2): 3 percentage points.
const pdrLossBudget = 0.03

// AblationChannels is A9: does Rcast's randomized-overhearing bargain
// survive channel randomness? The paper evaluates on an ideal disk
// channel; here Rcast and unconditional overhearing (PSM) are re-run
// under log-normal shadowing and Rayleigh fading crossed with the
// Gauss–Markov and group mobility models, and each cell's PDR gap is
// checked against the paper's ≤3% loss budget.
func (s *Suite) AblationChannels() ([]ChannelResult, error) {
	channels := scenario.ChannelNames()
	mobilities := scenario.MobilityNames()
	var cfgs []scenario.Config
	for _, ch := range channels {
		for _, mob := range mobilities {
			for _, sch := range channelSchemes {
				cfg := s.config(runKey{scheme: sch, rate: s.p.LowRate})
				cfg.Channel = ch
				cfg.Mobility = mob
				if ch == "shadowing" {
					cfg.ShadowSigmaDB = 4
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	aggs, err := s.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	s.printf("== Ablation A9: channel x mobility (rate=%.1f, mobile, Rcast vs unconditional PSM) ==\n", s.p.LowRate)
	s.printf("%-10s %-12s %-8s %8s %10s %9s %10s %8s\n",
		"channel", "mobility", "scheme", "PDR", "energy(J)", "delay(s)", "chanLost", "dPDR")
	var rows []ChannelResult
	worst := 0.0
	cell := 0
	for _, ch := range channels {
		for _, mob := range mobilities {
			var psmPDR float64
			for _, sch := range channelSchemes {
				a := aggs[cell]
				cell++
				var chanLost float64
				for _, r := range a.Results {
					chanLost += float64(r.Channel.ChannelLost)
				}
				row := ChannelResult{
					Channel:     ch,
					Mobility:    mob,
					Scheme:      sch,
					PDR:         a.PDR.Mean(),
					TotalJoules: a.TotalJoules.Mean(),
					AvgDelaySec: a.AvgDelaySec.Mean(),
					ChanLost:    chanLost / float64(len(a.Results)),
				}
				if sch == scenario.SchemePSM {
					psmPDR = row.PDR
					s.printf("%-10s %-12s %-8s %8.3f %10.0f %9.3f %10.0f %8s\n",
						row.Channel, row.Mobility, sch, row.PDR, row.TotalJoules,
						row.AvgDelaySec, row.ChanLost, "-")
				} else {
					row.DeltaPDR = row.PDR - psmPDR
					if loss := -row.DeltaPDR; loss > worst {
						worst = loss
					}
					s.printf("%-10s %-12s %-8s %8.3f %10.0f %9.3f %10.0f %+8.3f\n",
						row.Channel, row.Mobility, sch, row.PDR, row.TotalJoules,
						row.AvgDelaySec, row.ChanLost, row.DeltaPDR)
				}
				rows = append(rows, row)
			}
		}
	}
	verdict := "holds"
	if worst > pdrLossBudget {
		verdict = "VIOLATED"
	}
	s.printf("worst Rcast PDR loss vs PSM: %.3f (budget %.2f) — claim %s under channel randomness\n\n",
		worst, pdrLossBudget, verdict)
	return rows, nil
}
