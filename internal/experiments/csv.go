package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteSweepCSV exports the Figs. 6–8 rate sweep as CSV for external
// plotting: one row per (pause, rate, scheme) with every sweep metric.
func (s *Suite) WriteSweepCSV(w io.Writer) error {
	points, err := s.sweep()
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{
		"pause", "rate", "scheme",
		"total_joules", "energy_variance", "pdr",
		"energy_per_bit", "avg_delay_s", "normalized_overhead",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range points {
		pause := "mobile"
		if p.Static {
			pause = "static"
		}
		row := []string{
			pause,
			strconv.FormatFloat(p.Rate, 'f', 1, 64),
			p.Scheme.String(),
			strconv.FormatFloat(p.TotalJoules, 'f', 1, 64),
			strconv.FormatFloat(p.EnergyVariance, 'f', 1, 64),
			strconv.FormatFloat(p.PDR, 'f', 4, 64),
			strconv.FormatFloat(p.EnergyPerBit, 'e', 4, 64),
			strconv.FormatFloat(p.AvgDelaySec, 'f', 4, 64),
			strconv.FormatFloat(p.NormalizedOverhead, 'f', 3, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig5CSV exports the full ascending per-node energy curves (the
// paper plots all 100 nodes; the text report shows percentiles only).
// One row per (pause, rate, scheme, node_rank).
func (s *Suite) WriteFig5CSV(w io.Writer) error {
	panels, err := s.Fig5()
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pause", "rate", "scheme", "node_rank", "joules"}); err != nil {
		return err
	}
	for _, panel := range panels {
		pause := "mobile"
		if panel.Static {
			pause = "static"
		}
		for _, sch := range figureSchemes {
			curve := panel.Curves[sch]
			for rank, j := range curve {
				row := []string{
					pause,
					strconv.FormatFloat(panel.Rate, 'f', 1, 64),
					sch.String(),
					strconv.Itoa(rank),
					strconv.FormatFloat(j, 'f', 2, 64),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig9CSV exports the per-node (role number, energy) scatter points
// behind Fig. 9. One row per (rate, scheme, node).
func (s *Suite) WriteFig9CSV(w io.Writer) error {
	var keys []runKey
	for _, rate := range []float64{s.p.LowRate, s.p.HighRate} {
		for _, sch := range figureSchemes {
			keys = append(keys, runKey{scheme: sch, rate: rate})
		}
	}
	if err := s.prefetch(keys...); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rate", "scheme", "node", "role_number", "joules"}); err != nil {
		return err
	}
	for _, rate := range []float64{s.p.LowRate, s.p.HighRate} {
		for _, sch := range figureSchemes {
			a, err := s.agg(runKey{scheme: sch, rate: rate})
			if err != nil {
				return err
			}
			r := a.Results[0]
			for node := range r.RoleNumbers {
				row := []string{
					strconv.FormatFloat(rate, 'f', 1, 64),
					sch.String(),
					strconv.Itoa(node),
					strconv.FormatFloat(r.RoleNumbers[node], 'f', 0, 64),
					strconv.FormatFloat(r.PerNodeJoules[node], 'f', 2, 64),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
			// Sanity footer comment rows are not valid CSV; instead assert
			// internally that the vectors are aligned.
			if len(r.RoleNumbers) != len(r.PerNodeJoules) {
				return fmt.Errorf("experiments: role/energy length mismatch (%d vs %d)",
					len(r.RoleNumbers), len(r.PerNodeJoules))
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SummaryLine returns a one-line digest of the headline comparison at the
// low-rate mobile point, used by tooling banners.
func (s *Suite) SummaryLine() (string, error) {
	keys := make([]runKey, len(figureSchemes))
	for i, sch := range figureSchemes {
		keys[i] = runKey{scheme: sch, rate: s.p.LowRate}
	}
	if err := s.prefetch(keys...); err != nil {
		return "", err
	}
	var parts []string
	for _, sch := range figureSchemes {
		a, err := s.agg(runKey{scheme: sch, rate: s.p.LowRate})
		if err != nil {
			return "", err
		}
		parts = append(parts, fmt.Sprintf("%s %.0fJ/%.1f%%",
			sch, a.TotalJoules.Mean(), 100*a.PDR.Mean()))
	}
	line := parts[0]
	for _, p := range parts[1:] {
		line += "  " + p
	}
	return line, nil
}
