package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteSweepCSV(t *testing.T) {
	s := NewSuite(tiny(), nil)
	var buf bytes.Buffer
	if err := s.WriteSweepCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 2 pauses x 2 rates x 3 schemes.
	if len(records) != 1+2*2*3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[0][0] != "pause" || len(records[0]) != 9 {
		t.Fatalf("header = %v", records[0])
	}
	for _, rec := range records[1:] {
		if rec[0] != "mobile" && rec[0] != "static" {
			t.Fatalf("bad pause %q", rec[0])
		}
	}
}

func TestWriteFig5CSV(t *testing.T) {
	s := NewSuite(tiny(), nil)
	var buf bytes.Buffer
	if err := s.WriteFig5CSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 4 panels x 3 schemes x N nodes.
	want := 1 + 4*3*tiny().Nodes
	if len(records) != want {
		t.Fatalf("rows = %d, want %d", len(records), want)
	}
}

func TestWriteFig9CSV(t *testing.T) {
	s := NewSuite(tiny(), nil)
	var buf bytes.Buffer
	if err := s.WriteFig9CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	// header + 2 rates x 3 schemes x N nodes.
	want := 1 + 2*3*tiny().Nodes
	if lines != want {
		t.Fatalf("lines = %d, want %d", lines, want)
	}
}

func TestSummaryLine(t *testing.T) {
	s := NewSuite(tiny(), nil)
	line, err := s.SummaryLine()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"802.11", "ODPM", "Rcast", "J/"} {
		if !strings.Contains(line, want) {
			t.Fatalf("summary %q missing %q", line, want)
		}
	}
}
