// Package experiments regenerates every table and figure of the paper's
// evaluation section (§4), plus the ablations DESIGN.md calls out. Each
// generator prints the same rows/series the paper reports and returns the
// underlying data for programmatic checks.
//
// Runs are cached per (scheme, rate, pause, gossip) so the figure
// generators share simulations: Figs. 6, 7 and 8 all derive from one rate
// sweep, and Figs. 5 and 9 reuse its corner points.
package experiments

import (
	"fmt"
	"io"

	"rcast/internal/scenario"
	"rcast/internal/sim"
)

// Profile scales the experiment suite. Paper() is the §4.1 setup; Quick()
// is a reduced profile for CI and `go test -bench`.
type Profile struct {
	Name           string
	Nodes          int
	FieldW, FieldH float64
	Connections    int
	Duration       sim.Time
	Reps           int
	// Rates is the packet-rate sweep for Figs. 6–8; it must contain
	// LowRate and HighRate, the corner points used by Figs. 5 and 9.
	Rates             []float64
	LowRate, HighRate float64
	// PauseMobile is the mobile pause time; the static scenario uses
	// pause = Duration, as in the paper.
	PauseMobile sim.Time
	BaseSeed    int64
}

// Paper returns the full-scale profile of §4.1. The paper averages ten
// replications; three keep the suite under an hour while stabilizing the
// series (see EXPERIMENTS.md).
func Paper() Profile {
	return Profile{
		Name:        "paper",
		Nodes:       100,
		FieldW:      1500,
		FieldH:      300,
		Connections: 20,
		Duration:    1125 * sim.Second,
		Reps:        3,
		Rates:       []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0},
		LowRate:     0.4,
		HighRate:    2.0,
		PauseMobile: 600 * sim.Second,
		BaseSeed:    1,
	}
}

// Quick returns a reduced profile (≈ 50× faster) preserving the paper's
// qualitative shape: fewer nodes on a proportionally smaller field, shorter
// runs, a coarser rate sweep, one replication.
func Quick() Profile {
	return Profile{
		Name:        "quick",
		Nodes:       40,
		FieldW:      900,
		FieldH:      300,
		Connections: 8,
		Duration:    150 * sim.Second,
		Reps:        1,
		Rates:       []float64{0.2, 0.4, 1.0, 2.0},
		LowRate:     0.4,
		HighRate:    2.0,
		PauseMobile: 75 * sim.Second,
		BaseSeed:    1,
	}
}

// figureSchemes are the three schemes of the paper's figures.
var figureSchemes = []scenario.Scheme{
	scenario.SchemeAlwaysOn,
	scenario.SchemeODPM,
	scenario.SchemeRcast,
}

// runKey identifies a cached simulation batch.
type runKey struct {
	scheme scenario.Scheme
	rate   float64
	static bool
	gossip bool
}

// Suite runs and caches the simulations behind all generators.
type Suite struct {
	p     Profile
	out   io.Writer
	cache map[runKey]*scenario.Aggregate
}

// NewSuite creates a suite writing its reports to out.
func NewSuite(p Profile, out io.Writer) *Suite {
	if out == nil {
		out = io.Discard
	}
	return &Suite{p: p, out: out, cache: make(map[runKey]*scenario.Aggregate)}
}

// Runs returns how many distinct simulation batches have been executed.
func (s *Suite) Runs() int { return len(s.cache) }

func (s *Suite) config(k runKey) scenario.Config {
	cfg := scenario.PaperDefaults()
	cfg.Scheme = k.scheme
	cfg.Nodes = s.p.Nodes
	cfg.FieldW = s.p.FieldW
	cfg.FieldH = s.p.FieldH
	cfg.Connections = s.p.Connections
	cfg.Duration = s.p.Duration
	cfg.PacketRate = k.rate
	cfg.Seed = s.p.BaseSeed
	if k.static {
		cfg.Pause = s.p.Duration
	} else {
		cfg.Pause = s.p.PauseMobile
	}
	if k.gossip {
		cfg.GossipFanout = 3
	}
	return cfg
}

// agg returns the cached aggregate for a key, running it on first use.
func (s *Suite) agg(k runKey) (*scenario.Aggregate, error) {
	if a, ok := s.cache[k]; ok {
		return a, nil
	}
	a, err := scenario.RunReplications(s.config(k), s.p.Reps)
	if err != nil {
		return nil, fmt.Errorf("experiments: %v rate=%.1f static=%v: %w",
			k.scheme, k.rate, k.static, err)
	}
	s.cache[k] = a
	return a, nil
}

func (s *Suite) printf(format string, args ...any) {
	fmt.Fprintf(s.out, format, args...)
}

func pauseLabel(static bool) string {
	if static {
		return "Tpause=static"
	}
	return "Tpause=mobile"
}

// All regenerates every table and figure in order.
func (s *Suite) All() error {
	steps := []func() error{
		func() error { _, err := s.Table1(); return err },
		func() error { _, err := s.Fig5(); return err },
		func() error { _, err := s.Fig6(); return err },
		func() error { _, err := s.Fig7(); return err },
		func() error { _, err := s.Fig8(); return err },
		func() error { _, err := s.Fig9(); return err },
		func() error { _, err := s.AblationPolicies(); return err },
		func() error { _, err := s.AblationLevels(); return err },
		func() error { _, err := s.AblationGossip(); return err },
		func() error { _, err := s.AblationCacheStrategies(); return err },
		func() error { _, err := s.AblationLifetime(); return err },
		func() error { _, err := s.AblationRouting(); return err },
		func() error { _, err := s.AblationATIM(); return err },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}
