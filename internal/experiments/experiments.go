// Package experiments regenerates every table and figure of the paper's
// evaluation section (§4), plus the ablations DESIGN.md calls out. Each
// generator prints the same rows/series the paper reports and returns the
// underlying data for programmatic checks.
//
// Runs are cached per (scheme, rate, pause, gossip) so the figure
// generators share simulations: Figs. 6, 7 and 8 all derive from one rate
// sweep, and Figs. 5 and 9 reuse its corner points.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"rcast/internal/fault"
	"rcast/internal/scenario"
	"rcast/internal/sim"
	"rcast/internal/trace"
)

// Profile scales the experiment suite. Paper() is the §4.1 setup; Quick()
// is a reduced profile for CI and `go test -bench`.
type Profile struct {
	Name           string
	Nodes          int
	FieldW, FieldH float64
	Connections    int
	Duration       sim.Time
	Reps           int
	// Rates is the packet-rate sweep for Figs. 6–8; it must contain
	// LowRate and HighRate, the corner points used by Figs. 5 and 9.
	Rates             []float64
	LowRate, HighRate float64
	// PauseMobile is the mobile pause time; the static scenario uses
	// pause = Duration, as in the paper.
	PauseMobile sim.Time
	BaseSeed    int64
}

// Paper returns the full-scale profile of §4.1. The paper averages ten
// replications; three keep the suite under an hour while stabilizing the
// series (see EXPERIMENTS.md).
func Paper() Profile {
	return Profile{
		Name:        "paper",
		Nodes:       100,
		FieldW:      1500,
		FieldH:      300,
		Connections: 20,
		Duration:    1125 * sim.Second,
		Reps:        3,
		Rates:       []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0},
		LowRate:     0.4,
		HighRate:    2.0,
		PauseMobile: 600 * sim.Second,
		BaseSeed:    1,
	}
}

// Quick returns a reduced profile (≈ 50× faster) preserving the paper's
// qualitative shape: fewer nodes on a proportionally smaller field, shorter
// runs, a coarser rate sweep, one replication.
func Quick() Profile {
	return Profile{
		Name:        "quick",
		Nodes:       40,
		FieldW:      900,
		FieldH:      300,
		Connections: 8,
		Duration:    150 * sim.Second,
		Reps:        1,
		Rates:       []float64{0.2, 0.4, 1.0, 2.0},
		LowRate:     0.4,
		HighRate:    2.0,
		PauseMobile: 75 * sim.Second,
		BaseSeed:    1,
	}
}

// figureSchemes are the three schemes of the paper's figures.
var figureSchemes = []scenario.Scheme{
	scenario.SchemeAlwaysOn,
	scenario.SchemeODPM,
	scenario.SchemeRcast,
}

// runKey identifies a cached simulation batch.
type runKey struct {
	scheme scenario.Scheme
	rate   float64
	static bool
	gossip bool
}

// Suite runs and caches the simulations behind all generators. Simulation
// cells fan out across a worker pool (see Runner); the reports and series a
// suite produces are byte-identical for every worker count.
type Suite struct {
	p         Profile
	out       io.Writer
	cache     map[runKey]*scenario.Aggregate
	workers   int
	audit     bool
	faults    *fault.Plan
	traceSink trace.Sink
	ctx       context.Context
	simRuns   atomic.Int64
}

// NewSuite creates a suite writing its reports to out. Runs fan out across
// runtime.GOMAXPROCS(0) workers by default; see SetWorkers.
func NewSuite(p Profile, out io.Writer) *Suite {
	if out == nil {
		out = io.Discard
	}
	return &Suite{p: p, out: out, cache: make(map[runKey]*scenario.Aggregate)}
}

// SetWorkers bounds the concurrency of the suite's simulation runs:
// n <= 0 selects runtime.GOMAXPROCS(0), 1 reproduces the serial path.
// Every setting produces identical output.
func (s *Suite) SetWorkers(n int) { s.workers = n }

// SetAudit turns on the cross-layer invariant audit (scenario.Config.Audit)
// for every simulation the suite runs. Any violation aborts the suite with
// an error naming the first breach. Metrics are unchanged either way: the
// audit only observes.
func (s *Suite) SetAudit(on bool) { s.audit = on }

// SetFaults installs a fault plan (see internal/fault) applied to every
// simulation the suite builds — figures and ablations alike, except the
// fault ablation itself, whose cells carry their own per-variant plans.
// Cached aggregates from a previous plan would be stale, so the cache is
// cleared; call SetFaults before running any generator.
func (s *Suite) SetFaults(plan *fault.Plan) {
	s.faults = plan
	s.cache = make(map[runKey]*scenario.Aggregate)
}

// SetTrace installs a packet-lifecycle trace sink (scenario.Config.Trace)
// on every simulation the suite runs. A non-nil sink forces the runner
// serial (sinks are not safe for concurrent emission), so expect the
// suite to slow accordingly. Cached aggregates were produced without the
// sink's events, so the cache is cleared; call SetTrace before running
// any generator.
func (s *Suite) SetTrace(sink trace.Sink) {
	s.traceSink = sink
	s.cache = make(map[runKey]*scenario.Aggregate)
}

// SetContext installs a cancellation context consulted between simulation
// runs; cancelling it makes the in-progress generator return its error.
func (s *Suite) SetContext(ctx context.Context) { s.ctx = ctx }

// Runs returns how many distinct simulation batches have been executed.
func (s *Suite) Runs() int { return len(s.cache) }

// SimRuns returns how many individual simulations have completed (each
// replication of each batch counts once, ablation batches included).
func (s *Suite) SimRuns() int64 { return s.simRuns.Load() }

func (s *Suite) runner() Runner {
	return Runner{Workers: s.workers, OnRunDone: func() { s.simRuns.Add(1) }}
}

func (s *Suite) context() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

func (s *Suite) config(k runKey) scenario.Config {
	cfg := scenario.PaperDefaults()
	cfg.Scheme = k.scheme
	cfg.Nodes = s.p.Nodes
	cfg.FieldW = s.p.FieldW
	cfg.FieldH = s.p.FieldH
	cfg.Connections = s.p.Connections
	cfg.Duration = s.p.Duration
	cfg.PacketRate = k.rate
	cfg.Seed = s.p.BaseSeed
	if k.static {
		cfg.Pause = s.p.Duration
	} else {
		cfg.Pause = s.p.PauseMobile
	}
	if k.gossip {
		cfg.GossipFanout = 3
	}
	cfg.Audit = s.audit
	cfg.Faults = s.faults
	cfg.Trace = s.traceSink
	return cfg
}

// agg returns the cached aggregate for a key, running it on first use.
func (s *Suite) agg(k runKey) (*scenario.Aggregate, error) {
	if a, ok := s.cache[k]; ok {
		return a, nil
	}
	if err := s.prefetch(k); err != nil {
		return nil, fmt.Errorf("experiments: %v rate=%.1f static=%v: %w",
			k.scheme, k.rate, k.static, err)
	}
	return s.cache[k], nil
}

// prefetch simulates every not-yet-cached key of the batch across the
// worker pool, so one figure's independent cells run concurrently instead
// of one by one. Generators call it with their full key set before reading
// any aggregate; printing then happens from the cache in deterministic
// order, keeping output byte-identical for every worker count.
func (s *Suite) prefetch(keys ...runKey) error {
	var missing []runKey
	seen := make(map[runKey]bool, len(keys))
	for _, k := range keys {
		if _, ok := s.cache[k]; ok || seen[k] {
			continue
		}
		seen[k] = true
		missing = append(missing, k)
	}
	if len(missing) == 0 {
		return nil
	}
	specs := make([]RunSpec, len(missing))
	for i, k := range missing {
		specs[i] = RunSpec{Cfg: s.config(k), Reps: s.p.Reps}
	}
	aggs, err := s.runner().Run(s.context(), specs)
	if err != nil {
		return err
	}
	for i, k := range missing {
		s.cache[k] = aggs[i]
	}
	return nil
}

// runConfigs executes one replication batch per config across the worker
// pool and returns aggregates in input order. Used by the ablations, whose
// configs carry knobs outside the runKey cache.
func (s *Suite) runConfigs(cfgs []scenario.Config) ([]*scenario.Aggregate, error) {
	specs := make([]RunSpec, len(cfgs))
	for i, cfg := range cfgs {
		cfg.Audit = cfg.Audit || s.audit
		if cfg.Trace == nil {
			cfg.Trace = s.traceSink
		}
		specs[i] = RunSpec{Cfg: cfg, Reps: s.p.Reps}
	}
	return s.runner().Run(s.context(), specs)
}

func (s *Suite) printf(format string, args ...any) {
	fmt.Fprintf(s.out, format, args...)
}

func pauseLabel(static bool) string {
	if static {
		return "Tpause=static"
	}
	return "Tpause=mobile"
}

// sweepKeys returns every cell of the Figs. 6–8 rate sweep (which also
// covers Table 1, Fig. 5 and Fig. 9, whose corner rates are in the sweep).
func (s *Suite) sweepKeys() []runKey {
	var keys []runKey
	for _, static := range []bool{false, true} {
		for _, rate := range s.p.Rates {
			for _, sch := range figureSchemes {
				keys = append(keys, runKey{scheme: sch, rate: rate, static: static})
			}
		}
	}
	return keys
}

// All regenerates every table and figure in order.
func (s *Suite) All() error {
	// Fan out every cacheable cell of every figure at once, so the worker
	// pool sees the whole suite's parallelism instead of one figure's.
	keys := s.sweepKeys()
	keys = append(keys,
		runKey{scheme: scenario.SchemePSMNoOverhear, rate: s.p.LowRate},
		runKey{scheme: scenario.SchemePSM, rate: s.p.LowRate},
		runKey{scheme: scenario.SchemeRcast, rate: s.p.HighRate, gossip: true},
	)
	if err := s.prefetch(keys...); err != nil {
		return err
	}
	steps := []func() error{
		func() error { _, err := s.Table1(); return err },
		func() error { _, err := s.Fig5(); return err },
		func() error { _, err := s.Fig6(); return err },
		func() error { _, err := s.Fig7(); return err },
		func() error { _, err := s.Fig8(); return err },
		func() error { _, err := s.Fig9(); return err },
		func() error { _, err := s.AblationPolicies(); return err },
		func() error { _, err := s.AblationLevels(); return err },
		func() error { _, err := s.AblationGossip(); return err },
		func() error { _, err := s.AblationCacheStrategies(); return err },
		func() error { _, err := s.AblationLifetime(); return err },
		func() error { _, err := s.AblationRouting(); return err },
		func() error { _, err := s.AblationATIM(); return err },
		func() error { _, err := s.AblationFaults(); return err },
		func() error { _, err := s.AblationChannels(); return err },
		func() error { _, err := s.AblationTxPower(); return err },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}
