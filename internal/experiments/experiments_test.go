package experiments

import (
	"bytes"
	"strings"
	"testing"

	"rcast/internal/fault"
	"rcast/internal/scenario"
	"rcast/internal/sim"
)

// tiny returns a profile small enough for unit tests (< 1 s per run).
func tiny() Profile {
	return Profile{
		Name:        "tiny",
		Nodes:       25,
		FieldW:      750,
		FieldH:      300,
		Connections: 5,
		Duration:    40 * sim.Second,
		Reps:        1,
		Rates:       []float64{0.4, 2.0},
		LowRate:     0.4,
		HighRate:    2.0,
		PauseMobile: 20 * sim.Second,
		BaseSeed:    1,
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(tiny(), &buf)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// 802.11 nodes are always awake; Rcast nodes are not.
	if rows[0].Scheme != scenario.SchemeAlwaysOn || rows[0].AwakeFraction < 0.999 {
		t.Fatalf("802.11 awake fraction = %v", rows[0].AwakeFraction)
	}
	var rcastRow *Table1Row
	for i := range rows {
		if rows[i].Scheme == scenario.SchemeRcast {
			rcastRow = &rows[i]
		}
	}
	if rcastRow == nil || rcastRow.AwakeFraction > 0.9 {
		t.Fatalf("Rcast awake fraction = %+v", rcastRow)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("report missing header")
	}
}

func TestFig5(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(tiny(), &buf)
	panels, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 4 {
		t.Fatalf("got %d panels, want 4", len(panels))
	}
	for _, p := range panels {
		for sch, curve := range p.Curves {
			if len(curve) != tiny().Nodes {
				t.Fatalf("%v curve has %d points", sch, len(curve))
			}
			for i := 1; i < len(curve); i++ {
				if curve[i] < curve[i-1] {
					t.Fatalf("%v curve not ascending", sch)
				}
			}
		}
		// The headline: Rcast's hottest node is cooler than 802.11's flat line.
		rc := p.Curves[scenario.SchemeRcast]
		ao := p.Curves[scenario.SchemeAlwaysOn]
		if rc[len(rc)-1] >= ao[len(ao)-1]+1e-9 {
			t.Fatalf("Rcast max %.1f not below 802.11 %.1f", rc[len(rc)-1], ao[len(ao)-1])
		}
	}
}

func TestSweepFiguresShareRuns(t *testing.T) {
	s := NewSuite(tiny(), nil)
	if _, err := s.Fig6(); err != nil {
		t.Fatal(err)
	}
	after6 := s.Runs()
	if _, err := s.Fig7(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig8(); err != nil {
		t.Fatal(err)
	}
	if s.Runs() != after6 {
		t.Fatalf("Figs 7/8 re-ran simulations: %d -> %d", after6, s.Runs())
	}
}

func TestFig6VarianceShape(t *testing.T) {
	s := NewSuite(tiny(), nil)
	points, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Scheme == scenario.SchemeAlwaysOn && p.EnergyVariance != 0 {
			t.Fatalf("802.11 variance = %v at rate %v", p.EnergyVariance, p.Rate)
		}
		if p.EnergyVariance < 0 {
			t.Fatal("negative variance")
		}
	}
}

func TestFig7EnergyOrdering(t *testing.T) {
	s := NewSuite(tiny(), nil)
	points, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[runKey]SweepPoint)
	for _, p := range points {
		byKey[runKey{scheme: p.Scheme, rate: p.Rate, static: p.Static}] = p
	}
	for _, rate := range tiny().Rates {
		ao := byKey[runKey{scheme: scenario.SchemeAlwaysOn, rate: rate}]
		rc := byKey[runKey{scheme: scenario.SchemeRcast, rate: rate}]
		if rc.TotalJoules >= ao.TotalJoules {
			t.Fatalf("rate %.1f: Rcast energy %.0f not below 802.11 %.0f",
				rate, rc.TotalJoules, ao.TotalJoules)
		}
		if rc.PDR < 0.5 || ao.PDR < 0.5 {
			t.Fatalf("rate %.1f: implausible PDR (rcast %.2f, 802.11 %.2f)", rate, rc.PDR, ao.PDR)
		}
	}
}

func TestFig8DelayOrdering(t *testing.T) {
	s := NewSuite(tiny(), nil)
	points, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range tiny().Rates {
		var ao, rc SweepPoint
		for _, p := range points {
			if p.Rate != rate || p.Static {
				continue
			}
			switch p.Scheme {
			case scenario.SchemeAlwaysOn:
				ao = p
			case scenario.SchemeRcast:
				rc = p
			}
		}
		if rc.AvgDelaySec <= ao.AvgDelaySec {
			t.Fatalf("rate %.1f: Rcast delay %.3f not above 802.11 %.3f",
				rate, rc.AvgDelaySec, ao.AvgDelaySec)
		}
	}
}

func TestFig9(t *testing.T) {
	s := NewSuite(tiny(), nil)
	panels, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 6 {
		t.Fatalf("got %d panels, want 6", len(panels))
	}
	for _, p := range panels {
		if p.RoleMax < p.RoleMean {
			t.Fatalf("%v: RoleMax %v < RoleMean %v", p.Scheme, p.RoleMax, p.RoleMean)
		}
		if p.Scheme == scenario.SchemeAlwaysOn && p.Correlation != 0 {
			// 802.11 energy is flat, so the correlation is undefined -> 0.
			t.Fatalf("802.11 correlation = %v", p.Correlation)
		}
	}
}

func TestAblations(t *testing.T) {
	s := NewSuite(tiny(), nil)
	pols, err := s.AblationPolicies()
	if err != nil {
		t.Fatal(err)
	}
	if len(pols) != 5 {
		t.Fatalf("A1: %d rows", len(pols))
	}
	lvls, err := s.AblationLevels()
	if err != nil {
		t.Fatal(err)
	}
	if len(lvls) != 3 {
		t.Fatalf("A2: %d rows", len(lvls))
	}
	// Randomized overhearing must cost less than unconditional.
	var uncond, rcast float64
	for _, l := range lvls {
		switch l.Scheme {
		case scenario.SchemePSM:
			uncond = l.TotalJoules
		case scenario.SchemeRcast:
			rcast = l.TotalJoules
		}
	}
	if rcast >= uncond {
		t.Fatalf("A2: Rcast %.0f J not below unconditional %.0f J", rcast, uncond)
	}
	goss, err := s.AblationGossip()
	if err != nil {
		t.Fatal(err)
	}
	if len(goss) != 2 {
		t.Fatalf("A3: %d rows", len(goss))
	}
}

func TestAblationCacheStrategies(t *testing.T) {
	s := NewSuite(tiny(), nil)
	rows, err := s.AblationCacheStrategies()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("A4: %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PDR < 0.3 {
			t.Fatalf("A4 %q: PDR %.3f implausible", r.Label, r.PDR)
		}
	}
}

func TestAblationLifetime(t *testing.T) {
	s := NewSuite(tiny(), nil)
	rows, err := s.AblationLifetime()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("A5: %d rows", len(rows))
	}
	var ao, rc LifetimeResult
	for _, r := range rows {
		switch r.Scheme {
		case scenario.SchemeAlwaysOn:
			ao = r
		case scenario.SchemeRcast:
			rc = r
		}
	}
	// The battery is sized so every always-awake node dies mid-run.
	if ao.DeadNodes != tiny().Nodes {
		t.Fatalf("A5: 802.11 lost %d nodes, want all %d", ao.DeadNodes, tiny().Nodes)
	}
	if rc.DeadNodes >= ao.DeadNodes {
		t.Fatalf("A5: Rcast lost %d nodes, not fewer than 802.11's %d", rc.DeadNodes, ao.DeadNodes)
	}
	if ao.FirstDeathSec <= 0 {
		t.Fatal("A5: no first-death time recorded for 802.11")
	}
}

func TestAblationATIM(t *testing.T) {
	s := NewSuite(tiny(), nil)
	rows, err := s.AblationATIM()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("A7: %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Contention && r.AtimFailures != 0 {
			t.Fatalf("A7: reliable mode reported %v ATIM failures", r.AtimFailures)
		}
		if r.PDR < 0.3 {
			t.Fatalf("A7: PDR %.3f implausible", r.PDR)
		}
	}
}

func TestAblationRouting(t *testing.T) {
	s := NewSuite(tiny(), nil)
	rows, err := s.AblationRouting()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("A6: %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PDR < 0.3 {
			t.Fatalf("A6 %v/%v: PDR %.3f implausible", r.Routing, r.Scheme, r.PDR)
		}
		if r.Routing == scenario.RoutingDSR && r.HelloTx != 0 {
			t.Fatal("A6: DSR reported hello traffic")
		}
		if r.Routing == scenario.RoutingAODV && r.Hello && r.HelloTx == 0 {
			t.Fatal("A6: hello-enabled AODV sent no hellos")
		}
	}
}

func TestAblationFaults(t *testing.T) {
	s := NewSuite(tiny(), nil)
	rows, err := s.AblationFaults()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("A8: %d rows, want 4 variants x 4 schemes", len(rows))
	}
	for _, r := range rows {
		switch r.Variant {
		case "none":
			if r.Crashes != 0 || r.Flushed != 0 || r.FaultLost != 0 {
				t.Fatalf("A8 none/%v: fault counters nonzero: %+v", r.Scheme, r)
			}
		case "crash":
			if r.Crashes == 0 {
				t.Fatalf("A8 crash/%v: no crashes recorded", r.Scheme)
			}
			if r.FaultLost != 0 {
				t.Fatalf("A8 crash/%v: burst loss leaked into the crash-only cell", r.Scheme)
			}
		case "burst-loss":
			if r.FaultLost == 0 {
				t.Fatalf("A8 burst-loss/%v: loss model vanished no frames", r.Scheme)
			}
			if r.Crashes != 0 {
				t.Fatalf("A8 burst-loss/%v: crashes leaked into the loss-only cell", r.Scheme)
			}
		case "crash+loss":
			if r.Crashes == 0 || r.FaultLost == 0 {
				t.Fatalf("A8 crash+loss/%v: combined cell missing a fault class: %+v", r.Scheme, r)
			}
		default:
			t.Fatalf("A8: unknown variant %q", r.Variant)
		}
	}
}

func TestSetFaultsAppliesToSuiteRuns(t *testing.T) {
	s := NewSuite(tiny(), nil)
	k := runKey{scheme: scenario.SchemeRcast, rate: tiny().LowRate}
	clean, err := s.agg(k)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Results[0].NodeCrashes != 0 {
		t.Fatal("unfaulted suite run recorded crashes")
	}
	plan, err := fault.Preset("crash")
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults(plan)
	if s.Runs() != 0 {
		t.Fatal("SetFaults did not clear the run cache")
	}
	faulted, err := s.agg(k)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Results[0].NodeCrashes == 0 {
		t.Fatal("SetFaults plan did not reach the suite's simulations")
	}
}

func TestAllRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	var buf bytes.Buffer
	s := NewSuite(tiny(), &buf)
	if err := s.All(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Fig 5", "Fig 6", "Fig 7", "Fig 8", "Fig 9",
		"Ablation A1", "Ablation A2", "Ablation A3", "Ablation A8"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{Paper(), Quick()} {
		foundLow, foundHigh := false, false
		for _, r := range p.Rates {
			if r == p.LowRate {
				foundLow = true
			}
			if r == p.HighRate {
				foundHigh = true
			}
		}
		if !foundLow || !foundHigh {
			t.Fatalf("profile %s: corner rates not in sweep", p.Name)
		}
		if p.Nodes < 2 || p.Duration <= 0 || p.Reps < 1 {
			t.Fatalf("profile %s: invalid scale", p.Name)
		}
	}
}
