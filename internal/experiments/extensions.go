package experiments

import (
	"rcast/internal/core"
	"rcast/internal/scenario"
	"rcast/internal/sim"
)

// CacheResult is one row of the route-cache strategy ablation.
type CacheResult struct {
	Label       string
	Capacity    int
	Lifetime    sim.Time
	PDR         float64
	Overhead    float64
	TotalJoules float64
	AvgDelaySec float64
}

// AblationCacheStrategies probes the open question the paper poses in its
// contributions list: do conventional DSR route-caching strategies still
// work when overhearing is limited by Rcast? It sweeps cache capacity and
// the Hu & Johnson cache-timeout mechanism on the Rcast stack.
func (s *Suite) AblationCacheStrategies() ([]CacheResult, error) {
	variants := []CacheResult{
		{Label: "default (64, no timeout)", Capacity: 64},
		{Label: "small cache (8)", Capacity: 8},
		{Label: "timeout 30s", Capacity: 64, Lifetime: 30 * sim.Second},
		{Label: "timeout 5s", Capacity: 64, Lifetime: 5 * sim.Second},
	}
	cfgs := make([]scenario.Config, len(variants))
	for i, v := range variants {
		cfgs[i] = s.config(runKey{scheme: scenario.SchemeRcast, rate: s.p.LowRate})
		cfgs[i].DSR.CacheCapacity = v.Capacity
		cfgs[i].DSR.CacheLifetime = v.Lifetime
	}
	aggs, err := s.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	s.printf("== Ablation A4: DSR cache strategies under Rcast (rate=%.1f, mobile) ==\n", s.p.LowRate)
	s.printf("%-24s %8s %9s %10s %9s\n", "variant", "PDR", "overhead", "energy(J)", "delay(s)")
	var rows []CacheResult
	for i, v := range variants {
		a := aggs[i]
		v.PDR = a.PDR.Mean()
		v.Overhead = a.NormalizedOverhead.Mean()
		v.TotalJoules = a.TotalJoules.Mean()
		v.AvgDelaySec = a.AvgDelaySec.Mean()
		rows = append(rows, v)
		s.printf("%-24s %8.3f %9.2f %10.0f %9.3f\n",
			v.Label, v.PDR, v.Overhead, v.TotalJoules, v.AvgDelaySec)
	}
	s.printf("\n")
	return rows, nil
}

// LifetimeResult is one row of the network-lifetime experiment.
type LifetimeResult struct {
	Scheme        scenario.Scheme
	FirstDeathSec float64 // 0 = no deaths
	DeadNodes     int
	PDR           float64
}

// AblationLifetime runs the three schemes with finite batteries sized so
// an always-awake node dies mid-run, and reports when nodes start dying —
// the device/network-lifetime motivation of the paper's introduction.
func (s *Suite) AblationLifetime() ([]LifetimeResult, error) {
	// Budget: an always-awake node drains in 60% of the run.
	battery := 1.15 * s.p.Duration.Seconds() * 0.6
	cfgs := make([]scenario.Config, len(figureSchemes))
	for i, sch := range figureSchemes {
		cfgs[i] = s.config(runKey{scheme: sch, rate: s.p.LowRate})
		cfgs[i].BatteryJoules = battery
	}
	aggs, err := s.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	s.printf("== Ablation A5: network lifetime with %.0f J batteries (rate=%.1f, mobile) ==\n",
		battery, s.p.LowRate)
	s.printf("%-8s %14s %10s %8s\n", "scheme", "firstDeath(s)", "deadNodes", "PDR")
	var rows []LifetimeResult
	for i, sch := range figureSchemes {
		a := aggs[i]
		var first float64
		var dead int
		for _, r := range a.Results {
			first += r.FirstDeath.Seconds()
			dead += r.DeadNodes
		}
		row := LifetimeResult{
			Scheme:        sch,
			FirstDeathSec: first / float64(len(a.Results)),
			DeadNodes:     dead / len(a.Results),
			PDR:           a.PDR.Mean(),
		}
		rows = append(rows, row)
		s.printf("%-8s %14.0f %10d %8.3f\n", sch, row.FirstDeathSec, row.DeadNodes, row.PDR)
	}
	s.printf("\n")
	return rows, nil
}

// ATIMResult is one row of the ATIM-reliability sensitivity study.
type ATIMResult struct {
	Contention   bool
	Rate         float64
	PDR          float64
	AvgDelaySec  float64
	TotalJoules  float64
	AtimFailures float64 // packets dropped after repeated failed ATIMs
}

// AblationATIM quantifies the paper's §4.1 modelling assumption that ATIM
// advertisements are delivered reliably. It reruns the Rcast stack with a
// slotted contention model of the ATIM window (collisions defer packets;
// repeated losses drop them) at the low- and high-rate mobile points. The
// paper predicts heavier traffic makes the assumption optimistic ("nodes
// fail to deliver ATIM frames … the actual performance would be better
// than the one reported in this paper").
func (s *Suite) AblationATIM() ([]ATIMResult, error) {
	type atimCell struct {
		rate       float64
		contention bool
	}
	var cells []atimCell
	for _, rate := range []float64{s.p.LowRate, s.p.HighRate} {
		for _, contention := range []bool{false, true} {
			cells = append(cells, atimCell{rate: rate, contention: contention})
		}
	}
	cfgs := make([]scenario.Config, len(cells))
	for i, c := range cells {
		cfgs[i] = s.config(runKey{scheme: scenario.SchemeRcast, rate: c.rate})
		cfgs[i].MAC.ATIMContention = c.contention
	}
	aggs, err := s.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	s.printf("== Ablation A7: ATIM reliability assumption (Rcast stack, mobile) ==\n")
	s.printf("%-12s %-6s %8s %9s %10s %10s\n",
		"atim", "rate", "PDR", "delay(s)", "energy(J)", "atimFail")
	var rows []ATIMResult
	for i, c := range cells {
		{
			rate, contention := c.rate, c.contention
			a := aggs[i]
			var fails float64
			for _, r := range a.Results {
				fails += float64(r.MACTotal.AtimFailures)
			}
			row := ATIMResult{
				Contention:   contention,
				Rate:         rate,
				PDR:          a.PDR.Mean(),
				AvgDelaySec:  a.AvgDelaySec.Mean(),
				TotalJoules:  a.TotalJoules.Mean(),
				AtimFailures: fails / float64(len(a.Results)),
			}
			rows = append(rows, row)
			label := "reliable"
			if contention {
				label = "contention"
			}
			s.printf("%-12s %-6.1f %8.3f %9.3f %10.0f %10.0f\n",
				label, rate, row.PDR, row.AvgDelaySec, row.TotalJoules, row.AtimFailures)
		}
	}
	s.printf("\n")
	return rows, nil
}

// RoutingResult is one row of the DSR-vs-AODV comparison.
type RoutingResult struct {
	Routing     scenario.Routing
	Hello       bool
	Scheme      scenario.Scheme
	PDR         float64
	Overhead    float64
	TotalJoules float64
	RREQShare   float64 // RREQ fraction of control transmissions
	HelloTx     float64 // mean hello transmissions per replication
}

// AblationRouting reproduces the paper's §1 contrast between DSR and AODV
// (experiment A6): AODV's timeout-driven tables re-flood aggressively
// (Das et al.: ~90% of its overhead is RREQ) and its periodic hellos are
// hostile to PSM. Compared on the always-on and Rcast stacks.
func (s *Suite) AblationRouting() ([]RoutingResult, error) {
	s.printf("== Ablation A6: DSR vs AODV (rate=%.1f, mobile) ==\n", s.p.LowRate)
	s.printf("%-18s %-8s %8s %9s %10s %9s %9s\n",
		"routing", "scheme", "PDR", "overhead", "energy(J)", "rreq%", "hello")
	variants := []struct {
		label   string
		routing scenario.Routing
		hello   bool
	}{
		{label: "DSR", routing: scenario.RoutingDSR},
		{label: "AODV (no hello)", routing: scenario.RoutingAODV},
		{label: "AODV (hello 1s)", routing: scenario.RoutingAODV, hello: true},
	}
	routingSchemes := []scenario.Scheme{scenario.SchemeAlwaysOn, scenario.SchemeRcast}
	var cfgs []scenario.Config
	for _, v := range variants {
		for _, sch := range routingSchemes {
			cfg := s.config(runKey{scheme: sch, rate: s.p.LowRate})
			cfg.Routing = v.routing
			if v.routing == scenario.RoutingAODV && !v.hello {
				cfg.AODV.HelloInterval = 0
			}
			cfgs = append(cfgs, cfg)
		}
	}
	aggs, err := s.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []RoutingResult
	cellIdx := 0
	for _, v := range variants {
		for _, sch := range routingSchemes {
			a := aggs[cellIdx]
			cellIdx++
			var rreq, ctl, hello float64
			for _, r := range a.Results {
				rreq += float64(r.ControlByClass[core.ClassRREQ])
				ctl += float64(r.ControlTx)
				hello += float64(r.AODVTotal.HelloSent)
			}
			row := RoutingResult{
				Routing:     v.routing,
				Hello:       v.hello,
				Scheme:      sch,
				PDR:         a.PDR.Mean(),
				Overhead:    a.NormalizedOverhead.Mean(),
				TotalJoules: a.TotalJoules.Mean(),
				HelloTx:     hello / float64(len(a.Results)),
			}
			if ctl > 0 {
				row.RREQShare = rreq / ctl
			}
			rows = append(rows, row)
			s.printf("%-18s %-8s %8.3f %9.2f %10.0f %8.0f%% %9.0f\n",
				v.label, sch, row.PDR, row.Overhead, row.TotalJoules,
				100*row.RREQShare, row.HelloTx)
		}
	}
	s.printf("\n")
	return rows, nil
}
