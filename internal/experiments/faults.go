package experiments

import (
	"rcast/internal/fault"
	"rcast/internal/scenario"
)

// FaultResult is one row of the fault-sweep ablation.
type FaultResult struct {
	Variant     string
	Scheme      scenario.Scheme
	PDR         float64
	TotalJoules float64
	AvgDelaySec float64
	Crashes     float64 // mean node crashes per replication
	Flushed     float64 // mean packets flushed from crashing buffers
	FaultLost   float64 // mean frames vanished by the burst-loss channel
}

// faultVariants returns the A8 grid: each fault class alone, then crashes
// and burst loss together. Plans derive from the shared presets so the
// table tracks the CLI's -faults vocabulary.
func faultVariants() ([]struct {
	label string
	plan  *fault.Plan
}, error) {
	crash, err := fault.Preset("crash")
	if err != nil {
		return nil, err
	}
	loss, err := fault.Preset("loss")
	if err != nil {
		return nil, err
	}
	both := &fault.Plan{
		CrashFraction: crash.CrashFraction,
		Downtime:      crash.Downtime,
		Loss:          loss.Loss,
	}
	return []struct {
		label string
		plan  *fault.Plan
	}{
		{label: "none", plan: nil},
		{label: "crash", plan: crash},
		{label: "burst-loss", plan: loss},
		{label: "crash+loss", plan: both},
	}, nil
}

// AblationFaults stresses every scheme of the paper's figures (plus
// unmodified PSM) under the fault-injection presets: a fifth of the nodes
// power-cycling mid-run, Gilbert–Elliott burst loss on every link, and the
// two combined. The question is robustness, not raw performance: does
// Rcast's randomized overhearing degrade gracefully when the network
// misbehaves, or does it amplify faults that plain PSM would absorb?
func (s *Suite) AblationFaults() ([]FaultResult, error) {
	variants, err := faultVariants()
	if err != nil {
		return nil, err
	}
	schemes := []scenario.Scheme{
		scenario.SchemeAlwaysOn, scenario.SchemePSM,
		scenario.SchemeODPM, scenario.SchemeRcast,
	}
	var cfgs []scenario.Config
	for _, v := range variants {
		for _, sch := range schemes {
			cfg := s.config(runKey{scheme: sch, rate: s.p.LowRate})
			cfg.Faults = v.plan
			cfgs = append(cfgs, cfg)
		}
	}
	aggs, err := s.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	s.printf("== Ablation A8: fault injection (rate=%.1f, mobile) ==\n", s.p.LowRate)
	s.printf("%-12s %-8s %8s %10s %9s %9s %9s %10s\n",
		"faults", "scheme", "PDR", "energy(J)", "delay(s)", "crashes", "flushed", "faultLost")
	var rows []FaultResult
	cell := 0
	for _, v := range variants {
		for _, sch := range schemes {
			a := aggs[cell]
			cell++
			var crashes, flushed, faultLost float64
			for _, r := range a.Results {
				crashes += float64(r.NodeCrashes)
				flushed += float64(r.CrashFlushedPackets)
				faultLost += float64(r.Channel.FaultLost)
			}
			n := float64(len(a.Results))
			row := FaultResult{
				Variant:     v.label,
				Scheme:      sch,
				PDR:         a.PDR.Mean(),
				TotalJoules: a.TotalJoules.Mean(),
				AvgDelaySec: a.AvgDelaySec.Mean(),
				Crashes:     crashes / n,
				Flushed:     flushed / n,
				FaultLost:   faultLost / n,
			}
			rows = append(rows, row)
			s.printf("%-12s %-8s %8.3f %10.0f %9.3f %9.1f %9.1f %10.0f\n",
				row.Variant, sch, row.PDR, row.TotalJoules, row.AvgDelaySec,
				row.Crashes, row.Flushed, row.FaultLost)
		}
	}
	s.printf("\n")
	return rows, nil
}
