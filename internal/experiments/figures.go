package experiments

import (
	"rcast/internal/scenario"
	"rcast/internal/stats"
)

// Table1Row is one scheme's measured behaviour (paper Table 1 validated
// quantitatively at the mobile low-rate operating point).
type Table1Row struct {
	Scheme        scenario.Scheme
	Behavior      string
	AwakeFraction float64 // mean fraction of the run nodes spent awake
	TotalJoules   float64
	PDR           float64
	AvgDelaySec   float64
}

// Table1 reproduces the protocol-behaviour comparison.
func (s *Suite) Table1() ([]Table1Row, error) {
	behaviors := map[scenario.Scheme]string{
		scenario.SchemeAlwaysOn: "no PSM; always awake; immediate transmission",
		scenario.SchemeODPM:     "AM for 5s after RREP / 2s after data; fast path between AM nodes",
		scenario.SchemeRcast:    "always PS; per-packet overhearing level; beacon-deferred transmission",
	}
	keys := make([]runKey, len(figureSchemes))
	for i, sch := range figureSchemes {
		keys[i] = runKey{scheme: sch, rate: s.p.LowRate}
	}
	if err := s.prefetch(keys...); err != nil {
		return nil, err
	}
	s.printf("== Table 1: protocol behaviour (rate=%.1f pkt/s, mobile) ==\n", s.p.LowRate)
	s.printf("%-8s %-10s %-8s %-10s %-10s %s\n",
		"scheme", "awakeFrac", "PDR", "delay(s)", "energy(J)", "behaviour")
	var rows []Table1Row
	for _, sch := range figureSchemes {
		a, err := s.agg(runKey{scheme: sch, rate: s.p.LowRate})
		if err != nil {
			return nil, err
		}
		r := a.Results[0]
		awake := awakeFraction(r)
		row := Table1Row{
			Scheme:        sch,
			Behavior:      behaviors[sch],
			AwakeFraction: awake,
			TotalJoules:   a.TotalJoules.Mean(),
			PDR:           a.PDR.Mean(),
			AvgDelaySec:   a.AvgDelaySec.Mean(),
		}
		rows = append(rows, row)
		s.printf("%-8s %-10.3f %-8.3f %-10.3f %-10.0f %s\n",
			sch, row.AwakeFraction, row.PDR, row.AvgDelaySec, row.TotalJoules, row.Behavior)
	}
	s.printf("\n")
	return rows, nil
}

// awakeFraction estimates the mean awake fraction from per-node energy:
// invert J = Pawake*f*T + Psleep*(1-f)*T.
func awakeFraction(r *scenario.Result) float64 {
	const pAwake, pSleep = 1.15, 0.045
	T := r.Duration.Seconds()
	mean := stats.Mean(r.PerNodeJoules)
	f := (mean/T - pSleep) / (pAwake - pSleep)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Fig5Panel is one panel of Fig. 5: per-node energy in ascending order.
type Fig5Panel struct {
	Rate   float64
	Static bool
	// Curves maps each scheme to its ascending per-node energy curve
	// (mean over replications).
	Curves map[scenario.Scheme][]float64
}

// Fig5 reproduces "Energy consumption comparison at each node": four
// panels (low/high rate × mobile/static), nodes sorted by consumption.
func (s *Suite) Fig5() ([]Fig5Panel, error) {
	var keys []runKey
	for _, static := range []bool{false, true} {
		for _, rate := range []float64{s.p.LowRate, s.p.HighRate} {
			for _, sch := range figureSchemes {
				keys = append(keys, runKey{scheme: sch, rate: rate, static: static})
			}
		}
	}
	if err := s.prefetch(keys...); err != nil {
		return nil, err
	}
	var panels []Fig5Panel
	for _, static := range []bool{false, true} {
		for _, rate := range []float64{s.p.LowRate, s.p.HighRate} {
			panel := Fig5Panel{
				Rate:   rate,
				Static: static,
				Curves: make(map[scenario.Scheme][]float64),
			}
			s.printf("== Fig 5: per-node energy, ascending (Rpkt=%.1f, %s) ==\n",
				rate, pauseLabel(static))
			s.printf("%-8s %8s %8s %8s %8s %8s\n", "scheme", "min", "p25", "p50", "p75", "max")
			for _, sch := range figureSchemes {
				a, err := s.agg(runKey{scheme: sch, rate: rate, static: static})
				if err != nil {
					return nil, err
				}
				curve := a.MeanSortedJoules
				panel.Curves[sch] = curve
				s.printf("%-8s %8.1f %8.1f %8.1f %8.1f %8.1f\n", sch,
					stats.Percentile(curve, 0), stats.Percentile(curve, 25),
					stats.Percentile(curve, 50), stats.Percentile(curve, 75),
					stats.Percentile(curve, 100))
			}
			panels = append(panels, panel)
			s.printf("\n")
		}
	}
	return panels, nil
}

// SweepPoint is one (scheme, rate) sample of the Figs. 6–8 sweeps.
type SweepPoint struct {
	Scheme             scenario.Scheme
	Rate               float64
	Static             bool
	TotalJoules        float64
	EnergyVariance     float64
	PDR                float64
	EnergyPerBit       float64
	AvgDelaySec        float64
	NormalizedOverhead float64
}

// sweep runs (or reuses) the full rate sweep for both pause settings. All
// missing cells simulate concurrently across the worker pool.
func (s *Suite) sweep() ([]SweepPoint, error) {
	if err := s.prefetch(s.sweepKeys()...); err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, static := range []bool{false, true} {
		for _, rate := range s.p.Rates {
			for _, sch := range figureSchemes {
				a, err := s.agg(runKey{scheme: sch, rate: rate, static: static})
				if err != nil {
					return nil, err
				}
				out = append(out, SweepPoint{
					Scheme:             sch,
					Rate:               rate,
					Static:             static,
					TotalJoules:        a.TotalJoules.Mean(),
					EnergyVariance:     a.EnergyVariance.Mean(),
					PDR:                a.PDR.Mean(),
					EnergyPerBit:       a.EnergyPerBit.Mean(),
					AvgDelaySec:        a.AvgDelaySec.Mean(),
					NormalizedOverhead: a.NormalizedOverhead.Mean(),
				})
			}
		}
	}
	return out, nil
}

// Fig6 reproduces "variance of energy consumption" vs packet rate for
// mobile and static scenarios.
func (s *Suite) Fig6() ([]SweepPoint, error) {
	points, err := s.sweep()
	if err != nil {
		return nil, err
	}
	for _, static := range []bool{false, true} {
		s.printf("== Fig 6: variance of per-node energy (%s) ==\n", pauseLabel(static))
		s.printHeader()
		for _, rate := range s.p.Rates {
			s.printRow(points, rate, static, func(p SweepPoint) float64 { return p.EnergyVariance }, "%10.0f")
		}
		s.printf("\n")
	}
	return points, nil
}

// Fig7 reproduces total energy, packet delivery ratio and energy-per-bit
// vs packet rate (six panels).
func (s *Suite) Fig7() ([]SweepPoint, error) {
	points, err := s.sweep()
	if err != nil {
		return nil, err
	}
	type metric struct {
		name   string
		format string
		get    func(SweepPoint) float64
	}
	ms := []metric{
		{name: "total energy (J)", format: "%10.0f", get: func(p SweepPoint) float64 { return p.TotalJoules }},
		{name: "packet delivery ratio", format: "%10.3f", get: func(p SweepPoint) float64 { return p.PDR }},
		{name: "energy per bit (J/bit)", format: "%10.2e", get: func(p SweepPoint) float64 { return p.EnergyPerBit }},
	}
	for _, static := range []bool{false, true} {
		for _, m := range ms {
			s.printf("== Fig 7: %s (%s) ==\n", m.name, pauseLabel(static))
			s.printHeader()
			for _, rate := range s.p.Rates {
				s.printRow(points, rate, static, m.get, m.format)
			}
			s.printf("\n")
		}
	}
	return points, nil
}

// Fig8 reproduces average packet delay and normalized routing overhead vs
// packet rate (four panels).
func (s *Suite) Fig8() ([]SweepPoint, error) {
	points, err := s.sweep()
	if err != nil {
		return nil, err
	}
	type metric struct {
		name   string
		format string
		get    func(SweepPoint) float64
	}
	ms := []metric{
		{name: "average delay (s)", format: "%10.3f", get: func(p SweepPoint) float64 { return p.AvgDelaySec }},
		{name: "normalized routing overhead", format: "%10.2f", get: func(p SweepPoint) float64 { return p.NormalizedOverhead }},
	}
	for _, static := range []bool{false, true} {
		for _, m := range ms {
			s.printf("== Fig 8: %s (%s) ==\n", m.name, pauseLabel(static))
			s.printHeader()
			for _, rate := range s.p.Rates {
				s.printRow(points, rate, static, m.get, m.format)
			}
			s.printf("\n")
		}
	}
	return points, nil
}

func (s *Suite) printHeader() {
	s.printf("%-6s", "rate")
	for _, sch := range figureSchemes {
		s.printf("%10s", sch.String())
	}
	s.printf("\n")
}

func (s *Suite) printRow(points []SweepPoint, rate float64, static bool, get func(SweepPoint) float64, format string) {
	s.printf("%-6.1f", rate)
	for _, sch := range figureSchemes {
		for _, p := range points {
			if p.Scheme == sch && p.Rate == rate && p.Static == static {
				s.printf(format, get(p))
				break
			}
		}
	}
	s.printf("\n")
}

// Fig9Panel digests one scatter panel of Fig. 9: role number vs per-node
// energy for one scheme at one rate (mobile scenario, Tpause=600 in the
// paper).
type Fig9Panel struct {
	Scheme      scenario.Scheme
	Rate        float64
	RoleMax     float64
	RoleMean    float64
	RoleP90     float64
	EnergyMax   float64
	EnergyMean  float64
	Correlation float64 // Pearson correlation of (role, energy) over nodes
}

// Fig9 reproduces "comparison of role number and energy consumption".
func (s *Suite) Fig9() ([]Fig9Panel, error) {
	var keys []runKey
	for _, rate := range []float64{s.p.LowRate, s.p.HighRate} {
		for _, sch := range figureSchemes {
			keys = append(keys, runKey{scheme: sch, rate: rate})
		}
	}
	if err := s.prefetch(keys...); err != nil {
		return nil, err
	}
	var panels []Fig9Panel
	s.printf("== Fig 9: role number vs per-node energy (mobile) ==\n")
	s.printf("%-8s %-6s %9s %9s %9s %9s %9s %6s\n",
		"scheme", "rate", "roleMax", "roleMean", "roleP90", "energyMax", "energyAvg", "corr")
	for _, rate := range []float64{s.p.LowRate, s.p.HighRate} {
		for _, sch := range figureSchemes {
			a, err := s.agg(runKey{scheme: sch, rate: rate})
			if err != nil {
				return nil, err
			}
			r := a.Results[0]
			p := Fig9Panel{
				Scheme:      sch,
				Rate:        rate,
				RoleMax:     stats.Max(r.RoleNumbers),
				RoleMean:    stats.Mean(r.RoleNumbers),
				RoleP90:     stats.Percentile(r.RoleNumbers, 90),
				EnergyMax:   stats.Max(r.PerNodeJoules),
				EnergyMean:  stats.Mean(r.PerNodeJoules),
				Correlation: stats.Correlation(r.RoleNumbers, r.PerNodeJoules),
			}
			panels = append(panels, p)
			s.printf("%-8s %-6.1f %9.0f %9.1f %9.1f %9.1f %9.1f %6.2f\n",
				sch, rate, p.RoleMax, p.RoleMean, p.RoleP90, p.EnergyMax, p.EnergyMean, p.Correlation)
		}
	}
	s.printf("\n")
	return panels, nil
}
