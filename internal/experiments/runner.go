package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rcast/internal/scenario"
	"rcast/internal/sim"
)

// Runner fans independent simulation runs across a bounded pool of
// goroutines. Each (config, replication) cell is one unit of work carrying
// its own deterministically derived seed (sim.ReplicationSeed of the
// spec's seed — worlds share no RNG or scheduler state), so cells can
// execute in any order on any number of workers and still produce the exact
// results of the serial path. Results are slotted by (spec, replication)
// index and merged in order after all cells finish, which makes the
// returned aggregates — and everything derived from them, figures and CSVs
// included — byte-identical for every worker count.
type Runner struct {
	// Workers bounds concurrency. <= 0 selects runtime.GOMAXPROCS(0);
	// 1 reproduces the serial execution order exactly.
	Workers int
	// OnRunDone, when non-nil, is called after each completed simulation
	// run. It must be safe for concurrent use.
	OnRunDone func()
}

// RunSpec is one batch of replications of a single configuration.
// Replication i runs with seed sim.ReplicationSeed(Cfg.Seed, i), exactly
// as scenario.RunReplications seeds the serial path.
type RunSpec struct {
	Cfg  scenario.Config
	Reps int // < 1 means 1
}

// Run executes every replication of every spec across the worker pool and
// returns one aggregate per spec, in input order. The first simulation
// error stops the dispatch of further cells (in-flight runs finish) and is
// returned; a cancelled ctx additionally stops in-flight runs mid-event-loop
// (scenario.RunContext's cooperative stop check) and its error is returned.
// A spec with a Trace sink forces Workers = 1, because sinks are not safe
// for concurrent emission.
func (r Runner) Run(ctx context.Context, specs []RunSpec) ([]*scenario.Aggregate, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, sp := range specs {
		if sp.Cfg.Trace != nil {
			workers = 1
			break
		}
	}

	type cell struct{ spec, rep int }
	var cells []cell
	results := make([][]*scenario.Result, len(specs))
	for i, sp := range specs {
		reps := sp.Reps
		if reps < 1 {
			reps = 1
		}
		results[i] = make([]*scenario.Result, reps)
		for rep := 0; rep < reps; rep++ {
			cells = append(cells, cell{spec: i, rep: rep})
		}
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	runCell := func(cl cell) error {
		cfg := specs[cl.spec].Cfg
		cfg.Seed = sim.ReplicationSeed(cfg.Seed, cl.rep)
		res, err := scenario.RunContext(ctx, cfg)
		if err != nil {
			return fmt.Errorf("experiments: %v rate=%.1f seed=%d: %w",
				cfg.Scheme, cfg.PacketRate, cfg.Seed, err)
		}
		results[cl.spec][cl.rep] = res
		if r.OnRunDone != nil {
			r.OnRunDone()
		}
		return nil
	}

	if workers <= 1 {
		for _, cl := range cells {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := runCell(cl); err != nil {
				return nil, err
			}
		}
	} else if err := runPool(ctx, workers, len(cells), func(i int) error {
		return runCell(cells[i])
	}); err != nil {
		return nil, err
	}

	aggs := make([]*scenario.Aggregate, len(specs))
	for i := range specs {
		aggs[i] = scenario.AggregateResults(results[i])
	}
	return aggs, nil
}

// runPool executes do(0..n-1) across workers goroutines pulling indices
// from a shared atomic dispenser. The first error (or ctx cancellation)
// stops further dispatch; in-flight calls run to completion.
func runPool(ctx context.Context, workers, n int, do func(int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := do(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
