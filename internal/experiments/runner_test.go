package experiments

import (
	"bytes"
	"context"
	"math"
	"testing"

	"rcast/internal/scenario"
	"rcast/internal/trace"
)

// runAll regenerates the whole suite report plus every CSV export with the
// given worker count and returns the concatenated bytes.
func runAll(t *testing.T, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := NewSuite(tiny(), &buf)
	s.SetWorkers(workers)
	if err := s.All(); err != nil {
		t.Fatal(err)
	}
	for _, write := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return s.WriteSweepCSV(b) },
		func(b *bytes.Buffer) error { return s.WriteFig5CSV(b) },
		func(b *bytes.Buffer) error { return s.WriteFig9CSV(b) },
	} {
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
	}
	line, err := s.SummaryLine()
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(line)
	return buf.Bytes()
}

// TestWorkersByteIdentical is the determinism contract of the parallel
// runner: the full report and every CSV must be byte-identical whether the
// simulations ran serially or fanned out across eight workers.
func TestWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite twice in -short mode")
	}
	serial := runAll(t, 1)
	parallel := runAll(t, 8)
	if !bytes.Equal(serial, parallel) {
		i := 0
		for i < len(serial) && i < len(parallel) && serial[i] == parallel[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		clip := func(b []byte) []byte {
			if hi < len(b) {
				return b[lo:hi]
			}
			return b[lo:]
		}
		t.Fatalf("workers=1 and workers=8 outputs diverge at byte %d:\nserial:   %q\nparallel: %q",
			i, clip(serial), clip(parallel))
	}
}

// TestRunnerMatchesSerialReplications checks the runner against the serial
// scenario.RunReplications path for a multi-replication batch.
func TestRunnerMatchesSerialReplications(t *testing.T) {
	p := tiny()
	cfg := scenario.PaperDefaults()
	cfg.Scheme = scenario.SchemeRcast
	cfg.Nodes = p.Nodes
	cfg.FieldW, cfg.FieldH = p.FieldW, p.FieldH
	cfg.Connections = p.Connections
	cfg.Duration = p.Duration
	cfg.PacketRate = p.LowRate
	cfg.Pause = p.PauseMobile
	cfg.Seed = 7

	want, err := scenario.RunReplications(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := Runner{Workers: 4}
	aggs, err := r.Run(context.Background(), []RunSpec{{Cfg: cfg, Reps: 2}})
	if err != nil {
		t.Fatal(err)
	}
	got := aggs[0]
	if len(got.Results) != len(want.Results) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i].Seed != want.Results[i].Seed {
			t.Fatalf("rep %d: seed %d, want %d", i, got.Results[i].Seed, want.Results[i].Seed)
		}
		if got.Results[i].TotalJoules != want.Results[i].TotalJoules {
			t.Fatalf("rep %d: energy %v, want %v", i,
				got.Results[i].TotalJoules, want.Results[i].TotalJoules)
		}
	}
	if got.PDR.Mean() != want.PDR.Mean() ||
		math.Abs(got.TotalJoules.Mean()-want.TotalJoules.Mean()) > 1e-9 {
		t.Fatalf("aggregate mismatch: got PDR %v / %v J, want %v / %v J",
			got.PDR.Mean(), got.TotalJoules.Mean(), want.PDR.Mean(), want.TotalJoules.Mean())
	}
}

// TestRunnerPropagatesError checks that an invalid cell surfaces its
// simulation error from the middle of a parallel batch.
func TestRunnerPropagatesError(t *testing.T) {
	good := scenario.PaperDefaults()
	good.Nodes = 5
	good.Connections = 1
	good.Duration = scenario.PaperDefaults().Duration / 100
	bad := good
	bad.Nodes = 1 // rejected by config validation
	r := Runner{Workers: 4}
	_, err := r.Run(context.Background(), []RunSpec{{Cfg: good}, {Cfg: bad}, {Cfg: good}})
	if err == nil {
		t.Fatal("invalid cell did not error")
	}
}

// TestRunnerCancelled checks that a cancelled context stops the batch and
// is reported, on both the serial and parallel paths.
func TestRunnerCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := scenario.PaperDefaults()
	cfg.Nodes = 5
	cfg.Connections = 1
	for _, workers := range []int{1, 4} {
		r := Runner{Workers: workers}
		_, err := r.Run(ctx, []RunSpec{{Cfg: cfg, Reps: 2}})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestTraceForcesSerial checks that a spec carrying a trace sink (whose
// sinks are not safe for concurrent emission) still runs correctly.
func TestTraceForcesSerial(t *testing.T) {
	cfg := scenario.PaperDefaults()
	cfg.Nodes = 5
	cfg.Connections = 1
	cfg.Duration = scenario.PaperDefaults().Duration / 100
	cfg.Trace = discardSink{}
	r := Runner{Workers: 8}
	aggs, err := r.Run(context.Background(), []RunSpec{{Cfg: cfg, Reps: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 || len(aggs[0].Results) != 2 {
		t.Fatalf("unexpected shape: %d aggs", len(aggs))
	}
}

type discardSink struct{}

func (discardSink) Emit(trace.Event) {}
