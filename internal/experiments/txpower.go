package experiments

import (
	"rcast/internal/scenario"
)

// TxPowerResult is one row of the A10 transmit-power ablation.
type TxPowerResult struct {
	TxPowerDBm   float64
	Variant      string // "PSM" (unconditional), "Rcast", "Rcast+gossip"
	PDR          float64
	TotalJoules  float64
	AvgDelaySec  float64
	EnergyPerBit float64
}

// txPowerDBs is the A10 power axis: two reduced-range points, the
// nominal 250 m paper setting, and one boosted point. -6 dB scales the
// two-ray-ground range by 10^(-6/40) ≈ 0.71 (≈177 m) while cutting
// radiated power to a quarter.
var txPowerDBs = []float64{-6, -3, 0, 3}

// txPowerVariants are the three broadcast/overhearing strategies A10
// crosses with the power axis: unconditional overhearing (PSM), the
// paper's randomized overhearing (Rcast), and gossip-style randomized
// broadcast layered on Rcast (GossipFanout 3, as in A3).
type txPowerVariant struct {
	name   string
	scheme scenario.Scheme
	gossip float64
}

var txPowerVariants = []txPowerVariant{
	{name: "PSM", scheme: scenario.SchemePSM},
	{name: "Rcast", scheme: scenario.SchemeRcast},
	{name: "Rcast+gossip", scheme: scenario.SchemeRcast, gossip: 3},
}

// AblationTxPower is A10: does reduced-range transmission power control
// (arXiv:1209.2550) beat overhearing suppression joule-for-joule? Each
// power level scales every radio's range by 10^(dB/40) and its radiated
// TX energy by 10^(dB/10); quieter radios spend less per transmission
// but need more hops (and lose more packets to the sparser topology),
// which is exactly the trade Rcast makes on the time axis instead. The
// verdict compares the best reduced-power PSM cell against full-power
// Rcast on delivered energy per bit.
func (s *Suite) AblationTxPower() ([]TxPowerResult, error) {
	var cfgs []scenario.Config
	for _, db := range txPowerDBs {
		for _, v := range txPowerVariants {
			cfg := s.config(runKey{scheme: v.scheme, rate: s.p.LowRate})
			cfg.TxPowerDBm = db
			cfg.GossipFanout = v.gossip
			cfgs = append(cfgs, cfg)
		}
	}
	aggs, err := s.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	s.printf("== Ablation A10: tx power x broadcast strategy (rate=%.1f, mobile) ==\n", s.p.LowRate)
	s.printf("%-8s %-14s %8s %10s %9s %12s\n",
		"power", "variant", "PDR", "energy(J)", "delay(s)", "J/bit")
	var rows []TxPowerResult
	bestReducedPSM := 0.0 // lowest J/bit among reduced-power PSM cells
	rcastNominal := 0.0   // full-power Rcast J/bit
	cell := 0
	for _, db := range txPowerDBs {
		for _, v := range txPowerVariants {
			a := aggs[cell]
			cell++
			row := TxPowerResult{
				TxPowerDBm:   db,
				Variant:      v.name,
				PDR:          a.PDR.Mean(),
				TotalJoules:  a.TotalJoules.Mean(),
				AvgDelaySec:  a.AvgDelaySec.Mean(),
				EnergyPerBit: a.EnergyPerBit.Mean(),
			}
			if db < 0 && v.name == "PSM" && (bestReducedPSM == 0 || row.EnergyPerBit < bestReducedPSM) {
				bestReducedPSM = row.EnergyPerBit
			}
			if db == 0 && v.name == "Rcast" {
				rcastNominal = row.EnergyPerBit
			}
			s.printf("%+6.1fdB %-14s %8.3f %10.0f %9.3f %12.3e\n",
				db, row.Variant, row.PDR, row.TotalJoules, row.AvgDelaySec, row.EnergyPerBit)
			rows = append(rows, row)
		}
	}
	verdict := "overhearing suppression (Rcast) wins joule-for-joule"
	if bestReducedPSM > 0 && bestReducedPSM < rcastNominal {
		verdict = "reduced-range TX beats overhearing suppression joule-for-joule"
	}
	s.printf("best reduced-power PSM %.3e J/bit vs full-power Rcast %.3e J/bit — %s\n\n",
		bestReducedPSM, rcastNominal, verdict)
	return rows, nil
}
