// Package fault is the simulator's deterministic fault-injection layer. A
// Plan describes three orthogonal fault families — node lifecycle faults
// (scheduled or randomized crash/recovery plus heterogeneous initial
// batteries), channel faults (a Gilbert–Elliott two-state burst-loss model
// hooked into phy delivery), and partition faults (timed mobility overrides
// that split and re-merge the field) — and an Injector resolves the plan
// against one run's seed and geometry.
//
// Determinism contract: every stochastic choice the layer makes draws from
// a private named RNG stream (sim.Stream with a "fault/..." name), so a
// faulted run is bit-reproducible from (Config, Seed) and an inert plan
// (zero rates, no events inside the run) perturbs nothing: no stream is
// ever created, no event is scheduled, no hook is installed, and the run is
// byte-identical to one with no fault layer at all. See DESIGN.md §9.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"rcast/internal/sim"
)

// Crash schedules one node lifecycle fault: the node powers down at At
// (flushing MAC and routing state) and, when RecoverAt is non-zero, powers
// back up at RecoverAt with amnesia — empty route cache, empty queues.
// Events at or after the run duration are simply never scheduled, so a
// crash at t=∞ is exactly no crash.
type Crash struct {
	Node      int
	At        sim.Time
	RecoverAt sim.Time // 0 = the node stays down for the rest of the run
}

// LossConfig parameterizes the Gilbert–Elliott burst-loss channel model: a
// continuous-time two-state Markov chain per receiver (or per directed
// link, with PerLink) alternating between a Good state with loss
// probability PGood and a Bad state with loss probability PBad, with
// exponentially distributed sojourn times of mean MeanGood / MeanBad. With
// both means zero the chain is degenerate and PGood applies uniformly
// (Bernoulli loss).
type LossConfig struct {
	PGood    float64
	PBad     float64
	MeanGood sim.Time
	MeanBad  sim.Time
	// PerLink runs one chain per directed (tx, rx) pair instead of one per
	// receiver, decorrelating loss bursts across a receiver's links.
	PerLink bool
}

// Enabled reports whether the configuration can ever lose a frame.
func (c LossConfig) Enabled() bool {
	return c.PGood > 0 || (c.PBad > 0 && c.burst())
}

// burst reports whether the two-state chain is active.
func (c LossConfig) burst() bool { return c.MeanGood > 0 && c.MeanBad > 0 }

// Partition splits the field in two for a window of the run: odd-indexed
// nodes are displaced far enough that no cross-group link can exist, then
// brought back. The window is expressed as fractions of the run duration so
// one plan composes with any experiment profile. The displacement ramps
// linearly over Ramp at each edge, keeping node speed bounded (the spatial
// grid index requires a declared motion bound).
type Partition struct {
	StartFrac float64  // in [0, 1)
	StopFrac  float64  // in (StartFrac, 1]
	Ramp      sim.Time // transition time; 0 selects 10 s
}

// Plan is a complete fault-injection description. The zero value is inert.
type Plan struct {
	// Crashes are explicit lifecycle faults.
	Crashes []Crash
	// CrashFraction additionally crashes each node with this probability at
	// a uniformly drawn instant in the middle 80% of the run.
	CrashFraction float64
	// Downtime is the recovery delay for randomized crashes; 0 means
	// crashed nodes stay down.
	Downtime sim.Time

	Loss       LossConfig
	Partitions []Partition

	// BatteryJitter spreads heterogeneous initial batteries: node capacity
	// is scaled by a uniform factor in [1-j, 1+j]. Only applies when the
	// scenario gives nodes finite batteries.
	BatteryJitter float64
}

// Enabled reports whether the plan can inject any fault at all. Note that
// an enabled plan may still be inert for a particular run (for example,
// every crash scheduled past the run duration).
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return len(p.Crashes) > 0 || p.CrashFraction > 0 || p.Loss.Enabled() ||
		len(p.Partitions) > 0 || p.BatteryJitter > 0
}

// Validate reports plan errors for a scenario with the given node count.
func (p *Plan) Validate(nodes int) error {
	if p == nil {
		return nil
	}
	for i, c := range p.Crashes {
		if c.Node < 0 || c.Node >= nodes {
			return fmt.Errorf("fault: crash %d targets node %d outside [0, %d)", i, c.Node, nodes)
		}
		if c.At < 0 {
			return fmt.Errorf("fault: crash %d at negative time %v", i, c.At)
		}
		if c.RecoverAt != 0 && c.RecoverAt <= c.At {
			return fmt.Errorf("fault: crash %d recovers at %v, not after the crash at %v", i, c.RecoverAt, c.At)
		}
	}
	if p.CrashFraction < 0 || p.CrashFraction > 1 {
		return fmt.Errorf("fault: crash fraction %v outside [0, 1]", p.CrashFraction)
	}
	if p.Downtime < 0 {
		return fmt.Errorf("fault: negative downtime %v", p.Downtime)
	}
	l := p.Loss
	if l.PGood < 0 || l.PGood > 1 || l.PBad < 0 || l.PBad > 1 {
		return fmt.Errorf("fault: loss probabilities (%v, %v) outside [0, 1]", l.PGood, l.PBad)
	}
	if l.MeanGood < 0 || l.MeanBad < 0 {
		return fmt.Errorf("fault: negative loss sojourn times (%v, %v)", l.MeanGood, l.MeanBad)
	}
	if l.PBad > l.PGood && !l.burst() {
		return fmt.Errorf("fault: bad-state loss %v configured without both sojourn times", l.PBad)
	}
	for i, w := range p.Partitions {
		if w.StartFrac < 0 || w.StopFrac > 1 || w.StartFrac >= w.StopFrac {
			return fmt.Errorf("fault: partition %d window [%v, %v] invalid", i, w.StartFrac, w.StopFrac)
		}
		if w.Ramp < 0 {
			return fmt.Errorf("fault: partition %d has negative ramp", i)
		}
	}
	if p.BatteryJitter < 0 || p.BatteryJitter >= 1 {
		return fmt.Errorf("fault: battery jitter %v outside [0, 1)", p.BatteryJitter)
	}
	return nil
}

// Presets for the -faults CLI flag. Kept deliberately coarse: anything
// finer is a Config edit away.
var presets = map[string]func() *Plan{
	"none": func() *Plan { return &Plan{} },
	"crash": func() *Plan {
		return &Plan{CrashFraction: 0.2, Downtime: 30 * sim.Second}
	},
	"crash-perm": func() *Plan {
		return &Plan{CrashFraction: 0.2}
	},
	"loss": func() *Plan {
		return &Plan{Loss: LossConfig{
			PGood:    0.02,
			PBad:     0.6,
			MeanGood: 10 * sim.Second,
			MeanBad:  sim.Second,
			PerLink:  true,
		}}
	},
	"partition": func() *Plan {
		return &Plan{Partitions: []Partition{{StartFrac: 0.4, StopFrac: 0.7, Ramp: 10 * sim.Second}}}
	},
	"battery": func() *Plan {
		return &Plan{BatteryJitter: 0.5}
	},
	"all": func() *Plan {
		return &Plan{
			CrashFraction: 0.2,
			Downtime:      30 * sim.Second,
			Loss: LossConfig{
				PGood:    0.02,
				PBad:     0.6,
				MeanGood: 10 * sim.Second,
				MeanBad:  sim.Second,
				PerLink:  true,
			},
			Partitions:    []Partition{{StartFrac: 0.4, StopFrac: 0.7, Ramp: 10 * sim.Second}},
			BatteryJitter: 0.5,
		}
	},
}

// PresetNames lists the preset names accepted by Preset, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset resolves a named fault plan for the -faults flag. The empty name
// yields nil (no fault layer at all).
func Preset(name string) (*Plan, error) {
	if name == "" {
		return nil, nil
	}
	if f, ok := presets[name]; ok {
		return f(), nil
	}
	return nil, fmt.Errorf("fault: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
}
