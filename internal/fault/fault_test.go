package fault

import (
	"math"
	"reflect"
	"testing"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

func testEnv() Env {
	return Env{
		Seed:     7,
		Nodes:    50,
		Duration: 900 * sim.Second,
		FieldW:   1500,
		FieldH:   300,
		RangeM:   250,
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"crash node out of range", Plan{Crashes: []Crash{{Node: 50, At: sim.Second}}}},
		{"negative crash node", Plan{Crashes: []Crash{{Node: -1, At: sim.Second}}}},
		{"negative crash time", Plan{Crashes: []Crash{{Node: 0, At: -sim.Second}}}},
		{"recovery before crash", Plan{Crashes: []Crash{{Node: 0, At: 2 * sim.Second, RecoverAt: sim.Second}}}},
		{"crash fraction above one", Plan{CrashFraction: 1.5}},
		{"negative downtime", Plan{Downtime: -sim.Second}},
		{"loss prob above one", Plan{Loss: LossConfig{PGood: 1.5}}},
		{"bad loss without sojourns", Plan{Loss: LossConfig{PBad: 0.5}}},
		{"negative sojourn", Plan{Loss: LossConfig{PGood: 0.1, MeanGood: -sim.Second}}},
		{"partition window inverted", Plan{Partitions: []Partition{{StartFrac: 0.7, StopFrac: 0.4}}}},
		{"partition past the run", Plan{Partitions: []Partition{{StartFrac: 0.5, StopFrac: 1.5}}}},
		{"battery jitter of one", Plan{BatteryJitter: 1}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(50); err == nil {
			t.Errorf("%s: Validate accepted an invalid plan", tc.name)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(50); err != nil {
		t.Errorf("nil plan failed validation: %v", err)
	}
}

func TestPresetsAllValid(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Preset(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if err := p.Validate(100); err != nil {
			t.Errorf("preset %q fails validation: %v", name, err)
		}
		if name != "none" && !p.Enabled() {
			t.Errorf("preset %q is unexpectedly inert", name)
		}
	}
	if p, err := Preset(""); err != nil || p != nil {
		t.Errorf("empty preset = (%v, %v), want (nil, nil)", p, err)
	}
	if _, err := Preset("bogus"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestInjectorInertForNilPlan(t *testing.T) {
	inj := NewInjector(nil, testEnv())
	if got := inj.Schedule(); len(got) != 0 {
		t.Errorf("nil plan scheduled %d crashes", len(got))
	}
	if inj.LossModel() != nil {
		t.Error("nil plan produced a loss model")
	}
	if got := inj.BatteryCapacity(3, 420); got != 420 {
		t.Errorf("BatteryCapacity = %v, want the base untouched", got)
	}
	if inj.ShiftsFor(1) != nil {
		t.Error("nil plan produced partition shifts")
	}
	if inj.ExtraMotionBound() != 0 {
		t.Error("nil plan claims extra motion")
	}
}

func TestCrashScheduleDeterministicAndSorted(t *testing.T) {
	plan := &Plan{CrashFraction: 0.3, Downtime: 30 * sim.Second}
	env := testEnv()
	a := NewInjector(plan, env).Schedule()
	b := NewInjector(plan, env).Schedule()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (plan, env) resolved to different schedules")
	}
	if len(a) == 0 {
		t.Fatal("30% crash fraction over 50 nodes drew no crashes")
	}
	lo, hi := env.Duration/10, env.Duration-env.Duration/10
	for i, c := range a {
		if i > 0 && (a[i-1].At > c.At || (a[i-1].At == c.At && a[i-1].Node >= c.Node)) {
			t.Errorf("schedule not sorted at %d", i)
		}
		if c.At < lo || c.At >= hi {
			t.Errorf("crash %d at %v outside the middle 80%% [%v, %v)", i, c.At, lo, hi)
		}
		if c.RecoverAt != 0 && c.RecoverAt != c.At+plan.Downtime {
			t.Errorf("crash %d recovery %v != At+Downtime", i, c.RecoverAt)
		}
	}
}

func TestCrashAtOrPastDurationNeverScheduled(t *testing.T) {
	env := testEnv()
	plan := &Plan{Crashes: []Crash{
		{Node: 0, At: env.Duration},
		{Node: 1, At: env.Duration + sim.Second},
		{Node: 2, At: sim.Second, RecoverAt: env.Duration + sim.Second},
	}}
	sched := NewInjector(plan, env).Schedule()
	if len(sched) != 1 {
		t.Fatalf("scheduled %d crashes, want only the in-run one", len(sched))
	}
	if sched[0].Node != 2 || sched[0].RecoverAt != 0 {
		t.Errorf("in-run crash = %+v; recovery past the run should normalize to 0", sched[0])
	}
}

func TestBatteryJitterBoundsAndIdentity(t *testing.T) {
	env := testEnv()
	j := 0.4
	inj := NewInjector(&Plan{BatteryJitter: j}, env)
	for i := 0; i < env.Nodes; i++ {
		f := inj.BatteryCapacity(i, 100) / 100
		if f < 1-j || f > 1+j {
			t.Errorf("node %d battery factor %v outside [%v, %v]", i, f, 1-j, 1+j)
		}
	}
	// Zero capacity means "infinite battery" and must stay exactly zero.
	if got := inj.BatteryCapacity(0, 0); got != 0 {
		t.Errorf("jittered zero capacity = %v, want 0", got)
	}
	// Without jitter the base must come back bit-identical.
	plain := NewInjector(&Plan{CrashFraction: 0.1}, env)
	if got := plain.BatteryCapacity(5, 123.456); got != 123.456 {
		t.Errorf("unjittered capacity = %v, want bit-identical base", got)
	}
}

func TestPartitionShiftsOnlyOddNodes(t *testing.T) {
	env := testEnv()
	inj := NewInjector(&Plan{Partitions: []Partition{{StartFrac: 0.4, StopFrac: 0.7}}}, env)
	if got := inj.ShiftsFor(2); got != nil {
		t.Error("even node received partition shifts")
	}
	shifts := inj.ShiftsFor(3)
	if len(shifts) != 1 {
		t.Fatalf("odd node has %d shifts, want 1", len(shifts))
	}
	s := shifts[0]
	wantOffset := env.FieldH + env.RangeM + partitionClearance
	if s.Offset.Y != wantOffset {
		t.Errorf("offset %v, want %v (out of range plus clearance)", s.Offset.Y, wantOffset)
	}
	if s.Ramp != defaultRamp {
		t.Errorf("ramp %v, want the %v default", s.Ramp, defaultRamp)
	}
	if b := inj.ExtraMotionBound(); math.Abs(b-s.Offset.Y/s.Ramp.Seconds()) > 1e-9 {
		t.Errorf("extra motion bound %v inconsistent with offset/ramp", b)
	}
}

func TestPartitionRampClampedToHalfWindow(t *testing.T) {
	env := testEnv()
	// A 2% window (18 s) cannot fit two 10 s ramps; expect (stop-start)/2.
	inj := NewInjector(&Plan{Partitions: []Partition{{StartFrac: 0.50, StopFrac: 0.52}}}, env)
	shifts := inj.ShiftsFor(1)
	if len(shifts) != 1 {
		t.Fatalf("got %d shifts, want 1", len(shifts))
	}
	if want := (shifts[0].Stop - shifts[0].Start) / 2; shifts[0].Ramp != want {
		t.Errorf("ramp %v, want clamp to half window %v", shifts[0].Ramp, want)
	}
}

// TestLossModelBernoulliRate pins the degenerate (no-burst) chain to a
// plain Bernoulli with rate PGood.
func TestLossModelBernoulliRate(t *testing.T) {
	m := newLossModel(LossConfig{PGood: 0.25}, 1)
	if m == nil {
		t.Fatal("Bernoulli config produced no model")
	}
	lost, trials := 0, 20000
	for i := 0; i < trials; i++ {
		if m.Lose(sim.Time(i)*sim.Millisecond, 0, 1) {
			lost++
		}
	}
	rate := float64(lost) / float64(trials)
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("Bernoulli loss rate %v, want ~0.25", rate)
	}
}

// TestLossModelBurstStructure verifies the two-state chain loses far more
// in aggregate than the good-state floor, and that two models with the
// same seed agree query by query regardless of chain creation order.
func TestLossModelBurstStructure(t *testing.T) {
	cfg := LossConfig{PGood: 0.01, PBad: 0.9, MeanGood: sim.Second, MeanBad: sim.Second}
	m := newLossModel(cfg, 1)
	lost, trials := 0, 20000
	for i := 0; i < trials; i++ {
		if m.Lose(sim.Time(i)*sim.Millisecond, 0, 1) {
			lost++
		}
	}
	rate := float64(lost) / float64(trials)
	// Equal sojourns → roughly half the time in Bad: expect ~0.455.
	if rate < 0.2 || rate > 0.7 {
		t.Errorf("burst loss rate %v, want roughly (PGood+PBad)/2", rate)
	}

	// Same seed, chains touched in different orders: per-chain streams are
	// anchored at t=0, so answers must match exactly.
	a := newLossModel(cfg, 9)
	b := newLossModel(cfg, 9)
	_ = b.Lose(0, 0, 2) // touch another receiver's chain first on b
	for i := 0; i < 1000; i++ {
		at := sim.Time(i) * 3 * sim.Millisecond
		if a.Lose(at, 0, 1) != b.Lose(at, 0, 1) {
			t.Fatalf("chain creation order changed the loss sequence at %v", at)
		}
	}
}

// TestLossModelPerLinkIndependence: with PerLink, the (tx→rx) and (tx'→rx)
// chains draw from distinct streams.
func TestLossModelPerLinkIndependence(t *testing.T) {
	cfg := LossConfig{PGood: 0.5, PerLink: true}
	a := newLossModel(cfg, 4)
	b := newLossModel(cfg, 4)
	diff := 0
	for i := 0; i < 2000; i++ {
		at := sim.Time(i) * sim.Millisecond
		if a.Lose(at, 0, 1) != b.Lose(at, 2, 1) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("per-link chains for different transmitters are identical")
	}
}

func TestLossModelDisabledConfigs(t *testing.T) {
	if m := newLossModel(LossConfig{}, 1); m != nil {
		t.Error("zero config produced a model")
	}
	if m := newLossModel(LossConfig{PBad: 0.9}, 1); m != nil {
		t.Error("bad-state prob without sojourn times produced a model")
	}
	var inj Injector
	if inj.LossModel() != nil {
		t.Error("zero injector leaked a typed-nil loss model")
	}
}

var _ phy.LossModel = (*gilbertElliott)(nil)
