package fault

import (
	"sort"

	"rcast/internal/geom"
	"rcast/internal/mobility"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// partitionClearance is how far beyond "barely out of range" the displaced
// group is pushed, so boundary-distance float noise cannot leak a link
// across an active partition.
const partitionClearance = 50.0

// defaultRamp is the partition transition time when a Partition leaves
// Ramp zero.
const defaultRamp = 10 * sim.Second

// Env is the run geometry an Injector resolves a Plan against.
type Env struct {
	Seed           int64
	Nodes          int
	Duration       sim.Time
	FieldW, FieldH float64
	RangeM         float64
}

// Injector is a Plan resolved for one run: a concrete crash schedule,
// per-node battery factors, partition shifts and the channel loss model.
// All randomness is drawn at construction (or, for the loss model, from
// per-chain streams), so two injectors built from the same (Plan, Env) are
// interchangeable.
type Injector struct {
	plan Plan
	env  Env

	schedule      []Crash
	batteryFactor []float64        // nil when BatteryJitter is zero
	shifts        []mobility.Shift // applied to odd-indexed nodes
}

// NewInjector resolves plan against env. A nil plan yields a fully inert
// injector.
func NewInjector(plan *Plan, env Env) *Injector {
	inj := &Injector{env: env}
	if plan == nil {
		return inj
	}
	inj.plan = *plan
	inj.resolveCrashes()
	inj.resolveBatteries()
	inj.resolvePartitions()
	return inj
}

// resolveCrashes merges the explicit crash list with the randomized draw
// into one schedule, dropping events outside (or starting past) the run.
func (inj *Injector) resolveCrashes() {
	add := func(c Crash) {
		if c.At >= inj.env.Duration {
			return // crash-at-t=∞ is no crash
		}
		if c.RecoverAt >= inj.env.Duration || c.RecoverAt <= c.At {
			c.RecoverAt = 0
		}
		inj.schedule = append(inj.schedule, c)
	}
	for _, c := range inj.plan.Crashes {
		add(c)
	}
	if frac := inj.plan.CrashFraction; frac > 0 {
		// One stream, consumed in node order: the schedule depends only on
		// (seed, fraction, downtime), never on anything the run does.
		rng := sim.Stream(inj.env.Seed, "fault/crash")
		lo := inj.env.Duration / 10
		span := inj.env.Duration - 2*lo
		for i := 0; i < inj.env.Nodes; i++ {
			if rng.Float64() >= frac {
				continue
			}
			at := lo + sim.Time(rng.Float64()*float64(span))
			c := Crash{Node: i, At: at}
			if inj.plan.Downtime > 0 {
				c.RecoverAt = at + inj.plan.Downtime
			}
			add(c)
		}
	}
	sort.Slice(inj.schedule, func(i, j int) bool {
		a, b := inj.schedule[i], inj.schedule[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Node < b.Node
	})
}

func (inj *Injector) resolveBatteries() {
	j := inj.plan.BatteryJitter
	if j <= 0 {
		return
	}
	rng := sim.Stream(inj.env.Seed, "fault/battery")
	inj.batteryFactor = make([]float64, inj.env.Nodes)
	for i := range inj.batteryFactor {
		inj.batteryFactor[i] = 1 - j + 2*j*rng.Float64()
	}
}

func (inj *Injector) resolvePartitions() {
	if len(inj.plan.Partitions) == 0 {
		return
	}
	// Displace the odd-indexed half of the field far enough that the
	// closest cross-group pair is partitionClearance beyond radio range.
	offset := geom.Point{Y: inj.env.FieldH + inj.env.RangeM + partitionClearance}
	for _, w := range inj.plan.Partitions {
		start := sim.Time(w.StartFrac * float64(inj.env.Duration))
		stop := sim.Time(w.StopFrac * float64(inj.env.Duration))
		if stop <= start {
			continue
		}
		ramp := w.Ramp
		if ramp <= 0 {
			ramp = defaultRamp
		}
		if half := (stop - start) / 2; ramp > half {
			ramp = half
		}
		if ramp < sim.Microsecond {
			continue
		}
		inj.shifts = append(inj.shifts, mobility.Shift{
			Start: start, Stop: stop, Ramp: ramp, Offset: offset,
		})
	}
}

// Schedule returns the resolved crash schedule, sorted by (At, Node).
func (inj *Injector) Schedule() []Crash { return inj.schedule }

// LossModel returns the channel loss hook, or nil when the plan's loss
// configuration cannot lose frames (no hook is installed at all).
func (inj *Injector) LossModel() phy.LossModel {
	if m := newLossModel(inj.plan.Loss, inj.env.Seed); m != nil {
		return m
	}
	return nil
}

// BatteryCapacity returns node i's jittered battery capacity. With zero
// jitter it returns base untouched (bit-identical, not merely close).
func (inj *Injector) BatteryCapacity(i int, base float64) float64 {
	if inj.batteryFactor == nil || base <= 0 || i < 0 || i >= len(inj.batteryFactor) {
		return base
	}
	return base * inj.batteryFactor[i]
}

// ShiftsFor returns the partition displacement windows for node i (nil for
// the stationary group and for plans without partitions).
func (inj *Injector) ShiftsFor(i int) []mobility.Shift {
	if len(inj.shifts) == 0 || i%2 == 0 {
		return nil
	}
	return inj.shifts
}

// ExtraMotionBound returns the worst-case extra speed (m/s) the partition
// shifts add on top of the scenario's own mobility; the channel's declared
// motion bound must grow by this much for grid answers to stay exact.
func (inj *Injector) ExtraMotionBound() float64 {
	var total float64
	for _, s := range inj.shifts {
		total += s.MaxExtraSpeed()
	}
	return total
}
