package fault

import (
	"fmt"
	"math"
	"math/rand"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

// gilbertElliott implements phy.LossModel: one continuous-time two-state
// Markov chain per receiver (or per directed link), advanced lazily to each
// query instant.
//
// Determinism: each chain owns a private RNG stream derived from the run
// seed and the chain identity, and a chain is only ever queried at
// reception-completion events, which the scheduler dispatches in
// deterministic order at monotone times. Chain state therefore never
// depends on map iteration order or on which other links exist, and the
// spatial-grid delivery path (which visits receivers in registration order,
// identical to the exhaustive scan) consumes chain randomness in exactly
// the same sequence as the brute-force path.
type gilbertElliott struct {
	cfg    LossConfig
	seed   int64
	chains map[chainKey]*geChain
}

type chainKey struct {
	tx, rx phy.NodeID // tx is phy.Broadcast for the per-receiver variant
}

type geChain struct {
	rng      *rand.Rand
	bad      bool
	nextFlip sim.Time // end of the current sojourn (burst chains only)
}

// newLossModel builds the model, or returns nil when cfg cannot lose
// frames (so an inert configuration installs no hook at all).
func newLossModel(cfg LossConfig, seed int64) *gilbertElliott {
	if !cfg.Enabled() {
		return nil
	}
	return &gilbertElliott{cfg: cfg, seed: seed, chains: make(map[chainKey]*geChain)}
}

// Lose implements phy.LossModel: it reports whether the frame from tx
// completing at rx at instant now is corrupted by the channel.
func (g *gilbertElliott) Lose(now sim.Time, tx, rx phy.NodeID) bool {
	k := chainKey{tx: phy.Broadcast, rx: rx}
	if g.cfg.PerLink {
		k.tx = tx
	}
	c, ok := g.chains[k]
	if !ok {
		c = g.newChain(k, now)
		g.chains[k] = c
	}
	if g.cfg.burst() {
		for c.nextFlip <= now {
			c.bad = !c.bad
			c.nextFlip += expDur(c.rng, g.sojourn(c.bad))
		}
	}
	p := g.cfg.PGood
	if c.bad {
		p = g.cfg.PBad
	}
	if p <= 0 {
		return false
	}
	return c.rng.Float64() < p
}

func (g *gilbertElliott) sojourn(bad bool) sim.Time {
	if bad {
		return g.cfg.MeanBad
	}
	return g.cfg.MeanGood
}

// newChain starts a chain in the Good state with its first sojourn drawn
// from the chain's private stream. Chains are created lazily at the first
// query, but the sojourn sequence is anchored at t=0 so creation order is
// irrelevant: the catch-up loop in Lose advances it to now.
func (g *gilbertElliott) newChain(k chainKey, _ sim.Time) *geChain {
	var name string
	if g.cfg.PerLink {
		name = fmt.Sprintf("fault/loss/%d-%d", int(k.tx), int(k.rx))
	} else {
		name = fmt.Sprintf("fault/loss/%d", int(k.rx))
	}
	c := &geChain{rng: sim.Stream(g.seed, name)}
	if g.cfg.burst() {
		c.nextFlip = expDur(c.rng, g.cfg.MeanGood)
	}
	return c
}

// expDur draws an exponential duration with the given mean, clamped below
// at one scheduler tick so sojourns always advance the chain.
func expDur(rng *rand.Rand, mean sim.Time) sim.Time {
	d := sim.Time(float64(mean) * -math.Log(1-rng.Float64()))
	if d < sim.Microsecond {
		d = sim.Microsecond
	}
	return d
}
