// Package geom provides the minimal 2-D geometry used by the mobility and
// radio models: points, distances, and the rectangular simulation field.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in metres on the simulation field.
type Point struct {
	X, Y float64
}

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{X: p.X * k, Y: p.Y * k} }

// DistanceTo returns the Euclidean distance in metres between p and q.
func (p Point) DistanceTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Lerp linearly interpolates from p to q; f=0 yields p, f=1 yields q.
func (p Point) Lerp(q Point, f float64) Point {
	return Point{X: p.X + (q.X-p.X)*f, Y: p.Y + (q.Y-p.Y)*f}
}

// String formats the point with centimetre precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned field anchored at the origin, W metres wide and
// H metres tall — e.g. the paper's 1500 m × 300 m field.
type Rect struct {
	W, H float64
}

// Contains reports whether p lies inside the field (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= 0 && p.X <= r.W && p.Y >= 0 && p.Y <= r.H
}

// Clamp returns p restricted to the field.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, 0), r.W),
		Y: math.Min(math.Max(p.Y, 0), r.H),
	}
}

// Area returns the field area in square metres.
func (r Rect) Area() float64 { return r.W * r.H }

// RandomPoint samples a uniformly distributed point inside the field.
func (r Rect) RandomPoint(rng *rand.Rand) Point {
	return Point{X: rng.Float64() * r.W, Y: rng.Float64() * r.H}
}
