package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{X: 3, Y: 4}
	q := Point{X: 1, Y: 2}
	if got := p.Add(q); got != (Point{X: 4, Y: 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{X: 2, Y: 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{X: 6, Y: 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestDistance(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{}, Point{X: 3, Y: 4}, 5},
		{Point{X: 1, Y: 1}, Point{X: 1, Y: 1}, 0},
		{Point{X: -1, Y: 0}, Point{X: 1, Y: 0}, 2},
	}
	for _, tt := range tests {
		if got := tt.p.DistanceTo(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("DistanceTo(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	prop := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		p, q := Point{X: ax, Y: ay}, Point{X: bx, Y: by}
		return p.DistanceTo(q) == q.DistanceTo(p) && p.DistanceTo(q) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{X: 0, Y: 0}, Point{X: 10, Y: 20}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != (Point{X: 5, Y: 10}) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestRectContainsClamp(t *testing.T) {
	r := Rect{W: 1500, H: 300}
	if !r.Contains(Point{X: 0, Y: 0}) || !r.Contains(Point{X: 1500, Y: 300}) {
		t.Error("Contains rejects boundary")
	}
	if r.Contains(Point{X: -1, Y: 0}) || r.Contains(Point{X: 0, Y: 301}) {
		t.Error("Contains accepts outside point")
	}
	if got := r.Clamp(Point{X: -5, Y: 999}); got != (Point{X: 0, Y: 300}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Area(); got != 450000 {
		t.Errorf("Area = %v", got)
	}
}

func TestRandomPointInField(t *testing.T) {
	r := Rect{W: 1500, H: 300}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := r.RandomPoint(rng)
		if !r.Contains(p) {
			t.Fatalf("RandomPoint outside field: %v", p)
		}
	}
}

func TestRandomPointCoversField(t *testing.T) {
	// Sanity: quadrant coverage of the uniform sampler.
	r := Rect{W: 100, H: 100}
	rng := rand.New(rand.NewSource(2))
	var quad [4]int
	for i := 0; i < 4000; i++ {
		p := r.RandomPoint(rng)
		idx := 0
		if p.X > 50 {
			idx++
		}
		if p.Y > 50 {
			idx += 2
		}
		quad[idx]++
	}
	for i, n := range quad {
		if n < 800 {
			t.Errorf("quadrant %d undersampled: %d/4000", i, n)
		}
	}
}
