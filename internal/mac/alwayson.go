package mac

import (
	"math/rand"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// AlwaysOn is the paper's "802.11" scheme: plain DCF with the radio awake
// for the whole run. Packets are transmitted as soon as the medium allows,
// and every in-range neighbor physically overhears every frame.
type AlwaysOn struct {
	radio *phy.Radio
	dcf   *dcf
	up    Upcalls
	dead  bool // battery depletion: permanent
	down  bool // fault-injected crash: reversible via PowerUp
	stats Stats
}

var _ Mac = (*AlwaysOn)(nil)

// NewAlwaysOn builds an always-on MAC for the given radio.
func NewAlwaysOn(
	sched *sim.Scheduler,
	ch *phy.Channel,
	radio *phy.Radio,
	rng *rand.Rand,
	p Params,
	up Upcalls,
) *AlwaysOn {
	m := &AlwaysOn{radio: radio, up: up}
	m.dcf = newDCF(sched, ch, radio, rng, p, &m.stats, m.deliver)
	m.dcf.setWindow(true, sim.MaxTime)
	return m
}

// Kill permanently silences the node (battery depletion).
func (m *AlwaysOn) Kill() {
	m.dead = true
	m.dcf.setWindow(false, 0)
	m.radio.SetAwake(false)
}

// PowerDown crashes the node: the radio goes dark and the DCF queue is
// flushed and returned WITHOUT firing OnResult (the fault layer reconciles
// the packets). No-op returning nil if already dead or down. The caller
// owns the node's energy meter transition: unlike PSM, an always-on MAC
// never drives its meter.
func (m *AlwaysOn) PowerDown() []Packet {
	if m.dead || m.down {
		return nil
	}
	m.down = true
	flushed := m.dcf.flush()
	m.radio.SetAwake(false)
	return flushed
}

// PowerUp recovers a crashed node: radio awake, transmit window open
// forever, exactly the state NewAlwaysOn leaves a fresh station in. No-op
// unless PowerDown is in effect (battery death is permanent).
func (m *AlwaysOn) PowerUp() {
	if m.dead || !m.down {
		return
	}
	m.down = false
	m.radio.SetAwake(true)
	m.dcf.setWindow(true, sim.MaxTime)
}

// Down reports whether a fault-injected PowerDown is in effect.
func (m *AlwaysOn) Down() bool { return m.down }

// Send implements Mac.
func (m *AlwaysOn) Send(p Packet) {
	if m.down {
		if p.OnResult != nil {
			p.OnResult(false)
		}
		return
	}
	if p.Level == 0 {
		p.Level = core.LevelUnconditional // no PSM: everyone hears everything
	}
	m.dcf.enqueue(p)
}

// NodeID implements Mac.
func (m *AlwaysOn) NodeID() phy.NodeID { return m.radio.ID() }

// Stats implements Mac.
func (m *AlwaysOn) Stats() Stats { return m.stats }

// Queued implements Mac.
func (m *AlwaysOn) Queued() []Packet { return m.dcf.queuedPackets() }

func (m *AlwaysOn) deliver(from phy.NodeID, pkt Packet, toMe bool) {
	if m.up == nil {
		return
	}
	if toMe {
		m.up.OnReceive(from, pkt)
		return
	}
	m.up.OnOverhear(from, pkt)
}
