package mac

import (
	"math/rand"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// AlwaysOn is the paper's "802.11" scheme: plain DCF with the radio awake
// for the whole run. Packets are transmitted as soon as the medium allows,
// and every in-range neighbor physically overhears every frame.
type AlwaysOn struct {
	radio *phy.Radio
	dcf   *dcf
	up    Upcalls
	stats Stats
}

var _ Mac = (*AlwaysOn)(nil)

// NewAlwaysOn builds an always-on MAC for the given radio.
func NewAlwaysOn(
	sched *sim.Scheduler,
	ch *phy.Channel,
	radio *phy.Radio,
	rng *rand.Rand,
	p Params,
	up Upcalls,
) *AlwaysOn {
	m := &AlwaysOn{radio: radio, up: up}
	m.dcf = newDCF(sched, ch, radio, rng, p, &m.stats, m.deliver)
	m.dcf.setWindow(true, sim.MaxTime)
	return m
}

// Kill permanently silences the node (battery depletion).
func (m *AlwaysOn) Kill() {
	m.dcf.setWindow(false, 0)
	m.radio.SetAwake(false)
}

// Send implements Mac.
func (m *AlwaysOn) Send(p Packet) {
	if p.Level == 0 {
		p.Level = core.LevelUnconditional // no PSM: everyone hears everything
	}
	m.dcf.enqueue(p)
}

// NodeID implements Mac.
func (m *AlwaysOn) NodeID() phy.NodeID { return m.radio.ID() }

// Stats implements Mac.
func (m *AlwaysOn) Stats() Stats { return m.stats }

// Queued implements Mac.
func (m *AlwaysOn) Queued() []Packet { return m.dcf.queuedPackets() }

func (m *AlwaysOn) deliver(from phy.NodeID, pkt Packet, toMe bool) {
	if m.up == nil {
		return
	}
	if toMe {
		m.up.OnReceive(from, pkt)
		return
	}
	m.up.OnOverhear(from, pkt)
}
