package mac

import (
	"testing"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// contentionRig builds PSM stations under ATIM contention with the given
// slot count.
func contentionRig(t *testing.T, n int, gap float64, slots int) (*rig, []*PSM) {
	t.Helper()
	r := newRig(t, n, gap)
	p := DefaultParams()
	p.ATIMContention = true
	p.ATIMSlots = slots
	r.coord = NewCoordinator(r.sched, r.ch, p, sim.Stream(7, "atim"), 3600*sim.Second)
	var macs []*PSM
	for i := 0; i < n; i++ {
		m := NewPSM(r.sched, r.ch, r.radios[i], r.meters[i], core.Rcast{},
			sim.Stream(int64(i), "mac"), p, r.recs[i])
		r.coord.AddStation(m)
		macs = append(macs, m)
	}
	return r, macs
}

func TestATIMContentionDeliversWithAmpleSlots(t *testing.T) {
	r, macs := contentionRig(t, 2, 100, 64)
	r.coord.Start()
	ok := false
	macs[0].Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512,
		OnResult: func(d bool) { ok = d }})
	r.sched.RunUntil(2 * sim.Second)
	if !ok {
		t.Fatal("packet not delivered under contention with a lone announcement")
	}
	if len(r.recs[1].received) != 1 {
		t.Fatal("receiver upcall missing")
	}
}

func TestATIMContentionSingleSlotAlwaysCollides(t *testing.T) {
	// With exactly one slot, two simultaneous announcements in range of
	// each other's destinations always collide: after ATIMRetryLimit
	// beacons both packets are dropped as link failures.
	r, macs := contentionRig(t, 3, 100, 1)
	r.coord.Start()
	okA, okB := true, true
	gotA, gotB := false, false
	macs[0].Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512,
		OnResult: func(d bool) { okA, gotA = d, true }})
	macs[2].Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512,
		OnResult: func(d bool) { okB, gotB = d, true }})
	r.sched.RunUntil(5 * sim.Second)
	if !gotA || !gotB {
		t.Fatal("results not reported")
	}
	if okA || okB {
		t.Fatal("delivery succeeded despite guaranteed ATIM collisions")
	}
	if macs[0].Stats().AtimFailures != 1 || macs[2].Stats().AtimFailures != 1 {
		t.Fatalf("AtimFailures = %d/%d, want 1/1",
			macs[0].Stats().AtimFailures, macs[2].Stats().AtimFailures)
	}
	if r.coord.ATIMCollisions() == 0 {
		t.Fatal("coordinator counted no collisions")
	}
}

func TestATIMContentionLoneSenderNeverCollides(t *testing.T) {
	// A single announcing sender cannot collide even with one slot.
	r, macs := contentionRig(t, 2, 100, 1)
	r.coord.Start()
	ok := false
	macs[0].Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512,
		OnResult: func(d bool) { ok = d }})
	r.sched.RunUntil(2 * sim.Second)
	if !ok {
		t.Fatal("lone announcement collided")
	}
	if r.coord.ATIMCollisions() != 0 {
		t.Fatal("phantom collision counted")
	}
}

func TestATIMContentionOutOfRangeDestinationFailsAfterRetries(t *testing.T) {
	// The destination never hears the ATIM: the sender gives up after
	// ATIMRetryLimit beacons and reports link failure — the path mobility
	// uses to surface broken links under contention.
	r, macs := contentionRig(t, 2, 400, 64) // out of range
	r.coord.Start()
	ok := true
	got := false
	macs[0].Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512,
		OnResult: func(d bool) { ok, got = d, true }})
	r.sched.RunUntil(5 * sim.Second)
	if !got || ok {
		t.Fatalf("got=%v ok=%v, want failure report", got, ok)
	}
	// Failure should take about ATIMRetryLimit beacon intervals.
	if macs[0].Stats().AtimFailures != 1 {
		t.Fatalf("AtimFailures = %d", macs[0].Stats().AtimFailures)
	}
}

func TestATIMContentionBroadcastAlwaysAdmitted(t *testing.T) {
	r, macs := contentionRig(t, 3, 100, 64)
	r.coord.Start()
	ok := false
	macs[0].Send(Packet{Dst: phy.Broadcast, Class: core.ClassRREQ, Bytes: 64,
		OnResult: func(d bool) { ok = d }})
	r.sched.RunUntil(2 * sim.Second)
	if !ok {
		t.Fatal("broadcast not transmitted under contention")
	}
	if len(r.recs[1].received) != 1 || len(r.recs[2].received) != 1 {
		t.Fatalf("broadcast receptions = %d/%d",
			len(r.recs[1].received), len(r.recs[2].received))
	}
}

func TestATIMContentionCongestionDegradesAdmission(t *testing.T) {
	// Many senders, small slot space: a noticeable fraction of
	// advertisements collide, deferring (or dropping) their packets —
	// the paper's own caveat about heavy traffic (§4.1).
	const n = 8
	r, macs := contentionRig(t, n, 10, 4) // everyone in range, 4 slots
	r.coord.Start()
	delivered := 0
	for i := 0; i < n-1; i++ {
		macs[i].Send(Packet{Dst: phy.NodeID(n - 1), Class: core.ClassData, Bytes: 256,
			OnResult: func(d bool) {
				if d {
					delivered++
				}
			}})
	}
	r.sched.RunUntil(20 * sim.Second)
	if r.coord.ATIMCollisions() == 0 {
		t.Fatal("no ATIM collisions despite 7 senders in 2 slots")
	}
	if delivered == 0 {
		t.Fatal("nothing delivered at all")
	}
}

func TestReliableModeIgnoresATIMOutcome(t *testing.T) {
	// In the default reliable mode ATIMOutcome is never called by the
	// coordinator; calling it directly must be a no-op.
	r := newRig(t, 2, 100)
	m := r.psm(0, core.Rcast{})
	m.ATIMOutcome(0, nil)
	m.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 64})
	r.psm(1, core.Rcast{})
	r.run(2 * sim.Second)
	if len(r.recs[1].received) != 1 {
		t.Fatal("reliable-mode delivery broken by ATIMOutcome no-op")
	}
}
