package mac

import (
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Audit observes PSM power-management transitions for invariant checking
// (implemented by internal/audit; this package defines the interface so it
// never depends on the checker). All methods are called synchronously from
// scheduler events. A nil Audit disables instrumentation entirely — the hot
// path then pays one nil check per beacon-cycle transition.
type Audit interface {
	// BeaconStarted fires when a station wakes for a beacon's ATIM window.
	BeaconStarted(now sim.Time, node phy.NodeID)
	// NodeSlept fires when a station voluntarily dozes for a data phase.
	// Battery-depletion kills are not reported: dying is legal at any
	// instant, sleeping is not.
	NodeSlept(now sim.Time, node phy.NodeID)
	// AMExtended fires after ExtendAM moves the active-mode horizon.
	AMExtended(now sim.Time, node phy.NodeID, until sim.Time)
	// TxWindowSet fires on every transmit-window change; end is meaningful
	// only when enabled.
	TxWindowSet(now sim.Time, node phy.NodeID, enabled bool, end sim.Time)
	// NodeDown fires when fault injection power-cycles a station off
	// (PowerDown). The checker must reset its per-node monotonicity
	// baselines: a recovered node restarts with amnesia, so pre-crash AM
	// horizons and window ends no longer bound its behaviour.
	NodeDown(now sim.Time, node phy.NodeID)
}
