package mac

import (
	"testing"

	"rcast/internal/core"
	"rcast/internal/geom"
	"rcast/internal/mobility"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// The churn rate must normalize by the real time since the previous sample,
// not by the beacon interval, and the first sample must only record the
// baseline neighbor set (there is no interval to rate over yet).
func TestChurnNormalizesByElapsedTime(t *testing.T) {
	r := newRig(t, 1, 10)
	m := r.psm(0, core.Rcast{})

	// First sample: one neighbor appears "out of nowhere" relative to the
	// empty baseline; it must not register as churn.
	r.ch.AddRadio(phy.NodeID(1), mobility.Static{P: geom.Point{X: 10}})
	m.updateChurn(0)
	if m.LinkChangesPerSec() != 0 {
		t.Fatalf("baseline sample moved churn to %v, want 0", m.LinkChangesPerSec())
	}

	// One link change over 10 s: rate 0.1/s, EWMA (alpha 0.2) = 0.02 — not
	// the 1/BeaconInterval = 4/s a fixed-interval divisor would produce.
	r.ch.AddRadio(phy.NodeID(2), mobility.Static{P: geom.Point{X: 20}})
	m.updateChurn(10 * sim.Second)
	if got, want := m.LinkChangesPerSec(), 0.2*0.1; !almostEqual(got, want) {
		t.Errorf("churn after 1 change / 10 s = %v, want %v", got, want)
	}

	// A stable neighborhood decays the estimate regardless of sample gap.
	m.updateChurn(12 * sim.Second)
	if got, want := m.LinkChangesPerSec(), 0.8*0.2*0.1; !almostEqual(got, want) {
		t.Errorf("churn after stable sample = %v, want %v", got, want)
	}

	// Zero-elapsed resample is a no-op, not a divide-by-zero.
	m.updateChurn(12 * sim.Second)
	if got, want := m.LinkChangesPerSec(), 0.8*0.2*0.1; !almostEqual(got, want) {
		t.Errorf("churn after zero-dt sample = %v, want %v", got, want)
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

// TestChurnIndependentOfMapIterationOrder pins the map-iteration audit
// (DESIGN.md §9): updateChurn ranges over the current and previous
// neighbor-set maps, the only map iteration in this package, and the churn
// estimate must be a pure set-difference count — identical however Go
// happens to order the maps. Fifty fresh stations walk the same neighbor
// evolution; a hidden order dependence would make at least one diverge.
func TestChurnIndependentOfMapIterationOrder(t *testing.T) {
	sample := func() float64 {
		r := newRig(t, 1, 10)
		m := r.psm(0, core.Rcast{})
		// Baseline: neighbors 1..8.
		for i := 1; i <= 8; i++ {
			r.ch.AddRadio(phy.NodeID(i), mobility.Static{P: geom.Point{X: float64(10 * i)}})
		}
		m.updateChurn(0)
		// Second sample: 9..12 appear (4 joins); move 1..4 out of range
		// is not possible with Static, so churn is join-only here.
		for i := 9; i <= 12; i++ {
			r.ch.AddRadio(phy.NodeID(i), mobility.Static{P: geom.Point{X: float64(10 * i)}})
		}
		m.updateChurn(10 * sim.Second)
		return m.LinkChangesPerSec()
	}
	want := sample()
	if want == 0 {
		t.Fatal("scenario produced no churn; test is vacuous")
	}
	for i := 1; i < 50; i++ {
		if got := sample(); got != want {
			t.Fatalf("run %d: churn %v != %v — map iteration order leaked into the estimate", i, got, want)
		}
	}
}
