package mac

import (
	"math/rand"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Announcement is one (reliable) ATIM advertisement: sender From has
// buffered traffic for To, advertised with the given overhearing level.
type Announcement struct {
	From  phy.NodeID
	To    phy.NodeID // phy.Broadcast for flooded packets
	Level core.Level
}

// Station is a PSM participant driven by the Coordinator.
type Station interface {
	// BeaconStart fires at each beacon boundary: the station wakes for the
	// ATIM window and returns its advertisements for this interval. The
	// returned slice is only valid until the station's next BeaconStart
	// (stations may reuse the backing array).
	BeaconStart(now sim.Time) []Announcement
	// ATIMEnd fires when the ATIM window closes, carrying the
	// advertisements this station decoded (already filtered for radio
	// range and, under ATIM contention, slot collisions); the station
	// decides whether to stay awake.
	ATIMEnd(now sim.Time, heard []Announcement, nextBeacon sim.Time)
	// ATIMOutcome fires before ATIMEnd under ATIM contention, listing
	// which of this station's own advertisements were decoded by their
	// destinations (admission to the data phase).
	ATIMOutcome(now sim.Time, admitted []Announcement)
	// Radio exposes the station's transceiver for range computations.
	Radio() *phy.Radio
}

// taggedAnn is one gathered advertisement with its sender index, contention
// slot draw, and (contention mode) whether its destination decoded it.
type taggedAnn struct {
	ann        Announcement
	sender     int
	slot       int
	dstDecoded bool
}

// Coordinator drives the synchronized beacon cycle shared by all PSM
// stations, resolves which advertisements each station can decode (range
// always; slot collisions under ATIM contention), and reports admission
// outcomes back to senders. The paper assumes stations are
// clock-synchronized (§2.2, citing Tseng et al.; see internal/clocksync);
// the coordinator is that assumption made concrete.
//
// The per-beacon working set (gathered announcements, per-receiver heard
// and admitted lists, slot-collision counts) lives in scratch buffers reused
// across beacons, and the beacon/ATIM-end callbacks are prebound once, so a
// beacon cycle performs no steady-state allocation.
type Coordinator struct {
	sched    *sim.Scheduler
	ch       *phy.Channel
	p        Params
	rng      *rand.Rand
	interval sim.Time
	atim     sim.Time
	stations []Station
	stopAt   sim.Time

	beacons        uint64
	atimCollisions uint64

	beaconFn  func() // prebound beacon callback
	atimEndFn func() // prebound ATIM-window-close callback

	anns       []taggedAnn // this interval's advertisements
	nextBeacon sim.Time
	heard      [][]Announcement // per-receiver decoded announcements
	admitted   [][]Announcement // per-sender admitted announcements
	recvIdx    []int            // scratch: receivable announcement indices
	keptIdx    []int            // scratch: receivable indices surviving slot collisions
	slotCount  []int            // scratch: per-slot reception counts
}

// NewCoordinator creates a beacon coordinator over the given channel.
// stopAt bounds the run; no beacons fire at or after it. rng drives the
// ATIM slot draws and may be nil when p.ATIMContention is false.
func NewCoordinator(sched *sim.Scheduler, ch *phy.Channel, p Params, rng *rand.Rand, stopAt sim.Time) *Coordinator {
	interval := p.BeaconInterval
	atim := p.ATIMWindow
	if atim >= interval {
		atim = interval / 5
	}
	if p.ATIMSlots < 1 {
		p.ATIMSlots = 64
	}
	c := &Coordinator{
		sched:    sched,
		ch:       ch,
		p:        p,
		rng:      rng,
		interval: interval,
		atim:     atim,
		stopAt:   stopAt,
	}
	c.beaconFn = c.beacon
	c.atimEndFn = c.atimEnd
	return c
}

// AddStation registers a PSM station. All stations must be registered
// before Start.
func (c *Coordinator) AddStation(s Station) { c.stations = append(c.stations, s) }

// Beacons returns how many beacon boundaries have fired.
func (c *Coordinator) Beacons() uint64 { return c.beacons }

// BeaconInterval returns the effective beacon interval.
func (c *Coordinator) BeaconInterval() sim.Time { return c.interval }

// ATIMWindow returns the effective ATIM window (clamped below the interval).
func (c *Coordinator) ATIMWindow() sim.Time { return c.atim }

// StopAt returns the instant at or after which no beacon fires.
func (c *Coordinator) StopAt() sim.Time { return c.stopAt }

// ATIMCollisions returns how many advertisement receptions were lost to
// slot collisions (contention mode only).
func (c *Coordinator) ATIMCollisions() uint64 { return c.atimCollisions }

// Start schedules the first beacon at t=0 (i.e. immediately).
func (c *Coordinator) Start() {
	c.sched.After(0, c.beaconFn)
}

func (c *Coordinator) beacon() {
	now := c.sched.Now()
	if now >= c.stopAt {
		return
	}
	c.beacons++
	// Gather advertisements from every station, in deterministic order.
	c.anns = c.anns[:0]
	for si, s := range c.stations {
		for _, a := range s.BeaconStart(now) {
			t := taggedAnn{ann: a, sender: si}
			if c.p.ATIMContention {
				t.slot = c.rng.Intn(c.p.ATIMSlots)
			}
			c.anns = append(c.anns, t)
		}
	}
	c.nextBeacon = now + c.interval
	c.sched.After(c.atim, c.atimEndFn)
	c.sched.After(c.interval, c.beaconFn)
}

// atimEnd closes the ATIM window: resolve what each station decodes, report
// admission outcomes (contention mode), and let stations pick a power state.
func (c *Coordinator) atimEnd() {
	at := c.sched.Now()
	if cap(c.heard) < len(c.stations) {
		c.heard = make([][]Announcement, len(c.stations))
	}
	c.heard = c.heard[:len(c.stations)]
	for ri, r := range c.stations {
		c.heard[ri] = c.heard[ri][:0]
		rr := r.Radio()
		// Indices of announcements receivable at r (sender in range).
		receivable := c.recvIdx[:0]
		for gi := range c.anns {
			t := &c.anns[gi]
			if t.sender == ri {
				continue
			}
			if c.ch.InRange(rr, c.stations[t.sender].Radio(), at) {
				receivable = append(receivable, gi)
			}
		}
		c.recvIdx = receivable[:0] // retain grown capacity for the next receiver
		if c.p.ATIMContention {
			// Same-slot announcements collide at this receiver. The counts
			// are zeroed again below (only the touched slots), so slotCount
			// stays clean across receivers without a full clear.
			if len(c.slotCount) < c.p.ATIMSlots {
				c.slotCount = make([]int, c.p.ATIMSlots)
			}
			for _, gi := range receivable {
				c.slotCount[c.anns[gi].slot]++
			}
			kept := c.keptIdx[:0]
			for _, gi := range receivable {
				if c.slotCount[c.anns[gi].slot] == 1 {
					kept = append(kept, gi)
				} else {
					c.atimCollisions++
				}
			}
			for _, gi := range receivable {
				c.slotCount[c.anns[gi].slot] = 0
			}
			c.keptIdx = kept
			receivable = kept
		}
		myID := rr.ID()
		for _, gi := range receivable {
			t := &c.anns[gi]
			if t.ann.To == myID {
				t.dstDecoded = true
			}
			c.heard[ri] = append(c.heard[ri], t.ann)
		}
	}
	// Admission outcomes for senders (contention mode): a unicast
	// advertisement is admitted iff its destination decoded it;
	// broadcasts are always admitted (no ATIM-ACK in 802.11).
	if c.p.ATIMContention {
		if cap(c.admitted) < len(c.stations) {
			c.admitted = make([][]Announcement, len(c.stations))
		}
		c.admitted = c.admitted[:len(c.stations)]
		for si := range c.admitted {
			c.admitted[si] = c.admitted[si][:0]
		}
		for gi := range c.anns {
			t := &c.anns[gi]
			if t.ann.To == phy.Broadcast || t.dstDecoded {
				c.admitted[t.sender] = append(c.admitted[t.sender], t.ann)
			}
		}
		for si, s := range c.stations {
			s.ATIMOutcome(at, c.admitted[si])
		}
	}
	for ri, s := range c.stations {
		s.ATIMEnd(at, c.heard[ri], c.nextBeacon)
	}
}
