package mac

import (
	"math/rand"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Announcement is one (reliable) ATIM advertisement: sender From has
// buffered traffic for To, advertised with the given overhearing level.
type Announcement struct {
	From  phy.NodeID
	To    phy.NodeID // phy.Broadcast for flooded packets
	Level core.Level
}

// Station is a PSM participant driven by the Coordinator.
type Station interface {
	// BeaconStart fires at each beacon boundary: the station wakes for the
	// ATIM window and returns its advertisements for this interval.
	BeaconStart(now sim.Time) []Announcement
	// ATIMEnd fires when the ATIM window closes, carrying the
	// advertisements this station decoded (already filtered for radio
	// range and, under ATIM contention, slot collisions); the station
	// decides whether to stay awake.
	ATIMEnd(now sim.Time, heard []Announcement, nextBeacon sim.Time)
	// ATIMOutcome fires before ATIMEnd under ATIM contention, listing
	// which of this station's own advertisements were decoded by their
	// destinations (admission to the data phase).
	ATIMOutcome(now sim.Time, admitted []Announcement)
	// Radio exposes the station's transceiver for range computations.
	Radio() *phy.Radio
}

// Coordinator drives the synchronized beacon cycle shared by all PSM
// stations, resolves which advertisements each station can decode (range
// always; slot collisions under ATIM contention), and reports admission
// outcomes back to senders. The paper assumes stations are
// clock-synchronized (§2.2, citing Tseng et al.; see internal/clocksync);
// the coordinator is that assumption made concrete.
type Coordinator struct {
	sched    *sim.Scheduler
	ch       *phy.Channel
	p        Params
	rng      *rand.Rand
	interval sim.Time
	atim     sim.Time
	stations []Station
	stopAt   sim.Time

	beacons        uint64
	atimCollisions uint64
}

// NewCoordinator creates a beacon coordinator over the given channel.
// stopAt bounds the run; no beacons fire at or after it. rng drives the
// ATIM slot draws and may be nil when p.ATIMContention is false.
func NewCoordinator(sched *sim.Scheduler, ch *phy.Channel, p Params, rng *rand.Rand, stopAt sim.Time) *Coordinator {
	interval := p.BeaconInterval
	atim := p.ATIMWindow
	if atim >= interval {
		atim = interval / 5
	}
	if p.ATIMSlots < 1 {
		p.ATIMSlots = 64
	}
	return &Coordinator{
		sched:    sched,
		ch:       ch,
		p:        p,
		rng:      rng,
		interval: interval,
		atim:     atim,
		stopAt:   stopAt,
	}
}

// AddStation registers a PSM station. All stations must be registered
// before Start.
func (c *Coordinator) AddStation(s Station) { c.stations = append(c.stations, s) }

// Beacons returns how many beacon boundaries have fired.
func (c *Coordinator) Beacons() uint64 { return c.beacons }

// BeaconInterval returns the effective beacon interval.
func (c *Coordinator) BeaconInterval() sim.Time { return c.interval }

// ATIMWindow returns the effective ATIM window (clamped below the interval).
func (c *Coordinator) ATIMWindow() sim.Time { return c.atim }

// StopAt returns the instant at or after which no beacon fires.
func (c *Coordinator) StopAt() sim.Time { return c.stopAt }

// ATIMCollisions returns how many advertisement receptions were lost to
// slot collisions (contention mode only).
func (c *Coordinator) ATIMCollisions() uint64 { return c.atimCollisions }

// Start schedules the first beacon at t=0 (i.e. immediately).
func (c *Coordinator) Start() {
	c.sched.After(0, c.beacon)
}

func (c *Coordinator) beacon() {
	now := c.sched.Now()
	if now >= c.stopAt {
		return
	}
	c.beacons++
	// Gather advertisements from every station, in deterministic order.
	type tagged struct {
		ann    Announcement
		sender int
		slot   int
	}
	var anns []tagged
	for si, s := range c.stations {
		for _, a := range s.BeaconStart(now) {
			t := tagged{ann: a, sender: si}
			if c.p.ATIMContention {
				t.slot = c.rng.Intn(c.p.ATIMSlots)
			}
			anns = append(anns, t)
		}
	}
	next := now + c.interval
	c.sched.After(c.atim, func() {
		at := c.sched.Now()
		// Resolve what each station decodes.
		heard := make([][]Announcement, len(c.stations))
		heardIdx := make([]map[int]struct{}, len(c.stations))
		for ri, r := range c.stations {
			rr := r.Radio()
			// Indices of announcements receivable at r (sender in range).
			var receivable []int
			for gi, t := range anns {
				if t.sender == ri {
					continue
				}
				if c.ch.InRange(rr, c.stations[t.sender].Radio(), at) {
					receivable = append(receivable, gi)
				}
			}
			if c.p.ATIMContention {
				// Same-slot announcements collide at this receiver.
				bySlot := make(map[int]int, len(receivable))
				for _, gi := range receivable {
					bySlot[anns[gi].slot]++
				}
				kept := receivable[:0]
				for _, gi := range receivable {
					if bySlot[anns[gi].slot] == 1 {
						kept = append(kept, gi)
					} else {
						c.atimCollisions++
					}
				}
				receivable = kept
			}
			heardIdx[ri] = make(map[int]struct{}, len(receivable))
			for _, gi := range receivable {
				heardIdx[ri][gi] = struct{}{}
				heard[ri] = append(heard[ri], anns[gi].ann)
			}
		}
		// Admission outcomes for senders (contention mode): a unicast
		// advertisement is admitted iff its destination decoded it;
		// broadcasts are always admitted (no ATIM-ACK in 802.11).
		if c.p.ATIMContention {
			dstIndex := make(map[phy.NodeID]int, len(c.stations))
			for si, s := range c.stations {
				dstIndex[s.Radio().ID()] = si
			}
			admitted := make([][]Announcement, len(c.stations))
			for gi, t := range anns {
				ok := t.ann.To == phy.Broadcast
				if !ok {
					if di, present := dstIndex[t.ann.To]; present {
						_, ok = heardIdx[di][gi]
					}
				}
				if ok {
					admitted[t.sender] = append(admitted[t.sender], t.ann)
				}
			}
			for si, s := range c.stations {
				s.ATIMOutcome(at, admitted[si])
			}
		}
		for ri, s := range c.stations {
			s.ATIMEnd(at, heard[ri], next)
		}
	})
	c.sched.After(c.interval, c.beacon)
}
