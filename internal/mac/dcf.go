package mac

import (
	"math/rand"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

// txJob is one packet moving through the DCF transmit pipeline.
type txJob struct {
	seq     uint64
	pkt     Packet
	retries int
	cw      int
}

// sifsResp is a pooled SIFS-delayed control-frame response (CTS or ACK).
// Each pool entry owns one prebound fire closure, so responding to an RTS or
// data frame allocates nothing in steady state; pooling individual entries
// (rather than a single in-flight slot) keeps overlapping responses correct
// under arbitrary Params, where SIFS may exceed the inter-frame spacing.
type sifsResp struct {
	d    *dcf
	next *sifsResp
	to   phy.NodeID
	seq  uint64
	dur  sim.Time
	cts  bool
	fire func()
}

func (r *sifsResp) send() {
	d := r.d
	if r.cts {
		d.stats.CtsTx++
		d.ch.Transmit(d.radio, phy.Frame{
			From:    d.radio.ID(),
			To:      r.to,
			Bytes:   d.p.CTSBytes,
			Payload: &ctsFrame{Seq: r.seq, Dur: r.dur},
		}, d.p.DataRateMbps)
	} else {
		d.stats.AckTx++
		d.ch.Transmit(d.radio, phy.Frame{
			From:    d.radio.ID(),
			To:      r.to,
			Bytes:   d.p.AckBytes,
			Payload: &ackFrame{Seq: r.seq},
		}, d.p.DataRateMbps)
	}
	r.next = d.sifsFree
	d.sifsFree = r
}

// dcf is the 802.11 distributed coordination function engine: a FIFO
// transmit queue drained head-of-line with physical and virtual (NAV)
// carrier sense, DIFS spacing, slotted binary-exponential backoff, an
// RTS/CTS exchange for unicast data at or above the RTS threshold,
// per-unicast ACKs, and a retry limit.
//
// The engine is gated by a transmit window: PSM enables it for the data
// phase of each beacon interval and disables it during ATIM windows and
// sleep; AlwaysOn leaves it enabled forever. An exchange that would not
// complete before the window closes stalls until the window is reset.
type dcf struct {
	sched *sim.Scheduler
	ch    *phy.Channel
	radio *phy.Radio
	rng   *rand.Rand
	p     Params

	queue     []*txJob
	current   *txJob // job in service (backoff, handshake or on the air)
	enabled   bool
	windowEnd sim.Time
	stalled   bool

	// eligible, when non-nil, gates which queued packets may be served in
	// the current window (PSM admission control under ATIM contention).
	eligible func(Packet) bool

	attemptTimer sim.Timer
	ctsTimer     sim.Timer
	ackTimer     sim.Timer
	// doneTimer tracks a broadcast frame's on-air completion. It gates
	// kick() exactly like the unicast awaiting* flags: without it, an
	// enqueue or window reset during the broadcast's airtime would re-serve
	// the in-flight job — a duplicate transmission whose second completion
	// fires OnResult twice.
	doneTimer   sim.Timer
	awaitingCTS bool
	awaitingAck bool

	// Latest scheduled event per exchange-timer role, tracked alongside the
	// timer handle so cancellation can recycle the event (see timerEvt).
	attemptEvt *timerEvt
	ctsEvt     *timerEvt
	ackEvt     *timerEvt
	doneEvt    *timerEvt
	evtFree    *timerEvt

	sifsFree *sifsResp

	// navUntil is the virtual carrier-sense reservation learned from
	// overheard RTS/CTS frames.
	navUntil sim.Time

	nextSeq uint64
	// lastSeen is the per-sender duplicate filter, indexed by NodeID
	// (sequence numbers start at 1, so 0 means "nothing heard yet").
	lastSeen []uint64

	// deliver is the owner upcall for every decoded data frame. toMe is
	// true for frames addressed to this node or broadcast.
	deliver func(from phy.NodeID, pkt Packet, toMe bool)

	stats *Stats
}

var _ phy.Receiver = (*dcf)(nil)

// Control-frame payloads for the RTS/CTS handshake. Dur reserves the
// medium (NAV) from the end of the carrying frame.
type rtsFrame struct {
	Seq uint64
	Dur sim.Time
}

type ctsFrame struct {
	Seq uint64
	Dur sim.Time
}

func newDCF(
	sched *sim.Scheduler,
	ch *phy.Channel,
	radio *phy.Radio,
	rng *rand.Rand,
	p Params,
	stats *Stats,
	deliver func(from phy.NodeID, pkt Packet, toMe bool),
) *dcf {
	d := &dcf{
		sched:   sched,
		ch:      ch,
		radio:   radio,
		rng:     rng,
		p:       p,
		deliver: deliver,
		stats:   stats,
	}
	radio.SetReceiver(d)
	return d
}

// timerEvt is a pooled one-shot timer callback bound to a specific job.
// The exchange timers (backoff attempt, CTS/ACK timeout, broadcast done,
// SIFS-delayed data) must capture the job they were scheduled for: the
// transmit window can be torn down and re-opened at arbitrary instants
// (ODPM power-cycles mid-interval, unconstrained by PSM's window sizing),
// which can leave an old timer pending while a new job enters service.
// Dispatching such an orphan on d.current would act on the wrong job — or
// on nil. Each pool entry owns one prebound fire closure; entries recycle
// on fire and on cancellation, so scheduling allocates nothing in steady
// state.
type timerEvt struct {
	d    *dcf
	next *timerEvt
	job  *txJob
	kind uint8
	fire func()
}

const (
	evtAttempt uint8 = iota // backoff expired: fire the exchange
	evtCTS                  // CTS timeout: retry
	evtAck                  // ACK timeout: retry
	evtDone                 // broadcast airtime complete
	evtSend                 // SIFS after CTS: transmit the data frame
)

func (e *timerEvt) run() {
	d, job, kind := e.d, e.job, e.kind
	e.job = nil
	e.next = d.evtFree
	d.evtFree = e
	switch kind {
	case evtAttempt:
		d.attemptTimer = sim.Timer{}
		d.fire(job)
	case evtCTS:
		d.ctsTimer = sim.Timer{}
		d.awaitingCTS = false
		d.retry(job)
	case evtAck:
		d.ackTimer = sim.Timer{}
		d.awaitingAck = false
		d.retry(job)
	case evtDone:
		d.doneTimer = sim.Timer{}
		d.complete(job, true)
	case evtSend:
		if !d.enabled {
			return
		}
		d.sendData(job)
	}
}

// afterEvt schedules a job-bound exchange event, tracking the latest event
// per role so cancelEvt can recycle it.
func (d *dcf) afterEvt(delay sim.Time, kind uint8, job *txJob) sim.Timer {
	e := d.evtFree
	if e == nil {
		e = &timerEvt{d: d}
		e.fire = e.run
	} else {
		d.evtFree = e.next
	}
	e.job, e.kind = job, kind
	t := d.sched.After(delay, e.fire)
	switch kind {
	case evtAttempt:
		d.attemptEvt = e
	case evtCTS:
		d.ctsEvt = e
	case evtAck:
		d.ackEvt = e
	case evtDone:
		d.doneEvt = e
	}
	return t
}

// cancelEvt cancels a role's timer and recycles its bound event if the
// timer was still pending (a fired event recycles itself in run). Zeroing
// the handle mirrors the fire path, so the Active() gates in kick read
// consistently.
func (d *dcf) cancelEvt(t *sim.Timer, e **timerEvt) {
	if t.Active() {
		t.Cancel()
		ev := *e
		ev.job = nil
		ev.next = d.evtFree
		d.evtFree = ev
	}
	*t = sim.Timer{}
	*e = nil
}

// respond queues a pooled SIFS-delayed CTS or ACK.
func (d *dcf) respond(cts bool, to phy.NodeID, seq uint64, dur sim.Time) {
	r := d.sifsFree
	if r == nil {
		r = &sifsResp{d: d}
		r.fire = r.send
	} else {
		d.sifsFree = r.next
	}
	r.cts, r.to, r.seq, r.dur = cts, to, seq, dur
	d.sched.After(d.p.SIFS, r.fire)
}

// enqueue appends a packet to the transmit queue and kicks the pipeline.
func (d *dcf) enqueue(pkt Packet) {
	d.nextSeq++
	d.queue = append(d.queue, &txJob{seq: d.nextSeq, pkt: pkt, cw: d.p.CWMin})
	d.kick()
}

// queueLen returns the number of queued (not yet completed) packets.
func (d *dcf) queueLen() int { return len(d.queue) }

// queuedPackets returns the queued packets head-first. The caller must not
// retain the slice across scheduler events.
func (d *dcf) queuedPackets() []Packet {
	out := make([]Packet, len(d.queue))
	for i, j := range d.queue {
		out[i] = j.pkt
	}
	return out
}

// setWindow opens (enabled=true) or closes the transmit window. Closing
// cancels any pending backoff attempt or handshake wait; a frame already on
// the air completes (window sizing prevents exchanges from straddling the
// close).
func (d *dcf) setWindow(enabled bool, end sim.Time) {
	d.enabled = enabled
	d.windowEnd = end
	d.stalled = false
	if !enabled {
		d.cancelEvt(&d.attemptTimer, &d.attemptEvt)
		d.cancelEvt(&d.ctsTimer, &d.ctsEvt)
		d.cancelEvt(&d.ackTimer, &d.ackEvt)
		d.cancelEvt(&d.doneTimer, &d.doneEvt)
		d.awaitingCTS = false
		d.awaitingAck = false
		d.current = nil // the job stays queued for the next window
		return
	}
	d.kick()
}

// flush closes the window, cancels all pending activity and empties the
// transmit queue, returning the queued packets in queue order WITHOUT
// firing their OnResult callbacks: a power-cycle crash must not look like a
// per-packet link failure (which would trigger salvage/RERR machinery on a
// node that is supposed to be dead). The caller reconciles the returned
// packets. Receiver-side soft state (duplicate filter, NAV) is cleared too:
// a recovered node restarts with amnesia.
func (d *dcf) flush() []Packet {
	d.setWindow(false, 0)
	pkts := d.queuedPackets()
	for i := range d.queue {
		d.queue[i] = nil
	}
	d.queue = d.queue[:0]
	d.navUntil = 0
	d.eligible = nil
	clear(d.lastSeen)
	return pkts
}

// setEligible installs (or clears) the admission gate and re-kicks.
func (d *dcf) setEligible(f func(Packet) bool) {
	d.eligible = f
	d.kick()
}

// failJobs removes every queued, not-in-service job matching the predicate
// and reports link failure for it (ATIM retry exhaustion).
func (d *dcf) failJobs(match func(Packet) bool) int {
	kept := d.queue[:0]
	var failed []*txJob
	for _, job := range d.queue {
		if job != d.current && match(job.pkt) {
			failed = append(failed, job)
			continue
		}
		kept = append(kept, job)
	}
	for i := len(kept); i < len(d.queue); i++ {
		d.queue[i] = nil
	}
	d.queue = kept
	for _, job := range failed {
		d.stats.AtimFailures++
		if job.pkt.OnResult != nil {
			job.pkt.OnResult(false)
		}
	}
	return len(failed)
}

// kick starts an attempt for the first eligible job if the pipeline is
// idle.
func (d *dcf) kick() {
	if !d.enabled || d.stalled || d.awaitingCTS || d.awaitingAck ||
		d.attemptTimer.Active() || d.doneTimer.Active() {
		return
	}
	if d.current == nil {
		for _, job := range d.queue {
			if d.eligible == nil || d.eligible(job.pkt) {
				d.current = job
				break
			}
		}
	}
	if d.current == nil {
		return
	}
	d.attempt(d.current)
}

// usesRTS reports whether job's transmission starts with an RTS/CTS
// handshake (unicast data at or above the threshold, as in ns-2 where the
// default threshold of 0 applies it to all unicast data).
func (d *dcf) usesRTS(job *txJob) bool {
	if job.pkt.Dst == phy.Broadcast {
		return false
	}
	return job.pkt.Bytes+d.p.DataHeaderBytes >= d.p.RTSThresholdBytes
}

// airtime helpers.
func (d *dcf) dataAirtime(job *txJob) sim.Time {
	return phy.Airtime(job.pkt.Bytes+d.p.DataHeaderBytes, d.p.DataRateMbps)
}

func (d *dcf) ackAirtime() sim.Time { return phy.Airtime(d.p.AckBytes, d.p.DataRateMbps) }
func (d *dcf) rtsAirtime() sim.Time { return phy.Airtime(d.p.RTSBytes, d.p.DataRateMbps) }
func (d *dcf) ctsAirtime() sim.Time { return phy.Airtime(d.p.CTSBytes, d.p.DataRateMbps) }

// exchangeDuration returns the worst-case on-air time of sending job,
// including the RTS/CTS handshake and ACK where applicable.
func (d *dcf) exchangeDuration(job *txJob) sim.Time {
	dur := d.dataAirtime(job)
	if job.pkt.Dst != phy.Broadcast {
		dur += d.p.SIFS + d.ackAirtime()
	}
	if d.usesRTS(job) {
		dur += d.rtsAirtime() + d.p.SIFS + d.ctsAirtime() + d.p.SIFS
	}
	return dur
}

// mediumBusy combines physical and virtual carrier sense.
func (d *dcf) mediumBusy(now sim.Time) bool {
	return d.radio.CarrierBusy(now) || d.navUntil > now ||
		d.radio.Transmitting(now)
}

// mediumFreeAt returns the earliest instant the medium is expected idle.
func (d *dcf) mediumFreeAt(now sim.Time) sim.Time {
	free := sim.MaxOf(now, d.radio.CarrierBusyUntil())
	return sim.MaxOf(free, d.navUntil)
}

// attempt schedules one CSMA/CA transmission attempt for job.
func (d *dcf) attempt(job *txJob) {
	now := d.sched.Now()
	backoff := sim.Time(d.rng.Intn(job.cw+1)) * d.p.SlotTime
	start := d.mediumFreeAt(now) + d.p.DIFS + backoff
	if start+d.exchangeDuration(job) > d.windowEnd {
		// Will not fit before the window closes: stall until reset.
		d.stalled = true
		return
	}
	d.attemptTimer = d.afterEvt(start-now, evtAttempt, job)
}

// fire begins the exchange for job if the medium is still idle, else
// re-contends.
func (d *dcf) fire(job *txJob) {
	now := d.sched.Now()
	if !d.enabled {
		return
	}
	if d.mediumBusy(now) {
		// Someone grabbed the medium during our backoff; contend again with
		// a fresh draw from the same window (approximates backoff freezing).
		d.attempt(job)
		return
	}
	if d.usesRTS(job) {
		d.sendRTS(job)
		return
	}
	d.sendData(job)
}

// sendRTS transmits the RTS and waits for the CTS.
func (d *dcf) sendRTS(job *txJob) {
	rtsAir := d.rtsAirtime()
	// NAV carried by the RTS: everything after the RTS itself.
	nav := d.p.SIFS + d.ctsAirtime() + d.p.SIFS + d.dataAirtime(job) + d.p.SIFS + d.ackAirtime()
	d.stats.RtsTx++
	d.ch.Transmit(d.radio, phy.Frame{
		From:    d.radio.ID(),
		To:      job.pkt.Dst,
		Bytes:   d.p.RTSBytes,
		Payload: &rtsFrame{Seq: job.seq, Dur: nav},
	}, d.p.DataRateMbps)

	d.awaitingCTS = true
	timeout := rtsAir + d.p.SIFS + d.ctsAirtime() + 3*d.p.SlotTime
	d.ctsTimer = d.afterEvt(timeout, evtCTS, job)
}

// sendData transmits the data frame and, for unicast, waits for the ACK.
func (d *dcf) sendData(job *txJob) {
	frame := phy.Frame{
		From:    d.radio.ID(),
		To:      job.pkt.Dst,
		Bytes:   job.pkt.Bytes + d.p.DataHeaderBytes,
		Payload: &dataFrame{Seq: job.seq, Pkt: job.pkt},
	}
	d.ch.Transmit(d.radio, frame, d.p.DataRateMbps)
	airtime := d.dataAirtime(job)

	if job.pkt.Dst == phy.Broadcast {
		d.stats.BroadcastTx++
		d.doneTimer = d.afterEvt(airtime, evtDone, job)
		return
	}

	d.stats.DataTx++
	d.awaitingAck = true
	timeout := airtime + d.p.SIFS + d.ackAirtime() + 3*d.p.SlotTime
	d.ackTimer = d.afterEvt(timeout, evtAck, job)
}

// retry re-contends after a missing CTS or ACK, doubling the contention
// window, until the retry limit is exhausted.
func (d *dcf) retry(job *txJob) {
	job.retries++
	if job.retries > d.p.RetryLimit {
		d.complete(job, false)
		return
	}
	job.cw = (job.cw+1)*2 - 1
	if job.cw > d.p.CWMax {
		job.cw = d.p.CWMax
	}
	if !d.enabled {
		// Window closed mid-retry; the job stays queued for the next phase.
		d.current = nil
		return
	}
	d.attempt(job)
}

// complete finishes the in-service job and moves on.
func (d *dcf) complete(job *txJob, ok bool) {
	for i, q := range d.queue {
		if q == job {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			break
		}
	}
	if d.current == job {
		d.current = nil
	}
	if ok && job.pkt.Dst != phy.Broadcast {
		d.stats.LinkSuccess++
	}
	if !ok {
		d.stats.LinkFailures++
	}
	if job.pkt.OnResult != nil {
		job.pkt.OnResult(ok)
	}
	d.kick()
}

// OnFrame implements phy.Receiver.
func (d *dcf) OnFrame(f phy.Frame) {
	switch pl := f.Payload.(type) {
	case *rtsFrame:
		d.onRTS(f, pl)
	case *ctsFrame:
		d.onCTS(f, pl)
	case *ackFrame:
		d.onAck(f, pl)
	case *dataFrame:
		d.onData(f, pl)
	}
}

func (d *dcf) onRTS(f phy.Frame, rts *rtsFrame) {
	now := d.sched.Now()
	if f.To != d.radio.ID() {
		// Virtual carrier sense: defer for the whole announced exchange.
		d.extendNAV(now + rts.Dur)
		return
	}
	// Respond with a CTS iff our medium is idle (standard behaviour);
	// otherwise stay silent and let the sender retry.
	if d.radio.CarrierBusy(now) || d.navUntil > now || d.radio.Transmitting(now) {
		return
	}
	d.respond(true, f.From, rts.Seq, rts.Dur-d.p.SIFS-d.ctsAirtime())
}

func (d *dcf) onCTS(f phy.Frame, cts *ctsFrame) {
	now := d.sched.Now()
	if f.To != d.radio.ID() {
		d.extendNAV(now + cts.Dur)
		return
	}
	if !d.awaitingCTS || d.current == nil {
		return
	}
	job := d.current
	if cts.Seq != job.seq {
		return
	}
	d.awaitingCTS = false
	d.cancelEvt(&d.ctsTimer, &d.ctsEvt)
	d.afterEvt(d.p.SIFS, evtSend, job)
}

func (d *dcf) onAck(f phy.Frame, ack *ackFrame) {
	if f.To != d.radio.ID() || !d.awaitingAck || d.current == nil {
		return
	}
	job := d.current
	if ack.Seq != job.seq {
		return
	}
	d.awaitingAck = false
	d.cancelEvt(&d.ackTimer, &d.ackEvt)
	d.complete(job, true)
}

func (d *dcf) onData(f phy.Frame, df *dataFrame) {
	toMe := f.To == d.radio.ID()
	if toMe {
		// ACK after SIFS regardless of duplicate status (the retransmission
		// means our previous ACK was lost).
		d.respond(false, f.From, df.Seq, 0)
	}
	// Per-sender duplicate suppression. Frames from one sender arrive in
	// transmission order and a retransmission (lost ACK) repeats the same
	// sequence number back to back, so a duplicate is exactly a repeat of
	// the sender's most recent number. An ordering test (Seq <= last)
	// would be wrong: PSM's ATIM admission gate serves the transmit queue
	// out of order, so a frame heard later can legitimately carry a
	// smaller number — discarding it here would ACK the frame and then
	// silently drop the packet.
	if idx := int(f.From); idx < len(d.lastSeen) && d.lastSeen[idx] == df.Seq {
		return
	}
	for int(f.From) >= len(d.lastSeen) {
		d.lastSeen = append(d.lastSeen, 0)
	}
	d.lastSeen[f.From] = df.Seq
	if toMe || f.To == phy.Broadcast {
		d.stats.Delivered++
		d.deliver(f.From, df.Pkt, true)
		return
	}
	d.stats.Overheard++
	d.deliver(f.From, df.Pkt, false)
}

func (d *dcf) extendNAV(until sim.Time) {
	if until > d.navUntil {
		d.navUntil = until
	}
}
