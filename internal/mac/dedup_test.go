package mac

import (
	"testing"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// TestDedupAcceptsOutOfOrderSequence pins the receive-side duplicate filter
// to exact-repeat semantics. PSM's ATIM admission gate serves the transmit
// queue out of order, so a receiver can legitimately hear a smaller MAC
// sequence number after a larger one from the same sender; only a
// back-to-back repeat (a retransmission after a lost ACK) is a duplicate.
// The old ordering test (Seq <= last) ACKed such frames and then silently
// discarded them — the packet vanished between sender and routing layer.
func TestDedupAcceptsOutOfOrderSequence(t *testing.T) {
	r := newRig(t, 2, 100)
	b := r.alwaysOn(1)

	inject := func(seq uint64) {
		df := &dataFrame{Seq: seq, Pkt: Packet{Dst: 1, Class: core.ClassData, Bytes: 512}}
		b.dcf.OnFrame(phy.Frame{From: 0, To: 1, Bytes: 512, Payload: df})
		r.sched.RunUntil(r.sched.Now() + 10*sim.Millisecond)
	}

	inject(2) // delivered
	inject(1) // out-of-order service: a new frame, must be delivered
	inject(1) // retransmission: duplicate, suppressed
	inject(3) // delivered

	if got := len(r.recs[1].received); got != 3 {
		t.Fatalf("deliveries = %d, want 3 (out-of-order frame lost or dup passed)", got)
	}
	if b.dcf.stats.Delivered != 3 {
		t.Fatalf("stats.Delivered = %d, want 3", b.dcf.stats.Delivered)
	}
}
