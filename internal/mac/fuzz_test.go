package mac

import (
	"testing"

	"rcast/internal/core"
	"rcast/internal/energy"
	"rcast/internal/geom"
	"rcast/internal/mobility"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// TestBroadcastEnqueueDuringAirtimeCompletesOnce is the deterministic
// regression for a double-completion bug the fuzzer found: an enqueue
// while a broadcast frame was on the air re-served the in-flight job
// (kick saw no awaiting* flag and no attempt timer), so the frame went
// out twice and its OnResult fired twice. The completion timer now gates
// the pipeline like the unicast handshake timers do.
func TestBroadcastEnqueueDuringAirtimeCompletesOnce(t *testing.T) {
	r := newRig(t, 2, 100)
	a := r.alwaysOn(0)
	r.alwaysOn(1)
	first := 0
	a.Send(Packet{Dst: phy.Broadcast, Class: core.ClassRREQ, Bytes: 64,
		OnResult: func(bool) { first++ }})
	// Mid-airtime (64 B + header at 2 Mb/s is ~500 µs on the air), enqueue a
	// second broadcast; this kicks the pipeline while job 1 is in flight.
	second := 0
	r.sched.After(100*sim.Microsecond, func() {
		a.Send(Packet{Dst: phy.Broadcast, Class: core.ClassRREQ, Bytes: 64,
			OnResult: func(bool) { second++ }})
	})
	r.run(sim.Second)
	if first != 1 || second != 1 {
		t.Fatalf("OnResult counts = (%d, %d), want (1, 1)", first, second)
	}
	if got := a.Stats().BroadcastTx; got != 2 {
		t.Fatalf("BroadcastTx = %d, want 2 (no duplicate transmission)", got)
	}
}

// FuzzPSMOperations drives a three-station PSM/ATIM network through an
// arbitrary interleaving of sends, beacon-cycle progress, AM extensions,
// fault-injected power cycles and battery kills, decoded two bytes per
// operation from the fuzz input. The safety properties are the ones every
// higher layer leans on:
//
//   - OnResult fires at most once per packet, regardless of crashes
//     (PowerDown flushes without firing; Send while down fires false once).
//   - A down (crashed) station buffers nothing; only battery death (Kill)
//     may leave a buffer behind, for the audit to reconcile.
//   - Meters never run backwards: awake time is bounded by elapsed time
//     and accrued energy is non-negative.
//   - The state machine never panics, whatever the interleaving.
func FuzzPSMOperations(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x40, 0x13, 0x00, 0x02, 0x40}) // send, run, crash, run
	f.Add([]byte{0x00, 0x01, 0x10, 0x02, 0x02, 0xff, 0x14, 0x00}) // two senders, long run, recover
	f.Add([]byte{0x05, 0x20, 0x00, 0x01, 0x02, 0x30, 0x16, 0x00}) // extend AM, send, run, kill
	f.Add([]byte{0x07, 0x01, 0x01, 0x00, 0x02, 0x80, 0x03, 0x02,
		0x02, 0x40, 0x04, 0x00, 0x02, 0x40}) // RERR, broadcast, crash+recover cycle
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 3
		sched := sim.NewScheduler()
		ch := phy.NewChannel(sched, 250)
		coord := NewCoordinator(sched, ch, DefaultParams(), sim.Stream(1, "fuzz/atim"), 3600*sim.Second)
		var (
			stations []*PSM
			meters   []*energy.Meter
		)
		for i := 0; i < n; i++ {
			radio := ch.AddRadio(phy.NodeID(i), mobility.Static{P: geom.Point{X: float64(i) * 100}})
			meter := energy.NewMeter(1.15, 0.045, 0)
			m := NewPSM(sched, ch, radio, meter, core.Rcast{},
				sim.Stream(int64(i), "fuzz/mac"), DefaultParams(), &recorder{})
			coord.AddStation(m)
			stations = append(stations, m)
			meters = append(meters, meter)
		}
		coord.Start()

		// resultCounts[i] counts OnResult invocations of packet i.
		var resultCounts []int
		send := func(m *PSM, dst phy.NodeID, class core.Class) {
			i := len(resultCounts)
			resultCounts = append(resultCounts, 0)
			m.Send(Packet{Dst: dst, Class: class, Bytes: 128,
				OnResult: func(bool) { resultCounts[i]++ }})
		}

		for pc := 0; pc+1 < len(data); pc += 2 {
			op, arg := data[pc], data[pc+1]
			m := stations[int(op>>4)%n]
			switch op % 8 {
			case 0: // unicast data
				send(m, phy.NodeID(int(arg)%n), core.ClassData)
			case 1: // broadcast RREQ
				send(m, phy.Broadcast, core.ClassRREQ)
			case 2: // advance simulated time (1..256 ms)
				sched.RunUntil(sched.Now() + sim.Time(int(arg)+1)*sim.Millisecond)
			case 3: // crash
				m.PowerDown()
			case 4: // recover
				m.PowerUp()
			case 5: // extend the active-mode horizon
				m.ExtendAM(sched.Now() + sim.Time(int(arg)+1)*sim.Millisecond)
			case 6: // battery death (permanent)
				m.Kill()
			case 7: // unicast RERR (unconditional overhearing level)
				send(m, phy.NodeID(int(arg)%n), core.ClassRERR)
			}
			// A crashed station flushes on PowerDown and refuses enqueues
			// while down. (A battery-dead station is different: Kill keeps
			// the buffer, which the audit reconciles as its buffered class.)
			if m.Down() {
				if q := m.Queued(); len(q) != 0 {
					t.Fatalf("down station buffered %d packets", len(q))
				}
			}
		}

		// Drain: give retries and beacon cycles time to settle.
		end := sched.Now() + 2*sim.Second
		sched.RunUntil(end)

		for i, c := range resultCounts {
			if c > 1 {
				t.Fatalf("packet %d: OnResult fired %d times", i, c)
			}
		}
		for i, meter := range meters {
			if err := meter.ObserveAt(end); err != nil {
				t.Fatalf("node %d: meter observe: %v", i, err)
			}
			if meter.Joules() < 0 {
				t.Fatalf("node %d: negative energy %v", i, meter.Joules())
			}
			if meter.AwakeTime() > end {
				t.Fatalf("node %d: awake %v longer than the run %v", i, meter.AwakeTime(), end)
			}
		}
		for i, m := range stations {
			if m.Down() && len(m.Queued()) != 0 {
				t.Fatalf("down station %d still buffers packets", i)
			}
		}
	})
}
