// Package mac implements the IEEE 802.11 medium access control layer used
// by the simulator: the distributed coordination function (DCF — CSMA/CA
// with binary-exponential backoff, SIFS/DIFS spacing, ACKs and retries), the
// power saving mechanism (PSM — synchronized beacon intervals with an ATIM
// advertisement window), and the Rcast extension of the ATIM frame that
// advertises a per-packet overhearing level (paper §3).
//
// Three MAC flavours are provided:
//
//   - AlwaysOn: plain DCF, radio never sleeps (the paper's "802.11" scheme)
//   - PSM: beacon-synchronized PSM whose overhearing behaviour is a
//     pluggable core.Policy (Unconditional ⇒ the paper's "PSM",
//     None ⇒ naive integration, Rcast ⇒ the paper's contribution)
//   - PSM + power manager hooks (ExtendAM / fast path) ⇒ ODPM
package mac

import (
	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Params are the 802.11 DSSS MAC/PHY parameters (2 Mbps, long preamble).
type Params struct {
	SlotTime sim.Time
	SIFS     sim.Time
	DIFS     sim.Time
	CWMin    int // initial contention window (slots-1), e.g. 31
	CWMax    int
	// RetryLimit is the number of retransmissions after the first attempt
	// before the frame is dropped and the link declared broken.
	RetryLimit int

	DataRateMbps float64
	// DataHeaderBytes is the MAC overhead added to every data frame
	// (802.11 header + FCS).
	DataHeaderBytes int
	AckBytes        int
	RTSBytes        int
	CTSBytes        int
	// RTSThresholdBytes applies the RTS/CTS handshake to unicast data
	// frames at or above this on-air size. 0 (the ns-2 default) applies it
	// to all unicast data; set above any frame size to disable.
	RTSThresholdBytes int

	// BeaconInterval and ATIMWindow shape PSM; the paper uses 250 ms and
	// 50 ms (it reports an average per-hop delay of half a beacon interval,
	// 125 ms).
	BeaconInterval sim.Time
	ATIMWindow     sim.Time

	// MaxAnnouncements caps distinct (destination, level) ATIM exchanges a
	// node can fit in one ATIM window.
	MaxAnnouncements int

	// ATIMContention, when true, drops the paper's §4.1 reliability
	// assumption and models the ATIM window as a slotted contention
	// period: each announcement lands in a random slot, same-slot
	// announcements collide at receivers that can hear both senders, and
	// a unicast announcement is only admitted to the data phase if its
	// destination decoded it. ATIMSlots sets the window's slot count and
	// ATIMRetryLimit bounds consecutive failed advertisement attempts
	// before the packet is dropped (link failure).
	ATIMContention bool
	ATIMSlots      int
	ATIMRetryLimit int
}

// DefaultParams returns the parameters used throughout the paper's
// evaluation.
func DefaultParams() Params {
	return Params{
		SlotTime:         20 * sim.Microsecond,
		SIFS:             10 * sim.Microsecond,
		DIFS:             50 * sim.Microsecond,
		CWMin:            31,
		CWMax:            1023,
		RetryLimit:       7,
		DataRateMbps:     2,
		DataHeaderBytes:  34,
		AckBytes:         14,
		RTSBytes:         20,
		CTSBytes:         14,
		BeaconInterval:   250 * sim.Millisecond,
		ATIMWindow:       50 * sim.Millisecond,
		MaxAnnouncements: 64,
		ATIMSlots:        64,
		ATIMRetryLimit:   3,
	}
}

// Packet is the unit the routing layer hands to a MAC.
type Packet struct {
	// Dst is the link-layer next hop, or phy.Broadcast.
	Dst phy.NodeID
	// Class drives the advertised overhearing level (core.Policy).
	Class core.Class
	// Level is the advertised overhearing level; filled in by the MAC from
	// its policy when zero.
	Level core.Level
	// Bytes is the routing-layer packet size (MAC header excluded).
	Bytes int
	// Payload is the routing packet itself; opaque to the MAC.
	Payload any
	// OnResult, if non-nil, reports the link-layer outcome: true once a
	// unicast is acknowledged (or a broadcast transmitted), false when the
	// retry limit is exhausted.
	OnResult func(delivered bool)
}

// Upcalls is the interface the routing layer registers with a MAC.
type Upcalls interface {
	// OnReceive delivers a packet addressed to this node (or broadcast).
	OnReceive(from phy.NodeID, p Packet)
	// OnOverhear delivers a packet addressed to another node that this
	// node's radio decoded while awake (promiscuous tap).
	OnOverhear(from phy.NodeID, p Packet)
}

// Mac is the interface the node stack uses.
type Mac interface {
	// Send queues a packet for transmission to p.Dst.
	Send(p Packet)
	// NodeID returns the owning node's ID.
	NodeID() phy.NodeID
	// Stats returns a copy of the MAC counters.
	Stats() Stats
	// Queued returns the packets the MAC currently holds (transmit queue
	// and, for PSM, packets awaiting the next ATIM window). The audit
	// layer enumerates still-buffered traffic with it at teardown.
	Queued() []Packet
}

// Stats counts MAC-level events.
type Stats struct {
	DataTx       uint64 // data frame transmission attempts (incl. retries)
	RtsTx        uint64 // RTS frames sent
	CtsTx        uint64 // CTS frames sent
	AckTx        uint64 // acknowledgement frames sent
	LinkSuccess  uint64 // unicast packets acknowledged
	LinkFailures uint64 // unicast packets dropped after retry exhaustion
	BroadcastTx  uint64 // broadcast packets transmitted
	Delivered    uint64 // packets delivered up (addressed to us)
	Overheard    uint64 // packets delivered up promiscuously
	Announced    uint64 // ATIM announcements made (PSM only)
	AtimFailures uint64 // packets dropped after repeated failed ATIMs
	SleptPhases  uint64 // data phases slept through (PSM only)
	AwakePhases  uint64 // data phases stayed awake (PSM only)
}

// dataFrame and ackFrame are the on-air payloads.
type dataFrame struct {
	Seq uint64
	Pkt Packet
}

type ackFrame struct {
	Seq uint64
}
