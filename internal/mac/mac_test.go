package mac

import (
	"testing"

	"rcast/internal/core"
	"rcast/internal/energy"
	"rcast/internal/geom"
	"rcast/internal/mobility"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// recorder captures routing-layer upcalls.
type recorder struct {
	received  []phy.NodeID // senders of packets addressed to us
	overheard []phy.NodeID
	payloads  []any
}

func (r *recorder) OnReceive(from phy.NodeID, p Packet) {
	r.received = append(r.received, from)
	r.payloads = append(r.payloads, p.Payload)
}

func (r *recorder) OnOverhear(from phy.NodeID, p Packet) {
	r.overheard = append(r.overheard, from)
}

// rig is a small test network.
type rig struct {
	sched  *sim.Scheduler
	ch     *phy.Channel
	radios []*phy.Radio
	meters []*energy.Meter
	recs   []*recorder
	coord  *Coordinator
}

// newRig places n nodes on a line, gap metres apart, range 250 m.
func newRig(t *testing.T, n int, gap float64) *rig {
	t.Helper()
	r := &rig{sched: sim.NewScheduler()}
	r.ch = phy.NewChannel(r.sched, 250)
	for i := 0; i < n; i++ {
		r.radios = append(r.radios, r.ch.AddRadio(phy.NodeID(i), mobility.Static{P: geom.Point{X: float64(i) * gap}}))
		r.meters = append(r.meters, energy.NewMeter(0, 0, 0))
		r.recs = append(r.recs, &recorder{})
	}
	return r
}

func (r *rig) alwaysOn(i int) *AlwaysOn {
	return NewAlwaysOn(r.sched, r.ch, r.radios[i], sim.Stream(int64(i), "mac"), DefaultParams(), r.recs[i])
}

func (r *rig) psm(i int, pol core.Policy) *PSM {
	m := NewPSM(r.sched, r.ch, r.radios[i], r.meters[i], pol, sim.Stream(int64(i), "mac"), DefaultParams(), r.recs[i])
	if r.coord == nil {
		r.coord = NewCoordinator(r.sched, r.ch, DefaultParams(), sim.Stream(99, "atim"), 3600*sim.Second)
	}
	r.coord.AddStation(m)
	return m
}

func (r *rig) run(until sim.Time) {
	if r.coord != nil {
		r.coord.Start()
	}
	r.sched.RunUntil(until)
	for _, m := range r.meters {
		_ = m.ObserveAt(r.sched.Now())
	}
}

func TestAlwaysOnUnicastDeliveredAndAcked(t *testing.T) {
	r := newRig(t, 2, 100)
	a, b := r.alwaysOn(0), r.alwaysOn(1)
	delivered := false
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, Payload: "hello",
		OnResult: func(ok bool) { delivered = ok }})
	r.run(sim.Second)
	if !delivered {
		t.Fatal("OnResult(false) or never called")
	}
	if len(r.recs[1].received) != 1 || r.recs[1].received[0] != 0 {
		t.Fatalf("receiver upcalls = %v", r.recs[1].received)
	}
	if r.recs[1].payloads[0] != "hello" {
		t.Fatalf("payload = %v", r.recs[1].payloads[0])
	}
	if a.Stats().LinkSuccess != 1 || b.Stats().AckTx != 1 {
		t.Fatalf("stats a=%+v b=%+v", a.Stats(), b.Stats())
	}
	if a.NodeID() != 0 || b.NodeID() != 1 {
		t.Fatal("NodeID broken")
	}
}

func TestAlwaysOnNeighborsOverhear(t *testing.T) {
	r := newRig(t, 3, 100)
	a := r.alwaysOn(0)
	r.alwaysOn(1)
	r.alwaysOn(2)
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512})
	r.run(sim.Second)
	if len(r.recs[2].overheard) != 1 {
		t.Fatalf("n2 overheard %d frames, want 1", len(r.recs[2].overheard))
	}
	if len(r.recs[2].received) != 0 {
		t.Fatal("n2 wrongly received an addressed frame")
	}
}

func TestAlwaysOnRetriesExhaustWhenReceiverGone(t *testing.T) {
	r := newRig(t, 2, 400) // out of range
	a := r.alwaysOn(0)
	result := true
	gotResult := false
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512,
		OnResult: func(ok bool) { result, gotResult = ok, true }})
	r.run(5 * sim.Second)
	if !gotResult {
		t.Fatal("OnResult never called")
	}
	if result {
		t.Fatal("delivery to out-of-range node reported success")
	}
	st := a.Stats()
	if st.LinkFailures != 1 {
		t.Fatalf("LinkFailures = %d, want 1", st.LinkFailures)
	}
	// The handshake fails at the (cheap) RTS stage: no data frame is ever
	// put on the air for an unreachable receiver.
	if st.RtsTx != uint64(DefaultParams().RetryLimit)+1 {
		t.Fatalf("RtsTx = %d, want %d attempts", st.RtsTx, DefaultParams().RetryLimit+1)
	}
	if st.DataTx != 0 {
		t.Fatalf("DataTx = %d, want 0 (RTS never answered)", st.DataTx)
	}
}

func TestAlwaysOnBroadcastReachesAllInRange(t *testing.T) {
	r := newRig(t, 4, 200)
	a := r.alwaysOn(0)
	for i := 1; i < 4; i++ {
		r.alwaysOn(i)
	}
	done := false
	a.Send(Packet{Dst: phy.Broadcast, Class: core.ClassRREQ, Bytes: 64,
		OnResult: func(ok bool) { done = ok }})
	r.run(sim.Second)
	if !done {
		t.Fatal("broadcast OnResult not true")
	}
	if len(r.recs[1].received) != 1 {
		t.Fatal("n1 missed broadcast")
	}
	if len(r.recs[2].received) != 0 || len(r.recs[3].received) != 0 {
		t.Fatal("out-of-range nodes received broadcast")
	}
	if a.Stats().BroadcastTx != 1 {
		t.Fatalf("BroadcastTx = %d", a.Stats().BroadcastTx)
	}
}

func TestAlwaysOnQueueDrainsInOrder(t *testing.T) {
	r := newRig(t, 2, 100)
	a := r.alwaysOn(0)
	r.alwaysOn(1)
	for i := 0; i < 5; i++ {
		a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, Payload: i})
	}
	r.run(sim.Second)
	if len(r.recs[1].payloads) != 5 {
		t.Fatalf("delivered %d, want 5", len(r.recs[1].payloads))
	}
	for i, p := range r.recs[1].payloads {
		if p != i {
			t.Fatalf("out of order delivery: %v", r.recs[1].payloads)
		}
	}
}

func TestTwoContendingSendersBothSucceed(t *testing.T) {
	// Both senders are in range of each other: carrier sense + backoff must
	// serialize them.
	r := newRig(t, 3, 100) // n0, n1, n2; n1 in middle is receiver
	a := r.alwaysOn(0)
	r.alwaysOn(1)
	c := r.alwaysOn(2)
	okA, okC := false, false
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, OnResult: func(ok bool) { okA = ok }})
	c.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, OnResult: func(ok bool) { okC = ok }})
	r.run(sim.Second)
	if !okA || !okC {
		t.Fatalf("contending senders: okA=%v okC=%v", okA, okC)
	}
	if len(r.recs[1].received) != 2 {
		t.Fatalf("receiver got %d packets, want 2", len(r.recs[1].received))
	}
}

func TestHiddenTerminalsEventuallyDeliver(t *testing.T) {
	// n0 and n2 cannot hear each other (500 m) but share receiver n1.
	// Initial transmissions may collide; retries with growing backoff must
	// eventually separate them.
	r := newRig(t, 3, 250)
	a := r.alwaysOn(0)
	r.alwaysOn(1)
	c := r.alwaysOn(2)
	okA, okC := false, false
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, OnResult: func(ok bool) { okA = ok }})
	c.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, OnResult: func(ok bool) { okC = ok }})
	r.run(5 * sim.Second)
	if !okA || !okC {
		t.Fatalf("hidden terminals: okA=%v okC=%v stats=%+v", okA, okC, r.ch.Stats())
	}
}

func TestPSMPacketWaitsForBeacon(t *testing.T) {
	r := newRig(t, 2, 100)
	a := r.psm(0, core.Rcast{})
	r.psm(1, core.Rcast{})
	_ = a
	var deliveredAt sim.Time
	// Inject mid-interval: must not be delivered until after the *next*
	// beacon's ATIM window.
	r.coord.Start()
	r.sched.RunUntil(100 * sim.Millisecond)
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512,
		OnResult: func(ok bool) { deliveredAt = r.sched.Now() }})
	r.sched.RunUntil(2 * sim.Second)
	p := DefaultParams()
	if deliveredAt == 0 {
		t.Fatal("packet never delivered")
	}
	if deliveredAt < p.BeaconInterval+p.ATIMWindow {
		t.Fatalf("delivered at %v, before the next data phase (%v)",
			deliveredAt, p.BeaconInterval+p.ATIMWindow)
	}
	if len(r.recs[1].received) != 1 {
		t.Fatalf("receiver got %d", len(r.recs[1].received))
	}
}

func TestPSMIdleNodeSleepsMostOfTheTime(t *testing.T) {
	r := newRig(t, 2, 100)
	r.psm(0, core.Rcast{})
	r.psm(1, core.Rcast{})
	r.run(10 * sim.Second)
	p := DefaultParams()
	duty := float64(p.ATIMWindow) / float64(p.BeaconInterval)
	for i, m := range r.meters {
		awakeFrac := m.AwakeTime().Seconds() / r.sched.Now().Seconds()
		if awakeFrac > duty+0.05 {
			t.Fatalf("idle node %d awake %.0f%% of the time, want ~%.0f%%",
				i, awakeFrac*100, duty*100)
		}
	}
}

func TestPSMUnconditionalKeepsNeighborsAwake(t *testing.T) {
	r := newRig(t, 3, 100)
	a := r.psm(0, core.Unconditional{})
	r.psm(1, core.Unconditional{})
	r.psm(2, core.Unconditional{})
	r.coord.Start()
	for i := 0; i < 20; i++ {
		a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512})
	}
	r.sched.RunUntil(10 * sim.Second)
	for i := range r.meters {
		_ = r.meters[i].ObserveAt(r.sched.Now())
	}
	// n2 is not addressed but must overhear under unconditional policy.
	if len(r.recs[2].overheard) == 0 {
		t.Fatal("n2 never overheard under unconditional overhearing")
	}
}

func TestPSMNonePolicyLetsThirdNodeSleep(t *testing.T) {
	r := newRig(t, 3, 100)
	a := r.psm(0, core.None{})
	r.psm(1, core.None{})
	r.psm(2, core.None{})
	r.coord.Start()
	for i := 0; i < 20; i++ {
		a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512})
	}
	r.sched.RunUntil(10 * sim.Second)
	for i := range r.meters {
		_ = r.meters[i].ObserveAt(r.sched.Now())
	}
	if len(r.recs[2].overheard) != 0 {
		t.Fatalf("n2 overheard %d frames under no-overhearing", len(r.recs[2].overheard))
	}
	if len(r.recs[1].received) != 20 {
		t.Fatalf("receiver got %d/20", len(r.recs[1].received))
	}
	// n2 must consume less energy than the participants.
	if r.meters[2].Joules() >= r.meters[1].Joules() {
		t.Fatalf("bystander energy %.2f J >= receiver %.2f J",
			r.meters[2].Joules(), r.meters[1].Joules())
	}
}

func TestPSMRcastRERRForcesOverhearing(t *testing.T) {
	r := newRig(t, 3, 100)
	a := r.psm(0, core.Rcast{})
	r.psm(1, core.Rcast{})
	r.psm(2, core.Rcast{})
	r.coord.Start()
	a.Send(Packet{Dst: 1, Class: core.ClassRERR, Bytes: 32})
	r.sched.RunUntil(2 * sim.Second)
	if len(r.recs[2].overheard) != 1 {
		t.Fatalf("RERR must be unconditionally overheard, got %d", len(r.recs[2].overheard))
	}
}

func TestPSMRcastSingleNeighborAlwaysOverhears(t *testing.T) {
	// n2's only neighbor is n1 (the data receiver): P_R = 1/1 relative to
	// its neighborhood... n2 at 200m from n1, 400m from n0: neighbors(n2)
	// = {n1} → P_R = 1 → always overhear n1's transmissions. But n0's data
	// is out of n2's range. Instead test: chain where forwarder n1 sends to
	// n0 and bystander n2 hears n1.
	r := newRig(t, 3, 200)
	r.psm(0, core.Rcast{})
	b := r.psm(1, core.Rcast{})
	r.psm(2, core.Rcast{})
	r.coord.Start()
	b.Send(Packet{Dst: 0, Class: core.ClassData, Bytes: 512})
	r.sched.RunUntil(2 * sim.Second)
	if len(r.recs[2].overheard) != 1 {
		t.Fatalf("single-neighbor bystander should always overhear, got %d",
			len(r.recs[2].overheard))
	}
}

func TestPSMBroadcastWakesAllNeighbors(t *testing.T) {
	r := newRig(t, 3, 100)
	a := r.psm(0, core.Rcast{})
	r.psm(1, core.Rcast{})
	r.psm(2, core.Rcast{})
	r.coord.Start()
	a.Send(Packet{Dst: phy.Broadcast, Class: core.ClassRREQ, Bytes: 64})
	r.sched.RunUntil(2 * sim.Second)
	if len(r.recs[1].received) != 1 || len(r.recs[2].received) != 1 {
		t.Fatalf("broadcast under PSM: n1=%d n2=%d, want 1/1",
			len(r.recs[1].received), len(r.recs[2].received))
	}
}

func TestPSMExtendAMKeepsNodeAwake(t *testing.T) {
	r := newRig(t, 2, 100)
	a := r.psm(0, core.None{})
	r.psm(1, core.None{})
	r.coord.Start()
	a.ExtendAM(5 * sim.Second)
	r.sched.RunUntil(5 * sim.Second)
	_ = r.meters[0].ObserveAt(r.sched.Now())
	_ = r.meters[1].ObserveAt(r.sched.Now())
	// Node 0 in AM the whole time: awake fraction ~1. Node 1: ~ATIM duty.
	if frac := r.meters[0].AwakeTime().Seconds() / 5; frac < 0.99 {
		t.Fatalf("AM node awake fraction = %v, want ~1", frac)
	}
	if frac := r.meters[1].AwakeTime().Seconds() / 5; frac > 0.3 {
		t.Fatalf("PS node awake fraction = %v, want ~0.2", frac)
	}
	if !a.InAM(4*sim.Second) || a.InAM(6*sim.Second) {
		t.Fatal("InAM window wrong")
	}
}

func TestPSMFastPathSendsImmediately(t *testing.T) {
	r := newRig(t, 2, 100)
	a := r.psm(0, core.None{})
	b := r.psm(1, core.None{})
	a.SetFastPath(func(dst phy.NodeID) bool { return dst == 1 && b.InAM(r.sched.Now()) })
	r.coord.Start()
	// Both in AM: a packet injected mid-interval is delivered without
	// waiting for the next beacon.
	r.sched.RunUntil(60 * sim.Millisecond)
	a.ExtendAM(5 * sim.Second)
	b.ExtendAM(5 * sim.Second)
	var deliveredAt sim.Time
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512,
		OnResult: func(ok bool) {
			if ok {
				deliveredAt = r.sched.Now()
			}
		}})
	r.sched.RunUntil(sim.Second)
	if deliveredAt == 0 {
		t.Fatal("fast-path packet not delivered")
	}
	if deliveredAt > 100*sim.Millisecond {
		t.Fatalf("fast-path delivery at %v, want well before next beacon (250ms)", deliveredAt)
	}
}

func TestPSMDuplicateSuppression(t *testing.T) {
	// Drive the dcf deduplication directly: the same sequence number from
	// the same sender must be delivered up only once.
	r := newRig(t, 2, 100)
	a := r.alwaysOn(0)
	_ = a
	b := r.alwaysOn(1)
	pkt := Packet{Dst: 1, Class: core.ClassData, Bytes: 512, Payload: "x"}
	b.dcf.onData(phy.Frame{From: 0, To: 1}, &dataFrame{Seq: 5, Pkt: pkt})
	b.dcf.onData(phy.Frame{From: 0, To: 1}, &dataFrame{Seq: 5, Pkt: pkt}) // retransmission
	b.dcf.onData(phy.Frame{From: 0, To: 1}, &dataFrame{Seq: 6, Pkt: pkt})
	if len(r.recs[1].received) != 2 {
		t.Fatalf("delivered %d, want 2 (dup suppressed)", len(r.recs[1].received))
	}
}

func TestPSMAnnouncementDeduplicationAndCap(t *testing.T) {
	r := newRig(t, 4, 100)
	p := DefaultParams()
	p.MaxAnnouncements = 2
	m := NewPSM(r.sched, r.ch, r.radios[0], r.meters[0], core.Rcast{}, sim.Stream(0, "m"), p, r.recs[0])
	// Five packets to node 1 and one each to 2 and 3: announcements are
	// per (destination, level), so 1 gets a single ATIM; the cap of 2
	// truncates the third destination.
	for i := 0; i < 5; i++ {
		m.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 64})
	}
	m.Send(Packet{Dst: 2, Class: core.ClassData, Bytes: 64})
	m.Send(Packet{Dst: 3, Class: core.ClassData, Bytes: 64})
	anns := m.BeaconStart(0)
	if len(anns) != 2 {
		t.Fatalf("announced %d, want 2 (dedup + cap)", len(anns))
	}
	if anns[0].To != 1 || anns[1].To != 2 {
		t.Fatalf("announcements = %+v", anns)
	}
	if m.Stats().Announced != 2 {
		t.Fatalf("Announced = %d", m.Stats().Announced)
	}
}

func TestPSMDifferentLevelsAnnouncedSeparately(t *testing.T) {
	r := newRig(t, 3, 100)
	m := NewPSM(r.sched, r.ch, r.radios[0], r.meters[0], core.Rcast{}, sim.Stream(0, "m"), DefaultParams(), r.recs[0])
	m.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 64}) // randomized
	m.Send(Packet{Dst: 1, Class: core.ClassRERR, Bytes: 64}) // unconditional
	anns := m.BeaconStart(0)
	if len(anns) != 2 {
		t.Fatalf("announced %d, want 2 distinct (dst, level) pairs", len(anns))
	}
	if anns[0].Level == anns[1].Level {
		t.Fatal("levels collapsed")
	}
}

func TestCoordinatorStopsAtDeadline(t *testing.T) {
	r := newRig(t, 1, 100)
	r.psm(0, core.Rcast{})
	r.coord = NewCoordinator(r.sched, r.ch, DefaultParams(), nil, sim.Second)
	m := NewPSM(r.sched, r.ch, r.radios[0], r.meters[0], core.Rcast{}, sim.Stream(0, "m"), DefaultParams(), r.recs[0])
	r.coord.AddStation(m)
	r.coord.Start()
	r.sched.RunUntil(10 * sim.Second)
	if got := r.coord.Beacons(); got != 4 {
		t.Fatalf("Beacons = %d, want 4 (0, 250, 500, 750 ms)", got)
	}
}

func TestCoordinatorClampsOversizedATIM(t *testing.T) {
	p := DefaultParams()
	p.BeaconInterval = 100 * sim.Millisecond
	p.ATIMWindow = 200 * sim.Millisecond
	c := NewCoordinator(sim.NewScheduler(), nil, p, nil, sim.Second)
	if c.atim >= c.interval {
		t.Fatalf("ATIM window %v not clamped below interval %v", c.atim, c.interval)
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.BeaconInterval != 250*sim.Millisecond {
		t.Errorf("BeaconInterval = %v, want 250ms", p.BeaconInterval)
	}
	if p.ATIMWindow != 50*sim.Millisecond {
		t.Errorf("ATIMWindow = %v, want 50ms", p.ATIMWindow)
	}
	if p.DataRateMbps != 2 {
		t.Errorf("DataRateMbps = %v, want 2", p.DataRateMbps)
	}
}
