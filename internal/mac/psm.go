package mac

import (
	"math/rand"

	"rcast/internal/core"
	"rcast/internal/energy"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// senderRecencyWindow is how long a sender counts as "recently heard" for
// the sender-ID overhearing factor.
const senderRecencyWindow = 2 * sim.Second

// PSM is a beacon-synchronized 802.11 power-save MAC with Rcast ATIM
// subtypes. All stations wake for every ATIM window; packets queued before
// the window are advertised; the configured core.Policy decides which
// non-addressed neighbors stay awake through the data phase.
//
// Following the paper's own modelling assumption (§4.1), the ATIM
// advertisement exchange is treated as reliable: an announcement reaches
// exactly the neighbors in radio range at the beacon instant. The energy
// cost of the ATIM window (every station awake) is fully charged.
//
// A PSM node can also be driven by an ODPM-style power manager through
// ExtendAM and the fast-path callback; see package odpm.
type PSM struct {
	sched  *sim.Scheduler
	ch     *phy.Channel
	radio  *phy.Radio
	meter  *energy.Meter
	policy core.Policy
	rng    *rand.Rand
	p      Params
	up     Upcalls

	dcf     *dcf
	pending []Packet // packets not yet advertised

	amUntil sim.Time // ODPM: node stays in active mode until this instant
	// fastPath, when set (ODPM), reports whether dst is currently in AM so
	// the packet can bypass the beacon cycle.
	fastPath func(dst phy.NodeID) bool

	// lastHeard records, per sender NodeID, when a data frame from that
	// sender was last decoded (-1 = never): the sender-recency overhearing
	// factor. A slice indexed by NodeID replaces the former map: IDs are
	// small and dense, and this lookup sits on the per-beacon hot path.
	lastHeard []sim.Time

	// Neighbor-churn tracking. Instead of materializing the neighbor set as
	// a map each beacon, every visited neighbor is stamped with the current
	// sample epoch; the symmetric difference against the previous sample is
	// then (curCount-common) + (prevCount-common), where common counts
	// neighbors still stamped with the previous epoch.
	nbrEpoch     []uint64
	nbrEpochCur  uint64
	prevNbrCount int
	churnVisit   func(phy.NodeID) // prebound VisitNeighbors callback
	churnCount   int              // neighbors seen this sample
	churnCommon  int              // ... of which were present last sample

	linkChurn float64  // EWMA link changes per second
	churnAt   sim.Time // instant of the previous churn sample
	churnInit bool     // a baseline neighbor set has been recorded

	audit Audit // nil = no invariant instrumentation
	trc   Trace // nil = no lifecycle tracing

	// lottery, when set (trace replay), overrides the outcome of each
	// overhearing lottery. The configured policy still runs first and
	// burns exactly its own draws from the shared MAC RNG stream — that
	// keeps the DCF backoff sequence aligned with the recorded run — and
	// the override then substitutes the recorded verdict.
	lottery func(now sim.Time, me phy.NodeID, a Announcement, policySays bool) bool

	// ATIM-contention admission state (Params.ATIMContention).
	lastAnnounced []annKey
	admitted      map[annKey]struct{}
	atimMisses    map[annKey]int

	// annScratch backs the slice BeaconStart returns. The coordinator copies
	// the announcements out before the next scheduler event, so the buffer
	// is free for reuse at the following beacon.
	annScratch []Announcement

	dead bool // battery depletion: permanent
	down bool // fault-injected crash: reversible via PowerUp

	stats Stats
}

// annKey identifies one distinct advertisement.
type annKey struct {
	dst phy.NodeID
	lvl core.Level
}

var _ Mac = (*PSM)(nil)
var _ Station = (*PSM)(nil)

// NewPSM builds a PSM MAC. The meter must be the node's energy meter; the
// policy decides advertised levels and overhearing.
func NewPSM(
	sched *sim.Scheduler,
	ch *phy.Channel,
	radio *phy.Radio,
	meter *energy.Meter,
	policy core.Policy,
	rng *rand.Rand,
	p Params,
	up Upcalls,
) *PSM {
	m := &PSM{
		sched:  sched,
		ch:     ch,
		radio:  radio,
		meter:  meter,
		policy: policy,
		rng:    rng,
		p:      p,
		up:     up,
	}
	m.churnVisit = func(id phy.NodeID) {
		idx := int(id)
		for idx >= len(m.nbrEpoch) {
			m.nbrEpoch = append(m.nbrEpoch, 0)
		}
		if m.nbrEpoch[idx] == m.nbrEpochCur-1 {
			m.churnCommon++
		}
		m.nbrEpoch[idx] = m.nbrEpochCur
		m.churnCount++
	}
	m.dcf = newDCF(sched, ch, radio, rng, p, &m.stats, m.deliver)
	if p.ATIMContention {
		m.admitted = make(map[annKey]struct{})
		m.atimMisses = make(map[annKey]int)
	}
	return m
}

// Radio implements Station.
func (m *PSM) Radio() *phy.Radio { return m.radio }

// SetFastPath installs the ODPM fast-path query (may be nil).
func (m *PSM) SetFastPath(f func(dst phy.NodeID) bool) { m.fastPath = f }

// SetAudit installs the invariant observer (nil disables instrumentation).
func (m *PSM) SetAudit(a Audit) { m.audit = a }

// SetTrace installs the lifecycle trace observer (nil disables tracing).
func (m *PSM) SetTrace(t Trace) { m.trc = t }

// SetLotteryOverride installs a replay hook that substitutes each
// overhearing-lottery verdict (nil restores the policy's own decisions).
// The policy still runs — and draws — before the override is consulted;
// see the field comment for why that RNG alignment matters.
func (m *PSM) SetLotteryOverride(f func(now sim.Time, me phy.NodeID, a Announcement, policySays bool) bool) {
	m.lottery = f
}

// setWindow forwards to the DCF and reports the change to the auditor.
func (m *PSM) setWindow(enabled bool, end sim.Time) {
	m.dcf.setWindow(enabled, end)
	if m.audit != nil {
		m.audit.TxWindowSet(m.sched.Now(), m.radio.ID(), enabled, end)
	}
}

// ExtendAM keeps the node in active mode until at least `until`. While in
// AM the node never sleeps and may transmit outside the beacon data phase.
func (m *PSM) ExtendAM(until sim.Time) {
	if m.dead || m.down || until <= m.amUntil {
		return
	}
	m.amUntil = until
	now := m.sched.Now()
	if m.audit != nil {
		m.audit.AMExtended(now, m.radio.ID(), until)
	}
	if !m.radio.Awake() {
		m.radio.SetAwake(true)
		_ = m.meter.SetState(now, energy.Awake)
	}
	// Open the transmit window immediately: AM nodes behave like 802.11.
	if !m.dcf.enabled {
		m.setWindow(true, m.nextBoundary(now))
	}
}

// InAM reports whether the node is in active mode at now.
func (m *PSM) InAM(now sim.Time) bool { return now < m.amUntil }

// nextBoundary returns the next beacon boundary strictly after now.
func (m *PSM) nextBoundary(now sim.Time) sim.Time {
	bi := m.p.BeaconInterval
	return (now/bi + 1) * bi
}

// Send implements Mac. Packets normally wait for the next ATIM window; an
// AM node with an AM next hop (ODPM fast path) transmits immediately.
func (m *PSM) Send(p Packet) {
	if m.dead || m.down {
		if p.OnResult != nil {
			p.OnResult(false)
		}
		return
	}
	if p.Level == 0 {
		p.Level = m.policy.AdvertiseLevel(p.Class)
	}
	now := m.sched.Now()
	if m.trc != nil {
		m.trc.PacketEnqueued(now, m.radio.ID(), p)
	}
	if m.fastPath != nil && p.Dst != phy.Broadcast && m.InAM(now) && m.fastPath(p.Dst) {
		m.dcf.enqueue(p)
		return
	}
	m.pending = append(m.pending, p)
}

// NodeID implements Mac.
func (m *PSM) NodeID() phy.NodeID { return m.radio.ID() }

// Stats implements Mac.
func (m *PSM) Stats() Stats { return m.stats }

// Queued implements Mac: packets in the DCF queue plus packets waiting for
// the next ATIM window.
func (m *PSM) Queued() []Packet {
	out := m.dcf.queuedPackets()
	return append(out, m.pending...)
}

// LinkChangesPerSec returns the node's mobility estimate.
func (m *PSM) LinkChangesPerSec() float64 { return m.linkChurn }

// Kill permanently silences the node (battery depletion): the radio goes
// down, the transmit window closes, and beacon callbacks become no-ops.
func (m *PSM) Kill() {
	m.dead = true
	m.amUntil = 0
	m.setWindow(false, 0)
	m.radio.SetAwake(false)
	_ = m.meter.SetState(m.sched.Now(), energy.Asleep)
}

// Dead reports whether Kill was called.
func (m *PSM) Dead() bool { return m.dead }

// PowerDown crashes the node: the radio goes dark, the transmit window
// closes, and all buffered packets — DCF queue plus packets awaiting the
// next ATIM window — are flushed and returned in deterministic order
// WITHOUT firing OnResult (the fault layer reconciles them; a crash is not
// a per-packet link failure). Soft protocol state (announcements,
// admission, neighbor history, churn estimate) is reset: a recovered node
// restarts with amnesia. No-op returning nil if already dead or down.
func (m *PSM) PowerDown() []Packet {
	if m.dead || m.down {
		return nil
	}
	m.down = true
	m.amUntil = 0
	m.setWindow(false, 0)
	flushed := m.dcf.flush()
	flushed = append(flushed, m.pending...)
	m.pending = nil
	m.lastAnnounced = m.lastAnnounced[:0]
	if m.admitted != nil {
		clear(m.admitted)
		clear(m.atimMisses)
	}
	for i := range m.lastHeard {
		m.lastHeard[i] = -1
	}
	// Skip an epoch so no stale neighbor stamp can match the next sample's
	// "previous epoch" check: the recovered node restarts with amnesia.
	m.nbrEpochCur++
	m.prevNbrCount = 0
	m.churnInit = false
	m.linkChurn = 0
	now := m.sched.Now()
	m.radio.SetAwake(false)
	_ = m.meter.SetState(now, energy.Asleep)
	if m.audit != nil {
		m.audit.NodeDown(now, m.radio.ID())
	}
	return flushed
}

// PowerUp recovers a crashed node. The radio and meter stay asleep: the
// node rejoins the beacon cycle at its next BeaconStart, exactly like a
// station that slept through the data phase. No-op unless PowerDown is in
// effect (battery death is permanent).
func (m *PSM) PowerUp() {
	if m.dead || !m.down {
		return
	}
	m.down = false
}

// Down reports whether a fault-injected PowerDown is in effect.
func (m *PSM) Down() bool { return m.down }

// BeaconStart implements Station: wake up, quiesce data transmission for
// the ATIM window, fold pending packets into the transmit queue, and return
// this interval's advertisements.
func (m *PSM) BeaconStart(now sim.Time) []Announcement {
	if m.dead || m.down {
		return nil
	}
	m.radio.SetAwake(true)
	_ = m.meter.SetState(now, energy.Awake)
	if m.audit != nil {
		m.audit.BeaconStarted(now, m.radio.ID())
	}
	if m.trc != nil {
		m.trc.StationWoke(now, m.radio.ID())
	}
	m.setWindow(false, 0)
	m.updateChurn(now)

	for _, p := range m.pending {
		m.dcf.enqueue(p)
	}
	m.pending = nil

	// One ATIM per distinct (destination, level); covers all buffered
	// frames to that destination, as in 802.11 PSM. The DCF queue is walked
	// directly and duplicates are detected by scanning the keys announced so
	// far (bounded by MaxAnnouncements, so the scan beats a throwaway map).
	anns := m.annScratch[:0]
	m.lastAnnounced = m.lastAnnounced[:0]
	for _, job := range m.dcf.queue {
		k := annKey{dst: job.pkt.Dst, lvl: job.pkt.Level}
		dup := false
		for _, prev := range m.lastAnnounced {
			if prev == k {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		anns = append(anns, Announcement{From: m.radio.ID(), To: k.dst, Level: k.lvl})
		if m.trc != nil {
			m.trc.ATIMAdvertised(now, m.radio.ID(), anns[len(anns)-1])
		}
		m.lastAnnounced = append(m.lastAnnounced, k)
		if len(anns) >= m.p.MaxAnnouncements {
			break
		}
	}
	m.annScratch = anns
	m.stats.Announced += uint64(len(anns))
	return anns
}

// ATIMOutcome implements Station: under ATIM contention, record which of
// this interval's advertisements reached their destinations. Unadmitted
// packets wait for the next beacon; after ATIMRetryLimit consecutive
// failed advertisements they are dropped as link failures (the sender's
// MAC gives up on the destination).
func (m *PSM) ATIMOutcome(_ sim.Time, admitted []Announcement) {
	if m.admitted == nil || m.dead || m.down {
		return
	}
	clear(m.admitted)
	for _, a := range admitted {
		m.admitted[annKey{dst: a.To, lvl: a.Level}] = struct{}{}
	}
	limit := m.p.ATIMRetryLimit
	if limit < 1 {
		limit = 3
	}
	for _, k := range m.lastAnnounced {
		if _, ok := m.admitted[k]; ok {
			delete(m.atimMisses, k)
			continue
		}
		if k.dst == phy.Broadcast {
			continue
		}
		m.atimMisses[k]++
		if m.atimMisses[k] >= limit {
			delete(m.atimMisses, k)
			key := k
			m.dcf.failJobs(func(p Packet) bool {
				return p.Dst == key.dst && p.Level == key.lvl
			})
		}
	}
	m.dcf.setEligible(func(p Packet) bool {
		if p.Dst == phy.Broadcast {
			return true
		}
		_, ok := m.admitted[annKey{dst: p.Dst, lvl: p.Level}]
		return ok
	})
}

// ATIMEnd implements Station: decide whether to stay awake for the data
// phase based on this interval's advertisements, then either open the
// transmit window or sleep until the next beacon.
func (m *PSM) ATIMEnd(now sim.Time, heard []Announcement, nextBeacon sim.Time) {
	if m.dead || m.down {
		return
	}
	awake := m.InAM(now) || m.dcf.queueLen() > 0
	if !awake {
		awake = m.shouldStayAwake(now, heard)
	}
	if awake {
		m.stats.AwakePhases++
		m.setWindow(true, nextBeacon)
		return
	}
	m.stats.SleptPhases++
	m.setWindow(false, 0)
	if m.audit != nil {
		m.audit.NodeSlept(now, m.radio.ID())
	}
	if m.trc != nil {
		m.trc.StationSlept(now, m.radio.ID())
	}
	m.radio.SetAwake(false)
	_ = m.meter.SetState(now, energy.Asleep)
}

// shouldStayAwake scans the advertisements this station decoded (the
// coordinator already filtered for range and contention) and applies the
// paper's three-step rule (§3.2): stay awake if addressed, if
// unconditional overhearing is requested, or if randomized overhearing is
// requested and the policy's coin says yes.
func (m *PSM) shouldStayAwake(now sim.Time, heard []Announcement) bool {
	me := m.radio.ID()
	var (
		ctx     core.ListenContext
		haveCtx bool
	)
	for _, a := range heard {
		if a.From == me {
			continue
		}
		if a.To == me || a.To == phy.Broadcast {
			return true
		}
		if a.Level == core.LevelNone {
			continue
		}
		if !haveCtx {
			ctx = m.listenContext(now)
			haveCtx = true
		}
		var last sim.Time = -1
		if idx := int(a.From); idx >= 0 && idx < len(m.lastHeard) {
			last = m.lastHeard[idx]
		}
		ctx.SenderRecentlyHeard = last >= 0 && now-last <= senderRecencyWindow
		stay := m.policy.ShouldOverhear(m.rng, a.Level, ctx)
		if m.lottery != nil {
			stay = m.lottery(now, me, a, stay)
		}
		if m.trc != nil {
			m.trc.OverhearingDecision(now, me, a, stay)
		}
		if stay {
			return true
		}
	}
	return false
}

func (m *PSM) listenContext(now sim.Time) core.ListenContext {
	return core.ListenContext{
		Neighbors:         m.ch.CountNeighbors(m.radio, now),
		RemainingEnergy:   m.meter.RemainingFraction(),
		LinkChangesPerSec: m.linkChurn,
	}
}

// updateChurn refreshes the EWMA of neighbor-set changes per second. Samples
// are not necessarily one beacon interval apart (a node can miss beacons
// around death, and the very first sample has no predecessor at all), so the
// rate normalizes by the real time since the previous sample; the first
// sample only records the baseline neighbor set.
func (m *PSM) updateChurn(now sim.Time) {
	m.churnCount, m.churnCommon = 0, 0
	m.nbrEpochCur++
	m.ch.VisitNeighbors(m.radio, now, m.churnVisit)
	changes := (m.churnCount - m.churnCommon) + (m.prevNbrCount - m.churnCommon)
	m.prevNbrCount = m.churnCount
	if !m.churnInit {
		m.churnInit = true
		m.churnAt = now
		return
	}
	dt := now - m.churnAt
	m.churnAt = now
	if dt <= 0 {
		return
	}
	rate := float64(changes) / dt.Seconds()
	const alpha = 0.2
	m.linkChurn = (1-alpha)*m.linkChurn + alpha*rate
}

func (m *PSM) deliver(from phy.NodeID, pkt Packet, toMe bool) {
	for int(from) >= len(m.lastHeard) {
		m.lastHeard = append(m.lastHeard, -1)
	}
	m.lastHeard[from] = m.sched.Now()
	if m.up == nil {
		return
	}
	if toMe {
		m.up.OnReceive(from, pkt)
		return
	}
	m.up.OnOverhear(from, pkt)
}
