package mac

import (
	"testing"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

func TestRTSCTSExchangePrecedesData(t *testing.T) {
	r := newRig(t, 2, 100)
	a, b := r.alwaysOn(0), r.alwaysOn(1)
	ok := false
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, OnResult: func(d bool) { ok = d }})
	r.run(sim.Second)
	if !ok {
		t.Fatal("exchange failed")
	}
	if a.Stats().RtsTx != 1 {
		t.Fatalf("RtsTx = %d, want 1", a.Stats().RtsTx)
	}
	if b.Stats().CtsTx != 1 {
		t.Fatalf("CtsTx = %d, want 1", b.Stats().CtsTx)
	}
	if a.Stats().DataTx != 1 || b.Stats().AckTx != 1 {
		t.Fatalf("data/ack = %d/%d", a.Stats().DataTx, b.Stats().AckTx)
	}
}

func TestBroadcastSkipsRTS(t *testing.T) {
	r := newRig(t, 2, 100)
	a := r.alwaysOn(0)
	r.alwaysOn(1)
	a.Send(Packet{Dst: phy.Broadcast, Class: core.ClassRREQ, Bytes: 64})
	r.run(sim.Second)
	if a.Stats().RtsTx != 0 {
		t.Fatal("broadcast used RTS")
	}
	if a.Stats().BroadcastTx != 1 {
		t.Fatal("broadcast not transmitted")
	}
}

func TestRTSThresholdDisablesHandshake(t *testing.T) {
	r := newRig(t, 2, 100)
	p := DefaultParams()
	p.RTSThresholdBytes = 1 << 20 // effectively never
	a := NewAlwaysOn(r.sched, r.ch, r.radios[0], sim.Stream(0, "mac"), p, r.recs[0])
	NewAlwaysOn(r.sched, r.ch, r.radios[1], sim.Stream(1, "mac"), p, r.recs[1])
	ok := false
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, OnResult: func(d bool) { ok = d }})
	r.run(sim.Second)
	if !ok {
		t.Fatal("exchange failed")
	}
	if a.Stats().RtsTx != 0 {
		t.Fatal("handshake used despite threshold")
	}
	if a.Stats().DataTx != 1 {
		t.Fatalf("DataTx = %d", a.Stats().DataTx)
	}
}

func TestHiddenTerminalsResolvedByRTSCTS(t *testing.T) {
	// n0 and n2 are hidden from each other with common receiver n1. With
	// RTS/CTS, once one handshake completes the other sender's NAV (set by
	// n1's CTS) defers it, so long data frames stop colliding. Send many
	// packets from both sides and require high efficiency.
	r := newRig(t, 3, 250)
	a := r.alwaysOn(0)
	r.alwaysOn(1)
	c := r.alwaysOn(2)
	const n = 20
	okA, okC := 0, 0
	for i := 0; i < n; i++ {
		a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, OnResult: func(d bool) {
			if d {
				okA++
			}
		}})
		c.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, OnResult: func(d bool) {
			if d {
				okC++
			}
		}})
	}
	r.run(30 * sim.Second)
	if okA != n || okC != n {
		t.Fatalf("deliveries %d/%d of %d each", okA, okC, n)
	}
	// Efficiency: collisions only ever hit cheap RTS frames; the expensive
	// data frames should almost never need retransmission.
	dataTx := a.Stats().DataTx + c.Stats().DataTx
	if dataTx > uint64(2*n)+4 {
		t.Fatalf("dataTx = %d for %d packets: data frames are colliding", dataTx, 2*n)
	}
}

func TestNAVDefersThirdParty(t *testing.T) {
	// n2 hears n1's CTS (addressed to n0) and must defer its own
	// transmission until the reserved exchange completes.
	r := newRig(t, 3, 200) // 0-1-2 line; 0 and 2 hidden, both hear 1
	a := r.alwaysOn(0)
	r.alwaysOn(1)
	c := r.alwaysOn(2)
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 1500})
	// Let the RTS/CTS complete so n2's NAV is set, then ask n2 to send.
	r.sched.After(2*sim.Millisecond, func() {
		c.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 64})
	})
	r.run(sim.Second)
	if len(r.recs[1].received) != 2 {
		t.Fatalf("receiver got %d packets, want 2", len(r.recs[1].received))
	}
	// Both data frames decoded => n2 deferred rather than colliding with
	// n0's long frame.
	if a.Stats().DataTx != 1 {
		t.Fatalf("n0 retransmitted (%d): NAV deferral failed", a.Stats().DataTx)
	}
}

func TestBusyReceiverWithholdsCTS(t *testing.T) {
	// While n1 is mid-reception of a long frame from n0, an RTS from n2
	// (hidden from n0) corrupts it; but if n2's RTS arrives while n1's
	// medium is busy with a decodable exchange it must not answer.
	// Construct the simpler observable: n2 RTSes n3 while n3's NAV is set
	// by n1's CTS; n3 stays silent and n2 retries later.
	r := newRig(t, 4, 200) // line: n0 n1 n2 n3, 200m spacing, range 250
	a := r.alwaysOn(0)
	r.alwaysOn(1)
	c := r.alwaysOn(2)
	r.alwaysOn(3)
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 1500})
	r.sched.After(2*sim.Millisecond, func() {
		// n2 heard n1's CTS (they are adjacent): its NAV defers this send;
		// after the exchange it completes fine.
		c.Send(Packet{Dst: 3, Class: core.ClassData, Bytes: 64})
	})
	r.run(sim.Second)
	if len(r.recs[1].received) != 1 || len(r.recs[3].received) != 1 {
		t.Fatalf("deliveries: n1=%d n3=%d, want 1/1",
			len(r.recs[1].received), len(r.recs[3].received))
	}
}

func TestPSMUsesRTSCTSInsideDataPhase(t *testing.T) {
	r := newRig(t, 2, 100)
	a := r.psm(0, core.Rcast{})
	b := r.psm(1, core.Rcast{})
	r.coord.Start()
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512})
	r.sched.RunUntil(2 * sim.Second)
	if a.Stats().RtsTx == 0 || b.Stats().CtsTx == 0 {
		t.Fatalf("PSM data phase skipped RTS/CTS: rts=%d cts=%d",
			a.Stats().RtsTx, b.Stats().CtsTx)
	}
	if len(r.recs[1].received) != 1 {
		t.Fatal("packet not delivered")
	}
}

func TestKillSilencesPSMNode(t *testing.T) {
	r := newRig(t, 2, 100)
	a := r.psm(0, core.Rcast{})
	b := r.psm(1, core.Rcast{})
	r.coord.Start()
	b.Kill()
	if !b.Dead() {
		t.Fatal("Dead() false after Kill")
	}
	got := false
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, OnResult: func(d bool) { got = d }})
	r.sched.RunUntil(10 * sim.Second)
	if got {
		t.Fatal("delivered to a dead node")
	}
	if len(r.recs[1].received) != 0 {
		t.Fatal("dead node received traffic")
	}
	// A dead node refuses new work immediately.
	refused := true
	b.Send(Packet{Dst: 0, Class: core.ClassData, Bytes: 64, OnResult: func(d bool) { refused = !d }})
	if !refused {
		t.Fatal("dead node accepted a send")
	}
	// And never wakes for later beacons.
	_ = r.meters[1].ObserveAt(r.sched.Now())
	aw := r.meters[1].AwakeTime()
	r.sched.RunUntil(20 * sim.Second)
	_ = r.meters[1].ObserveAt(r.sched.Now())
	if r.meters[1].AwakeTime() != aw {
		t.Fatal("dead node accumulated awake time")
	}
}

func TestKillSilencesAlwaysOnNode(t *testing.T) {
	r := newRig(t, 2, 100)
	a := r.alwaysOn(0)
	b := r.alwaysOn(1)
	b.Kill()
	got := false
	a.Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, OnResult: func(d bool) { got = d }})
	r.run(5 * sim.Second)
	if got {
		t.Fatal("delivered to a dead always-on node")
	}
}
