package mac

import (
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Trace observes the MAC-level leg of a packet's lifecycle: queueing, the
// ATIM advertisement that announces it, the overhearing lottery that
// decides which non-addressed neighbors hear it, and the sleep/wake
// transitions framing the data phase. Like Audit, the interface lives in
// this package so the MAC never depends on its consumer (the scenario
// wiring adapts it onto a trace.Sink). All methods are called
// synchronously from scheduler events; a nil Trace disables
// instrumentation entirely — the hot path then pays one nil check per
// transition, keeping untraced runs byte-identical.
type Trace interface {
	// PacketEnqueued fires when Send accepts a packet (whether it waits
	// for the next ATIM window or takes the ODPM fast path).
	PacketEnqueued(now sim.Time, node phy.NodeID, p Packet)
	// ATIMAdvertised fires once per advertisement a station includes in a
	// beacon's ATIM window.
	ATIMAdvertised(now sim.Time, node phy.NodeID, a Announcement)
	// OverhearingDecision fires once per overhearing-policy consultation:
	// the station heard an advertisement not addressed to it carrying an
	// overhearing level, and the policy (the lottery, for randomized
	// levels) decided stayAwake. Addressed wakes are not reported here —
	// they involve no decision.
	OverhearingDecision(now sim.Time, node phy.NodeID, a Announcement, stayAwake bool)
	// StationWoke fires when a station wakes for a beacon's ATIM window.
	StationWoke(now sim.Time, node phy.NodeID)
	// StationSlept fires when a station dozes for a data phase.
	StationSlept(now sim.Time, node phy.NodeID)
}
