package mac

import (
	"testing"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// traceLog records which Trace callbacks fired, per kind.
type traceLog struct {
	enqueued  int
	atims     int
	lotteries int
	wakes     int
	sleeps    int
	stayAwake int
}

func (l *traceLog) PacketEnqueued(sim.Time, phy.NodeID, Packet)       { l.enqueued++ }
func (l *traceLog) ATIMAdvertised(sim.Time, phy.NodeID, Announcement) { l.atims++ }
func (l *traceLog) OverhearingDecision(_ sim.Time, _ phy.NodeID, _ Announcement, stay bool) {
	l.lotteries++
	if stay {
		l.stayAwake++
	}
}
func (l *traceLog) StationWoke(sim.Time, phy.NodeID)  { l.wakes++ }
func (l *traceLog) StationSlept(sim.Time, phy.NodeID) { l.sleeps++ }

// TestPSMTraceCallbacks pins the MAC-level trace hooks in isolation: a
// traced PSM cluster reports the enqueue, the ATIM advertisement, the
// third station's overhearing lottery, and the sleep/wake transitions
// framing every beacon interval.
func TestPSMTraceCallbacks(t *testing.T) {
	r := newRig(t, 3, 100)
	log := &traceLog{}
	macs := make([]*PSM, 3)
	for i := range macs {
		macs[i] = r.psm(i, core.Rcast{})
		macs[i].SetTrace(log)
	}
	r.sched.After(10*sim.Millisecond, func() {
		macs[0].Send(Packet{Dst: 1, Class: core.ClassData, Bytes: 512, Payload: "traced"})
	})
	r.run(2 * sim.Second)

	if log.enqueued != 1 {
		t.Fatalf("enqueued = %d, want 1", log.enqueued)
	}
	if log.atims == 0 {
		t.Fatal("no ATIM advertisement traced")
	}
	if log.lotteries == 0 {
		t.Fatal("no overhearing lottery traced (node 2 overheard nothing)")
	}
	if log.wakes == 0 || log.sleeps == 0 {
		t.Fatalf("wakes = %d, sleeps = %d; want both > 0", log.wakes, log.sleeps)
	}
	if len(r.recs[1].received) != 1 {
		t.Fatalf("destination received %d packets, want 1", len(r.recs[1].received))
	}
}
