// Package metrics collects the paper's performance measures during a run:
// packet delivery ratio, end-to-end delay, normalized routing overhead,
// per-node energy, energy-per-bit, energy variance, and role numbers
// (§4.2: the extent to which a node lies on the paths cached during all
// packet transmissions).
package metrics

import (
	"fmt"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
	"rcast/internal/stats"
)

// Collector accumulates events for one run. It is wired into every node's
// routing hooks; methods take the acting node's ID where relevant.
type Collector struct {
	nodes int

	originated uint64
	delivered  uint64
	dropped    map[string]uint64

	totalDelay    sim.Time
	delaySamples  []float64 // seconds, one per delivery
	totalHops     uint64
	deliveredBits float64

	controlTx map[core.Class]uint64
	dataTx    uint64

	forwards []uint64  // data packets forwarded per node
	roles    []float64 // role numbers per node
}

// NewCollector creates a collector for a run with the given node count.
func NewCollector(nodes int) *Collector {
	return &Collector{
		nodes:     nodes,
		dropped:   make(map[string]uint64),
		controlTx: make(map[core.Class]uint64),
		forwards:  make([]uint64, nodes),
		roles:     make([]float64, nodes),
	}
}

// DataOriginated records an application packet entering the network.
func (c *Collector) DataOriginated() { c.originated++ }

// DataDelivered records an end-to-end delivery with the given latency,
// payload size and hop count (link transmissions from source to
// destination).
func (c *Collector) DataDelivered(delay sim.Time, payloadBytes, hops int) {
	c.delivered++
	c.totalDelay += delay
	c.delaySamples = append(c.delaySamples, delay.Seconds())
	if hops > 0 {
		c.totalHops += uint64(hops)
	}
	c.deliveredBits += float64(payloadBytes) * 8
}

// DataDropped records a loss with a reason tag.
func (c *Collector) DataDropped(reason string) { c.dropped[reason]++ }

// DataForwarded records node id relaying a data packet.
func (c *Collector) DataForwarded(id phy.NodeID) {
	if int(id) >= 0 && int(id) < c.nodes {
		c.forwards[id]++
	}
	c.dataTx++
}

// DataTransmitted records any data transmission (origination hop).
func (c *Collector) DataTransmitted() { c.dataTx++ }

// ControlSent records one routing-control transmission (per hop).
func (c *Collector) ControlSent(class core.Class) { c.controlTx[class]++ }

// RouteCached records a route inserted into some node's cache: each
// intermediate node's role number increases (paper §4.2).
func (c *Collector) RouteCached(path []phy.NodeID) {
	if len(path) < 3 {
		return
	}
	for _, id := range path[1 : len(path)-1] {
		if int(id) >= 0 && int(id) < c.nodes {
			c.roles[id]++
		}
	}
}

// Originated returns the number of application packets originated.
func (c *Collector) Originated() uint64 { return c.originated }

// Delivered returns the number of end-to-end deliveries.
func (c *Collector) Delivered() uint64 { return c.delivered }

// PDR returns the packet delivery ratio in [0, 1] (1 when no packets were
// originated).
func (c *Collector) PDR() float64 {
	if c.originated == 0 {
		return 1
	}
	return float64(c.delivered) / float64(c.originated)
}

// AvgDelaySeconds returns the mean end-to-end delay of delivered packets.
func (c *Collector) AvgDelaySeconds() float64 {
	if c.delivered == 0 {
		return 0
	}
	return c.totalDelay.Seconds() / float64(c.delivered)
}

// DelayPercentile returns the p-th percentile of end-to-end delay in
// seconds over delivered packets.
func (c *Collector) DelayPercentile(p float64) float64 {
	return stats.Percentile(c.delaySamples, p)
}

// MeanHops returns the mean hop count of delivered packets.
func (c *Collector) MeanHops() float64 {
	if c.delivered == 0 {
		return 0
	}
	return float64(c.totalHops) / float64(c.delivered)
}

// DeliveredBits returns the total delivered payload bits.
func (c *Collector) DeliveredBits() float64 { return c.deliveredBits }

// ControlTransmissions returns total routing-control transmissions, and
// the per-class breakdown (the returned map is a copy).
func (c *Collector) ControlTransmissions() (total uint64, byClass map[core.Class]uint64) {
	byClass = make(map[core.Class]uint64, len(c.controlTx))
	for k, v := range c.controlTx {
		byClass[k] = v
		total += v
	}
	return total, byClass
}

// NormalizedOverhead returns routing-control transmissions per delivered
// data packet — the paper's "normalized routing overhead" (Fig. 8). It
// returns the raw control count when nothing was delivered.
func (c *Collector) NormalizedOverhead() float64 {
	total, _ := c.ControlTransmissions()
	if c.delivered == 0 {
		return float64(total)
	}
	return float64(total) / float64(c.delivered)
}

// EnergyPerBit returns joules per successfully delivered payload bit given
// the run's total energy (Fig. 7c/f). Zero delivered bits yields +Inf-free
// 0 to keep reports readable; callers should check DeliveredBits.
func (c *Collector) EnergyPerBit(totalJoules float64) float64 {
	if c.deliveredBits == 0 {
		return 0
	}
	return totalJoules / c.deliveredBits
}

// RoleNumbers returns a copy of the per-node role numbers.
func (c *Collector) RoleNumbers() []float64 {
	out := make([]float64, len(c.roles))
	copy(out, c.roles)
	return out
}

// Forwards returns a copy of the per-node data-forward counts.
func (c *Collector) Forwards() []uint64 {
	out := make([]uint64, len(c.forwards))
	copy(out, c.forwards)
	return out
}

// SelfCheck verifies the collector's internal bookkeeping and returns one
// description per inconsistency (nil when consistent). The audit layer runs
// it at teardown; every check ties two independently maintained views of
// the same quantity together.
func (c *Collector) SelfCheck() []string {
	var bad []string
	if uint64(len(c.delaySamples)) != c.delivered {
		bad = append(bad, fmt.Sprintf("delay samples (%d) != deliveries (%d)",
			len(c.delaySamples), c.delivered))
	}
	var sum float64
	for _, s := range c.delaySamples {
		sum += s
	}
	if diff := sum - c.totalDelay.Seconds(); diff > 1e-3 || diff < -1e-3 {
		bad = append(bad, fmt.Sprintf("delay sample sum %.6fs != total delay %.6fs",
			sum, c.totalDelay.Seconds()))
	}
	var fw uint64
	for _, f := range c.forwards {
		fw += f
	}
	if fw > c.dataTx {
		bad = append(bad, fmt.Sprintf("per-node forwards (%d) exceed data transmissions (%d)",
			fw, c.dataTx))
	}
	if c.delivered > 0 && c.deliveredBits <= 0 {
		bad = append(bad, fmt.Sprintf("%d deliveries carried no payload bits", c.delivered))
	}
	return bad
}

// Drops returns a copy of the per-reason drop counts.
func (c *Collector) Drops() map[string]uint64 {
	out := make(map[string]uint64, len(c.dropped))
	for k, v := range c.dropped {
		out[k] = v
	}
	return out
}
