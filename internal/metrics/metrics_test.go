package metrics

import (
	"math"
	"testing"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

func TestPDRAndDelay(t *testing.T) {
	c := NewCollector(10)
	if c.PDR() != 1 {
		t.Error("empty collector PDR should be 1")
	}
	for i := 0; i < 4; i++ {
		c.DataOriginated()
	}
	c.DataDelivered(100*sim.Millisecond, 512, 2)
	c.DataDelivered(300*sim.Millisecond, 512, 4)
	c.DataDropped("no-route")
	if got := c.PDR(); got != 0.5 {
		t.Errorf("PDR = %v, want 0.5", got)
	}
	if got := c.AvgDelaySeconds(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("AvgDelay = %v, want 0.2", got)
	}
	if got := c.DeliveredBits(); got != 2*512*8 {
		t.Errorf("DeliveredBits = %v", got)
	}
	if c.Originated() != 4 || c.Delivered() != 2 {
		t.Error("counts wrong")
	}
	if c.Drops()["no-route"] != 1 {
		t.Error("drop reason not recorded")
	}
	if got := c.MeanHops(); got != 3 {
		t.Errorf("MeanHops = %v, want 3", got)
	}
	if got := c.DelayPercentile(50); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("DelayPercentile(50) = %v, want 0.2", got)
	}
	if got := c.DelayPercentile(100); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("DelayPercentile(100) = %v, want 0.3", got)
	}
}

func TestEmptyDelayAndHops(t *testing.T) {
	c := NewCollector(3)
	if c.MeanHops() != 0 || c.DelayPercentile(95) != 0 {
		t.Error("empty collector delay/hops not zero")
	}
}

func TestNormalizedOverhead(t *testing.T) {
	c := NewCollector(10)
	for i := 0; i < 6; i++ {
		c.ControlSent(core.ClassRREQ)
	}
	c.ControlSent(core.ClassRREP)
	c.ControlSent(core.ClassRERR)
	// Nothing delivered: raw count.
	if got := c.NormalizedOverhead(); got != 8 {
		t.Errorf("NRO (no deliveries) = %v, want 8", got)
	}
	c.DataOriginated()
	c.DataOriginated()
	c.DataDelivered(0, 512, 1)
	c.DataDelivered(0, 512, 1)
	if got := c.NormalizedOverhead(); got != 4 {
		t.Errorf("NRO = %v, want 4", got)
	}
	total, byClass := c.ControlTransmissions()
	if total != 8 || byClass[core.ClassRREQ] != 6 || byClass[core.ClassRREP] != 1 || byClass[core.ClassRERR] != 1 {
		t.Errorf("ControlTransmissions = %d %v", total, byClass)
	}
}

func TestEnergyPerBit(t *testing.T) {
	c := NewCollector(10)
	if got := c.EnergyPerBit(100); got != 0 {
		t.Errorf("EPB with zero bits = %v, want 0", got)
	}
	c.DataDelivered(0, 1250, 1) // 10000 bits
	if got := c.EnergyPerBit(100); got != 0.01 {
		t.Errorf("EPB = %v, want 0.01", got)
	}
}

func TestRoleNumbersCountIntermediates(t *testing.T) {
	c := NewCollector(5)
	c.RouteCached([]phy.NodeID{0, 1, 2, 3}) // intermediates 1, 2
	c.RouteCached([]phy.NodeID{4, 2, 0})    // intermediate 2
	c.RouteCached([]phy.NodeID{0, 1})       // no intermediates
	roles := c.RoleNumbers()
	want := []float64{0, 1, 2, 0, 0}
	for i := range want {
		if roles[i] != want[i] {
			t.Fatalf("roles = %v, want %v", roles, want)
		}
	}
	// Out-of-range IDs are ignored, not a panic.
	c.RouteCached([]phy.NodeID{0, 99, 1})
}

func TestForwards(t *testing.T) {
	c := NewCollector(3)
	c.DataForwarded(1)
	c.DataForwarded(1)
	c.DataForwarded(99) // ignored per-node, still counted as a data tx
	c.DataTransmitted()
	f := c.Forwards()
	if f[1] != 2 || f[0] != 0 {
		t.Errorf("forwards = %v", f)
	}
}

func TestSnapshotsAreCopies(t *testing.T) {
	c := NewCollector(3)
	c.RouteCached([]phy.NodeID{0, 1, 2})
	r := c.RoleNumbers()
	r[1] = 99
	if c.RoleNumbers()[1] != 1 {
		t.Error("RoleNumbers returned aliased storage")
	}
	c.DataDropped("x")
	d := c.Drops()
	d["x"] = 99
	if c.Drops()["x"] != 1 {
		t.Error("Drops returned aliased storage")
	}
}

// TestOutOfRangeNodeIDs checks that per-node attribution rejects IDs
// outside the collector's node range instead of panicking or corrupting a
// neighbor's counters; aggregate totals still advance.
func TestOutOfRangeNodeIDs(t *testing.T) {
	c := NewCollector(3)
	for _, id := range []phy.NodeID{-1, 3, 1000} {
		c.DataForwarded(id)
	}
	c.DataForwarded(1)
	if got := c.Forwards(); got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Errorf("Forwards = %v, want only node 1 credited", got)
	}
	// Out-of-range forwards still count as data transmissions (the frames
	// were sent) — only the per-node attribution is dropped.
	if c.dataTx != 4 {
		t.Errorf("dataTx = %d, want 4", c.dataTx)
	}

	c.RouteCached([]phy.NodeID{0, -5, 99, 2})
	c.RouteCached([]phy.NodeID{0, 1, 2})
	if got := c.RoleNumbers(); got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Errorf("RoleNumbers = %v, want only node 1 credited", got)
	}
	if bad := c.SelfCheck(); bad != nil {
		t.Errorf("SelfCheck after out-of-range events: %v", bad)
	}
}

// TestSelfCheckCatchesCorruption corrupts each independently maintained
// pair of counters and checks SelfCheck reports it.
func TestSelfCheckCatchesCorruption(t *testing.T) {
	clean := func() *Collector {
		c := NewCollector(2)
		c.DataOriginated()
		c.DataTransmitted()
		c.DataDelivered(100*sim.Millisecond, 512, 1)
		return c
	}
	if bad := clean().SelfCheck(); bad != nil {
		t.Fatalf("consistent collector flagged: %v", bad)
	}

	c := clean()
	c.delivered++ // delivery without a delay sample
	if bad := c.SelfCheck(); len(bad) == 0 {
		t.Error("missing delay sample not detected")
	}

	c = clean()
	c.totalDelay += sim.Second // sum no longer matches samples
	if bad := c.SelfCheck(); len(bad) == 0 {
		t.Error("delay sum drift not detected")
	}

	c = clean()
	c.forwards[0] = 5 // forwards exceed data transmissions
	if bad := c.SelfCheck(); len(bad) == 0 {
		t.Error("forward overcount not detected")
	}

	c = clean()
	c.deliveredBits = 0 // deliveries without payload
	if bad := c.SelfCheck(); len(bad) == 0 {
		t.Error("zero payload bits not detected")
	}
}
