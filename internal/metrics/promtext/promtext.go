// Package promtext is a dependency-free Prometheus text-format (version
// 0.0.4) exposition library for the serving layer: counters, gauges,
// labelled counter vectors and histograms registered in a Registry that
// writes a deterministic /metrics page — metrics sorted by name, label
// values sorted within a metric — so scrapes and tests see a stable
// ordering. All instruments are safe for concurrent use.
//
// It intentionally implements only what rcast-serve exposes; it is not a
// general Prometheus client.
package promtext

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// metric is anything the registry can expose.
type metric interface {
	name() string
	write(w io.Writer) error
}

// Registry holds registered metrics and renders the exposition page.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register adds m, panicking on a duplicate name — metric names are
// compile-time decisions and a collision is always a programming error.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name()]; dup {
		panic(fmt.Sprintf("promtext: duplicate metric %q", m.name()))
	}
	r.metrics[m.name()] = m
}

// Write renders every registered metric in name order.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	ms := make([]metric, len(names))
	for i, n := range names {
		ms[i] = r.metrics[n]
	}
	r.mu.Unlock()
	for _, m := range ms {
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	nm, help string
	v        atomic.Uint64
}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) name() string { return c.nm }

func (c *Counter) write(w io.Writer) error {
	if err := writeHeader(w, c.nm, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
	return err
}

// Gauge is a settable int64.
type Gauge struct {
	nm, help string
	v        atomic.Int64
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{nm: name, help: help}
	r.register(g)
	return g
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) name() string { return g.nm }

func (g *Gauge) write(w io.Writer) error {
	if err := writeHeader(w, g.nm, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", g.nm, g.v.Load())
	return err
}

// GaugeFunc samples a gauge from a callback at scrape time (queue depths
// and other values that already live elsewhere).
type GaugeFunc struct {
	nm, help string
	fn       func() int64
}

// NewGaugeFunc registers a callback-backed gauge. fn must be safe for
// concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) *GaugeFunc {
	g := &GaugeFunc{nm: name, help: help, fn: fn}
	r.register(g)
	return g
}

func (g *GaugeFunc) name() string { return g.nm }

func (g *GaugeFunc) write(w io.Writer) error {
	if err := writeHeader(w, g.nm, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", g.nm, g.fn())
	return err
}

// Sample2 is one sample of a two-label family, produced by a
// GaugeFuncVec2 callback at scrape time.
type Sample2 struct {
	L1, L2 string
	V      int64
}

// GaugeFuncVec2 samples a two-label gauge family from a callback at
// scrape time (tallies that already live elsewhere, e.g. per-scheme
// trace-event counters). The page stays deterministic regardless of
// callback ordering: samples are sorted by (L1, L2) before rendering.
type GaugeFuncVec2 struct {
	nm, help, label1, label2 string
	fn                       func() []Sample2
}

// NewGaugeFuncVec2 registers a callback-backed two-label gauge family.
// fn must be safe for concurrent use.
func (r *Registry) NewGaugeFuncVec2(name, help, label1, label2 string, fn func() []Sample2) *GaugeFuncVec2 {
	g := &GaugeFuncVec2{nm: name, help: help, label1: label1, label2: label2, fn: fn}
	r.register(g)
	return g
}

func (g *GaugeFuncVec2) name() string { return g.nm }

func (g *GaugeFuncVec2) write(w io.Writer) error {
	if err := writeHeader(w, g.nm, g.help, "gauge"); err != nil {
		return err
	}
	samples := g.fn()
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].L1 != samples[j].L1 {
			return samples[i].L1 < samples[j].L1
		}
		return samples[i].L2 < samples[j].L2
	})
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%s{%s=%q,%s=%q} %d\n", g.nm, g.label1, s.L1, g.label2, s.L2, s.V); err != nil {
			return err
		}
	}
	return nil
}

// CounterVec is a counter family partitioned by one label.
type CounterVec struct {
	nm, help, label string

	mu sync.Mutex
	m  map[string]*atomic.Uint64
}

// NewCounterVec registers a one-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	cv := &CounterVec{nm: name, help: help, label: label, m: make(map[string]*atomic.Uint64)}
	r.register(cv)
	return cv
}

// Inc adds one to the child for the given label value.
func (cv *CounterVec) Inc(value string) {
	cv.mu.Lock()
	c, ok := cv.m[value]
	if !ok {
		c = new(atomic.Uint64)
		cv.m[value] = c
	}
	cv.mu.Unlock()
	c.Add(1)
}

// Value returns the count for one label value (0 if never incremented).
func (cv *CounterVec) Value(value string) uint64 {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if c, ok := cv.m[value]; ok {
		return c.Load()
	}
	return 0
}

func (cv *CounterVec) name() string { return cv.nm }

func (cv *CounterVec) write(w io.Writer) error {
	if err := writeHeader(w, cv.nm, cv.help, "counter"); err != nil {
		return err
	}
	cv.mu.Lock()
	values := make([]string, 0, len(cv.m))
	for v := range cv.m {
		values = append(values, v)
	}
	sort.Strings(values)
	counts := make([]uint64, len(values))
	for i, v := range values {
		counts[i] = cv.m[v].Load()
	}
	cv.mu.Unlock()
	for i, v := range values {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", cv.nm, cv.label, v, counts[i]); err != nil {
			return err
		}
	}
	return nil
}

// CounterVec2 is a counter family partitioned by two labels (e.g. runs
// by propagation model and overhearing policy).
type CounterVec2 struct {
	nm, help, label1, label2 string

	mu sync.Mutex
	m  map[[2]string]*atomic.Uint64
}

// NewCounterVec2 registers a two-label counter family.
func (r *Registry) NewCounterVec2(name, help, label1, label2 string) *CounterVec2 {
	cv := &CounterVec2{nm: name, help: help, label1: label1, label2: label2, m: make(map[[2]string]*atomic.Uint64)}
	r.register(cv)
	return cv
}

// Inc adds one to the child for the given label values.
func (cv *CounterVec2) Inc(v1, v2 string) {
	k := [2]string{v1, v2}
	cv.mu.Lock()
	c, ok := cv.m[k]
	if !ok {
		c = new(atomic.Uint64)
		cv.m[k] = c
	}
	cv.mu.Unlock()
	c.Add(1)
}

// Value returns the count for one label pair (0 if never incremented).
func (cv *CounterVec2) Value(v1, v2 string) uint64 {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if c, ok := cv.m[[2]string{v1, v2}]; ok {
		return c.Load()
	}
	return 0
}

func (cv *CounterVec2) name() string { return cv.nm }

func (cv *CounterVec2) write(w io.Writer) error {
	if err := writeHeader(w, cv.nm, cv.help, "counter"); err != nil {
		return err
	}
	cv.mu.Lock()
	keys := make([][2]string, 0, len(cv.m))
	for k := range cv.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	counts := make([]uint64, len(keys))
	for i, k := range keys {
		counts[i] = cv.m[k].Load()
	}
	cv.mu.Unlock()
	for i, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s=%q,%s=%q} %d\n", cv.nm, cv.label1, k[0], cv.label2, k[1], counts[i]); err != nil {
			return err
		}
	}
	return nil
}

// GaugeVec is a gauge family partitioned by one label (e.g. per-worker
// health in a fleet).
type GaugeVec struct {
	nm, help, label string

	mu sync.Mutex
	m  map[string]*atomic.Int64
}

// NewGaugeVec registers a one-label gauge family.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	gv := &GaugeVec{nm: name, help: help, label: label, m: make(map[string]*atomic.Int64)}
	r.register(gv)
	return gv
}

func (gv *GaugeVec) child(value string) *atomic.Int64 {
	gv.mu.Lock()
	g, ok := gv.m[value]
	if !ok {
		g = new(atomic.Int64)
		gv.m[value] = g
	}
	gv.mu.Unlock()
	return g
}

// Set replaces the value of the child for the given label value.
func (gv *GaugeVec) Set(value string, v int64) { gv.child(value).Store(v) }

// Value returns one child's value (0 if never set).
func (gv *GaugeVec) Value(value string) int64 {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	if g, ok := gv.m[value]; ok {
		return g.Load()
	}
	return 0
}

func (gv *GaugeVec) name() string { return gv.nm }

func (gv *GaugeVec) write(w io.Writer) error {
	if err := writeHeader(w, gv.nm, gv.help, "gauge"); err != nil {
		return err
	}
	gv.mu.Lock()
	values := make([]string, 0, len(gv.m))
	for v := range gv.m {
		values = append(values, v)
	}
	sort.Strings(values)
	samples := make([]int64, len(values))
	for i, v := range values {
		samples[i] = gv.m[v].Load()
	}
	gv.mu.Unlock()
	for i, v := range values {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", gv.nm, gv.label, v, samples[i]); err != nil {
			return err
		}
	}
	return nil
}

// Histogram is a cumulative-bucket histogram of float64 observations.
type Histogram struct {
	nm, help string
	bounds   []float64 // upper bounds, ascending; +Inf implicit

	mu     sync.Mutex
	counts []uint64 // one per bound, plus the +Inf overflow at the end
	sum    float64
	total  uint64
}

// NewHistogram registers a histogram with the given ascending upper
// bounds (the +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("promtext: histogram %q bounds not ascending", name))
	}
	h := &Histogram{
		nm: name, help: help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns how many samples have been observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (h *Histogram) name() string { return h.nm }

func (h *Histogram) write(w io.Writer) error {
	if err := writeHeader(w, h.nm, h.help, "histogram"); err != nil {
		return err
	}
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, formatFloat(b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.nm, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.nm, total)
	return err
}
