package promtext

import (
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Requests handled.")
	g := r.NewGauge("test_depth", "Queue depth.")
	r.NewGaugeFunc("test_capacity", "Queue capacity.", func() int64 { return 8 })
	cv := r.NewCounterVec("test_jobs_total", "Jobs by state.", "state")
	h := r.NewHistogram("test_latency_seconds", "Run latency.", []float64{0.1, 1, 10})

	c.Add(3)
	g.Set(5)
	cv.Inc("done")
	cv.Inc("done")
	cv.Inc("canceled")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	got := render(t, r)
	want := `# HELP test_capacity Queue capacity.
# TYPE test_capacity gauge
test_capacity 8
# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 5
# HELP test_jobs_total Jobs by state.
# TYPE test_jobs_total counter
test_jobs_total{state="canceled"} 1
test_jobs_total{state="done"} 2
# HELP test_latency_seconds Run latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="10"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 100.55
test_latency_seconds_count 3
# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("x_total", "x", "k")
	for _, v := range []string{"b", "a", "c"} {
		cv.Inc(v)
	}
	r.NewCounter("a_total", "a")
	r.NewGauge("z", "z")
	first := render(t, r)
	for i := 0; i < 5; i++ {
		if got := render(t, r); got != first {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	if !strings.Contains(first, "x_total{k=\"a\"} 1\nx_total{k=\"b\"} 1\nx_total{k=\"c\"} 1") {
		t.Errorf("label values not sorted:\n%s", first)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "h", []float64{1, 2})
	// A sample exactly on a bound lands in that bound's bucket (le is <=).
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	got := render(t, r)
	for _, want := range []string{`h_bucket{le="1"} 1`, `h_bucket{le="2"} 2`, `h_bucket{le="+Inf"} 3`, "h_sum 6", "h_count 3"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup", "second")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	g := r.NewGauge("g", "g")
	cv := r.NewCounterVec("v_total", "v", "s")
	h := r.NewHistogram("h_seconds", "h", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				cv.Inc("a")
				h.Observe(0.5)
				var b strings.Builder
				_ = r.Write(&b)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || cv.Value("a") != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d g=%d v=%d h=%d", c.Value(), g.Value(), cv.Value("a"), h.Count())
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	gv := r.NewGaugeVec("test_worker_up", "Worker health.", "worker")
	gv.Set("http://b:1", 1)
	gv.Set("http://a:1", 1)
	gv.Set("http://b:1", 0)
	if got := gv.Value("http://a:1"); got != 1 {
		t.Errorf("Value(a) = %d, want 1", got)
	}
	if got := gv.Value("http://b:1"); got != 0 {
		t.Errorf("Value(b) = %d, want 0", got)
	}
	if got := gv.Value("http://never:1"); got != 0 {
		t.Errorf("Value(unset) = %d, want 0", got)
	}
	got := render(t, r)
	want := `# HELP test_worker_up Worker health.
# TYPE test_worker_up gauge
test_worker_up{worker="http://a:1"} 1
test_worker_up{worker="http://b:1"} 0
`
	if got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestCounterVec2(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec2("test_runs_total", "Runs by channel and policy.", "channel", "policy")
	cv.Inc("fading", "rcast")
	cv.Inc("disk", "rcast")
	cv.Inc("disk", "battery")
	cv.Inc("disk", "rcast")

	if got := cv.Value("disk", "rcast"); got != 2 {
		t.Fatalf("Value(disk,rcast) = %d, want 2", got)
	}
	if got := cv.Value("disk", "none"); got != 0 {
		t.Fatalf("Value of untouched pair = %d, want 0", got)
	}
	got := render(t, r)
	want := `# HELP test_runs_total Runs by channel and policy.
# TYPE test_runs_total counter
test_runs_total{channel="disk",policy="battery"} 1
test_runs_total{channel="disk",policy="rcast"} 2
test_runs_total{channel="fading",policy="rcast"} 1
`
	if got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestCounterVec2Concurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec2("test_conc_total", "Concurrency check.", "a", "b")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				cv.Inc("x", "y")
			}
		}()
	}
	wg.Wait()
	if got := cv.Value("x", "y"); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
}

func TestGaugeFuncVec2SortedOutput(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFuncVec2("demo_events", "Demo family.", "scheme", "kind", func() []Sample2 {
		// Deliberately unsorted: the writer must order by (L1, L2).
		return []Sample2{
			{L1: "psm", L2: "wake", V: 3},
			{L1: "always-on", L2: "deliver", V: 7},
			{L1: "psm", L2: "deliver", V: 5},
		}
	})
	want := `# HELP demo_events Demo family.
# TYPE demo_events gauge
demo_events{scheme="always-on",kind="deliver"} 7
demo_events{scheme="psm",kind="deliver"} 5
demo_events{scheme="psm",kind="wake"} 3
`
	if got := render(t, r); got != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestGaugeFuncVec2Empty(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFuncVec2("empty_fam", "Empty family.", "a", "b", func() []Sample2 { return nil })
	want := "# HELP empty_fam Empty family.\n# TYPE empty_fam gauge\n"
	if got := render(t, r); got != want {
		t.Fatalf("exposition mismatch: %q", got)
	}
}
