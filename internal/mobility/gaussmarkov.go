package mobility

import (
	"math"
	"math/rand"

	"rcast/internal/geom"
	"rcast/internal/sim"
)

// GaussMarkov is the Gauss–Markov mobility model (Liang & Haas): speed and
// direction evolve as first-order autoregressive processes, so trajectories
// are temporally correlated — no sharp waypoint turns — with the memory
// level α tuning between Brownian motion (α=0) and straight-line constant
// velocity (α=1).
//
// At each tick the state updates as
//
//	s_n = α·s_{n-1} + (1-α)·s̄ + sqrt(1-α²)·σ_s·N(0,1)
//	d_n = α·d_{n-1} + (1-α)·d̄ + sqrt(1-α²)·σ_d·N(0,1)
//
// and the node moves in a straight line for one tick at (s_n, d_n). Speed
// is clamped to [MinSpeed, MaxSpeed]. At a field edge the trajectory
// reflects: the overshoot mirrors back inside and both the current and
// mean direction flip across the wall, steering the process away from the
// boundary (the standard edge treatment for this model).
//
// Like Waypoint, positions come from a lazily extended analytic leg list,
// so the model stays a pure function of time for any query order.
type GaussMarkov struct {
	field     geom.Rect
	minSpeed  float64
	maxSpeed  float64
	alpha     float64
	tick      sim.Time
	rng       *rand.Rand
	meanSpeed float64
	speedStd  float64
	dirStd    float64

	// AR(1) state after the last generated leg.
	speed   float64
	dir     float64
	meanDir float64

	legs []leg
}

var _ Model = (*GaussMarkov)(nil)

// GaussMarkovConfig parameterizes NewGaussMarkov.
type GaussMarkovConfig struct {
	Field    geom.Rect
	MinSpeed float64  // m/s; defaults to 0.1 if <= 0
	MaxSpeed float64  // m/s; must be >= MinSpeed
	Alpha    float64  // memory in [0, 1]; defaults to 0.75 if <= 0
	Tick     sim.Time // state-update interval; defaults to 1 s if <= 0
	Start    geom.Point
}

// NewGaussMarkov creates a Gauss–Markov model. The rng must be dedicated
// to this node (see sim.Stream) to keep trajectories reproducible; the
// initial mean direction is drawn from it uniformly.
func NewGaussMarkov(cfg GaussMarkovConfig, rng *rand.Rand) *GaussMarkov {
	minSpeed := cfg.MinSpeed
	if minSpeed <= 0 {
		minSpeed = 0.1
	}
	maxSpeed := cfg.MaxSpeed
	if maxSpeed < minSpeed {
		maxSpeed = minSpeed
	}
	alpha := cfg.Alpha
	if alpha <= 0 {
		alpha = 0.75
	}
	if alpha > 1 {
		alpha = 1
	}
	tick := cfg.Tick
	if tick <= 0 {
		tick = sim.Second
	}
	g := &GaussMarkov{
		field:     cfg.Field,
		minSpeed:  minSpeed,
		maxSpeed:  maxSpeed,
		alpha:     alpha,
		tick:      tick,
		rng:       rng,
		meanSpeed: (minSpeed + maxSpeed) / 2,
		speedStd:  (maxSpeed - minSpeed) / 4,
		dirStd:    math.Pi / 4,
	}
	g.meanDir = rng.Float64() * 2 * math.Pi
	g.speed = g.meanSpeed
	g.dir = g.meanDir
	g.legs = append(g.legs, leg{start: 0, end: 0, from: cfg.Start, to: cfg.Start})
	return g
}

// PositionAt implements Model.
func (g *GaussMarkov) PositionAt(t sim.Time) geom.Point {
	if t < 0 {
		t = 0
	}
	g.extendTo(t)
	return legPosition(g.legs, t)
}

// extendTo appends one-tick legs until the trajectory covers instant t.
func (g *GaussMarkov) extendTo(t sim.Time) {
	sq := math.Sqrt(1 - g.alpha*g.alpha)
	for g.legs[len(g.legs)-1].end <= t {
		last := g.legs[len(g.legs)-1]
		g.speed = g.alpha*g.speed + (1-g.alpha)*g.meanSpeed + sq*g.speedStd*g.rng.NormFloat64()
		g.speed = math.Max(g.minSpeed, math.Min(g.maxSpeed, g.speed))
		g.dir = g.alpha*g.dir + (1-g.alpha)*g.meanDir + sq*g.dirStd*g.rng.NormFloat64()
		step := g.speed * g.tick.Seconds()
		to := last.to.Add(geom.Point{X: step * math.Cos(g.dir), Y: step * math.Sin(g.dir)})
		to = g.reflect(to)
		g.legs = append(g.legs, leg{start: last.end, end: last.end + g.tick, from: last.to, to: to})
	}
}

// reflect mirrors p back inside the field, flipping the current and mean
// direction across each violated wall. One tick's step is far shorter than
// any sane field edge, so a handful of passes always converges; the final
// clamp guards degenerate (near-zero) fields.
func (g *GaussMarkov) reflect(p geom.Point) geom.Point {
	for i := 0; i < 4 && !g.field.Contains(p); i++ {
		if p.X < 0 {
			p.X = -p.X
			g.dir = math.Pi - g.dir
			g.meanDir = math.Pi - g.meanDir
		} else if p.X > g.field.W {
			p.X = 2*g.field.W - p.X
			g.dir = math.Pi - g.dir
			g.meanDir = math.Pi - g.meanDir
		}
		if p.Y < 0 {
			p.Y = -p.Y
			g.dir = -g.dir
			g.meanDir = -g.meanDir
		} else if p.Y > g.field.H {
			p.Y = 2*g.field.H - p.Y
			g.dir = -g.dir
			g.meanDir = -g.meanDir
		}
	}
	return g.field.Clamp(p)
}
