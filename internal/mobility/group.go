package mobility

import (
	"rcast/internal/geom"
	"rcast/internal/sim"
)

// Member is one node of a reference-point group mobility (RPGM) group
// (Hong et al.): the whole group follows a shared reference trajectory —
// typically a Waypoint over the full field — while each member wanders on
// its own local trajectory inside a box around the reference point. The
// member position is
//
//	Clamp(ref(t) + local(t) - center)
//
// where center is the middle of the local box, so the local trajectory
// contributes a zero-centred offset bounded by the box half-extent (the
// group radius). Clamping keeps members on the field when the reference
// point travels near an edge.
//
// Member composes pure-function-of-time models, so it is itself pure —
// the property the radio's single-instant position cache relies on. The
// reference model is shared by every member of a group; sharing is safe
// because all model code runs on the single-threaded simulation kernel.
type Member struct {
	Field  geom.Rect
	Ref    Model      // shared per-group reference trajectory
	Local  Model      // per-node trajectory inside the local box
	Center geom.Point // middle of the local box (its half-extent)
}

var _ Model = Member{}

// PositionAt implements Model.
func (m Member) PositionAt(t sim.Time) geom.Point {
	return m.Field.Clamp(m.Ref.PositionAt(t).Add(m.Local.PositionAt(t).Sub(m.Center)))
}
