// Package mobility implements node movement models. The primary model is
// the random waypoint model used by the paper (Johnson & Maltz): a node
// travels to a uniformly chosen destination at a uniformly chosen speed,
// pauses for a fixed time, and repeats.
//
// Positions are computed analytically from a lazily extended list of
// movement legs, so queries at arbitrary instants are exact and no periodic
// "mobility tick" events are needed.
package mobility

import (
	"math/rand"

	"rcast/internal/geom"
	"rcast/internal/sim"
)

// Model yields a node's position at any simulated instant. Implementations
// must be monotone-query friendly but are required to answer arbitrary
// (including repeated or out-of-order) instants consistently.
type Model interface {
	// PositionAt returns the node position at instant t >= 0.
	PositionAt(t sim.Time) geom.Point
}

// Static pins a node at a fixed point. It models the paper's "static
// scenario" (pause time = simulation length).
type Static struct {
	P geom.Point
}

var _ Model = Static{}

// PositionAt implements Model.
func (s Static) PositionAt(sim.Time) geom.Point { return s.P }

// Waypoint is the random waypoint model.
//
// Each leg moves in a straight line from the previous waypoint to a fresh
// uniform destination at a speed drawn uniformly from [MinSpeed, MaxSpeed],
// then pauses for Pause. MinSpeed defaults to 0.1 m/s to avoid the
// well-known random-waypoint artifact of nodes becoming permanently stuck at
// near-zero speed.
type Waypoint struct {
	field    geom.Rect
	minSpeed float64
	maxSpeed float64
	pause    sim.Time
	rng      *rand.Rand

	legs []leg // covers [0, legs[len-1].end)
}

var _ Model = (*Waypoint)(nil)

type leg struct {
	start, end sim.Time
	from, to   geom.Point // equal while pausing
}

// WaypointConfig parameterizes NewWaypoint.
type WaypointConfig struct {
	Field    geom.Rect
	MinSpeed float64  // m/s; defaults to 0.1 if <= 0
	MaxSpeed float64  // m/s; must be >= MinSpeed
	Pause    sim.Time // dwell time at each waypoint
	Start    geom.Point
}

// NewWaypoint creates a random waypoint model. The rng must be dedicated to
// this node (see sim.Stream) to keep trajectories reproducible.
func NewWaypoint(cfg WaypointConfig, rng *rand.Rand) *Waypoint {
	minSpeed := cfg.MinSpeed
	if minSpeed <= 0 {
		minSpeed = 0.1
	}
	maxSpeed := cfg.MaxSpeed
	if maxSpeed < minSpeed {
		maxSpeed = minSpeed
	}
	w := &Waypoint{
		field:    cfg.Field,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		pause:    cfg.Pause,
		rng:      rng,
	}
	// Nodes begin paused at their start position, matching ns-2 setdest.
	w.legs = append(w.legs, leg{start: 0, end: cfg.Pause, from: cfg.Start, to: cfg.Start})
	return w
}

// PositionAt implements Model.
func (w *Waypoint) PositionAt(t sim.Time) geom.Point {
	if t < 0 {
		t = 0
	}
	w.extendTo(t)
	return legPosition(w.legs, t)
}

// legPosition interpolates a position on a leg list covering instant t
// (binary search; legs are contiguous and sorted by time).
func legPosition(legs []leg, t sim.Time) geom.Point {
	lo, hi := 0, len(legs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if legs[mid].end <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l := legs[lo]
	if l.from == l.to || l.end == l.start {
		return l.from
	}
	f := float64(t-l.start) / float64(l.end-l.start)
	if f > 1 {
		f = 1
	}
	return l.from.Lerp(l.to, f)
}

// extendTo appends legs until the trajectory covers instant t.
func (w *Waypoint) extendTo(t sim.Time) {
	for w.legs[len(w.legs)-1].end <= t {
		last := w.legs[len(w.legs)-1]
		from := last.to
		to := w.field.RandomPoint(w.rng)
		speed := w.minSpeed + w.rng.Float64()*(w.maxSpeed-w.minSpeed)
		dist := from.DistanceTo(to)
		dur := sim.FromSeconds(dist / speed)
		if dur < sim.Microsecond {
			dur = sim.Microsecond
		}
		move := leg{start: last.end, end: last.end + dur, from: from, to: to}
		w.legs = append(w.legs, move)
		if w.pause > 0 {
			w.legs = append(w.legs, leg{
				start: move.end, end: move.end + w.pause, from: to, to: to,
			})
		}
	}
}
