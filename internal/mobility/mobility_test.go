package mobility

import (
	"testing"

	"rcast/internal/geom"
	"rcast/internal/sim"
)

var testField = geom.Rect{W: 1500, H: 300}

func newTestWaypoint(t *testing.T, pause sim.Time, seed int64) *Waypoint {
	t.Helper()
	return NewWaypoint(WaypointConfig{
		Field:    testField,
		MaxSpeed: 20,
		Pause:    pause,
		Start:    geom.Point{X: 750, Y: 150},
	}, sim.Stream(seed, "mob"))
}

func TestStaticNeverMoves(t *testing.T) {
	s := Static{P: geom.Point{X: 10, Y: 20}}
	for _, at := range []sim.Time{0, sim.Second, 1125 * sim.Second} {
		if got := s.PositionAt(at); got != s.P {
			t.Fatalf("PositionAt(%v) = %v, want %v", at, got, s.P)
		}
	}
}

func TestWaypointStartsAtStart(t *testing.T) {
	w := newTestWaypoint(t, 0, 1)
	if got := w.PositionAt(0); got != (geom.Point{X: 750, Y: 150}) {
		t.Fatalf("PositionAt(0) = %v", got)
	}
}

func TestWaypointStaysInField(t *testing.T) {
	w := newTestWaypoint(t, 5*sim.Second, 2)
	for s := 0; s <= 1125; s++ {
		p := w.PositionAt(sim.Time(s) * sim.Second)
		if !testField.Contains(p) {
			t.Fatalf("left the field at t=%ds: %v", s, p)
		}
	}
}

func TestWaypointSpeedBounded(t *testing.T) {
	w := newTestWaypoint(t, 0, 3)
	const dt = 100 * sim.Millisecond
	prev := w.PositionAt(0)
	for s := sim.Time(dt); s <= 600*sim.Second; s += dt {
		cur := w.PositionAt(s)
		speed := prev.DistanceTo(cur) / dt.Seconds()
		// Allow slack for the instant a leg boundary falls inside dt.
		if speed > 2*20+1 {
			t.Fatalf("speed %v m/s at t=%v exceeds bound", speed, s)
		}
		prev = cur
	}
}

func TestWaypointPausesAtWaypoints(t *testing.T) {
	w := newTestWaypoint(t, 60*sim.Second, 4)
	// The node is paused during [0, 60s): position must not change.
	p0 := w.PositionAt(0)
	p1 := w.PositionAt(30 * sim.Second)
	if p0 != p1 {
		t.Fatalf("node moved during initial pause: %v -> %v", p0, p1)
	}
	p2 := w.PositionAt(61 * sim.Second)
	if p2 == p0 {
		t.Fatalf("node did not start moving after pause")
	}
}

func TestWaypointDeterministic(t *testing.T) {
	a := newTestWaypoint(t, 10*sim.Second, 7)
	b := newTestWaypoint(t, 10*sim.Second, 7)
	for s := 0; s <= 300; s += 13 {
		at := sim.Time(s) * sim.Second
		if a.PositionAt(at) != b.PositionAt(at) {
			t.Fatalf("same-seed trajectories diverge at t=%v", at)
		}
	}
}

func TestWaypointDifferentSeedsDiverge(t *testing.T) {
	a := newTestWaypoint(t, 0, 8)
	b := newTestWaypoint(t, 0, 9)
	diverged := false
	for s := 1; s <= 300; s++ {
		at := sim.Time(s) * sim.Second
		if a.PositionAt(at) != b.PositionAt(at) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestWaypointOutOfOrderQueriesConsistent(t *testing.T) {
	w := newTestWaypoint(t, 5*sim.Second, 10)
	forward := make([]geom.Point, 0, 100)
	for s := 0; s < 100; s++ {
		forward = append(forward, w.PositionAt(sim.Time(s)*sim.Second))
	}
	for s := 99; s >= 0; s-- {
		if got := w.PositionAt(sim.Time(s) * sim.Second); got != forward[s] {
			t.Fatalf("out-of-order query at t=%ds: %v != %v", s, got, forward[s])
		}
	}
}

func TestWaypointNegativeTimeClamped(t *testing.T) {
	w := newTestWaypoint(t, 0, 11)
	if got := w.PositionAt(-sim.Second); got != w.PositionAt(0) {
		t.Fatalf("negative time not clamped: %v", got)
	}
}

func TestWaypointMinSpeedDefault(t *testing.T) {
	// MaxSpeed below default MinSpeed should be lifted to MinSpeed, not
	// produce a zero or negative speed range.
	w := NewWaypoint(WaypointConfig{
		Field:    testField,
		MaxSpeed: 0.01,
		Start:    geom.Point{X: 1, Y: 1},
	}, sim.Stream(12, "mob"))
	if got := w.PositionAt(1000 * sim.Second); !testField.Contains(got) {
		t.Fatalf("position %v outside field", got)
	}
	if w.minSpeed != 0.1 || w.maxSpeed != 0.1 {
		t.Fatalf("speed bounds = [%v, %v], want [0.1, 0.1]", w.minSpeed, w.maxSpeed)
	}
}

func TestWaypointMobilityIncreasesWithLowPause(t *testing.T) {
	// Displacement over a long window should be larger with no pause than
	// with a huge pause.
	mobile := newTestWaypoint(t, 0, 13)
	parked := newTestWaypoint(t, 1125*sim.Second, 13)
	var dMobile, dParked float64
	for s := 0; s < 600; s += 10 {
		at := sim.Time(s) * sim.Second
		next := at + 10*sim.Second
		dMobile += mobile.PositionAt(at).DistanceTo(mobile.PositionAt(next))
		dParked += parked.PositionAt(at).DistanceTo(parked.PositionAt(next))
	}
	if dMobile <= dParked {
		t.Fatalf("mobile travelled %v m <= parked %v m", dMobile, dParked)
	}
	if dParked != 0 {
		t.Fatalf("node with pause=simtime moved %v m, want 0", dParked)
	}
}
