package mobility

import (
	"math"
	"testing"

	"rcast/internal/geom"
	"rcast/internal/sim"
)

func newTestGM(seed int64) *GaussMarkov {
	return NewGaussMarkov(GaussMarkovConfig{
		Field:    testField,
		MinSpeed: 1,
		MaxSpeed: 20,
		Start:    geom.Point{X: 750, Y: 150},
	}, sim.Stream(seed, "gm"))
}

func TestGaussMarkovStaysInField(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := newTestGM(seed)
		for s := 0; s <= 1125; s++ {
			p := g.PositionAt(sim.Time(s) * sim.Second)
			if !testField.Contains(p) {
				t.Fatalf("seed %d left the field at t=%ds: %v", seed, s, p)
			}
		}
	}
}

func TestGaussMarkovSpeedBounded(t *testing.T) {
	g := newTestGM(2)
	const dt = 100 * sim.Millisecond
	prev := g.PositionAt(0)
	for at := sim.Time(dt); at <= 600*sim.Second; at += dt {
		cur := g.PositionAt(at)
		speed := prev.DistanceTo(cur) / dt.Seconds()
		// A reflection inside dt can fold the path; allow the same slack as
		// the waypoint test.
		if speed > 2*20+1 {
			t.Fatalf("speed %v m/s at t=%v exceeds bound", speed, at)
		}
		prev = cur
	}
}

func TestGaussMarkovDeterministicAnyQueryOrder(t *testing.T) {
	a, b := newTestGM(7), newTestGM(7)
	// Query b backwards: the lazily extended leg list must make positions a
	// pure function of time regardless of order.
	forward := make([]geom.Point, 301)
	for s := 0; s <= 300; s++ {
		forward[s] = a.PositionAt(sim.Time(s) * sim.Second)
	}
	for s := 300; s >= 0; s-- {
		if got := b.PositionAt(sim.Time(s) * sim.Second); got != forward[s] {
			t.Fatalf("query-order dependence at t=%ds: %v != %v", s, got, forward[s])
		}
	}
}

func TestGaussMarkovSeedsDiverge(t *testing.T) {
	a, b := newTestGM(1), newTestGM(2)
	for s := 1; s <= 300; s++ {
		at := sim.Time(s) * sim.Second
		if a.PositionAt(at) != b.PositionAt(at) {
			return
		}
	}
	t.Fatal("different seeds produced identical trajectories")
}

// TestGaussMarkovMoves distinguishes the model from a parked node and
// checks temporal correlation: over one tick the direction rarely reverses
// (α=0.75 memory), unlike a memoryless random walk.
func TestGaussMarkovMoves(t *testing.T) {
	g := newTestGM(3)
	var travelled float64
	reversals, steps := 0, 0
	prev := g.PositionAt(0)
	prevDir := math.NaN()
	for s := 1; s <= 600; s++ {
		cur := g.PositionAt(sim.Time(s) * sim.Second)
		travelled += prev.DistanceTo(cur)
		dir := math.Atan2(cur.Y-prev.Y, cur.X-prev.X)
		if !math.IsNaN(prevDir) {
			delta := math.Abs(math.Mod(dir-prevDir+3*math.Pi, 2*math.Pi) - math.Pi)
			if delta > math.Pi/2 {
				reversals++
			}
			steps++
		}
		prev, prevDir = cur, dir
	}
	if travelled < 600 {
		t.Fatalf("travelled only %v m in 600 s with speeds in [1,20]", travelled)
	}
	if frac := float64(reversals) / float64(steps); frac > 0.25 {
		t.Fatalf("%.0f%% of ticks turned > 90°; trajectory has no memory", 100*frac)
	}
}

func TestGroupMemberStaysNearReference(t *testing.T) {
	const radius = 50.0
	ref := NewWaypoint(WaypointConfig{
		Field:    testField,
		MaxSpeed: 20,
		Start:    geom.Point{X: 750, Y: 150},
	}, sim.Stream(1, "group-ref"))
	box := geom.Rect{W: 2 * radius, H: 2 * radius}
	local := NewWaypoint(WaypointConfig{
		Field:    box,
		MaxSpeed: 5,
		Start:    geom.Point{X: radius, Y: radius},
	}, sim.Stream(2, "group-local"))
	m := Member{Field: testField, Ref: ref, Local: local, Center: geom.Point{X: radius, Y: radius}}
	// The member's offset from the reference is bounded by the box
	// half-diagonal (except where the field clamp pulls it further).
	maxOff := math.Hypot(radius, radius) + 1e-9
	for s := 0; s <= 1125; s++ {
		at := sim.Time(s) * sim.Second
		p := m.PositionAt(at)
		if !testField.Contains(p) {
			t.Fatalf("member left the field at t=%ds: %v", s, p)
		}
		r := ref.PositionAt(at)
		if testField.Contains(r) {
			interior := r.X > radius && r.X < testField.W-radius &&
				r.Y > radius && r.Y < testField.H-radius
			if interior && p.DistanceTo(r) > maxOff {
				t.Fatalf("member strayed %v m from reference at t=%ds (max %v)",
					p.DistanceTo(r), s, maxOff)
			}
		}
	}
}

func TestGroupMembersShareReference(t *testing.T) {
	const radius = 40.0
	ref := NewWaypoint(WaypointConfig{
		Field:    testField,
		MaxSpeed: 20,
		Start:    geom.Point{X: 400, Y: 100},
	}, sim.Stream(3, "group-ref"))
	box := geom.Rect{W: 2 * radius, H: 2 * radius}
	center := geom.Point{X: radius, Y: radius}
	mk := func(seed int64) Member {
		return Member{
			Field: testField,
			Ref:   ref,
			Local: NewWaypoint(WaypointConfig{Field: box, MaxSpeed: 5, Start: center},
				sim.Stream(seed, "group-local")),
			Center: center,
		}
	}
	a, b := mk(10), mk(11)
	// Two members of one group stay within 2×(box diagonal) of each other
	// and their trajectories differ (distinct local wander).
	maxGap := 2*math.Hypot(radius, radius) + 1e-9
	differ := false
	for s := 0; s <= 600; s++ {
		at := sim.Time(s) * sim.Second
		pa, pb := a.PositionAt(at), b.PositionAt(at)
		if pa.DistanceTo(pb) > maxGap {
			t.Fatalf("group members %v m apart at t=%ds (max %v)", pa.DistanceTo(pb), s, maxGap)
		}
		if pa != pb {
			differ = true
		}
	}
	if !differ {
		t.Fatal("two members never separated; local wander missing")
	}
}

// TestGroupMemberOutOfOrderQueries: Member composes pure models, so it must
// be pure too even when ref and local are queried through multiple members.
func TestGroupMemberOutOfOrderQueries(t *testing.T) {
	const radius = 30.0
	ref := NewWaypoint(WaypointConfig{
		Field:    testField,
		MaxSpeed: 15,
		Start:    geom.Point{X: 200, Y: 200},
	}, sim.Stream(5, "group-ref"))
	box := geom.Rect{W: 2 * radius, H: 2 * radius}
	center := geom.Point{X: radius, Y: radius}
	m := Member{
		Field: testField,
		Ref:   ref,
		Local: NewWaypoint(WaypointConfig{Field: box, MaxSpeed: 5, Start: center},
			sim.Stream(6, "group-local")),
		Center: center,
	}
	forward := make([]geom.Point, 101)
	for s := 0; s <= 100; s++ {
		forward[s] = m.PositionAt(sim.Time(s) * sim.Second)
	}
	for s := 100; s >= 0; s-- {
		if got := m.PositionAt(sim.Time(s) * sim.Second); got != forward[s] {
			t.Fatalf("out-of-order query at t=%ds: %v != %v", s, got, forward[s])
		}
	}
}
