package mobility

import (
	"rcast/internal/geom"
	"rcast/internal/sim"
)

// Shift is a timed displacement window: between Start and Stop the node's
// position is offset by Offset, ramping linearly in over [Start, Start+Ramp]
// and out over [Stop-Ramp, Stop]. The ramp bounds the extra speed the shift
// adds (Offset.Norm()/Ramp), which callers must fold into the channel's
// declared motion bound. A Shift with Ramp <= 0 degenerates to an
// instantaneous (unbounded-speed) jump and is rejected by MaxExtraSpeed
// returning +Inf; construct shifts with a positive ramp.
type Shift struct {
	Start, Stop sim.Time
	Ramp        sim.Time
	Offset      geom.Point
}

// factor returns the displacement fraction in [0, 1] applied at instant t.
func (s Shift) factor(t sim.Time) float64 {
	if t <= s.Start || t >= s.Stop {
		return 0
	}
	if s.Ramp <= 0 {
		return 1
	}
	if d := t - s.Start; d < s.Ramp {
		return float64(d) / float64(s.Ramp)
	}
	if d := s.Stop - t; d < s.Ramp {
		return float64(d) / float64(s.Ramp)
	}
	return 1
}

// MaxExtraSpeed returns the largest speed (m/s) the shift adds on top of
// the base model's own motion.
func (s Shift) MaxExtraSpeed() float64 {
	if s.Ramp <= 0 {
		return inf
	}
	return s.Offset.Norm() / s.Ramp.Seconds()
}

var inf = func() float64 { var z float64; return 1 / z }()

// Shifted wraps a base model with timed displacement overrides (partition
// faults). Like every Model it is a pure function of time: the shift factor
// is computed analytically, so arbitrary and out-of-order queries stay
// consistent and the per-instant position cache in phy remains valid.
type Shifted struct {
	Base   Model
	Shifts []Shift
}

var _ Model = (*Shifted)(nil)

// PositionAt implements Model.
func (s *Shifted) PositionAt(t sim.Time) geom.Point {
	p := s.Base.PositionAt(t)
	for _, sh := range s.Shifts {
		if f := sh.factor(t); f > 0 {
			p = p.Add(sh.Offset.Scale(f))
		}
	}
	return p
}
