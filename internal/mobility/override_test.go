package mobility

import (
	"math"
	"testing"

	"rcast/internal/geom"
	"rcast/internal/sim"
)

func TestShiftFactorRampsInAndOut(t *testing.T) {
	s := Shift{
		Start:  10 * sim.Second,
		Stop:   30 * sim.Second,
		Ramp:   5 * sim.Second,
		Offset: geom.Point{Y: 100},
	}
	cases := []struct {
		at   sim.Time
		want float64
	}{
		{0, 0},
		{10 * sim.Second, 0},           // window edges are exclusive
		{12500 * sim.Millisecond, 0.5}, // halfway up the ramp
		{15 * sim.Second, 1},           // plateau start
		{20 * sim.Second, 1},           // plateau
		{27500 * sim.Millisecond, 0.5}, // halfway down
		{30 * sim.Second, 0},           // closed again
		{40 * sim.Second, 0},
	}
	for _, tc := range cases {
		if got := s.factor(tc.at); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("factor(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestShiftedIsPureFunctionOfTime(t *testing.T) {
	base := Static{P: geom.Point{X: 3, Y: 4}}
	m := &Shifted{Base: base, Shifts: []Shift{{
		Start: sim.Second, Stop: 5 * sim.Second, Ramp: sim.Second,
		Offset: geom.Point{X: 10},
	}}}
	mid := m.PositionAt(3 * sim.Second)
	if want := (geom.Point{X: 13, Y: 4}); mid != want {
		t.Errorf("plateau position %v, want %v", mid, want)
	}
	// Out-of-order and repeated queries must agree (phy caches positions
	// per instant and the grid re-queries arbitrarily).
	early := m.PositionAt(0)
	if again := m.PositionAt(3 * sim.Second); again != mid {
		t.Errorf("repeat query diverged: %v vs %v", again, mid)
	}
	if want := base.P; early != want {
		t.Errorf("pre-window position %v, want base %v", early, want)
	}
}

func TestShiftMaxExtraSpeed(t *testing.T) {
	s := Shift{Ramp: 2 * sim.Second, Offset: geom.Point{X: 30, Y: 40}}
	if got := s.MaxExtraSpeed(); math.Abs(got-25) > 1e-12 {
		t.Errorf("MaxExtraSpeed = %v, want 25 (|offset| 50 m over 2 s)", got)
	}
	if got := (Shift{Offset: geom.Point{X: 1}}).MaxExtraSpeed(); !math.IsInf(got, 1) {
		t.Errorf("zero-ramp shift speed = %v, want +Inf", got)
	}
}
