// Package odpm implements On-Demand Power Management (Zheng & Kravets,
// INFOCOM 2003), the baseline the paper compares Rcast against.
//
// An ODPM node switches between 802.11 active mode (AM) and power-save (PS)
// mode based on communication events: receiving a RREP keeps it in AM for
// 5 seconds, and sending/receiving/forwarding a data packet (or being a
// flow endpoint) keeps it in AM for 2 seconds — the timeout values the
// Rcast paper takes from the original ODPM work (§4.1). While in AM a node
// never sleeps and may exchange data immediately with other AM nodes
// instead of waiting for the next beacon interval.
package odpm

import (
	"rcast/internal/mac"
	"rcast/internal/sim"
)

// Timeout defaults from the ODPM paper, as quoted by the Rcast paper.
const (
	DefaultRREPKeepAlive = 5 * sim.Second
	DefaultDataKeepAlive = 2 * sim.Second
)

// Manager drives one node's AM/PS switching. It is glued to the routing
// layer via dsr.Hooks (OnRREP/OnData) and to the MAC via mac.PSM.ExtendAM.
type Manager struct {
	sched *sim.Scheduler
	psm   *mac.PSM

	rrepKeepAlive sim.Time
	dataKeepAlive sim.Time

	rrepEvents uint64
	dataEvents uint64
}

// New creates a manager for one node. Non-positive keep-alives select the
// ODPM paper defaults.
func New(sched *sim.Scheduler, psm *mac.PSM, rrepKeepAlive, dataKeepAlive sim.Time) *Manager {
	if rrepKeepAlive <= 0 {
		rrepKeepAlive = DefaultRREPKeepAlive
	}
	if dataKeepAlive <= 0 {
		dataKeepAlive = DefaultDataKeepAlive
	}
	return &Manager{
		sched:         sched,
		psm:           psm,
		rrepKeepAlive: rrepKeepAlive,
		dataKeepAlive: dataKeepAlive,
	}
}

// OnRREP records a received route reply: traffic is imminent, stay in AM.
func (m *Manager) OnRREP() {
	m.rrepEvents++
	m.psm.ExtendAM(m.sched.Now() + m.rrepKeepAlive)
}

// OnDataActivity records sending, receiving or forwarding a data packet.
func (m *Manager) OnDataActivity() {
	m.dataEvents++
	m.psm.ExtendAM(m.sched.Now() + m.dataKeepAlive)
}

// Events returns (rrepEvents, dataEvents) for diagnostics.
func (m *Manager) Events() (rrep, data uint64) { return m.rrepEvents, m.dataEvents }
