package odpm

import (
	"testing"

	"rcast/internal/core"
	"rcast/internal/energy"
	"rcast/internal/geom"
	"rcast/internal/mac"
	"rcast/internal/mobility"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

func newPSM(t *testing.T) (*sim.Scheduler, *mac.PSM) {
	t.Helper()
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, 250)
	radio := ch.AddRadio(0, mobility.Static{P: geom.Point{}})
	meter := energy.NewMeter(0, 0, 0)
	psm := mac.NewPSM(sched, ch, radio, meter, core.None{}, sim.Stream(1, "m"), mac.DefaultParams(), nil)
	return sched, psm
}

func TestDefaultsMatchODPMPaper(t *testing.T) {
	sched, psm := newPSM(t)
	m := New(sched, psm, 0, 0)
	if m.rrepKeepAlive != 5*sim.Second || m.dataKeepAlive != 2*sim.Second {
		t.Fatalf("defaults = %v/%v, want 5s/2s", m.rrepKeepAlive, m.dataKeepAlive)
	}
}

func TestRREPKeepsNodeInAMForFiveSeconds(t *testing.T) {
	sched, psm := newPSM(t)
	m := New(sched, psm, 0, 0)
	m.OnRREP()
	if !psm.InAM(4 * sim.Second) {
		t.Fatal("not in AM 4s after RREP")
	}
	if psm.InAM(6 * sim.Second) {
		t.Fatal("still in AM 6s after RREP")
	}
}

func TestDataActivityKeepsNodeInAMForTwoSeconds(t *testing.T) {
	sched, psm := newPSM(t)
	m := New(sched, psm, 0, 0)
	m.OnDataActivity()
	if !psm.InAM(1900*sim.Millisecond) || psm.InAM(2100*sim.Millisecond) {
		t.Fatal("data keep-alive window wrong")
	}
}

func TestRepeatedActivityExtendsWindow(t *testing.T) {
	sched, psm := newPSM(t)
	m := New(sched, psm, 0, 0)
	m.OnDataActivity()
	sched.After(1500*sim.Millisecond, func() { m.OnDataActivity() })
	sched.RunUntil(1500 * sim.Millisecond)
	if !psm.InAM(3 * sim.Second) {
		t.Fatal("refresh did not extend the AM window")
	}
	rrep, data := m.Events()
	if rrep != 0 || data != 2 {
		t.Fatalf("events = %d/%d", rrep, data)
	}
}

func TestShorterEventDoesNotShrinkWindow(t *testing.T) {
	sched, psm := newPSM(t)
	m := New(sched, psm, 0, 0)
	m.OnRREP()         // AM until 5s
	m.OnDataActivity() // would be 2s; must not shrink
	if !psm.InAM(4 * sim.Second) {
		t.Fatal("data event shrank the RREP keep-alive")
	}
	_ = sched
}
