package phy

import (
	"testing"

	"rcast/internal/geom"
	"rcast/internal/mobility"
	"rcast/internal/sim"
)

type sink struct{ n int }

func (s *sink) OnFrame(Frame) { s.n++ }

// benchCell builds a single-cell topology: n radios within mutual range, so
// every transmission fans out to n-1 receivers through one batched event.
func benchCell(n int) (*sim.Scheduler, *Channel, []*Radio) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, 250)
	radios := make([]*Radio, n)
	for i := 0; i < n; i++ {
		radios[i] = ch.AddRadio(NodeID(i), mobility.Static{P: geom.Point{X: float64(i)}})
		radios[i].SetReceiver(&sink{})
	}
	return sched, ch, radios
}

// BenchmarkTransmitBatchedDelivery measures one full broadcast delivery
// cycle — Transmit, one batch event, per-receiver finishReception — with
// the batch and delivery pools warm. Expected steady-state allocations: 0.
func BenchmarkTransmitBatchedDelivery(b *testing.B) {
	sched, ch, radios := benchCell(16)
	f := Frame{From: 0, To: Broadcast, Bytes: 512}
	// Warm the pools and the spatial index.
	ch.Transmit(radios[0], f, 2)
	sched.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Transmit(radios[i%16], f, 2)
		sched.Run()
	}
}

// BenchmarkTransmitFrameAlloc isolates the transmit-side setup cost:
// batch/delivery acquisition and candidate lookup, without running the
// scheduler (the pending finish event is left to accumulate and the
// scheduler drained outside the timed region periodically).
func BenchmarkTransmitFrameAlloc(b *testing.B) {
	sched, ch, radios := benchCell(16)
	f := Frame{From: 0, To: Broadcast, Bytes: 64}
	ch.Transmit(radios[0], f, 2)
	sched.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Transmit(radios[i%16], f, 2)
		sched.Run()
	}
}

// BenchmarkVisitNeighbors measures the allocation-free neighbor visitation
// used by the PSM churn estimator.
func BenchmarkVisitNeighbors(b *testing.B) {
	_, ch, radios := benchCell(64)
	count := 0
	visit := func(NodeID) { count++ }
	ch.VisitNeighbors(radios[0], 0, visit)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.VisitNeighbors(radios[i%64], 0, visit)
	}
}
