package phy

import (
	"math"
	bits64 "math/bits"

	"rcast/internal/geom"
	"rcast/internal/sim"
)

// grid is a uniform spatial index over radio positions. Cell edge length
// equals the decode range R, so the radios decodable from a point always
// live in a bounded neighbourhood of cells around it instead of requiring a
// scan over every radio on the channel.
//
// Positions move continuously under mobility, so bins are allowed to go
// stale: a radio's binned position may drift up to slack metres from its
// true position before the grid re-bins. Queries compensate by scanning all
// cells intersecting a disk of radius R+slack and exact-checking every
// candidate, which keeps grid answers identical to the exhaustive scan.
// With a declared motion bound v (m/s) the drift after t simulated seconds
// is at most v*t, so one O(N) re-bin buys slack/v seconds of O(area)
// queries.
//
// Cells are stored in CSR form over the bounding box of occupied cells:
// cellStart[lin] .. cellStart[lin+1] delimits cell lin's radio indices in
// cellIdx, with lin = (cx-minX)*h + (cy-minY). A column-major linear index
// makes the cy-range of one cx column a single contiguous run, so a query
// touches at most three contiguous slices and performs no map lookups.
// gridScanThreshold is the population below which queries skip the CSR
// index and linearly scan the per-radio cell keys instead: four int32
// compares per radio beat the scatter/gather constant factor until the
// candidate set is a small fraction of the population.
const gridScanThreshold = 512

type grid struct {
	cell  float64 // cell edge length (= decode range), metres
	slack float64 // tolerated bin drift before re-binning, metres

	n          int     // registered radios at last rebin
	minX, minY int32   // cell coords of the bounding box origin
	w, h       int32   // bounding box extent, in cells
	cellStart  []int32 // CSR cell offsets into cellIdx, len w*h+1
	cellIdx    []int32 // radio indices, ascending within each cell
	keys       []gridKey
	bits       []uint64 // scratch: candidate bitmap, one bit per radio
	binTime    sim.Time
	valid      bool
}

type gridKey struct{ cx, cy int32 }

func (g *grid) keyFor(p geom.Point) gridKey {
	return gridKey{
		cx: int32(math.Floor(p.X / g.cell)),
		cy: int32(math.Floor(p.Y / g.cell)),
	}
}

// stale reports whether bins built at binTime may have drifted more than
// slack by instant now, given the channel's motion bound.
func (g *grid) stale(now sim.Time, motionBound float64) bool {
	if !g.valid {
		return true
	}
	if motionBound <= 0 || now == g.binTime {
		return false
	}
	dt := now - g.binTime
	if dt < 0 {
		dt = -dt
	}
	return dt.Seconds()*motionBound > g.slack
}

// rebin rebuilds every bin from radio positions at instant now. Radios are
// visited in registration order, so each cell's index run is ascending.
func (g *grid) rebin(radios []*Radio, now sim.Time) {
	n := len(radios)
	g.n = n
	g.binTime = now
	g.valid = true
	if n == 0 {
		g.w, g.h = 0, 0
		return
	}
	if cap(g.keys) < n {
		g.keys = make([]gridKey, n)
	}
	ks := g.keys[:n]
	if n <= gridScanThreshold {
		// Small population: queries scan the keys directly, no CSR needed.
		for i, r := range radios {
			ks[i] = g.keyFor(r.Position(now))
		}
		return
	}
	minX, minY := int32(math.MaxInt32), int32(math.MaxInt32)
	maxX, maxY := int32(math.MinInt32), int32(math.MinInt32)
	for i, r := range radios {
		k := g.keyFor(r.Position(now))
		ks[i] = k
		minX, maxX = min(minX, k.cx), max(maxX, k.cx)
		minY, maxY = min(minY, k.cy), max(maxY, k.cy)
	}
	g.minX, g.minY = minX, minY
	g.w, g.h = maxX-minX+1, maxY-minY+1
	h := g.h
	cells := int(g.w) * int(h)
	if cap(g.cellStart) < cells+1 {
		g.cellStart = make([]int32, cells+1)
	} else {
		g.cellStart = g.cellStart[:cells+1]
		clear(g.cellStart)
	}
	start := g.cellStart
	for _, k := range ks {
		start[(k.cx-minX)*h+(k.cy-minY)+1]++
	}
	for c := 1; c <= cells; c++ {
		start[c] += start[c-1]
	}
	if cap(g.cellIdx) < n {
		g.cellIdx = make([]int32, n)
	}
	g.cellIdx = g.cellIdx[:n]
	// Counting-sort fill: place each radio at its cell's cursor. This walks
	// the cursors forward, so afterwards start[c] holds cell c's end offset;
	// the backward pass shifts the array so start[c] is cell c's begin again.
	for i, k := range ks {
		lin := (k.cx-minX)*h + (k.cy - minY)
		g.cellIdx[start[lin]] = int32(i)
		start[lin]++
	}
	for c := cells; c > 0; c-- {
		start[c] = start[c-1]
	}
	start[0] = 0
	if words := (n + 63) / 64; len(g.bits) < words {
		g.bits = make([]uint64, words)
	}
}

// candidates appends to buf the indices of every radio whose bin intersects
// the disk of the given radius (plus the drift slack) around p, and returns
// buf sorted ascending. The result is a superset of the radios truly within
// radius of p; callers exact-check distances, in registration order.
//
// The union of the touched cells is produced through a bitmap with one bit
// per registered radio: scatter every cell run's indices into the bitmap,
// then read the set bits back in index order. That yields the ascending
// order a sort would (indices are unique across cells) at the cost of one
// pass over candidates plus one pass over the — at realistic scales, one or
// two — bitmap words, with no allocation and no comparison sort.
func (g *grid) candidates(p geom.Point, radius float64, buf []int32) []int32 {
	buf = buf[:0]
	if g.n == 0 {
		return buf
	}
	reach := radius + g.slack
	lo := g.keyFor(geom.Point{X: p.X - reach, Y: p.Y - reach})
	hi := g.keyFor(geom.Point{X: p.X + reach, Y: p.Y + reach})
	if g.n <= gridScanThreshold {
		for i, k := range g.keys[:g.n] {
			if k.cx >= lo.cx && k.cx <= hi.cx && k.cy >= lo.cy && k.cy <= hi.cy {
				buf = append(buf, int32(i))
			}
		}
		return buf
	}
	cxLo, cxHi := max(lo.cx, g.minX), min(hi.cx, g.minX+g.w-1)
	cyLo, cyHi := max(lo.cy, g.minY), min(hi.cy, g.minY+g.h-1)
	if cxLo > cxHi || cyLo > cyHi {
		return buf
	}
	bits := g.bits
	h := g.h
	for cx := cxLo; cx <= cxHi; cx++ {
		base := (cx - g.minX) * h
		s := g.cellStart[base+(cyLo-g.minY)]
		e := g.cellStart[base+(cyHi-g.minY)+1]
		for _, i := range g.cellIdx[s:e] {
			bits[i>>6] |= 1 << (uint32(i) & 63)
		}
	}
	for w, word := range bits {
		base := int32(w << 6)
		for word != 0 {
			buf = append(buf, base+int32(bits64.TrailingZeros64(word)))
			word &= word - 1
		}
		bits[w] = 0
	}
	return buf
}
