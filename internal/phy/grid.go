package phy

import (
	"math"
	"slices"

	"rcast/internal/geom"
	"rcast/internal/sim"
)

// grid is a uniform spatial index over radio positions. Cell edge length
// equals the decode range R, so the radios decodable from a point always
// live in a bounded neighbourhood of cells around it instead of requiring a
// scan over every radio on the channel.
//
// Positions move continuously under mobility, so bins are allowed to go
// stale: a radio's binned position may drift up to slack metres from its
// true position before the grid re-bins. Queries compensate by scanning all
// cells intersecting a disk of radius R+slack and exact-checking every
// candidate, which keeps grid answers identical to the exhaustive scan.
// With a declared motion bound v (m/s) the drift after t simulated seconds
// is at most v*t, so one O(N) re-bin buys slack/v seconds of O(area)
// queries.
type grid struct {
	cell  float64 // cell edge length (= decode range), metres
	slack float64 // tolerated bin drift before re-binning, metres

	cells   map[gridKey][]int32 // radio indices, ascending within a cell
	binTime sim.Time
	valid   bool
}

type gridKey struct{ cx, cy int32 }

func (g *grid) keyFor(p geom.Point) gridKey {
	return gridKey{
		cx: int32(math.Floor(p.X / g.cell)),
		cy: int32(math.Floor(p.Y / g.cell)),
	}
}

// stale reports whether bins built at binTime may have drifted more than
// slack by instant now, given the channel's motion bound.
func (g *grid) stale(now sim.Time, motionBound float64) bool {
	if !g.valid {
		return true
	}
	if motionBound <= 0 || now == g.binTime {
		return false
	}
	dt := now - g.binTime
	if dt < 0 {
		dt = -dt
	}
	return dt.Seconds()*motionBound > g.slack
}

// rebin rebuilds every bin from radio positions at instant now. Radios are
// visited in registration order, so each cell's index list is ascending.
func (g *grid) rebin(radios []*Radio, now sim.Time) {
	if g.cells == nil {
		g.cells = make(map[gridKey][]int32)
	}
	clear(g.cells)
	for i, r := range radios {
		k := g.keyFor(r.Position(now))
		g.cells[k] = append(g.cells[k], int32(i))
	}
	g.binTime = now
	g.valid = true
}

// candidates appends to buf the indices of every radio whose bin intersects
// the disk of the given radius (plus the drift slack) around p, and returns
// buf sorted ascending. The result is a superset of the radios truly within
// radius of p; callers exact-check distances, in registration order.
func (g *grid) candidates(p geom.Point, radius float64, buf []int32) []int32 {
	reach := radius + g.slack
	lo := g.keyFor(geom.Point{X: p.X - reach, Y: p.Y - reach})
	hi := g.keyFor(geom.Point{X: p.X + reach, Y: p.Y + reach})
	buf = buf[:0]
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			buf = append(buf, g.cells[gridKey{cx: cx, cy: cy}]...)
		}
	}
	slices.Sort(buf)
	return buf
}
