package phy

import (
	"math/rand"
	"testing"

	"rcast/internal/geom"
	"rcast/internal/mobility"
	"rcast/internal/sim"
)

// bruteNeighbors recomputes a radio's neighbor list by exhaustive pairwise
// distance checks, the reference the grid index must reproduce exactly.
func bruteNeighbors(ch *Channel, of *Radio, now sim.Time) []NodeID {
	p := of.Position(now)
	var out []NodeID
	for _, r := range ch.radios {
		if r == of {
			continue
		}
		if p.DistanceTo(r.Position(now)) <= ch.rangeM {
			out = append(out, r.id)
		}
	}
	return out
}

func sameIDs(t *testing.T, got, want []NodeID, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", context, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: got %v, want %v", context, got, want)
		}
	}
}

// TestGridMatchesBruteForceStatic places radios uniformly at random and
// checks that the grid-backed Neighbors/CountNeighbors/InRange agree with
// the exhaustive scan for every node, including positions near cell
// boundaries and outside the nominal field.
func TestGridMatchesBruteForceStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		sched := sim.NewScheduler()
		rangeM := 50 + 300*rng.Float64()
		ch := NewChannel(sched, rangeM)
		ch.SetMotionBound(0) // static: enables the grid, never rebins
		n := 2 + rng.Intn(120)
		for i := 0; i < n; i++ {
			// Deliberately spread beyond one grid cell and into negative
			// coordinates to exercise the floor-based binning.
			p := geom.Point{
				X: -200 + 2000*rng.Float64(),
				Y: -200 + 800*rng.Float64(),
			}
			ch.AddRadio(NodeID(i), mobility.Static{P: p})
		}
		for _, r := range ch.radios {
			want := bruteNeighbors(ch, r, 0)
			sameIDs(t, ch.Neighbors(r, 0), want, "Neighbors")
			if got := ch.CountNeighbors(r, 0); got != len(want) {
				t.Fatalf("CountNeighbors(%v) = %d, want %d", r.id, got, len(want))
			}
		}
		a, b := ch.radios[0], ch.radios[n-1]
		inRange := a.Position(0).DistanceTo(b.Position(0)) <= rangeM
		if ch.InRange(a, b, 0) != inRange {
			t.Fatalf("InRange(%v, %v) = %v, want %v", a.id, b.id, !inRange, inRange)
		}
	}
}

// TestGridMatchesBruteForceMobile drives waypoint-mobile radios across
// many rebin epochs and checks grid queries against the exhaustive scan at
// every probe instant.
func TestGridMatchesBruteForceMobile(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, 250)
	const maxSpeed = 20.0
	ch.SetMotionBound(maxSpeed)
	field := geom.Rect{W: 1500, H: 300}
	for i := 0; i < 60; i++ {
		mob := mobility.NewWaypoint(mobility.WaypointConfig{
			Field:    field,
			MinSpeed: 1,
			MaxSpeed: maxSpeed,
			Start:    geom.Point{X: field.W * float64(i) / 60, Y: field.H * float64(i%7) / 7},
		}, sim.Stream(int64(i), "grid-test"))
		ch.AddRadio(NodeID(i), mob)
	}
	// Probe at irregular instants spanning several staleness windows (the
	// slack of 250/4 m at 20 m/s is exceeded after ~3 s).
	for _, sec := range []float64{0, 0.5, 2.9, 3.4, 10, 30, 31, 95} {
		now := sim.FromSeconds(sec)
		sched.RunUntil(now)
		for _, r := range ch.radios {
			want := bruteNeighbors(ch, r, now)
			sameIDs(t, ch.Neighbors(r, now), want, "Neighbors @"+now.String())
			if got := ch.CountNeighbors(r, now); got != len(want) {
				t.Fatalf("CountNeighbors(%v) @%v = %d, want %d", r.id, now, got, len(want))
			}
		}
	}
}

// TestGridCSRMatchesBruteForce pushes the population past gridScanThreshold
// so queries take the CSR-index path (the quick experiment profiles never
// do), and checks every query agrees with the exhaustive scan — including
// the registration-order visiting contract VisitNeighbors promises.
func TestGridCSRMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sched := sim.NewScheduler()
	ch := NewChannel(sched, 180)
	ch.SetMotionBound(0)
	n := gridScanThreshold + 60
	for i := 0; i < n; i++ {
		p := geom.Point{
			X: -300 + 3000*rng.Float64(),
			Y: -300 + 1500*rng.Float64(),
		}
		ch.AddRadio(NodeID(i), mobility.Static{P: p})
	}
	for step := 0; step < n; step += 23 {
		r := ch.radios[step]
		want := bruteNeighbors(ch, r, 0)
		sameIDs(t, ch.Neighbors(r, 0), want, "Neighbors (CSR)")
		var visited []NodeID
		ch.VisitNeighbors(r, 0, func(id NodeID) { visited = append(visited, id) })
		sameIDs(t, visited, want, "VisitNeighbors (CSR)")
		if got := ch.CountNeighbors(r, 0); got != len(want) {
			t.Fatalf("CountNeighbors(%v) = %d, want %d", r.id, got, len(want))
		}
	}
}

// TestVisitNeighborsMatchesNeighbors checks the allocation-free visitor
// against the slice-returning query across rebin epochs of a mobile
// scenario (the small-population scan path).
func TestVisitNeighborsMatchesNeighbors(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, 250)
	const maxSpeed = 20.0
	ch.SetMotionBound(maxSpeed)
	field := geom.Rect{W: 1500, H: 300}
	for i := 0; i < 50; i++ {
		mob := mobility.NewWaypoint(mobility.WaypointConfig{
			Field:    field,
			MinSpeed: 1,
			MaxSpeed: maxSpeed,
			Start:    geom.Point{X: field.W * float64(i) / 50, Y: field.H * float64(i%5) / 5},
		}, sim.Stream(int64(i), "visit-test"))
		ch.AddRadio(NodeID(i), mob)
	}
	for _, sec := range []float64{0, 1.5, 4, 20, 60} {
		now := sim.FromSeconds(sec)
		sched.RunUntil(now)
		for _, r := range ch.radios {
			want := ch.Neighbors(r, now)
			var got []NodeID
			ch.VisitNeighbors(r, now, func(id NodeID) { got = append(got, id) })
			sameIDs(t, got, want, "VisitNeighbors @"+now.String())
		}
	}
}

// TestGridTransmitMatchesLinear runs the same broadcast on a grid-enabled
// channel and on a linear-scan channel and checks the delivery sets match.
func TestGridTransmitMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	points := make([]geom.Point, 80)
	for i := range points {
		points[i] = geom.Point{X: 1500 * rng.Float64(), Y: 300 * rng.Float64()}
	}
	deliveries := func(useGrid bool) []int {
		sched := sim.NewScheduler()
		ch := NewChannel(sched, 250)
		if useGrid {
			ch.SetMotionBound(0)
		}
		caps := make([]*capture, len(points))
		radios := make([]*Radio, len(points))
		for i, p := range points {
			radios[i] = ch.AddRadio(NodeID(i), mobility.Static{P: p})
			caps[i] = &capture{}
			radios[i].SetReceiver(caps[i])
		}
		ch.Transmit(radios[0], Frame{From: 0, To: Broadcast, Bytes: 512}, 2)
		sched.Run()
		var got []int
		for i, c := range caps {
			if len(c.frames) > 0 {
				got = append(got, i)
			}
		}
		return got
	}
	grid, linear := deliveries(true), deliveries(false)
	if len(grid) != len(linear) {
		t.Fatalf("grid delivered to %v, linear to %v", grid, linear)
	}
	for i := range grid {
		if grid[i] != linear[i] {
			t.Fatalf("grid delivered to %v, linear to %v", grid, linear)
		}
	}
}
