// Package phy models the wireless physical layer: half-duplex radios, a
// shared broadcast channel, deterministic disk propagation derived from the
// two-ray ground model, per-receiver collision detection, and carrier sense.
//
// The paper's ns-2 setup uses the two-ray ground reflection model with a
// 250 m nominal transmission range at 2 Mbps. Under two-ray ground the
// received power falls off as d^-4 with no fading, so "decodable" is a
// deterministic function of distance: a disk of radius Range. This package
// therefore implements disk propagation with the radius as the configured
// range — exactly the behaviour ns-2 exhibits for this model (see DESIGN.md
// §2 for the substitution note).
package phy

import (
	"math"
	"strconv"

	"rcast/internal/geom"
	"rcast/internal/mobility"
	"rcast/internal/sim"
)

// NodeID identifies a node (and its radio) within a scenario.
type NodeID int

// Broadcast is the link-layer broadcast address.
const Broadcast NodeID = -1

// String implements fmt.Stringer. Built without fmt: node IDs are
// rendered once per traced MAC/PHY event.
func (id NodeID) String() string {
	if id == Broadcast {
		return "bcast"
	}
	return "n" + strconv.Itoa(int(id))
}

// PreambleTime is the PHY preamble + PLCP header duration (802.11 DSSS long
// preamble, transmitted at 1 Mbps regardless of the data rate).
const PreambleTime = 192 * sim.Microsecond

// Airtime returns how long a frame of the given on-air size occupies the
// channel at the given data rate.
func Airtime(bytes int, rateMbps float64) sim.Time {
	if bytes < 0 {
		bytes = 0
	}
	if rateMbps <= 0 {
		rateMbps = 2
	}
	payload := sim.FromSeconds(float64(bytes) * 8 / (rateMbps * 1e6))
	return PreambleTime + payload
}

// TwoRayGroundRange returns the crossover/decode radius in metres for the
// two-ray ground model given transmit power pt (W), antenna gains, antenna
// height ht=hr (m) and receive threshold rxThresh (W):
//
//	Pr(d) = Pt * Gt * Gr * ht^2 * hr^2 / d^4
//
// With the ns-2 defaults (Pt=0.2818 W, G=1, h=1.5 m, RXThresh=3.652e-10 W)
// this yields the paper's 250 m range.
func TwoRayGroundRange(pt, gt, gr, ht, hr, rxThresh float64) float64 {
	if pt <= 0 || rxThresh <= 0 {
		return 0
	}
	return math.Pow(pt*gt*gr*ht*ht*hr*hr/rxThresh, 0.25)
}

// Frame is the unit the PHY carries. Payload is an opaque MAC frame; Bytes
// is the full on-air size used for airtime and energy accounting.
type Frame struct {
	From    NodeID
	To      NodeID // Broadcast or a unicast link-layer destination
	Bytes   int
	Payload any
}

// Receiver is the upcall interface a MAC registers on its radio.
type Receiver interface {
	// OnFrame delivers a successfully decoded frame: the radio was awake and
	// in range for the whole transmission and no overlapping transmission
	// corrupted it. It is called for every decodable frame regardless of the
	// To address — address filtering and overhearing policy are MAC
	// concerns.
	OnFrame(f Frame)
}

// DeliveryObserver is notified of every reception that completes
// successfully, immediately before the MAC upcall (invariant auditing).
// awake is the receiving radio's power state at the delivery instant.
type DeliveryObserver interface {
	FrameDelivered(now sim.Time, rx NodeID, awake bool, f Frame)
}

// Frame-loss reasons reported to a DropObserver, matching the Stats
// counters the channel increments alongside each report.
const (
	LossCollision    = "collision"     // overlap or half-duplex corruption
	LossMissedAsleep = "missed-asleep" // receiving radio was (or fell) asleep
	LossFault        = "fault-lost"    // injected by the LossModel
	LossChannel      = "chan-lost"     // propagation model declined the link (non-disk channels)
)

// DropObserver is notified of every per-receiver frame loss the channel
// classifies, at the instant the matching Stats counter increments
// (lifecycle tracing). A nil observer costs one pointer check per loss.
type DropObserver interface {
	FrameLost(now sim.Time, rx NodeID, f Frame, reason string)
}

// TxObserver is notified of every frame put on the air, at the instant
// the transmission starts (per-transmission energy accounting under
// variable TX power). A nil observer costs one pointer check per
// transmission.
type TxObserver interface {
	FrameTransmitted(now sim.Time, tx NodeID, airtime sim.Time)
}

// Stats counts channel-level events. ChannelLost is omitempty so results
// from disk-channel runs keep their historical JSON encoding byte for
// byte (the golden corpus pins those bytes).
type Stats struct {
	Transmissions uint64 // frames put on the air
	Deliveries    uint64 // successful per-receiver decodes
	Collisions    uint64 // per-receiver losses due to overlap
	MissedAsleep  uint64 // per-receiver losses because the radio slept
	FaultLost     uint64 // per-receiver losses injected by the LossModel

	// ChannelLost counts receivers within the propagation model's reach
	// whose per-(link, instant) verdict declined the frame.
	ChannelLost uint64 `json:",omitempty"`
}

// LossModel decides, per completed reception, whether the channel corrupts
// the frame (fault injection; see internal/fault). Lose is consulted only
// for frames that would otherwise decode — after collision, half-duplex and
// sleep filtering — so implementations see a deterministic query sequence:
// reception completions in scheduler order at monotone instants.
type LossModel interface {
	Lose(now sim.Time, tx, rx NodeID) bool
}

// Propagation decides per-(link, instant) decodability for the channel
// (see internal/propagation for the implementations). Implementations
// must be pure functions of their construction parameters and the call
// arguments — no internal state, no shared RNG streams — so verdicts are
// identical regardless of query order or repetition, and must be
// symmetric in (a, b). Decodable must return false whenever dist exceeds
// MaxRange: the spatial grid prunes candidates at that bound, so a
// verdict beyond it would silently differ between the grid path and the
// exhaustive scan.
//
// Per-transmitter power control composes on top of this contract without
// breaking purity or symmetry: a transmitter whose range is scaled by s
// is queried at dist/s against reach MaxRange()*s, so the model itself
// stays a symmetric function of distance while links become directional
// (A at high power may reach B while B at low power cannot reach A).
type Propagation interface {
	// Decodable reports whether a frame transmitted between a and b
	// (unordered) at instant now spanning dist metres decodes.
	Decodable(now sim.Time, a, b NodeID, dist float64) bool
	// MaxRange bounds the distance at which Decodable can return true.
	MaxRange() float64
}

// Channel is the shared medium connecting all radios in a scenario.
type Channel struct {
	sched  *sim.Scheduler
	radios []*Radio
	byID   map[NodeID]*Radio
	rangeM float64
	stats  Stats

	// Spatial index (see grid.go). Enabled by SetMotionBound; without a
	// declared bound on node speed the channel cannot know when bins go
	// stale and falls back to scanning every radio.
	motionBound    float64
	motionBoundSet bool
	grid           grid
	scratch        []int32

	// Freelists for the per-transmission batch machinery (see Transmit):
	// recycling batches and deliveries keeps the reception hot path
	// allocation-free.
	freeBatch    *txBatch
	freeDelivery *delivery

	obs     DeliveryObserver // nil = no delivery instrumentation
	dropObs DropObserver     // nil = no loss instrumentation
	txObs   TxObserver       // nil = no transmission instrumentation
	loss    LossModel        // nil = clean channel

	// Propagation model state. prop == nil is the hot disk fast path:
	// decodability is the inlined dist <= rangeM comparison with no
	// interface call per candidate. With a model installed, maxRange
	// caches prop.MaxRange() as the grid query radius and chanReplay,
	// when set, substitutes the recorded channel-loss stream for the
	// model's transmit-time verdicts (internal/replay).
	prop       Propagation
	maxRange   float64
	chanReplay LossModel
}

// SetDeliveryObserver installs the delivery observer (nil disables it).
func (c *Channel) SetDeliveryObserver(o DeliveryObserver) { c.obs = o }

// SetDropObserver installs the frame-loss observer (nil disables it).
func (c *Channel) SetDropObserver(o DropObserver) { c.dropObs = o }

// SetTxObserver installs the transmission observer (nil disables it).
func (c *Channel) SetTxObserver(o TxObserver) { c.txObs = o }

// frameLost reports a loss to the drop observer. Call sites mirror the
// Stats loss counters exactly: one frameLost per counted loss.
func (c *Channel) frameLost(rx *Radio, f Frame, now sim.Time, reason string) {
	if c.dropObs != nil {
		c.dropObs.FrameLost(now, rx.id, f, reason)
	}
}

// SetLossModel installs the fault-injection loss model (nil restores the
// clean channel).
func (c *Channel) SetLossModel(m LossModel) { c.loss = m }

// SetPropagation installs a propagation model (nil restores exact disk
// propagation at the construction radius). The spatial grid is re-sized
// so its cell edge and query reach match the model's MaxRange — the
// invariant that keeps grid answers identical to the exhaustive scan
// under per-link variable effective range. Call before the run starts:
// switching models mid-run would change verdicts already relied on.
func (c *Channel) SetPropagation(p Propagation) {
	c.prop = p
	if p == nil {
		c.maxRange = 0
		c.grid = grid{cell: c.rangeM, slack: c.rangeM / 4}
		return
	}
	mr := p.MaxRange()
	c.maxRange = mr
	c.grid = grid{cell: mr, slack: mr / 4}
}

// SetChannelReplay substitutes a recorded channel-loss stream for the
// propagation model's transmit-time verdicts (see internal/replay). Only
// consulted while a non-disk model is installed; neighbor queries keep
// using the model, whose verdicts re-derive deterministically from the
// config seed.
func (c *Channel) SetChannelReplay(m LossModel) { c.chanReplay = m }

// NewChannel creates a channel; rangeM is the decode radius in metres.
func NewChannel(sched *sim.Scheduler, rangeM float64) *Channel {
	return &Channel{
		sched:  sched,
		byID:   make(map[NodeID]*Radio),
		rangeM: rangeM,
		grid:   grid{cell: rangeM, slack: rangeM / 4},
	}
}

// SetMotionBound declares an upper bound on how fast any radio on this
// channel moves (metres per simulated second; 0 means every radio is
// stationary) and enables the spatial grid index: Transmit, Neighbors and
// CountNeighbors then query a uniform grid instead of scanning all radios.
// The bound must hold for the whole run; grid answers are exact (identical
// to the exhaustive scan) as long as it does.
func (c *Channel) SetMotionBound(maxSpeedMps float64) {
	if maxSpeedMps < 0 {
		maxSpeedMps = 0
	}
	c.motionBound = maxSpeedMps
	c.motionBoundSet = true
	c.grid.valid = false
}

// Stats returns a copy of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

// Range returns the decode radius in metres.
func (c *Channel) Range() float64 { return c.rangeM }

// AddRadio registers a radio for a node. Radios start awake at nominal
// transmit power.
func (c *Channel) AddRadio(id NodeID, mob mobility.Model) *Radio {
	r := &Radio{id: id, ch: c, mob: mob, awake: true, txScale: 1}
	c.radios = append(c.radios, r)
	c.byID[id] = r
	c.grid.valid = false
	return r
}

// Radios returns the registered radios in registration order. The returned
// slice must not be mutated.
func (c *Channel) Radios() []*Radio { return c.radios }

// RadioOf returns the radio for id, or nil.
func (c *Channel) RadioOf(id NodeID) *Radio {
	return c.byID[id]
}

// InRange reports whether a transmission from a reaches b at instant now.
// The verdict is directional under power control: it uses a's transmit
// range scale, so InRange(a, b) and InRange(b, a) can disagree when the
// two radios transmit at different powers.
func (c *Channel) InRange(a, b *Radio, now sim.Time) bool {
	d := a.Position(now).DistanceTo(b.Position(now))
	s := a.txScale
	if c.prop != nil {
		return d <= c.maxRange*s && c.prop.Decodable(now, a.id, b.id, d/s)
	}
	return d <= c.rangeM*s
}

// visitInRange calls visit for every radio other than center that a
// transmission from center reaches at instant now, in registration order
// (deterministic regardless of whether the grid index or the exhaustive
// scan answers the query). Reach uses center's transmit range scale, so
// the answer is directional under power control. With a propagation model
// installed, "within range" means the model's verdict for the (center,
// other) link at now queried at the power-normalized distance; the grid
// is queried at the scaled reach so no candidate with a possibly-true
// verdict is pruned (grid queries accept radii larger than the cell edge).
func (c *Channel) visitInRange(center *Radio, now sim.Time, visit func(*Radio)) {
	p := center.Position(now)
	s := center.txScale
	if c.prop != nil {
		reach := c.maxRange * s
		if c.motionBoundSet && reach > 0 {
			if c.grid.stale(now, c.motionBound) {
				c.grid.rebin(c.radios, now)
			}
			c.scratch = c.grid.candidates(p, reach, c.scratch)
			for _, i := range c.scratch {
				o := c.radios[i]
				if o == center {
					continue
				}
				if d := p.DistanceTo(o.Position(now)); d <= reach && c.prop.Decodable(now, center.id, o.id, d/s) {
					visit(o)
				}
			}
			return
		}
		for _, o := range c.radios {
			if o == center {
				continue
			}
			if d := p.DistanceTo(o.Position(now)); d <= reach && c.prop.Decodable(now, center.id, o.id, d/s) {
				visit(o)
			}
		}
		return
	}
	reach := c.rangeM * s
	if c.motionBoundSet && reach > 0 {
		if c.grid.stale(now, c.motionBound) {
			c.grid.rebin(c.radios, now)
		}
		c.scratch = c.grid.candidates(p, reach, c.scratch)
		for _, i := range c.scratch {
			o := c.radios[i]
			if o == center {
				continue
			}
			if p.DistanceTo(o.Position(now)) <= reach {
				visit(o)
			}
		}
		return
	}
	for _, o := range c.radios {
		if o == center {
			continue
		}
		if p.DistanceTo(o.Position(now)) <= reach {
			visit(o)
		}
	}
}

// Neighbors returns the IDs of all radios within range of r at now,
// excluding r itself, in registration order (deterministic).
func (c *Channel) Neighbors(r *Radio, now sim.Time) []NodeID {
	var out []NodeID
	c.visitInRange(r, now, func(o *Radio) {
		out = append(out, o.id)
	})
	return out
}

// VisitNeighbors calls visit with the ID of every radio within range of r at
// now, excluding r itself, in registration order. It is the allocation-free
// form of Neighbors for per-event hot paths (PSM churn tracking).
func (c *Channel) VisitNeighbors(r *Radio, now sim.Time, visit func(NodeID)) {
	if c.prop != nil {
		c.visitInRange(r, now, func(o *Radio) { visit(o.id) })
		return
	}
	p := r.Position(now)
	reach := c.rangeM * r.txScale
	if c.motionBoundSet && reach > 0 {
		if c.grid.stale(now, c.motionBound) {
			c.grid.rebin(c.radios, now)
		}
		c.scratch = c.grid.candidates(p, reach, c.scratch)
		for _, i := range c.scratch {
			o := c.radios[i]
			if o == r {
				continue
			}
			if p.DistanceTo(o.Position(now)) <= reach {
				visit(o.id)
			}
		}
		return
	}
	for _, o := range c.radios {
		if o == r {
			continue
		}
		if p.DistanceTo(o.Position(now)) <= reach {
			visit(o.id)
		}
	}
}

// CountNeighbors returns the number of radios within range of r at now.
func (c *Channel) CountNeighbors(r *Radio, now sim.Time) int {
	n := 0
	c.visitInRange(r, now, func(*Radio) { n++ })
	return n
}

// Transmit puts f on the air from tx for the frame's airtime at the given
// data rate. Reception outcomes (delivery, collision, missed-asleep) resolve
// per receiver when the transmission ends: all receivers that entered the
// reception state are resolved by a single batched scheduler event rather
// than one event each. The per-receiver finish events of the pre-batching
// scheduler carried consecutive sequence numbers — nothing could interleave
// them — so resolving the whole batch at the first one's slot preserves the
// exact global event order.
func (c *Channel) Transmit(tx *Radio, f Frame, rateMbps float64) {
	now := c.sched.Now()
	end := now + Airtime(f.Bytes, rateMbps)
	c.stats.Transmissions++
	if c.txObs != nil {
		c.txObs.FrameTransmitted(now, tx.id, end-now)
	}

	// Half duplex: transmitting corrupts any reception in progress at tx.
	if tx.current != nil {
		tx.current.collided = true
	}
	tx.txUntil = end
	tx.extendCarrier(end)

	b := c.allocBatch()
	b.frame = f
	b.end = end
	p := tx.Position(now)
	s := tx.txScale
	if c.prop != nil {
		reach := c.maxRange * s
		if c.motionBoundSet && reach > 0 {
			if c.grid.stale(now, c.motionBound) {
				c.grid.rebin(c.radios, now)
			}
			c.scratch = c.grid.candidates(p, reach, c.scratch)
			for _, i := range c.scratch {
				rx := c.radios[i]
				if rx == tx {
					continue
				}
				if d := p.DistanceTo(rx.Position(now)); d <= reach {
					c.admitReception(b, tx, rx, now, end, d/s)
				}
			}
		} else {
			for _, rx := range c.radios {
				if rx == tx {
					continue
				}
				if d := p.DistanceTo(rx.Position(now)); d <= reach {
					c.admitReception(b, tx, rx, now, end, d/s)
				}
			}
		}
	} else if reach := c.rangeM * s; c.motionBoundSet && reach > 0 {
		if c.grid.stale(now, c.motionBound) {
			c.grid.rebin(c.radios, now)
		}
		c.scratch = c.grid.candidates(p, reach, c.scratch)
		for _, i := range c.scratch {
			rx := c.radios[i]
			if rx == tx {
				continue
			}
			if p.DistanceTo(rx.Position(now)) <= reach {
				rx.extendCarrier(end)
				c.beginReception(b, rx, now, end)
			}
		}
	} else {
		for _, rx := range c.radios {
			if rx == tx {
				continue
			}
			if p.DistanceTo(rx.Position(now)) <= reach {
				rx.extendCarrier(end)
				c.beginReception(b, rx, now, end)
			}
		}
	}
	if b.head == nil {
		// No receiver entered the reception state (all asleep or
		// transmitting): no completion event, as before batching.
		c.releaseBatch(b)
		return
	}
	c.sched.After(end-now, b.fire)
}

// admitReception is the per-candidate transmit step under a propagation
// model: rx is within the transmitter's reach, and the model's (or,
// during replay, the recorded stream's) verdict decides whether the link
// exists for this frame. dist is the power-normalized distance (geometric
// distance over the transmitter's range scale), so the model sees the
// link as if transmitted at nominal power. A declined link is counted and traced as chan-lost — the
// frame never reaches the receiver, so it neither extends carrier sense
// nor enters the reception state. Candidates are consulted in registration
// order, so the chan-lost decision sequence is deterministic and
// replayable head-to-tail.
func (c *Channel) admitReception(b *txBatch, tx, rx *Radio, now, end sim.Time, dist float64) {
	var lost bool
	if c.chanReplay != nil {
		lost = c.chanReplay.Lose(now, tx.id, rx.id)
	} else {
		lost = !c.prop.Decodable(now, tx.id, rx.id, dist)
	}
	if lost {
		c.stats.ChannelLost++
		c.frameLost(rx, b.frame, now, LossChannel)
		return
	}
	rx.extendCarrier(end)
	c.beginReception(b, rx, now, end)
}

func (c *Channel) beginReception(b *txBatch, rx *Radio, now, end sim.Time) {
	if !rx.awake {
		c.stats.MissedAsleep++
		c.frameLost(rx, b.frame, now, LossMissedAsleep)
		return
	}
	if rx.txUntil > now {
		// Half duplex: a transmitting radio cannot decode.
		c.stats.Collisions++
		c.frameLost(rx, b.frame, now, LossCollision)
		return
	}
	d := c.allocDelivery()
	d.rx = rx
	d.end = end
	if rx.current != nil && rx.current.end > now {
		// Overlap: both frames are lost at this receiver.
		rx.current.collided = true
		d.collided = true
		c.stats.Collisions++
		c.frameLost(rx, b.frame, now, LossCollision)
		// Track the longer of the two as the in-progress (corrupted)
		// reception so a third overlapping frame also collides.
		if end > rx.current.end {
			rx.current = d
		}
	} else {
		rx.current = d
	}
	if b.tail == nil {
		b.head = d
	} else {
		b.tail.next = d
	}
	b.tail = d
}

// finishBatch resolves every reception of one transmission, in the receiver
// order Transmit visited them. The batch is detached and recycled up front
// so a mid-batch Transmit (from a MAC upcall) can reuse it immediately.
func (c *Channel) finishBatch(b *txBatch) {
	f := b.frame
	d := b.head
	c.releaseBatch(b)
	for d != nil {
		next := d.next
		c.finishReception(d.rx, d, f)
		c.releaseDelivery(d)
		d = next
	}
}

func (c *Channel) finishReception(rx *Radio, d *delivery, f Frame) {
	if rx.current == d {
		rx.current = nil
	}
	if d.collided {
		// Already counted when the overlap was detected.
		return
	}
	if !rx.awake {
		// Receiver fell asleep mid-frame.
		c.stats.MissedAsleep++
		c.frameLost(rx, f, c.sched.Now(), LossMissedAsleep)
		return
	}
	if d.aborted {
		return
	}
	if c.loss != nil && c.loss.Lose(c.sched.Now(), f.From, rx.id) {
		c.stats.FaultLost++
		c.frameLost(rx, f, c.sched.Now(), LossFault)
		return
	}
	c.stats.Deliveries++
	if c.obs != nil {
		c.obs.FrameDelivered(c.sched.Now(), rx.id, rx.awake, f)
	}
	if rx.recv != nil {
		rx.recv.OnFrame(f)
	}
}

// txBatch collects the in-flight receptions of one transmission behind a
// single prebound completion event. The frame is stored once per batch
// instead of once per receiver.
type txBatch struct {
	frame      Frame
	end        sim.Time
	head, tail *delivery
	next       *txBatch // freelist link
	fire       func()   // prebound finishBatch closure
}

// delivery is one receiver's in-flight reception state. Deliveries are
// pooled individually (not inline in a batch slice) because rx.current
// holds pointers across batches: a growable slice would invalidate them.
type delivery struct {
	rx       *Radio
	next     *delivery
	end      sim.Time
	collided bool
	aborted  bool
}

func (c *Channel) allocBatch() *txBatch {
	b := c.freeBatch
	if b == nil {
		nb := &txBatch{}
		nb.fire = func() { c.finishBatch(nb) }
		return nb
	}
	c.freeBatch = b.next
	b.next = nil
	return b
}

// releaseBatch recycles b. Safe to call while its delivery list is still
// being walked from local copies: the caller detaches head first.
func (c *Channel) releaseBatch(b *txBatch) {
	b.frame = Frame{} // drop the payload reference for GC
	b.head, b.tail = nil, nil
	b.next = c.freeBatch
	c.freeBatch = b
}

func (c *Channel) allocDelivery() *delivery {
	d := c.freeDelivery
	if d == nil {
		return &delivery{}
	}
	c.freeDelivery = d.next
	d.next = nil
	d.collided, d.aborted = false, false
	return d
}

// releaseDelivery recycles d. Callers guarantee no rx.current references d:
// finishReception clears the receiver's pointer, and an aborted delivery was
// already detached by SetAwake.
func (c *Channel) releaseDelivery(d *delivery) {
	d.rx = nil
	d.next = c.freeDelivery
	c.freeDelivery = d
}

// Radio is one node's transceiver.
type Radio struct {
	id    NodeID
	ch    *Channel
	mob   mobility.Model
	recv  Receiver
	awake bool

	carrierUntil sim.Time
	txUntil      sim.Time
	current      *delivery

	// txScale stretches this radio's transmit reach relative to the
	// channel's nominal range (power control; 1 = nominal). Reception is
	// unaffected — only how far this radio's own frames carry.
	txScale float64

	// Single-instant position cache: one transmission (or neighbor query)
	// asks many radios for their position at the same now, and mobility
	// models answer by binary-searching a trajectory; caching the latest
	// instant makes repeated same-instant queries free. Mobility models are
	// pure functions of time, so the cache can never go stale.
	posAt sim.Time
	pos   geom.Point
	posOK bool
}

// ID returns the owning node's ID.
func (r *Radio) ID() NodeID { return r.id }

// SetReceiver registers the MAC upcall.
func (r *Radio) SetReceiver(rc Receiver) { r.recv = rc }

// Position returns the radio position at now. The most recent instant is
// cached, so the mobility model is evaluated at most once per radio per
// instant.
func (r *Radio) Position(now sim.Time) geom.Point {
	if r.posOK && r.posAt == now {
		return r.pos
	}
	p := r.mob.PositionAt(now)
	r.posAt, r.pos, r.posOK = now, p, true
	return p
}

// SetTxRangeScale sets the factor this radio's transmissions stretch the
// nominal decode range by (transmit power control; 1 restores nominal).
// Links become asymmetric when radios transmit at different scales: A may
// reach B while B cannot reach A. Non-positive scales are clamped to 1.
func (r *Radio) SetTxRangeScale(s float64) {
	if !(s > 0) {
		s = 1
	}
	r.txScale = s
}

// TxRangeScale returns the radio's transmit range scale.
func (r *Radio) TxRangeScale() float64 { return r.txScale }

// Awake reports whether the radio can currently receive.
func (r *Radio) Awake() bool { return r.awake }

// SetAwake wakes or sleeps the radio. Going to sleep aborts any reception in
// progress (the frame is lost, not delivered later).
func (r *Radio) SetAwake(awake bool) {
	if r.awake == awake {
		return
	}
	r.awake = awake
	if !awake && r.current != nil {
		r.current.aborted = true
		r.current = nil
	}
}

// CarrierBusyUntil returns the instant the local medium becomes idle as
// observed by this radio (including its own transmissions). Sleeping radios
// still accumulate this state so that carrier sense is correct immediately
// after waking.
func (r *Radio) CarrierBusyUntil() sim.Time { return r.carrierUntil }

// CarrierBusy reports whether the local medium is busy at now.
func (r *Radio) CarrierBusy(now sim.Time) bool { return r.carrierUntil > now }

// Transmitting reports whether the radio is transmitting at now.
func (r *Radio) Transmitting(now sim.Time) bool { return r.txUntil > now }

func (r *Radio) extendCarrier(until sim.Time) {
	if until > r.carrierUntil {
		r.carrierUntil = until
	}
}
