package phy

import (
	"math"
	"testing"

	"rcast/internal/geom"
	"rcast/internal/mobility"
	"rcast/internal/sim"
)

type capture struct {
	frames []Frame
}

func (c *capture) OnFrame(f Frame) { c.frames = append(c.frames, f) }

// lineup places n radios on a horizontal line spaced gap metres apart and
// returns (scheduler, channel, radios, captures).
func lineup(t *testing.T, n int, gap, rangeM float64) (*sim.Scheduler, *Channel, []*Radio, []*capture) {
	t.Helper()
	sched := sim.NewScheduler()
	ch := NewChannel(sched, rangeM)
	radios := make([]*Radio, n)
	caps := make([]*capture, n)
	for i := 0; i < n; i++ {
		radios[i] = ch.AddRadio(NodeID(i), mobility.Static{P: geom.Point{X: float64(i) * gap}})
		caps[i] = &capture{}
		radios[i].SetReceiver(caps[i])
	}
	return sched, ch, radios, caps
}

func TestAirtime(t *testing.T) {
	// 512 B at 2 Mbps = 2048 µs payload + 192 µs preamble.
	if got := Airtime(512, 2); got != 2240*sim.Microsecond {
		t.Fatalf("Airtime(512, 2) = %v, want 2240µs", got)
	}
	if got := Airtime(0, 2); got != PreambleTime {
		t.Fatalf("Airtime(0) = %v, want preamble only", got)
	}
	if got := Airtime(-5, 2); got != PreambleTime {
		t.Fatalf("Airtime(negative) = %v, want preamble only", got)
	}
	if got := Airtime(100, 0); got != Airtime(100, 2) {
		t.Fatal("zero rate should default to 2 Mbps")
	}
}

func TestTwoRayGroundRangeMatchesNS2Default(t *testing.T) {
	// ns-2 defaults: Pt=0.2818 W, G=1, h=1.5 m, RXThresh=3.652e-10 W → 250 m.
	got := TwoRayGroundRange(0.2818, 1, 1, 1.5, 1.5, 3.652e-10)
	if math.Abs(got-250) > 0.5 {
		t.Fatalf("TwoRayGroundRange = %v m, want ~250 m", got)
	}
	if TwoRayGroundRange(0, 1, 1, 1.5, 1.5, 3.652e-10) != 0 {
		t.Fatal("zero power should give zero range")
	}
}

func TestUnicastDeliveredToAllInRange(t *testing.T) {
	sched, ch, radios, caps := lineup(t, 3, 200, 250)
	// n0 -> n1 unicast: n1 (200 m) hears it; n2 (400 m) does not.
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 512}, 2)
	sched.Run()
	if len(caps[1].frames) != 1 {
		t.Fatalf("n1 got %d frames, want 1", len(caps[1].frames))
	}
	if len(caps[2].frames) != 0 {
		t.Fatalf("n2 (out of range) got %d frames, want 0", len(caps[2].frames))
	}
	if len(caps[0].frames) != 0 {
		t.Fatal("transmitter received its own frame")
	}
	st := ch.Stats()
	if st.Transmissions != 1 || st.Deliveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOverhearingIsPhysical(t *testing.T) {
	// A frame addressed to n1 is also decoded by awake n2 within range:
	// the PHY does not filter addresses.
	sched, ch, radios, caps := lineup(t, 3, 100, 250)
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 64}, 2)
	sched.Run()
	if len(caps[2].frames) != 1 {
		t.Fatalf("n2 should overhear the frame, got %d", len(caps[2].frames))
	}
}

func TestAsleepRadioMissesFrame(t *testing.T) {
	sched, ch, radios, caps := lineup(t, 2, 100, 250)
	radios[1].SetAwake(false)
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 64}, 2)
	sched.Run()
	if len(caps[1].frames) != 0 {
		t.Fatal("sleeping radio decoded a frame")
	}
	if ch.Stats().MissedAsleep != 1 {
		t.Fatalf("MissedAsleep = %d, want 1", ch.Stats().MissedAsleep)
	}
}

func TestFallingAsleepMidFrameLosesIt(t *testing.T) {
	sched, ch, radios, caps := lineup(t, 2, 100, 250)
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 512}, 2)
	sched.After(sim.Millisecond, func() { radios[1].SetAwake(false) })
	sched.Run()
	if len(caps[1].frames) != 0 {
		t.Fatal("radio that slept mid-frame still decoded it")
	}
}

func TestCollisionAtCommonReceiver(t *testing.T) {
	// n0 and n2 are hidden from each other (500 m apart) but both in range
	// of n1; simultaneous transmissions collide at n1.
	sched, ch, radios, caps := lineup(t, 3, 250, 250)
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 512}, 2)
	ch.Transmit(radios[2], Frame{From: 2, To: 1, Bytes: 512}, 2)
	sched.Run()
	if len(caps[1].frames) != 0 {
		t.Fatalf("n1 decoded %d frames during a collision", len(caps[1].frames))
	}
	if ch.Stats().Collisions == 0 {
		t.Fatal("collision not counted")
	}
}

func TestPartialOverlapCollides(t *testing.T) {
	sched, ch, radios, caps := lineup(t, 3, 250, 250)
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 512}, 2)
	sched.After(sim.Millisecond, func() {
		ch.Transmit(radios[2], Frame{From: 2, To: 1, Bytes: 512}, 2)
	})
	sched.Run()
	if len(caps[1].frames) != 0 {
		t.Fatal("partially overlapping frames decoded")
	}
}

func TestBackToBackFramesBothDecode(t *testing.T) {
	sched, ch, radios, caps := lineup(t, 2, 100, 250)
	at := Airtime(512, 2)
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 512}, 2)
	sched.After(at, func() {
		ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 512}, 2)
	})
	sched.Run()
	if len(caps[1].frames) != 2 {
		t.Fatalf("got %d frames, want 2 (no false collision back-to-back)", len(caps[1].frames))
	}
}

func TestThirdOverlappingFrameAlsoCollides(t *testing.T) {
	sched, ch, radios, caps := lineup(t, 4, 240, 250)
	// n0, n2 in range of n1; n3 too far from n1? n3 at 720m from n1 at 240m:
	// distance n3..n1 = 480 > 250: use n0 and n2 only plus a later frame
	// from n2 overlapping the tail of the collision window.
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 1024}, 2)
	sched.After(sim.Millisecond, func() {
		ch.Transmit(radios[2], Frame{From: 2, To: 1, Bytes: 1024}, 2)
	})
	sched.After(2*sim.Millisecond, func() {
		ch.Transmit(radios[2], Frame{From: 2, To: 1, Bytes: 64}, 2)
	})
	sched.Run()
	if len(caps[1].frames) != 0 {
		t.Fatalf("n1 decoded %d frames, want 0", len(caps[1].frames))
	}
}

func TestHalfDuplexTransmitterCannotReceive(t *testing.T) {
	sched, ch, radios, caps := lineup(t, 2, 100, 250)
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 512}, 2)
	sched.After(sim.Millisecond, func() {
		ch.Transmit(radios[1], Frame{From: 1, To: 0, Bytes: 512}, 2)
	})
	sched.Run()
	// n1 started transmitting mid-reception: its reception is corrupted,
	// and n0 (still transmitting) cannot decode n1's frame either.
	if len(caps[1].frames) != 0 {
		t.Fatal("n1 decoded while transmitting")
	}
	if len(caps[0].frames) != 0 {
		t.Fatal("n0 decoded while transmitting")
	}
}

func TestCarrierSense(t *testing.T) {
	sched, ch, radios, _ := lineup(t, 3, 200, 250)
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 512}, 2)
	now := sched.Now()
	if !radios[1].CarrierBusy(now) {
		t.Fatal("in-range radio does not sense carrier")
	}
	if radios[2].CarrierBusy(now) {
		t.Fatal("out-of-range radio senses carrier")
	}
	if !radios[0].Transmitting(now) {
		t.Fatal("transmitter not marked transmitting")
	}
	sched.Run()
	end := sched.Now()
	if radios[1].CarrierBusy(end) {
		t.Fatal("carrier still busy after transmission end")
	}
}

func TestNeighbors(t *testing.T) {
	_, ch, radios, _ := lineup(t, 4, 200, 250)
	got := ch.Neighbors(radios[1], 0)
	want := []NodeID{0, 2}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", got, want)
		}
	}
	if n := ch.CountNeighbors(radios[0], 0); n != 1 {
		t.Fatalf("CountNeighbors(n0) = %d, want 1", n)
	}
	if !ch.InRange(radios[0], radios[1], 0) || ch.InRange(radios[0], radios[2], 0) {
		t.Fatal("InRange broken")
	}
}

func TestRadioLookupAndStrings(t *testing.T) {
	_, ch, radios, _ := lineup(t, 2, 100, 250)
	if ch.RadioOf(1) != radios[1] {
		t.Fatal("RadioOf(1) wrong")
	}
	if ch.RadioOf(99) != nil {
		t.Fatal("RadioOf(unknown) should be nil")
	}
	if NodeID(3).String() != "n3" || Broadcast.String() != "bcast" {
		t.Fatal("NodeID.String broken")
	}
	if ch.Range() != 250 {
		t.Fatal("Range broken")
	}
	if radios[0].ID() != 0 {
		t.Fatal("ID broken")
	}
}

func TestMovingReceiverRangeCheckedAtStart(t *testing.T) {
	// A node that is in range at transmission start decodes the frame even
	// though mobility is in play (frame airtimes are ~ms; movement within a
	// frame is centimetres).
	sched := sim.NewScheduler()
	ch := NewChannel(sched, 250)
	tx := ch.AddRadio(0, mobility.Static{P: geom.Point{}})
	mob := mobility.NewWaypoint(mobility.WaypointConfig{
		Field:    geom.Rect{W: 200, H: 200},
		MaxSpeed: 20,
		Start:    geom.Point{X: 100, Y: 0},
	}, sim.Stream(1, "m"))
	rx := ch.AddRadio(1, mob)
	cap1 := &capture{}
	rx.SetReceiver(cap1)
	ch.Transmit(tx, Frame{From: 0, To: 1, Bytes: 512}, 2)
	sched.Run()
	if len(cap1.frames) != 1 {
		t.Fatalf("moving receiver got %d frames, want 1", len(cap1.frames))
	}
}

type dropCapture struct {
	losses []string
}

func (d *dropCapture) FrameLost(_ sim.Time, rx NodeID, f Frame, reason string) {
	d.losses = append(d.losses, reason)
}

// TestDropObserverSeesClassifiedLosses pins the DropObserver hook: a
// sleeping receiver produces a missed-asleep notification and a
// collision at a common receiver produces collision notifications, each
// mirroring the Stats counters.
func TestDropObserverSeesClassifiedLosses(t *testing.T) {
	sched, ch, radios, _ := lineup(t, 2, 100, 250)
	obs := &dropCapture{}
	ch.SetDropObserver(obs)
	radios[1].SetAwake(false)
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 64}, 2)
	sched.Run()
	if len(obs.losses) != 1 || obs.losses[0] != LossMissedAsleep {
		t.Fatalf("losses = %v, want [%s]", obs.losses, LossMissedAsleep)
	}

	sched2, ch2, radios2, _ := lineup(t, 3, 100, 250)
	obs2 := &dropCapture{}
	ch2.SetDropObserver(obs2)
	ch2.Transmit(radios2[0], Frame{From: 0, To: 1, Bytes: 512}, 2)
	ch2.Transmit(radios2[2], Frame{From: 2, To: 1, Bytes: 512}, 2)
	sched2.Run()
	want := int(ch2.Stats().Collisions)
	got := 0
	for _, r := range obs2.losses {
		if r == LossCollision {
			got++
		}
	}
	if want == 0 || got != want {
		t.Fatalf("collision notifications = %d, Stats.Collisions = %d", got, want)
	}
}
