package phy_test

import (
	"math/rand"
	"testing"

	"rcast/internal/geom"
	"rcast/internal/mobility"
	"rcast/internal/phy"
	"rcast/internal/propagation"
	"rcast/internal/sim"
)

// buildChannel assembles a propagation-model channel over n radios, mobile
// when maxSpeed > 0, with deterministic layout drawn from seed.
func buildChannel(seed int64, model string, sigma float64, n int, maxSpeed float64) (*phy.Channel, *sim.Scheduler, propagation.Model, error) {
	sched := sim.NewScheduler()
	const rangeM = 250.0
	ch := phy.NewChannel(sched, rangeM)
	ch.SetMotionBound(maxSpeed)
	m, err := propagation.Parse(model, rangeM, sigma, sim.DeriveSeed(seed, "prop"))
	if err != nil {
		return nil, nil, nil, err
	}
	ch.SetPropagation(m)
	rng := rand.New(rand.NewSource(seed))
	field := geom.Rect{W: 1500, H: 300}
	for i := 0; i < n; i++ {
		start := geom.Point{
			X: -100 + (field.W+200)*rng.Float64(),
			Y: -100 + (field.H+200)*rng.Float64(),
		}
		if maxSpeed > 0 {
			ch.AddRadio(phy.NodeID(i), mobility.NewWaypoint(mobility.WaypointConfig{
				Field:    field,
				MinSpeed: 1,
				MaxSpeed: maxSpeed,
				Start:    field.Clamp(start),
			}, sim.Stream(seed+int64(i), "fuzz-prop")))
		} else {
			ch.AddRadio(phy.NodeID(i), mobility.Static{P: start})
		}
	}
	return ch, sched, m, nil
}

// FuzzPropagationGrid fuzzes the grid index against the exhaustive pairwise
// reference under variable effective range: with a propagation model
// installed, a link can extend past the nominal radius (constructive
// shadowing/fading draws) or break inside it, and every grid-backed query —
// Neighbors, VisitNeighbors, CountNeighbors, InRange — must still agree
// with brute force at every probe instant.
func FuzzPropagationGrid(f *testing.F) {
	f.Add(int64(1), uint8(0), 6.0, 30, 0.0)
	f.Add(int64(2), uint8(1), 4.0, 40, 20.0)
	f.Add(int64(3), uint8(1), 12.0, 80, 0.0)
	f.Add(int64(4), uint8(2), 0.0, 60, 20.0)
	f.Add(int64(5), uint8(2), 0.0, 220, 0.0)
	f.Add(int64(6), uint8(1), 0.0, 25, 10.0)
	f.Fuzz(func(t *testing.T, seed int64, modelIdx uint8, sigma float64, n int, maxSpeed float64) {
		names := propagation.Names()
		model := names[int(modelIdx)%len(names)]
		if sigma < 0 || sigma > 16 {
			sigma = 4
		}
		if n < 2 || n > 260 {
			n = 2 + int(uint(n)%259)
		}
		if maxSpeed < 0 || maxSpeed > 40 {
			maxSpeed = 0
		}
		ch, sched, m, err := buildChannel(seed, model, sigma, n, maxSpeed)
		if err != nil {
			t.Fatal(err)
		}
		probes := []sim.Time{0}
		if maxSpeed > 0 {
			// Span several grid staleness windows so rebinning is exercised.
			probes = append(probes, sim.FromSeconds(2.9), sim.FromSeconds(10), sim.FromSeconds(31))
		}
		radios := ch.Radios()
		for _, now := range probes {
			sched.RunUntil(now)
			for _, r := range radios {
				p := r.Position(now)
				var want []phy.NodeID
				for _, o := range radios {
					if o == r {
						continue
					}
					if m.Decodable(now, r.ID(), o.ID(), p.DistanceTo(o.Position(now))) {
						want = append(want, o.ID())
					}
				}
				got := ch.Neighbors(r, now)
				if len(got) != len(want) {
					t.Fatalf("Neighbors(%v) @%v = %v, want %v", r.ID(), now, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("Neighbors(%v) @%v = %v, want %v", r.ID(), now, got, want)
					}
				}
				if c := ch.CountNeighbors(r, now); c != len(want) {
					t.Fatalf("CountNeighbors(%v) @%v = %d, want %d", r.ID(), now, c, len(want))
				}
				var visited []phy.NodeID
				ch.VisitNeighbors(r, now, func(id phy.NodeID) { visited = append(visited, id) })
				for i := range want {
					if visited[i] != want[i] {
						t.Fatalf("VisitNeighbors(%v) @%v = %v, want %v", r.ID(), now, visited, want)
					}
				}
				if len(visited) != len(want) {
					t.Fatalf("VisitNeighbors(%v) @%v visited %d, want %d", r.ID(), now, len(visited), len(want))
				}
			}
			// InRange spot checks, including pairs beyond MaxRange.
			a := radios[0]
			for _, b := range radios[1:] {
				d := a.Position(now).DistanceTo(b.Position(now))
				if ch.InRange(a, b, now) != m.Decodable(now, a.ID(), b.ID(), d) {
					t.Fatalf("InRange(%v,%v) @%v disagrees with model at dist %v", a.ID(), b.ID(), now, d)
				}
			}
		}
	})
}
