package phy

import (
	"sort"
	"testing"

	"rcast/internal/geom"
	"rcast/internal/mobility"
	"rcast/internal/sim"
)

// TestTxRangeScaleAsymmetricLink: a radio transmitting at reduced power has
// a shorter reach, but its receive behaviour is unchanged — so A at half
// range 200 m from B cannot reach B while B still reaches A. The PHY must
// model that asymmetry per direction.
func TestTxRangeScaleAsymmetricLink(t *testing.T) {
	sched, ch, radios, caps := lineup(t, 2, 200, 250)
	radios[0].SetTxRangeScale(0.5) // reach 125 m < 200 m gap

	if ch.InRange(radios[0], radios[1], 0) {
		t.Fatal("InRange(quiet→normal) true across a 200 m gap with 125 m reach")
	}
	if !ch.InRange(radios[1], radios[0], 0) {
		t.Fatal("InRange(normal→quiet) false: receive range must be unaffected")
	}

	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 64}, 2)
	sched.Run()
	if len(caps[1].frames) != 0 {
		t.Fatal("frame delivered beyond the transmitter's reduced reach")
	}
	// A receiverless transmission schedules no event, so the clock never
	// advanced: delay the reverse frame past A's half-duplex window.
	sched.After(5*sim.Millisecond, func() {
		ch.Transmit(radios[1], Frame{From: 1, To: 0, Bytes: 64}, 2)
	})
	sched.Run()
	if len(caps[0].frames) != 1 {
		t.Fatal("reverse direction lost: the quiet radio still hears full-power frames")
	}
}

// TestTxRangeScaleDefaultsToUnity: an unset or invalid scale is the
// identity, keeping default configs byte-identical.
func TestTxRangeScaleDefaultsToUnity(t *testing.T) {
	_, ch, radios, _ := lineup(t, 2, 100, 250)
	if s := radios[0].TxRangeScale(); s != 1 {
		t.Fatalf("fresh radio scale = %v, want 1", s)
	}
	radios[0].SetTxRangeScale(-2)
	if s := radios[0].TxRangeScale(); s != 1 {
		t.Fatalf("invalid scale stored as %v, want clamp to 1", s)
	}
	if !ch.InRange(radios[0], radios[1], 0) {
		t.Fatal("unit scale changed reachability")
	}
}

// TestTxRangeScaleNeighborsGridVsScan: the spatial grid's candidate search
// must honour a boosted radio's enlarged reach (larger than the grid cell
// edge) and a quiet radio's shrunken one, matching the brute-force scan
// the grid replaces.
func TestTxRangeScaleNeighborsGridVsScan(t *testing.T) {
	for _, scale := range []float64{0.5, 1, 2.5} {
		// Build twice: with the grid (motion bound set) and without.
		var got [2][]NodeID
		for pass, bound := range []bool{true, false} {
			sched := sim.NewScheduler()
			ch := NewChannel(sched, 250)
			if bound {
				ch.SetMotionBound(20)
			}
			var center *Radio
			for i := 0; i < 40; i++ {
				r := ch.AddRadio(NodeID(i), mobility.Static{P: geom.Point{X: float64(i%8) * 110, Y: float64(i/8) * 110}})
				if i == 0 {
					center = r
				}
			}
			center.SetTxRangeScale(scale)
			ids := ch.Neighbors(center, 0)
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			got[pass] = ids
		}
		if len(got[0]) != len(got[1]) {
			t.Fatalf("scale %v: grid found %d neighbors, scan %d", scale, len(got[0]), len(got[1]))
		}
		for i := range got[0] {
			if got[0][i] != got[1][i] {
				t.Fatalf("scale %v: grid/scan neighbor sets differ: %v vs %v", scale, got[0], got[1])
			}
		}
	}
}

type txRecord struct {
	now     sim.Time
	tx      NodeID
	airtime sim.Time
}

type txRecorder struct{ events []txRecord }

func (o *txRecorder) FrameTransmitted(now sim.Time, tx NodeID, airtime sim.Time) {
	o.events = append(o.events, txRecord{now, tx, airtime})
}

// TestTxObserverSeesEveryTransmission: the observer fires once per
// Transmit with the frame's airtime, including frames nobody receives.
func TestTxObserverSeesEveryTransmission(t *testing.T) {
	sched, ch, radios, _ := lineup(t, 2, 100, 250)
	rec := &txRecorder{}
	ch.SetTxObserver(rec)
	ch.Transmit(radios[0], Frame{From: 0, To: 1, Bytes: 512}, 2)
	sched.Run()
	ch.Transmit(radios[1], Frame{From: 1, To: 9, Bytes: 64}, 2) // addressee does not exist
	sched.Run()
	if len(rec.events) != 2 {
		t.Fatalf("observer saw %d transmissions, want 2", len(rec.events))
	}
	if rec.events[0].tx != 0 || rec.events[0].airtime != Airtime(512, 2) {
		t.Fatalf("first event = %+v", rec.events[0])
	}
	if rec.events[1].tx != 1 || rec.events[1].airtime != Airtime(64, 2) {
		t.Fatalf("second event = %+v", rec.events[1])
	}
}
