// Package profiling wires Go's pprof profilers into the CLI tools. Both
// rcast-bench and rcast-sim expose -cpuprofile/-memprofile flags so hot
// paths in the event kernel can be inspected on real workloads without a
// test harness.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins writing a CPU profile to path and returns a stop function
// that ends the profile and closes the file. An empty path is a no-op: the
// returned stop function does nothing.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocation profile to path, running a GC first so the
// heap numbers reflect live objects rather than collectable garbage. An
// empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
