// Package propagation implements pluggable channel models deciding, per
// link and instant, whether a receiver can decode a transmitter. The disk
// model reproduces the simulator's historical behaviour exactly (two-ray
// ground with a hard decode radius, DESIGN.md §2); shadowing and fading
// layer randomness over the same d^-4 path loss.
//
// Determinism contract: every verdict is a pure function of (seed, link,
// instant, distance). Models draw nothing from shared RNG streams and keep
// no mutable state, so verdicts are identical regardless of query order,
// repetition, or which subsystem asks — the property record/replay and the
// spatial grid both rely on. Links are unordered: Decodable(a, b) and
// Decodable(b, a) agree at every instant, preserving the disk channel's
// reciprocity (carrier sense and neighbor counts stay symmetric).
//
// MaxRange bounds the distance at which any verdict can be true. The PHY
// grid (internal/phy/grid.go) sizes its candidate queries from this bound,
// so a model is free to extend links beyond the nominal radius — a
// constructive shadowing or fading draw — as long as MaxRange covers the
// extension. Both random models therefore clamp their dB draws: the
// truncated tail mass is negligible (see ShadowClampSigmas, FadingMaxGain)
// and in exchange the grid keeps a finite, correct reach.
package propagation

import (
	"fmt"
	"math"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Model is a propagation model: a deterministic per-(link, instant)
// decodability oracle with a hard reach bound. It satisfies
// phy.Propagation; Name returns the canonical model name used by
// scenario.Config.Channel.
type Model interface {
	phy.Propagation
	Name() string
}

// Names lists the model names Parse accepts, in presentation order.
func Names() []string { return []string{"disk", "shadowing", "fading"} }

// ShadowClampSigmas bounds shadowing draws to ±4σ. The clamp turns the
// log-normal's unbounded tail into a finite MaxRange for the grid; the
// truncated mass is ~6e-5 of draws.
const ShadowClampSigmas = 4.0

// FadingMaxGain caps the Rayleigh power gain (unit-mean exponential) at 9,
// truncating P(g>9) = e^-9 ≈ 1.2e-4 of draws so MaxRange stays finite
// (9^(1/4) ≈ 1.73× the nominal radius).
const FadingMaxGain = 9.0

// pathLossExponent is the two-ray ground falloff the nominal radius is
// calibrated against: received power ∝ d^-4, so a gain of x dB stretches
// the decode radius by 10^(x/40).
const pathLossExponent = 4.0

// Parse resolves a model by name for the given nominal radius and seed.
// "" and "disk" yield the exact-disk model; sigmaDB parameterizes
// "shadowing" (0 degenerates to the disk) and is ignored otherwise.
func Parse(name string, rangeM, sigmaDB float64, seed int64) (Model, error) {
	switch name {
	case "", "disk":
		return Disk{RangeM: rangeM}, nil
	case "shadowing":
		return NewShadowing(rangeM, sigmaDB, seed), nil
	case "fading":
		return NewFading(rangeM, seed), nil
	default:
		return nil, fmt.Errorf("propagation: unknown model %q (want one of %v)", name, Names())
	}
}

// Disk is deterministic disk propagation: decodable iff the distance is
// within the nominal radius. Byte-for-byte the simulator's historical
// channel (phy keeps an inlined fast path for the nil-model case; this
// type exists so the model plumbing can be exercised uniformly).
type Disk struct {
	RangeM float64
}

var _ Model = Disk{}

// Name implements Model.
func (Disk) Name() string { return "disk" }

// MaxRange implements phy.Propagation.
func (d Disk) MaxRange() float64 { return d.RangeM }

// Decodable implements phy.Propagation.
func (d Disk) Decodable(_ sim.Time, _, _ phy.NodeID, dist float64) bool {
	return dist <= d.RangeM
}

// Shadowing is log-normal shadowing over the d^-4 path loss: each
// unordered link gets one Gaussian gain X ~ N(0, σ²) dB, fixed for the
// whole run (shadowing models obstruction geometry, which changes with
// position, not time), stretching that link's decode radius to
// R·10^(X/40). σ = 0 reproduces the disk exactly: the gain factor is
// 10^0 = 1 and the verdict is the same dist <= R comparison.
type Shadowing struct {
	rangeM   float64
	sigmaDB  float64
	seed     int64
	maxRange float64
}

var _ Model = (*Shadowing)(nil)

// NewShadowing creates a shadowing model with std-dev sigmaDB (clamped
// below at 0) around nominal radius rangeM. The seed must come from a
// dedicated stream name (see sim.DeriveSeed) so channel randomness never
// aliases mobility or MAC randomness.
func NewShadowing(rangeM, sigmaDB float64, seed int64) *Shadowing {
	if sigmaDB < 0 {
		sigmaDB = 0
	}
	return &Shadowing{
		rangeM:   rangeM,
		sigmaDB:  sigmaDB,
		seed:     seed,
		maxRange: rangeM * dbToRangeFactor(ShadowClampSigmas*sigmaDB),
	}
}

// Name implements Model.
func (*Shadowing) Name() string { return "shadowing" }

// MaxRange implements phy.Propagation.
func (s *Shadowing) MaxRange() float64 { return s.maxRange }

// Decodable implements phy.Propagation. The per-link gain is re-derived
// by hashing on every call rather than cached: the hash is a handful of
// multiplies, and statelessness is what makes verdicts order-independent.
func (s *Shadowing) Decodable(_ sim.Time, a, b phy.NodeID, dist float64) bool {
	if s.sigmaDB == 0 {
		return dist <= s.rangeM
	}
	x := s.gainDB(a, b)
	return dist <= s.rangeM*dbToRangeFactor(x)
}

// GainDB exposes a link's shadowing gain in dB (testing and diagnostics).
func (s *Shadowing) GainDB(a, b phy.NodeID) float64 {
	if s.sigmaDB == 0 {
		return 0
	}
	return s.gainDB(a, b)
}

func (s *Shadowing) gainDB(a, b phy.NodeID) float64 {
	g := gaussian(linkHash(s.seed, a, b, 0))
	x := g * s.sigmaDB
	limit := ShadowClampSigmas * s.sigmaDB
	return math.Max(-limit, math.Min(limit, x))
}

// Fading is Rayleigh fading over the d^-4 path loss: each (unordered
// link, instant) draws an independent unit-mean exponential power gain g
// (Rayleigh amplitude squared), stretching the decode radius to R·g^(1/4)
// for that instant. Successive instants fade independently — a block-
// fading abstraction with a one-microsecond block, chosen for determinism
// over channel coherence (DESIGN.md §15).
type Fading struct {
	rangeM   float64
	seed     int64
	maxRange float64
}

var _ Model = (*Fading)(nil)

// NewFading creates a Rayleigh fading model around nominal radius rangeM.
func NewFading(rangeM float64, seed int64) *Fading {
	return &Fading{
		rangeM:   rangeM,
		seed:     seed,
		maxRange: rangeM * math.Pow(FadingMaxGain, 1/pathLossExponent),
	}
}

// Name implements Model.
func (*Fading) Name() string { return "fading" }

// MaxRange implements phy.Propagation.
func (f *Fading) MaxRange() float64 { return f.maxRange }

// Decodable implements phy.Propagation.
func (f *Fading) Decodable(now sim.Time, a, b phy.NodeID, dist float64) bool {
	u := uniform(linkHash(f.seed, a, b, uint64(now)))
	// Inverse-CDF exponential, capped at FadingMaxGain. 1-u is in (0, 1],
	// so the log is finite.
	g := -math.Log(1 - u)
	if g > FadingMaxGain {
		g = FadingMaxGain
	}
	return dist <= f.rangeM*math.Pow(g, 1/pathLossExponent)
}

// dbToRangeFactor converts a power gain in dB to the factor it stretches
// the decode radius by under the d^-4 path loss.
func dbToRangeFactor(db float64) float64 {
	return math.Pow(10, db/(10*pathLossExponent))
}

// linkHash mixes (seed, unordered link, instant) into 64 uniform bits via
// splitmix64 finalizers. Ordering the pair makes every model reciprocal;
// the extra round after folding in the instant keeps per-instant draws
// (fading) decorrelated across adjacent microseconds.
func linkHash(seed int64, a, b phy.NodeID, instant uint64) uint64 {
	lo, hi := uint64(uint32(a)), uint64(uint32(b))
	if lo > hi {
		lo, hi = hi, lo
	}
	z := uint64(seed)
	z = mix64(z ^ lo<<32 ^ hi)
	z = mix64(z ^ instant)
	return z
}

// mix64 is the splitmix64 finalizer (same constants as sim.ReplicationSeed).
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// uniform maps 64 hash bits to [0, 1) with 53-bit resolution.
func uniform(z uint64) float64 {
	return float64(z>>11) / (1 << 53)
}

// gaussian maps 64 hash bits to one standard normal draw via Box–Muller,
// deriving the second uniform by re-mixing the first hash so one link
// identity yields one deterministic gaussian.
func gaussian(z uint64) float64 {
	u1 := uniform(z)
	u2 := uniform(mix64(z))
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
