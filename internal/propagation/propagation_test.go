package propagation

import (
	"math"
	"testing"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

func TestParse(t *testing.T) {
	for _, name := range Names() {
		m, err := Parse(name, 250, 4, 7)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("Parse(%q).Name() = %q", name, m.Name())
		}
	}
	if m, err := Parse("", 250, 4, 7); err != nil || m.Name() != "disk" {
		t.Errorf("Parse(\"\") = %v, %v; want disk", m, err)
	}
	if _, err := Parse("nakagami", 250, 4, 7); err == nil {
		t.Error("Parse of unknown model did not fail")
	}
}

func TestDiskExact(t *testing.T) {
	d := Disk{RangeM: 250}
	if !d.Decodable(0, 1, 2, 250) {
		t.Error("disk rejects dist == RangeM")
	}
	if d.Decodable(0, 1, 2, math.Nextafter(250, 251)) {
		t.Error("disk accepts dist just past RangeM")
	}
	if d.MaxRange() != 250 {
		t.Errorf("disk MaxRange = %v", d.MaxRange())
	}
}

// TestZeroSigmaShadowingIsDisk pins the metamorphic identity the golden
// traces rely on: σ=0 shadowing must be the exact dist <= R comparison,
// bit-for-bit, including the boundary.
func TestZeroSigmaShadowingIsDisk(t *testing.T) {
	s := NewShadowing(250, 0, 99)
	d := Disk{RangeM: 250}
	if s.MaxRange() != d.MaxRange() {
		t.Fatalf("σ=0 MaxRange %v != disk %v", s.MaxRange(), d.MaxRange())
	}
	for _, dist := range []float64{0, 1, 249.999, 250, math.Nextafter(250, 251), 300} {
		if s.Decodable(5, 1, 2, dist) != d.Decodable(5, 1, 2, dist) {
			t.Errorf("σ=0 shadowing diverges from disk at dist %v", dist)
		}
	}
	if g := s.GainDB(1, 2); g != 0 {
		t.Errorf("σ=0 GainDB = %v", g)
	}
}

// models returns one of each under test with a common nominal radius.
func models(t *testing.T) []Model {
	t.Helper()
	var ms []Model
	for _, name := range Names() {
		m, err := Parse(name, 250, 6, 42)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	return ms
}

// TestVerdictDeterminismAndSymmetry is the core contract: verdicts are
// pure functions of (seed, unordered link, instant, dist) — identical on
// repetition and under link reversal.
func TestVerdictDeterminismAndSymmetry(t *testing.T) {
	for _, m := range models(t) {
		for a := phy.NodeID(0); a < 8; a++ {
			for b := a + 1; b < 8; b++ {
				for _, now := range []sim.Time{0, 1, 999_999, 7_500_000} {
					for _, dist := range []float64{10, 150, 249, 260, 350, 430} {
						v1 := m.Decodable(now, a, b, dist)
						v2 := m.Decodable(now, a, b, dist)
						v3 := m.Decodable(now, b, a, dist)
						if v1 != v2 {
							t.Fatalf("%s: verdict changed on repeat (%d,%d,%d,%v)", m.Name(), a, b, now, dist)
						}
						if v1 != v3 {
							t.Fatalf("%s: verdict asymmetric (%d,%d,%d,%v)", m.Name(), a, b, now, dist)
						}
					}
				}
			}
		}
	}
}

// TestMaxRangeBounds checks the grid invariant: no verdict is true beyond
// MaxRange, and MaxRange is not absurdly loose (some verdict is true past
// the nominal radius for the random models, so the slack is being used).
func TestMaxRangeBounds(t *testing.T) {
	for _, m := range models(t) {
		mr := m.MaxRange()
		if mr < 250 {
			t.Fatalf("%s: MaxRange %v below nominal radius", m.Name(), mr)
		}
		beyond := math.Nextafter(mr, 2*mr)
		extended := false
		for a := phy.NodeID(0); a < 40; a++ {
			for b := a + 1; b < 40; b++ {
				for _, now := range []sim.Time{0, 123_456, 1_000_000} {
					if m.Decodable(now, a, b, beyond) {
						t.Fatalf("%s: decodable at %v beyond MaxRange %v", m.Name(), beyond, mr)
					}
					if m.Decodable(now, a, b, 251) {
						extended = true
					}
				}
			}
		}
		if m.Name() != "disk" && !extended {
			t.Errorf("%s: no link ever decodes past the nominal radius; constructive draws missing", m.Name())
		}
		if m.Name() == "disk" && extended {
			t.Error("disk decoded past its radius")
		}
	}
}

// TestShadowingInstantInvariant: shadowing gains model geometry, not time —
// the verdict for a link must not depend on the instant.
func TestShadowingInstantInvariant(t *testing.T) {
	s := NewShadowing(250, 8, 17)
	for a := phy.NodeID(0); a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			ref := s.Decodable(0, a, b, 270)
			for _, now := range []sim.Time{1, 50_000, 999_999_999} {
				if s.Decodable(now, a, b, 270) != ref {
					t.Fatalf("shadowing verdict for (%d,%d) changed with time", a, b)
				}
			}
		}
	}
}

// TestFadingVariesWithInstant: fading must actually fade — adjacent
// instants should disagree for some borderline distance.
func TestFadingVariesWithInstant(t *testing.T) {
	f := NewFading(250, 17)
	varies := false
	for now := sim.Time(0); now < 200 && !varies; now++ {
		if f.Decodable(now, 1, 2, 250) != f.Decodable(now+1, 1, 2, 250) {
			varies = true
		}
	}
	if !varies {
		t.Error("fading verdict constant across 200 adjacent instants at the nominal radius")
	}
}

// TestShadowingGainDistribution sanity-checks the hashed Box–Muller draws:
// across many links the gains should be near N(0, σ²) and clamped.
func TestShadowingGainDistribution(t *testing.T) {
	const sigma = 6.0
	s := NewShadowing(250, sigma, 4242)
	var sum, sumSq float64
	n := 0
	limit := ShadowClampSigmas * sigma
	for a := phy.NodeID(0); a < 100; a++ {
		for b := a + 1; b < 100; b++ {
			g := s.GainDB(a, b)
			if math.Abs(g) > limit {
				t.Fatalf("gain %v outside clamp ±%v", g, limit)
			}
			sum += g
			sumSq += g * g
			n++
		}
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.5 {
		t.Errorf("gain mean %v, want ~0", mean)
	}
	if math.Abs(std-sigma) > 0.5 {
		t.Errorf("gain std %v, want ~%v", std, sigma)
	}
}

// TestFadingGainDistribution checks the capped exponential: unit mean
// (slightly under, from the cap) and monotone tail.
func TestFadingGainDistribution(t *testing.T) {
	f := NewFading(250, 4242)
	var decodes int
	const trials = 20000
	// At dist = R the verdict is g >= 1, so the decode rate estimates
	// P(exp(1) >= 1) = e^-1 ≈ 0.368.
	for i := 0; i < trials; i++ {
		if f.Decodable(sim.Time(i), 3, 4, 250) {
			decodes++
		}
	}
	got := float64(decodes) / trials
	want := math.Exp(-1)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("decode rate at nominal radius %v, want ~%v", got, want)
	}
}

// TestSeedIndependence: different seeds must give different channels.
func TestSeedIndependence(t *testing.T) {
	s1 := NewShadowing(250, 6, 1)
	s2 := NewShadowing(250, 6, 2)
	diff := 0
	for a := phy.NodeID(0); a < 30; a++ {
		for b := a + 1; b < 30; b++ {
			if s1.GainDB(a, b) != s2.GainDB(a, b) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("shadowing gains identical across seeds")
	}
}

func TestNegativeSigmaClamped(t *testing.T) {
	s := NewShadowing(250, -3, 1)
	if s.MaxRange() != 250 {
		t.Errorf("negative sigma MaxRange = %v, want 250", s.MaxRange())
	}
	if !s.Decodable(0, 1, 2, 250) || s.Decodable(0, 1, 2, 250.1) {
		t.Error("negative sigma did not degenerate to disk")
	}
}
