package replay

import (
	"fmt"
	"reflect"
	"testing"

	"rcast/internal/scenario"
	"rcast/internal/trace"
)

// TestReplayChannelModels is the faded-run round-trip property: under every
// non-disk propagation model × mobility model, replaying the captured trace
// reproduces the original Result exactly. Transmit-time chan-lost verdicts
// come from the recorded decision stream (chanLossPlayer); neighbor-query
// verdicts re-derive from the config seed — both paths must line up.
func TestReplayChannelModels(t *testing.T) {
	channels := []struct {
		name  string
		sigma float64
	}{
		{name: "shadowing", sigma: 6},
		{name: "fading"},
	}
	mobilities := scenario.MobilityNames()
	for _, ch := range channels {
		for _, mob := range mobilities {
			ch, mob := ch, mob
			t.Run(fmt.Sprintf("%s/%s", ch.name, mob), func(t *testing.T) {
				t.Parallel()
				cfg := smallCell(9)
				cfg.Channel = ch.name
				cfg.ShadowSigmaDB = ch.sigma
				cfg.Mobility = mob
				res, events, counts := record(t, cfg)
				if res.Channel.ChannelLost == 0 {
					t.Fatalf("cell produced no channel losses; test proves nothing")
				}

				d, err := Extract(events)
				if err != nil {
					t.Fatal(err)
				}
				if uint64(len(d.ChanLosses)) != res.Channel.ChannelLost {
					t.Fatalf("extracted %d chan-losses, stats say %d",
						len(d.ChanLosses), res.Channel.ChannelLost)
				}

				ctr := trace.NewCounter()
				cfg2 := smallCell(9)
				cfg2.Channel = ch.name
				cfg2.ShadowSigmaDB = ch.sigma
				cfg2.Mobility = mob
				cfg2.Trace = ctr
				res2, replayed, err := Run(cfg2, events)
				if err != nil {
					t.Fatal(err)
				}
				if len(replayed) != len(events) {
					t.Fatalf("replayed %d events, recorded %d", len(replayed), len(events))
				}
				if got := ctr.Snapshot(); !reflect.DeepEqual(got, counts) {
					t.Fatalf("counter mismatch:\n got %v\nwant %v", got, counts)
				}
				if !reflect.DeepEqual(res, res2) {
					t.Fatalf("faded replay diverged:\n got %+v\nwant %+v", res2, res)
				}
			})
		}
	}
}

// TestReplayChannelTruncated cuts the chan-lost decision stream short: the
// player must report the unconsumed/overrun state instead of replaying
// cleanly (this is what lets tracegate -update refuse unreplayable goldens).
func TestReplayChannelTruncated(t *testing.T) {
	cfg := smallCell(9)
	cfg.Channel = "fading"
	res, events, _ := record(t, cfg)
	if res.Channel.ChannelLost < 2 {
		t.Skip("too few channel losses to truncate meaningfully")
	}
	// Drop the last chan-lost event from the recording.
	cut := make([]trace.Event, 0, len(events))
	dropped := false
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		if !dropped && e.Kind == trace.KindPhyDrop {
			dropped = true
			continue
		}
		cut = append(cut, e)
	}
	for i, j := 0, len(cut)-1; i < j; i, j = i+1, j-1 {
		cut[i], cut[j] = cut[j], cut[i]
	}
	cfg2 := smallCell(9)
	cfg2.Channel = "fading"
	if _, _, err := Run(cfg2, cut); err == nil {
		t.Fatal("truncated faded recording replayed cleanly")
	}
}

// TestExtractChanLoss pins the chan-lost decision parsing.
func TestExtractChanLoss(t *testing.T) {
	evs := []trace.Event{
		{Seq: 1, At: 150, Node: 4, Kind: trace.KindPhyDrop, Detail: "chan-lost from=n0 to=bcast"},
		{Seq: 2, At: 151, Node: 2, Kind: trace.KindPhyDrop, Detail: "fault-lost from=n1 to=n2"},
	}
	d, err := Extract(evs)
	if err != nil {
		t.Fatal(err)
	}
	if want := []Loss{{At: 150, Rx: 4, Tx: 0}}; !reflect.DeepEqual(d.ChanLosses, want) {
		t.Fatalf("chan-losses = %+v, want %+v", d.ChanLosses, want)
	}
	if want := []Loss{{At: 151, Rx: 2, Tx: 1}}; !reflect.DeepEqual(d.Losses, want) {
		t.Fatalf("fault losses = %+v, want %+v", d.Losses, want)
	}
	if _, err := Extract([]trace.Event{{Kind: trace.KindPhyDrop, Detail: "chan-lost from=n0"}}); err == nil {
		t.Error("short chan-lost detail accepted")
	}

	// Player: head-matched consumption, then unconsumed surfaces in Finish.
	p := NewPlayer(d)
	hooks := p.Hooks()
	if hooks.ChanLoss == nil {
		t.Fatal("Hooks did not install a channel-loss model")
	}
	if hooks.ChanLoss.Lose(150, 0, 4) != true {
		t.Fatal("recorded chan-loss not injected")
	}
	if hooks.ChanLoss.Lose(150, 0, 5) != false {
		t.Fatal("non-recorded candidate reported lost")
	}
	if p.Lose(151, 1, 2) != true {
		t.Fatal("fault loss not injected")
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}

	p2 := NewPlayer(d)
	p2.Lose(151, 1, 2)
	if err := p2.Finish(); err == nil {
		t.Fatal("unconsumed chan-loss not reported by Finish")
	}
}
