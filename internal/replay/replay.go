// Package replay re-executes a simulation from its captured trace. The
// NDJSON trace a run emits (internal/trace) records every stochastic
// decision the run made — each overhearing-lottery verdict, each
// fault-injected PHY loss, each crash/recovery firing — in scheduler
// order. Extract parses those decision events back out; Player injects
// them at the corresponding decision sites via scenario.ReplayHooks; Run
// ties the two together and verifies the re-executed run emits a
// byte-identical event stream.
//
// What replay pins vs. what it still derives from the config: the fault
// plan's RNG path (crash schedule, Gilbert–Elliott loss chains) and the
// lottery *verdicts* come from the trace — replaying a faulted run does
// not need the plan's crash/loss parameters, and replaying a randomized
// scheme does not need the original overhearing probability. Mobility,
// traffic, DCF backoff and ATIM jitter are re-derived from the config's
// seed streams, which the config must therefore still carry; the lottery
// override deliberately lets the configured policy draw first (it shares
// the per-node MAC stream with DCF backoff) and only replaces its
// verdict, so the stream stays aligned. DESIGN.md §14 spells out the
// model.
package replay

import (
	"fmt"
	"strconv"
	"strings"

	"rcast/internal/core"
	"rcast/internal/fault"
	"rcast/internal/mac"
	"rcast/internal/phy"
	"rcast/internal/scenario"
	"rcast/internal/sim"
	"rcast/internal/trace"
)

// Lottery is one recorded overhearing-lottery verdict: at At, listener
// Node heard From advertise at Level and decided to stay awake (or not).
type Lottery struct {
	At    sim.Time
	Node  phy.NodeID // listener
	From  phy.NodeID // advertiser
	Level core.Level
	Stay  bool
}

// Loss is one recorded fault-injected PHY loss: at At, receiver Rx lost a
// frame transmitted by Tx to the LossModel.
type Loss struct {
	At sim.Time
	Rx phy.NodeID
	Tx phy.NodeID
}

// Decisions is the stochastic decision stream extracted from a trace, in
// scheduler order within each kind.
type Decisions struct {
	Lotteries []Lottery
	Losses    []Loss
	// ChanLosses are the propagation model's transmit-time rejections
	// (chan-lost drops) in consultation order. Replay injects them in
	// place of the model's verdicts, so a faded run replays even without
	// re-deriving the channel hash — and a divergence in channel behaviour
	// is caught as an unconsumed or mismatched decision.
	ChanLosses []Loss
	// Crashes pairs each effective crash with its observed recovery
	// (RecoverAt 0 = none observed), in firing order — which is the
	// injector's scheduling order, so re-scheduling them reproduces the
	// original same-instant FIFO interleave.
	Crashes []fault.Crash
}

// levelByName inverts core.Level.String for the lottery detail field.
var levelByName = map[string]core.Level{
	core.LevelNone.String():          core.LevelNone,
	core.LevelRandomized.String():    core.LevelRandomized,
	core.LevelUnconditional.String(): core.LevelUnconditional,
}

// parseNode parses the "n<id>"/"bcast" rendering of phy.NodeID.String.
func parseNode(s string) (phy.NodeID, error) {
	if s == "bcast" {
		return phy.Broadcast, nil
	}
	if len(s) < 2 || s[0] != 'n' {
		return 0, fmt.Errorf("bad node %q", s)
	}
	id, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad node %q", s)
	}
	return phy.NodeID(id), nil
}

// field extracts the value of a "key=value" token.
func field(tok, key string) (string, bool) {
	if !strings.HasPrefix(tok, key) || len(tok) <= len(key) || tok[len(key)] != '=' {
		return "", false
	}
	return tok[len(key)+1:], true
}

// Extract parses the decision events out of a captured trace. Events that
// are not decisions (routing lifecycle, wake/sleep, non-fault PHY drops…)
// are skipped; a decision event whose detail does not parse is an error —
// the trace cannot drive a replay if its decisions are unreadable.
func Extract(events []trace.Event) (*Decisions, error) {
	d := &Decisions{}
	// openCrash maps a node to its pending entry in d.Crashes so the next
	// recovery event closes the right crash.
	openCrash := make(map[phy.NodeID]int)
	for i, e := range events {
		switch e.Kind {
		case trace.KindLottery:
			// Detail: "from=<node> level=<level> stay-awake|sleep"
			toks := strings.Fields(e.Detail)
			if len(toks) != 3 {
				return nil, fmt.Errorf("replay: event %d: bad lottery detail %q", i, e.Detail)
			}
			fromS, ok1 := field(toks[0], "from")
			lvlS, ok2 := field(toks[1], "level")
			lvl, ok3 := levelByName[lvlS]
			if !ok1 || !ok2 || !ok3 || (toks[2] != "stay-awake" && toks[2] != "sleep") {
				return nil, fmt.Errorf("replay: event %d: bad lottery detail %q", i, e.Detail)
			}
			from, err := parseNode(fromS)
			if err != nil {
				return nil, fmt.Errorf("replay: event %d: %v", i, err)
			}
			d.Lotteries = append(d.Lotteries, Lottery{
				At: e.At, Node: e.Node, From: from, Level: lvl,
				Stay: toks[2] == "stay-awake",
			})
		case trace.KindPhyDrop:
			// Fault-injected and channel-declined losses are decisions;
			// collision and missed-asleep drops are consequences the replay
			// re-derives.
			isChan := false
			rest, ok := strings.CutPrefix(e.Detail, phy.LossFault+" ")
			if !ok {
				rest, ok = strings.CutPrefix(e.Detail, phy.LossChannel+" ")
				isChan = true
			}
			if !ok {
				continue
			}
			toks := strings.Fields(rest)
			if len(toks) != 2 {
				return nil, fmt.Errorf("replay: event %d: bad phy-drop detail %q", i, e.Detail)
			}
			fromS, ok1 := field(toks[0], "from")
			if _, ok2 := field(toks[1], "to"); !ok1 || !ok2 {
				return nil, fmt.Errorf("replay: event %d: bad phy-drop detail %q", i, e.Detail)
			}
			tx, err := parseNode(fromS)
			if err != nil {
				return nil, fmt.Errorf("replay: event %d: %v", i, err)
			}
			if isChan {
				d.ChanLosses = append(d.ChanLosses, Loss{At: e.At, Rx: e.Node, Tx: tx})
			} else {
				d.Losses = append(d.Losses, Loss{At: e.At, Rx: e.Node, Tx: tx})
			}
		case trace.KindCrash:
			openCrash[e.Node] = len(d.Crashes)
			d.Crashes = append(d.Crashes, fault.Crash{Node: int(e.Node), At: e.At})
		case trace.KindRecover:
			idx, ok := openCrash[e.Node]
			if !ok {
				return nil, fmt.Errorf("replay: event %d: recovery of %v without a crash", i, e.Node)
			}
			d.Crashes[idx].RecoverAt = e.At
			delete(openCrash, e.Node)
		}
	}
	return d, nil
}

// Player injects a Decisions stream at the simulation's decision sites.
// Each decision is consumed strictly in order with its site context
// matched against the recording; the first mismatch is latched (the hook
// then falls back to the live verdict so the run can finish and be
// diffed) and reported by Err/Finish.
type Player struct {
	d          *Decisions
	li, xi, ci int // cursors: next lottery, next fault loss, next chan loss
	err        error
}

// NewPlayer creates a Player over an extracted decision stream.
func NewPlayer(d *Decisions) *Player { return &Player{d: d} }

// fail latches the first mismatch.
func (p *Player) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first decision-site mismatch, if any.
func (p *Player) Err() error { return p.err }

// Finish reports the first mismatch or any recorded decisions the run
// never consumed — either way the replay did not follow the recording.
func (p *Player) Finish() error {
	if p.err != nil {
		return p.err
	}
	if p.li != len(p.d.Lotteries) {
		return fmt.Errorf("replay: %d of %d recorded lotteries never consumed (next: %+v)",
			len(p.d.Lotteries)-p.li, len(p.d.Lotteries), p.d.Lotteries[p.li])
	}
	if p.xi != len(p.d.Losses) {
		return fmt.Errorf("replay: %d of %d recorded fault losses never consumed (next: %+v)",
			len(p.d.Losses)-p.xi, len(p.d.Losses), p.d.Losses[p.xi])
	}
	if p.ci != len(p.d.ChanLosses) {
		return fmt.Errorf("replay: %d of %d recorded channel losses never consumed (next: %+v)",
			len(p.d.ChanLosses)-p.ci, len(p.d.ChanLosses), p.d.ChanLosses[p.ci])
	}
	return nil
}

// lottery is the scenario.ReplayHooks.Lottery hook.
func (p *Player) lottery(now sim.Time, node phy.NodeID, a mac.Announcement, policySays bool) bool {
	if p.li >= len(p.d.Lotteries) {
		p.fail("replay: lottery at %v node=%v from=%v beyond the %d recorded",
			now, node, a.From, len(p.d.Lotteries))
		return policySays
	}
	rec := p.d.Lotteries[p.li]
	if rec.At != now || rec.Node != node || rec.From != a.From || rec.Level != a.Level {
		p.fail("replay: lottery %d mismatch: recorded %+v, live at=%v node=%v from=%v level=%v",
			p.li, rec, now, node, a.From, a.Level)
		return policySays
	}
	p.li++
	return rec.Stay
}

// Lose implements phy.LossModel: a frame is lost exactly when the next
// recorded fault loss matches this consultation. Negative consultations
// were not recorded, so they match nothing and pass the frame through.
func (p *Player) Lose(now sim.Time, tx, rx phy.NodeID) bool {
	if p.xi < len(p.d.Losses) {
		if rec := p.d.Losses[p.xi]; rec.At == now && rec.Rx == rx && rec.Tx == tx {
			p.xi++
			return true
		}
	}
	return false
}

// chanLossPlayer adapts the Player's channel-loss cursor to phy.LossModel
// (the Player itself carries Lose for the fault-loss stream).
type chanLossPlayer struct{ p *Player }

// Lose implements phy.LossModel over the recorded chan-lost stream, with
// the same head-match discipline as the fault-loss hook: the propagation
// path consults it once per in-reach candidate in consultation order, and
// a frame is channel-lost exactly when the next recorded decision matches.
func (c chanLossPlayer) Lose(now sim.Time, tx, rx phy.NodeID) bool {
	p := c.p
	if p.ci < len(p.d.ChanLosses) {
		if rec := p.d.ChanLosses[p.ci]; rec.At == now && rec.Rx == rx && rec.Tx == tx {
			p.ci++
			return true
		}
	}
	return false
}

// Hooks returns the scenario wiring for this player.
func (p *Player) Hooks() *scenario.ReplayHooks {
	return &scenario.ReplayHooks{
		Lottery:          p.lottery,
		Loss:             p,
		ChanLoss:         chanLossPlayer{p: p},
		CrashSchedule:    p.d.Crashes,
		UseCrashSchedule: true,
	}
}

// Run re-executes cfg under the decision stream of a recorded trace and
// verifies the replayed run is event-identical to the recording. cfg must
// be the recorded run's configuration (sinks excluded); the returned
// events are the replayed trace. A divergence is an error naming the
// first differing event.
func Run(cfg scenario.Config, recorded []trace.Event) (*scenario.Result, []trace.Event, error) {
	d, err := Extract(recorded)
	if err != nil {
		return nil, nil, err
	}
	p := NewPlayer(d)
	rec := trace.NewRecorder()
	if cfg.Trace != nil {
		cfg.Trace = trace.Multi{rec, cfg.Trace}
	} else {
		cfg.Trace = rec
	}
	cfg.Replay = p.Hooks()
	res, err := scenario.Run(cfg)
	if err != nil {
		return nil, rec.Events(), err
	}
	if err := p.Finish(); err != nil {
		return res, rec.Events(), err
	}
	if div, diverged := trace.Diff(recorded, rec.Events()); diverged {
		return res, rec.Events(), fmt.Errorf("replay: diverged at event %d:\n  recorded: %s\n  replayed: %s",
			div.Index, side(div.A), side(div.B))
	}
	return res, rec.Events(), nil
}

func side(e *trace.Event) string {
	if e == nil {
		return "<end of trace>"
	}
	return e.String()
}
