package replay

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rcast/internal/core"
	"rcast/internal/fault"
	"rcast/internal/mac"
	"rcast/internal/phy"
	"rcast/internal/scenario"
	"rcast/internal/sim"
	"rcast/internal/trace"
)

// smallCell is a fast mobile cell that still exercises ATIM windows,
// overhearing lotteries and multi-hop forwarding.
func smallCell(seed int64) scenario.Config {
	cfg := scenario.PaperDefaults()
	cfg.Nodes = 10
	cfg.FieldW, cfg.FieldH = 600, 300
	cfg.Connections = 3
	cfg.PacketRate = 1.0
	cfg.Duration = 10 * sim.Second
	cfg.TrafficStart = 1 * sim.Second
	cfg.Pause = 2 * sim.Second
	cfg.MaxSpeed = 10
	cfg.Seed = seed
	return cfg
}

// record runs cfg with a recorder attached and returns the result, the
// captured events and the per-kind tallies.
func record(t *testing.T, cfg scenario.Config) (*scenario.Result, []trace.Event, map[trace.Kind]uint64) {
	t.Helper()
	rec := trace.NewRecorder()
	ctr := trace.NewCounter()
	cfg.Trace = trace.Multi{rec, ctr}
	res, err := scenario.Run(cfg)
	if err != nil {
		t.Fatalf("original run: %v", err)
	}
	return res, rec.Events(), ctr.Snapshot()
}

// TestReplayPropertySeedsSchemes is the satellite property test: for 20
// random seeds across 3 schemes, replaying the captured trace reproduces
// the original run's trace.Counter tallies and the full Result (the
// struct rcast-sim renders stdout from — identical structs, identical
// report bytes; ci.sh's round-trip smoke additionally pins the literal
// CLI output).
func TestReplayPropertySeedsSchemes(t *testing.T) {
	schemes := []scenario.Scheme{scenario.SchemeRcast, scenario.SchemePSM, scenario.SchemeODPM}
	for _, scheme := range schemes {
		for seed := int64(1); seed <= 20; seed++ {
			scheme, seed := scheme, seed
			t.Run(fmt.Sprintf("%v/seed%d", scheme, seed), func(t *testing.T) {
				t.Parallel()
				cfg := smallCell(seed)
				cfg.Scheme = scheme
				res, events, counts := record(t, cfg)
				if counts[trace.KindLottery] == 0 && scheme == scenario.SchemeRcast {
					t.Fatalf("cell too small: no lotteries recorded")
				}

				ctr := trace.NewCounter()
				cfg2 := smallCell(seed)
				cfg2.Scheme = scheme
				cfg2.Trace = ctr
				res2, replayed, err := Run(cfg2, events)
				if err != nil {
					t.Fatal(err)
				}
				if len(replayed) != len(events) {
					t.Fatalf("replayed %d events, recorded %d", len(replayed), len(events))
				}
				if got := ctr.Snapshot(); !reflect.DeepEqual(got, counts) {
					t.Fatalf("counter mismatch:\n got %v\nwant %v", got, counts)
				}
				if !reflect.DeepEqual(res, res2) {
					t.Fatalf("results differ:\n got %+v\nwant %+v", res2, res)
				}
			})
		}
	}
}

// TestReplayNamedPolicyAndTxPower: a run configured through the new
// registry knobs — a named overhearing policy and an off-nominal transmit
// power — records and replays like any other cell: same tallies, same
// Result, byte-identical event stream length.
func TestReplayNamedPolicyAndTxPower(t *testing.T) {
	for _, tc := range []struct {
		name    string
		policy  string
		txPower float64
		battery float64
	}{
		{name: "battery-policy", policy: "battery", battery: 2000},
		{name: "reduced-power", txPower: -3},
		{name: "combined-boosted", policy: "combined", txPower: 3},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := smallCell(11)
			cfg.PolicyName = tc.policy
			cfg.TxPowerDBm = tc.txPower
			cfg.BatteryJoules = tc.battery
			res, events, counts := record(t, cfg)
			if counts[trace.KindLottery] == 0 {
				t.Fatal("cell too small: no lotteries recorded")
			}

			ctr := trace.NewCounter()
			cfg2 := smallCell(11)
			cfg2.PolicyName = tc.policy
			cfg2.TxPowerDBm = tc.txPower
			cfg2.BatteryJoules = tc.battery
			cfg2.Trace = ctr
			res2, replayed, err := Run(cfg2, events)
			if err != nil {
				t.Fatal(err)
			}
			if len(replayed) != len(events) {
				t.Fatalf("replayed %d events, recorded %d", len(replayed), len(events))
			}
			if got := ctr.Snapshot(); !reflect.DeepEqual(got, counts) {
				t.Fatalf("counter mismatch:\n got %v\nwant %v", got, counts)
			}
			if !reflect.DeepEqual(res, res2) {
				t.Fatalf("results differ:\n got %+v\nwant %+v", res2, res)
			}
		})
	}
}

// TestReplayOverridesPolicyProbability demonstrates that lottery verdicts
// really come from the trace: the replay runs under a different (but
// equally RNG-hungry) overhearing probability and still reproduces the
// original byte-for-byte, because the recorded verdicts override the
// policy's. FixedProb draws exactly one Float64 per randomized query for
// any P in (0,1), so the shared MAC stream stays aligned.
func TestReplayOverridesPolicyProbability(t *testing.T) {
	cfg := smallCell(7)
	cfg.Policy = core.FixedProb{P: 0.7}
	res, events, _ := record(t, cfg)

	cfg2 := smallCell(7)
	cfg2.Policy = core.FixedProb{P: 0.2}
	res2, _, err := Run(cfg2, events)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("replay under a different overhearing probability diverged")
	}

	// Control: without replay the two probabilities genuinely diverge —
	// otherwise the test above proves nothing.
	cfg3 := smallCell(7)
	cfg3.Policy = core.FixedProb{P: 0.2}
	res3, _, _ := record(t, cfg3)
	if reflect.DeepEqual(res, res3) {
		t.Fatal("control: P=0.7 and P=0.2 produced identical runs")
	}
}

// TestReplayFaultsWithoutPlan demonstrates that the fault plan's RNG path
// is not needed to replay a faulted run: the crash schedule (resp. the
// Gilbert–Elliott loss chains) are injected from the trace while the
// replay config carries no fault plan at all.
func TestReplayFaultsWithoutPlan(t *testing.T) {
	for _, preset := range []string{"crash", "loss"} {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			t.Parallel()
			var plan *fault.Plan
			if preset == "crash" {
				// A custom plan rather than the preset: fraction 0.6 with a
				// short downtime makes crashes (and recoveries) near-certain
				// in a 10-node cell, so the skip guard below stays dead code.
				plan = &fault.Plan{CrashFraction: 0.6, Downtime: 3 * sim.Second}
			} else {
				var err error
				if plan, err = fault.Preset(preset); err != nil {
					t.Fatal(err)
				}
			}
			cfg := smallCell(11)
			cfg.Faults = plan
			res, events, counts := record(t, cfg)
			switch preset {
			case "crash":
				if counts[trace.KindCrash] == 0 {
					t.Skip("preset produced no crashes in this cell")
				}
			case "loss":
				if res.Channel.FaultLost == 0 {
					t.Skip("preset produced no burst losses in this cell")
				}
			}

			cfg2 := smallCell(11)
			cfg2.Faults = nil // the decision stream replaces the plan's RNG path
			res2, _, err := Run(cfg2, events)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, res2) {
				t.Fatalf("plan-free replay of %q preset diverged", preset)
			}
		})
	}
}

// TestReplayAlwaysOn covers the scheme with no lotteries at all: the
// decision stream is empty of MAC decisions and replay must still match.
func TestReplayAlwaysOn(t *testing.T) {
	cfg := smallCell(3)
	cfg.Scheme = scenario.SchemeAlwaysOn
	res, events, _ := record(t, cfg)
	cfg2 := smallCell(3)
	cfg2.Scheme = scenario.SchemeAlwaysOn
	res2, _, err := Run(cfg2, events)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("always-on replay diverged")
	}
}

// TestReplayDetectsTamperedVerdict plants a flipped lottery verdict in
// the recording: the replay faithfully injects it, the run takes the
// other branch, and the trace diff must flag a divergence.
func TestReplayDetectsTamperedVerdict(t *testing.T) {
	cfg := smallCell(5)
	_, events, _ := record(t, cfg)
	idx := -1
	for i, e := range events {
		if e.Kind == trace.KindLottery && strings.HasSuffix(e.Detail, " sleep") {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Skip("no sleep verdict recorded")
	}
	tampered := append([]trace.Event(nil), events...)
	tampered[idx].Detail = strings.TrimSuffix(tampered[idx].Detail, " sleep") + " stay-awake"

	cfg2 := smallCell(5)
	_, _, err := Run(cfg2, tampered)
	if err == nil {
		t.Fatal("tampered recording replayed cleanly")
	}
	// Either detection path is fine: the injected flip perturbs later
	// decision contexts (player mismatch) or the replayed stream differs
	// from the recording (trace diff) — both name the offending event.
	if !strings.Contains(err.Error(), "diverged at event") && !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("err = %v, want a divergence or mismatch report", err)
	}
}

// TestReplayDetectsTruncatedRecording: a recording cut short runs out of
// decisions; the player reports the overrun even though the fallback (the
// live policy) lets the run complete.
func TestReplayDetectsTruncatedRecording(t *testing.T) {
	cfg := smallCell(5)
	_, events, counts := record(t, cfg)
	if counts[trace.KindLottery] < 2 {
		t.Skip("too few lotteries to truncate meaningfully")
	}
	// Cut just after the first lottery so later lotteries are missing.
	first := -1
	for i, e := range events {
		if e.Kind == trace.KindLottery {
			first = i
			break
		}
	}
	cut := events[:first+1]
	cfg2 := smallCell(5)
	_, _, err := Run(cfg2, cut)
	if err == nil {
		t.Fatal("truncated recording replayed cleanly")
	}
}

// TestExtract pins the decision-event parsing against hand-built events.
func TestExtract(t *testing.T) {
	evs := []trace.Event{
		{Seq: 1, At: 100, Node: 2, Kind: trace.KindLottery, Detail: "from=n1 level=randomized stay-awake"},
		{Seq: 2, At: 100, Node: 3, Kind: trace.KindLottery, Detail: "from=n1 level=unconditional sleep"},
		{Seq: 3, At: 150, Node: 4, Kind: trace.KindPhyDrop, Detail: "fault-lost from=n0 to=bcast"},
		{Seq: 4, At: 160, Node: 4, Kind: trace.KindPhyDrop, Detail: "collision from=n0 to=n4"},
		{Seq: 5, At: 200, Node: 1, Kind: trace.KindCrash, Detail: "flushed=2"},
		{Seq: 6, At: 210, Node: 5, Kind: trace.KindCrash, Detail: "flushed=0"},
		{Seq: 7, At: 300, Node: 1, Kind: trace.KindRecover},
		{Seq: 8, At: 400, Node: 0, Kind: trace.KindDeliver, Pkt: "0:1:2"},
	}
	d, err := Extract(evs)
	if err != nil {
		t.Fatal(err)
	}
	wantLot := []Lottery{
		{At: 100, Node: 2, From: 1, Level: core.LevelRandomized, Stay: true},
		{At: 100, Node: 3, From: 1, Level: core.LevelUnconditional, Stay: false},
	}
	if !reflect.DeepEqual(d.Lotteries, wantLot) {
		t.Fatalf("lotteries = %+v", d.Lotteries)
	}
	if want := []Loss{{At: 150, Rx: 4, Tx: 0}}; !reflect.DeepEqual(d.Losses, want) {
		t.Fatalf("losses = %+v (collision drops must be skipped)", d.Losses)
	}
	wantCr := []fault.Crash{
		{Node: 1, At: 200, RecoverAt: 300},
		{Node: 5, At: 210},
	}
	if !reflect.DeepEqual(d.Crashes, wantCr) {
		t.Fatalf("crashes = %+v", d.Crashes)
	}
}

func TestExtractErrors(t *testing.T) {
	cases := map[string]trace.Event{
		"short lottery":    {Kind: trace.KindLottery, Detail: "from=n1 stay-awake"},
		"bad level":        {Kind: trace.KindLottery, Detail: "from=n1 level=sometimes sleep"},
		"bad verdict":      {Kind: trace.KindLottery, Detail: "from=n1 level=randomized maybe"},
		"bad node":         {Kind: trace.KindLottery, Detail: "from=x1 level=randomized sleep"},
		"bad fault drop":   {Kind: trace.KindPhyDrop, Detail: "fault-lost from=n0"},
		"bad drop node":    {Kind: trace.KindPhyDrop, Detail: "fault-lost from=zz to=n1"},
		"orphan recovery":  {Kind: trace.KindRecover, Node: 3},
		"recover no crash": {Kind: trace.KindRecover, Node: 0},
	}
	for name, ev := range cases {
		if _, err := Extract([]trace.Event{ev}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestPlayerMismatch drives the hooks directly against a wrong context.
func TestPlayerMismatch(t *testing.T) {
	d := &Decisions{Lotteries: []Lottery{{At: 100, Node: 2, From: 1, Level: core.LevelRandomized, Stay: true}}}
	p := NewPlayer(d)
	// Wrong node: the hook falls back to the live verdict and latches.
	if got := p.lottery(100, 9, mkAnn(1, core.LevelRandomized), false); got != false {
		t.Fatal("mismatched lottery did not fall back to the live verdict")
	}
	if p.Err() == nil || p.Finish() == nil {
		t.Fatal("mismatch not latched")
	}

	p2 := NewPlayer(d)
	if got := p2.lottery(100, 2, mkAnn(1, core.LevelRandomized), false); got != true {
		t.Fatal("matching lottery did not inject the recorded verdict")
	}
	if err := p2.Finish(); err != nil {
		t.Fatal(err)
	}
	// Overrun: one more query than recorded.
	if got := p2.lottery(200, 2, mkAnn(1, core.LevelRandomized), true); got != true {
		t.Fatal("overrun did not fall back to the live verdict")
	}
	if p2.Err() == nil {
		t.Fatal("overrun not latched")
	}

	// Unconsumed decisions surface in Finish.
	p3 := NewPlayer(&Decisions{Losses: []Loss{{At: 5, Rx: 1, Tx: 0}}})
	if p3.Finish() == nil {
		t.Fatal("unconsumed loss not reported")
	}
	if p3.Lose(5, 0, 1) != true || p3.Lose(5, 0, 1) != false {
		t.Fatal("loss cursor misbehaved")
	}
	if err := p3.Finish(); err != nil {
		t.Fatal(err)
	}
}

func mkAnn(from phy.NodeID, lvl core.Level) mac.Announcement {
	return mac.Announcement{From: from, Level: lvl}
}
