// Package aodv implements Ad-hoc On-demand Distance Vector routing
// (Perkins & Royer), the other on-demand protocol the paper discusses.
//
// AODV is the paper's foil for DSR: it keeps per-destination routing-table
// entries instead of source routes, gathers no information from
// overhearing, expires routes on a timeout, and (optionally) broadcasts
// periodic hello messages for link sensing. The paper's §1 footnote
// summarizes the consequences — more route-request traffic ("90% of the
// routing overhead comes from RREQ", citing Das et al.) and a poor fit
// with 802.11 PSM because periodic broadcasts keep neighborhoods awake.
// This package exists to reproduce those comparisons (experiment A6).
package aodv

import (
	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Wire-size constants (RFC 3561 packet formats, bytes).
const (
	rreqBytes  = 24
	rrepBytes  = 20
	helloBytes = 20
	rerrFixed  = 4
	rerrPerDst = 8
	dataHeader = 8 // flow id + seq framing on top of IP
)

// Message is any AODV packet.
type Message interface {
	Class() core.Class
	WireBytes() int
}

// DataPacket is an application payload forwarded hop by hop using the
// routing tables (AODV carries no source route).
type DataPacket struct {
	FlowID uint64
	Seq    uint64

	Src, Dst     phy.NodeID
	HopsTaken    int
	PayloadBytes int
	OriginatedAt sim.Time
}

var _ Message = (*DataPacket)(nil)

// Class implements Message.
func (*DataPacket) Class() core.Class { return core.ClassData }

// WireBytes implements Message.
func (p *DataPacket) WireBytes() int { return p.PayloadBytes + dataHeader }

// RouteRequest floods the network searching for Target.
type RouteRequest struct {
	ID        uint64
	Origin    phy.NodeID
	OriginSeq uint64
	Target    phy.NodeID
	// TargetSeq is the origin's last known sequence number for Target
	// (0 = unknown); intermediate nodes may only answer from their tables
	// with at least this freshness.
	TargetSeq uint64
	HopCount  int
	HopLimit  int
}

var _ Message = (*RouteRequest)(nil)

// Class implements Message.
func (*RouteRequest) Class() core.Class { return core.ClassRREQ }

// WireBytes implements Message.
func (*RouteRequest) WireBytes() int { return rreqBytes }

// RouteReply travels back along the reverse path installing forward
// routes.
type RouteReply struct {
	Origin    phy.NodeID // the discovery origin the RREP is heading to
	Target    phy.NodeID // the destination the route leads to
	TargetSeq uint64
	HopCount  int // hops from the replier to Target, incremented en route
	Lifetime  sim.Time
}

var _ Message = (*RouteReply)(nil)

// Class implements Message.
func (*RouteReply) Class() core.Class { return core.ClassRREP }

// WireBytes implements Message.
func (*RouteReply) WireBytes() int { return rrepBytes }

// Hello is the periodic 1-hop broadcast used for link sensing — the
// periodic traffic the paper singles out as hostile to PSM.
type Hello struct {
	From phy.NodeID
	Seq  uint64
}

var _ Message = (*Hello)(nil)

// Class implements Message. Hellos are link-sensing control traffic; they
// ride the RREP class as in RFC 3561 (a hello is an unsolicited RREP).
func (*Hello) Class() core.Class { return core.ClassRREP }

// WireBytes implements Message.
func (*Hello) WireBytes() int { return helloBytes }

// RouteError invalidates routes through a broken next hop.
type RouteError struct {
	From        phy.NodeID
	Unreachable []Unreachable
}

// Unreachable is one (destination, sequence) pair listed in a RERR.
type Unreachable struct {
	Dst phy.NodeID
	Seq uint64
}

var _ Message = (*RouteError)(nil)

// Class implements Message.
func (*RouteError) Class() core.Class { return core.ClassRERR }

// WireBytes implements Message.
func (r *RouteError) WireBytes() int { return rerrFixed + rerrPerDst*len(r.Unreachable) }
