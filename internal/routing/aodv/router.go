package aodv

import (
	"math/rand"
	"sort"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Transport is the MAC-facing send interface (mirrors dsr.Transport).
type Transport interface {
	Send(nh phy.NodeID, msg Message, onResult func(delivered bool))
}

// Hooks are optional observation points; nil fields are skipped.
type Hooks struct {
	DataOriginated func(p *DataPacket)
	DataDelivered  func(p *DataPacket, from phy.NodeID)
	DataDropped    func(p *DataPacket, reason string)
	DataForwarded  func(p *DataPacket)
	ControlSent    func(c core.Class)
	RREPReceived   func()
	DataActivity   func()
}

// Config parameterizes a Router. Zero fields take RFC-flavoured defaults
// scaled for the PSM latency regime (a flood advances roughly one hop per
// beacon interval).
type Config struct {
	// ActiveRouteTimeout is the route lifetime, refreshed on use. The RFC
	// default of 3 s is the behaviour the paper criticizes: at low packet
	// rates routes expire between packets and every packet re-floods.
	ActiveRouteTimeout sim.Time
	// DiscoveryTimeout is the base RREP wait, doubled per retry.
	DiscoveryTimeout sim.Time
	// MaxDiscoveryAttempts bounds retries (RREQ_RETRIES+1 in RFC terms).
	MaxDiscoveryAttempts int
	// NonPropagatingFirst enables the TTL=1 expanding-ring first attempt.
	NonPropagatingFirst bool
	// HelloInterval spaces periodic hello broadcasts while the node has
	// active routes; 0 disables hellos.
	HelloInterval sim.Time
	// SendBufferCap bounds buffered packets per destination.
	SendBufferCap int
	// RebroadcastJitter desynchronizes flood rebroadcasts.
	RebroadcastJitter sim.Time
	// IntermediateReplies lets nodes with fresh-enough table entries
	// answer RREQs (RFC default behaviour).
	IntermediateReplies bool
}

// DefaultConfig returns the defaults used by the comparison experiments.
func DefaultConfig() Config {
	return Config{
		ActiveRouteTimeout:   3 * sim.Second,
		DiscoveryTimeout:     sim.Second,
		MaxDiscoveryAttempts: 6,
		NonPropagatingFirst:  true,
		HelloInterval:        sim.Second,
		SendBufferCap:        64,
		RebroadcastJitter:    10 * sim.Millisecond,
		IntermediateReplies:  true,
	}
}

// Stats counts router events.
type Stats struct {
	RREQSent     uint64
	RREPSent     uint64
	RERRSent     uint64
	HelloSent    uint64
	DataSent     uint64
	Delivered    uint64
	Dropped      uint64
	LinkFailures uint64
	Expirations  uint64 // discoveries forced by expired routes
}

// Router is one node's AODV instance.
type Router struct {
	id    phy.NodeID
	sched *sim.Scheduler
	rng   *rand.Rand
	tr    Transport
	cfg   Config
	table *Table
	hooks Hooks

	seq        uint64 // own sequence number
	nextRREQID uint64
	nextPktSeq uint64
	helloSeq   uint64

	seenRREQ    map[rreqKey]struct{}
	buf         map[phy.NodeID][]*DataPacket
	discoveries map[phy.NodeID]*discovery
	helloTimer  sim.Timer
	stopped     bool
	down        bool // fault-injected crash: reversible via Restart

	stats Stats
}

type rreqKey struct {
	origin phy.NodeID
	id     uint64
}

type discovery struct {
	attempts int
	timer    sim.Timer
}

// New creates an AODV router and starts its hello schedule (if enabled).
func New(id phy.NodeID, sched *sim.Scheduler, rng *rand.Rand, tr Transport, cfg Config, hooks Hooks) *Router {
	if cfg.ActiveRouteTimeout <= 0 {
		cfg.ActiveRouteTimeout = 3 * sim.Second
	}
	if cfg.DiscoveryTimeout <= 0 {
		cfg.DiscoveryTimeout = sim.Second
	}
	if cfg.MaxDiscoveryAttempts <= 0 {
		cfg.MaxDiscoveryAttempts = 6
	}
	if cfg.SendBufferCap <= 0 {
		cfg.SendBufferCap = 64
	}
	r := &Router{
		id:          id,
		sched:       sched,
		rng:         rng,
		tr:          tr,
		cfg:         cfg,
		table:       NewTable(id),
		hooks:       hooks,
		seenRREQ:    make(map[rreqKey]struct{}),
		buf:         make(map[phy.NodeID][]*DataPacket),
		discoveries: make(map[phy.NodeID]*discovery),
	}
	if cfg.HelloInterval > 0 {
		r.scheduleHello()
	}
	return r
}

// ID returns the owning node's ID.
func (r *Router) ID() phy.NodeID { return r.id }

// Table exposes the routing table for metrics and tests.
func (r *Router) Table() *Table { return r.table }

// BufferedData returns the data packets currently parked awaiting route
// discovery, ordered by destination then insertion. The audit layer
// enumerates still-buffered traffic with it at teardown.
func (r *Router) BufferedData() []*DataPacket {
	dsts := make([]phy.NodeID, 0, len(r.buf))
	for dst := range r.buf {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	var out []*DataPacket
	for _, dst := range dsts {
		out = append(out, r.buf[dst]...)
	}
	return out
}

// Stats returns a copy of the router counters.
func (r *Router) Stats() Stats { return r.stats }

// Stop halts periodic activity (hellos).
func (r *Router) Stop() {
	r.stopped = true
	r.helloTimer.Cancel()
}

// Crash wipes the router for a fault-injected node crash: hellos stop,
// discovery timers are cancelled, and the send buffer, RREQ dedup state
// and routing table are cleared. The buffered data packets are returned
// (destination order, as BufferedData) WITHOUT passing through the drop
// hook — the fault layer reconciles them as a terminal class of their own.
// Stats and sequence counters survive (the latter so recycled packets
// never reuse a PacketKey).
func (r *Router) Crash() []*DataPacket {
	if r.down {
		return nil
	}
	r.down = true
	flushed := r.BufferedData()
	r.Stop()
	dsts := make([]phy.NodeID, 0, len(r.discoveries))
	for dst := range r.discoveries {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		r.discoveries[dst].timer.Cancel()
		delete(r.discoveries, dst)
	}
	clear(r.buf)
	clear(r.seenRREQ)
	r.table = NewTable(r.id)
	return flushed
}

// Restart brings a crashed router back up with empty state and resumes the
// hello schedule.
func (r *Router) Restart() {
	if !r.down {
		return
	}
	r.down = false
	r.stopped = false
	if r.cfg.HelloInterval > 0 {
		r.scheduleHello()
	}
}

// SendData originates an application packet to dst.
func (r *Router) SendData(dst phy.NodeID, flowID uint64, payloadBytes int) {
	if r.down {
		return
	}
	now := r.sched.Now()
	r.nextPktSeq++
	pkt := &DataPacket{
		FlowID:       flowID,
		Seq:          r.nextPktSeq,
		Src:          r.id,
		Dst:          dst,
		PayloadBytes: payloadBytes,
		OriginatedAt: now,
	}
	if r.hooks.DataOriginated != nil {
		r.hooks.DataOriginated(pkt)
	}
	if dst == r.id {
		r.deliver(pkt, r.id)
		return
	}
	r.forwardOrDiscover(pkt)
}

// forwardOrDiscover sends pkt to the next hop, or buffers it and starts a
// discovery when no valid route exists.
func (r *Router) forwardOrDiscover(pkt *DataPacket) {
	now := r.sched.Now()
	route := r.table.Lookup(now, pkt.Dst)
	if route == nil {
		q := r.buf[pkt.Dst]
		if len(q) >= r.cfg.SendBufferCap {
			r.drop(q[0], "buffer-overflow")
			q = q[1:]
		}
		r.buf[pkt.Dst] = append(q, pkt)
		r.startDiscovery(pkt.Dst)
		return
	}
	r.table.Refresh(now, pkt.Dst, r.cfg.ActiveRouteTimeout)
	r.stats.DataSent++
	if r.hooks.DataActivity != nil {
		r.hooks.DataActivity()
	}
	nh := route.NextHop
	r.tr.Send(nh, pkt, func(delivered bool) {
		if !delivered {
			r.handleLinkFailure(pkt, nh)
		}
	})
}

// handleLinkFailure invalidates routes via the dead hop and emits a RERR
// to the affected precursors (broadcast, as RFC 3561 §6.11 allows).
func (r *Router) handleLinkFailure(pkt *DataPacket, nh phy.NodeID) {
	r.stats.LinkFailures++
	now := r.sched.Now()
	unreachable := r.table.InvalidateVia(now, nh)
	if len(unreachable) > 0 {
		r.sendRERR(&RouteError{From: r.id, Unreachable: unreachable})
	}
	if pkt.Src == r.id {
		// Source: re-buffer and rediscover.
		r.forwardOrDiscover(pkt)
		return
	}
	r.drop(pkt, "link-failure")
}

func (r *Router) deliver(pkt *DataPacket, from phy.NodeID) {
	r.stats.Delivered++
	if r.hooks.DataActivity != nil {
		r.hooks.DataActivity()
	}
	if r.hooks.DataDelivered != nil {
		r.hooks.DataDelivered(pkt, from)
	}
}

func (r *Router) drop(pkt *DataPacket, reason string) {
	r.stats.Dropped++
	if r.hooks.DataDropped != nil {
		r.hooks.DataDropped(pkt, reason)
	}
}

// --- discovery ---

func (r *Router) startDiscovery(dst phy.NodeID) {
	if _, running := r.discoveries[dst]; running {
		return
	}
	d := &discovery{}
	r.discoveries[dst] = d
	r.issueRREQ(dst, d)
}

func (r *Router) issueRREQ(dst phy.NodeID, d *discovery) {
	d.attempts++
	if d.attempts > r.cfg.MaxDiscoveryAttempts {
		delete(r.discoveries, dst)
		for _, pkt := range r.buf[dst] {
			r.drop(pkt, "no-route")
		}
		delete(r.buf, dst)
		return
	}
	hopLimit := 255
	if r.cfg.NonPropagatingFirst && d.attempts == 1 {
		hopLimit = 1
	}
	r.seq++ // RFC: increment own seq before a discovery
	r.nextRREQID++
	req := &RouteRequest{
		ID:        r.nextRREQID,
		Origin:    r.id,
		OriginSeq: r.seq,
		Target:    dst,
		TargetSeq: r.table.LastKnownSeq(dst),
		HopLimit:  hopLimit,
	}
	r.seenRREQ[rreqKey{origin: r.id, id: req.ID}] = struct{}{}
	r.stats.RREQSent++
	r.control(core.ClassRREQ)
	r.tr.Send(phy.Broadcast, req, nil)

	timeout := r.cfg.DiscoveryTimeout << uint(d.attempts-1)
	d.timer = r.sched.After(timeout, func() { r.issueRREQ(dst, d) })
}

// routeEstablished flushes buffered traffic when a route to dst appears.
func (r *Router) routeEstablished(dst phy.NodeID) {
	if d, running := r.discoveries[dst]; running {
		d.timer.Cancel()
		delete(r.discoveries, dst)
	}
	q := r.buf[dst]
	delete(r.buf, dst)
	for _, pkt := range q {
		r.forwardOrDiscover(pkt)
	}
}

// --- control senders ---

func (r *Router) sendRREP(to phy.NodeID, rep *RouteReply) {
	r.stats.RREPSent++
	r.control(core.ClassRREP)
	r.tr.Send(to, rep, nil)
}

func (r *Router) sendRERR(rerr *RouteError) {
	r.stats.RERRSent++
	r.control(core.ClassRERR)
	r.tr.Send(phy.Broadcast, rerr, nil)
}

func (r *Router) control(c core.Class) {
	if r.hooks.ControlSent != nil {
		r.hooks.ControlSent(c)
	}
}

// --- hello schedule ---

func (r *Router) scheduleHello() {
	r.helloTimer = r.sched.After(r.cfg.HelloInterval, func() {
		if r.stopped {
			return
		}
		now := r.sched.Now()
		if r.table.ActiveRoutes(now) > 0 {
			r.helloSeq++
			r.seq++
			r.stats.HelloSent++
			r.control(core.ClassRREP) // hellos are unsolicited RREPs
			r.tr.Send(phy.Broadcast, &Hello{From: r.id, Seq: r.seq}, nil)
		}
		r.scheduleHello()
	})
}

// --- receive path ---

// Receive processes a message addressed to this node (or broadcast).
func (r *Router) Receive(from phy.NodeID, msg Message) {
	switch m := msg.(type) {
	case *DataPacket:
		r.onData(from, m)
	case *RouteRequest:
		r.onRREQ(from, m)
	case *RouteReply:
		r.onRREP(from, m)
	case *Hello:
		r.onHello(from, m)
	case *RouteError:
		r.onRERR(from, m)
	}
}

// Overhear is a no-op: AODV, by design, gathers no route information from
// packets addressed to other nodes (paper §1 footnote). It exists so AODV
// satisfies the same routing interface as DSR.
func (r *Router) Overhear(phy.NodeID, Message) {}

func (r *Router) onData(from phy.NodeID, pkt *DataPacket) {
	now := r.sched.Now()
	// Seeing traffic from `from` refreshes the neighbor route.
	r.table.Update(now, from, from, 1, r.table.LastKnownSeq(from), r.cfg.ActiveRouteTimeout)
	if pkt.Dst == r.id {
		r.deliver(pkt, from)
		return
	}
	fwd := *pkt
	fwd.HopsTaken = pkt.HopsTaken + 1
	if fwd.HopsTaken > 32 {
		r.drop(&fwd, "ttl-exceeded")
		return
	}
	if r.hooks.DataForwarded != nil {
		r.hooks.DataForwarded(&fwd)
	}
	// Refresh the reverse route towards the source as well (§6.2).
	r.table.Refresh(now, pkt.Src, r.cfg.ActiveRouteTimeout)
	r.forwardOrDiscover(&fwd)
}

func (r *Router) onRREQ(from phy.NodeID, req *RouteRequest) {
	if req.Origin == r.id {
		return
	}
	now := r.sched.Now()
	key := rreqKey{origin: req.Origin, id: req.ID}
	if _, dup := r.seenRREQ[key]; dup {
		return
	}
	r.seenRREQ[key] = struct{}{}

	hops := req.HopCount + 1
	// Install/refresh the reverse route to the origin through `from`.
	r.table.Update(now, req.Origin, from, hops, req.OriginSeq, r.cfg.ActiveRouteTimeout)
	if req.Origin != from {
		r.table.Update(now, from, from, 1, r.table.LastKnownSeq(from), r.cfg.ActiveRouteTimeout)
	}
	r.routeEstablished(req.Origin)

	if r.id == req.Target {
		if req.TargetSeq > r.seq {
			r.seq = req.TargetSeq
		}
		r.seq++ // destination bumps its sequence number before replying
		r.sendRREP(from, &RouteReply{
			Origin:    req.Origin,
			Target:    r.id,
			TargetSeq: r.seq,
			HopCount:  0,
			Lifetime:  r.cfg.ActiveRouteTimeout,
		})
		return
	}

	// Intermediate reply from a fresh-enough table entry.
	if r.cfg.IntermediateReplies {
		if route := r.table.Lookup(now, req.Target); route != nil && route.DstSeq >= req.TargetSeq && req.TargetSeq > 0 {
			r.table.AddPrecursor(req.Target, from)
			r.sendRREP(from, &RouteReply{
				Origin:    req.Origin,
				Target:    req.Target,
				TargetSeq: route.DstSeq,
				HopCount:  route.HopCount,
				Lifetime:  route.ValidUntil - now,
			})
			return
		}
	}

	if req.HopLimit <= 1 {
		return
	}
	fwd := *req
	fwd.HopCount = hops
	fwd.HopLimit = req.HopLimit - 1
	jitter := sim.Time(0)
	if r.cfg.RebroadcastJitter > 0 {
		jitter = sim.Time(r.rng.Int63n(int64(r.cfg.RebroadcastJitter) + 1))
	}
	r.sched.After(jitter, func() {
		if r.down {
			return // crashed while the rebroadcast sat in its jitter window
		}
		r.stats.RREQSent++
		r.control(core.ClassRREQ)
		r.tr.Send(phy.Broadcast, &fwd, nil)
	})
}

func (r *Router) onRREP(from phy.NodeID, rep *RouteReply) {
	now := r.sched.Now()
	if r.hooks.RREPReceived != nil {
		r.hooks.RREPReceived()
	}
	hops := rep.HopCount + 1
	lifetime := rep.Lifetime
	if lifetime <= 0 {
		lifetime = r.cfg.ActiveRouteTimeout
	}
	// Install the forward route to the target through `from`.
	r.table.Update(now, rep.Target, from, hops, rep.TargetSeq, lifetime)
	r.routeEstablished(rep.Target)

	if rep.Origin == r.id {
		return
	}
	// Forward towards the origin along the reverse route.
	back := r.table.Lookup(now, rep.Origin)
	if back == nil {
		return // reverse route expired; the origin will retry
	}
	r.table.AddPrecursor(rep.Target, back.NextHop)
	r.table.AddPrecursor(rep.Origin, from)
	fwd := *rep
	fwd.HopCount = hops
	r.sendRREP(back.NextHop, &fwd)
}

func (r *Router) onHello(from phy.NodeID, h *Hello) {
	now := r.sched.Now()
	// A hello is an unsolicited 1-hop RREP about the sender itself.
	r.table.Update(now, from, from, 1, h.Seq, 2*r.cfg.HelloInterval+r.cfg.ActiveRouteTimeout/2)
}

func (r *Router) onRERR(from phy.NodeID, rerr *RouteError) {
	now := r.sched.Now()
	var propagate []Unreachable
	for _, u := range rerr.Unreachable {
		dropped, precursors := r.table.Invalidate(now, u.Dst, from, u.Seq)
		if dropped && len(precursors) > 0 {
			propagate = append(propagate, u)
		}
	}
	if len(propagate) > 0 {
		r.sendRERR(&RouteError{From: r.id, Unreachable: propagate})
	}
}
