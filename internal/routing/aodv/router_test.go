package aodv

import (
	"testing"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// fakeNet mirrors the DSR test transport: an adjacency graph with instant
// knowledge, per-hop delay, and link up/down control. AODV ignores
// overhearing, so only addressed/broadcast deliveries are modelled.
type fakeNet struct {
	sched   *sim.Scheduler
	routers map[phy.NodeID]*Router
	links   map[[2]phy.NodeID]bool
	delay   sim.Time

	controlTx map[core.Class]int
	delivered []*DataPacket
	dropped   []string
}

func newFakeNet() *fakeNet {
	return &fakeNet{
		sched:     sim.NewScheduler(),
		routers:   make(map[phy.NodeID]*Router),
		links:     make(map[[2]phy.NodeID]bool),
		delay:     sim.Millisecond,
		controlTx: make(map[core.Class]int),
	}
}

func linkKey(a, b phy.NodeID) [2]phy.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]phy.NodeID{a, b}
}

func (n *fakeNet) connect(a, b phy.NodeID)    { n.links[linkKey(a, b)] = true }
func (n *fakeNet) disconnect(a, b phy.NodeID) { delete(n.links, linkKey(a, b)) }

type port struct {
	net *fakeNet
	id  phy.NodeID
}

func (p port) Send(nh phy.NodeID, msg Message, onResult func(bool)) {
	n := p.net
	src := p.id
	n.sched.After(n.delay, func() {
		if nh == phy.Broadcast {
			for other, r := range n.routers {
				if other != src && n.links[linkKey(src, other)] {
					r.Receive(src, msg)
				}
			}
			if onResult != nil {
				onResult(true)
			}
			return
		}
		up := n.links[linkKey(src, nh)]
		if up {
			n.routers[nh].Receive(src, msg)
		}
		if onResult != nil {
			onResult(up)
		}
	})
}

func (n *fakeNet) addRouter(id phy.NodeID, cfg Config) *Router {
	hooks := Hooks{
		DataDelivered: func(p *DataPacket, _ phy.NodeID) { n.delivered = append(n.delivered, p) },
		DataDropped:   func(_ *DataPacket, reason string) { n.dropped = append(n.dropped, reason) },
		ControlSent:   func(c core.Class) { n.controlTx[c]++ },
	}
	r := New(id, n.sched, sim.Stream(int64(id), "aodv"), port{net: n, id: id}, cfg, hooks)
	n.routers[id] = r
	return r
}

func (n *fakeNet) line(k int, cfg Config) []*Router {
	rs := make([]*Router, k)
	for i := 0; i < k; i++ {
		rs[i] = n.addRouter(phy.NodeID(i), cfg)
	}
	for i := 0; i+1 < k; i++ {
		n.connect(phy.NodeID(i), phy.NodeID(i+1))
	}
	return rs
}

func quiet() Config {
	cfg := DefaultConfig()
	cfg.HelloInterval = 0 // keep control counts deterministic in tests
	return cfg
}

func TestDiscoveryAndDeliveryOverChain(t *testing.T) {
	n := newFakeNet()
	rs := n.line(4, quiet())
	rs[0].SendData(3, 1, 512)
	n.sched.RunUntil(30 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatalf("delivered %d, want 1 (drops %v)", len(n.delivered), n.dropped)
	}
	p := n.delivered[0]
	if p.Src != 0 || p.Dst != 3 || p.HopsTaken != 2 {
		t.Fatalf("delivered %+v (HopsTaken counts intermediate hops)", p)
	}
}

func TestRouteExpiryForcesRediscovery(t *testing.T) {
	// The paper's §1 criticism: AODV expires routes on a timeout, so
	// packets spaced wider than ActiveRouteTimeout re-flood every time.
	n := newFakeNet()
	cfg := quiet()
	cfg.ActiveRouteTimeout = 2 * sim.Second
	rs := n.line(3, cfg)

	rs[0].SendData(2, 1, 512)
	n.sched.RunUntil(10 * sim.Second)
	rreqAfterFirst := n.controlTx[core.ClassRREQ]
	if rreqAfterFirst == 0 {
		t.Fatal("no discovery for first packet")
	}
	// Second packet 10 s later: the route has expired.
	rs[0].SendData(2, 1, 512)
	n.sched.RunUntil(30 * sim.Second)
	if len(n.delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(n.delivered))
	}
	if n.controlTx[core.ClassRREQ] <= rreqAfterFirst {
		t.Fatal("expired route did not force a second flood")
	}
}

func TestFreshRouteIsReused(t *testing.T) {
	n := newFakeNet()
	cfg := quiet()
	cfg.ActiveRouteTimeout = 30 * sim.Second
	rs := n.line(3, cfg)
	rs[0].SendData(2, 1, 512)
	n.sched.RunUntil(10 * sim.Second)
	rreqAfterFirst := n.controlTx[core.ClassRREQ]
	rs[0].SendData(2, 1, 512)
	n.sched.RunUntil(20 * sim.Second)
	if len(n.delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(n.delivered))
	}
	if n.controlTx[core.ClassRREQ] != rreqAfterFirst {
		t.Fatal("fresh route was not reused")
	}
}

func TestExpandingRing(t *testing.T) {
	n := newFakeNet()
	rs := n.line(2, quiet())
	rs[0].SendData(1, 1, 100)
	n.sched.RunUntil(10 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatal("not delivered")
	}
	if got := rs[0].Stats().RREQSent; got != 1 {
		t.Fatalf("origin sent %d RREQs, want 1 (TTL-1 ring sufficed)", got)
	}
}

func TestIntermediateReplyRequiresKnownSeq(t *testing.T) {
	// An intermediate may only answer when the origin supplied a known
	// target sequence; a first-ever discovery (TargetSeq 0) must reach the
	// destination itself.
	n := newFakeNet()
	cfg := quiet()
	cfg.ActiveRouteTimeout = 60 * sim.Second
	cfg.NonPropagatingFirst = false
	rs := n.line(4, cfg)

	// Warm node 1's table with a route to 3 by having 1 talk to 3.
	rs[1].SendData(3, 9, 10)
	n.sched.RunUntil(20 * sim.Second)
	delivered := len(n.delivered)

	// 0 discovers 3 for the first time: TargetSeq 0, so node 1 must not
	// answer from its table; the reply comes from 3.
	rs[0].SendData(3, 1, 512)
	n.sched.RunUntil(40 * sim.Second)
	if len(n.delivered) != delivered+1 {
		t.Fatalf("delivered %d, want %d", len(n.delivered), delivered+1)
	}
	if rs[3].Stats().RREPSent == 0 {
		t.Fatal("destination never replied")
	}
}

func TestLinkFailureEmitsRERRAndReroutes(t *testing.T) {
	n := newFakeNet()
	cfg := quiet()
	cfg.ActiveRouteTimeout = 60 * sim.Second
	cfg.RebroadcastJitter = 0 // deterministic flood arrival order
	rs := n.line(4, cfg)
	// Alternate path 1-4-5-3 is strictly longer than 1-2-3, so the first
	// RREQ copy reaching the target travels the chain and the primary
	// route goes through node 2.
	n.addRouter(4, cfg)
	n.addRouter(5, cfg)
	n.connect(1, 4)
	n.connect(4, 5)
	n.connect(5, 3)

	rs[0].SendData(3, 1, 512)
	n.sched.RunUntil(20 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatal("warmup lost")
	}
	n.disconnect(2, 3)
	// This packet is lost at node 2 (AODV has no salvaging); the RERR
	// propagates back and invalidates the route at the source.
	rs[0].SendData(3, 1, 512)
	n.sched.RunUntil(60 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatalf("delivered %d, want 1 (in-flight packet must be lost)", len(n.delivered))
	}
	if n.controlTx[core.ClassRERR] == 0 {
		t.Fatal("no RERR after link failure")
	}
	if rs[2].Stats().LinkFailures == 0 {
		t.Fatal("node 2 did not detect the failure")
	}
	// The next packet rediscovers and uses the 1-4-5-3 detour.
	rs[0].SendData(3, 1, 512)
	n.sched.RunUntil(180 * sim.Second)
	if len(n.delivered) != 2 {
		t.Fatalf("delivered %d, want 2 after rediscovery (drops %v)", len(n.delivered), n.dropped)
	}
	if got := n.delivered[1].HopsTaken; got != 3 {
		t.Fatalf("rerouted packet took %d intermediate hops, want 3 (via 1-4-5)", got)
	}
}

func TestHelloMaintainsNeighborRoutes(t *testing.T) {
	n := newFakeNet()
	cfg := DefaultConfig() // hellos on
	cfg.ActiveRouteTimeout = 5 * sim.Second
	rs := n.line(2, cfg)
	// Give node 0 an active route so its hello schedule fires.
	rs[0].SendData(1, 1, 64)
	n.sched.RunUntil(30 * sim.Second)
	if rs[0].Stats().HelloSent == 0 {
		t.Fatal("no hellos sent despite active routes")
	}
	// Node 1 keeps a neighbor entry for 0 alive purely from hellos.
	if rs[1].Table().Lookup(n.sched.Now(), 0) == nil {
		t.Fatal("hello did not maintain the neighbor route")
	}
}

func TestNoHelloWithoutActiveRoutes(t *testing.T) {
	n := newFakeNet()
	rs := n.line(2, DefaultConfig())
	n.sched.RunUntil(10 * sim.Second)
	if rs[0].Stats().HelloSent != 0 {
		t.Fatal("idle node broadcast hellos")
	}
}

func TestStopCancelsHellos(t *testing.T) {
	n := newFakeNet()
	rs := n.line(2, DefaultConfig())
	rs[0].SendData(1, 1, 64)
	n.sched.RunUntil(5 * sim.Second)
	sent := rs[0].Stats().HelloSent
	rs[0].Stop()
	n.sched.RunUntil(30 * sim.Second)
	if rs[0].Stats().HelloSent > sent+1 {
		t.Fatalf("hellos continued after Stop: %d -> %d", sent, rs[0].Stats().HelloSent)
	}
}

func TestUnreachableDropsAfterRetries(t *testing.T) {
	n := newFakeNet()
	cfg := quiet()
	cfg.MaxDiscoveryAttempts = 3
	rs := n.line(2, cfg)
	n.addRouter(9, cfg) // isolated
	rs[0].SendData(9, 1, 100)
	n.sched.RunUntil(120 * sim.Second)
	if len(n.delivered) != 0 {
		t.Fatal("delivered to unreachable node")
	}
	if len(n.dropped) != 1 || n.dropped[0] != "no-route" {
		t.Fatalf("drops = %v", n.dropped)
	}
}

func TestSelfAddressedDelivers(t *testing.T) {
	n := newFakeNet()
	r := n.addRouter(0, quiet())
	r.SendData(0, 1, 64)
	n.sched.RunUntil(sim.Second)
	if len(n.delivered) != 1 {
		t.Fatal("self-addressed packet lost")
	}
}

func TestOverhearIsIgnored(t *testing.T) {
	n := newFakeNet()
	r := n.addRouter(0, quiet())
	r.Overhear(5, &DataPacket{Src: 5, Dst: 9, PayloadBytes: 10})
	if r.Table().ActiveRoutes(n.sched.Now()) != 0 {
		t.Fatal("AODV learned from overhearing; it must not (paper §1)")
	}
}

func TestMessageSizes(t *testing.T) {
	tests := []struct {
		msg  Message
		want int
	}{
		{&DataPacket{PayloadBytes: 512}, 520},
		{&RouteRequest{}, 24},
		{&RouteReply{}, 20},
		{&Hello{}, 20},
		{&RouteError{Unreachable: []Unreachable{{}, {}}}, 20},
	}
	for _, tt := range tests {
		if got := tt.msg.WireBytes(); got != tt.want {
			t.Errorf("%T WireBytes = %d, want %d", tt.msg, got, tt.want)
		}
	}
	if (&Hello{}).Class() != core.ClassRREP {
		t.Error("hello must ride the RREP class (unsolicited RREP)")
	}
}
