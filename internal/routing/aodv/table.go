package aodv

import (
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Route is one routing-table entry.
type Route struct {
	Dst        phy.NodeID
	NextHop    phy.NodeID
	HopCount   int
	DstSeq     uint64
	ValidUntil sim.Time
	// Precursors are the upstream neighbors known to route through this
	// entry; they receive RERRs when the entry breaks.
	Precursors map[phy.NodeID]struct{}
}

// Table is an AODV routing table: per-destination next hops with
// sequence-numbered freshness and expiry — the timeout-driven design the
// paper contrasts with DSR's caches.
type Table struct {
	owner  phy.NodeID
	routes map[phy.NodeID]*Route

	expired uint64
}

// NewTable creates a table for owner.
func NewTable(owner phy.NodeID) *Table {
	return &Table{owner: owner, routes: make(map[phy.NodeID]*Route)}
}

// Lookup returns the valid route to dst, or nil if absent/expired.
// Expired entries are kept (not deleted): RFC 3561 retains them so the
// last-known destination sequence number survives for future RREQs.
func (t *Table) Lookup(now sim.Time, dst phy.NodeID) *Route {
	r, ok := t.routes[dst]
	if !ok {
		return nil
	}
	if r.ValidUntil <= now {
		t.expired++
		return nil
	}
	return r
}

// LastKnownSeq returns the newest sequence number ever seen for dst, even
// from an expired entry (RFC 3561 keeps it for RREQ freshness fields).
// It returns 0 when the destination was never heard of.
func (t *Table) LastKnownSeq(dst phy.NodeID) uint64 {
	if r, ok := t.routes[dst]; ok {
		return r.DstSeq
	}
	return 0
}

// Update installs or refreshes the route to dst if the new information is
// fresher (higher sequence number) or equally fresh but shorter. It
// returns the entry (new or existing) and whether it changed.
func (t *Table) Update(now sim.Time, dst, nextHop phy.NodeID, hops int, seq uint64, lifetime sim.Time) (*Route, bool) {
	cur, ok := t.routes[dst]
	fresher := !ok || cur.ValidUntil <= now || seq > cur.DstSeq ||
		(seq == cur.DstSeq && hops < cur.HopCount)
	if !fresher {
		// Refresh the lifetime of an equally good route via the same hop.
		if cur.NextHop == nextHop && cur.ValidUntil < now+lifetime {
			cur.ValidUntil = now + lifetime
		}
		return cur, false
	}
	var precursors map[phy.NodeID]struct{}
	if ok {
		precursors = cur.Precursors
	} else {
		precursors = make(map[phy.NodeID]struct{})
	}
	r := &Route{
		Dst:        dst,
		NextHop:    nextHop,
		HopCount:   hops,
		DstSeq:     seq,
		ValidUntil: now + lifetime,
		Precursors: precursors,
	}
	t.routes[dst] = r
	return r, true
}

// Refresh extends the lifetime of an active route (called on every use,
// per RFC 3561 §6.2).
func (t *Table) Refresh(now sim.Time, dst phy.NodeID, lifetime sim.Time) {
	if r, ok := t.routes[dst]; ok && r.ValidUntil > now && r.ValidUntil < now+lifetime {
		r.ValidUntil = now + lifetime
	}
}

// InvalidateVia expires every valid route whose next hop is nh, returning
// the affected (destination, seq) pairs for the RERR. Sequence numbers are
// incremented on invalidation as the RFC requires.
func (t *Table) InvalidateVia(now sim.Time, nh phy.NodeID) []Unreachable {
	var out []Unreachable
	for dst, r := range t.routes {
		if r.NextHop != nh || r.ValidUntil <= now {
			continue
		}
		r.ValidUntil = now
		r.DstSeq++
		out = append(out, Unreachable{Dst: dst, Seq: r.DstSeq})
	}
	return out
}

// Invalidate expires the route to dst if its next hop is via and the
// reported sequence is at least as fresh. It reports whether a valid route
// was dropped and returns its precursors for RERR forwarding.
func (t *Table) Invalidate(now sim.Time, dst, via phy.NodeID, seq uint64) (bool, map[phy.NodeID]struct{}) {
	r, ok := t.routes[dst]
	if !ok || r.ValidUntil <= now || r.NextHop != via {
		return false, nil
	}
	if seq < r.DstSeq {
		return false, nil
	}
	r.ValidUntil = now
	if seq > r.DstSeq {
		r.DstSeq = seq
	}
	return true, r.Precursors
}

// AddPrecursor records that upstream routes through the entry for dst.
func (t *Table) AddPrecursor(dst, upstream phy.NodeID) {
	if r, ok := t.routes[dst]; ok {
		r.Precursors[upstream] = struct{}{}
	}
}

// ActiveRoutes returns the number of unexpired entries.
func (t *Table) ActiveRoutes(now sim.Time) int {
	n := 0
	for _, r := range t.routes {
		if r.ValidUntil > now {
			n++
		}
	}
	return n
}

// Expired returns how many lookups found only an expired entry.
func (t *Table) Expired() uint64 { return t.expired }
