package aodv

import (
	"testing"

	"rcast/internal/sim"
)

func TestTableUpdateAndLookup(t *testing.T) {
	tb := NewTable(0)
	if tb.Lookup(0, 5) != nil {
		t.Fatal("empty table returned a route")
	}
	r, changed := tb.Update(0, 5, 2, 3, 7, 10*sim.Second)
	if !changed || r.NextHop != 2 || r.HopCount != 3 || r.DstSeq != 7 {
		t.Fatalf("Update = %+v changed=%v", r, changed)
	}
	if got := tb.Lookup(5*sim.Second, 5); got == nil || got.NextHop != 2 {
		t.Fatal("Lookup lost the route")
	}
	if tb.ActiveRoutes(5*sim.Second) != 1 {
		t.Fatal("ActiveRoutes wrong")
	}
}

func TestTableExpiry(t *testing.T) {
	tb := NewTable(0)
	tb.Update(0, 5, 2, 3, 7, 10*sim.Second)
	if tb.Lookup(11*sim.Second, 5) != nil {
		t.Fatal("expired route returned")
	}
	if tb.Expired() != 1 {
		t.Fatalf("Expired = %d", tb.Expired())
	}
	// Expired entries may be resurrected by any fresh update.
	if _, changed := tb.Update(12*sim.Second, 5, 3, 4, 7, 10*sim.Second); !changed {
		t.Fatal("update after expiry rejected")
	}
}

func TestTableFreshnessRules(t *testing.T) {
	tb := NewTable(0)
	now := sim.Time(0)
	tb.Update(now, 5, 2, 3, 7, 10*sim.Second)
	// Stale sequence: rejected.
	if _, changed := tb.Update(now, 5, 9, 1, 6, 10*sim.Second); changed {
		t.Fatal("stale sequence accepted")
	}
	// Same sequence, longer path: rejected.
	if _, changed := tb.Update(now, 5, 9, 5, 7, 10*sim.Second); changed {
		t.Fatal("longer same-seq route accepted")
	}
	// Same sequence, shorter path: accepted.
	if r, changed := tb.Update(now, 5, 9, 2, 7, 10*sim.Second); !changed || r.NextHop != 9 {
		t.Fatal("shorter same-seq route rejected")
	}
	// Newer sequence, longer path: accepted.
	if r, changed := tb.Update(now, 5, 4, 9, 8, 10*sim.Second); !changed || r.NextHop != 4 {
		t.Fatal("fresher route rejected")
	}
	if tb.LastKnownSeq(5) != 8 {
		t.Fatalf("LastKnownSeq = %d", tb.LastKnownSeq(5))
	}
	if tb.LastKnownSeq(99) != 0 {
		t.Fatal("unknown destination should have seq 0")
	}
}

func TestTableRefresh(t *testing.T) {
	tb := NewTable(0)
	tb.Update(0, 5, 2, 3, 7, 10*sim.Second)
	tb.Refresh(8*sim.Second, 5, 10*sim.Second)
	if tb.Lookup(15*sim.Second, 5) == nil {
		t.Fatal("refresh did not extend the lifetime")
	}
	// Refreshing an expired route is a no-op.
	tb.Refresh(30*sim.Second, 5, 10*sim.Second)
	if tb.Lookup(31*sim.Second, 5) != nil {
		t.Fatal("refresh resurrected an expired route")
	}
}

func TestInvalidateVia(t *testing.T) {
	tb := NewTable(0)
	tb.Update(0, 5, 2, 3, 7, 100*sim.Second)
	tb.Update(0, 6, 2, 2, 4, 100*sim.Second)
	tb.Update(0, 7, 3, 1, 9, 100*sim.Second)
	un := tb.InvalidateVia(sim.Second, 2)
	if len(un) != 2 {
		t.Fatalf("invalidated %d routes, want 2", len(un))
	}
	for _, u := range un {
		if u.Dst != 5 && u.Dst != 6 {
			t.Fatalf("wrong destination %v", u.Dst)
		}
	}
	if tb.Lookup(2*sim.Second, 5) != nil || tb.Lookup(2*sim.Second, 6) != nil {
		t.Fatal("invalidated routes still valid")
	}
	if tb.Lookup(2*sim.Second, 7) == nil {
		t.Fatal("unrelated route invalidated")
	}
	// Sequence numbers bumped on invalidation.
	if tb.LastKnownSeq(5) != 8 {
		t.Fatalf("seq after invalidation = %d, want 8", tb.LastKnownSeq(5))
	}
}

func TestInvalidateMatchesHopAndSeq(t *testing.T) {
	tb := NewTable(0)
	tb.Update(0, 5, 2, 3, 7, 100*sim.Second)
	tb.AddPrecursor(5, 9)
	// Wrong next hop: ignored.
	if dropped, _ := tb.Invalidate(sim.Second, 5, 3, 8); dropped {
		t.Fatal("invalidated via wrong hop")
	}
	// Stale seq: ignored.
	if dropped, _ := tb.Invalidate(sim.Second, 5, 2, 6); dropped {
		t.Fatal("invalidated with stale seq")
	}
	dropped, precursors := tb.Invalidate(sim.Second, 5, 2, 8)
	if !dropped {
		t.Fatal("valid invalidation rejected")
	}
	if _, ok := precursors[9]; !ok {
		t.Fatal("precursors lost")
	}
}
