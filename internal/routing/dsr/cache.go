package dsr

import (
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Cache is a DSR path cache: an ordered set of loop-free source routes
// rooted at the owning node. It supports shortest-route lookup with
// truncation at the target, link-based invalidation (the RERR path), an
// optional entry lifetime (Hu & Johnson's cache-timeout mechanism), and
// FIFO capacity eviction.
type Cache struct {
	owner    phy.NodeID
	capacity int
	lifetime sim.Time // 0 disables timeouts
	entries  []cacheEntry
	free     [][]phy.NodeID // recycled path buffers (only while no callbacks are installed)
	insertCB func(path []phy.NodeID)
	evictCB  func(path []phy.NodeID)

	inserts   uint64
	evictions uint64
	hits      uint64
	misses    uint64
}

type cacheEntry struct {
	path    []phy.NodeID // path[0] == owner
	nbr     phy.NodeID   // == path[1], the first hop; cheap discriminator for prefix scans
	addedAt sim.Time
}

// NewCache creates a cache for owner. capacity <= 0 selects the default
// (64 routes, the ns-2 DSR ballpark); lifetime 0 disables entry timeouts.
func NewCache(owner phy.NodeID, capacity int, lifetime sim.Time) *Cache {
	if capacity <= 0 {
		capacity = 64
	}
	return &Cache{owner: owner, capacity: capacity, lifetime: lifetime}
}

// SetInsertCallback registers a hook fired for every accepted insertion —
// the paper's role-number metric counts intermediate nodes of inserted
// routes (§4.2).
func (c *Cache) SetInsertCallback(cb func(path []phy.NodeID)) { c.insertCB = cb }

// SetEvictCallback registers a hook fired for every capacity eviction
// with the evicted path. Timeout expiry is not reported — only FIFO
// pressure, the signal lifecycle tracing cares about.
func (c *Cache) SetEvictCallback(cb func(path []phy.NodeID)) { c.evictCB = cb }

// Len returns the number of cached routes.
func (c *Cache) Len() int { return len(c.entries) }

// Clear drops every cached route (node crash: a recovered node restarts
// with amnesia). Lifetime statistics survive; the insert callback stays
// installed.
func (c *Cache) Clear() {
	for i := range c.entries {
		c.recycle(c.entries[i].path)
		c.entries[i] = cacheEntry{}
	}
	c.entries = c.entries[:0]
}

// Stats returns (inserts, evictions, hits, misses).
func (c *Cache) Stats() (inserts, evictions, hits, misses uint64) {
	return c.inserts, c.evictions, c.hits, c.misses
}

// Add inserts a route. The path must start at the owner, contain at least
// one other node, and be loop-free; offending paths are rejected. Exact
// duplicates and routes already present as a prefix of a cached route are
// ignored. Returns true if the cache changed.
func (c *Cache) Add(now sim.Time, path []phy.NodeID) bool {
	if len(path) < 2 || path[0] != c.owner || hasDuplicates(path) {
		return false
	}
	c.expire(now)
	nbr := path[1]
	for _, e := range c.entries {
		if e.nbr == nbr && isPrefix(path, e.path) {
			return false
		}
	}
	var cp []phy.NodeID
	if n := len(c.free); n > 0 && cap(c.free[n-1]) >= len(path) {
		cp = c.free[n-1][:len(path)]
		c.free = c.free[:n-1]
	} else {
		cp = make([]phy.NodeID, len(path))
	}
	copy(cp, path)
	c.entries = append(c.entries, cacheEntry{path: cp, nbr: nbr, addedAt: now})
	c.inserts++
	if c.insertCB != nil {
		c.insertCB(cp)
	}
	for len(c.entries) > c.capacity {
		evicted := c.entries[0].path
		c.entries = c.entries[1:]
		c.evictions++
		if c.evictCB != nil {
			c.evictCB(evicted)
		}
		c.recycle(evicted)
	}
	return true
}

// recycle returns a dropped path buffer to the freelist for reuse by a
// future insertion. Recycling is disabled while any callback is installed:
// callbacks receive the live path slice and may retain it (lifecycle
// tracing does), so reusing its backing array would corrupt their view.
func (c *Cache) recycle(path []phy.NodeID) {
	if c.insertCB == nil && c.evictCB == nil && len(c.free) < 64 {
		c.free = append(c.free, path[:0])
	}
}

// Find returns the shortest cached route from the owner to dst (inclusive
// of both endpoints), or nil. Routes passing through dst are truncated at
// dst.
func (c *Cache) Find(now sim.Time, dst phy.NodeID) []phy.NodeID {
	c.expire(now)
	var best []phy.NodeID
	for _, e := range c.entries {
		i := indexOf(e.path, dst)
		if i < 1 {
			continue
		}
		if best == nil || i+1 < len(best) {
			best = e.path[:i+1]
		}
	}
	if best == nil {
		c.misses++
		return nil
	}
	c.hits++
	out := make([]phy.NodeID, len(best))
	copy(out, best)
	return out
}

// HasRouteTo reports whether a route to dst exists without counting a
// hit/miss.
func (c *Cache) HasRouteTo(now sim.Time, dst phy.NodeID) bool {
	c.expire(now)
	for _, e := range c.entries {
		if indexOf(e.path, dst) >= 1 {
			return true
		}
	}
	return false
}

// RemoveLink invalidates the (bidirectional) link a–b: every cached route
// using it is truncated just before the link; truncations shorter than two
// nodes are dropped. Returns the number of affected routes.
func (c *Cache) RemoveLink(a, b phy.NodeID) int {
	affected := 0
	kept := c.entries[:0]
	for _, e := range c.entries {
		cut := len(e.path)
		for i := 0; i+1 < len(e.path); i++ {
			x, y := e.path[i], e.path[i+1]
			if (x == a && y == b) || (x == b && y == a) {
				cut = i + 1
				break
			}
		}
		if cut == len(e.path) {
			kept = append(kept, e)
			continue
		}
		affected++
		if cut >= 2 {
			e.path = e.path[:cut]
			kept = append(kept, e)
		} else {
			c.recycle(e.path)
		}
	}
	// Zero the tail so dropped entries are collectable.
	for i := len(kept); i < len(c.entries); i++ {
		c.entries[i] = cacheEntry{}
	}
	c.entries = kept
	return affected
}

// Routes returns copies of all cached routes (for inspection/metrics).
func (c *Cache) Routes(now sim.Time) [][]phy.NodeID {
	c.expire(now)
	out := make([][]phy.NodeID, 0, len(c.entries))
	for _, e := range c.entries {
		cp := make([]phy.NodeID, len(e.path))
		copy(cp, e.path)
		out = append(out, cp)
	}
	return out
}

// expire drops entries older than the lifetime. Entries are appended with
// the then-current time and only ever removed from the front, so addedAt is
// nondecreasing across the slice and the oldest entry alone decides whether
// anything can have expired.
func (c *Cache) expire(now sim.Time) {
	if c.lifetime <= 0 || len(c.entries) == 0 {
		return
	}
	if now-c.entries[0].addedAt <= c.lifetime {
		return
	}
	kept := c.entries[:0]
	for _, e := range c.entries {
		if now-e.addedAt <= c.lifetime {
			kept = append(kept, e)
		} else {
			c.recycle(e.path)
		}
	}
	for i := len(kept); i < len(c.entries); i++ {
		c.entries[i] = cacheEntry{}
	}
	c.entries = kept
}

// isPrefix reports whether p is a prefix of q.
func isPrefix(p, q []phy.NodeID) bool {
	if len(p) > len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}
