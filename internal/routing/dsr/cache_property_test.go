package dsr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

// TestCacheInvariantsProperty drives the cache with random operation
// sequences and checks structural invariants after every step:
//
//   - every cached route starts at the owner and has length >= 2;
//   - no route contains a repeated node;
//   - the number of routes never exceeds the capacity;
//   - after RemoveLink(a, b) no route crosses the link in either direction;
//   - Find returns a route ending at the requested destination.
func TestCacheInvariantsProperty(t *testing.T) {
	const owner = phy.NodeID(0)
	prop := func(seed int64, capacity uint8) bool {
		capN := int(capacity%16) + 2
		c := NewCache(owner, capN, 0)
		rng := rand.New(rand.NewSource(seed)) //nolint:gosec // test randomness
		for step := 0; step < 200; step++ {
			now := sim.Time(step) * sim.Second
			switch rng.Intn(4) {
			case 0, 1: // add a random (possibly invalid) route
				n := rng.Intn(6) + 1
				p := []phy.NodeID{owner}
				for i := 0; i < n; i++ {
					p = append(p, phy.NodeID(rng.Intn(10)))
				}
				c.Add(now, p)
			case 2: // remove a random link
				c.RemoveLink(phy.NodeID(rng.Intn(10)), phy.NodeID(rng.Intn(10)))
			case 3: // lookup
				dst := phy.NodeID(rng.Intn(10))
				if r := c.Find(now, dst); r != nil {
					if r[len(r)-1] != dst || r[0] != owner {
						return false
					}
				}
			}
			// Invariants.
			routes := c.Routes(sim.Time(step) * sim.Second)
			if len(routes) > capN {
				return false
			}
			for _, r := range routes {
				if len(r) < 2 || r[0] != owner || hasDuplicates(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheRemoveLinkPostcondition checks the RemoveLink postcondition
// directly: immediately after removal no surviving route crosses the link.
func TestCacheRemoveLinkPostcondition(t *testing.T) {
	prop := func(seed int64) bool {
		const owner = phy.NodeID(0)
		c := NewCache(owner, 32, 0)
		rng := rand.New(rand.NewSource(seed)) //nolint:gosec // test randomness
		for i := 0; i < 30; i++ {
			n := rng.Intn(5) + 1
			p := []phy.NodeID{owner}
			for j := 0; j < n; j++ {
				p = append(p, phy.NodeID(rng.Intn(8)))
			}
			c.Add(0, p)
		}
		a, b := phy.NodeID(rng.Intn(8)), phy.NodeID(rng.Intn(8))
		c.RemoveLink(a, b)
		for _, r := range c.Routes(0) {
			for i := 0; i+1 < len(r); i++ {
				if (r[i] == a && r[i+1] == b) || (r[i] == b && r[i+1] == a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRouterSurvivesLinkChurn flaps random links under live traffic and
// requires the network to keep functioning without panics, duplicate
// deliveries, or lost accounting.
func TestRouterSurvivesLinkChurn(t *testing.T) {
	n := newFakeNet(t)
	const k = 8
	rs := n.line(k, DefaultConfig())
	// Extra chords so the graph usually stays connected.
	n.connect(0, 3)
	n.connect(2, 5)
	n.connect(4, 7)
	churn := sim.Stream(13, "churn")
	originated := 0
	for round := 0; round < 60; round++ {
		at := sim.Time(round) * 2 * sim.Second
		n.sched.RunUntil(at)
		// Flap one random chain link.
		a := phy.NodeID(churn.Intn(k - 1))
		if churn.Intn(2) == 0 {
			n.disconnect(a, a+1)
		} else {
			n.connect(a, a+1)
		}
		src := phy.NodeID(churn.Intn(k))
		dst := phy.NodeID(churn.Intn(k))
		if src != dst {
			rs[src].SendData(dst, 1, 256)
			originated++
		}
	}
	n.sched.RunUntil(500 * sim.Second)
	if len(n.delivered) == 0 {
		t.Fatal("nothing delivered under churn")
	}
	if len(n.delivered)+len(n.dropped) > originated {
		t.Fatalf("delivered %d + dropped %d > originated %d",
			len(n.delivered), len(n.dropped), originated)
	}
	// No duplicate end-to-end deliveries of the same (src, seq).
	seen := make(map[[2]uint64]bool)
	for _, p := range n.delivered {
		key := [2]uint64{uint64(p.Src), p.Seq}
		if seen[key] {
			t.Fatalf("duplicate delivery of %v/%d", p.Src, p.Seq)
		}
		seen[key] = true
	}
}
