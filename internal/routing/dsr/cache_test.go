package dsr

import (
	"testing"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

func path(ids ...int) []phy.NodeID {
	out := make([]phy.NodeID, len(ids))
	for i, id := range ids {
		out[i] = phy.NodeID(id)
	}
	return out
}

func samePath(a, b []phy.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCacheAddAndFind(t *testing.T) {
	c := NewCache(0, 0, 0)
	if !c.Add(0, path(0, 1, 2, 3)) {
		t.Fatal("Add rejected valid path")
	}
	if got := c.Find(0, 3); !samePath(got, path(0, 1, 2, 3)) {
		t.Fatalf("Find(3) = %v", got)
	}
	// Routes through a node are truncated at it.
	if got := c.Find(0, 2); !samePath(got, path(0, 1, 2)) {
		t.Fatalf("Find(2) = %v", got)
	}
	if got := c.Find(0, 9); got != nil {
		t.Fatalf("Find(9) = %v, want nil", got)
	}
	if c.Find(0, 0) != nil {
		t.Fatal("Find(owner) should be nil")
	}
}

func TestCacheFindShortest(t *testing.T) {
	c := NewCache(0, 0, 0)
	c.Add(0, path(0, 1, 2, 3, 4))
	c.Add(0, path(0, 5, 4))
	if got := c.Find(0, 4); !samePath(got, path(0, 5, 4)) {
		t.Fatalf("Find(4) = %v, want shortest 0-5-4", got)
	}
}

func TestCacheRejections(t *testing.T) {
	c := NewCache(0, 0, 0)
	tests := []struct {
		name string
		give []phy.NodeID
	}{
		{name: "wrong owner", give: path(1, 2, 3)},
		{name: "too short", give: path(0)},
		{name: "loop", give: path(0, 1, 2, 1)},
		{name: "empty", give: nil},
	}
	for _, tt := range tests {
		if c.Add(0, tt.give) {
			t.Errorf("%s: Add accepted %v", tt.name, tt.give)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after rejected adds", c.Len())
	}
}

func TestCacheDedupAndPrefix(t *testing.T) {
	c := NewCache(0, 0, 0)
	c.Add(0, path(0, 1, 2, 3))
	if c.Add(0, path(0, 1, 2, 3)) {
		t.Fatal("exact duplicate accepted")
	}
	if c.Add(0, path(0, 1, 2)) {
		t.Fatal("prefix of cached route accepted")
	}
	if !c.Add(0, path(0, 1, 2, 3, 4)) {
		t.Fatal("extension of cached route rejected")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCacheInsertCallbackAndCopySemantics(t *testing.T) {
	c := NewCache(0, 0, 0)
	var got [][]phy.NodeID
	c.SetInsertCallback(func(p []phy.NodeID) { got = append(got, p) })
	src := path(0, 1, 2)
	c.Add(0, src)
	src[1] = 99 // caller mutates its slice; cache must hold a copy
	if len(got) != 1 || !samePath(got[0], path(0, 1, 2)) {
		t.Fatalf("callback got %v", got)
	}
	if found := c.Find(0, 2); !samePath(found, path(0, 1, 2)) {
		t.Fatalf("cache aliased caller slice: %v", found)
	}
	// Find results are also copies.
	found := c.Find(0, 2)
	found[1] = 42
	if again := c.Find(0, 2); !samePath(again, path(0, 1, 2)) {
		t.Fatal("Find returned aliased storage")
	}
}

func TestCacheRemoveLink(t *testing.T) {
	c := NewCache(0, 0, 0)
	c.Add(0, path(0, 1, 2, 3)) // uses link 2-3
	c.Add(0, path(0, 4, 5))
	c.Add(0, path(0, 3, 2)) // uses link 3-2 (reverse direction)
	if n := c.RemoveLink(2, 3); n != 2 {
		t.Fatalf("RemoveLink affected %d, want 2", n)
	}
	// 0-1-2-3 truncated to 0-1-2; 0-3-2 truncated to 0-3; 0-4-5 untouched.
	if got := c.Find(0, 3); !samePath(got, path(0, 3)) {
		t.Fatalf("Find(3) = %v, want direct 0-3 remnant", got)
	}
	if got := c.Find(0, 2); !samePath(got, path(0, 1, 2)) {
		t.Fatalf("Find(2) = %v", got)
	}
	if got := c.Find(0, 5); got == nil {
		t.Fatal("unrelated route removed")
	}
}

func TestCacheRemoveLinkDropsShortRemnants(t *testing.T) {
	c := NewCache(0, 0, 0)
	c.Add(0, path(0, 1, 2))
	c.RemoveLink(0, 1) // remnant would be just [0]
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestCacheCapacityFIFO(t *testing.T) {
	c := NewCache(0, 2, 0)
	c.Add(0, path(0, 1))
	c.Add(0, path(0, 2))
	c.Add(0, path(0, 3))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Find(0, 1) != nil {
		t.Fatal("oldest entry not evicted")
	}
	if c.Find(0, 3) == nil {
		t.Fatal("newest entry missing")
	}
	_, ev, _, _ := c.Stats()
	if ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestCacheLifetime(t *testing.T) {
	c := NewCache(0, 0, 10*sim.Second)
	c.Add(0, path(0, 1, 2))
	if c.Find(9*sim.Second, 2) == nil {
		t.Fatal("entry expired early")
	}
	if c.Find(11*sim.Second, 2) != nil {
		t.Fatal("entry survived past lifetime")
	}
	if c.HasRouteTo(11*sim.Second, 2) {
		t.Fatal("HasRouteTo sees expired entry")
	}
}

func TestCacheHasRouteToDoesNotCountStats(t *testing.T) {
	c := NewCache(0, 0, 0)
	c.Add(0, path(0, 1))
	c.HasRouteTo(0, 1)
	c.HasRouteTo(0, 9)
	_, _, hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Fatalf("HasRouteTo counted hits=%d misses=%d", hits, misses)
	}
}

func TestCacheRoutesSnapshot(t *testing.T) {
	c := NewCache(0, 0, 0)
	c.Add(0, path(0, 1, 2))
	routes := c.Routes(0)
	if len(routes) != 1 {
		t.Fatalf("Routes len = %d", len(routes))
	}
	routes[0][1] = 77
	if got := c.Find(0, 2); !samePath(got, path(0, 1, 2)) {
		t.Fatal("Routes returned aliased storage")
	}
}

func TestCacheHitMissStats(t *testing.T) {
	c := NewCache(0, 0, 0)
	c.Add(0, path(0, 1))
	c.Find(0, 1)
	c.Find(0, 2)
	_, _, hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}
