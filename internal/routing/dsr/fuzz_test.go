package dsr

import (
	"testing"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

// cacheInvariants checks the structural properties every cached route must
// satisfy after any mutation: rooted at the owner, at least two nodes,
// loop-free, and the route count bounded by the capacity.
func cacheInvariants(t *testing.T, c *Cache, owner phy.NodeID, capacity int, now sim.Time) {
	t.Helper()
	if c.Len() > capacity {
		t.Fatalf("cache holds %d routes, capacity %d", c.Len(), capacity)
	}
	for _, path := range c.Routes(now) {
		if len(path) < 2 {
			t.Fatalf("cached route %v shorter than one hop", path)
		}
		if path[0] != owner {
			t.Fatalf("cached route %v not rooted at owner %d", path, owner)
		}
		if hasDuplicates(path) {
			t.Fatalf("cached route %v has a loop", path)
		}
	}
}

// FuzzCacheOperations feeds the DSR route cache an arbitrary mutation
// stream — insertions (valid and deliberately malformed), link removals,
// lookups, time advances, expiry and crash-clears — and checks the cache's
// structural invariants after every operation. Lookups additionally verify
// that any returned route is well-formed and actually ends at the queried
// destination; stats counters must never run backwards.
func FuzzCacheOperations(f *testing.F) {
	f.Add([]byte{0x00, 0x03, 0x01, 0x02, 0x03, 0x02, 0x03, 0x03, 0x01, 0x02})
	f.Add([]byte{0x00, 0x02, 0x05, 0x06, 0x02, 0x06, 0x01, 0x05, 0x06, 0x02, 0x06})
	f.Add([]byte{0x00, 0x04, 0x01, 0x02, 0x03, 0x04, 0x03, 0xff, 0x04, 0x00, 0x02, 0x03})
	f.Add([]byte{0x00, 0x03, 0x07, 0x08, 0x09, 0x03, 0x80, 0x00, 0x03, 0x07, 0x08, 0x09, 0x02, 0x09})
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			owner    = phy.NodeID(0)
			capacity = 8
		)
		pc := 0
		next := func() byte {
			if pc >= len(data) {
				return 0
			}
			b := data[pc]
			pc++
			return b
		}
		// First byte picks the lifetime: 0 disables timeouts, anything else
		// expires entries after that many milliseconds.
		lifetime := sim.Time(next()) * sim.Millisecond
		c := NewCache(owner, capacity, lifetime)
		var now sim.Time
		var prevInserts, prevEvictions, prevHits, prevMisses uint64
		for pc < len(data) {
			switch next() % 6 {
			case 0: // add a route: length byte, then node IDs
				ln := int(next())%6 + 1
				path := make([]phy.NodeID, 0, ln+1)
				path = append(path, owner)
				for i := 0; i < ln; i++ {
					path = append(path, phy.NodeID(next()%16))
				}
				// Occasionally corrupt the root so rejection paths run too.
				if len(path) > 1 && path[1] == owner {
					path = path[1:]
				}
				c.Add(now, path)
			case 1: // invalidate a link
				a := phy.NodeID(next() % 16)
				b := phy.NodeID(next() % 16)
				c.RemoveLink(a, b)
			case 2: // shortest-route lookup
				dst := phy.NodeID(next() % 16)
				if route := c.Find(now, dst); route != nil {
					if len(route) < 2 || route[0] != owner || route[len(route)-1] != dst {
						t.Fatalf("Find(%d) returned malformed route %v", dst, route)
					}
					if hasDuplicates(route) {
						t.Fatalf("Find(%d) returned looping route %v", dst, route)
					}
					if !c.HasRouteTo(now, dst) {
						t.Fatalf("Find(%d) succeeded but HasRouteTo denies it", dst)
					}
				}
			case 3: // advance time (drives expiry)
				now += sim.Time(int(next())+1) * sim.Millisecond
			case 4: // crash-clear (recovered nodes restart with amnesia)
				c.Clear()
				if c.Len() != 0 {
					t.Fatalf("Clear left %d routes behind", c.Len())
				}
			case 5: // read-only probe
				c.HasRouteTo(now, phy.NodeID(next()%16))
			}
			cacheInvariants(t, c, owner, capacity, now)
			inserts, evictions, hits, misses := c.Stats()
			if inserts < prevInserts || evictions < prevEvictions ||
				hits < prevHits || misses < prevMisses {
				t.Fatalf("stats ran backwards: (%d,%d,%d,%d) after (%d,%d,%d,%d)",
					inserts, evictions, hits, misses,
					prevInserts, prevEvictions, prevHits, prevMisses)
			}
			prevInserts, prevEvictions, prevHits, prevMisses = inserts, evictions, hits, misses
		}
	})
}
