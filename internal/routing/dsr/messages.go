// Package dsr implements Dynamic Source Routing (Johnson & Maltz) as used
// by the paper: on-demand route discovery with RREQ flooding and expanding
// ring search, RREP generation by destinations and (optionally) by
// intermediate nodes answering from their route caches, RERR propagation on
// link failures, source-routed data forwarding with salvaging, and — the
// piece the paper revolves around — route learning from overheard packets.
//
// Messages are immutable once transmitted: a forwarding node never mutates
// a message in place (multiple radios may hold the same pointer after a
// broadcast); it builds a copy with copied slices.
package dsr

import (
	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Per-message fixed header sizes in bytes (DSR over IP, RFC 4728 flavour),
// plus 4 bytes per route hop. Used for on-air sizing only.
const (
	fixedHeaderBytes = 12
	perHopBytes      = 4
	rerrExtraBytes   = 8
)

// Message is any DSR packet.
type Message interface {
	// Class returns the routing packet class (drives Rcast levels).
	Class() core.Class
	// WireBytes returns the on-air size excluding the MAC header.
	WireBytes() int
}

// DataPacket is an application payload carried with a full source route.
type DataPacket struct {
	// FlowID identifies the (application) connection; Seq is unique within
	// the originator.
	FlowID uint64
	Seq    uint64

	Src, Dst phy.NodeID
	// Route is the source route currently steering the packet. It always
	// ends at Dst; after salvaging it may start at the salvaging node
	// rather than Src.
	Route []phy.NodeID
	// Salvaged counts how many times intermediate nodes re-routed the
	// packet after a link failure.
	Salvaged int

	PayloadBytes int
	OriginatedAt sim.Time
}

var _ Message = (*DataPacket)(nil)

// Class implements Message.
func (*DataPacket) Class() core.Class { return core.ClassData }

// WireBytes implements Message.
func (p *DataPacket) WireBytes() int {
	return p.PayloadBytes + fixedHeaderBytes + perHopBytes*len(p.Route)
}

// RouteRequest floods the network searching for Target.
type RouteRequest struct {
	// ID is unique per Origin and identifies one discovery round.
	ID     uint64
	Origin phy.NodeID
	Target phy.NodeID
	// Recorded is the path accumulated so far, starting at Origin and
	// ending at the most recent transmitter.
	Recorded []phy.NodeID
	// HopLimit is the remaining rebroadcast budget; 1 means receivers must
	// not rebroadcast (the non-propagating ring-0 search).
	HopLimit int
}

var _ Message = (*RouteRequest)(nil)

// Class implements Message.
func (*RouteRequest) Class() core.Class { return core.ClassRREQ }

// WireBytes implements Message.
func (r *RouteRequest) WireBytes() int {
	return fixedHeaderBytes + perHopBytes*len(r.Recorded)
}

// RouteReply returns a discovered route to the discovery origin.
type RouteReply struct {
	// ID echoes the RouteRequest ID.
	ID uint64
	// Route is the discovered path Origin..Target.
	Route []phy.NodeID
	// ReplyPath steers the RREP itself: replier..origin.
	ReplyPath []phy.NodeID
	// FromCache marks replies spliced from an intermediate node's cache.
	FromCache bool
}

var _ Message = (*RouteReply)(nil)

// Class implements Message.
func (*RouteReply) Class() core.Class { return core.ClassRREP }

// WireBytes implements Message.
func (r *RouteReply) WireBytes() int {
	return fixedHeaderBytes + perHopBytes*(len(r.Route)+len(r.ReplyPath))
}

// RouteError reports a broken link back to a flow source. The paper has
// Rcast advertise RERRs with unconditional overhearing so stale routes are
// purged cache-wide as fast as possible.
type RouteError struct {
	// Detector observed the failure transmitting to BrokenTo.
	Detector   phy.NodeID
	BrokenFrom phy.NodeID
	BrokenTo   phy.NodeID
	// ReturnPath steers the RERR: detector..source of the failed flow.
	ReturnPath []phy.NodeID
}

var _ Message = (*RouteError)(nil)

// Class implements Message.
func (*RouteError) Class() core.Class { return core.ClassRERR }

// WireBytes implements Message.
func (r *RouteError) WireBytes() int {
	return fixedHeaderBytes + rerrExtraBytes + perHopBytes*len(r.ReturnPath)
}

// indexOf returns the position of id in path, or -1.
func indexOf(path []phy.NodeID, id phy.NodeID) int {
	for i, n := range path {
		if n == id {
			return i
		}
	}
	return -1
}

// reversed returns a new slice with path in reverse order.
func reversed(path []phy.NodeID) []phy.NodeID {
	out := make([]phy.NodeID, len(path))
	for i, n := range path {
		out[len(path)-1-i] = n
	}
	return out
}

// appendHop returns a new slice path+[id] (never aliasing path's array
// beyond its length in a way visible to other holders).
func appendHop(path []phy.NodeID, id phy.NodeID) []phy.NodeID {
	out := make([]phy.NodeID, len(path)+1)
	copy(out, path)
	out[len(path)] = id
	return out
}

// hasDuplicates reports whether any node appears twice in path.
func hasDuplicates(path []phy.NodeID) bool {
	seen := make(map[phy.NodeID]struct{}, len(path))
	for _, n := range path {
		if _, ok := seen[n]; ok {
			return true
		}
		seen[n] = struct{}{}
	}
	return false
}
