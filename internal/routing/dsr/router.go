package dsr

import (
	"math/rand"
	"sort"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Transport is the MAC-facing interface the router sends through. nh is
// the link-layer next hop (phy.Broadcast for floods); onResult, when
// non-nil, receives the link outcome of a unicast (ACKed vs retry-exhausted).
type Transport interface {
	Send(nh phy.NodeID, msg Message, onResult func(delivered bool))
}

// Hooks are optional observation points; nil fields are skipped. They feed
// the metrics collector and the ODPM power manager.
type Hooks struct {
	DataOriginated func(p *DataPacket)
	DataDelivered  func(p *DataPacket, from phy.NodeID)
	DataForwarded  func(p *DataPacket)
	DataDropped    func(p *DataPacket, reason string)
	// ControlSent fires once per control-packet transmission (every hop).
	ControlSent func(c core.Class)
	// DataSalvaged fires when a link failure is repaired from cache: p is
	// the re-routed copy (Salvaged already incremented, Route the new path).
	DataSalvaged func(p *DataPacket)
	// CacheInserted fires for every accepted route-cache insertion.
	CacheInserted func(path []phy.NodeID)
	// CacheEvicted fires for every capacity eviction from the route cache.
	CacheEvicted func(path []phy.NodeID)
	// RREPReceived / DataActivity drive ODPM active-mode timers.
	RREPReceived func()
	DataActivity func()
}

// Config parameterizes a Router.
type Config struct {
	// CacheCapacity and CacheLifetime configure the route cache
	// (lifetime 0 disables timeouts).
	CacheCapacity int
	CacheLifetime sim.Time

	// NonPropagatingFirst enables the expanding-ring search: the first
	// discovery attempt is a 1-hop RREQ.
	NonPropagatingFirst bool
	// DiscoveryTimeout is the base RREP wait; it doubles per attempt.
	DiscoveryTimeout sim.Time
	// MaxDiscoveryAttempts bounds a discovery round before buffered
	// packets for the target are dropped.
	MaxDiscoveryAttempts int
	// SendBufferCap bounds buffered packets per destination;
	// SendBufferTimeout expires stale buffered packets.
	SendBufferCap     int
	SendBufferTimeout sim.Time

	// CacheReplies lets intermediate nodes answer RREQs from cache.
	CacheReplies bool
	// MaxRepliesPerRequest caps how many RREP copies a target generates
	// for one discovery (DSR offers alternative routes; §2.1).
	MaxRepliesPerRequest int
	// MaxSalvage bounds per-packet salvage operations.
	MaxSalvage int
	// RebroadcastJitter randomizes flood rebroadcasts to desynchronize
	// the broadcast storm.
	RebroadcastJitter sim.Time

	// Gossip, when non-nil, applies the Rcast broadcast extension:
	// probabilistic RREQ rebroadcast damping (§5).
	Gossip *core.BroadcastGossip
	// NeighborCount supplies the local neighbor count for Gossip.
	NeighborCount func() int
}

// DefaultConfig returns production defaults tuned for the paper's
// PSM-latency regime (a flood advances one hop per beacon interval, so
// discovery timeouts are generous).
func DefaultConfig() Config {
	return Config{
		CacheCapacity:        64,
		NonPropagatingFirst:  true,
		DiscoveryTimeout:     sim.Second,
		MaxDiscoveryAttempts: 6,
		SendBufferCap:        64,
		SendBufferTimeout:    30 * sim.Second,
		CacheReplies:         true,
		MaxRepliesPerRequest: 3,
		MaxSalvage:           1,
		RebroadcastJitter:    10 * sim.Millisecond,
	}
}

// Stats counts router events.
type Stats struct {
	RREQSent      uint64
	RREPSent      uint64
	RERRSent      uint64
	DataSent      uint64 // data transmissions (originations + forwards)
	Delivered     uint64
	Dropped       uint64
	Salvages      uint64
	CacheReplies  uint64
	LinkFailures  uint64
	GossipDropped uint64 // rebroadcasts suppressed by the gossip extension
}

// Router is one node's DSR instance.
type Router struct {
	id    phy.NodeID
	sched *sim.Scheduler
	rng   *rand.Rand
	tr    Transport
	cfg   Config
	cache *Cache
	hooks Hooks

	buf         map[phy.NodeID][]bufEntry
	seenRREQ    map[rreqKey]struct{}
	replyCount  map[rreqKey]int
	discoveries map[phy.NodeID]*discovery

	nextRREQID uint64
	nextSeq    uint64

	learnScratch []phy.NodeID // reused candidate-path buffer for learnFromTransmitter

	down bool // fault-injected crash: reversible via Restart

	stats Stats
}

type bufEntry struct {
	pkt *DataPacket
	at  sim.Time
}

type rreqKey struct {
	origin phy.NodeID
	id     uint64
}

type discovery struct {
	attempts int
	timer    sim.Timer
}

// New creates a router. tr must be set before any traffic flows; hooks may
// be zero.
func New(id phy.NodeID, sched *sim.Scheduler, rng *rand.Rand, tr Transport, cfg Config, hooks Hooks) *Router {
	if cfg.DiscoveryTimeout <= 0 {
		cfg.DiscoveryTimeout = sim.Second
	}
	if cfg.MaxDiscoveryAttempts <= 0 {
		cfg.MaxDiscoveryAttempts = 6
	}
	if cfg.SendBufferCap <= 0 {
		cfg.SendBufferCap = 64
	}
	if cfg.SendBufferTimeout <= 0 {
		cfg.SendBufferTimeout = 30 * sim.Second
	}
	if cfg.MaxRepliesPerRequest <= 0 {
		cfg.MaxRepliesPerRequest = 3
	}
	r := &Router{
		id:          id,
		sched:       sched,
		rng:         rng,
		tr:          tr,
		cfg:         cfg,
		cache:       NewCache(id, cfg.CacheCapacity, cfg.CacheLifetime),
		hooks:       hooks,
		buf:         make(map[phy.NodeID][]bufEntry),
		seenRREQ:    make(map[rreqKey]struct{}),
		replyCount:  make(map[rreqKey]int),
		discoveries: make(map[phy.NodeID]*discovery),
	}
	r.cache.SetInsertCallback(func(path []phy.NodeID) {
		if r.hooks.CacheInserted != nil {
			r.hooks.CacheInserted(path)
		}
		// A fresh route may unblock buffered traffic.
		r.flushBuffer(path[len(path)-1])
	})
	r.cache.SetEvictCallback(func(path []phy.NodeID) {
		if r.hooks.CacheEvicted != nil {
			r.hooks.CacheEvicted(path)
		}
	})
	return r
}

// ID returns the owning node's ID.
func (r *Router) ID() phy.NodeID { return r.id }

// Cache exposes the route cache (read-mostly; used by metrics and tests).
func (r *Router) Cache() *Cache { return r.cache }

// BufferedData returns the data packets currently parked in the send buffer
// awaiting route discovery, ordered by destination then insertion. The
// audit layer enumerates still-buffered traffic with it at teardown.
func (r *Router) BufferedData() []*DataPacket {
	dsts := make([]phy.NodeID, 0, len(r.buf))
	for dst := range r.buf {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	var out []*DataPacket
	for _, dst := range dsts {
		for _, e := range r.buf[dst] {
			out = append(out, e.pkt)
		}
	}
	return out
}

// Stats returns a copy of the router counters.
func (r *Router) Stats() Stats { return r.stats }

// Crash wipes the router for a fault-injected node crash: discovery timers
// are cancelled, the send buffer, RREQ dedup state and route cache are
// cleared, and the router stops originating until Restart. The buffered
// data packets are returned (destination order, as BufferedData) WITHOUT
// passing through the drop hook — the fault layer reconciles them as a
// terminal class of their own. Stats survive: they describe what the node
// did while it was up.
func (r *Router) Crash() []*DataPacket {
	if r.down {
		return nil
	}
	r.down = true
	flushed := r.BufferedData()
	dsts := make([]phy.NodeID, 0, len(r.discoveries))
	for dst := range r.discoveries {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		r.discoveries[dst].timer.Cancel()
		delete(r.discoveries, dst)
	}
	clear(r.buf)
	clear(r.seenRREQ)
	clear(r.replyCount)
	r.cache.Clear()
	return flushed
}

// Restart brings a crashed router back up with empty state (the sequence
// counters keep running so recycled packets never reuse a PacketKey).
func (r *Router) Restart() { r.down = false }

// SendData originates an application packet of payloadBytes to dst,
// discovering a route first if necessary.
func (r *Router) SendData(dst phy.NodeID, flowID uint64, payloadBytes int) {
	if r.down {
		return
	}
	now := r.sched.Now()
	r.nextSeq++
	pkt := &DataPacket{
		FlowID:       flowID,
		Seq:          r.nextSeq,
		Src:          r.id,
		Dst:          dst,
		PayloadBytes: payloadBytes,
		OriginatedAt: now,
	}
	if r.hooks.DataOriginated != nil {
		r.hooks.DataOriginated(pkt)
	}
	if dst == r.id {
		r.deliver(pkt, r.id)
		return
	}
	if route := r.cache.Find(now, dst); route != nil {
		pkt.Route = route
		r.transmitData(pkt)
		return
	}
	r.bufferAndDiscover(pkt)
}

// --- data plane ---

// transmitData sends pkt to the next hop on its route.
func (r *Router) transmitData(pkt *DataPacket) {
	i := indexOf(pkt.Route, r.id)
	if i < 0 || i+1 >= len(pkt.Route) {
		r.drop(pkt, "bad-route")
		return
	}
	nh := pkt.Route[i+1]
	r.stats.DataSent++
	if r.hooks.DataActivity != nil {
		r.hooks.DataActivity()
	}
	r.tr.Send(nh, pkt, func(delivered bool) {
		if !delivered {
			r.handleLinkFailure(pkt, nh)
		}
	})
}

// handleLinkFailure reacts to a retry-exhausted unicast: purge the link,
// notify the flow source with a RERR, and salvage or drop the packet.
func (r *Router) handleLinkFailure(pkt *DataPacket, nh phy.NodeID) {
	r.stats.LinkFailures++
	r.cache.RemoveLink(r.id, nh)

	// RERR back to the source (unless we are the source).
	if pkt.Src != r.id {
		i := indexOf(pkt.Route, r.id)
		if i > 0 {
			ret := reversed(pkt.Route[:i+1]) // self..towards Src side of Route
			// After salvaging, Route may no longer contain Src; the RERR
			// then terminates at the route head, which is the salvager —
			// acceptable: the link purge still propagates by overhearing.
			r.sendRERR(&RouteError{
				Detector:   r.id,
				BrokenFrom: r.id,
				BrokenTo:   nh,
				ReturnPath: ret,
			})
		}
	}

	// Salvage: try an alternative cached route to the destination.
	if pkt.Salvaged < r.cfg.MaxSalvage {
		if alt := r.cache.Find(r.sched.Now(), pkt.Dst); alt != nil {
			sp := *pkt
			sp.Route = alt
			sp.Salvaged = pkt.Salvaged + 1
			r.stats.Salvages++
			if r.hooks.DataSalvaged != nil {
				r.hooks.DataSalvaged(&sp)
			}
			r.transmitData(&sp)
			return
		}
	}
	if pkt.Src == r.id {
		// Source: buffer and rediscover rather than losing the packet.
		r.bufferAndDiscover(pkt)
		return
	}
	r.drop(pkt, "link-failure")
}

func (r *Router) deliver(pkt *DataPacket, from phy.NodeID) {
	r.stats.Delivered++
	if r.hooks.DataActivity != nil {
		r.hooks.DataActivity()
	}
	if r.hooks.DataDelivered != nil {
		r.hooks.DataDelivered(pkt, from)
	}
}

func (r *Router) drop(pkt *DataPacket, reason string) {
	r.stats.Dropped++
	if r.hooks.DataDropped != nil {
		r.hooks.DataDropped(pkt, reason)
	}
}

// --- discovery ---

// bufferAndDiscover queues pkt and ensures a discovery round is running.
func (r *Router) bufferAndDiscover(pkt *DataPacket) {
	q := r.buf[pkt.Dst]
	if len(q) >= r.cfg.SendBufferCap {
		r.drop(q[0].pkt, "buffer-overflow")
		q = q[1:]
	}
	r.buf[pkt.Dst] = append(q, bufEntry{pkt: pkt, at: r.sched.Now()})
	r.startDiscovery(pkt.Dst)
}

func (r *Router) startDiscovery(dst phy.NodeID) {
	if _, running := r.discoveries[dst]; running {
		return
	}
	d := &discovery{}
	r.discoveries[dst] = d
	r.issueRREQ(dst, d)
}

func (r *Router) issueRREQ(dst phy.NodeID, d *discovery) {
	d.attempts++
	if d.attempts > r.cfg.MaxDiscoveryAttempts {
		r.abandonDiscovery(dst)
		return
	}
	hopLimit := 255
	if r.cfg.NonPropagatingFirst && d.attempts == 1 {
		hopLimit = 1
	}
	r.nextRREQID++
	req := &RouteRequest{
		ID:       r.nextRREQID,
		Origin:   r.id,
		Target:   dst,
		Recorded: []phy.NodeID{r.id},
		HopLimit: hopLimit,
	}
	r.seenRREQ[rreqKey{origin: r.id, id: req.ID}] = struct{}{}
	r.stats.RREQSent++
	r.control(core.ClassRREQ)
	r.tr.Send(phy.Broadcast, req, nil)

	timeout := r.cfg.DiscoveryTimeout << uint(d.attempts-1)
	d.timer = r.sched.After(timeout, func() { r.issueRREQ(dst, d) })
}

// abandonDiscovery gives up on dst and drops its buffered packets.
func (r *Router) abandonDiscovery(dst phy.NodeID) {
	delete(r.discoveries, dst)
	for _, e := range r.buf[dst] {
		r.drop(e.pkt, "no-route")
	}
	delete(r.buf, dst)
}

// flushBuffer sends buffered packets for dst if a route is now cached.
func (r *Router) flushBuffer(dst phy.NodeID) {
	q, ok := r.buf[dst]
	if !ok {
		return
	}
	now := r.sched.Now()
	route := r.cache.Find(now, dst)
	if route == nil {
		return
	}
	if d, running := r.discoveries[dst]; running {
		d.timer.Cancel()
		delete(r.discoveries, dst)
	}
	delete(r.buf, dst)
	for _, e := range q {
		if now-e.at > r.cfg.SendBufferTimeout {
			r.drop(e.pkt, "buffer-timeout")
			continue
		}
		e.pkt.Route = route
		r.transmitData(e.pkt)
	}
}

// --- control-plane senders ---

func (r *Router) sendRREP(rep *RouteReply) {
	i := indexOf(rep.ReplyPath, r.id)
	if i < 0 || i+1 >= len(rep.ReplyPath) {
		return
	}
	r.stats.RREPSent++
	r.control(core.ClassRREP)
	r.tr.Send(rep.ReplyPath[i+1], rep, nil)
}

func (r *Router) sendRERR(rerr *RouteError) {
	i := indexOf(rerr.ReturnPath, r.id)
	if i < 0 || i+1 >= len(rerr.ReturnPath) {
		return
	}
	r.stats.RERRSent++
	r.control(core.ClassRERR)
	r.tr.Send(rerr.ReturnPath[i+1], rerr, nil)
}

func (r *Router) control(c core.Class) {
	if r.hooks.ControlSent != nil {
		r.hooks.ControlSent(c)
	}
}

// --- receive path (called by the MAC adapter) ---

// Receive processes a message addressed to this node (or broadcast),
// transmitted by `from`.
func (r *Router) Receive(from phy.NodeID, msg Message) {
	switch m := msg.(type) {
	case *DataPacket:
		r.onData(from, m)
	case *RouteRequest:
		r.onRREQ(from, m)
	case *RouteReply:
		r.onRREP(from, m)
	case *RouteError:
		r.onRERR(from, m)
	}
}

// Overhear processes a message addressed to another node that this node's
// radio decoded — the mechanism the whole paper is about.
func (r *Router) Overhear(from phy.NodeID, msg Message) {
	now := r.sched.Now()
	switch m := msg.(type) {
	case *DataPacket:
		r.learnFromTransmitter(now, from, m.Route)
	case *RouteReply:
		r.learnFromTransmitter(now, from, m.Route)
		r.learnFromTransmitter(now, from, m.ReplyPath)
	case *RouteError:
		// Purge the stale link everywhere, as fast as possible (§3.3).
		r.cache.RemoveLink(m.BrokenFrom, m.BrokenTo)
	}
}

func (r *Router) onData(from phy.NodeID, pkt *DataPacket) {
	now := r.sched.Now()
	r.learnFromTransmitter(now, from, pkt.Route)
	if pkt.Dst == r.id {
		r.deliver(pkt, from)
		return
	}
	if r.hooks.DataForwarded != nil {
		r.hooks.DataForwarded(pkt)
	}
	r.transmitData(pkt)
}

func (r *Router) onRREQ(from phy.NodeID, req *RouteRequest) {
	if req.Origin == r.id || indexOf(req.Recorded, r.id) >= 0 {
		return // our own flood, or a loop
	}
	now := r.sched.Now()
	// Learn the reverse route back to the origin.
	back := append([]phy.NodeID{r.id}, reversed(req.Recorded)...)
	r.cache.Add(now, back)

	key := rreqKey{origin: req.Origin, id: req.ID}
	if r.id == req.Target {
		// Targets answer each arriving copy (up to the cap) so the origin
		// collects alternative routes — the behaviour behind the paper's
		// "more than one RREP per discovery" observation.
		if r.replyCount[key] >= r.cfg.MaxRepliesPerRequest {
			return
		}
		r.replyCount[key]++
		route := appendHop(req.Recorded, r.id)
		r.sendRREP(&RouteReply{ID: req.ID, Route: route, ReplyPath: reversed(route)})
		return
	}
	if _, dup := r.seenRREQ[key]; dup {
		return
	}
	r.seenRREQ[key] = struct{}{}

	// Cache reply: splice recorded prefix with our cached suffix.
	if r.cfg.CacheReplies {
		if tail := r.cache.Find(now, req.Target); tail != nil {
			full := append(appendHop(req.Recorded, r.id), tail[1:]...)
			if !hasDuplicates(full) {
				r.stats.CacheReplies++
				reply := appendHop(req.Recorded, r.id)
				r.sendRREP(&RouteReply{
					ID:        req.ID,
					Route:     full,
					ReplyPath: reversed(reply),
					FromCache: true,
				})
				return
			}
		}
	}

	if req.HopLimit <= 1 {
		return // non-propagating search halts here
	}
	// Gossip damping (Rcast-for-broadcast extension). The first ring of
	// rebroadcasts around the origin is exempt (gossip with hop gating, as
	// in Haas et al.) so small floods always reach two hops.
	if r.cfg.Gossip != nil && r.cfg.NeighborCount != nil && len(req.Recorded) >= 2 {
		if !r.cfg.Gossip.ShouldRebroadcast(r.rng, r.cfg.NeighborCount()) {
			r.stats.GossipDropped++
			return
		}
	}
	fwd := &RouteRequest{
		ID:       req.ID,
		Origin:   req.Origin,
		Target:   req.Target,
		Recorded: appendHop(req.Recorded, r.id),
		HopLimit: req.HopLimit - 1,
	}
	jitter := sim.Time(0)
	if r.cfg.RebroadcastJitter > 0 {
		jitter = sim.Time(r.rng.Int63n(int64(r.cfg.RebroadcastJitter) + 1))
	}
	r.sched.After(jitter, func() {
		if r.down {
			return // crashed while the rebroadcast sat in its jitter window
		}
		r.stats.RREQSent++
		r.control(core.ClassRREQ)
		r.tr.Send(phy.Broadcast, fwd, nil)
	})
}

func (r *Router) onRREP(from phy.NodeID, rep *RouteReply) {
	now := r.sched.Now()
	if r.hooks.RREPReceived != nil {
		r.hooks.RREPReceived()
	}
	// Learn from the discovered route relative to our own position, and
	// from the transmitter.
	r.learnFromTransmitter(now, from, rep.Route)

	i := indexOf(rep.ReplyPath, r.id)
	if i < 0 {
		return
	}
	if i+1 == len(rep.ReplyPath) {
		// We are the discovery origin: cache the full discovered route
		// (Route[0] is us); buffered traffic flushes via the insert hook.
		r.cache.Add(now, rep.Route)
		return
	}
	r.sendRREP(rep)
}

func (r *Router) onRERR(from phy.NodeID, rerr *RouteError) {
	r.cache.RemoveLink(rerr.BrokenFrom, rerr.BrokenTo)
	i := indexOf(rerr.ReturnPath, r.id)
	if i < 0 || i+1 == len(rerr.ReturnPath) {
		return // we are the flow source (or off-path): purge only
	}
	r.sendRERR(rerr)
}

// learnFromTransmitter caches routes derived from a source route observed
// on the air: the transmitter `from` is a direct neighbor, so we can reach
// every node on the route through it, in both directions (paper Fig. 3:
// neighbors of a forwarding node learn S→D from overheard data packets).
func (r *Router) learnFromTransmitter(now sim.Time, from phy.NodeID, route []phy.NodeID) {
	if from == r.id || len(route) == 0 {
		return
	}
	i := indexOf(route, from)
	if i < 0 {
		return
	}
	// Both candidate paths are built in a scratch buffer: the cache copies
	// on accept (and rejects looped paths itself), so they never escape.
	// Forward: self → from → route[i+1:].
	if i+1 < len(route) {
		fwd := append(r.learnScratch[:0], r.id, from)
		fwd = append(fwd, route[i+1:]...)
		r.learnScratch = fwd[:0]
		r.cache.Add(now, fwd)
	}
	// Backward: self → from → route[i-1], …, route[0].
	if i > 0 {
		back := append(r.learnScratch[:0], r.id, from)
		for j := i - 1; j >= 0; j-- {
			back = append(back, route[j])
		}
		r.learnScratch = back[:0]
		r.cache.Add(now, back)
	}
}
