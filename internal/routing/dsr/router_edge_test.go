package dsr

import (
	"testing"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

func TestBufferTimeoutDropsStalePackets(t *testing.T) {
	// A packet buffered long enough before a route appears is dropped with
	// "buffer-timeout" rather than delivered absurdly late.
	n := newFakeNet(t)
	cfg := DefaultConfig()
	cfg.SendBufferTimeout = 5 * sim.Second
	cfg.MaxDiscoveryAttempts = 12 // keep discovery alive past the timeout
	rs := n.line(2, cfg)
	n.disconnect(0, 1) // no route yet
	rs[0].SendData(1, 1, 100)
	// Reconnect after the buffer timeout has passed; the eventual
	// discovery succeeds but the packet is stale.
	n.sched.After(20*sim.Second, func() { n.connect(0, 1) })
	n.run(200 * sim.Second)
	if len(n.delivered) != 0 {
		t.Fatalf("stale packet delivered after %v", n.delivered[0].OriginatedAt)
	}
	found := false
	for _, r := range n.dropped {
		if r == "buffer-timeout" {
			found = true
		}
	}
	if !found {
		t.Fatalf("drops = %v, want buffer-timeout", n.dropped)
	}
}

func TestCacheRepliesDisabled(t *testing.T) {
	n := newFakeNet(t)
	cfg := DefaultConfig()
	cfg.CacheReplies = false
	rs := n.line(4, cfg)
	rs[1].Cache().Add(0, path(1, 2, 3))
	rs[0].SendData(3, 1, 512)
	n.run(30 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatal("not delivered")
	}
	if rs[1].Stats().CacheReplies != 0 {
		t.Fatal("cache reply generated despite CacheReplies=false")
	}
	// The flood had to reach the destination itself.
	if rs[3].Stats().RREPSent == 0 {
		t.Fatal("destination never replied")
	}
}

func TestSalvageDisabled(t *testing.T) {
	n := newFakeNet(t)
	cfg := DefaultConfig()
	cfg.MaxSalvage = 0
	rs := n.line(4, cfg)
	n.addRouter(4, cfg)
	n.connect(2, 4)
	n.connect(4, 3)
	rs[0].SendData(3, 1, 512)
	n.run(30 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatal("warmup lost")
	}
	rs[2].Cache().Add(n.sched.Now(), path(2, 4, 3))
	n.disconnect(2, 3)
	rs[0].SendData(3, 1, 512)
	n.run(90 * sim.Second)
	if rs[2].Stats().Salvages != 0 {
		t.Fatal("salvage happened despite MaxSalvage=0")
	}
}

func TestRREQGeneratesMultipleRoutes(t *testing.T) {
	// Two disjoint paths 0-1-3 and 0-2-3: the target replies to both flood
	// copies, and the origin caches both (alternative routes, §2.1).
	n := newFakeNet(t)
	cfg := DefaultConfig()
	cfg.NonPropagatingFirst = false
	for i := 0; i < 4; i++ {
		n.addRouter(phy.NodeID(i), cfg)
	}
	n.connect(0, 1)
	n.connect(0, 2)
	n.connect(1, 3)
	n.connect(2, 3)
	n.routers[0].SendData(3, 1, 512)
	n.run(30 * sim.Second)
	routes := n.routers[0].Cache().Routes(n.sched.Now())
	viaOne, viaTwo := false, false
	for _, r := range routes {
		if len(r) >= 2 && indexOf(r, 3) > 0 {
			switch r[1] {
			case 1:
				viaOne = true
			case 2:
				viaTwo = true
			}
		}
	}
	if !viaOne || !viaTwo {
		t.Fatalf("origin cached routes %v, want both disjoint paths", routes)
	}
}

func TestRERRStopsAtFlowSource(t *testing.T) {
	n := newFakeNet(t)
	rs := n.line(4, DefaultConfig())
	rs[0].SendData(3, 1, 512)
	n.run(30 * sim.Second)
	n.disconnect(2, 3)
	rs[0].SendData(3, 1, 512)
	n.run(90 * sim.Second)
	// Node 0 is the flow source: it receives the RERR (purging the link)
	// but must not forward it further.
	if got := rs[0].Stats().RERRSent; got != 0 {
		t.Fatalf("flow source forwarded RERR %d times", got)
	}
	if rs[0].Cache().HasRouteTo(n.sched.Now(), 3) {
		// The cache may have rebuilt a fresh route via rediscovery; ensure
		// any cached route avoids the broken link.
		for _, r := range rs[0].Cache().Routes(n.sched.Now()) {
			for i := 0; i+1 < len(r); i++ {
				if (r[i] == 2 && r[i+1] == 3) || (r[i] == 3 && r[i+1] == 2) {
					t.Fatalf("stale link survived in route %v", r)
				}
			}
		}
	}
}

func TestOverhearOwnTransmissionIgnored(t *testing.T) {
	n := newFakeNet(t)
	r := n.addRouter(5, DefaultConfig())
	r.Overhear(5, &DataPacket{Src: 5, Dst: 9, Route: path(5, 6, 9), PayloadBytes: 10})
	if r.Cache().Len() != 0 {
		t.Fatal("router learned from its own transmission")
	}
}

func TestOverhearTransmitterNotOnRoute(t *testing.T) {
	n := newFakeNet(t)
	r := n.addRouter(5, DefaultConfig())
	// Malformed observation: transmitter 7 is not on the carried route.
	r.Overhear(7, &DataPacket{Src: 0, Dst: 9, Route: path(0, 1, 9), PayloadBytes: 10})
	if r.Cache().Len() != 0 {
		t.Fatal("router learned from inconsistent observation")
	}
}

func TestRcastClassMapping(t *testing.T) {
	// The transport-facing classes drive the Rcast levels; make sure DSR's
	// message types map as §3.3 prescribes when combined with the policy.
	pol := core.Rcast{}
	tests := []struct {
		msg  Message
		want core.Level
	}{
		{&DataPacket{}, core.LevelRandomized},
		{&RouteReply{}, core.LevelRandomized},
		{&RouteError{}, core.LevelUnconditional},
		{&RouteRequest{}, core.LevelUnconditional},
	}
	for _, tt := range tests {
		if got := pol.AdvertiseLevel(tt.msg.Class()); got != tt.want {
			t.Errorf("%T advertised %v, want %v", tt.msg, got, tt.want)
		}
	}
}
