package dsr

import (
	"testing"

	"rcast/internal/core"
	"rcast/internal/phy"
	"rcast/internal/sim"
)

// fakeNet is a graph-shaped transport with instant adjacency knowledge and
// physical-style overhearing: every neighbor of a transmitter sees every
// frame, addressed or not. It lets the router logic be exercised without
// the MAC/PHY stack.
type fakeNet struct {
	t       *testing.T
	sched   *sim.Scheduler
	routers map[phy.NodeID]*Router
	links   map[[2]phy.NodeID]bool
	delay   sim.Time

	controlTx map[core.Class]int
	delivered []*DataPacket
	dropped   []string
}

func newFakeNet(t *testing.T) *fakeNet {
	return &fakeNet{
		t:         t,
		sched:     sim.NewScheduler(),
		routers:   make(map[phy.NodeID]*Router),
		links:     make(map[[2]phy.NodeID]bool),
		delay:     sim.Millisecond,
		controlTx: make(map[core.Class]int),
	}
}

func linkKey(a, b phy.NodeID) [2]phy.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]phy.NodeID{a, b}
}

func (n *fakeNet) connect(a, b phy.NodeID)    { n.links[linkKey(a, b)] = true }
func (n *fakeNet) disconnect(a, b phy.NodeID) { delete(n.links, linkKey(a, b)) }

func (n *fakeNet) neighborsOf(id phy.NodeID) []phy.NodeID {
	var out []phy.NodeID
	for other := range n.routers {
		if other != id && n.links[linkKey(id, other)] {
			out = append(out, other)
		}
	}
	return out
}

// port adapts fakeNet to Transport for one node.
type port struct {
	net *fakeNet
	id  phy.NodeID
}

func (p port) Send(nh phy.NodeID, msg Message, onResult func(bool)) {
	n := p.net
	src := p.id
	n.sched.After(n.delay, func() {
		nbrs := n.neighborsOf(src)
		if nh == phy.Broadcast {
			for _, o := range nbrs {
				n.routers[o].Receive(src, msg)
			}
			if onResult != nil {
				onResult(true)
			}
			return
		}
		up := n.links[linkKey(src, nh)]
		for _, o := range nbrs {
			if o == nh {
				if up {
					n.routers[o].Receive(src, msg)
				}
				continue
			}
			n.routers[o].Overhear(src, msg)
		}
		if onResult != nil {
			onResult(up)
		}
	})
}

// addRouter creates a router with hooks wired into the net's counters.
func (n *fakeNet) addRouter(id phy.NodeID, cfg Config) *Router {
	hooks := Hooks{
		DataDelivered: func(p *DataPacket, _ phy.NodeID) { n.delivered = append(n.delivered, p) },
		DataDropped:   func(_ *DataPacket, reason string) { n.dropped = append(n.dropped, reason) },
		ControlSent:   func(c core.Class) { n.controlTx[c]++ },
	}
	r := New(id, n.sched, sim.Stream(int64(id), "dsr"), port{net: n, id: id}, cfg, hooks)
	n.routers[id] = r
	return r
}

// line builds a chain 0-1-2-…-(k-1).
func (n *fakeNet) line(k int, cfg Config) []*Router {
	rs := make([]*Router, k)
	for i := 0; i < k; i++ {
		rs[i] = n.addRouter(phy.NodeID(i), cfg)
	}
	for i := 0; i+1 < k; i++ {
		n.connect(phy.NodeID(i), phy.NodeID(i+1))
	}
	return rs
}

func (n *fakeNet) run(until sim.Time) { n.sched.RunUntil(until) }

func TestDiscoveryAndDeliveryOverChain(t *testing.T) {
	n := newFakeNet(t)
	rs := n.line(4, DefaultConfig())
	rs[0].SendData(3, 1, 512)
	n.run(30 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1 (drops: %v)", len(n.delivered), n.dropped)
	}
	p := n.delivered[0]
	if p.Src != 0 || p.Dst != 3 {
		t.Fatalf("delivered packet src/dst = %v/%v", p.Src, p.Dst)
	}
	if !samePath(p.Route, path(0, 1, 2, 3)) {
		t.Fatalf("route = %v", p.Route)
	}
	if rs[0].Stats().RREQSent == 0 {
		t.Fatal("no RREQ sent")
	}
}

func TestExpandingRingReachesDirectNeighborCheaply(t *testing.T) {
	n := newFakeNet(t)
	rs := n.line(2, DefaultConfig())
	rs[0].SendData(1, 1, 512)
	n.run(10 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatalf("delivered %d, want 1", len(n.delivered))
	}
	// One non-propagating RREQ suffices; no network-wide flood follows.
	if got := rs[0].Stats().RREQSent; got != 1 {
		t.Fatalf("origin sent %d RREQs, want 1", got)
	}
	if got := rs[1].Stats().RREQSent; got != 0 {
		t.Fatalf("neighbor rebroadcast a hop-limit-1 RREQ %d times", got)
	}
}

func TestSecondPacketUsesCachedRoute(t *testing.T) {
	n := newFakeNet(t)
	rs := n.line(3, DefaultConfig())
	rs[0].SendData(2, 1, 512)
	n.run(30 * sim.Second)
	rreqAfterFirst := n.controlTx[core.ClassRREQ]
	rs[0].SendData(2, 1, 512)
	n.run(60 * sim.Second)
	if len(n.delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(n.delivered))
	}
	if n.controlTx[core.ClassRREQ] != rreqAfterFirst {
		t.Fatalf("second packet triggered more RREQs (%d -> %d)",
			rreqAfterFirst, n.controlTx[core.ClassRREQ])
	}
}

func TestDuplicateRREQSuppression(t *testing.T) {
	// Diamond: 0-1, 0-2, 1-3, 2-3. The flood from 0 reaches 3 twice but
	// each intermediate rebroadcasts exactly once.
	n := newFakeNet(t)
	cfg := DefaultConfig()
	cfg.NonPropagatingFirst = false
	for i := 0; i < 4; i++ {
		n.addRouter(phy.NodeID(i), cfg)
	}
	n.connect(0, 1)
	n.connect(0, 2)
	n.connect(1, 3)
	n.connect(2, 3)
	n.routers[0].SendData(3, 1, 512)
	n.run(30 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatalf("delivered %d, want 1", len(n.delivered))
	}
	if got := n.routers[1].Stats().RREQSent + n.routers[2].Stats().RREQSent; got > 2 {
		t.Fatalf("intermediates rebroadcast %d times, want <= 2", got)
	}
	// The target can answer both arriving copies: alternative routes.
	if got := n.routers[3].Stats().RREPSent; got < 1 || got > 2 {
		t.Fatalf("target sent %d RREPs, want 1..2", got)
	}
}

func TestCacheReplyFromIntermediate(t *testing.T) {
	n := newFakeNet(t)
	rs := n.line(4, DefaultConfig())
	// Warm node 1's cache with a route to 3.
	rs[1].Cache().Add(0, path(1, 2, 3))
	rs[0].SendData(3, 1, 512)
	n.run(30 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatalf("delivered %d, want 1", len(n.delivered))
	}
	if rs[1].Stats().CacheReplies != 1 {
		t.Fatalf("cache replies = %d, want 1", rs[1].Stats().CacheReplies)
	}
	// The hop-limit-1 ring search reached node 1, which answered from
	// cache: the flood never propagated further.
	if rs[2].Stats().RREQSent != 0 {
		t.Fatal("flood passed a cache-replying node")
	}
}

func TestLinkFailureTriggersRERRAndRediscovery(t *testing.T) {
	n := newFakeNet(t)
	rs := n.line(4, DefaultConfig())
	// Alternate path 1-4-3 to survive the break of 1-2.
	alt := n.addRouter(4, DefaultConfig())
	_ = alt
	n.connect(1, 4)
	n.connect(4, 3)

	rs[0].SendData(3, 1, 512)
	n.run(30 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatalf("first packet not delivered")
	}

	n.disconnect(2, 3) // break the tail of the established route 0-1-2-3
	rs[0].SendData(3, 1, 512)
	n.run(90 * sim.Second)
	if len(n.delivered) != 2 {
		t.Fatalf("delivered %d, want 2 after rerouting (drops: %v)", len(n.delivered), n.dropped)
	}
	if n.controlTx[core.ClassRERR] == 0 {
		t.Fatal("no RERR sent after link failure")
	}
	if n.routers[2].Stats().LinkFailures == 0 {
		t.Fatal("node 2 never detected the broken link")
	}
}

func TestSalvageUsesAlternateRoute(t *testing.T) {
	n := newFakeNet(t)
	rs := n.line(4, DefaultConfig())
	n.addRouter(4, DefaultConfig())
	n.connect(2, 4)
	n.connect(4, 3)

	rs[0].SendData(3, 1, 512)
	n.run(30 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatal("warmup packet lost")
	}
	if !samePath(n.delivered[0].Route, path(0, 1, 2, 3)) {
		t.Fatalf("warmup route = %v, want the direct chain", n.delivered[0].Route)
	}
	// Node 2 knows an alternative tail 2-4-3 before the break (it also
	// learns it organically from forwarding the second RREP).
	rs[2].Cache().Add(n.sched.Now(), path(2, 4, 3))
	n.disconnect(2, 3)
	rs[0].SendData(3, 1, 512)
	n.run(90 * sim.Second)
	if len(n.delivered) != 2 {
		t.Fatalf("delivered %d, want 2 (drops: %v)", len(n.delivered), n.dropped)
	}
	if rs[2].Stats().Salvages == 0 {
		t.Fatal("packet was not salvaged at node 2")
	}
	if got := n.delivered[1].Salvaged; got != 1 {
		t.Fatalf("Salvaged = %d, want 1", got)
	}
}

func TestUnreachableDestinationDropsAfterAttempts(t *testing.T) {
	n := newFakeNet(t)
	cfg := DefaultConfig()
	cfg.MaxDiscoveryAttempts = 3
	rs := n.line(2, cfg)
	n.addRouter(9, cfg) // isolated destination
	rs[0].SendData(9, 1, 512)
	n.run(120 * sim.Second)
	if len(n.delivered) != 0 {
		t.Fatal("delivered to unreachable destination")
	}
	if len(n.dropped) != 1 || n.dropped[0] != "no-route" {
		t.Fatalf("drops = %v, want [no-route]", n.dropped)
	}
	if got := rs[0].Stats().RREQSent; got != 3 {
		t.Fatalf("RREQ attempts = %d, want 3", got)
	}
}

func TestOverhearingPopulatesBystanderCache(t *testing.T) {
	// 0-1-2 chain with bystander 4 adjacent to forwarder 1: overhearing a
	// forwarded data packet must teach 4 routes to both 0 and 2 via 1
	// (paper Fig. 3).
	n := newFakeNet(t)
	rs := n.line(3, DefaultConfig())
	by := n.addRouter(4, DefaultConfig())
	n.connect(1, 4)
	rs[0].SendData(2, 1, 512)
	n.run(30 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatal("packet not delivered")
	}
	now := n.sched.Now()
	if !by.Cache().HasRouteTo(now, 2) {
		t.Fatal("bystander did not learn route to destination")
	}
	if !by.Cache().HasRouteTo(now, 0) {
		t.Fatal("bystander did not learn reverse route to source")
	}
}

func TestOverheardRERRPurgesBystanderCache(t *testing.T) {
	n := newFakeNet(t)
	by := n.addRouter(7, DefaultConfig())
	by.Cache().Add(0, path(7, 5, 2, 3))
	by.Overhear(5, &RouteError{Detector: 2, BrokenFrom: 2, BrokenTo: 3, ReturnPath: path(2, 5)})
	if by.Cache().HasRouteTo(0, 3) {
		t.Fatal("stale route survived an overheard RERR")
	}
	if !by.Cache().HasRouteTo(0, 2) {
		t.Fatal("truncation removed too much")
	}
}

func TestLearnFromTransmitterBothDirections(t *testing.T) {
	n := newFakeNet(t)
	r := n.addRouter(9, DefaultConfig())
	// Node 9 overhears node 2 forwarding a data packet with route 0-1-2-3-4.
	r.Overhear(2, &DataPacket{Src: 0, Dst: 4, Route: path(0, 1, 2, 3, 4), PayloadBytes: 512})
	now := n.sched.Now()
	if got := r.Cache().Find(now, 4); !samePath(got, path(9, 2, 3, 4)) {
		t.Fatalf("forward learned route = %v", got)
	}
	if got := r.Cache().Find(now, 0); !samePath(got, path(9, 2, 1, 0)) {
		t.Fatalf("backward learned route = %v", got)
	}
}

func TestSelfAddressedDataDeliversLocally(t *testing.T) {
	n := newFakeNet(t)
	r := n.addRouter(0, DefaultConfig())
	r.SendData(0, 1, 100)
	n.run(sim.Second)
	if len(n.delivered) != 1 {
		t.Fatal("self-addressed packet not delivered")
	}
}

func TestSendBufferOverflowDropsOldest(t *testing.T) {
	n := newFakeNet(t)
	cfg := DefaultConfig()
	cfg.SendBufferCap = 2
	cfg.MaxDiscoveryAttempts = 1
	r := n.addRouter(0, cfg)
	for i := 0; i < 4; i++ {
		r.SendData(5, 1, 100) // unreachable
	}
	n.run(60 * sim.Second)
	overflow := 0
	for _, reason := range n.dropped {
		if reason == "buffer-overflow" {
			overflow++
		}
	}
	if overflow != 2 {
		t.Fatalf("buffer-overflow drops = %d, want 2 (all: %v)", overflow, n.dropped)
	}
}

func TestGossipDampsFloodBeyondFirstRing(t *testing.T) {
	// Two dense cliques A = {0..9} and B = {10..19} joined by the bridge
	// link 9-10; the target 20 hangs off B. Rebroadcasts inside A are
	// first-ring (hop-gated, always forwarded); rebroadcasts inside B are
	// depth >= 2 and subject to gossip damping.
	n := newFakeNet(t)
	gossip := &core.BroadcastGossip{Fanout: 3}
	cfg := DefaultConfig()
	cfg.NonPropagatingFirst = false
	cfg.CacheReplies = false
	cfg.MaxDiscoveryAttempts = 10
	const cliqueSize = 10
	for i := 0; i <= 2*cliqueSize; i++ {
		c := cfg
		c.Gossip = gossip
		c.NeighborCount = func() int { return cliqueSize } // dense estimate
		n.addRouter(phy.NodeID(i), c)
	}
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			n.connect(phy.NodeID(i), phy.NodeID(j))
			n.connect(phy.NodeID(cliqueSize+i), phy.NodeID(cliqueSize+j))
		}
	}
	n.connect(9, 10)
	for i := cliqueSize; i < 2*cliqueSize; i++ {
		n.connect(phy.NodeID(i), 2*cliqueSize)
	}
	n.routers[0].SendData(2*cliqueSize, 1, 512)
	n.run(600 * sim.Second)
	if len(n.delivered) != 1 {
		t.Fatalf("gossip flood failed to deliver (drops: %v)", n.dropped)
	}
	var suppressed uint64
	for _, r := range n.routers {
		suppressed += r.Stats().GossipDropped
	}
	if suppressed == 0 {
		t.Fatal("dense second ring: no rebroadcasts suppressed")
	}
	// First-ring neighbors of the origin are exempt: every member of A
	// that heard the origin directly must have rebroadcast.
	for i := 1; i < cliqueSize; i++ {
		if n.routers[phy.NodeID(i)].Stats().GossipDropped != 0 {
			t.Fatalf("node %d suppressed a first-ring rebroadcast", i)
		}
	}
}

func TestMessageWireBytes(t *testing.T) {
	tests := []struct {
		name string
		msg  Message
		want int
	}{
		{name: "data", msg: &DataPacket{PayloadBytes: 512, Route: path(0, 1, 2)}, want: 512 + 12 + 12},
		{name: "rreq", msg: &RouteRequest{Recorded: path(0, 1)}, want: 12 + 8},
		{name: "rrep", msg: &RouteReply{Route: path(0, 1, 2), ReplyPath: path(2, 1, 0)}, want: 12 + 24},
		{name: "rerr", msg: &RouteError{ReturnPath: path(2, 1, 0)}, want: 12 + 8 + 12},
	}
	for _, tt := range tests {
		if got := tt.msg.WireBytes(); got != tt.want {
			t.Errorf("%s WireBytes = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestMessageClasses(t *testing.T) {
	if (&DataPacket{}).Class() != core.ClassData ||
		(&RouteRequest{}).Class() != core.ClassRREQ ||
		(&RouteReply{}).Class() != core.ClassRREP ||
		(&RouteError{}).Class() != core.ClassRERR {
		t.Fatal("message classes wrong")
	}
}
