package scenario

import (
	"testing"

	"rcast/internal/sim"
)

// TestAuditedRunsClean runs every scheme — plus AODV, finite batteries,
// gossip and an early traffic stop — under the full invariant audit. Any
// accounting bug in the stack that breaks packet, time or energy
// conservation fails here with the first violation in the error.
func TestAuditedRunsClean(t *testing.T) {
	base := PaperDefaults()
	base.Nodes = 30
	base.Connections = 6
	base.Duration = 60 * sim.Second

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"aodv-psm", func(c *Config) { c.Routing = RoutingAODV; c.Scheme = SchemePSM }},
		{"aodv-80211", func(c *Config) { c.Routing = RoutingAODV; c.Scheme = SchemeAlwaysOn }},
		{"battery", func(c *Config) { c.Scheme = SchemeRcast; c.BatteryJoules = 20 }},
		{"gossip", func(c *Config) { c.Scheme = SchemeRcast; c.GossipFanout = 3 }},
		{"drain", func(c *Config) { c.Scheme = SchemePSM; c.TrafficStop = 40 * sim.Second }},
		// ATIM contention serves the MAC queue out of order; this caught
		// the receive-side dedup discarding legitimately reordered frames.
		{"atim-contention", func(c *Config) { c.Scheme = SchemeRcast; c.MAC.ATIMContention = true }},
	}
	for _, scheme := range Schemes() {
		scheme := scheme
		cases = append(cases, struct {
			name string
			mut  func(*Config)
		}{scheme.String(), func(c *Config) { c.Scheme = scheme }})
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := base
			tc.mut(&cfg)
			cfg.Audit = true
			res, err := Run(cfg)
			if err != nil {
				t.Errorf("audited run failed: %v", err)
				for _, v := range res.AuditViolations {
					t.Logf("  %s", v)
				}
			}
			if res.Originated == 0 {
				t.Error("run originated no traffic; audit exercised nothing")
			}
		})
	}
}

// TestAuditIsObservationOnly checks that turning the audit on does not
// perturb the simulation: an audited run and an unaudited run of the same
// configuration must produce identical metrics. The auditor only observes
// (it never draws randomness or drives meters), so any divergence means an
// audit hook mutated simulation state.
func TestAuditIsObservationOnly(t *testing.T) {
	cfg := PaperDefaults()
	cfg.Scheme = SchemeRcast
	cfg.Nodes = 30
	cfg.Connections = 6
	cfg.Duration = 60 * sim.Second

	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Audit = true
	audited, err := Run(cfg)
	if err != nil {
		t.Fatalf("audited run failed: %v", err)
	}
	// Strip the audit-only fields, then demand bit-identical metrics.
	audited.AuditViolations = nil
	audited.AuditViolationCount = 0
	audited.AuditDupTerminals = 0
	assertResultsEqual(t, plain, audited)
}
