package scenario

import (
	"context"
	"errors"
	"testing"
	"time"

	"rcast/internal/sim"
)

// TestRunContextCancelMidFlight pins the cooperative cancellation contract:
// a context cancelled while the simulation is in its event loop stops the
// run promptly and reports the distinct ErrCanceled terminal state instead
// of executing to completion.
func TestRunContextCancelMidFlight(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	cfg.Duration = 3600 * sim.Second // hours of simulated time: must not finish

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var (
		res *Result
		err error
	)
	go func() {
		defer close(done)
		res, err = RunContext(ctx, cfg)
	}()
	time.Sleep(50 * time.Millisecond) // let the run get mid-flight
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not stop within 5s")
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not wrap ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap the context cause", err)
	}
}

// TestRunContextDeadline checks that an expired deadline is reported as
// ErrCanceled wrapping DeadlineExceeded, distinguishing it from a user
// cancel.
func TestRunContextDeadline(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	cfg.Duration = 3600 * sim.Second

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := RunContext(ctx, cfg)
	if res != nil {
		t.Fatal("timed-out run returned a result")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v should wrap ErrCanceled and DeadlineExceeded", err)
	}
}

// TestRunContextUncancelledIsIdentical checks the determinism half of the
// contract: running under a cancellable context that never cancels yields
// exactly the plain Run result.
func TestRunContextUncancelledIsIdentical(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	cfg.Duration = 20 * sim.Second

	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Originated != got.Originated || base.Delivered != got.Delivered ||
		base.TotalJoules != got.TotalJoules || base.ControlTx != got.ControlTx {
		t.Fatalf("context-wrapped run diverged: %+v vs %+v", base, got)
	}
}

// TestRunReplicationsContextCancel checks cancellation propagates through
// the replication fan-out.
func TestRunReplicationsContextCancel(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	cfg.Duration = 3600 * sim.Second

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunReplicationsContext(ctx, cfg, 3, 2)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("error %v does not wrap ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled replication batch did not stop within 5s")
	}
}
