package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"rcast/internal/core"
	"rcast/internal/fault"
)

// CanonicalVersion stamps the canonical Config encoding. Bump it whenever
// the encoded schema changes meaning (a field added, removed, or
// reinterpreted), so old cache keys can never alias new configurations.
// The golden test in canonical_test.go pins the exact bytes: accidental
// drift breaks CI instead of silently splitting result caches.
//
// v2: added the channel (propagation model) and mobility model fields.
// v3: added the named overhearing policy and tx_power_dbm fields.
const CanonicalVersion = 3

// ErrNotCanonical reports a Config carrying runtime-only state (a custom
// Policy, a Trace sink, a programmatic DSR gossip hook) that has no stable
// serialized form and therefore cannot be canonically encoded.
var ErrNotCanonical = errors.New("scenario: config has runtime-only fields and no canonical encoding")

// canonicalConfig mirrors Config field-for-field with a fixed declaration
// order and explicit values for every field (encoding/json emits struct
// fields in declaration order, and nothing here is omitempty). Times are
// integer microseconds. Do not reorder fields — that is an encoding change
// and needs a CanonicalVersion bump.
type canonicalConfig struct {
	V       int    `json:"v"`
	Scheme  string `json:"scheme"`
	Policy  string `json:"policy"`
	Routing string `json:"routing"`

	Nodes      int     `json:"nodes"`
	FieldW     float64 `json:"field_w"`
	FieldH     float64 `json:"field_h"`
	RangeM     float64 `json:"range_m"`
	TxPowerDBm float64 `json:"tx_power_dbm"`

	Connections    int     `json:"connections"`
	PacketRate     float64 `json:"packet_rate"`
	PacketBytes    int     `json:"packet_bytes"`
	TrafficStartUS int64   `json:"traffic_start_us"`
	TrafficStopUS  int64   `json:"traffic_stop_us"`

	MinSpeed float64 `json:"min_speed"`
	MaxSpeed float64 `json:"max_speed"`
	PauseUS  int64   `json:"pause_us"`

	Channel       string  `json:"channel"`
	ShadowSigmaDB float64 `json:"shadow_sigma_db"`
	Mobility      string  `json:"mobility"`
	GroupSize     int     `json:"group_size"`
	GroupRadiusM  float64 `json:"group_radius_m"`

	DurationUS int64 `json:"duration_us"`
	Seed       int64 `json:"seed"`

	MAC  canonicalMAC  `json:"mac"`
	DSR  canonicalDSR  `json:"dsr"`
	AODV canonicalAODV `json:"aodv"`

	ODPMRREPKeepAliveUS    int64 `json:"odpm_rrep_keepalive_us"`
	ODPMDataKeepAliveUS    int64 `json:"odpm_data_keepalive_us"`
	ODPMPromiscuousRefresh bool  `json:"odpm_promiscuous_refresh"`

	AwakeWatts    float64 `json:"awake_watts"`
	SleepWatts    float64 `json:"sleep_watts"`
	BatteryJoules float64 `json:"battery_joules"`

	GossipFanout float64 `json:"gossip_fanout"`

	Faults *canonicalFaults `json:"faults"`
	Audit  bool             `json:"audit"`
}

type canonicalMAC struct {
	SlotTimeUS        int64   `json:"slot_time_us"`
	SIFSUS            int64   `json:"sifs_us"`
	DIFSUS            int64   `json:"difs_us"`
	CWMin             int     `json:"cw_min"`
	CWMax             int     `json:"cw_max"`
	RetryLimit        int     `json:"retry_limit"`
	DataRateMbps      float64 `json:"data_rate_mbps"`
	DataHeaderBytes   int     `json:"data_header_bytes"`
	AckBytes          int     `json:"ack_bytes"`
	RTSBytes          int     `json:"rts_bytes"`
	CTSBytes          int     `json:"cts_bytes"`
	RTSThresholdBytes int     `json:"rts_threshold_bytes"`
	BeaconIntervalUS  int64   `json:"beacon_interval_us"`
	ATIMWindowUS      int64   `json:"atim_window_us"`
	MaxAnnouncements  int     `json:"max_announcements"`
	ATIMContention    bool    `json:"atim_contention"`
	ATIMSlots         int     `json:"atim_slots"`
	ATIMRetryLimit    int     `json:"atim_retry_limit"`
}

type canonicalDSR struct {
	CacheCapacity        int   `json:"cache_capacity"`
	CacheLifetimeUS      int64 `json:"cache_lifetime_us"`
	NonPropagatingFirst  bool  `json:"non_propagating_first"`
	DiscoveryTimeoutUS   int64 `json:"discovery_timeout_us"`
	MaxDiscoveryAttempts int   `json:"max_discovery_attempts"`
	SendBufferCap        int   `json:"send_buffer_cap"`
	SendBufferTimeoutUS  int64 `json:"send_buffer_timeout_us"`
	CacheReplies         bool  `json:"cache_replies"`
	MaxRepliesPerRequest int   `json:"max_replies_per_request"`
	MaxSalvage           int   `json:"max_salvage"`
	RebroadcastJitterUS  int64 `json:"rebroadcast_jitter_us"`
}

type canonicalAODV struct {
	ActiveRouteTimeoutUS int64 `json:"active_route_timeout_us"`
	DiscoveryTimeoutUS   int64 `json:"discovery_timeout_us"`
	MaxDiscoveryAttempts int   `json:"max_discovery_attempts"`
	NonPropagatingFirst  bool  `json:"non_propagating_first"`
	HelloIntervalUS      int64 `json:"hello_interval_us"`
	SendBufferCap        int   `json:"send_buffer_cap"`
	RebroadcastJitterUS  int64 `json:"rebroadcast_jitter_us"`
	IntermediateReplies  bool  `json:"intermediate_replies"`
}

type canonicalFaults struct {
	Crashes       []canonicalCrash     `json:"crashes"`
	CrashFraction float64              `json:"crash_fraction"`
	DowntimeUS    int64                `json:"downtime_us"`
	Loss          canonicalLoss        `json:"loss"`
	Partitions    []canonicalPartition `json:"partitions"`
	BatteryJitter float64              `json:"battery_jitter"`
}

type canonicalCrash struct {
	Node        int   `json:"node"`
	AtUS        int64 `json:"at_us"`
	RecoverAtUS int64 `json:"recover_at_us"`
}

type canonicalLoss struct {
	PGood      float64 `json:"p_good"`
	PBad       float64 `json:"p_bad"`
	MeanGoodUS int64   `json:"mean_good_us"`
	MeanBadUS  int64   `json:"mean_bad_us"`
	PerLink    bool    `json:"per_link"`
}

type canonicalPartition struct {
	StartFrac float64 `json:"start_frac"`
	StopFrac  float64 `json:"stop_frac"`
	RampUS    int64   `json:"ramp_us"`
}

// CanonicalJSON returns the canonical, version-stamped JSON encoding of
// cfg: one line, fixed field order, every field explicit (defaults
// included), simulation times as integer microseconds. Two Configs encode
// to the same bytes if and only if they describe the same simulation, so
// the encoding is a sound content-address for result caches.
//
// Runtime-only fields — Policy, Trace, Replay, DSR.Gossip,
// DSR.NeighborCount — must be nil; anything else returns ErrNotCanonical.
// (GossipFanout is the canonical way to enable the broadcast-Rcast
// extension; PolicyName is the canonical way to pick an overhearing
// policy.) The encoded "policy" field is the effective policy name — an
// explicit PolicyName equal to the scheme default encodes identically to
// leaving it empty, so the two spellings share a cache key.
func (c Config) CanonicalJSON() ([]byte, error) {
	switch {
	case c.Policy != nil:
		return nil, fmt.Errorf("%w: Policy is set (use PolicyName for registered policies)", ErrNotCanonical)
	case c.PolicyName != "" && !core.PolicyKnown(c.PolicyName):
		return nil, fmt.Errorf("%w: unknown policy %q (want one of %v)", ErrNotCanonical, c.PolicyName, core.PolicyNames())
	case c.PolicyName != "" && c.Scheme == SchemeAlwaysOn:
		return nil, fmt.Errorf("%w: scheme %v ignores overhearing policies", ErrNotCanonical, c.Scheme)
	case c.Trace != nil:
		return nil, fmt.Errorf("%w: Trace sink is set", ErrNotCanonical)
	case c.Replay != nil:
		return nil, fmt.Errorf("%w: Replay hooks are set", ErrNotCanonical)
	case c.DSR.Gossip != nil || c.DSR.NeighborCount != nil:
		return nil, fmt.Errorf("%w: DSR gossip hooks are set (use GossipFanout)", ErrNotCanonical)
	}
	enc := canonicalConfig{
		V:       CanonicalVersion,
		Scheme:  c.Scheme.String(),
		Policy:  c.EffectivePolicyName(),
		Routing: c.Routing.String(),

		Nodes:      c.Nodes,
		FieldW:     c.FieldW,
		FieldH:     c.FieldH,
		RangeM:     c.RangeM,
		TxPowerDBm: c.TxPowerDBm,

		Connections:    c.Connections,
		PacketRate:     c.PacketRate,
		PacketBytes:    c.PacketBytes,
		TrafficStartUS: int64(c.TrafficStart),
		TrafficStopUS:  int64(c.TrafficStop),

		MinSpeed: c.MinSpeed,
		MaxSpeed: c.MaxSpeed,
		PauseUS:  int64(c.Pause),

		Channel:       c.channelName(),
		ShadowSigmaDB: canonicalSigma(c),
		Mobility:      c.mobilityName(),
		GroupSize:     canonicalGroupSize(c),
		GroupRadiusM:  canonicalGroupRadius(c),

		DurationUS: int64(c.Duration),
		Seed:       c.Seed,

		MAC: canonicalMAC{
			SlotTimeUS:        int64(c.MAC.SlotTime),
			SIFSUS:            int64(c.MAC.SIFS),
			DIFSUS:            int64(c.MAC.DIFS),
			CWMin:             c.MAC.CWMin,
			CWMax:             c.MAC.CWMax,
			RetryLimit:        c.MAC.RetryLimit,
			DataRateMbps:      c.MAC.DataRateMbps,
			DataHeaderBytes:   c.MAC.DataHeaderBytes,
			AckBytes:          c.MAC.AckBytes,
			RTSBytes:          c.MAC.RTSBytes,
			CTSBytes:          c.MAC.CTSBytes,
			RTSThresholdBytes: c.MAC.RTSThresholdBytes,
			BeaconIntervalUS:  int64(c.MAC.BeaconInterval),
			ATIMWindowUS:      int64(c.MAC.ATIMWindow),
			MaxAnnouncements:  c.MAC.MaxAnnouncements,
			ATIMContention:    c.MAC.ATIMContention,
			ATIMSlots:         c.MAC.ATIMSlots,
			ATIMRetryLimit:    c.MAC.ATIMRetryLimit,
		},
		DSR: canonicalDSR{
			CacheCapacity:        c.DSR.CacheCapacity,
			CacheLifetimeUS:      int64(c.DSR.CacheLifetime),
			NonPropagatingFirst:  c.DSR.NonPropagatingFirst,
			DiscoveryTimeoutUS:   int64(c.DSR.DiscoveryTimeout),
			MaxDiscoveryAttempts: c.DSR.MaxDiscoveryAttempts,
			SendBufferCap:        c.DSR.SendBufferCap,
			SendBufferTimeoutUS:  int64(c.DSR.SendBufferTimeout),
			CacheReplies:         c.DSR.CacheReplies,
			MaxRepliesPerRequest: c.DSR.MaxRepliesPerRequest,
			MaxSalvage:           c.DSR.MaxSalvage,
			RebroadcastJitterUS:  int64(c.DSR.RebroadcastJitter),
		},
		AODV: canonicalAODV{
			ActiveRouteTimeoutUS: int64(c.AODV.ActiveRouteTimeout),
			DiscoveryTimeoutUS:   int64(c.AODV.DiscoveryTimeout),
			MaxDiscoveryAttempts: c.AODV.MaxDiscoveryAttempts,
			NonPropagatingFirst:  c.AODV.NonPropagatingFirst,
			HelloIntervalUS:      int64(c.AODV.HelloInterval),
			SendBufferCap:        c.AODV.SendBufferCap,
			RebroadcastJitterUS:  int64(c.AODV.RebroadcastJitter),
			IntermediateReplies:  c.AODV.IntermediateReplies,
		},

		ODPMRREPKeepAliveUS:    int64(c.ODPMRREPKeepAlive),
		ODPMDataKeepAliveUS:    int64(c.ODPMDataKeepAlive),
		ODPMPromiscuousRefresh: c.ODPMPromiscuousRefresh,

		AwakeWatts:    c.AwakeWatts,
		SleepWatts:    c.SleepWatts,
		BatteryJoules: c.BatteryJoules,

		GossipFanout: c.GossipFanout,

		Faults: canonicalizeFaults(c.Faults),
		Audit:  c.Audit,
	}
	return json.Marshal(enc)
}

// canonicalSigma normalizes the shadowing sigma: it only affects runs with
// Channel "shadowing", so any other channel encodes 0 — a stray sigma on a
// disk config must not split the cache key.
func canonicalSigma(c Config) float64 {
	if c.channelName() != "shadowing" {
		return 0
	}
	return c.ShadowSigmaDB
}

// canonicalGroupSize normalizes the group size: only the "group" mobility
// model reads it, and a zero value means the default, so non-group configs
// encode 0 and group configs encode the effective value.
func canonicalGroupSize(c Config) int {
	if c.mobilityName() != "group" {
		return 0
	}
	return c.groupSize()
}

// canonicalGroupRadius mirrors canonicalGroupSize for the wander radius.
func canonicalGroupRadius(c Config) float64 {
	if c.mobilityName() != "group" {
		return 0
	}
	return c.groupRadius()
}

// canonicalizeFaults maps a fault plan to its canonical form. nil stays
// nil (encoded as JSON null); empty slices normalize to [] so a plan built
// with nil slices and one built with empty slices — identical behaviour —
// encode identically.
func canonicalizeFaults(p *fault.Plan) *canonicalFaults {
	if p == nil {
		return nil
	}
	cf := &canonicalFaults{
		Crashes:       make([]canonicalCrash, 0, len(p.Crashes)),
		CrashFraction: p.CrashFraction,
		DowntimeUS:    int64(p.Downtime),
		Loss: canonicalLoss{
			PGood:      p.Loss.PGood,
			PBad:       p.Loss.PBad,
			MeanGoodUS: int64(p.Loss.MeanGood),
			MeanBadUS:  int64(p.Loss.MeanBad),
			PerLink:    p.Loss.PerLink,
		},
		Partitions:    make([]canonicalPartition, 0, len(p.Partitions)),
		BatteryJitter: p.BatteryJitter,
	}
	for _, cr := range p.Crashes {
		cf.Crashes = append(cf.Crashes, canonicalCrash{
			Node: cr.Node, AtUS: int64(cr.At), RecoverAtUS: int64(cr.RecoverAt),
		})
	}
	for _, w := range p.Partitions {
		cf.Partitions = append(cf.Partitions, canonicalPartition{
			StartFrac: w.StartFrac, StopFrac: w.StopFrac, RampUS: int64(w.Ramp),
		})
	}
	return cf
}

// CanonicalKey content-addresses a replication batch: the hex SHA-256 of
// the canonical Config encoding plus the replication count. Identical
// (config, reps) pairs — however they were expressed — hash identically,
// so the key is safe to use for result memoization.
func (c Config) CanonicalKey(reps int) (string, error) {
	if reps < 1 {
		reps = 1
	}
	b, err := c.CanonicalJSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(b)
	fmt.Fprintf(h, "|reps=%d", reps)
	return hex.EncodeToString(h.Sum(nil)), nil
}
