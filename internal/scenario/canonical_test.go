package scenario

import (
	"errors"
	"testing"

	"rcast/internal/core"
	"rcast/internal/fault"
	"rcast/internal/sim"
	"rcast/internal/trace"
)

// Golden canonical encodings. These bytes are load-bearing: result caches
// (internal/serve) key on their hash, so ANY change here — a new field, a
// reorder, a rename — silently splits every deployed cache. If this test
// fails because you changed Config, that is the alarm working: bump
// CanonicalVersion, regenerate the strings, and say so in the changelog.
const (
	goldenDefault = `{"v":3,"scheme":"Rcast","policy":"rcast","routing":"DSR","nodes":100,"field_w":1500,"field_h":300,"range_m":250,"tx_power_dbm":0,"connections":20,"packet_rate":0.4,"packet_bytes":512,"traffic_start_us":5000000,"traffic_stop_us":0,"min_speed":1,"max_speed":20,"pause_us":600000000,"channel":"disk","shadow_sigma_db":0,"mobility":"waypoint","group_size":0,"group_radius_m":0,"duration_us":1125000000,"seed":1,"mac":{"slot_time_us":20,"sifs_us":10,"difs_us":50,"cw_min":31,"cw_max":1023,"retry_limit":7,"data_rate_mbps":2,"data_header_bytes":34,"ack_bytes":14,"rts_bytes":20,"cts_bytes":14,"rts_threshold_bytes":0,"beacon_interval_us":250000,"atim_window_us":50000,"max_announcements":64,"atim_contention":false,"atim_slots":64,"atim_retry_limit":3},"dsr":{"cache_capacity":64,"cache_lifetime_us":0,"non_propagating_first":true,"discovery_timeout_us":1000000,"max_discovery_attempts":6,"send_buffer_cap":64,"send_buffer_timeout_us":30000000,"cache_replies":true,"max_replies_per_request":3,"max_salvage":1,"rebroadcast_jitter_us":10000},"aodv":{"active_route_timeout_us":3000000,"discovery_timeout_us":1000000,"max_discovery_attempts":6,"non_propagating_first":true,"hello_interval_us":1000000,"send_buffer_cap":64,"rebroadcast_jitter_us":10000,"intermediate_replies":true},"odpm_rrep_keepalive_us":0,"odpm_data_keepalive_us":0,"odpm_promiscuous_refresh":false,"awake_watts":0,"sleep_watts":0,"battery_joules":0,"gossip_fanout":0,"faults":null,"audit":false}`

	goldenFaulted = `{"v":3,"scheme":"Rcast","policy":"rcast","routing":"DSR","nodes":100,"field_w":1500,"field_h":300,"range_m":250,"tx_power_dbm":0,"connections":20,"packet_rate":0.4,"packet_bytes":512,"traffic_start_us":5000000,"traffic_stop_us":0,"min_speed":1,"max_speed":20,"pause_us":600000000,"channel":"disk","shadow_sigma_db":0,"mobility":"waypoint","group_size":0,"group_radius_m":0,"duration_us":1125000000,"seed":1,"mac":{"slot_time_us":20,"sifs_us":10,"difs_us":50,"cw_min":31,"cw_max":1023,"retry_limit":7,"data_rate_mbps":2,"data_header_bytes":34,"ack_bytes":14,"rts_bytes":20,"cts_bytes":14,"rts_threshold_bytes":0,"beacon_interval_us":250000,"atim_window_us":50000,"max_announcements":64,"atim_contention":false,"atim_slots":64,"atim_retry_limit":3},"dsr":{"cache_capacity":64,"cache_lifetime_us":0,"non_propagating_first":true,"discovery_timeout_us":1000000,"max_discovery_attempts":6,"send_buffer_cap":64,"send_buffer_timeout_us":30000000,"cache_replies":true,"max_replies_per_request":3,"max_salvage":1,"rebroadcast_jitter_us":10000},"aodv":{"active_route_timeout_us":3000000,"discovery_timeout_us":1000000,"max_discovery_attempts":6,"non_propagating_first":true,"hello_interval_us":1000000,"send_buffer_cap":64,"rebroadcast_jitter_us":10000,"intermediate_replies":true},"odpm_rrep_keepalive_us":0,"odpm_data_keepalive_us":0,"odpm_promiscuous_refresh":false,"awake_watts":0,"sleep_watts":0,"battery_joules":0,"gossip_fanout":0,"faults":{"crashes":[{"node":3,"at_us":10000000,"recover_at_us":40000000}],"crash_fraction":0.2,"downtime_us":30000000,"loss":{"p_good":0.02,"p_bad":0.6,"mean_good_us":10000000,"mean_bad_us":1000000,"per_link":true},"partitions":[{"start_frac":0.4,"stop_frac":0.7,"ramp_us":10000000}],"battery_jitter":0.5},"audit":true}`
)

func faultedGoldenConfig() Config {
	cfg := PaperDefaults()
	cfg.Faults = &fault.Plan{
		Crashes:       []fault.Crash{{Node: 3, At: 10 * sim.Second, RecoverAt: 40 * sim.Second}},
		CrashFraction: 0.2,
		Downtime:      30 * sim.Second,
		Loss:          fault.LossConfig{PGood: 0.02, PBad: 0.6, MeanGood: 10 * sim.Second, MeanBad: sim.Second, PerLink: true},
		Partitions:    []fault.Partition{{StartFrac: 0.4, StopFrac: 0.7, Ramp: 10 * sim.Second}},
		BatteryJitter: 0.5,
	}
	cfg.Audit = true
	return cfg
}

func TestCanonicalJSONGolden(t *testing.T) {
	b, err := PaperDefaults().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != goldenDefault {
		t.Errorf("canonical encoding of PaperDefaults drifted:\n got %s\nwant %s", b, goldenDefault)
	}
	b, err = faultedGoldenConfig().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != goldenFaulted {
		t.Errorf("canonical encoding of faulted config drifted:\n got %s\nwant %s", b, goldenFaulted)
	}
}

func TestCanonicalJSONStable(t *testing.T) {
	a, err := faultedGoldenConfig().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := faultedGoldenConfig().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two encodings of the same config differ")
	}
}

// TestCanonicalJSONEmptyFaultSlicesNormalize: a plan with nil slices and a
// plan with empty slices behave identically, so they must encode (and
// hash) identically.
func TestCanonicalJSONEmptyFaultSlicesNormalize(t *testing.T) {
	a := PaperDefaults()
	a.Faults = &fault.Plan{CrashFraction: 0.1}
	b := PaperDefaults()
	b.Faults = &fault.Plan{CrashFraction: 0.1, Crashes: []fault.Crash{}, Partitions: []fault.Partition{}}
	ea, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ea) != string(eb) {
		t.Fatalf("nil-slice and empty-slice plans encode differently:\n%s\n%s", ea, eb)
	}
}

func TestCanonicalJSONRejectsRuntimeFields(t *testing.T) {
	cases := map[string]func(*Config){
		"policy": func(c *Config) { c.Policy = core.Rcast{} },
		"trace":  func(c *Config) { c.Trace = trace.NewRing(4) },
		"replay": func(c *Config) { c.Replay = &ReplayHooks{} },
		"gossip": func(c *Config) { c.DSR.Gossip = &core.BroadcastGossip{Fanout: 3} },
		// Regression: an overhearing policy on the always-on scheme used to
		// be silently ignored; the encoder must refuse to cache the lie.
		"policy on 802.11": func(c *Config) { c.Scheme = SchemeAlwaysOn; c.PolicyName = "rcast" },
		"unknown policy":   func(c *Config) { c.PolicyName = "fixed-0.50" },
	}
	for name, mutate := range cases {
		cfg := PaperDefaults()
		mutate(&cfg)
		if _, err := cfg.CanonicalJSON(); !errors.Is(err, ErrNotCanonical) {
			t.Errorf("%s: got %v, want ErrNotCanonical", name, err)
		}
	}
}

// TestCanonicalJSONDefaultPolicyNameNormalizes: naming a scheme's own
// default policy explicitly changes nothing at runtime, so it must share
// a cache key with the empty name — while a genuinely different policy
// must not.
func TestCanonicalJSONDefaultPolicyNameNormalizes(t *testing.T) {
	implicit := PaperDefaults() // Rcast scheme, PolicyName ""
	explicit := PaperDefaults()
	explicit.PolicyName = "rcast"
	a, err := implicit.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("explicit default policy name encodes differently:\n%s\n%s", a, b)
	}
	other := PaperDefaults()
	other.PolicyName = "battery"
	c, err := other.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(c) == string(a) {
		t.Fatal("battery policy shares an encoding with the default")
	}
}

func TestCanonicalKey(t *testing.T) {
	base := PaperDefaults()
	k1, err := base.CanonicalKey(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not hex sha256", k1)
	}
	k2, _ := base.CanonicalKey(3)
	if k1 != k2 {
		t.Fatal("same (config, reps) hashed differently")
	}
	if k3, _ := base.CanonicalKey(4); k3 == k1 {
		t.Fatal("reps not part of the key")
	}
	other := base
	other.Seed = 2
	if k4, _ := other.CanonicalKey(3); k4 == k1 {
		t.Fatal("seed not part of the key")
	}
	faulted := faultedGoldenConfig()
	if k5, _ := faulted.CanonicalKey(3); k5 == k1 {
		t.Fatal("fault plan not part of the key")
	}
}
