package scenario

import (
	"reflect"
	"testing"
)

// TestChannelDiskEquivalences is the metamorphic pin behind the golden
// traces: the default config, an explicit Channel:"disk", and zero-sigma
// shadowing must all produce the identical Result — the propagation plumbing
// cannot perturb the historical disk behaviour.
func TestChannelDiskEquivalences(t *testing.T) {
	base, err := Run(quickConfig(SchemeRcast))
	if err != nil {
		t.Fatal(err)
	}

	explicit := quickConfig(SchemeRcast)
	explicit.Channel = "disk"
	res, err := Run(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("explicit Channel:\"disk\" diverged from the default")
	}

	zero := quickConfig(SchemeRcast)
	zero.Channel = "shadowing"
	zero.ShadowSigmaDB = 0
	res, err = Run(zero)
	if err != nil {
		t.Fatal(err)
	}
	if res.Channel.ChannelLost != 0 {
		t.Fatalf("zero-sigma shadowing lost %d frames", res.Channel.ChannelLost)
	}
	res.Channel.ChannelLost = base.Channel.ChannelLost
	if !reflect.DeepEqual(base, res) {
		t.Fatal("zero-sigma shadowing diverged from the disk")
	}

	wp := quickConfig(SchemeRcast)
	wp.Mobility = "waypoint"
	res, err = Run(wp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("explicit Mobility:\"waypoint\" diverged from the default")
	}
}

// TestChannelModelsPerturb is the control for the pin above: a non-trivial
// model must actually change the run, and its losses must be counted.
func TestChannelModelsPerturb(t *testing.T) {
	base, err := Run(quickConfig(SchemeRcast))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"shadowing", "fading"} {
		cfg := quickConfig(SchemeRcast)
		cfg.Channel = name
		cfg.ShadowSigmaDB = 6
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Channel.ChannelLost == 0 {
			t.Errorf("%s: no channel losses in a mobile 30-node cell", name)
		}
		if reflect.DeepEqual(base, res) {
			t.Errorf("%s: run identical to the disk", name)
		}
	}
}

// TestMobilityModelsPerturb: each non-default mobility model changes the
// run but still delivers traffic (nodes stay on the field, links form).
func TestMobilityModelsPerturb(t *testing.T) {
	base, err := Run(quickConfig(SchemeRcast))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gauss-markov", "group"} {
		cfg := quickConfig(SchemeRcast)
		cfg.Mobility = name
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(base, res) {
			t.Errorf("%s: run identical to waypoint", name)
		}
		if res.PDR < 0.3 {
			t.Errorf("%s: PDR %.3f implausibly low (drops: %v)", name, res.PDR, res.Drops)
		}
	}
}

// TestMobilityStaticPin: Pause >= Duration pins nodes regardless of the
// mobility model, as the static experiment scenario requires.
func TestMobilityStaticPin(t *testing.T) {
	for _, name := range MobilityNames() {
		cfg := quickConfig(SchemeRcast)
		cfg.Mobility = name
		cfg.Pause = cfg.Duration
		w, err := newWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range w.ch.Radios() {
			p0 := r.Position(0)
			p1 := r.Position(cfg.Duration)
			if p0 != p1 {
				t.Fatalf("%s: node %v moved in a static scenario: %v -> %v", name, r.ID(), p0, p1)
			}
		}
	}
}

// TestCanonicalChannelNormalization: configs that differ only in default
// spellings or inert knobs must share one canonical key, and materially
// different channels must not.
func TestCanonicalChannelNormalization(t *testing.T) {
	key := func(mut func(*Config)) string {
		cfg := quickConfig(SchemeRcast)
		mut(&cfg)
		k, err := cfg.CanonicalKey(1)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := key(func(*Config) {})
	same := map[string]func(*Config){
		"explicit disk":       func(c *Config) { c.Channel = "disk" },
		"explicit waypoint":   func(c *Config) { c.Mobility = "waypoint" },
		"sigma without model": func(c *Config) { c.ShadowSigmaDB = 8 },
		"group knobs unused":  func(c *Config) { c.GroupSize = 6; c.GroupRadiusM = 80 },
	}
	for name, mut := range same {
		if k := key(mut); k != base {
			t.Errorf("%s: key changed although the run is identical", name)
		}
	}
	diff := map[string]func(*Config){
		"shadowing": func(c *Config) { c.Channel = "shadowing"; c.ShadowSigmaDB = 4 },
		"fading":    func(c *Config) { c.Channel = "fading" },
		"gm":        func(c *Config) { c.Mobility = "gauss-markov" },
		"group":     func(c *Config) { c.Mobility = "group" },
	}
	seen := map[string]string{base: "base"}
	for name, mut := range diff {
		k := key(mut)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s: key collides with %s", name, prev)
		}
		seen[k] = name
	}
	// Group defaults normalize: explicit 4/50 equals the zero-value spelling.
	g1 := key(func(c *Config) { c.Mobility = "group" })
	g2 := key(func(c *Config) { c.Mobility = "group"; c.GroupSize = 4; c.GroupRadiusM = 50 })
	if g1 != g2 {
		t.Error("explicit group defaults changed the canonical key")
	}
}

func TestValidateChannelMobility(t *testing.T) {
	bad := map[string]func(*Config){
		"unknown channel":  func(c *Config) { c.Channel = "nakagami" },
		"unknown mobility": func(c *Config) { c.Mobility = "levy-walk" },
		"negative sigma":   func(c *Config) { c.Channel = "shadowing"; c.ShadowSigmaDB = -1 },
		"negative group":   func(c *Config) { c.Mobility = "group"; c.GroupSize = -2 },
		"negative radius":  func(c *Config) { c.Mobility = "group"; c.GroupRadiusM = -5 },
	}
	for name, mut := range bad {
		cfg := quickConfig(SchemeRcast)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := quickConfig(SchemeRcast)
	ok.Channel = "fading"
	ok.Mobility = "group"
	if err := ok.Validate(); err != nil {
		t.Errorf("valid channel/mobility rejected: %v", err)
	}
}
