// Package scenario assembles complete simulations: it wires mobility,
// radios, MAC, energy metering, DSR routing, overhearing policies, power
// management and CBR traffic into a network, runs it, and collects the
// paper's metrics.
package scenario

import (
	"errors"
	"fmt"
	"math"

	"rcast/internal/core"
	"rcast/internal/fault"
	"rcast/internal/mac"
	"rcast/internal/phy"
	"rcast/internal/routing/aodv"
	"rcast/internal/routing/dsr"
	"rcast/internal/sim"
	"rcast/internal/trace"
)

// Routing selects the network-layer protocol.
type Routing int

// Routing protocols. DSR is the paper's protocol; AODV is the timeout-based
// alternative its §1 footnote contrasts (experiment A6). The zero value
// means DSR so existing configs keep working.
const (
	RoutingDSR Routing = iota
	RoutingAODV
)

// String implements fmt.Stringer.
func (r Routing) String() string {
	switch r {
	case RoutingDSR:
		return "DSR"
	case RoutingAODV:
		return "AODV"
	default:
		return fmt.Sprintf("Routing(%d)", int(r))
	}
}

// Scheme selects one of the evaluated protocol stacks.
type Scheme int

// Schemes. SchemeAlwaysOn / SchemeODPM / SchemeRcast are the three schemes
// of the paper's §4 (there named "802.11", "ODPM", "Rcast"); SchemePSM is
// unmodified IEEE 802.11 PSM with the unconditional overhearing DSR needs;
// SchemePSMNoOverhear is the naive no-overhearing integration from §1.
const (
	SchemeAlwaysOn Scheme = iota + 1
	SchemePSM
	SchemePSMNoOverhear
	SchemeODPM
	SchemeRcast
)

// schemeRegistry is the table of registered schemes in presentation
// order. Validation (Config.Validate, Grid.validate) checks membership
// against this table rather than an enum span, so registering a scheme
// here is the single step that makes it sweepable and parseable.
var schemeRegistry = []Scheme{SchemeAlwaysOn, SchemePSM, SchemePSMNoOverhear, SchemeODPM, SchemeRcast}

// Schemes lists all registered schemes in presentation order. The slice
// is a copy; mutating it does not affect the registry.
func Schemes() []Scheme {
	return append([]Scheme(nil), schemeRegistry...)
}

// Known reports whether s is a registered scheme.
func (s Scheme) Known() bool {
	for _, k := range schemeRegistry {
		if k == s {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeAlwaysOn:
		return "802.11"
	case SchemePSM:
		return "PSM"
	case SchemePSMNoOverhear:
		return "PSM-no-overhear"
	case SchemeODPM:
		return "ODPM"
	case SchemeRcast:
		return "Rcast"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme resolves a scheme name as printed by String.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range Schemes() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown scheme %q", name)
}

// defaultPolicy returns the overhearing policy a scheme implies.
func (s Scheme) defaultPolicy() core.Policy {
	switch s {
	case SchemePSM:
		return core.Unconditional{}
	case SchemeRcast:
		return core.Rcast{}
	default:
		// AlwaysOn ignores the policy; ODPM and the naive integration use
		// standard ATIMs (destination-only wake).
		return core.None{}
	}
}

// Config fully describes one simulation run. The zero value is not
// runnable; start from PaperDefaults.
type Config struct {
	Scheme Scheme
	// Policy overrides the scheme's overhearing policy (PSM family only);
	// nil selects PolicyName, or the scheme default when that is empty
	// too. Runtime-only — a Config carrying a Policy value has no
	// canonical form; prefer PolicyName, which covers every registered
	// policy. Kept for custom/parameterized policies (core.FixedProb).
	Policy core.Policy
	// PolicyName selects a registered overhearing policy by name (see
	// core.PolicyNames: rcast, unconditional, none, sender-id, battery,
	// mobility, combined); "" selects the scheme's default. Unlike Policy
	// it is part of the canonical encoding (v3), so named-policy runs are
	// cacheable, sweepable and replayable. PSM-family schemes only:
	// SchemeAlwaysOn never consults a policy, so setting either policy
	// field alongside it is a validation error rather than a silent no-op.
	PolicyName string

	Nodes          int
	FieldW, FieldH float64 // metres
	RangeM         float64 // radio range

	// TxPowerDBm offsets every node's transmit power from the nominal
	// two-ray-ground setting (ns-2's Pt = 0.2818 W, which yields RangeM)
	// in dB. Under the model's d^-4 path loss a +x dB offset stretches
	// every node's effective transmit range by 10^(x/40), composing with
	// any shadowing/fading gains; the energy meters charge (or credit)
	// the transmit-power delta per transmission. 0 keeps the paper setup
	// byte-identical. Bounded to ±40 dB (a 10× range factor either way).
	TxPowerDBm float64

	Connections  int
	PacketRate   float64 // packets/second per connection
	PacketBytes  int
	TrafficStart sim.Time
	// TrafficStop ends CBR sources early, leaving a drain window before
	// Duration so in-flight packets can settle. Zero means Duration (no
	// drain window), preserving the paper setup.
	TrafficStop sim.Time

	MinSpeed, MaxSpeed float64  // m/s
	Pause              sim.Time // random-waypoint pause time

	// Channel selects the propagation model: "disk" (default; "" means
	// disk), "shadowing" or "fading" (see internal/propagation).
	// ShadowSigmaDB is the log-normal shadowing std-dev in dB; it only
	// applies to "shadowing", and zero sigma degenerates to the disk.
	Channel       string
	ShadowSigmaDB float64

	// Mobility selects the movement model: "waypoint" (default; "" means
	// waypoint), "gauss-markov" or "group" (reference-point group
	// mobility). GroupSize and GroupRadiusM parameterize "group": nodes
	// are partitioned into consecutive-ID groups of GroupSize, each
	// following a shared waypoint reference with per-node wander bounded
	// by GroupRadiusM. Zero values default to 4 nodes / 50 m.
	Mobility     string
	GroupSize    int
	GroupRadiusM float64

	Duration sim.Time
	Seed     int64

	// Routing selects DSR (default) or AODV; DSR/AODV carry the
	// protocol-specific knobs.
	Routing Routing
	MAC     mac.Params
	DSR     dsr.Config
	AODV    aodv.Config

	// ODPM keep-alive overrides; zero selects the ODPM paper defaults.
	ODPMRREPKeepAlive sim.Time
	ODPMDataKeepAlive sim.Time
	// ODPMPromiscuousRefresh selects the looser ODPM reading in which a
	// node in active mode refreshes its data keep-alive on overheard data
	// packets (promiscuous 802.11). The default (false) is the stricter
	// literal reading — only packets the node sends, forwards or receives
	// refresh — which preserves the paper's bimodal per-node energy
	// structure (Figs. 5/6); see EXPERIMENTS.md for the sensitivity study.
	ODPMPromiscuousRefresh bool

	// AwakeWatts/SleepWatts override the energy model (zero = paper
	// values). BatteryJoules > 0 gives nodes finite batteries.
	AwakeWatts, SleepWatts float64
	BatteryJoules          float64

	// GossipFanout > 0 enables the broadcast-Rcast extension: RREQ
	// rebroadcast damping with the given expected fanout.
	GossipFanout float64

	// Faults, when non-nil, enables deterministic fault injection (node
	// crashes, Gilbert–Elliott burst loss, partitions, battery jitter; see
	// internal/fault). nil — or a plan whose Enabled() is false — leaves
	// the run byte-identical to an unfaulted one: no hooks installed, no
	// RNG streams created, no events scheduled.
	Faults *fault.Plan

	// Trace, when non-nil, receives the packet-lifecycle event stream:
	// routing events (origination, forwarding, salvage, delivery, drops,
	// control traffic, cache insertions and evictions), MAC events
	// (enqueue, ATIM advertisements, the overhearing lottery, sleep/wake)
	// and PHY loss classifications, plus node lifecycle (battery deaths,
	// crashes, recoveries). Events carry a run-local sequence number and,
	// where applicable, the packet UID "src:flow:seq". A nil Trace keeps
	// the run byte-identical to an untraced one.
	Trace trace.Sink

	// Audit enables the cross-layer invariant checker (internal/audit):
	// packet conservation, time/energy conservation, PSM legality and
	// scheduler sanity are verified continuously and at teardown, and any
	// violation turns the run into an error. Off (the default) costs
	// nothing: every hook stays nil.
	Audit bool

	// Replay, when non-nil, injects recorded stochastic decisions in place
	// of the live ones: overhearing-lottery verdicts, fault-injected PHY
	// losses and the crash schedule are taken from a captured trace (see
	// internal/replay) instead of their RNG streams. Runtime-only, like
	// Policy and Trace: a Config carrying Replay has no canonical form.
	Replay *ReplayHooks
}

// ReplayHooks carries the decision-injection points internal/replay uses
// to re-execute a run from its captured trace. Each nil hook leaves the
// corresponding decision site on its live path.
type ReplayHooks struct {
	// Lottery overrides each overhearing-lottery verdict. The configured
	// policy still runs (and burns its RNG draws — the lottery shares the
	// per-node MAC stream with DCF backoff) before the override replaces
	// its answer; policySays is that live verdict.
	Lottery func(now sim.Time, node phy.NodeID, a mac.Announcement, policySays bool) bool

	// Loss replaces the fault plan's PHY loss model (Gilbert–Elliott
	// chains) with a trace-driven one.
	Loss phy.LossModel

	// CrashSchedule replaces the fault injector's crash/recovery schedule
	// when UseCrashSchedule is set (the flag distinguishes "replay an
	// empty schedule" from "keep the live one").
	CrashSchedule    []fault.Crash
	UseCrashSchedule bool

	// ChanLoss replaces the propagation model's transmit-time verdicts
	// with the recorded chan-lost decision stream (non-disk channels
	// only; neighbor-query verdicts re-derive from the config seed).
	ChanLoss phy.LossModel
}

// ChannelNames lists the accepted Config.Channel values ("" means the
// first). The set mirrors internal/propagation.Names.
func ChannelNames() []string { return []string{"disk", "shadowing", "fading"} }

// MobilityNames lists the accepted Config.Mobility values ("" means the
// first).
func MobilityNames() []string { return []string{"waypoint", "gauss-markov", "group"} }

// channelName resolves the effective channel model name ("" → "disk").
func (c Config) channelName() string {
	if c.Channel == "" {
		return "disk"
	}
	return c.Channel
}

// mobilityName resolves the effective mobility model name ("" → "waypoint").
func (c Config) mobilityName() string {
	if c.Mobility == "" {
		return "waypoint"
	}
	return c.Mobility
}

// groupSize resolves the effective group size (0 → 4).
func (c Config) groupSize() int {
	if c.GroupSize <= 0 {
		return 4
	}
	return c.GroupSize
}

// groupRadius resolves the effective group wander radius (0 → 50 m).
func (c Config) groupRadius() float64 {
	if c.GroupRadiusM <= 0 {
		return 50
	}
	return c.GroupRadiusM
}

// EffectivePolicyName resolves the named overhearing policy in force for
// the run: PolicyName when set, else the name of the scheme's default
// policy. A runtime Policy override (non-nil Config.Policy) is not
// reflected here — it has no canonical name.
func (c Config) EffectivePolicyName() string {
	if c.PolicyName != "" {
		return c.PolicyName
	}
	return c.Scheme.defaultPolicy().Name()
}

// txRangeScale returns the factor TxPowerDBm stretches the effective
// transmit range by. Received power falls off as d^-4 under two-ray
// ground, so range scales with the fourth root of transmit power: an
// x dB offset is a range factor of 10^(x/40).
func (c Config) txRangeScale() float64 {
	return math.Pow(10, c.TxPowerDBm/40)
}

// txPowerRatio returns the linear transmit-power ratio 10^(dB/10).
func (c Config) txPowerRatio() float64 {
	return math.Pow(10, c.TxPowerDBm/10)
}

// nameKnown reports whether name is one of names.
func nameKnown(name string, names []string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// PaperDefaults returns the evaluation setup of §4.1: 100 nodes on a
// 1500 m × 300 m field, 250 m range, 2 Mbps, 20 CBR connections of
// 512-byte packets, random waypoint at up to 20 m/s, 1125 s of simulated
// time, 250 ms beacon intervals with 50 ms ATIM windows.
func PaperDefaults() Config {
	return Config{
		Scheme:       SchemeRcast,
		Nodes:        100,
		FieldW:       1500,
		FieldH:       300,
		RangeM:       250,
		Connections:  20,
		PacketRate:   0.4,
		PacketBytes:  512,
		TrafficStart: 5 * sim.Second,
		MinSpeed:     1,
		MaxSpeed:     20,
		Pause:        600 * sim.Second,
		Duration:     1125 * sim.Second,
		Seed:         1,
		MAC:          mac.DefaultParams(),
		DSR:          dsr.DefaultConfig(),
		AODV:         aodv.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case !c.Scheme.Known():
		return fmt.Errorf("scenario: invalid scheme %d", int(c.Scheme))
	case c.Policy != nil && c.PolicyName != "":
		return fmt.Errorf("scenario: Policy and PolicyName %q are both set (pick one)", c.PolicyName)
	case (c.Policy != nil || c.PolicyName != "") && c.Scheme == SchemeAlwaysOn:
		// SchemeAlwaysOn never consults an overhearing policy; silently
		// ignoring one would let two behaviourally identical runs cache
		// under different keys — and read as different experiments.
		return fmt.Errorf("scenario: scheme %v ignores overhearing policies; drop the policy or pick a PSM-family scheme", c.Scheme)
	case c.PolicyName != "" && !core.PolicyKnown(c.PolicyName):
		return fmt.Errorf("scenario: unknown policy %q (want one of %v)", c.PolicyName, core.PolicyNames())
	case !(c.TxPowerDBm >= -40 && c.TxPowerDBm <= 40):
		return fmt.Errorf("scenario: tx power %v dB outside [-40, 40]", c.TxPowerDBm)
	case c.Routing != RoutingDSR && c.Routing != RoutingAODV:
		return fmt.Errorf("scenario: invalid routing %d", int(c.Routing))
	case c.Nodes < 2:
		return fmt.Errorf("scenario: need >= 2 nodes, have %d", c.Nodes)
	case c.FieldW <= 0 || c.FieldH <= 0:
		return errors.New("scenario: field dimensions must be positive")
	case c.RangeM <= 0:
		return errors.New("scenario: radio range must be positive")
	case c.Connections < 1:
		return errors.New("scenario: need at least one connection")
	case c.PacketRate <= 0:
		return errors.New("scenario: packet rate must be positive")
	case c.PacketBytes <= 0:
		return errors.New("scenario: packet size must be positive")
	case c.Duration <= 0:
		return errors.New("scenario: duration must be positive")
	case c.MaxSpeed < c.MinSpeed || c.MinSpeed < 0:
		return errors.New("scenario: speed bounds invalid")
	case c.TrafficStart < 0 || c.TrafficStart >= c.Duration:
		return errors.New("scenario: traffic start outside the run")
	case c.TrafficStop != 0 && (c.TrafficStop <= c.TrafficStart || c.TrafficStop > c.Duration):
		return errors.New("scenario: traffic stop outside (start, duration]")
	case !nameKnown(c.channelName(), ChannelNames()):
		return fmt.Errorf("scenario: unknown channel model %q (want one of %v)", c.Channel, ChannelNames())
	case c.ShadowSigmaDB < 0:
		return errors.New("scenario: shadowing sigma must be >= 0")
	case !nameKnown(c.mobilityName(), MobilityNames()):
		return fmt.Errorf("scenario: unknown mobility model %q (want one of %v)", c.Mobility, MobilityNames())
	case c.GroupSize < 0:
		return errors.New("scenario: group size must be >= 0")
	case c.GroupRadiusM < 0:
		return errors.New("scenario: group radius must be >= 0")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.Nodes); err != nil {
			return err
		}
	}
	return nil
}

// trafficStop resolves the effective CBR stop instant.
func (c Config) trafficStop() sim.Time {
	if c.TrafficStop != 0 {
		return c.TrafficStop
	}
	return c.Duration
}
