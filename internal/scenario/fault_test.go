package scenario

import (
	"reflect"
	"testing"

	"rcast/internal/fault"
	"rcast/internal/sim"
)

// mustPreset resolves a named fault preset or fails the test.
func mustPreset(t *testing.T, name string) *fault.Plan {
	t.Helper()
	p, err := fault.Preset(name)
	if err != nil {
		t.Fatalf("preset %q: %v", name, err)
	}
	return p
}

// faultBase is a small mobile scenario shared by the fault tests.
func faultBase() Config {
	cfg := PaperDefaults()
	cfg.Scheme = SchemePSM
	cfg.Nodes = 30
	cfg.Connections = 6
	cfg.Duration = 90 * sim.Second
	cfg.Audit = true
	return cfg
}

// TestFaultZeroPlanByteIdentical is the metamorphic oracle from DESIGN.md
// §9: a run with no fault plan, a run with a zero-valued plan, and a run
// with the "none" preset must be byte-identical — an inert plan installs
// no hooks, creates no RNG streams and schedules no events.
func TestFaultZeroPlanByteIdentical(t *testing.T) {
	base := faultBase()
	ref, err := Run(base)
	if err != nil {
		t.Fatalf("unfaulted run failed audit: %v", err)
	}
	if ref.Delivered == 0 {
		t.Fatal("oracle run delivered nothing; scenario too sparse to be meaningful")
	}

	zero := base
	zero.Faults = &fault.Plan{}
	rz, err := Run(zero)
	if err != nil {
		t.Fatalf("zero-plan run failed audit: %v", err)
	}
	assertResultsEqual(t, ref, rz)

	none := base
	none.Faults = mustPreset(t, "none")
	rn, err := Run(none)
	if err != nil {
		t.Fatalf("none-preset run failed audit: %v", err)
	}
	assertResultsEqual(t, ref, rn)
}

// TestFaultCrashAtInfinityEqualsNoCrash: a crash scheduled at or after the
// run's end must never fire — the run is byte-identical to an unfaulted
// one (second metamorphic oracle).
func TestFaultCrashAtInfinityEqualsNoCrash(t *testing.T) {
	base := faultBase()
	ref, err := Run(base)
	if err != nil {
		t.Fatalf("unfaulted run failed audit: %v", err)
	}

	inf := base
	inf.Faults = &fault.Plan{Crashes: []fault.Crash{
		{Node: 1, At: base.Duration},
		{Node: 2, At: base.Duration + 3600*sim.Second},
	}}
	ri, err := Run(inf)
	if err != nil {
		t.Fatalf("crash-at-infinity run failed audit: %v", err)
	}
	if ri.NodeCrashes != 0 {
		t.Errorf("crash-at-infinity run recorded %d crashes, want 0", ri.NodeCrashes)
	}
	assertResultsEqual(t, ref, ri)
}

// TestFaultCrashAuditedEverywhere runs the crash preset under the full
// invariant audit for every scheme and both routing protocols: packet and
// energy conservation must stay provable with nodes dying mid-flight,
// with crashed-node buffers reconciled as their own terminal class.
func TestFaultCrashAuditedEverywhere(t *testing.T) {
	for _, s := range Schemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			cfg := faultBase()
			cfg.Scheme = s
			cfg.Faults = mustPreset(t, "crash")
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("audited crash run failed: %v", err)
			}
			if res.NodeCrashes == 0 {
				t.Error("crash preset produced no crashes")
			}
			if res.NodeRecoveries == 0 {
				t.Error("crash preset (30 s downtime) produced no recoveries")
			}
			if res.CrashFlushedPackets != res.Drops["node-crash"] {
				t.Errorf("crash-flushed packets %d != node-crash drops %d",
					res.CrashFlushedPackets, res.Drops["node-crash"])
			}
		})
	}
	t.Run("AODV", func(t *testing.T) {
		t.Parallel()
		cfg := faultBase()
		cfg.Routing = RoutingAODV
		cfg.Faults = mustPreset(t, "crash")
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("audited AODV crash run failed: %v", err)
		}
		if res.NodeCrashes == 0 {
			t.Error("crash preset produced no crashes")
		}
	})
}

// TestFaultBurstLossAudited drives the Gilbert–Elliott channel fault under
// audit; frames vanished by the loss model must show up in the channel
// stats and break nothing in the packet census.
func TestFaultBurstLossAudited(t *testing.T) {
	cfg := faultBase()
	cfg.Faults = mustPreset(t, "loss")
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("audited loss run failed: %v", err)
	}
	if res.Channel.FaultLost == 0 {
		t.Error("loss preset lost no frames")
	}
}

// TestFaultPartitionAudited splits the field for the middle of the run;
// the audit must stay clean and the displacement must cost deliveries
// relative to the unfaulted run only through normal routing failures.
func TestFaultPartitionAudited(t *testing.T) {
	cfg := faultBase()
	cfg.Faults = mustPreset(t, "partition")
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("audited partition run failed: %v", err)
	}
	if res.Originated == 0 {
		t.Fatal("partition run originated nothing")
	}
}

// TestFaultEverythingAudited piles all fault classes onto one audited run,
// for each routing protocol.
func TestFaultEverythingAudited(t *testing.T) {
	for _, routing := range []Routing{RoutingDSR, RoutingAODV} {
		routing := routing
		t.Run(routing.String(), func(t *testing.T) {
			t.Parallel()
			cfg := faultBase()
			cfg.Scheme = SchemeRcast
			cfg.Routing = routing
			cfg.BatteryJoules = 400 // battery jitter needs finite batteries
			cfg.Faults = mustPreset(t, "all")
			if _, err := Run(cfg); err != nil {
				t.Fatalf("audited all-faults run failed: %v", err)
			}
		})
	}
}

// TestFaultSeedDeterminism: the same config and seed must yield an
// identical Result across repeated runs — fault schedules, loss chains and
// partitions included.
func TestFaultSeedDeterminism(t *testing.T) {
	cfg := faultBase()
	cfg.Faults = mustPreset(t, "all")
	cfg.BatteryJoules = 400
	ref, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 0 failed audit: %v", err)
	}
	for i := 1; i < 3; i++ {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("run %d failed audit: %v", i, err)
		}
		assertResultsEqual(t, ref, res)
	}
}

// TestFaultWorkerCountInvariance: replications of a faulted config must
// aggregate identically whether run serially or fanned across workers.
func TestFaultWorkerCountInvariance(t *testing.T) {
	cfg := faultBase()
	cfg.Duration = 45 * sim.Second
	cfg.Faults = mustPreset(t, "crash")
	serial, err := RunReplicationsWorkers(cfg, 3, 1)
	if err != nil {
		t.Fatalf("serial replications failed: %v", err)
	}
	parallel, err := RunReplicationsWorkers(cfg, 3, 3)
	if err != nil {
		t.Fatalf("parallel replications failed: %v", err)
	}
	for i := range serial.Results {
		assertResultsEqual(t, serial.Results[i], parallel.Results[i])
	}
	if !reflect.DeepEqual(serial.MeanSortedJoules, parallel.MeanSortedJoules) {
		t.Error("aggregates diverge between worker counts")
	}
}
