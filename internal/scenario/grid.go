package scenario

import (
	"fmt"

	"rcast/internal/core"
	"rcast/internal/fault"
	"rcast/internal/sim"
)

// Grid is a cross-product of sweep axes over a base Config: the parameter
// study shape the paper's evaluation uses (schemes × packet rates × pause
// times × fault plans × gossip fanouts). A Grid expands into GridPoints in
// a fixed deterministic order — scheme outermost, then rate, pause, fault
// preset, gossip fanout — so everything derived from the expansion (cell
// indices, sweep result documents, dispatch order) is stable across
// processes and machines.
//
// Every axis except Schemes is optional: an empty axis keeps the base
// Config's value for that parameter in every cell.
type Grid struct {
	// Schemes is the power-management scheme axis; at least one entry is
	// required.
	Schemes []Scheme
	// Rates is the per-connection packet-rate axis (packets/s). Entries
	// must be positive.
	Rates []float64
	// PausesSec is the random-waypoint pause-time axis in seconds. A
	// negative entry means "static": pause is pinned to the simulation
	// duration, exactly as the paper's static scenarios do.
	PausesSec []float64
	// FaultPresets is the fault-plan axis by preset name (see
	// fault.Preset); "" means no fault layer.
	FaultPresets []string
	// GossipFanouts is the broadcast-gossip fanout axis; 0 disables the
	// gossip extension for that cell.
	GossipFanouts []float64
	// Channels is the propagation-model axis by name (see ChannelNames);
	// "" means the base Config's channel.
	Channels []string
	// Mobilities is the mobility-model axis by name (see MobilityNames);
	// "" means the base Config's mobility.
	Mobilities []string
	// Policies is the overhearing-policy axis by registered name (see
	// core.PolicyNames); "" means the base Config's policy (usually the
	// scheme default).
	Policies []string
	// TxPowersDBm is the transmit-power axis in dB relative to the nominal
	// radio power; 0 is the paper's fixed-range default.
	TxPowersDBm []float64
}

// GridPoint is one cell of an expanded Grid. Optional axes that were
// empty are flagged absent so Apply can keep the base Config's value.
type GridPoint struct {
	Scheme Scheme

	HasRate bool
	Rate    float64

	HasPause bool
	PauseSec float64 // negative = static (pause pinned to duration)

	HasFault    bool
	FaultPreset string

	HasGossip    bool
	GossipFanout float64

	HasChannel bool
	Channel    string

	HasMobility bool
	Mobility    string

	HasPolicy bool
	Policy    string

	HasTxPower bool
	TxPowerDBm float64
}

// Static reports whether the point pins pause to the simulation duration.
func (p GridPoint) Static() bool { return p.HasPause && p.PauseSec < 0 }

// Size returns the number of cells the grid expands into (0 when no
// scheme is set).
func (g Grid) Size() int {
	n := len(g.Schemes)
	for _, axis := range []int{len(g.Rates), len(g.PausesSec), len(g.FaultPresets), len(g.GossipFanouts), len(g.Channels), len(g.Mobilities), len(g.Policies), len(g.TxPowersDBm)} {
		if axis > 0 {
			n *= axis
		}
	}
	return n
}

// validate rejects malformed axes before any expansion work.
func (g Grid) validate() error {
	if len(g.Schemes) == 0 {
		return fmt.Errorf("scenario: grid has no schemes")
	}
	for _, s := range g.Schemes {
		// Membership in the scheme registry, not an enum-span check: a
		// hard-coded span silently desyncs the moment a scheme is added.
		if !s.Known() {
			return fmt.Errorf("scenario: grid has invalid scheme %d", s)
		}
	}
	for _, r := range g.Rates {
		if r <= 0 {
			return fmt.Errorf("scenario: grid rate %v must be positive", r)
		}
	}
	for _, name := range g.FaultPresets {
		if _, err := fault.Preset(name); err != nil {
			return err
		}
	}
	for _, f := range g.GossipFanouts {
		if f < 0 {
			return fmt.Errorf("scenario: grid gossip fanout %v must be >= 0", f)
		}
	}
	for _, ch := range g.Channels {
		if ch != "" && !nameKnown(ch, ChannelNames()) {
			return fmt.Errorf("scenario: grid has unknown channel %q (want one of %v)", ch, ChannelNames())
		}
	}
	for _, m := range g.Mobilities {
		if m != "" && !nameKnown(m, MobilityNames()) {
			return fmt.Errorf("scenario: grid has unknown mobility %q (want one of %v)", m, MobilityNames())
		}
	}
	for _, p := range g.Policies {
		if p != "" && !core.PolicyKnown(p) {
			return fmt.Errorf("scenario: grid has unknown policy %q (want one of %v)", p, core.PolicyNames())
		}
	}
	for _, db := range g.TxPowersDBm {
		if !(db >= -40 && db <= 40) {
			return fmt.Errorf("scenario: grid tx power %v dB outside [-40, 40]", db)
		}
	}
	return nil
}

// Points expands the grid into its cells in the canonical order: scheme
// outermost, then rate, pause, fault preset, gossip fanout, channel,
// mobility, policy, and tx power innermost. The newer axes are innermost
// so a grid that leaves them empty expands to exactly the cells (in the
// same order) it did before the axes existed.
func (g Grid) Points() ([]GridPoint, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	// Optional axes collapse to a single "absent" entry so the nested
	// loops below always run once per axis.
	rates, hasRate := optionalAxis(g.Rates)
	pauses, hasPause := optionalAxis(g.PausesSec)
	faults, hasFault := optionalAxis(g.FaultPresets)
	gossips, hasGossip := optionalAxis(g.GossipFanouts)
	channels, hasChannel := optionalAxis(g.Channels)
	mobilities, hasMobility := optionalAxis(g.Mobilities)
	policies, hasPolicy := optionalAxis(g.Policies)
	txPowers, hasTxPower := optionalAxis(g.TxPowersDBm)

	pts := make([]GridPoint, 0, g.Size())
	for _, sch := range g.Schemes {
		for _, rate := range rates {
			for _, pause := range pauses {
				for _, fp := range faults {
					for _, gf := range gossips {
						for _, ch := range channels {
							for _, mb := range mobilities {
								for _, pol := range policies {
									for _, db := range txPowers {
										pts = append(pts, GridPoint{
											Scheme:       sch,
											HasRate:      hasRate,
											Rate:         rate,
											HasPause:     hasPause,
											PauseSec:     pause,
											HasFault:     hasFault,
											FaultPreset:  fp,
											HasGossip:    hasGossip,
											GossipFanout: gf,
											HasChannel:   hasChannel,
											Channel:      ch,
											HasMobility:  hasMobility,
											Mobility:     mb,
											HasPolicy:    hasPolicy,
											Policy:       pol,
											HasTxPower:   hasTxPower,
											TxPowerDBm:   db,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pts, nil
}

// optionalAxis normalizes an axis: empty becomes one zero-value entry with
// present = false.
func optionalAxis[T any](axis []T) ([]T, bool) {
	if len(axis) == 0 {
		var zero T
		return []T{zero}, false
	}
	return axis, true
}

// Apply resolves the point against a base Config, returning the cell's
// runnable configuration. The base is taken by value and never mutated.
func (p GridPoint) Apply(base Config) (Config, error) {
	cfg := base
	cfg.Scheme = p.Scheme
	if p.HasRate {
		cfg.PacketRate = p.Rate
	}
	if p.HasPause {
		if p.PauseSec < 0 {
			cfg.Pause = cfg.Duration
		} else {
			cfg.Pause = sim.FromSeconds(p.PauseSec)
		}
	}
	if p.HasFault {
		plan, err := fault.Preset(p.FaultPreset)
		if err != nil {
			return cfg, err
		}
		cfg.Faults = plan
	}
	if p.HasGossip {
		cfg.GossipFanout = p.GossipFanout
	}
	if p.HasChannel {
		cfg.Channel = p.Channel
	}
	if p.HasMobility {
		cfg.Mobility = p.Mobility
	}
	if p.HasPolicy {
		cfg.PolicyName = p.Policy
	}
	if p.HasTxPower {
		cfg.TxPowerDBm = p.TxPowerDBm
	}
	return cfg, nil
}
