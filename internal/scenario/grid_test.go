package scenario

import (
	"testing"

	"rcast/internal/sim"
)

func TestGridSizeAndOrder(t *testing.T) {
	g := Grid{
		Schemes:   []Scheme{SchemeAlwaysOn, SchemeRcast},
		Rates:     []float64{0.4, 2.0},
		PausesSec: []float64{600, -1},
	}
	if got := g.Size(); got != 8 {
		t.Fatalf("Size = %d, want 8", got)
	}
	pts, err := g.Points()
	if err != nil {
		t.Fatalf("Points: %v", err)
	}
	if len(pts) != 8 {
		t.Fatalf("len(Points) = %d, want 8", len(pts))
	}
	// Canonical nesting: scheme outermost, then rate, then pause.
	want := []GridPoint{
		{Scheme: SchemeAlwaysOn, HasRate: true, Rate: 0.4, HasPause: true, PauseSec: 600},
		{Scheme: SchemeAlwaysOn, HasRate: true, Rate: 0.4, HasPause: true, PauseSec: -1},
		{Scheme: SchemeAlwaysOn, HasRate: true, Rate: 2.0, HasPause: true, PauseSec: 600},
		{Scheme: SchemeAlwaysOn, HasRate: true, Rate: 2.0, HasPause: true, PauseSec: -1},
		{Scheme: SchemeRcast, HasRate: true, Rate: 0.4, HasPause: true, PauseSec: 600},
		{Scheme: SchemeRcast, HasRate: true, Rate: 0.4, HasPause: true, PauseSec: -1},
		{Scheme: SchemeRcast, HasRate: true, Rate: 2.0, HasPause: true, PauseSec: 600},
		{Scheme: SchemeRcast, HasRate: true, Rate: 2.0, HasPause: true, PauseSec: -1},
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, pts[i], want[i])
		}
	}
}

func TestGridOptionalAxesKeepBase(t *testing.T) {
	g := Grid{Schemes: []Scheme{SchemeODPM}}
	pts, err := g.Points()
	if err != nil {
		t.Fatalf("Points: %v", err)
	}
	if len(pts) != 1 || g.Size() != 1 {
		t.Fatalf("singleton grid expanded to %d points (Size %d)", len(pts), g.Size())
	}
	base := PaperDefaults()
	base.PacketRate = 1.7
	base.Pause = 123 * sim.Second
	base.GossipFanout = 2
	cfg, err := pts[0].Apply(base)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if cfg.Scheme != SchemeODPM {
		t.Fatalf("scheme = %v", cfg.Scheme)
	}
	if cfg.PacketRate != 1.7 || cfg.Pause != 123*sim.Second || cfg.GossipFanout != 2 {
		t.Fatalf("absent axes did not keep base values: %+v", cfg)
	}
}

func TestGridApplyAxes(t *testing.T) {
	base := PaperDefaults()
	base.Duration = 200 * sim.Second

	p := GridPoint{
		Scheme:  SchemeRcast,
		HasRate: true, Rate: 1.2,
		HasPause: true, PauseSec: -1, // static
		HasFault: true, FaultPreset: "crash",
		HasGossip: true, GossipFanout: 3,
	}
	if !p.Static() {
		t.Fatal("negative pause should report Static")
	}
	cfg, err := p.Apply(base)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if cfg.PacketRate != 1.2 {
		t.Fatalf("rate = %v", cfg.PacketRate)
	}
	if cfg.Pause != cfg.Duration {
		t.Fatalf("static pause = %v, want duration %v", cfg.Pause, cfg.Duration)
	}
	if cfg.Faults == nil {
		t.Fatal("fault preset not applied")
	}
	if cfg.GossipFanout != 3 {
		t.Fatalf("gossip fanout = %v", cfg.GossipFanout)
	}

	p.PauseSec = 75
	cfg, err = p.Apply(base)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if cfg.Pause != 75*sim.Second {
		t.Fatalf("pause = %v, want 75s", cfg.Pause)
	}
	// The base must not be mutated by Apply.
	if base.Scheme == SchemeRcast && base.PacketRate == 1.2 {
		t.Fatal("Apply mutated the base config")
	}
}

func TestGridValidation(t *testing.T) {
	cases := map[string]Grid{
		"no schemes":    {},
		"bad scheme":    {Schemes: []Scheme{Scheme(99)}},
		"zero rate":     {Schemes: []Scheme{SchemeRcast}, Rates: []float64{0}},
		"negative rate": {Schemes: []Scheme{SchemeRcast}, Rates: []float64{-0.5}},
		"unknown fault": {Schemes: []Scheme{SchemeRcast}, FaultPresets: []string{"warp"}},
		"bad gossip":    {Schemes: []Scheme{SchemeRcast}, GossipFanouts: []float64{-1}},
	}
	for name, g := range cases {
		if _, err := g.Points(); err == nil {
			t.Errorf("%s: expansion accepted", name)
		}
	}
	// The empty preset name is the "no faults" cell and must validate.
	ok := Grid{Schemes: []Scheme{SchemeRcast}, FaultPresets: []string{"", "crash"}}
	if _, err := ok.Points(); err != nil {
		t.Errorf("empty fault preset rejected: %v", err)
	}
}

// TestGridAcceptsRegisteredScheme is the regression test for the
// registry-desync bug: Grid.validate used to check schemes against a
// hard-coded enum span instead of the scheme registry, so a scheme
// registered outside that span was accepted by Config.Validate but
// rejected by every sweep. With the fix, grid validation and the
// registry cannot disagree by construction.
func TestGridAcceptsRegisteredScheme(t *testing.T) {
	const extra = Scheme(99)
	saved := schemeRegistry
	schemeRegistry = append(append([]Scheme(nil), saved...), extra)
	t.Cleanup(func() { schemeRegistry = saved })

	if !extra.Known() {
		t.Fatal("registered scheme not Known")
	}
	pts, err := Grid{Schemes: []Scheme{extra}}.Points()
	if err != nil {
		t.Fatalf("grid rejected a registered scheme: %v", err)
	}
	if len(pts) != 1 || pts[0].Scheme != extra {
		t.Fatalf("points = %+v", pts)
	}
}

func TestGridPolicyAndTxPowerAxes(t *testing.T) {
	g := Grid{
		Schemes:     []Scheme{SchemeRcast},
		Policies:    []string{"", "battery"},
		TxPowersDBm: []float64{-3, 0},
	}
	if got := g.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
	pts, err := g.Points()
	if err != nil {
		t.Fatalf("Points: %v", err)
	}
	// Policy expands outside tx power, both innermost of all axes.
	want := []GridPoint{
		{Scheme: SchemeRcast, HasPolicy: true, HasTxPower: true, TxPowerDBm: -3},
		{Scheme: SchemeRcast, HasPolicy: true, HasTxPower: true, TxPowerDBm: 0},
		{Scheme: SchemeRcast, HasPolicy: true, Policy: "battery", HasTxPower: true, TxPowerDBm: -3},
		{Scheme: SchemeRcast, HasPolicy: true, Policy: "battery", HasTxPower: true, TxPowerDBm: 0},
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, pts[i], want[i])
		}
	}
	cfg, err := pts[2].Apply(PaperDefaults())
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if cfg.PolicyName != "battery" || cfg.TxPowerDBm != -3 {
		t.Fatalf("Apply produced policy=%q txPower=%v", cfg.PolicyName, cfg.TxPowerDBm)
	}

	for _, bad := range []Grid{
		{Schemes: []Scheme{SchemeRcast}, Policies: []string{"fixed-0.50"}},
		{Schemes: []Scheme{SchemeRcast}, TxPowersDBm: []float64{-80}},
	} {
		if _, err := bad.Points(); err == nil {
			t.Fatalf("grid %+v accepted", bad)
		}
	}
}

func TestGridChannelMobilityAxes(t *testing.T) {
	g := Grid{
		Schemes:    []Scheme{SchemeRcast},
		Channels:   []string{"disk", "fading"},
		Mobilities: []string{"waypoint", "group"},
	}
	if got := g.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
	pts, err := g.Points()
	if err != nil {
		t.Fatalf("Points: %v", err)
	}
	// Channel expands outside mobility, both inside the legacy axes.
	want := []GridPoint{
		{Scheme: SchemeRcast, HasChannel: true, Channel: "disk", HasMobility: true, Mobility: "waypoint"},
		{Scheme: SchemeRcast, HasChannel: true, Channel: "disk", HasMobility: true, Mobility: "group"},
		{Scheme: SchemeRcast, HasChannel: true, Channel: "fading", HasMobility: true, Mobility: "waypoint"},
		{Scheme: SchemeRcast, HasChannel: true, Channel: "fading", HasMobility: true, Mobility: "group"},
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, pts[i], want[i])
		}
	}
	base := PaperDefaults()
	base.ShadowSigmaDB = 6
	cfg, err := pts[3].Apply(base)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if cfg.Channel != "fading" || cfg.Mobility != "group" {
		t.Fatalf("Apply produced channel=%q mobility=%q", cfg.Channel, cfg.Mobility)
	}

	for _, bad := range []Grid{
		{Schemes: []Scheme{SchemeRcast}, Channels: []string{"nakagami"}},
		{Schemes: []Scheme{SchemeRcast}, Mobilities: []string{"levy"}},
	} {
		if _, err := bad.Points(); err == nil {
			t.Fatalf("grid %+v accepted", bad)
		}
	}
}
