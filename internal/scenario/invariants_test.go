package scenario

import (
	"testing"

	"rcast/internal/sim"
)

// invariantConfigs samples the configuration space for the cross-cutting
// invariant checks below.
func invariantConfigs() []Config {
	var out []Config
	for _, scheme := range Schemes() {
		for _, rate := range []float64{0.3, 1.5} {
			cfg := PaperDefaults()
			cfg.Scheme = scheme
			cfg.Nodes = 24
			cfg.FieldW = 750
			cfg.FieldH = 300
			cfg.Connections = 5
			cfg.PacketRate = rate
			cfg.Duration = 45 * sim.Second
			cfg.Pause = 20 * sim.Second
			cfg.Seed = int64(7 + int(scheme)*10 + int(rate*10))
			out = append(out, cfg)
		}
	}
	// One AODV and one battery variant.
	aodvCfg := out[len(out)-1]
	aodvCfg.Routing = RoutingAODV
	out = append(out, aodvCfg)
	batCfg := out[0]
	batCfg.BatteryJoules = 40
	out = append(out, batCfg)
	return out
}

// TestRunInvariants checks physical and accounting invariants that must
// hold for every scheme, routing protocol, and load level:
//
//   - per-node energy lies between the all-sleep floor and all-awake
//     ceiling for the run length;
//   - delivered ≤ originated; PDR in [0, 1];
//   - delay percentiles are ordered and bounded by the run length;
//   - channel accounting: deliveries never exceed transmissions × nodes;
//   - delivered packets took at least one hop on average.
func TestRunInvariants(t *testing.T) {
	for _, cfg := range invariantConfigs() {
		cfg := cfg
		name := cfg.Scheme.String() + "/" + cfg.Routing.String()
		if cfg.BatteryJoules > 0 {
			name += "/battery"
		}
		t.Run(name, func(t *testing.T) {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			T := cfg.Duration.Seconds()
			floor := 0.045*T - 1e-6
			ceil := 1.15*T + 1e-6
			for i, j := range res.PerNodeJoules {
				if cfg.BatteryJoules > 0 {
					if j > cfg.BatteryJoules+1e-6 {
						t.Fatalf("node %d consumed %v J past its battery", i, j)
					}
					continue
				}
				if j < floor || j > ceil {
					t.Fatalf("node %d energy %v J outside [%v, %v]", i, j, floor, ceil)
				}
			}
			if res.Delivered > res.Originated {
				t.Fatalf("delivered %d > originated %d", res.Delivered, res.Originated)
			}
			if res.PDR < 0 || res.PDR > 1 {
				t.Fatalf("PDR = %v", res.PDR)
			}
			if res.DelayP50Sec > res.DelayP95Sec+1e-12 {
				t.Fatalf("delay percentiles out of order: p50=%v p95=%v",
					res.DelayP50Sec, res.DelayP95Sec)
			}
			if res.DelayP95Sec > T {
				t.Fatalf("p95 delay %v exceeds run length", res.DelayP95Sec)
			}
			if res.Delivered > 0 && res.MeanHops < 1 {
				t.Fatalf("MeanHops = %v < 1 with deliveries", res.MeanHops)
			}
			ch := res.Channel
			if ch.Deliveries > ch.Transmissions*uint64(cfg.Nodes) {
				t.Fatalf("channel deliveries %d exceed transmissions %d x nodes",
					ch.Deliveries, ch.Transmissions)
			}
			// Drop + deliver accounting never exceeds originations plus
			// in-flight (buffered) packets; since drops include buffered
			// expiry, delivered+dropped <= originated always holds at end
			// only loosely — verify the strong direction:
			var drops uint64
			for _, v := range res.Drops {
				drops += v
			}
			if res.Delivered+drops > res.Originated {
				t.Fatalf("delivered %d + dropped %d > originated %d",
					res.Delivered, drops, res.Originated)
			}
		})
	}
}

// TestSleepNeverExceedsDuration checks the energy meter decomposition at
// the scenario level: awake + asleep time equals the run length exactly.
func TestSleepNeverExceedsDuration(t *testing.T) {
	cfg := PaperDefaults()
	cfg.Scheme = SchemeRcast
	cfg.Nodes = 20
	cfg.FieldW = 600
	cfg.Connections = 4
	cfg.Duration = 30 * sim.Second
	cfg.Pause = 15 * sim.Second
	w, err := newWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.run()
	for i, n := range w.nodes {
		total := n.meter.AwakeTime() + n.meter.SleepTime()
		if total != cfg.Duration {
			t.Fatalf("node %d awake+sleep = %v, want %v", i, total, cfg.Duration)
		}
	}
}
