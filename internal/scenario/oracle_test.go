package scenario

import (
	"reflect"
	"testing"

	"rcast/internal/core"
	"rcast/internal/sim"
)

// assertResultsEqual demands two runs produced bit-identical metrics.
func assertResultsEqual(t *testing.T, a, b *Result) {
	t.Helper()
	if reflect.DeepEqual(a, b) {
		return
	}
	// Localize the divergence field by field for a readable failure.
	va, vb := reflect.ValueOf(*a), reflect.ValueOf(*b)
	for i := 0; i < va.NumField(); i++ {
		if !reflect.DeepEqual(va.Field(i).Interface(), vb.Field(i).Interface()) {
			t.Errorf("results diverge in %s: %v vs %v",
				va.Type().Field(i).Name, va.Field(i).Interface(), vb.Field(i).Interface())
		}
	}
	if !t.Failed() {
		t.Error("results diverge (unlocalized)")
	}
}

// TestOracleFixedProbOneEqualsUnconditional is the first differential
// oracle from DESIGN.md §8: Rcast's randomized machinery with the
// stay-awake probability pinned to 1 must reproduce the Unconditional
// policy exactly. probRandomized short-circuits at p >= 1 without
// consuming randomness, so both policies keep every listener awake and
// leave every RNG stream in the same state — the two runs must agree on
// every metric. Only MACTotal.Announced may differ: FixedProb advertises
// Rcast's per-class levels and announcement dedup is keyed by
// (destination, level).
func TestOracleFixedProbOneEqualsUnconditional(t *testing.T) {
	base := PaperDefaults()
	base.Scheme = SchemePSM
	base.Nodes = 30
	base.Connections = 6
	base.Duration = 90 * sim.Second
	base.Audit = true

	uncond := base
	uncond.Policy = core.Unconditional{}
	ru, err := Run(uncond)
	if err != nil {
		t.Fatalf("unconditional run failed audit: %v", err)
	}

	fixed := base
	fixed.Policy = core.FixedProb{P: 1}
	rf, err := Run(fixed)
	if err != nil {
		t.Fatalf("fixed-prob run failed audit: %v", err)
	}

	if ru.Delivered == 0 {
		t.Fatal("oracle run delivered nothing; scenario too sparse to be meaningful")
	}
	ru.MACTotal.Announced = 0
	rf.MACTotal.Announced = 0
	assertResultsEqual(t, ru, rf)
}

// TestOracleUnconditionalPSMMatchesAlwaysOnDelivery is the second
// differential oracle: in a static, well-connected network with a drain
// window before the end of the run, PSM with unconditional overhearing
// must deliver exactly what an always-on stack delivers — buffering at
// beacon boundaries may defer packets but must never lose them. Both
// stacks are expected to deliver every originated packet.
func TestOracleUnconditionalPSMMatchesAlwaysOnDelivery(t *testing.T) {
	base := PaperDefaults()
	base.Nodes = 20
	base.FieldW = 600
	base.FieldH = 300
	base.Connections = 5
	base.PacketRate = 1
	base.Duration = 80 * sim.Second
	base.TrafficStop = 60 * sim.Second
	base.Pause = base.Duration // static scenario
	base.MinSpeed, base.MaxSpeed = 0, 0
	base.Audit = true

	on := base
	on.Scheme = SchemeAlwaysOn
	ron, err := Run(on)
	if err != nil {
		t.Fatalf("always-on run failed audit: %v", err)
	}

	psm := base
	psm.Scheme = SchemePSM
	rpsm, err := Run(psm)
	if err != nil {
		t.Fatalf("psm run failed audit: %v", err)
	}

	if ron.Originated == 0 || rpsm.Originated == 0 {
		t.Fatal("oracle runs originated no traffic")
	}
	if ron.Originated != rpsm.Originated {
		t.Errorf("originated diverge: always-on %d, psm %d", ron.Originated, rpsm.Originated)
	}
	if ron.PDR != 1 {
		t.Errorf("always-on PDR = %v (delivered %d/%d), want 1",
			ron.PDR, ron.Delivered, ron.Originated)
	}
	if rpsm.PDR != 1 {
		t.Errorf("psm PDR = %v (delivered %d/%d, drops %v), want 1",
			rpsm.PDR, rpsm.Delivered, rpsm.Originated, rpsm.Drops)
	}
	if ron.Delivered != rpsm.Delivered {
		t.Errorf("delivered diverge: always-on %d, psm %d", ron.Delivered, rpsm.Delivered)
	}
}
