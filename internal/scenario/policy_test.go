package scenario

import (
	"math/rand"
	"reflect"
	"testing"

	"rcast/internal/core"
)

// runPair runs the same scenario under two policy names and returns both
// results for equivalence checks.
func runPair(t *testing.T, cfg Config, a, b string) (*Result, *Result) {
	t.Helper()
	ca, cb := cfg, cfg
	ca.PolicyName, cb.PolicyName = a, b
	ra, err := Run(ca)
	if err != nil {
		t.Fatalf("policy %q: %v", a, err)
	}
	rb, err := Run(cb)
	if err != nil {
		t.Fatalf("policy %q: %v", b, err)
	}
	return ra, rb
}

// TestPolicyPinBatteryAtFullCharge: with unlimited batteries every node
// reports full remaining energy, so the battery policy's scaling factor is
// exactly 1 and its lottery draws — and therefore the whole run — must be
// identical to plain Rcast.
func TestPolicyPinBatteryAtFullCharge(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	cfg.BatteryJoules = 0 // unlimited: RemainingEnergy pinned at 1
	a, b := runPair(t, cfg, "battery", "rcast")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("battery policy at full charge diverged from rcast:\nbattery: %+v\nrcast:   %+v", a, b)
	}
}

// TestPolicyPinMobilityAtZeroChurn: in a static scenario no link ever
// changes, so the mobility policy's damping factor is exactly 1 and the run
// must be identical to plain Rcast.
func TestPolicyPinMobilityAtZeroChurn(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	cfg.Pause = cfg.Duration // static: LinkChangesPerSec pinned at 0
	a, b := runPair(t, cfg, "mobility", "rcast")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("mobility policy at zero churn diverged from rcast:\nmobility: %+v\nrcast:    %+v", a, b)
	}
}

// TestPolicyPinSenderIDAllHeard: sender-id only departs from Rcast when an
// announcement arrives from a sender not heard within the recency window.
// A full-run pin cannot hold — the first data frame from any sender always
// fires the certainty boost — so the pin is at the decision level: with the
// sender recently heard, sender-id must advertise and draw exactly like
// Rcast for every class, level and neighborhood size; with the sender
// unheard it must overhear with certainty without touching the RNG.
func TestPolicyPinSenderIDAllHeard(t *testing.T) {
	for _, class := range []core.Class{core.ClassData, core.ClassRREQ, core.ClassRREP, core.ClassRERR} {
		if got, want := (core.SenderID{}).AdvertiseLevel(class), (core.Rcast{}).AdvertiseLevel(class); got != want {
			t.Fatalf("class %v: sender-id advertises %v, rcast %v", class, got, want)
		}
	}
	ra := rand.New(rand.NewSource(7))
	rb := rand.New(rand.NewSource(7))
	heard := core.ListenContext{SenderRecentlyHeard: true}
	for i := 0; i < 1000; i++ {
		heard.Neighbors = 1 + i%9
		lvl := core.LevelRandomized
		if i%5 == 0 {
			lvl = core.LevelUnconditional
		}
		a := core.SenderID{}.ShouldOverhear(ra, lvl, heard)
		b := core.Rcast{}.ShouldOverhear(rb, lvl, heard)
		if a != b {
			t.Fatalf("draw %d: sender-id %v, rcast %v", i, a, b)
		}
	}
	if ra.Int63() != rb.Int63() {
		t.Fatal("sender-id consumed a different number of RNG draws than rcast")
	}
	// Unheard sender: certainty, no draw.
	unheard := core.ListenContext{Neighbors: 8}
	rng := rand.New(rand.NewSource(7))
	state := rand.New(rand.NewSource(7))
	if !(core.SenderID{}).ShouldOverhear(rng, core.LevelRandomized, unheard) {
		t.Fatal("sender-id skipped an unheard sender")
	}
	if rng.Int63() != state.Int63() {
		t.Fatal("certainty boost consumed an RNG draw")
	}
}
