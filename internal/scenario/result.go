package scenario

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rcast/internal/audit"
	"rcast/internal/core"
	"rcast/internal/mac"
	"rcast/internal/phy"
	"rcast/internal/routing/aodv"
	"rcast/internal/routing/dsr"
	"rcast/internal/sim"
	"rcast/internal/stats"
)

// Result is everything one run measured.
type Result struct {
	Scheme   Scheme
	Nodes    int
	Duration sim.Time
	Seed     int64

	// Energy (paper Figs. 5–7).
	PerNodeJoules  []float64
	TotalJoules    float64
	MeanJoules     float64
	EnergyVariance float64

	// Delivery (Fig. 7).
	Originated   uint64
	Delivered    uint64
	PDR          float64
	AvgDelaySec  float64 // Fig. 8
	DelayP50Sec  float64
	DelayP95Sec  float64
	MeanHops     float64
	EnergyPerBit float64 // J per delivered payload bit

	// Routing overhead (Fig. 8).
	ControlTx          uint64
	ControlByClass     map[core.Class]uint64
	NormalizedOverhead float64

	// Load balance (Fig. 9).
	RoleNumbers []float64
	Forwards    []uint64

	// Network lifetime (finite batteries only; see Config.BatteryJoules).
	// DeathTimes[i] is when node i's battery depleted (0 = survived);
	// FirstDeath is the earliest (0 = none); DeadNodes counts casualties.
	DeathTimes []sim.Time
	FirstDeath sim.Time
	DeadNodes  int

	// Fault injection (zero in unfaulted runs, so no-fault results stay
	// byte-identical). CrashFlushedPackets counts data packets flushed from
	// crashing nodes' buffers (reported as "node-crash" drops).
	NodeCrashes         int
	NodeRecoveries      int
	CrashFlushedPackets uint64

	// Diagnostics.
	Drops    map[string]uint64
	Channel  phy.Stats
	MACTotal mac.Stats
	// DSRTotal / AODVTotal aggregate the per-node routing counters for
	// whichever protocol ran (the other is zero).
	DSRTotal  dsr.Stats
	AODVTotal aodv.Stats

	// Audit results (Config.Audit runs only). AuditViolations holds the
	// recorded invariant breaches (capped; AuditViolationCount is the true
	// total); AuditDupTerminals counts the benign in-flight-duplication
	// diagnostic (see audit.Auditor.DupTerminals).
	AuditViolations     []audit.Violation
	AuditViolationCount int
	AuditDupTerminals   uint64
}

// ErrCanceled is the distinct terminal state of a run stopped mid-flight
// by its context — test with errors.Is. The returned error also wraps the
// context's cause (context.Canceled or context.DeadlineExceeded), so
// callers can tell a user cancel from an expired deadline.
var ErrCanceled = errors.New("scenario: run canceled")

// stopCheckEvery is how many simulation events execute between context
// polls. At the simulator's event rates this bounds the cancellation
// latency well under a wall-clock millisecond while keeping the poll cost
// unmeasurable; an uncancelled context leaves the run byte-identical.
const stopCheckEvery = 4096

// Run executes one simulation described by cfg and returns its metrics.
// With cfg.Audit set, any invariant violation makes Run return an error
// alongside the (still fully populated) result.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: the scheduler polls
// ctx every stopCheckEvery events and a cancelled (or deadline-expired)
// context abandons the run promptly, returning an error wrapping both
// ErrCanceled and the context's cause. A context that never cancels
// changes nothing about the run.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		w.sched.SetStopCheck(stopCheckEvery, func() bool { return ctx.Err() != nil })
	}
	w.run()
	if w.sched.Stopped() {
		return nil, fmt.Errorf("scenario: run stopped at t=%.1fs (%d events): %w",
			w.sched.Now().Seconds(), w.sched.Executed(),
			errors.Join(ErrCanceled, context.Cause(ctx)))
	}
	res := w.result()
	if w.aud != nil && w.aud.Count() > 0 {
		return res, fmt.Errorf("scenario: audit found %d invariant violation(s); first: %s",
			w.aud.Count(), w.aud.Violations()[0])
	}
	return res, nil
}

// result assembles the Result after the run completes.
func (w *world) result() *Result {
	perNode := make([]float64, len(w.nodes))
	var (
		macTotal  mac.Stats
		dsrTotal  dsr.Stats
		aodvTotal aodv.Stats
	)
	for i, n := range w.nodes {
		perNode[i] = n.meter.Joules()
		if n.router != nil {
			rs := n.router.Stats()
			dsrTotal.RREQSent += rs.RREQSent
			dsrTotal.RREPSent += rs.RREPSent
			dsrTotal.RERRSent += rs.RERRSent
			dsrTotal.DataSent += rs.DataSent
			dsrTotal.Delivered += rs.Delivered
			dsrTotal.Dropped += rs.Dropped
			dsrTotal.Salvages += rs.Salvages
			dsrTotal.CacheReplies += rs.CacheReplies
			dsrTotal.LinkFailures += rs.LinkFailures
			dsrTotal.GossipDropped += rs.GossipDropped
		}
		if n.aodvRouter != nil {
			rs := n.aodvRouter.Stats()
			aodvTotal.RREQSent += rs.RREQSent
			aodvTotal.RREPSent += rs.RREPSent
			aodvTotal.RERRSent += rs.RERRSent
			aodvTotal.HelloSent += rs.HelloSent
			aodvTotal.DataSent += rs.DataSent
			aodvTotal.Delivered += rs.Delivered
			aodvTotal.Dropped += rs.Dropped
			aodvTotal.LinkFailures += rs.LinkFailures
			aodvTotal.Expirations += rs.Expirations
		}
		s := n.link.Stats()
		macTotal.DataTx += s.DataTx
		macTotal.RtsTx += s.RtsTx
		macTotal.CtsTx += s.CtsTx
		macTotal.AckTx += s.AckTx
		macTotal.LinkSuccess += s.LinkSuccess
		macTotal.LinkFailures += s.LinkFailures
		macTotal.BroadcastTx += s.BroadcastTx
		macTotal.Delivered += s.Delivered
		macTotal.Overheard += s.Overheard
		macTotal.Announced += s.Announced
		macTotal.SleptPhases += s.SleptPhases
		macTotal.AwakePhases += s.AwakePhases
	}
	if w.aud != nil {
		// Teardown audit: every meter must have been driven to Duration
		// (run() does that), and the packet census must balance.
		w.aud.CheckMeters(w.cfg.Duration, true)
		w.aud.FinalizePackets(w.cfg.Duration, w.bufferedKeys(), w.col,
			dsrTotal.Delivered+aodvTotal.Delivered, dsrTotal.Dropped+aodvTotal.Dropped,
			map[core.Class]uint64{
				core.ClassRREQ: dsrTotal.RREQSent + aodvTotal.RREQSent,
				// AODV hellos go on the air as unsolicited RREPs.
				core.ClassRREP: dsrTotal.RREPSent + aodvTotal.RREPSent + aodvTotal.HelloSent,
				core.ClassRERR: dsrTotal.RERRSent + aodvTotal.RERRSent,
			})
	}
	total := stats.Sum(perNode)
	ctl, byClass := w.col.ControlTransmissions()
	deaths := make([]sim.Time, len(w.deaths))
	copy(deaths, w.deaths)
	var firstDeath sim.Time
	dead := 0
	for _, d := range deaths {
		if d == 0 {
			continue
		}
		dead++
		if firstDeath == 0 || d < firstDeath {
			firstDeath = d
		}
	}
	res := &Result{
		Scheme:              w.cfg.Scheme,
		Nodes:               w.cfg.Nodes,
		Duration:            w.cfg.Duration,
		Seed:                w.cfg.Seed,
		PerNodeJoules:       perNode,
		TotalJoules:         total,
		MeanJoules:          stats.Mean(perNode),
		EnergyVariance:      stats.Variance(perNode),
		Originated:          w.col.Originated(),
		Delivered:           w.col.Delivered(),
		PDR:                 w.col.PDR(),
		AvgDelaySec:         w.col.AvgDelaySeconds(),
		DelayP50Sec:         w.col.DelayPercentile(50),
		DelayP95Sec:         w.col.DelayPercentile(95),
		MeanHops:            w.col.MeanHops(),
		EnergyPerBit:        w.col.EnergyPerBit(total),
		ControlTx:           ctl,
		ControlByClass:      byClass,
		NormalizedOverhead:  w.col.NormalizedOverhead(),
		RoleNumbers:         w.col.RoleNumbers(),
		Forwards:            w.col.Forwards(),
		DeathTimes:          deaths,
		FirstDeath:          firstDeath,
		DeadNodes:           dead,
		NodeCrashes:         w.crashEvents,
		NodeRecoveries:      w.recoverEvents,
		CrashFlushedPackets: w.crashFlushed,
		Drops:               w.col.Drops(),
		Channel:             w.ch.Stats(),
		MACTotal:            macTotal,
		DSRTotal:            dsrTotal,
		AODVTotal:           aodvTotal,
	}
	if w.aud != nil {
		res.AuditViolations = w.aud.Violations()
		res.AuditViolationCount = w.aud.Count()
		res.AuditDupTerminals = w.aud.DupTerminals()
	}
	return res
}

// Aggregate summarizes replications of the same configuration under
// different seeds.
type Aggregate struct {
	Results []*Result

	PDR                stats.Replications
	TotalJoules        stats.Replications
	EnergyVariance     stats.Replications
	AvgDelaySec        stats.Replications
	EnergyPerBit       stats.Replications
	NormalizedOverhead stats.Replications

	// MeanSortedJoules is the element-wise mean of the ascending-sorted
	// per-node energy curves — the Fig. 5 presentation averaged over
	// replications.
	MeanSortedJoules []float64
}

// AggregateResults folds already-computed replication results, in
// replication order, into an Aggregate. It is the merge half of
// RunReplications, shared with the parallel experiment runner so that
// serial and parallel execution aggregate bit-identically.
func AggregateResults(results []*Result) *Aggregate {
	agg := &Aggregate{}
	var sortedSum []float64
	for _, res := range results {
		agg.Results = append(agg.Results, res)
		agg.PDR.Add(res.PDR)
		agg.TotalJoules.Add(res.TotalJoules)
		agg.EnergyVariance.Add(res.EnergyVariance)
		agg.AvgDelaySec.Add(res.AvgDelaySec)
		agg.EnergyPerBit.Add(res.EnergyPerBit)
		agg.NormalizedOverhead.Add(res.NormalizedOverhead)

		sorted := stats.SortedAscending(res.PerNodeJoules)
		if sortedSum == nil {
			sortedSum = make([]float64, len(sorted))
		}
		for j, v := range sorted {
			sortedSum[j] += v
		}
	}
	agg.MeanSortedJoules = make([]float64, len(sortedSum))
	for j, v := range sortedSum {
		agg.MeanSortedJoules[j] = v / float64(len(results))
	}
	return agg
}

// RunReplications runs cfg reps times with per-replication seeds derived
// by sim.ReplicationSeed and aggregates the headline metrics.
func RunReplications(cfg Config, reps int) (*Aggregate, error) {
	return RunReplicationsWorkers(cfg, reps, 1)
}

// RunReplicationsWorkers is RunReplications with the replications fanned
// across at most workers goroutines; see RunReplicationsContext.
func RunReplicationsWorkers(cfg Config, reps, workers int) (*Aggregate, error) {
	return RunReplicationsContext(context.Background(), cfg, reps, workers)
}

// RunReplicationsContext fans the replications across at most workers
// goroutines under a cancellation context. Each replication derives its own
// seed (sim.ReplicationSeed(cfg.Seed, i)) and builds a private world, so runs
// share no RNG or scheduler state; results merge in replication order,
// making the aggregate identical for every worker count. workers <= 0
// selects runtime.GOMAXPROCS(0). A non-nil cfg.Trace forces workers = 1:
// replications would otherwise emit concurrently into one sink. Cancelling
// ctx stops in-flight replications promptly (see RunContext) and the first
// error wins.
func RunReplicationsContext(ctx context.Context, cfg Config, reps, workers int) (*Aggregate, error) {
	if reps < 1 {
		reps = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Trace != nil {
		workers = 1
	}
	if workers > reps {
		workers = reps
	}
	results := make([]*Result, reps)
	runRep := func(i int) error {
		c := cfg
		c.Seed = sim.ReplicationSeed(cfg.Seed, i)
		res, err := RunContext(ctx, c)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}
	if workers == 1 {
		for i := range results {
			if err := runRep(i); err != nil {
				return nil, err
			}
		}
		return AggregateResults(results), nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= reps {
					return
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				if err := runRep(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return AggregateResults(results), nil
}
