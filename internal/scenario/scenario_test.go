package scenario

import (
	"math"
	"testing"

	"rcast/internal/core"
	"rcast/internal/sim"
	"rcast/internal/trace"
)

// quickConfig returns a small scenario that runs in well under a second.
func quickConfig(s Scheme) Config {
	cfg := PaperDefaults()
	cfg.Scheme = s
	cfg.Nodes = 30
	cfg.FieldW = 900
	cfg.FieldH = 300
	cfg.Connections = 6
	cfg.PacketRate = 0.4
	cfg.Duration = 60 * sim.Second
	cfg.Pause = 30 * sim.Second
	return cfg
}

func TestRunAllSchemesDeliverTraffic(t *testing.T) {
	for _, s := range Schemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			res, err := Run(quickConfig(s))
			if err != nil {
				t.Fatal(err)
			}
			if res.Originated == 0 {
				t.Fatal("no traffic originated")
			}
			if res.PDR < 0.5 {
				t.Fatalf("PDR = %.3f, implausibly low (drops: %v)", res.PDR, res.Drops)
			}
			if res.TotalJoules <= 0 {
				t.Fatal("no energy consumed")
			}
			if len(res.PerNodeJoules) != 30 {
				t.Fatalf("PerNodeJoules has %d entries", len(res.PerNodeJoules))
			}
		})
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.TotalJoules != b.TotalJoules ||
		a.ControlTx != b.ControlTx || a.AvgDelaySec != b.AvgDelaySec {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	for i := range a.PerNodeJoules {
		if a.PerNodeJoules[i] != b.PerNodeJoules[i] {
			t.Fatalf("per-node energy diverged at node %d", i)
		}
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	a, _ := Run(cfg)
	cfg.Seed = 99
	b, _ := Run(cfg)
	if a.TotalJoules == b.TotalJoules && a.Delivered == b.Delivered {
		t.Fatal("different seeds produced identical results")
	}
}

func TestAlwaysOnConsumesExactlyAwakePower(t *testing.T) {
	cfg := quickConfig(SchemeAlwaysOn)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §4.3: every 802.11 node consumes awakeW × duration.
	want := 1.15 * cfg.Duration.Seconds()
	for i, j := range res.PerNodeJoules {
		if diff := j - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("node %d consumed %v J, want %v", i, j, want)
		}
	}
	if res.EnergyVariance != 0 {
		t.Fatalf("802.11 energy variance = %v, want 0", res.EnergyVariance)
	}
}

func TestEnergyOrderingMatchesPaper(t *testing.T) {
	// The headline result at small scale: Rcast consumes less total energy
	// than unmodified PSM and than always-on 802.11.
	joules := make(map[Scheme]float64)
	for _, s := range []Scheme{SchemeAlwaysOn, SchemePSM, SchemeRcast} {
		res, err := Run(quickConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		joules[s] = res.TotalJoules
	}
	if !(joules[SchemeRcast] < joules[SchemePSM]) {
		t.Fatalf("Rcast (%.0f J) not below PSM (%.0f J)", joules[SchemeRcast], joules[SchemePSM])
	}
	if !(joules[SchemePSM] < joules[SchemeAlwaysOn]) {
		t.Fatalf("PSM (%.0f J) not below 802.11 (%.0f J)", joules[SchemePSM], joules[SchemeAlwaysOn])
	}
}

func TestPSMFamilyHasBeaconDelay(t *testing.T) {
	fast, err := Run(quickConfig(SchemeAlwaysOn))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(quickConfig(SchemeRcast))
	if err != nil {
		t.Fatal(err)
	}
	if slow.AvgDelaySec <= fast.AvgDelaySec {
		t.Fatalf("PSM delay %.3fs not above 802.11 delay %.3fs",
			slow.AvgDelaySec, fast.AvgDelaySec)
	}
	// Multi-hop PSM delay is at least a sizeable fraction of one beacon.
	if slow.AvgDelaySec < 0.05 {
		t.Fatalf("Rcast delay %.3fs implausibly small", slow.AvgDelaySec)
	}
}

func TestPolicyOverride(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	cfg.Policy = core.Unconditional{}
	uncond, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(quickConfig(SchemeRcast))
	if err != nil {
		t.Fatal(err)
	}
	if uncond.TotalJoules <= base.TotalJoules {
		t.Fatalf("unconditional override (%.0f J) should cost more than randomized (%.0f J)",
			uncond.TotalJoules, base.TotalJoules)
	}
}

func TestGossipExtensionStillDelivers(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	cfg.GossipFanout = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PDR < 0.5 {
		t.Fatalf("gossip PDR = %.3f", res.PDR)
	}
}

func TestStaticScenarioUsesStaticMobility(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	cfg.Pause = cfg.Duration // the paper's static setting
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Static networks see far fewer link failures than mobile ones.
	if res.Drops["link-failure"] > res.Originated/10 {
		t.Fatalf("static run had %d link-failure drops of %d packets",
			res.Drops["link-failure"], res.Originated)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "bad scheme", mutate: func(c *Config) { c.Scheme = 0 }},
		{name: "one node", mutate: func(c *Config) { c.Nodes = 1 }},
		{name: "no field", mutate: func(c *Config) { c.FieldW = 0 }},
		{name: "no range", mutate: func(c *Config) { c.RangeM = 0 }},
		{name: "no connections", mutate: func(c *Config) { c.Connections = 0 }},
		{name: "no rate", mutate: func(c *Config) { c.PacketRate = 0 }},
		{name: "no size", mutate: func(c *Config) { c.PacketBytes = 0 }},
		{name: "no duration", mutate: func(c *Config) { c.Duration = 0 }},
		{name: "speed bounds", mutate: func(c *Config) { c.MinSpeed = 30 }},
		{name: "traffic after end", mutate: func(c *Config) { c.TrafficStart = c.Duration }},
		{name: "unknown policy", mutate: func(c *Config) { c.PolicyName = "fixed-0.50" }},
		{name: "policy and name", mutate: func(c *Config) { c.Policy = core.Rcast{}; c.PolicyName = "rcast" }},
		// A policy on a scheme with no PSM sleep cycle would be silently
		// ignored; that misconfiguration must be loud.
		{name: "policy on 802.11", mutate: func(c *Config) { c.Scheme = SchemeAlwaysOn; c.PolicyName = "rcast" }},
		{name: "policy obj on 802.11", mutate: func(c *Config) { c.Scheme = SchemeAlwaysOn; c.Policy = core.Rcast{} }},
		{name: "tx power too low", mutate: func(c *Config) { c.TxPowerDBm = -60 }},
		{name: "tx power NaN", mutate: func(c *Config) { c.TxPowerDBm = math.NaN() }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := PaperDefaults()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate accepted a broken config")
			}
			if _, err := Run(cfg); err == nil {
				t.Fatal("Run accepted a broken config")
			}
		})
	}
}

func TestSchemeStringsRoundTrip(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Fatal("ParseScheme accepted junk")
	}
	if Scheme(42).String() != "Scheme(42)" {
		t.Fatal("unknown scheme String broken")
	}
}

func TestRunReplications(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	cfg.Nodes = 20
	cfg.Duration = 30 * sim.Second
	agg, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Results) != 3 {
		t.Fatalf("got %d results", len(agg.Results))
	}
	if agg.PDR.N() != 3 || agg.TotalJoules.N() != 3 {
		t.Fatal("replication accumulators incomplete")
	}
	if len(agg.MeanSortedJoules) != 20 {
		t.Fatalf("MeanSortedJoules has %d entries", len(agg.MeanSortedJoules))
	}
	for i := 1; i < len(agg.MeanSortedJoules); i++ {
		if agg.MeanSortedJoules[i] < agg.MeanSortedJoules[i-1] {
			t.Fatal("MeanSortedJoules not ascending")
		}
	}
	// Seeds must differ across replications.
	if agg.Results[0].Seed == agg.Results[1].Seed {
		t.Fatal("replications reused the same seed")
	}
	// reps < 1 clamps to 1.
	one, err := RunReplications(cfg, 0)
	if err != nil || len(one.Results) != 1 {
		t.Fatalf("reps=0: %v, %d results", err, len(one.Results))
	}
}

func TestODPMFastPathReducesDelay(t *testing.T) {
	odpmRes, err := Run(quickConfig(SchemeODPM))
	if err != nil {
		t.Fatal(err)
	}
	rcastRes, err := Run(quickConfig(SchemeRcast))
	if err != nil {
		t.Fatal(err)
	}
	if odpmRes.AvgDelaySec >= rcastRes.AvgDelaySec {
		t.Fatalf("ODPM delay %.3fs not below Rcast %.3fs (paper Fig. 8)",
			odpmRes.AvgDelaySec, rcastRes.AvgDelaySec)
	}
}

func TestAODVRoutingDeliversTraffic(t *testing.T) {
	for _, s := range []Scheme{SchemeAlwaysOn, SchemeRcast} {
		cfg := quickConfig(s)
		cfg.Routing = RoutingAODV
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.PDR < 0.5 {
			t.Fatalf("%v/AODV PDR = %.3f (drops %v)", s, res.PDR, res.Drops)
		}
		if res.AODVTotal.RREQSent == 0 {
			t.Fatal("AODV sent no RREQs")
		}
		if res.DSRTotal.RREQSent != 0 {
			t.Fatal("DSR counters non-zero in an AODV run")
		}
	}
}

func TestAODVHelloTrafficCostsEnergyUnderPSM(t *testing.T) {
	base := quickConfig(SchemeRcast)
	base.Routing = RoutingAODV
	base.AODV.HelloInterval = 0
	quietRun, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	noisy := quickConfig(SchemeRcast)
	noisy.Routing = RoutingAODV
	noisy.AODV.HelloInterval = sim.Second
	noisyRun, err := Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if noisyRun.AODVTotal.HelloSent == 0 {
		t.Fatal("hello-enabled run sent no hellos")
	}
	// The paper's §1 point: periodic broadcasts keep PSM neighborhoods
	// awake, so hellos must cost energy.
	if noisyRun.TotalJoules <= quietRun.TotalJoules {
		t.Fatalf("hellos cost nothing: %.0f J vs %.0f J",
			noisyRun.TotalJoules, quietRun.TotalJoules)
	}
}

func TestBatteryDepletionKillsNodes(t *testing.T) {
	cfg := quickConfig(SchemeAlwaysOn)
	// Always-awake nodes burn 1.15 W; a 34.5 J battery dies at t=30s.
	cfg.BatteryJoules = 1.15 * 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadNodes != cfg.Nodes {
		t.Fatalf("DeadNodes = %d, want all %d", res.DeadNodes, cfg.Nodes)
	}
	if res.FirstDeath < 29*sim.Second || res.FirstDeath > 32*sim.Second {
		t.Fatalf("FirstDeath = %v, want ~30s", res.FirstDeath)
	}
	// Dead nodes stop consuming: per-node energy is capped at the battery.
	for i, j := range res.PerNodeJoules {
		if j > cfg.BatteryJoules+1e-6 {
			t.Fatalf("node %d consumed %v J past its battery", i, j)
		}
	}
	// With every node dead by 30s of 60s, traffic must suffer.
	if res.PDR > 0.9 {
		t.Fatalf("PDR = %.3f despite network death", res.PDR)
	}
}

func TestPSMSchemeOutlivesAlwaysOnOnSameBattery(t *testing.T) {
	battery := 1.15 * 30 // kills an always-awake node at 30s of 60s
	ao := quickConfig(SchemeAlwaysOn)
	ao.BatteryJoules = battery
	aoRes, err := Run(ao)
	if err != nil {
		t.Fatal(err)
	}
	rc := quickConfig(SchemeRcast)
	rc.BatteryJoules = battery
	rcRes, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if rcRes.DeadNodes >= aoRes.DeadNodes {
		t.Fatalf("Rcast lost %d nodes, 802.11 lost %d — PSM must extend lifetime",
			rcRes.DeadNodes, aoRes.DeadNodes)
	}
}

func TestTraceEventsFlow(t *testing.T) {
	counter := trace.NewCounter()
	cfg := quickConfig(SchemeRcast)
	cfg.Trace = counter
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if counter.Count(trace.KindOriginate) != res.Originated {
		t.Fatalf("originate events = %d, originated = %d",
			counter.Count(trace.KindOriginate), res.Originated)
	}
	if counter.Count(trace.KindDeliver) != res.Delivered {
		t.Fatalf("deliver events = %d, delivered = %d",
			counter.Count(trace.KindDeliver), res.Delivered)
	}
	if counter.Count(trace.KindControl) != res.ControlTx {
		t.Fatalf("control events = %d, control tx = %d",
			counter.Count(trace.KindControl), res.ControlTx)
	}
	if counter.Count(trace.KindCache) == 0 {
		t.Fatal("no cache-insert events traced")
	}
}

func TestTraceDeathEvents(t *testing.T) {
	counter := trace.NewCounter()
	cfg := quickConfig(SchemeAlwaysOn)
	cfg.BatteryJoules = 1.15 * 30
	cfg.Trace = counter
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if counter.Count(trace.KindDeath) != uint64(res.DeadNodes) {
		t.Fatalf("death events = %d, dead nodes = %d",
			counter.Count(trace.KindDeath), res.DeadNodes)
	}
}

func TestRoleNumbersPopulated(t *testing.T) {
	res, err := Run(quickConfig(SchemeRcast))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, r := range res.RoleNumbers {
		total += r
	}
	if total == 0 {
		t.Fatal("no role numbers accumulated")
	}
}
