package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rcast/internal/sim"
	"rcast/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// TestTraceOnIsObservationOnly is the tracing metamorphic oracle: a run
// with a trace sink attached must produce the same Result, field for
// field, as the same config with tracing disabled. Tracing observes the
// simulation; it must never perturb it.
func TestTraceOnIsObservationOnly(t *testing.T) {
	cfg := quickConfig(SchemeRcast)
	off, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec := trace.NewRecorder()
	cfg.Trace = rec
	on, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, off, on)
	if len(rec.Events()) == 0 {
		t.Fatal("trace sink attached but no events recorded")
	}
}

// TestTraceLifecycleKinds checks that the full event vocabulary the
// tracing subsystem promises — routing lifecycle, MAC ATIM/overhearing
// decisions, sleep-wake transitions and PHY losses — actually shows up
// in a PSM-family run, with monotonically increasing sequence numbers
// and timestamps.
func TestTraceLifecycleKinds(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := quickConfig(SchemeRcast)
	cfg.Trace = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()

	counts := map[trace.Kind]int{}
	for _, e := range evs {
		counts[e.Kind]++
	}
	for _, k := range []trace.Kind{
		trace.KindOriginate, trace.KindDeliver, trace.KindForward,
		trace.KindEnqueue, trace.KindAtim, trace.KindLottery,
		trace.KindWake, trace.KindSleep, trace.KindControl, trace.KindCache,
	} {
		if counts[k] == 0 {
			t.Errorf("no %q events in a Rcast run", k)
		}
	}

	var lastSeq uint64
	var lastAt sim.Time
	for i, e := range evs {
		if e.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d not increasing (prev %d)", i, e.Seq, lastSeq)
		}
		if e.At < lastAt {
			t.Fatalf("event %d: time went backwards: %v after %v", i, e.At, lastAt)
		}
		lastSeq, lastAt = e.Seq, e.At
	}
}

// goldenTraceConfig is a 3-node static chain small enough that its whole
// trace fits in testdata and stable enough to pin byte for byte.
func goldenTraceConfig() Config {
	cfg := PaperDefaults()
	cfg.Scheme = SchemeRcast
	cfg.Nodes = 3
	cfg.FieldW = 500
	cfg.FieldH = 100
	cfg.Connections = 1
	cfg.PacketRate = 0.5
	cfg.Duration = 10 * sim.Second
	cfg.Pause = cfg.Duration // static
	cfg.TrafficStart = 2 * sim.Second
	cfg.Seed = 7
	return cfg
}

// TestTraceGoldenThreeNode pins the NDJSON trace of a tiny deterministic
// scenario byte for byte. This is the schema's regression anchor: any
// change to event ordering, field names, or formatting shows up as a
// diff against testdata/trace_3node.jsonl. Regenerate deliberately with
//
//	go test ./internal/scenario -run TestTraceGoldenThreeNode -update
//
// and mention the schema change in the changelog.
func TestTraceGoldenThreeNode(t *testing.T) {
	var buf bytes.Buffer
	cfg := goldenTraceConfig()
	cfg.Trace = trace.NewWriter(&buf)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("golden scenario traced nothing")
	}

	golden := filepath.Join("testdata", "trace_3node.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		n := len(gotLines)
		if len(wantLines) < n {
			n = len(wantLines)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("trace diverges from golden at line %d:\n got  %s\n want %s",
					i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("trace length differs from golden: got %d lines, want %d",
			len(gotLines), len(wantLines))
	}

	// The stream must round-trip through the reader.
	evs, err := trace.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("golden trace does not parse: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("golden trace parsed to zero events")
	}
}
