package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"rcast/internal/audit"
	"rcast/internal/core"
	"rcast/internal/energy"
	"rcast/internal/fault"
	"rcast/internal/geom"
	"rcast/internal/mac"
	"rcast/internal/metrics"
	"rcast/internal/mobility"
	"rcast/internal/odpm"
	"rcast/internal/phy"
	"rcast/internal/propagation"
	"rcast/internal/routing/aodv"
	"rcast/internal/routing/dsr"
	"rcast/internal/sim"
	"rcast/internal/trace"
	"rcast/internal/traffic"
)

// node is one assembled protocol stack. Exactly one of router/aodvRouter
// is non-nil, per Config.Routing.
type node struct {
	id                 phy.NodeID
	radio              *phy.Radio
	meter              *energy.Meter
	router             *dsr.Router
	aodvRouter         *aodv.Router
	link               mac.Mac
	psm                *mac.PSM      // nil for AlwaysOn
	pm                 *odpm.Manager // nil unless ODPM
	promiscuousRefresh bool
}

// sendData originates an application packet via whichever routing protocol
// the node runs.
func (n *node) sendData(dst phy.NodeID, flowID uint64, payloadBytes int) {
	if n.router != nil {
		n.router.SendData(dst, flowID, payloadBytes)
		return
	}
	n.aodvRouter.SendData(dst, flowID, payloadBytes)
}

// world is a fully wired simulation.
type world struct {
	cfg    Config
	sched  *sim.Scheduler
	ch     *phy.Channel
	coord  *mac.Coordinator // nil for AlwaysOn
	nodes  []*node
	col    *metrics.Collector
	conns  []traffic.Connection
	deaths []sim.Time     // per node; 0 = survived the run
	aud    *audit.Auditor // nil unless Config.Audit

	// Fault injection (inert unless Config.Faults enables something).
	inj           *fault.Injector
	down          []bool // per node; true while crash-powered-down
	crashEvents   int
	recoverEvents int
	crashFlushed  uint64 // data packets flushed from crashing nodes

	traceSeq     uint64            // per-run trace sequence counter (see emit)
	nodeNames    []string          // interned NodeID strings, built only when tracing
	traceDetails map[uint64]string // memoized detail strings (see detailKey)
}

// pktKey builds the auditor's end-to-end packet identity.
func pktKey(src phy.NodeID, flow, seq uint64) audit.PacketKey {
	return audit.PacketKey{Src: src, Flow: flow, Seq: seq}
}

// killer is implemented by every MAC flavour (battery depletion).
type killer interface {
	Kill()
}

// powerCycler is implemented by every MAC flavour (fault-injected crash and
// recovery). PowerDown returns the flushed transmit queue.
type powerCycler interface {
	PowerDown() []mac.Packet
	PowerUp()
}

// macUpcalls adapts MAC deliveries to the routing layer.
type macUpcalls struct {
	n *node
}

var _ mac.Upcalls = macUpcalls{}

func (u macUpcalls) OnReceive(from phy.NodeID, p mac.Packet) {
	if u.n.router != nil {
		if msg, ok := p.Payload.(dsr.Message); ok {
			u.n.router.Receive(from, msg)
		}
		return
	}
	if msg, ok := p.Payload.(aodv.Message); ok {
		u.n.aodvRouter.Receive(from, msg)
	}
}

func (u macUpcalls) OnOverhear(from phy.NodeID, p mac.Packet) {
	// ODPM: a node in active mode runs promiscuous 802.11, so an overheard
	// data packet counts as "receiving a data packet" and refreshes the 2 s
	// keep-alive — this is what keeps whole route neighbourhoods awake
	// under ODPM at high traffic rates (paper §2.2, Fig. 5d).
	if u.n.pm != nil && u.n.promiscuousRefresh && p.Class == core.ClassData {
		u.n.pm.OnDataActivity()
	}
	if u.n.router != nil {
		if msg, ok := p.Payload.(dsr.Message); ok {
			u.n.router.Overhear(from, msg)
		}
	}
	// AODV gathers nothing from overheard packets (paper §1 footnote).
}

// macTransport adapts the DSR routing layer's sends to the MAC.
type macTransport struct {
	n *node
}

var _ dsr.Transport = macTransport{}

func (t macTransport) Send(nh phy.NodeID, msg dsr.Message, onResult func(bool)) {
	t.n.link.Send(mac.Packet{
		Dst:      nh,
		Class:    msg.Class(),
		Bytes:    msg.WireBytes(),
		Payload:  msg,
		OnResult: onResult,
	})
}

// aodvTransport adapts the AODV routing layer's sends to the MAC.
type aodvTransport struct {
	n *node
}

var _ aodv.Transport = aodvTransport{}

func (t aodvTransport) Send(nh phy.NodeID, msg aodv.Message, onResult func(bool)) {
	t.n.link.Send(mac.Packet{
		Dst:      nh,
		Class:    msg.Class(),
		Bytes:    msg.WireBytes(),
		Payload:  msg,
		OnResult: onResult,
	})
}

// newWorld wires a complete network for cfg.
func newWorld(cfg Config) (*world, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &world{
		cfg:   cfg,
		sched: sim.NewScheduler(),
		col:   metrics.NewCollector(cfg.Nodes),
	}
	w.ch = phy.NewChannel(w.sched, cfg.RangeM)
	if cfg.channelName() != "disk" {
		// Non-disk channels install a propagation model seeded from its own
		// named stream, so channel randomness never aliases mobility or MAC
		// draws. Disk configs leave the model nil: the channel's inlined
		// fast path is byte-identical to the historical behaviour.
		prop, err := propagation.Parse(cfg.channelName(), cfg.RangeM, cfg.ShadowSigmaDB, sim.DeriveSeed(cfg.Seed, "prop"))
		if err != nil {
			return nil, err
		}
		w.ch.SetPropagation(prop)
		if cfg.Replay != nil && cfg.Replay.ChanLoss != nil {
			w.ch.SetChannelReplay(cfg.Replay.ChanLoss)
		}
	}
	w.inj = fault.NewInjector(cfg.Faults, fault.Env{
		Seed:     cfg.Seed,
		Nodes:    cfg.Nodes,
		Duration: cfg.Duration,
		FieldW:   cfg.FieldW,
		FieldH:   cfg.FieldH,
		RangeM:   cfg.RangeM,
	})
	// Partition shifts move nodes on top of the scenario's own mobility, so
	// the channel's declared motion bound must grow by their worst case.
	extra := w.inj.ExtraMotionBound()
	if cfg.Pause >= cfg.Duration {
		// Static scenario: every node is pinned, bins never go stale.
		w.ch.SetMotionBound(extra)
	} else {
		// Mobility clamps the speed floor to 0.1 m/s (see mobility.NewWaypoint),
		// so the effective maximum can exceed cfg.MaxSpeed when it is tiny.
		bound := cfg.MaxSpeed
		if bound < 0.1 {
			bound = 0.1
		}
		if cfg.mobilityName() == "group" {
			// A group member rides two concurrent trajectories (the shared
			// reference plus its local wander), so its worst-case speed is
			// the sum of both bounds.
			bound *= 2
		}
		w.ch.SetMotionBound(bound + extra)
	}
	if cfg.Replay != nil && cfg.Replay.Loss != nil {
		// Replay: recorded fault losses stand in for the plan's live
		// Gilbert–Elliott chains (whose state lives in dedicated RNG
		// streams nothing else reads, so skipping them shifts nothing).
		w.ch.SetLossModel(cfg.Replay.Loss)
	} else if m := w.inj.LossModel(); m != nil {
		w.ch.SetLossModel(m)
	}

	if cfg.Scheme != SchemeAlwaysOn {
		w.coord = mac.NewCoordinator(w.sched, w.ch, cfg.MAC, sim.Stream(cfg.Seed, "atim"), cfg.Duration)
	}
	if cfg.Audit {
		acfg := audit.Config{Nodes: cfg.Nodes}
		if w.coord != nil {
			// Take the beacon structure from the coordinator, which clamps
			// oversized ATIM windows, rather than from raw cfg.MAC.
			acfg.BeaconInterval = w.coord.BeaconInterval()
			acfg.ATIMWindow = w.coord.ATIMWindow()
			acfg.BeaconStop = w.coord.StopAt()
		}
		w.aud = audit.New(acfg)
		w.sched.SetExecHook(w.aud.SchedulerEvent)
		w.ch.SetDeliveryObserver(w.aud)
	}
	if cfg.Trace != nil {
		w.ch.SetDropObserver(phyTraceAdapter{w: w})
		// Intern the node-ID strings the adapters render into almost every
		// event: thousands of detail strings per run reuse these instead of
		// re-allocating "n%d".
		w.nodeNames = make([]string, cfg.Nodes)
		for i := range w.nodeNames {
			w.nodeNames[i] = phy.NodeID(i).String()
		}
		w.traceDetails = make(map[uint64]string)
	}
	policy := cfg.Policy
	if policy == nil && cfg.PolicyName != "" {
		policy, _ = core.ParsePolicy(cfg.PolicyName) // Validate caught unknown names
	}
	if policy == nil {
		policy = cfg.Scheme.defaultPolicy()
	}
	field := geom.Rect{W: cfg.FieldW, H: cfg.FieldH}

	// Shared per-group reference trajectories for "group" mobility, built
	// lazily as member nodes first need them. Each reference has its own
	// named stream, so a member's trajectory never perturbs another node's
	// draws.
	var groupRefs []*mobility.Waypoint

	for i := 0; i < cfg.Nodes; i++ {
		id := phy.NodeID(i)
		mobRNG := sim.Stream(cfg.Seed, fmt.Sprintf("mob/%d", i))
		start := field.RandomPoint(mobRNG)
		var mob mobility.Model
		if cfg.Pause >= cfg.Duration {
			// The paper's "static scenario": pause time = simulation time.
			mob = mobility.Static{P: start}
		} else {
			switch cfg.mobilityName() {
			case "gauss-markov":
				mob = mobility.NewGaussMarkov(mobility.GaussMarkovConfig{
					Field:    field,
					MinSpeed: cfg.MinSpeed,
					MaxSpeed: cfg.MaxSpeed,
					Start:    start,
				}, mobRNG)
			case "group":
				g := i / cfg.groupSize()
				for len(groupRefs) <= g {
					refRNG := sim.Stream(cfg.Seed, fmt.Sprintf("mob/group/%d", len(groupRefs)))
					groupRefs = append(groupRefs, mobility.NewWaypoint(mobility.WaypointConfig{
						Field:    field,
						MinSpeed: cfg.MinSpeed,
						MaxSpeed: cfg.MaxSpeed,
						Pause:    cfg.Pause,
						Start:    field.RandomPoint(refRNG),
					}, refRNG))
				}
				r := cfg.groupRadius()
				box := geom.Rect{W: 2 * r, H: 2 * r}
				mob = mobility.Member{
					Field: field,
					Ref:   groupRefs[g],
					Local: mobility.NewWaypoint(mobility.WaypointConfig{
						Field:    box,
						MinSpeed: cfg.MinSpeed,
						MaxSpeed: cfg.MaxSpeed,
						Pause:    cfg.Pause,
						Start:    box.RandomPoint(mobRNG),
					}, mobRNG),
					Center: geom.Point{X: r, Y: r},
				}
			default:
				mob = mobility.NewWaypoint(mobility.WaypointConfig{
					Field:    field,
					MinSpeed: cfg.MinSpeed,
					MaxSpeed: cfg.MaxSpeed,
					Pause:    cfg.Pause,
					Start:    start,
				}, mobRNG)
			}
		}

		if shifts := w.inj.ShiftsFor(i); len(shifts) > 0 {
			mob = &mobility.Shifted{Base: mob, Shifts: shifts}
		}

		n := &node{id: id}
		n.radio = w.ch.AddRadio(id, mob)
		n.meter = energy.NewMeter(cfg.AwakeWatts, cfg.SleepWatts, w.inj.BatteryCapacity(i, cfg.BatteryJoules))

		macRNG := sim.Stream(cfg.Seed, fmt.Sprintf("mac/%d", i))
		up := macUpcalls{n: n}
		switch cfg.Scheme {
		case SchemeAlwaysOn:
			n.link = mac.NewAlwaysOn(w.sched, w.ch, n.radio, macRNG, cfg.MAC, up)
		default:
			psm := mac.NewPSM(w.sched, w.ch, n.radio, n.meter, policy, macRNG, cfg.MAC, up)
			n.psm = psm
			n.link = psm
			if w.aud != nil {
				psm.SetAudit(w.aud)
			}
			if cfg.Trace != nil {
				psm.SetTrace(macTraceAdapter{w: w})
			}
			if cfg.Replay != nil && cfg.Replay.Lottery != nil {
				psm.SetLotteryOverride(cfg.Replay.Lottery)
			}
			w.coord.AddStation(psm)
			if cfg.Scheme == SchemeODPM {
				n.pm = odpm.New(w.sched, psm, cfg.ODPMRREPKeepAlive, cfg.ODPMDataKeepAlive)
				n.promiscuousRefresh = cfg.ODPMPromiscuousRefresh
			}
		}

		switch cfg.Routing {
		case RoutingAODV:
			n.aodvRouter = aodv.New(id, w.sched, sim.Stream(cfg.Seed, fmt.Sprintf("aodv/%d", i)),
				aodvTransport{n: n}, cfg.AODV, w.aodvHooksFor(n))
		default:
			dsrCfg := cfg.DSR
			if cfg.GossipFanout > 0 {
				radio := n.radio
				dsrCfg.Gossip = &core.BroadcastGossip{Fanout: cfg.GossipFanout}
				dsrCfg.NeighborCount = func() int {
					return w.ch.CountNeighbors(radio, w.sched.Now())
				}
			}
			n.router = dsr.New(id, w.sched, sim.Stream(cfg.Seed, fmt.Sprintf("dsr/%d", i)),
				macTransport{n: n}, dsrCfg, w.hooksFor(n))
		}
		w.nodes = append(w.nodes, n)
	}

	// Variable TX power: stretch every radio's reach by the power-derived
	// range scale and charge each transmission the energy delta between the
	// scaled and nominal radiated power. Gated on a non-zero knob so
	// default runs take none of these paths and stay byte-identical.
	if cfg.TxPowerDBm != 0 {
		scale := cfg.txRangeScale()
		for _, n := range w.nodes {
			n.radio.SetTxRangeScale(scale)
		}
		w.ch.SetTxObserver(txEnergyAdapter{
			w:      w,
			extraW: energy.DefaultTxWatts * (cfg.txPowerRatio() - 1),
		})
	}

	// ODPM fast path: senders know their next hop's power-management mode
	// (the paper notes ODPM requires this knowledge; it is granted at no
	// cost, as in the original evaluation).
	if cfg.Scheme == SchemeODPM {
		for _, n := range w.nodes {
			n.psm.SetFastPath(func(dst phy.NodeID) bool {
				if int(dst) < 0 || int(dst) >= len(w.nodes) {
					return false
				}
				peer := w.nodes[dst]
				return peer.psm != nil && peer.psm.InAM(w.sched.Now())
			})
		}
	}

	w.down = make([]bool, cfg.Nodes)
	if err := w.startTraffic(); err != nil {
		return nil, err
	}
	w.deaths = make([]sim.Time, cfg.Nodes)
	if cfg.BatteryJoules > 0 {
		w.scheduleBatterySweep()
	}
	// Wiring happens at t=0 and the schedule is validated non-negative, so
	// At cannot report time reversal here.
	crashes := w.inj.Schedule()
	if cfg.Replay != nil && cfg.Replay.UseCrashSchedule {
		// Replay: the crash/recovery schedule reconstructed from the
		// trace replaces the injector's (which was drawn from the
		// "fault/crash" stream at construction — construction-time
		// randomness, so nothing else consumed it).
		crashes = cfg.Replay.CrashSchedule
	}
	for _, cr := range crashes {
		id := phy.NodeID(cr.Node)
		_, _ = w.sched.At(cr.At, func() { w.crashNode(id) })
		if cr.RecoverAt > 0 {
			_, _ = w.sched.At(cr.RecoverAt, func() { w.recoverNode(id) })
		}
	}
	if w.aud != nil {
		meters := make([]*energy.Meter, len(w.nodes))
		for i, n := range w.nodes {
			meters[i] = n.meter
		}
		w.aud.ObserveMeters(meters)
		w.scheduleAuditSweep()
	}
	return w, nil
}

// scheduleAuditSweep re-verifies time/energy conservation once per beacon
// interval so a broken meter is caught near the corruption, not at
// teardown. The sweep only reads meter state — it never drives meters
// forward — so an audited run stays bit-identical to an unaudited one.
func (w *world) scheduleAuditSweep() {
	interval := w.cfg.MAC.BeaconInterval
	if interval <= 0 {
		interval = 250 * sim.Millisecond
	}
	var sweep func()
	sweep = func() {
		now := w.sched.Now()
		if now >= w.cfg.Duration {
			return
		}
		w.aud.CheckMeters(now, false)
		w.sched.After(interval, sweep)
	}
	w.sched.After(interval, sweep)
}

// bufferedKeys enumerates every application data packet still parked in a
// routing send buffer or queued at a MAC at the end of the run — the
// "still-buffered" leg of the packet-conservation invariant.
func (w *world) bufferedKeys() []audit.PacketKey {
	var keys []audit.PacketKey
	for _, n := range w.nodes {
		if n.router != nil {
			for _, p := range n.router.BufferedData() {
				keys = append(keys, pktKey(p.Src, p.FlowID, p.Seq))
			}
		}
		if n.aodvRouter != nil {
			for _, p := range n.aodvRouter.BufferedData() {
				keys = append(keys, pktKey(p.Src, p.FlowID, p.Seq))
			}
		}
		for _, mp := range n.link.Queued() {
			switch p := mp.Payload.(type) {
			case *dsr.DataPacket:
				keys = append(keys, pktKey(p.Src, p.FlowID, p.Seq))
			case *aodv.DataPacket:
				keys = append(keys, pktKey(p.Src, p.FlowID, p.Seq))
			}
		}
	}
	return keys
}

// scheduleBatterySweep polls batteries twice per beacon interval and kills
// depleted nodes: the radio goes silent and stays down, modelling the
// device-lifetime consequences the paper's introduction motivates Rcast
// with.
func (w *world) scheduleBatterySweep() {
	interval := w.cfg.MAC.BeaconInterval / 2
	if interval <= 0 {
		interval = 125 * sim.Millisecond
	}
	var sweep func()
	sweep = func() {
		now := w.sched.Now()
		if now >= w.cfg.Duration {
			return
		}
		for _, n := range w.nodes {
			if w.deaths[n.id] != 0 {
				continue
			}
			_ = n.meter.ObserveAt(now)
			if !n.meter.Depleted() {
				continue
			}
			w.deaths[n.id] = now
			w.trace(n.id, trace.KindDeath, "")
			if k, ok := n.link.(killer); ok {
				k.Kill()
			}
			if n.aodvRouter != nil {
				n.aodvRouter.Stop()
			}
		}
		w.sched.After(interval, sweep)
	}
	w.sched.After(interval, sweep)
}

// crashNode power-cycles node id off: the routing layer and MAC flush
// their buffers, the radio goes dark and the meter drops to sleep draw.
// Every flushed data packet is reconciled — a collector drop under
// "node-crash" and, when auditing, the crashed terminal class — so packet
// conservation stays provable with nodes dying mid-flight. Battery-dead
// and already-down nodes are left alone.
func (w *world) crashNode(id phy.NodeID) {
	if w.down[id] || w.deaths[id] != 0 {
		return
	}
	n := w.nodes[id]
	w.down[id] = true
	w.crashEvents++
	now := w.sched.Now()

	// Flush order is deterministic: router buffers (destination order)
	// first, then the MAC transmit queue (queue order).
	var keys []audit.PacketKey
	if n.router != nil {
		for _, p := range n.router.Crash() {
			keys = append(keys, pktKey(p.Src, p.FlowID, p.Seq))
		}
	}
	if n.aodvRouter != nil {
		for _, p := range n.aodvRouter.Crash() {
			keys = append(keys, pktKey(p.Src, p.FlowID, p.Seq))
		}
	}
	if pc, ok := n.link.(powerCycler); ok {
		for _, mp := range pc.PowerDown() {
			switch p := mp.Payload.(type) {
			case *dsr.DataPacket:
				keys = append(keys, pktKey(p.Src, p.FlowID, p.Seq))
			case *aodv.DataPacket:
				keys = append(keys, pktKey(p.Src, p.FlowID, p.Seq))
			}
		}
	}
	if n.psm == nil {
		// AlwaysOn never drives its meter; the crash transition is ours.
		_ = n.meter.SetState(now, energy.Asleep)
	}
	w.crashFlushed += uint64(len(keys))
	w.trace(id, trace.KindCrash, fmt.Sprintf("flushed=%d", len(keys)))
	for _, k := range keys {
		w.col.DataDropped("node-crash")
		if w.aud != nil {
			w.aud.PacketCrashed(now, id, k)
		}
	}
}

// recoverNode brings a crashed node back up with empty protocol state. A
// PSM node rejoins at its next BeaconStart (radio and meter stay asleep
// until then); an always-on node comes straight back awake.
func (w *world) recoverNode(id phy.NodeID) {
	if !w.down[id] || w.deaths[id] != 0 {
		return
	}
	n := w.nodes[id]
	w.down[id] = false
	w.recoverEvents++
	w.trace(id, trace.KindRecover, "")
	if pc, ok := n.link.(powerCycler); ok {
		pc.PowerUp()
	}
	if n.psm == nil {
		_ = n.meter.SetState(w.sched.Now(), energy.Awake)
	}
	if n.router != nil {
		n.router.Restart()
	}
	if n.aodvRouter != nil {
		n.aodvRouter.Restart()
	}
}

// trace emits a structured event when tracing is configured.
func (w *world) trace(node phy.NodeID, kind trace.Kind, detail string) {
	w.tracePkt(node, kind, "", detail)
}

// tracePkt is trace with the packet UID attached. It stamps the event
// with the run-local sequence number and scheduler time and hands it to
// the configured sink. The world is the single emission point for every
// layer's events, so Seq orders the whole trace and two traces of the
// same configuration align event-for-event.
func (w *world) tracePkt(node phy.NodeID, kind trace.Kind, pkt, detail string) {
	if w.cfg.Trace == nil {
		return
	}
	w.traceSeq++
	w.cfg.Trace.Emit(trace.Event{
		Seq:    w.traceSeq,
		At:     w.sched.Now(),
		Node:   node,
		Kind:   kind,
		Pkt:    pkt,
		Detail: detail,
	})
}

// nodeName returns the interned rendering of a node ID ("n7", "bcast"),
// falling back to NodeID.String for IDs outside the scenario.
func (w *world) nodeName(id phy.NodeID) string {
	if i := int(id); i >= 0 && i < len(w.nodeNames) {
		return w.nodeNames[i]
	}
	return id.String()
}

// dataUID extracts the application-packet UID from a MAC payload, or ""
// for control traffic.
func dataUID(payload any) string {
	switch p := payload.(type) {
	case *dsr.DataPacket:
		return trace.PacketUID(p.Src, p.FlowID, p.Seq)
	case *aodv.DataPacket:
		return trace.PacketUID(p.Src, p.FlowID, p.Seq)
	}
	return ""
}

// txEnergyAdapter charges each transmission the energy delta between the
// configured and nominal radiated TX power (phy.TxObserver). Installed
// only when TxPowerDBm is non-zero. extraW is negative for reduced-power
// runs: the awake draw already includes nominal transmission cost, so a
// quieter radio gets energy back relative to the two-state model.
type txEnergyAdapter struct {
	w      *world
	extraW float64 // watts beyond the nominal radiated power
}

func (a txEnergyAdapter) FrameTransmitted(now sim.Time, tx phy.NodeID, airtime sim.Time) {
	if int(tx) >= len(a.w.nodes) {
		return
	}
	// AddTxJoules accrues to now first, and transmissions happen at the
	// scheduler's current instant, so time reversal is impossible here.
	_ = a.w.nodes[tx].meter.AddTxJoules(now, a.extraW*airtime.Seconds())
}

// macTraceAdapter forwards MAC lifecycle callbacks (mac.Trace) into the
// world's trace stream. Installed only when tracing is configured.
type macTraceAdapter struct {
	w *world
}

var _ mac.Trace = macTraceAdapter{}

// The high-volume detail strings (ATIM, lottery, PHY loss, enqueue) come
// from small finite alphabets — a node pair, a level, a reason — so they
// are memoized in w.traceDetails: after the first rendering of a given
// combination every later event reuses the interned string. This, not the
// sink, was the dominant enabled-tracing cost (allocation + GC churn).
// The rendered bytes must stay identical to the former %v formatting (the
// golden-trace test pins them).

// Tags namespacing the memoization keys (see world.detailKey).
const (
	detEnqueue = iota + 1
	detAtim
	detLottery
	detPhyDrop
)

// detailKey packs a detail identity: which adapter (tag), a small variant
// (level/class/reason/verdict), and up to two node IDs shifted by one so
// Broadcast (-1) packs cleanly.
func detailKey(tag, sub int, a, b phy.NodeID) uint64 {
	return uint64(tag)<<56 | uint64(sub)<<48 | uint64(uint32(a+1))<<24 | uint64(uint32(b+1))
}

func (a macTraceAdapter) PacketEnqueued(_ sim.Time, node phy.NodeID, p mac.Packet) {
	w := a.w
	key := detailKey(detEnqueue, int(p.Class), p.Dst, 0)
	detail, ok := w.traceDetails[key]
	if !ok {
		detail = "dst=" + w.nodeName(p.Dst) + " class=" + p.Class.String()
		w.traceDetails[key] = detail
	}
	w.tracePkt(node, trace.KindEnqueue, dataUID(p.Payload), detail)
}

func (a macTraceAdapter) ATIMAdvertised(_ sim.Time, node phy.NodeID, an mac.Announcement) {
	w := a.w
	key := detailKey(detAtim, int(an.Level), an.To, 0)
	detail, ok := w.traceDetails[key]
	if !ok {
		detail = "to=" + w.nodeName(an.To) + " level=" + an.Level.String()
		w.traceDetails[key] = detail
	}
	w.trace(node, trace.KindAtim, detail)
}

func (a macTraceAdapter) OverhearingDecision(_ sim.Time, node phy.NodeID, an mac.Announcement, stayAwake bool) {
	w := a.w
	sub := int(an.Level) << 1
	verdict := " sleep"
	if stayAwake {
		sub |= 1
		verdict = " stay-awake"
	}
	key := detailKey(detLottery, sub, an.From, 0)
	detail, ok := w.traceDetails[key]
	if !ok {
		detail = "from=" + w.nodeName(an.From) + " level=" + an.Level.String() + verdict
		w.traceDetails[key] = detail
	}
	w.trace(node, trace.KindLottery, detail)
}

func (a macTraceAdapter) StationWoke(_ sim.Time, node phy.NodeID) {
	a.w.trace(node, trace.KindWake, "")
}

func (a macTraceAdapter) StationSlept(_ sim.Time, node phy.NodeID) {
	a.w.trace(node, trace.KindSleep, "")
}

// phyTraceAdapter forwards channel losses (phy.DropObserver) into the
// trace stream. Frame payloads are MAC-internal, so these events carry
// the endpoints and loss reason, not a packet UID.
type phyTraceAdapter struct {
	w *world
}

var _ phy.DropObserver = phyTraceAdapter{}

func (a phyTraceAdapter) FrameLost(_ sim.Time, rx phy.NodeID, f phy.Frame, reason string) {
	w := a.w
	var sub int
	switch reason {
	case phy.LossCollision:
		sub = 1
	case phy.LossMissedAsleep:
		sub = 2
	case phy.LossFault:
		sub = 3
	case phy.LossChannel:
		sub = 4
	default:
		// Unknown reason: the key can't distinguish it, so skip the cache.
		w.trace(rx, trace.KindPhyDrop, reason+" from="+w.nodeName(f.From)+" to="+w.nodeName(f.To))
		return
	}
	key := detailKey(detPhyDrop, sub, f.From, f.To)
	detail, ok := w.traceDetails[key]
	if !ok {
		detail = reason + " from=" + w.nodeName(f.From) + " to=" + w.nodeName(f.To)
		w.traceDetails[key] = detail
	}
	w.trace(rx, trace.KindPhyDrop, detail)
}

// pathString renders a route the way fmt's %v does ("[n0 n3 n7]") without
// fmt's reflection — cache events are frequent in traced runs.
func (w *world) pathString(path []phy.NodeID) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, id := range path {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(w.nodeName(id))
	}
	b.WriteByte(']')
	return b.String()
}

// hooksFor wires one node's routing events into metrics, tracing and ODPM.
// Trace emissions are gated on w.cfg.Trace so untraced runs skip the
// formatting work entirely, not just the sink call.
func (w *world) hooksFor(n *node) dsr.Hooks {
	h := dsr.Hooks{
		DataOriginated: func(p *dsr.DataPacket) {
			w.col.DataOriginated()
			if w.aud != nil {
				w.aud.PacketOriginated(w.sched.Now(), pktKey(p.Src, p.FlowID, p.Seq))
			}
			if w.cfg.Trace != nil {
				w.tracePkt(n.id, trace.KindOriginate, trace.PacketUID(p.Src, p.FlowID, p.Seq),
					"dst="+w.nodeName(p.Dst))
			}
		},
		DataDelivered: func(p *dsr.DataPacket, _ phy.NodeID) {
			hops := len(p.Route) - 1
			w.col.DataDelivered(w.sched.Now()-p.OriginatedAt, p.PayloadBytes, hops)
			if w.aud != nil {
				w.aud.PacketDelivered(w.sched.Now(), n.id, pktKey(p.Src, p.FlowID, p.Seq))
			}
			if w.cfg.Trace != nil {
				w.tracePkt(n.id, trace.KindDeliver, trace.PacketUID(p.Src, p.FlowID, p.Seq),
					"src="+w.nodeName(p.Src)+" hops="+strconv.Itoa(hops))
			}
		},
		DataDropped: func(p *dsr.DataPacket, reason string) {
			w.col.DataDropped(reason)
			if w.aud != nil {
				w.aud.PacketDropped(w.sched.Now(), n.id, pktKey(p.Src, p.FlowID, p.Seq), reason)
			}
			if w.cfg.Trace != nil {
				w.tracePkt(n.id, trace.KindDrop, trace.PacketUID(p.Src, p.FlowID, p.Seq), reason)
			}
		},
		DataForwarded: func(p *dsr.DataPacket) {
			w.col.DataForwarded(n.id)
			if w.cfg.Trace != nil {
				w.tracePkt(n.id, trace.KindForward, trace.PacketUID(p.Src, p.FlowID, p.Seq), "")
			}
		},
		DataSalvaged: func(p *dsr.DataPacket) {
			if w.cfg.Trace != nil {
				w.tracePkt(n.id, trace.KindSalvage, trace.PacketUID(p.Src, p.FlowID, p.Seq),
					fmt.Sprintf("attempt=%d route=%v", p.Salvaged, p.Route))
			}
		},
		ControlSent: func(c core.Class) {
			w.col.ControlSent(c)
			w.trace(n.id, trace.KindControl, c.String())
		},
		CacheInserted: func(path []phy.NodeID) {
			w.col.RouteCached(path)
			if w.cfg.Trace != nil {
				w.trace(n.id, trace.KindCache, w.pathString(path))
			}
		},
		CacheEvicted: func(path []phy.NodeID) {
			if w.cfg.Trace != nil {
				w.trace(n.id, trace.KindCacheEvict, w.pathString(path))
			}
		},
	}
	if w.cfg.Scheme == SchemeODPM {
		pm := n.pm
		h.RREPReceived = pm.OnRREP
		h.DataActivity = pm.OnDataActivity
	}
	return h
}

// aodvHooksFor mirrors hooksFor for the AODV routing layer.
func (w *world) aodvHooksFor(n *node) aodv.Hooks {
	h := aodv.Hooks{
		DataOriginated: func(p *aodv.DataPacket) {
			w.col.DataOriginated()
			if w.aud != nil {
				w.aud.PacketOriginated(w.sched.Now(), pktKey(p.Src, p.FlowID, p.Seq))
			}
			if w.cfg.Trace != nil {
				w.tracePkt(n.id, trace.KindOriginate, trace.PacketUID(p.Src, p.FlowID, p.Seq),
					"dst="+w.nodeName(p.Dst))
			}
		},
		DataDelivered: func(p *aodv.DataPacket, _ phy.NodeID) {
			w.col.DataDelivered(w.sched.Now()-p.OriginatedAt, p.PayloadBytes, p.HopsTaken+1)
			if w.aud != nil {
				w.aud.PacketDelivered(w.sched.Now(), n.id, pktKey(p.Src, p.FlowID, p.Seq))
			}
			if w.cfg.Trace != nil {
				w.tracePkt(n.id, trace.KindDeliver, trace.PacketUID(p.Src, p.FlowID, p.Seq),
					"src="+w.nodeName(p.Src)+" hops="+strconv.Itoa(p.HopsTaken+1))
			}
		},
		DataDropped: func(p *aodv.DataPacket, reason string) {
			w.col.DataDropped(reason)
			if w.aud != nil {
				w.aud.PacketDropped(w.sched.Now(), n.id, pktKey(p.Src, p.FlowID, p.Seq), reason)
			}
			if w.cfg.Trace != nil {
				w.tracePkt(n.id, trace.KindDrop, trace.PacketUID(p.Src, p.FlowID, p.Seq), reason)
			}
		},
		DataForwarded: func(p *aodv.DataPacket) {
			w.col.DataForwarded(n.id)
			if w.cfg.Trace != nil {
				w.tracePkt(n.id, trace.KindForward, trace.PacketUID(p.Src, p.FlowID, p.Seq), "")
			}
		},
		ControlSent: func(c core.Class) {
			w.col.ControlSent(c)
			w.trace(n.id, trace.KindControl, c.String())
		},
	}
	if w.cfg.Scheme == SchemeODPM {
		pm := n.pm
		h.RREPReceived = pm.OnRREP
		h.DataActivity = pm.OnDataActivity
	}
	return h
}

// startTraffic picks connections and schedules the CBR sources. Source
// start times are staggered across one packet interval to avoid a
// synchronized burst at TrafficStart.
func (w *world) startTraffic() error {
	rng := sim.Stream(w.cfg.Seed, "traffic")
	conns, err := traffic.PickConnections(rng, w.cfg.Nodes, w.cfg.Connections)
	if err != nil {
		return err
	}
	w.conns = conns
	for _, c := range conns {
		c := c
		src := w.nodes[c.Src]
		stagger := sim.FromSeconds(rng.Float64() / w.cfg.PacketRate)
		_, err := traffic.StartCBR(w.sched, traffic.CBRConfig{
			Rate:        w.cfg.PacketRate,
			PacketBytes: w.cfg.PacketBytes,
			Start:       w.cfg.TrafficStart + stagger,
			Stop:        w.cfg.trafficStop(),
		}, c, func(dst phy.NodeID, flowID uint64, bytes int) {
			if w.down[c.Src] {
				return // a crashed source originates nothing
			}
			src.sendData(dst, flowID, bytes)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// run executes the simulation to completion and finalizes energy metering.
// A triggered stop check (see Scheduler.SetStopCheck) abandons the run
// mid-flight: metering is left unfinalized because the partial world is
// never turned into a Result.
func (w *world) run() {
	if w.coord != nil {
		w.coord.Start()
	}
	w.sched.RunUntil(w.cfg.Duration)
	if w.sched.Stopped() {
		return
	}
	for _, n := range w.nodes {
		_ = n.meter.ObserveAt(w.cfg.Duration)
	}
}
