package serve

import (
	"container/list"
	"sync"
)

// resultCache is a bounded, content-addressed LRU of marshaled job
// results. Keys are canonical config hashes (scenario.CanonicalKey), so a
// hit is by construction the byte-identical result of re-running the
// submission. Values are immutable byte slices; callers must not mutate
// what Get returns.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key   string
	value []byte
}

// newResultCache returns a cache holding at most capacity entries
// (capacity < 1 selects 1).
func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Get returns the cached bytes for key, refreshing its recency.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// Put stores bytes under key, evicting the least recently used entry on
// overflow. Re-putting an existing key refreshes it.
func (c *resultCache) Put(key string, value []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).value = value
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, value: value})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
