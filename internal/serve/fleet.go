package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rcast/internal/metrics/promtext"
)

// FleetOptions configures coordinator mode: a server that executes sweep
// cells on downstream rcast-serve workers instead of its own engine.
type FleetOptions struct {
	// Workers is the list of downstream rcast-serve base URLs. At least
	// one is required.
	Workers []string
	// MaxRetries bounds how many times one cell is re-dispatched after a
	// worker loss before the sweep fails (default 3).
	MaxRetries int
	// RetryBackoff is the base of the exponential re-dispatch delay:
	// attempt n waits RetryBackoff << n before the cell re-enters the
	// shared queue, where any surviving worker steals it (default 250ms).
	RetryBackoff time.Duration
	// PollInterval is the job-status polling cadence against workers
	// (default 50ms).
	PollInterval time.Duration
	// HTTPClient overrides the client used to talk to workers (tests).
	HTTPClient *http.Client
}

func (f FleetOptions) withDefaults() FleetOptions {
	if f.MaxRetries <= 0 {
		f.MaxRetries = 3
	}
	if f.RetryBackoff <= 0 {
		f.RetryBackoff = 250 * time.Millisecond
	}
	if f.PollInterval <= 0 {
		f.PollInterval = 50 * time.Millisecond
	}
	if f.HTTPClient == nil {
		f.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	return f
}

// NewCoordinator creates a server whose sweeps shard across a fleet of
// downstream rcast-serve workers with work-stealing dispatch, bounded
// per-cell retry on worker loss, and peer-cache fills. The plain jobs API
// still executes locally; only sweep cells go to the fleet. The cell
// bytes are byte-identical either way — workers run the same engine under
// the same canonical keys — so coordinator mode changes throughput, never
// results.
func NewCoordinator(opts Options, fleet FleetOptions) (*Server, error) {
	if len(fleet.Workers) == 0 {
		return nil, fmt.Errorf("serve: coordinator needs at least one worker URL")
	}
	fleet = fleet.withDefaults()
	s := New(opts)
	f := &fleetExecutor{
		s:    s,
		opts: fleet,
		mWorkerUp: s.reg.NewGaugeVec("rcast_serve_fleet_worker_up",
			"Per-worker fleet health (1 = dispatchable, 0 = lost).", "worker"),
	}
	for _, u := range fleet.Workers {
		w := &fleetWorker{url: u}
		f.workers = append(f.workers, w)
		f.mWorkerUp.Set(u, 1)
	}
	s.sweepExec = f
	return s, nil
}

// fleetWorker is one downstream rcast-serve the coordinator dispatches to.
type fleetWorker struct {
	url  string
	down atomic.Bool
}

// fleetExecutor shards a sweep's cells across the fleet. One dispatch
// slot per worker pulls cells off a shared queue (work stealing: a fast
// worker drains more cells); a lost worker's in-flight cell re-enters the
// queue after exponential backoff and a surviving worker picks it up.
type fleetExecutor struct {
	s         *Server
	opts      FleetOptions
	workers   []*fleetWorker
	mWorkerUp *promtext.GaugeVec
}

// cellError classifies a dispatch failure.
type cellError struct {
	err  error
	kind cellErrKind
}

type cellErrKind int

const (
	cellErrFatal     cellErrKind = iota // cell itself failed; fail the sweep
	cellErrLoss                         // worker lost; retry cell elsewhere
	cellErrTransient                    // worker busy (429); retry, worker stays up
)

func (e *cellError) Error() string { return e.err.Error() }
func (e *cellError) Unwrap() error { return e.err }

func lossErr(format string, args ...any) *cellError {
	return &cellError{err: fmt.Errorf(format, args...), kind: cellErrLoss}
}

// fleetTask is one unit of the shared work queue: an index into the
// sweep's deduplicated key order plus its retry count.
type fleetTask struct {
	k        int
	attempts int
}

func (f *fleetExecutor) runSweep(ctx context.Context, sw *Sweep) ([][]byte, error) {
	s := f.s
	results := make([][]byte, len(sw.cells))

	// Deduplicate cells by canonical key: one dispatch per unique config.
	byKey := make(map[string][]int)
	var keyOrder []string
	for i, c := range sw.cells {
		if _, seen := byKey[c.Key]; !seen {
			keyOrder = append(keyOrder, c.Key)
		}
		byKey[c.Key] = append(byKey[c.Key], i)
	}

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	// The queue is sized to hold every task at once, so requeues (which
	// can come from timer goroutines) never block.
	work := make(chan fleetTask, len(keyOrder))
	for k := range keyOrder {
		work <- fleetTask{k: k}
	}

	var (
		mu        sync.Mutex
		remaining = len(keyOrder)
		firstErr  error
	)
	done := make(chan struct{})
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel(err)
	}
	finishKey := func(k int, body []byte, source, workerURL string) {
		idxs := byKey[keyOrder[k]]
		mu.Lock()
		for _, i := range idxs {
			results[i] = body
		}
		remaining--
		last := remaining == 0
		mu.Unlock()
		for _, i := range idxs {
			s.mFleetCells.Inc(source)
			sw.cellDone(i, source, workerURL)
		}
		if last {
			close(done)
		}
	}
	requeue := func(t fleetTask) {
		idxs := byKey[keyOrder[t.k]]
		for _, i := range idxs {
			sw.cellRetried(i)
		}
		s.mFleetRetries.Inc()
		delay := f.opts.RetryBackoff << t.attempts
		t.attempts++
		time.AfterFunc(delay, func() {
			select {
			case <-runCtx.Done():
			default:
				work <- t // never blocks: queue holds every task
			}
		})
	}

	live := int64(len(f.workers))
	var liveWorkers atomic.Int64
	liveWorkers.Store(live)

	var wg sync.WaitGroup
	for _, w := range f.workers {
		if w.down.Load() {
			if liveWorkers.Add(-1) == 0 {
				fail(fmt.Errorf("serve: all fleet workers down"))
			}
			continue
		}
		wg.Add(1)
		go func(w *fleetWorker) {
			defer wg.Done()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-done:
					return
				case t := <-work:
					idxs := byKey[keyOrder[t.k]]
					for _, i := range idxs {
						sw.cellRunning(i)
					}
					cell := &sw.cells[idxs[0]]
					body, source, fromURL, err := f.resolve(runCtx, sw, w, cell)
					if err == nil {
						finishKey(t.k, body, source, fromURL)
						continue
					}
					var ce *cellError
					if !errors.As(err, &ce) {
						// Cancellation or another non-dispatch error:
						// surface untouched so the sweep-level cause
						// (user cancel vs shutdown) decides the message.
						fail(err)
						return
					}
					switch ce.kind {
					case cellErrFatal:
						fail(ce.err)
						return
					case cellErrTransient:
						if t.attempts >= f.opts.MaxRetries {
							fail(fmt.Errorf("serve: cell %d (%s) still rejected after %d attempts: %w",
								cell.Index, cell.Key, t.attempts+1, ce.err))
							return
						}
						requeue(t)
					case cellErrLoss:
						w.down.Store(true)
						f.mWorkerUp.Set(w.url, 0)
						if t.attempts >= f.opts.MaxRetries {
							fail(fmt.Errorf("serve: cell %d (%s) failed after %d attempts: %w",
								cell.Index, cell.Key, t.attempts+1, ce.err))
						} else {
							requeue(t)
						}
						if liveWorkers.Add(-1) == 0 {
							fail(fmt.Errorf("serve: all fleet workers down (last: %w)", ce.err))
						}
						return // this dispatch slot is gone; survivors steal its work
					}
				}
			}
		}(w)
	}
	wg.Wait()

	mu.Lock()
	err := firstErr
	left := remaining
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if left != 0 {
		return nil, fmt.Errorf("serve: fleet dispatch ended with %d cells unresolved", left)
	}
	return results, nil
}

// resolve obtains one cell's result bytes: coordinator cache, then a
// peer-cache probe across the fleet, then a real run on worker w. It
// returns the bytes, their source, and the worker URL that supplied them
// ("" for a coordinator cache hit).
func (f *fleetExecutor) resolve(ctx context.Context, sw *Sweep, w *fleetWorker, cell *SweepCell) ([]byte, string, string, error) {
	if body, ok := f.s.cache.Get(cell.Key); ok {
		return body, CellSourceCache, "", nil
	}
	// Peer probe: a cheap HEAD against each live worker's result cache,
	// starting with the worker that would otherwise compute. Any hit is
	// fetched and fed into the coordinator cache.
	if body, url, ok := f.probePeers(ctx, w, cell.Key); ok {
		f.s.cache.Put(cell.Key, body)
		return body, CellSourcePeerCache, url, nil
	}
	body, err := f.runOnWorker(ctx, w, cell)
	if err != nil {
		return nil, "", "", err
	}
	f.s.cache.Put(cell.Key, body)
	return body, CellSourceComputed, w.url, nil
}

// probePeers HEADs /api/v1/results/{key} on w first, then every other
// live worker. Probe failures on *other* workers are ignored (their own
// dispatch slots detect losses); only a hit matters here.
func (f *fleetExecutor) probePeers(ctx context.Context, w *fleetWorker, key string) ([]byte, string, bool) {
	candidates := []*fleetWorker{w}
	for _, other := range f.workers {
		if other != w && !other.down.Load() {
			candidates = append(candidates, other)
		}
	}
	for _, c := range candidates {
		req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.url+"/api/v1/results/"+key, nil)
		if err != nil {
			continue
		}
		resp, err := f.opts.HTTPClient.Do(req)
		if err != nil {
			continue
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			continue
		}
		body, err := f.fetchResult(ctx, c.url, key)
		if err != nil {
			continue
		}
		return body, c.url, true
	}
	return nil, "", false
}

func (f *fleetExecutor) fetchResult(ctx context.Context, baseURL, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/api/v1/results/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/api/v1/results/%s: %s", baseURL, key, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// runOnWorker submits the cell as a plain job on w and drives it to a
// terminal state, returning the canonical result bytes.
func (f *fleetExecutor) runOnWorker(ctx context.Context, w *fleetWorker, cell *SweepCell) ([]byte, error) {
	payload, err := json.Marshal(cell.Req)
	if err != nil {
		return nil, &cellError{err: fmt.Errorf("cell %d (%s): marshal request: %w", cell.Index, cell.Key, err), kind: cellErrFatal}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/api/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return nil, lossErr("POST %s/api/v1/jobs: %v", w.url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.opts.HTTPClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, lossErr("POST %s/api/v1/jobs: %v", w.url, err)
	}
	var st Status
	decodeErr := json.NewDecoder(resp.Body).Decode(&st)
	_ = resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, &cellError{err: fmt.Errorf("worker %s queue full", w.url), kind: cellErrTransient}
	case resp.StatusCode == http.StatusBadRequest:
		return nil, &cellError{err: fmt.Errorf("cell %d (%s) rejected by %s", cell.Index, cell.Key, w.url), kind: cellErrFatal}
	case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted:
		return nil, lossErr("POST %s/api/v1/jobs: %s", w.url, resp.Status)
	case decodeErr != nil:
		return nil, lossErr("POST %s/api/v1/jobs: bad status body: %v", w.url, decodeErr)
	}

	for !st.State.Terminal() {
		select {
		case <-ctx.Done():
			// Best-effort remote cancel so the worker does not burn CPU on
			// a sweep that is already dead.
			creq, err := http.NewRequest(http.MethodPost, w.url+"/api/v1/jobs/"+st.ID+"/cancel", nil)
			if err == nil {
				if cresp, err := f.opts.HTTPClient.Do(creq); err == nil {
					_ = cresp.Body.Close()
				}
			}
			return nil, ctx.Err()
		case <-time.After(f.opts.PollInterval):
		}
		sreq, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/api/v1/jobs/"+st.ID, nil)
		if err != nil {
			return nil, lossErr("GET %s/api/v1/jobs/%s: %v", w.url, st.ID, err)
		}
		sresp, err := f.opts.HTTPClient.Do(sreq)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, lossErr("GET %s/api/v1/jobs/%s: %v", w.url, st.ID, err)
		}
		decodeErr = json.NewDecoder(sresp.Body).Decode(&st)
		_ = sresp.Body.Close()
		if sresp.StatusCode != http.StatusOK {
			// A 404 here means the worker restarted and lost the job.
			return nil, lossErr("GET %s/api/v1/jobs/%s: %s", w.url, st.ID, sresp.Status)
		}
		if decodeErr != nil {
			return nil, lossErr("GET %s/api/v1/jobs/%s: bad status body: %v", w.url, st.ID, decodeErr)
		}
	}
	switch st.State {
	case StateDone:
		return f.fetchJobResult(ctx, w, st.ID, cell)
	case StateCanceled:
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Canceled by someone else (e.g. the worker draining): the work is
		// recoverable elsewhere.
		return nil, lossErr("worker %s canceled job %s: %s", w.url, st.ID, st.Error)
	default: // StateFailed: deterministic — it would fail on any worker
		return nil, &cellError{err: fmt.Errorf("cell %d (%s) failed on %s: %s", cell.Index, cell.Key, w.url, st.Error), kind: cellErrFatal}
	}
}

func (f *fleetExecutor) fetchJobResult(ctx context.Context, w *fleetWorker, jobID string, cell *SweepCell) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/api/v1/jobs/"+jobID+"/result", nil)
	if err != nil {
		return nil, lossErr("GET %s/api/v1/jobs/%s/result: %v", w.url, jobID, err)
	}
	resp, err := f.opts.HTTPClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, lossErr("GET %s/api/v1/jobs/%s/result: %v", w.url, jobID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, lossErr("GET %s/api/v1/jobs/%s/result: %s", w.url, jobID, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, lossErr("GET %s/api/v1/jobs/%s/result: %v", w.url, jobID, err)
	}
	if got, err := cellResultKey(body); err != nil || got != cell.Key {
		return nil, &cellError{err: fmt.Errorf("cell %d: worker %s returned result for key %q, want %q", cell.Index, w.url, got, cell.Key), kind: cellErrFatal}
	}
	return body, nil
}

// cellResultKey extracts the canonical key a result document claims, so
// the coordinator can verify a worker returned the right cell.
func cellResultKey(body []byte) (string, error) {
	var doc struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return "", err
	}
	return doc.Key, nil
}
