package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rcast/internal/core"
	"rcast/internal/scenario"
)

// testWorker is one in-process fleet worker: a real serve.Server behind a
// real HTTP listener.
type testWorker struct {
	s  *Server
	ts *httptest.Server
}

// startFleet boots n in-process workers and a coordinator over them.
// Worker opts are tuned for tests (1 executor each, tight polling).
func startFleet(t *testing.T, n int, fleet FleetOptions) (*Server, []*testWorker) {
	t.Helper()
	var workers []*testWorker
	for i := 0; i < n; i++ {
		ws := New(Options{Workers: 1, QueueDepth: 8})
		ts := httptest.NewServer(ws.Handler())
		workers = append(workers, &testWorker{s: ws, ts: ts})
		fleet.Workers = append(fleet.Workers, ts.URL)
	}
	if fleet.PollInterval == 0 {
		fleet.PollInterval = 5 * time.Millisecond
	}
	if fleet.RetryBackoff == 0 {
		fleet.RetryBackoff = 10 * time.Millisecond
	}
	coord, err := NewCoordinator(Options{Workers: 2, QueueDepth: 8}, fleet)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(func() {
		shutdownServer(t, coord)
		for _, w := range workers {
			w.ts.Close()
			// Stubbed worker runs may be parked until force-cancel, so a
			// short drain window with the error ignored is the right call.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = w.s.Shutdown(ctx)
			cancel()
		}
	})
	return coord, workers
}

// serialSweepDoc computes the sweep's aggregate document the serial CLI
// way: one direct engine run per cell, no server in the loop.
func serialSweepDoc(t *testing.T, req SweepRequest) []byte {
	t.Helper()
	cells, err := req.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	byKey := make(map[string][]byte)
	results := make([][]byte, len(cells))
	for i, c := range cells {
		if body, ok := byKey[c.Key]; ok {
			results[i] = body
			continue
		}
		cfg, reps, err := c.Req.Config()
		if err != nil {
			t.Fatalf("cell %d Config: %v", i, err)
		}
		agg, err := scenario.RunReplicationsContext(context.Background(), cfg, reps, 1)
		if err != nil {
			t.Fatalf("cell %d direct run: %v", i, err)
		}
		body, err := MarshalResult(c.Key, reps, agg)
		if err != nil {
			t.Fatalf("cell %d MarshalResult: %v", i, err)
		}
		byKey[c.Key] = body
		results[i] = body
	}
	doc, err := MarshalSweepResult(SweepKey(cells), cells, results)
	if err != nil {
		t.Fatalf("MarshalSweepResult: %v", err)
	}
	return doc
}

// TestFleetSweepByteIdenticalToSerial is the determinism proof for the

// diskRuns sums a worker's executed-run counter across every registered
// overhearing policy (the sweeps here span schemes with different default
// policies, so no single label pair sees all runs).
func diskRuns(s *Server) uint64 {
	var n uint64
	for _, p := range core.PolicyNames() {
		n += s.mRuns.Value("disk", p)
	}
	return n
}

// fleet: the paper's scheme suite plus ablation-style fault axes, run as
// one sweep across a simulated 8-worker fleet, must produce a result
// document byte-identical to computing every cell serially through the
// direct engine path (what rcast-sim/rcast-bench do) — regardless of which
// worker ran which cell, in what order, or how dispatch interleaved.
func TestFleetSweepByteIdenticalToSerial(t *testing.T) {
	// All five paper schemes × {mobile, static} × {no faults, crash} at
	// quick scale: 20 cells.
	req := SweepRequest{
		Schemes:      []string{"802.11", "PSM", "PSM-no-overhear", "ODPM", "Rcast"},
		PausesSec:    []float64{0, -1},
		FaultPresets: []string{"", "crash"},
		Nodes:        12,
		Connections:  3,
		DurationSec:  10,
		Reps:         1,
	}
	coord, workers := startFleet(t, 8, FleetOptions{})

	sw, out, err := coord.SubmitSweep(req)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	st := waitSweepTerminal(t, sw)
	if st.State != StateDone {
		t.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}
	if st.Completed != 20 {
		t.Fatalf("completed = %d, want 20", st.Completed)
	}

	want := serialSweepDoc(t, req)
	if string(sw.Result()) != string(want) {
		t.Fatalf("fleet sweep diverges from serial path\nfleet:  %.200s...\nserial: %.200s...", sw.Result(), want)
	}

	// Fleet metrics: every unique cell computed somewhere, all workers up.
	if got := coord.mFleetCells.Value(CellSourceComputed); got != 20 {
		t.Fatalf("fleet computed counter = %d, want 20", got)
	}
	fe := coord.sweepExec.(*fleetExecutor)
	for _, w := range workers {
		if fe.mWorkerUp.Value(w.ts.URL) != 1 {
			t.Fatalf("worker %s not reported up", w.ts.URL)
		}
	}
	// The dispatch spread work: at least two workers actually ran jobs
	// (with 20 cells over 8 single-executor workers this cannot collapse
	// onto one unless stealing is broken).
	busy := 0
	for _, w := range workers {
		if diskRuns(w.s) > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d workers executed cells; work stealing not spreading", busy)
	}

	// The same sweep through a purely local server is also identical.
	local := New(Options{Workers: 4, QueueDepth: 8})
	defer shutdownServer(t, local)
	lsw, out, err := local.SubmitSweep(req)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("local submit: out=%v err=%v", out, err)
	}
	lst := waitSweepTerminal(t, lsw)
	if lst.State != StateDone {
		t.Fatalf("local sweep ended %s: %s", lst.State, lst.Error)
	}
	if string(lsw.Result()) != string(want) {
		t.Fatal("local sweep diverges from serial path")
	}
}

// TestFleetNamedPolicySweepByteIdenticalToSerial: a sweep over the new
// policy and tx-power axes through a 2-worker fleet produces the result
// document byte-identical to the serial direct-engine path.
func TestFleetNamedPolicySweepByteIdenticalToSerial(t *testing.T) {
	// {PSM, Rcast} × {scheme default, battery, mobility} × {-3 dB, nominal}
	// at quick scale: 12 cells.
	req := SweepRequest{
		Schemes:     []string{"PSM", "Rcast"},
		Policies:    []string{"", "battery", "mobility"},
		TxPowersDBm: []float64{-3, 0},
		Nodes:       12,
		Connections: 3,
		DurationSec: 10,
		Static:      true,
		Reps:        1,
	}
	coord, _ := startFleet(t, 2, FleetOptions{})

	sw, out, err := coord.SubmitSweep(req)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	st := waitSweepTerminal(t, sw)
	if st.State != StateDone {
		t.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}
	if st.Completed != 12 {
		t.Fatalf("completed = %d, want 12", st.Completed)
	}
	want := serialSweepDoc(t, req)
	if string(sw.Result()) != string(want) {
		t.Fatalf("fleet named-policy sweep diverges from serial path\nfleet:  %.200s...\nserial: %.200s...", sw.Result(), want)
	}
}

// TestFleetWorkerKilledMidCell: a worker dies while executing a cell; the
// coordinator must mark it down, re-dispatch the cell to a surviving
// worker, and still produce the byte-identical document.
func TestFleetWorkerKilledMidCell(t *testing.T) {
	req := SweepRequest{
		Schemes:     []string{"802.11", "Rcast"},
		PausesSec:   []float64{0, -1},
		Nodes:       12,
		Connections: 3,
		DurationSec: 10,
		Reps:        1,
	}
	coord, workers := startFleet(t, 2, FleetOptions{MaxRetries: 4})
	victim, survivor := workers[0], workers[1]

	// The victim's engine parks forever (until its context dies), so any
	// cell dispatched to it is "mid-execution" until we kill the worker.
	started := make(chan struct{}, 8)
	victim.s.runFn = func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, fmt.Errorf("stub: %w", errors.Join(scenario.ErrCanceled, context.Cause(ctx)))
	}

	sw, out, err := coord.SubmitSweep(req)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	// Wait until the victim is actually executing a cell, then kill it:
	// drop open connections and stop listening.
	select {
	case <-started:
	case <-time.After(20 * time.Second):
		t.Fatal("victim never received a cell")
	}
	victim.ts.CloseClientConnections()
	victim.ts.Close()

	st := waitSweepTerminal(t, sw)
	if st.State != StateDone {
		t.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}
	if st.Retries == 0 {
		t.Fatal("sweep completed without recording the retry")
	}
	if coord.mFleetRetries.Value() == 0 {
		t.Fatal("fleet retry counter not incremented")
	}
	fe := coord.sweepExec.(*fleetExecutor)
	if fe.mWorkerUp.Value(victim.ts.URL) != 0 {
		t.Fatal("killed worker still reported up")
	}
	if fe.mWorkerUp.Value(survivor.ts.URL) != 1 {
		t.Fatal("surviving worker reported down")
	}

	// Byte identity must hold even after the mid-cell loss and retry.
	want := serialSweepDoc(t, req)
	if string(sw.Result()) != string(want) {
		t.Fatal("post-retry sweep diverges from serial path")
	}

	// Every completed cell must have been supplied by the survivor.
	detail := sw.detailStatus()
	for _, cs := range detail.CellStates {
		if cs.Worker == victim.ts.URL {
			t.Fatalf("cell %d credited to the killed worker", cs.Index)
		}
	}
}

// TestFleetAllWorkersDown: with every worker unreachable the sweep must
// fail with a clear terminal error, quickly, instead of hanging.
func TestFleetAllWorkersDown(t *testing.T) {
	dead1 := httptest.NewServer(nil)
	dead2 := httptest.NewServer(nil)
	url1, url2 := dead1.URL, dead2.URL
	dead1.Close()
	dead2.Close()

	coord, err := NewCoordinator(Options{Workers: 2, QueueDepth: 8}, FleetOptions{
		Workers:      []string{url1, url2},
		MaxRetries:   2,
		RetryBackoff: 5 * time.Millisecond,
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer shutdownServer(t, coord)

	sw, out, err := coord.SubmitSweep(quickSweep())
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for !sw.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("sweep hung with all workers down")
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := sw.status()
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "all fleet workers down") {
		t.Fatalf("terminal error %q does not name the failure", st.Error)
	}
}

// TestFleetCoordinatorDrainInFlightSweep: a graceful coordinator Shutdown
// lets an in-flight sweep run to completion; a forced one cancels it with
// the shutdown cause.
func TestFleetCoordinatorDrainInFlightSweep(t *testing.T) {
	coord, workers := startFleet(t, 2, FleetOptions{})
	release := make(chan struct{})
	for _, w := range workers {
		ws := w.s
		base := ws.runFn
		ws.runFn = func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error) {
			select {
			case <-release:
				return base(ctx, cfg, reps, workers)
			case <-ctx.Done():
				return nil, fmt.Errorf("stub: %w", errors.Join(scenario.ErrCanceled, context.Cause(ctx)))
			}
		}
	}

	sw, out, err := coord.SubmitSweep(quickSweep())
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sw.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Graceful drain: admitted sweeps finish, new ones are rejected.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		done <- coord.Shutdown(ctx)
	}()
	for !coord.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, o, _ := coord.SubmitSweep(quickSweep()); o != OutcomeDraining {
		t.Fatalf("submit while draining: %v, want OutcomeDraining", o)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := sw.status()
	if st.State != StateDone {
		t.Fatalf("in-flight sweep after drain = %s (%s)", st.State, st.Error)
	}
}

// TestFleetCoordinatorForcedShutdownCancelsSweep: an expired drain
// deadline force-cancels the in-flight sweep with the shutdown cause.
func TestFleetCoordinatorForcedShutdownCancelsSweep(t *testing.T) {
	coord, workers := startFleet(t, 2, FleetOptions{})
	for _, w := range workers {
		ws := w.s
		ws.runFn = func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error) {
			<-ctx.Done()
			return nil, fmt.Errorf("stub: %w", errors.Join(scenario.ErrCanceled, context.Cause(ctx)))
		}
	}
	sw, out, err := coord.SubmitSweep(quickSweep())
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sw.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := coord.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want deadline exceeded", err)
	}
	st := waitSweepTerminal(t, sw)
	if st.State != StateCanceled {
		t.Fatalf("state after forced shutdown = %s (%s)", st.State, st.Error)
	}
	if st.Error != "server shutting down" {
		t.Fatalf("forced-shutdown terminal message = %q", st.Error)
	}
}

// TestFleetPeerCacheFill: a cell already cached on some worker is served
// through the HEAD-probe peer path without recomputation anywhere.
func TestFleetPeerCacheFill(t *testing.T) {
	coord, workers := startFleet(t, 2, FleetOptions{})

	// Pre-warm worker 1 with every cell of the sweep via its jobs API.
	req := quickSweep()
	cells, err := req.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	warm := workers[1].s
	for _, c := range cells {
		job, out, err := warm.Submit(c.Req)
		if err != nil || out != OutcomeAccepted {
			t.Fatalf("warm submit: out=%v err=%v", out, err)
		}
		if st := waitTerminal(t, job); st.State != StateDone {
			t.Fatalf("warm job ended %s: %s", st.State, st.Error)
		}
	}
	runsBefore := diskRuns(workers[0].s) + diskRuns(workers[1].s)

	sw, out, err := coord.SubmitSweep(req)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	st := waitSweepTerminal(t, sw)
	if st.State != StateDone {
		t.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}
	if st.PeerHits != 4 {
		t.Fatalf("peer hits = %d, want 4", st.PeerHits)
	}
	if got := coord.mFleetCells.Value(CellSourcePeerCache); got != 4 {
		t.Fatalf("fleet peer_cache counter = %d, want 4", got)
	}
	after := diskRuns(workers[0].s) + diskRuns(workers[1].s)
	if after != runsBefore {
		t.Fatalf("peer-cached sweep re-executed cells: runs %d -> %d", runsBefore, after)
	}
	if string(sw.Result()) != string(serialSweepDoc(t, req)) {
		t.Fatal("peer-filled sweep diverges from serial path")
	}
}
