package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the daemon's HTTP API:
//
//	POST /api/v1/jobs             submit a job (202; 200 on cache hit)
//	GET  /api/v1/jobs             list job statuses
//	GET  /api/v1/jobs/{id}        poll one job's status
//	GET  /api/v1/jobs/{id}/result fetch the stored result bytes
//	GET  /api/v1/jobs/{id}/trace  fetch the NDJSON trace artifact (traced jobs)
//	GET  /api/v1/jobs/{id}/events live status stream (server-sent events)
//	POST /api/v1/jobs/{id}/cancel request cancellation
//	POST /api/v1/sweeps             submit a parameter-grid sweep (202; 200 on cache hit)
//	GET  /api/v1/sweeps             list sweep statuses
//	GET  /api/v1/sweeps/{id}        poll one sweep (includes per-cell states)
//	GET  /api/v1/sweeps/{id}/result fetch the aggregate sweep document
//	GET  /api/v1/sweeps/{id}/events live per-cell completion stream (SSE)
//	POST /api/v1/sweeps/{id}/cancel request sweep cancellation
//	GET  /api/v1/results/{key}      raw cached result bytes by canonical key
//	                                (HEAD probes existence; used for fleet
//	                                peer-cache fills)
//	GET  /api/v1/traces/summary     per-scheme trace-event tallies folded
//	                                from every traced job (live)
//	GET  /healthz                 liveness (503 while draining)
//	GET  /metrics                 Prometheus text exposition
//	     /debug/pprof/...         runtime profiling
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /api/v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /api/v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /api/v1/sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/result", s.handleSweepResult)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/events", s.handleSweepEvents)
	mux.HandleFunc("POST /api/v1/sweeps/{id}/cancel", s.handleSweepCancel)
	mux.HandleFunc("GET /api/v1/results/{key}", s.handleResultByKey)
	mux.HandleFunc("GET /api/v1/traces/summary", s.handleTracesSummary)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// errorBody is the uniform JSON error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSeconds renders a Retry-After hint: whole seconds, rounded
// up, never below 1. Truncation used to turn a sub-second hint into
// "Retry-After: 0", which well-behaved clients read as "retry
// immediately" — the opposite of backpressure.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := ParseJobRequest(r.Body)
	if err != nil {
		s.mRejected.Inc("bad_request")
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, outcome, err := s.Submit(req)
	switch outcome {
	case OutcomeInvalid:
		writeError(w, http.StatusBadRequest, "%v", err)
	case OutcomeQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "job queue full (capacity %d); retry later", cap(s.queue))
	case OutcomeDraining:
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
	case OutcomeCacheHit:
		writeJSON(w, http.StatusOK, job.status())
	default: // OutcomeAccepted, OutcomeCoalesced
		writeJSON(w, http.StatusAccepted, job.status())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statuses())
}

// jobFromPath resolves the {id} wildcard, answering 404 itself on a miss.
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return job, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.jobFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, job.status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	st := job.status()
	switch {
	case !st.State.Terminal():
		writeError(w, http.StatusConflict, "job %s is %s; result not ready", job.ID, st.State)
	case st.State != StateDone:
		writeError(w, http.StatusConflict, "job %s is %s: %s", job.ID, st.State, st.Error)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Rcast-Key", job.Key)
		if st.CacheHit {
			w.Header().Set("X-Rcast-Cache", "hit")
		} else {
			w.Header().Set("X-Rcast-Cache", "miss")
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(job.Result())
	}
}

// handleTrace serves the packet-lifecycle trace artifact of a traced,
// completed job as NDJSON.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if !job.TraceRequested() {
		writeError(w, http.StatusNotFound, "job %s was not submitted with trace=true", job.ID)
		return
	}
	st := job.status()
	data, captured := job.Trace()
	switch {
	case !st.State.Terminal():
		writeError(w, http.StatusConflict, "job %s is %s; trace not ready", job.ID, st.State)
	case !captured:
		// Terminal but never executed (e.g. canceled while queued): there
		// is no artifact, partial or otherwise.
		writeError(w, http.StatusConflict, "job %s is %s and never executed: %s", job.ID, st.State, st.Error)
	default:
		// Failed, canceled and timed-out traced jobs serve their partial
		// trace — the run you most want to debug — flagged via header.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Rcast-Key", job.Key)
		if st.State != StateDone {
			w.Header().Set("X-Rcast-Trace", "partial")
		} else {
			w.Header().Set("X-Rcast-Trace", "complete")
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	}
}

// handleEvents streams status transitions as server-sent events: the
// current snapshot immediately, then every change, ending when the job
// reaches a terminal state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	ch, unsub := job.subscribe()
	defer unsub()
	for {
		select {
		case <-r.Context().Done():
			return
		case st := <-ch:
			data, err := json.Marshal(st)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: state\ndata: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
			if st.State.Terminal() {
				return
			}
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if !s.Cancel(job.ID) {
		writeError(w, http.StatusConflict, "job %s is %s; nothing to cancel", job.ID, job.State())
		return
	}
	writeJSON(w, http.StatusAccepted, job.status())
}

// healthBody is the /healthz payload.
type healthBody struct {
	Status        string `json:"status"` // "ok" or "draining"
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	JobsRunning   int64  `json:"jobs_running"`
	CacheEntries  int    `json:"cache_entries"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.QueueDepth()
	body := healthBody{
		Status:        "ok",
		QueueDepth:    depth,
		QueueCapacity: capacity,
		JobsRunning:   s.mRunning.Value(),
		CacheEntries:  s.cache.Len(),
	}
	code := http.StatusOK
	if s.Draining() {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.Write(w)
}
