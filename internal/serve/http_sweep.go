package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := ParseSweepRequest(r.Body)
	if err != nil {
		s.mRejected.Inc("bad_request")
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sw, outcome, err := s.SubmitSweep(req)
	switch outcome {
	case OutcomeInvalid:
		writeError(w, http.StatusBadRequest, "%v", err)
	case OutcomeQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "sweep intake full (%d sweeps in flight); retry later", s.opts.QueueDepth)
	case OutcomeDraining:
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting sweeps")
	case OutcomeCacheHit:
		writeJSON(w, http.StatusOK, sw.status())
	default: // OutcomeAccepted
		writeJSON(w, http.StatusAccepted, sw.status())
	}
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.SweepStatuses())
}

// sweepFromPath resolves the {id} wildcard, answering 404 itself on a miss.
func (s *Server) sweepFromPath(w http.ResponseWriter, r *http.Request) (*Sweep, bool) {
	id := r.PathValue("id")
	sw, ok := s.Sweep(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", id)
		return nil, false
	}
	return sw, true
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	if sw, ok := s.sweepFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, sw.detailStatus())
	}
}

func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepFromPath(w, r)
	if !ok {
		return
	}
	st := sw.status()
	switch {
	case !st.State.Terminal():
		writeError(w, http.StatusConflict, "sweep %s is %s; result not ready", sw.ID, st.State)
	case st.State != StateDone:
		writeError(w, http.StatusConflict, "sweep %s is %s: %s", sw.ID, st.State, st.Error)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Rcast-Key", sw.Key)
		if st.CacheHit {
			w.Header().Set("X-Rcast-Cache", "hit")
		} else {
			w.Header().Set("X-Rcast-Cache", "miss")
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(sw.Result())
	}
}

// handleSweepEvents streams sweep progress as server-sent events: the
// current snapshot immediately, a "cell" event per completed cell, and a
// "sweep" event on every lifecycle transition, ending when the sweep is
// terminal or the client disconnects.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepFromPath(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	ch, unsub := sw.subscribe()
	defer unsub()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return
			}
			fl.Flush()
			if ev.Type == "sweep" && ev.Sweep.State.Terminal() {
				return
			}
		}
	}
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepFromPath(w, r)
	if !ok {
		return
	}
	if !s.CancelSweep(sw.ID) {
		writeError(w, http.StatusConflict, "sweep %s is %s; nothing to cancel", sw.ID, sw.State())
		return
	}
	writeJSON(w, http.StatusAccepted, sw.status())
}

// handleResultByKey serves raw cached result bytes by canonical key. A
// GET registration also answers HEAD, which is the fleet's cheap
// peer-cache probe: a coordinator HEADs its workers before computing a
// cell, and any 200 means the worker can serve the bytes immediately.
func (s *Server) handleResultByKey(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, ok := s.cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for key %q", key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Rcast-Key", key)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write(body)
	}
}
