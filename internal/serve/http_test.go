package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rcast/internal/scenario"
	"rcast/internal/trace"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		shutdownServer(t, s)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decode submit response %q: %v", raw, err)
		}
	}
	return resp, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status: %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

func waitHTTPTerminal(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not terminate", id)
	return Status{}
}

const quickBody = `{"scheme":"Rcast","nodes":12,"connections":3,"duration_sec":10,"static":true,"reps":1}`

func TestHTTPSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})

	resp, st := postJob(t, ts, quickBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if st.ID == "" || len(st.Key) != 64 {
		t.Fatalf("submit response %+v", st)
	}

	// Result before completion may 409; after terminal it must be 200.
	final := waitHTTPTerminal(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	resp2, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET result status = %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Rcast-Key"); got != st.Key {
		t.Fatalf("result key header %q, want %q", got, st.Key)
	}
	var jr JobResult
	if err := json.NewDecoder(resp2.Body).Decode(&jr); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if jr.V != scenario.CanonicalVersion || jr.Key != st.Key || jr.Reps != 1 || len(jr.Results) != 1 {
		t.Fatalf("result envelope v=%d key=%s reps=%d n=%d", jr.V, jr.Key, jr.Reps, len(jr.Results))
	}
	if jr.Summary.PDRMean <= 0 || jr.Summary.PDRMean > 1 {
		t.Fatalf("implausible PDR %v", jr.Summary.PDRMean)
	}

	// Listing contains the job.
	resp3, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatalf("GET list: %v", err)
	}
	defer resp3.Body.Close()
	var all []Status
	if err := json.NewDecoder(resp3.Body).Decode(&all); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(all) != 1 || all[0].ID != st.ID {
		t.Fatalf("list %+v", all)
	}
}

// TestHTTPParityWithCLIPath is the server-vs-CLI determinism pin over the
// real wire: bytes fetched from /result equal MarshalResult of a direct
// RunReplicationsContext call with the same resolved config.
func TestHTTPParityWithCLIPath(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8, SimWorkers: 2})

	body := `{"scheme":"ODPM","nodes":12,"connections":3,"duration_sec":10,"static":true,"reps":2,"seed":7}`
	resp, st := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if fin := waitHTTPTerminal(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("job ended %s: %s", fin.State, fin.Error)
	}
	resp2, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp2.Body.Close()
	got, _ := io.ReadAll(resp2.Body)

	req, err := ParseJobRequest(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ParseJobRequest: %v", err)
	}
	cfg, reps, err := req.Config()
	if err != nil {
		t.Fatalf("Config: %v", err)
	}
	agg, err := scenario.RunReplicationsContext(context.Background(), cfg, reps, 1)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	want, err := MarshalResult(st.Key, reps, agg)
	if err != nil {
		t.Fatalf("MarshalResult: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP result bytes diverge from CLI-path engine run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestHTTPNamedPolicyParityWithCLIPath is the same pin for a cell selected
// through the policy registry and the tx-power knob: a named policy at
// reduced power resolves to the identical engine run over the wire and on
// the CLI path.
func TestHTTPNamedPolicyParityWithCLIPath(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8, SimWorkers: 2})

	body := `{"scheme":"Rcast","policy":"battery","tx_power_dbm":-3,"battery_joules":3000,"nodes":12,"connections":3,"duration_sec":10,"static":true,"reps":2,"seed":7}`
	resp, st := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if fin := waitHTTPTerminal(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("job ended %s: %s", fin.State, fin.Error)
	}
	resp2, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp2.Body.Close()
	got, _ := io.ReadAll(resp2.Body)

	req, err := ParseJobRequest(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ParseJobRequest: %v", err)
	}
	cfg, reps, err := req.Config()
	if err != nil {
		t.Fatalf("Config: %v", err)
	}
	if cfg.PolicyName != "battery" || cfg.TxPowerDBm != -3 {
		t.Fatalf("request did not thread policy/tx-power: %+v", cfg)
	}
	agg, err := scenario.RunReplicationsContext(context.Background(), cfg, reps, 1)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	want, err := MarshalResult(st.Key, reps, agg)
	if err != nil {
		t.Fatalf("MarshalResult: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP result bytes diverge from CLI-path engine run (%d vs %d bytes)", len(got), len(want))
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})

	for name, body := range map[string]string{
		"malformed":     `{`,
		"unknown field": `{"scheme":"Rcast","warp":9}`,
		"bad scheme":    `{"scheme":"warp"}`,
		"bad routing":   `{"scheme":"Rcast","routing":"OSPF"}`,
		// Regression: a policy on the always-on scheme used to be silently
		// ignored; it must be a 400, not a cached lie.
		"policy on 802.11": `{"scheme":"802.11","policy":"rcast"}`,
		"unknown policy":   `{"scheme":"Rcast","policy":"fixed-0.50"}`,
		"bad tx power":     `{"scheme":"Rcast","tx_power_dbm":-99}`,
	} {
		resp, _ := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/api/v1/jobs/nope/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job status = %d", resp.StatusCode)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	release := make(chan struct{})
	s.runFn = func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error) {
		select {
		case <-release:
			return scenario.RunReplicationsContext(ctx, cfg, reps, workers)
		case <-ctx.Done():
			return nil, fmt.Errorf("stub: %w", scenario.ErrCanceled)
		}
	}
	defer close(release)

	_, stA := postJob(t, ts, quickBody)
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, stA.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("A never started")
		}
		time.Sleep(time.Millisecond)
	}
	respB, _ := postJob(t, ts, `{"scheme":"Rcast","nodes":12,"connections":3,"duration_sec":10,"static":true,"seed":91}`)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("B status = %d", respB.StatusCode)
	}
	respC, _ := postJob(t, ts, `{"scheme":"Rcast","nodes":12,"connections":3,"duration_sec":10,"static":true,"seed":92}`)
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("C status = %d, want 429", respC.StatusCode)
	}
	if got := respC.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
}

// TestRetryAfterSeconds pins the backpressure hint rendering: whole
// seconds, rounded up, never 0. A sub-second RetryAfter used to truncate
// to "Retry-After: 0", which clients read as "retry immediately".
func TestRetryAfterSeconds(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{500 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{1500 * time.Millisecond, 2},
		{3 * time.Second, 3},
		{90 * time.Second, 90},
	}
	for _, tt := range tests {
		if got := retryAfterSeconds(tt.d); got != tt.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

// TestHTTPSubSecondRetryAfterNeverZero exercises the clamp end to end: a
// server configured with a 100 ms hint must still answer 429 with a
// positive whole-second Retry-After.
func TestHTTPSubSecondRetryAfterNeverZero(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, RetryAfter: 100 * time.Millisecond})
	release := make(chan struct{})
	s.runFn = func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error) {
		select {
		case <-release:
			return scenario.RunReplicationsContext(ctx, cfg, reps, workers)
		case <-ctx.Done():
			return nil, fmt.Errorf("stub: %w", scenario.ErrCanceled)
		}
	}
	defer close(release)

	_, stA := postJob(t, ts, quickBody)
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, stA.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("A never started")
		}
		time.Sleep(time.Millisecond)
	}
	postJob(t, ts, `{"scheme":"Rcast","nodes":12,"connections":3,"duration_sec":10,"static":true,"seed":81}`)
	resp, _ := postJob(t, ts, `{"scheme":"Rcast","nodes":12,"connections":3,"duration_sec":10,"static":true,"seed":82}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
}

func TestHTTPCacheHitSecondSubmit(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	_, st := postJob(t, ts, quickBody)
	if fin := waitHTTPTerminal(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("first job ended %s", fin.State)
	}
	runs := s.mRuns.Value("disk", "rcast")
	resp2, st2 := postJob(t, ts, quickBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit submit status = %d, want 200", resp2.StatusCode)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("cache-hit status %+v", st2)
	}
	if s.mRuns.Value("disk", "rcast") != runs {
		t.Fatal("cache hit triggered a re-run")
	}
	respR, err := http.Get(ts.URL + "/api/v1/jobs/" + st2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer respR.Body.Close()
	if got := respR.Header.Get("X-Rcast-Cache"); got != "hit" {
		t.Fatalf("X-Rcast-Cache = %q, want hit", got)
	}
}

func TestHTTPCancelFlow(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})

	longBody := `{"scheme":"Rcast","nodes":30,"connections":5,"duration_sec":3600,"reps":1}`
	_, st := postJob(t, ts, longBody)
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, st.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	fin := waitHTTPTerminal(t, ts, st.ID)
	if fin.State != StateCanceled {
		t.Fatalf("state after cancel = %s (%s)", fin.State, fin.Error)
	}
	// Result of a canceled job is a conflict, not a 200.
	respR, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	respR.Body.Close()
	if respR.StatusCode != http.StatusConflict {
		t.Fatalf("result of canceled job = %d, want 409", respR.StatusCode)
	}
	// Cancel of a terminal job is a conflict too.
	resp2, err := http.Post(ts.URL+"/api/v1/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel status = %d, want 409", resp2.StatusCode)
	}
}

func TestHTTPEventsStreamToTerminal(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})

	_, st := postJob(t, ts, quickBody)
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var states []State
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Status
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("decode event %q: %v", line, err)
		}
		states = append(states, ev.State)
	}
	// The stream must close on its own after the terminal event.
	if len(states) == 0 {
		t.Fatal("no events received")
	}
	if last := states[len(states)-1]; last != StateDone {
		t.Fatalf("last streamed state = %s, want done (saw %v)", last, states)
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var hb healthBody
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if hb.Status != "ok" || hb.QueueCapacity != 2 {
		t.Fatalf("healthz body %+v", hb)
	}

	_, st := postJob(t, ts, quickBody)
	waitHTTPTerminal(t, ts, st.ID)

	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	page, _ := io.ReadAll(resp2.Body)
	for _, want := range []string{
		"rcast_serve_jobs_submitted_total 1",
		`rcast_serve_runs_total{channel="disk",policy="rcast"} 1`,
		`rcast_serve_jobs_total{state="done"} 1`,
		"rcast_serve_queue_capacity 2",
		"rcast_serve_run_seconds_count 1",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("metrics page missing %q", want)
		}
	}

	// pprof index answers.
	resp3, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d", resp3.StatusCode)
	}

	// Draining flips healthz to 503. Use a separate server so the
	// cleanup shutdown stays valid.
	s2 := New(Options{Workers: 1, QueueDepth: 1})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp4, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	if resp4.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp4.StatusCode)
	}
	_ = s
}

// TestHTTPTraceArtifact exercises the trace option end to end: a traced
// submission bypasses the result cache, executes, serves a parseable
// NDJSON artifact from /trace, and produces result bytes identical to
// the untraced run of the same config.
func TestHTTPTraceArtifact(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	// Warm the cache with the untraced twin.
	_, plain := postJob(t, ts, quickBody)
	if fin := waitHTTPTerminal(t, ts, plain.ID); fin.State != StateDone {
		t.Fatalf("untraced job ended %s: %s", fin.State, fin.Error)
	}
	plainResult := getBody(t, ts, "/api/v1/jobs/"+plain.ID+"/result", http.StatusOK)

	// The traced twin must execute despite the warm cache.
	tracedBody := strings.TrimSuffix(quickBody, "}") + `,"trace":true}`
	resp, traced := postJob(t, ts, tracedBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("traced submit status = %d, want 202 (must not be served from cache)", resp.StatusCode)
	}
	if traced.CacheHit || !traced.Trace {
		t.Fatalf("traced submit status %+v", traced)
	}
	if fin := waitHTTPTerminal(t, ts, traced.ID); fin.State != StateDone {
		t.Fatalf("traced job ended %s: %s", fin.State, fin.Error)
	}

	tracedResult := getBody(t, ts, "/api/v1/jobs/"+traced.ID+"/result", http.StatusOK)
	if !bytes.Equal(plainResult, tracedResult) {
		t.Fatal("traced run's result differs from the untraced run — tracing perturbed the simulation")
	}

	resp2, err := http.Get(ts.URL + "/api/v1/jobs/" + traced.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET trace status = %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("trace content type %q", got)
	}
	evs, err := trace.ReadEvents(resp2.Body)
	if err != nil {
		t.Fatalf("parse trace artifact: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("trace artifact is empty")
	}

	// The untraced job has no artifact to serve.
	getBody(t, ts, "/api/v1/jobs/"+plain.ID+"/trace", http.StatusNotFound)
}

// TestHTTPTraceArtifactSurvivesFailure pins the partial-trace fix: a
// traced job that dies on its deadline — exactly the run you most want to
// debug — must still serve the trace captured up to the failure. Pre-fix,
// execute only persisted traceBuf on the success path.
func TestHTTPTraceArtifactSurvivesFailure(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, DefaultTimeout: 500 * time.Millisecond})

	// A 1h-sim-time job cannot finish inside a 500 ms wall deadline, but
	// emits plenty of trace events before dying.
	body := `{"scheme":"Rcast","nodes":30,"connections":5,"duration_sec":3600,"reps":1,"trace":true}`
	resp, st := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	fin := waitHTTPTerminal(t, ts, st.ID)
	if fin.State != StateFailed || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("job ended %s (%s), want deadline failure", fin.State, fin.Error)
	}

	resp2, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp2.Body)
		t.Fatalf("GET trace of failed traced job = %d (%s), want 200 with the partial artifact", resp2.StatusCode, raw)
	}
	if got := resp2.Header.Get("X-Rcast-Trace"); got != "partial" {
		t.Fatalf("X-Rcast-Trace = %q, want partial", got)
	}
	evs, err := trace.ReadEvents(resp2.Body)
	if err != nil {
		t.Fatalf("parse partial trace: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("partial trace is empty")
	}

	// A traced job canceled while still queued never executed: no
	// artifact, partial or otherwise.
	s2, ts2 := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	s2.runFn = func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error) {
		select {
		case <-release:
			return scenario.RunReplicationsContext(ctx, cfg, reps, workers)
		case <-ctx.Done():
			return nil, fmt.Errorf("stub: %w", scenario.ErrCanceled)
		}
	}
	defer close(release)
	_, stA := postJob(t, ts2, quickBody) // occupies the worker
	tracedQueued := strings.TrimSuffix(quickBody, "}") + `,"seed":7,"trace":true}`
	_, stB := postJob(t, ts2, tracedQueued)
	respC, err := http.Post(ts2.URL+"/api/v1/jobs/"+stB.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	respC.Body.Close()
	getBody(t, ts2, "/api/v1/jobs/"+stB.ID+"/trace", http.StatusConflict)
	_ = stA
}

// getBody fetches a path and asserts the status code, returning the body.
func getBody(t *testing.T, ts *httptest.Server, path string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s status = %d, want %d (body %q)", path, resp.StatusCode, wantCode, body)
	}
	return body
}
