package serve

import (
	"context"
	"sync"
	"time"

	"rcast/internal/scenario"
)

// State is a job's lifecycle state.
type State string

// Job states. Queued and Running are transient; Done, Failed and
// Canceled are terminal. A cache-served job is born Done.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one admitted submission. All mutable fields are guarded by mu;
// the identity fields (ID, Key, cfg, reps, timeout) are set once at
// admission and never change.
type Job struct {
	ID  string
	Key string

	cfg            scenario.Config
	reps           int
	timeout        time.Duration
	traceRequested bool

	mu        sync.Mutex
	state     State
	err       string
	cacheHit  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    []byte
	traceData []byte // captured NDJSON trace (traced jobs only)
	// traceCaptured distinguishes "executed and captured a (possibly
	// empty or partial) trace" from "never ran": a traced job canceled
	// while still queued has nothing to serve.
	traceCaptured bool
	cancel        context.CancelCauseFunc
	subs          map[int]chan Status
	nextSub       int
}

// Status is the poll/SSE view of a job.
type Status struct {
	ID          string    `json:"id"`
	State       State     `json:"state"`
	Key         string    `json:"key"`
	Reps        int       `json:"reps"`
	CacheHit    bool      `json:"cache_hit"`
	Trace       bool      `json:"trace,omitempty"` // trace artifact requested
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// status snapshots the job under its lock.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() Status {
	return Status{
		ID:          j.ID,
		State:       j.state,
		Key:         j.Key,
		Reps:        j.reps,
		CacheHit:    j.cacheHit,
		Trace:       j.traceRequested,
		Error:       j.err,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the stored result bytes (nil unless StateDone).
func (j *Job) Result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// TraceRequested reports whether the submission asked for a trace
// artifact (identity field; set once at admission).
func (j *Job) TraceRequested() bool { return j.traceRequested }

// Trace returns the captured NDJSON trace bytes and whether a trace was
// captured at all. Failed, canceled and timed-out traced jobs keep their
// partial trace; only a traced job that never started executing reports
// false.
func (j *Job) Trace() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceData, j.traceCaptured
}

// setState transitions the job and broadcasts the new status to
// subscribers, refusing to leave a terminal state (so a finish can never
// overwrite a concurrent cancel, or vice versa). Extra mutations
// (timestamps, result, error) are applied under the same lock via apply.
// Reports whether the transition happened.
func (j *Job) setState(st State, apply func(*Job)) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.applyLocked(st, apply)
	j.mu.Unlock()
	return true
}

// tryTransition performs from→to atomically: it fails without side
// effects unless the job is exactly in state from.
func (j *Job) tryTransition(from, to State, apply func(*Job)) bool {
	j.mu.Lock()
	if j.state != from {
		j.mu.Unlock()
		return false
	}
	j.applyLocked(to, apply)
	j.mu.Unlock()
	return true
}

// applyLocked mutates and broadcasts; callers hold j.mu.
func (j *Job) applyLocked(st State, apply func(*Job)) {
	j.state = st
	if apply != nil {
		apply(j)
	}
	snap := j.statusLocked()
	for _, ch := range j.subs {
		select {
		case ch <- snap:
		default: // subscriber stalled; it will resync from the next event
		}
	}
}

// subscribe registers a status listener. The returned channel first
// carries the current snapshot, then every subsequent transition; the
// second return value unsubscribes. The channel is buffered well beyond
// the number of lifecycle transitions a job can make, so events are not
// normally dropped.
func (j *Job) subscribe() (<-chan Status, func()) {
	ch := make(chan Status, 8)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[int]chan Status)
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	ch <- j.statusLocked()
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, id)
		j.mu.Unlock()
	}
}
