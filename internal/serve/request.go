// Package serve turns the simulator into a long-lived
// simulation-as-a-service daemon: jobs arrive as JSON over HTTP, pass
// through a bounded admission queue with backpressure, execute on the
// existing scenario/experiments machinery with per-job deadlines and
// cooperative cancellation, and memoize their results in a
// content-addressed cache keyed by the canonical Config encoding
// (scenario.CanonicalKey), so identical submissions are served without
// recompute. Determinism is the contract throughout: a job executed
// through the server produces byte-identical results to the same config
// run through the CLI tools.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rcast/internal/fault"
	"rcast/internal/scenario"
	"rcast/internal/sim"
)

// JobRequest is the submission body for POST /api/v1/jobs: the
// paper-facing subset of scenario.Config, mirroring rcast-sim's flags.
// Zero-valued fields keep the paper defaults (scenario.PaperDefaults);
// fields whose zero value is itself meaningful are pointers. Unknown
// fields are rejected so a typo cannot silently submit — and cache — the
// wrong experiment.
type JobRequest struct {
	Scheme  string `json:"scheme"`
	Policy  string `json:"policy,omitempty"`  // overhearing policy; "" = scheme default
	Routing string `json:"routing,omitempty"` // "DSR" (default) or "AODV"

	Nodes       int     `json:"nodes,omitempty"`
	FieldW      float64 `json:"field_w,omitempty"`
	FieldH      float64 `json:"field_h,omitempty"`
	RangeM      float64 `json:"range_m,omitempty"`
	TxPowerDBm  float64 `json:"tx_power_dbm,omitempty"` // TX power offset; 0 = nominal
	Connections int     `json:"connections,omitempty"`
	PacketRate  float64 `json:"packet_rate,omitempty"`
	PacketBytes int     `json:"packet_bytes,omitempty"`

	DurationSec float64  `json:"duration_sec,omitempty"`
	PauseSec    *float64 `json:"pause_sec,omitempty"`
	Static      bool     `json:"static,omitempty"`
	MinSpeed    *float64 `json:"min_speed,omitempty"`
	MaxSpeed    *float64 `json:"max_speed,omitempty"`

	Channel       string  `json:"channel,omitempty"` // propagation model; "" = disk
	ShadowSigmaDB float64 `json:"shadow_sigma_db,omitempty"`
	Mobility      string  `json:"mobility,omitempty"` // movement model; "" = waypoint
	GroupSize     int     `json:"group_size,omitempty"`
	GroupRadiusM  float64 `json:"group_radius_m,omitempty"`

	Seed *int64 `json:"seed,omitempty"`
	Reps int    `json:"reps,omitempty"`

	GossipFanout  float64 `json:"gossip_fanout,omitempty"`
	BatteryJoules float64 `json:"battery_joules,omitempty"`
	Audit         bool    `json:"audit,omitempty"`
	FaultPreset   string  `json:"fault_preset,omitempty"`

	// TimeoutSec bounds the job's wall-clock execution; 0 selects the
	// server default. It is an execution parameter, not part of the
	// simulation, so it is deliberately excluded from the cache key.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`

	// Trace requests a packet-lifecycle trace artifact alongside the
	// result, downloadable from GET /api/v1/jobs/{id}/trace once the job
	// is done. Like TimeoutSec it is an execution parameter outside the
	// cache key, but a traced submission always executes — it bypasses
	// both the result cache and in-flight coalescing, because a cached or
	// coalesced answer would have no trace to download. Tracing does not
	// perturb the simulation: the result stays byte-identical and is
	// still stored in the cache for later untraced submissions.
	Trace bool `json:"trace,omitempty"`
}

// ParseJobRequest decodes a submission body strictly: unknown fields and
// trailing garbage are errors.
func ParseJobRequest(r io.Reader) (JobRequest, error) {
	var req JobRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("serve: bad job request: %w", err)
	}
	if dec.More() {
		return req, fmt.Errorf("serve: bad job request: trailing data after JSON object")
	}
	return req, nil
}

// Config resolves the request against the paper defaults and validates
// it, returning the runnable scenario.Config and the replication count.
func (jr JobRequest) Config() (scenario.Config, int, error) {
	cfg := scenario.PaperDefaults()
	scheme, err := scenario.ParseScheme(jr.Scheme)
	if err != nil {
		return cfg, 0, err
	}
	cfg.Scheme = scheme
	cfg.PolicyName = jr.Policy
	cfg.TxPowerDBm = jr.TxPowerDBm
	switch jr.Routing {
	case "", "DSR":
		cfg.Routing = scenario.RoutingDSR
	case "AODV":
		cfg.Routing = scenario.RoutingAODV
	default:
		return cfg, 0, fmt.Errorf("serve: unknown routing %q (want DSR or AODV)", jr.Routing)
	}
	if jr.Nodes != 0 {
		cfg.Nodes = jr.Nodes
	}
	if jr.FieldW != 0 {
		cfg.FieldW = jr.FieldW
	}
	if jr.FieldH != 0 {
		cfg.FieldH = jr.FieldH
	}
	if jr.RangeM != 0 {
		cfg.RangeM = jr.RangeM
	}
	if jr.Connections != 0 {
		cfg.Connections = jr.Connections
	}
	if jr.PacketRate != 0 {
		cfg.PacketRate = jr.PacketRate
	}
	if jr.PacketBytes != 0 {
		cfg.PacketBytes = jr.PacketBytes
	}
	if jr.DurationSec != 0 {
		cfg.Duration = sim.FromSeconds(jr.DurationSec)
	}
	if jr.PauseSec != nil {
		cfg.Pause = sim.FromSeconds(*jr.PauseSec)
	}
	if jr.MinSpeed != nil {
		cfg.MinSpeed = *jr.MinSpeed
	}
	if jr.MaxSpeed != nil {
		cfg.MaxSpeed = *jr.MaxSpeed
	}
	if jr.Static {
		cfg.Pause = cfg.Duration
	}
	cfg.Channel = jr.Channel
	cfg.ShadowSigmaDB = jr.ShadowSigmaDB
	cfg.Mobility = jr.Mobility
	cfg.GroupSize = jr.GroupSize
	cfg.GroupRadiusM = jr.GroupRadiusM
	if jr.Seed != nil {
		cfg.Seed = *jr.Seed
	}
	cfg.GossipFanout = jr.GossipFanout
	cfg.BatteryJoules = jr.BatteryJoules
	cfg.Audit = jr.Audit
	if jr.FaultPreset != "" {
		plan, err := fault.Preset(jr.FaultPreset)
		if err != nil {
			return cfg, 0, err
		}
		cfg.Faults = plan
	}
	reps := jr.Reps
	if reps < 1 {
		reps = 1
	}
	if jr.TimeoutSec < 0 {
		return cfg, 0, fmt.Errorf("serve: negative timeout_sec %v", jr.TimeoutSec)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, 0, err
	}
	return cfg, reps, nil
}

// Timeout resolves the job's execution deadline against the server's
// default and ceiling.
func (jr JobRequest) Timeout(def, max time.Duration) time.Duration {
	d := def
	if jr.TimeoutSec > 0 {
		d = time.Duration(jr.TimeoutSec * float64(time.Second))
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}
