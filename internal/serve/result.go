package serve

import (
	"encoding/json"

	"rcast/internal/scenario"
)

// Summary carries the across-replication headline metrics (mean and 95%
// CI half-width), mirroring what rcast-sim prints.
type Summary struct {
	PDRMean                float64 `json:"pdr_mean"`
	PDRCI95                float64 `json:"pdr_ci95"`
	TotalJoulesMean        float64 `json:"total_joules_mean"`
	TotalJoulesCI95        float64 `json:"total_joules_ci95"`
	EnergyVarianceMean     float64 `json:"energy_variance_mean"`
	AvgDelaySecMean        float64 `json:"avg_delay_sec_mean"`
	EnergyPerBitMean       float64 `json:"energy_per_bit_mean"`
	NormalizedOverheadMean float64 `json:"normalized_overhead_mean"`
}

// JobResult is the response body of GET /api/v1/jobs/{id}/result: the
// canonical-version stamp, the cache key the result is addressed by, the
// per-replication Results and their aggregate summary. Marshaling is
// deterministic (struct field order plus encoding/json's sorted map
// keys), so the stored bytes ARE the result identity: a cache hit replays
// them verbatim, and the parity contract with the CLI path is byte
// equality.
type JobResult struct {
	V                int                `json:"v"`
	Key              string             `json:"key"`
	Reps             int                `json:"reps"`
	Summary          Summary            `json:"summary"`
	MeanSortedJoules []float64          `json:"mean_sorted_joules"`
	Results          []*scenario.Result `json:"results"`
}

// MarshalResult renders an aggregate into the canonical result bytes.
func MarshalResult(key string, reps int, agg *scenario.Aggregate) ([]byte, error) {
	return json.Marshal(JobResult{
		V:    scenario.CanonicalVersion,
		Key:  key,
		Reps: reps,
		Summary: Summary{
			PDRMean:                agg.PDR.Mean(),
			PDRCI95:                agg.PDR.CI95(),
			TotalJoulesMean:        agg.TotalJoules.Mean(),
			TotalJoulesCI95:        agg.TotalJoules.CI95(),
			EnergyVarianceMean:     agg.EnergyVariance.Mean(),
			AvgDelaySecMean:        agg.AvgDelaySec.Mean(),
			EnergyPerBitMean:       agg.EnergyPerBit.Mean(),
			NormalizedOverheadMean: agg.NormalizedOverhead.Mean(),
		},
		MeanSortedJoules: agg.MeanSortedJoules,
		Results:          agg.Results,
	})
}
