package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rcast/internal/scenario"
)

// quickRequest is a fast-to-run submission: 12 static nodes, 5 sim
// seconds, one replication.
func quickRequest() JobRequest {
	return JobRequest{
		Scheme:      "Rcast",
		Nodes:       12,
		Connections: 3,
		DurationSec: 10,
		Static:      true,
		Reps:        1,
	}
}

// waitTerminal polls until the job leaves its transient states.
func waitTerminal(t *testing.T, job *Job) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := job.status()
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", job.ID)
	return Status{}
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestParseJobRequestStrict(t *testing.T) {
	if _, err := ParseJobRequest(strings.NewReader(`{"scheme":"Rcast","bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseJobRequest(strings.NewReader(`{"scheme":"Rcast"} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	req, err := ParseJobRequest(strings.NewReader(`{"scheme":"Rcast","nodes":30}`))
	if err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if req.Scheme != "Rcast" || req.Nodes != 30 {
		t.Fatalf("decoded %+v", req)
	}
}

func TestJobRequestConfig(t *testing.T) {
	cfg, reps, err := quickRequest().Config()
	if err != nil {
		t.Fatalf("Config: %v", err)
	}
	if cfg.Scheme != scenario.SchemeRcast || cfg.Nodes != 12 || reps != 1 {
		t.Fatalf("resolved cfg=%+v reps=%d", cfg, reps)
	}
	if cfg.Pause != cfg.Duration {
		t.Fatalf("static did not pin pause: pause=%v duration=%v", cfg.Pause, cfg.Duration)
	}
	def := scenario.PaperDefaults()
	if cfg.RangeM != def.RangeM || cfg.PacketRate != def.PacketRate {
		t.Fatal("unset fields did not keep paper defaults")
	}

	bad := quickRequest()
	bad.Scheme = "warp-drive"
	if _, _, err := bad.Config(); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	bad = quickRequest()
	bad.Routing = "OSPF"
	if _, _, err := bad.Config(); err == nil {
		t.Fatal("unknown routing accepted")
	}
	bad = quickRequest()
	bad.TimeoutSec = -1
	if _, _, err := bad.Config(); err == nil {
		t.Fatal("negative timeout accepted")
	}
	bad = quickRequest()
	bad.FaultPreset = "nope"
	if _, _, err := bad.Config(); err == nil {
		t.Fatal("unknown fault preset accepted")
	}
}

func TestJobRequestTimeout(t *testing.T) {
	var jr JobRequest
	if got := jr.Timeout(10*time.Minute, time.Hour); got != 10*time.Minute {
		t.Fatalf("default timeout = %v", got)
	}
	jr.TimeoutSec = 2.5
	if got := jr.Timeout(10*time.Minute, time.Hour); got != 2500*time.Millisecond {
		t.Fatalf("explicit timeout = %v", got)
	}
	jr.TimeoutSec = 7200
	if got := jr.Timeout(10*time.Minute, time.Hour); got != time.Hour {
		t.Fatalf("capped timeout = %v", got)
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatal("a lost")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// blockingServer returns a server whose runFn parks until release is
// closed (or the job context ends, which it reports as a canceled run).
func blockingServer(t *testing.T, opts Options) (*Server, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	s := New(opts)
	s.runFn = func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error) {
		select {
		case <-release:
			return scenario.RunReplicationsContext(ctx, cfg, reps, workers)
		case <-ctx.Done():
			return nil, fmt.Errorf("stub: %w", errors.Join(scenario.ErrCanceled, context.Cause(ctx)))
		}
	}
	return s, release
}

func TestQueueFullBackpressure(t *testing.T) {
	s, release := blockingServer(t, Options{Workers: 1, QueueDepth: 1})
	defer shutdownServer(t, s)

	reqA := quickRequest()
	jobA, out, err := s.Submit(reqA)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit A: out=%v err=%v", out, err)
	}
	// Wait until A occupies the worker, so B holds the single queue slot.
	deadline := time.Now().Add(10 * time.Second)
	for jobA.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("A never started")
		}
		time.Sleep(time.Millisecond)
	}
	reqB := quickRequest()
	reqB.Seed = ptr(int64(99))
	if _, outB, _ := s.Submit(reqB); outB != OutcomeAccepted {
		t.Fatalf("submit B: out=%v", outB)
	}
	reqC := quickRequest()
	reqC.Seed = ptr(int64(100))
	if _, outC, _ := s.Submit(reqC); outC != OutcomeQueueFull {
		t.Fatalf("submit C with full queue: out=%v, want OutcomeQueueFull", outC)
	}
	if got := s.mRejected.Value("queue_full"); got != 1 {
		t.Fatalf("rejected{queue_full} = %d", got)
	}
	close(release)
}

func ptr[T any](v T) *T { return &v }

func TestCoalesceIdenticalInFlight(t *testing.T) {
	s, release := blockingServer(t, Options{Workers: 1, QueueDepth: 4})
	defer shutdownServer(t, s)

	jobA, out, _ := s.Submit(quickRequest())
	if out != OutcomeAccepted {
		t.Fatalf("first submit: %v", out)
	}
	jobB, out, _ := s.Submit(quickRequest())
	if out != OutcomeCoalesced {
		t.Fatalf("identical submit: %v, want OutcomeCoalesced", out)
	}
	if jobA != jobB {
		t.Fatalf("coalesced submit returned a different job: %s vs %s", jobA.ID, jobB.ID)
	}
	close(release)
	st := waitTerminal(t, jobA)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if got := s.mCoalesced.Value(); got != 1 {
		t.Fatalf("coalesced counter = %d", got)
	}
}

func TestCacheHitSkipsExecution(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	defer shutdownServer(t, s)

	jobA, out, err := s.Submit(quickRequest())
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	st := waitTerminal(t, jobA)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	runsBefore := s.mRuns.Value("disk", "rcast")

	jobB, out, err := s.Submit(quickRequest())
	if err != nil || out != OutcomeCacheHit {
		t.Fatalf("resubmit: out=%v err=%v", out, err)
	}
	stB := jobB.status()
	if stB.State != StateDone || !stB.CacheHit {
		t.Fatalf("cache-hit job status %+v", stB)
	}
	if string(jobB.Result()) != string(jobA.Result()) {
		t.Fatal("cache served different bytes")
	}
	if got := s.mRuns.Value("disk", "rcast"); got != runsBefore {
		t.Fatalf("cache hit re-executed: runs %d -> %d", runsBefore, got)
	}
	if s.mCacheHits.Value() != 1 {
		t.Fatalf("cache hit counter = %d", s.mCacheHits.Value())
	}
	if jobA.Key != jobB.Key {
		t.Fatalf("keys differ: %s vs %s", jobA.Key, jobB.Key)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, release := blockingServer(t, Options{Workers: 1, QueueDepth: 2})
	defer shutdownServer(t, s)

	jobA, _, _ := s.Submit(quickRequest())
	deadline := time.Now().Add(10 * time.Second)
	for jobA.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("A never started")
		}
		time.Sleep(time.Millisecond)
	}
	reqB := quickRequest()
	reqB.Seed = ptr(int64(7))
	jobB, out, _ := s.Submit(reqB)
	if out != OutcomeAccepted {
		t.Fatalf("submit B: %v", out)
	}
	if !s.Cancel(jobB.ID) {
		t.Fatal("cancel of queued job refused")
	}
	if st := jobB.status(); st.State != StateCanceled {
		t.Fatalf("queued job after cancel: %s", st.State)
	}
	close(release)
	waitTerminal(t, jobA)
	// The worker must skip the canceled job, not run it.
	if s.mRuns.Value("disk", "rcast") != 1 {
		t.Fatalf("runs = %d, want 1 (canceled job must not execute)", s.mRuns.Value("disk", "rcast"))
	}
	if s.Cancel(jobB.ID) {
		t.Fatal("second cancel of terminal job succeeded")
	}
	if s.Cancel("job-does-not-exist") {
		t.Fatal("cancel of unknown job succeeded")
	}
}

func TestCancelRunningJobRealSimulation(t *testing.T) {
	// A genuinely long simulation (1h of sim time) canceled mid-flight
	// through the cooperative stop check.
	s := New(Options{Workers: 1, QueueDepth: 2})
	defer shutdownServer(t, s)

	req := quickRequest()
	req.DurationSec = 3600
	req.Nodes = 30
	req.Static = false
	job, out, err := s.Submit(req)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for job.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if !s.Cancel(job.ID) {
		t.Fatal("cancel refused")
	}
	st := waitTerminal(t, job)
	if st.State != StateCanceled {
		t.Fatalf("state after cancel = %s (err %q)", st.State, st.Error)
	}
	if job.Result() != nil {
		t.Fatal("canceled job stored a result")
	}
}

func TestJobDeadlineFails(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 2, DefaultTimeout: 50 * time.Millisecond})
	defer shutdownServer(t, s)

	req := quickRequest()
	req.DurationSec = 3600
	req.Nodes = 30
	req.Static = false
	job, out, err := s.Submit(req)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	st := waitTerminal(t, job)
	if st.State != StateFailed {
		t.Fatalf("state after deadline = %s", st.State)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("deadline failure message %q", st.Error)
	}
}

func TestShutdownDrains(t *testing.T) {
	s, release := blockingServer(t, Options{Workers: 1, QueueDepth: 2})

	jobA, _, _ := s.Submit(quickRequest())
	deadline := time.Now().Add(10 * time.Second)
	for jobA.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("A never started")
		}
		time.Sleep(time.Millisecond)
	}
	reqB := quickRequest()
	reqB.Seed = ptr(int64(42))
	jobB, out, _ := s.Submit(reqB)
	if out != OutcomeAccepted {
		t.Fatalf("submit B: %v", out)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Draining servers reject new work but finish admitted work.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, outDrain, _ := s.Submit(quickRequest()); outDrain != OutcomeDraining {
		t.Fatalf("submit while draining: %v, want OutcomeDraining", outDrain)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := jobA.status(); st.State != StateDone {
		t.Fatalf("running job after drain: %s (%s)", st.State, st.Error)
	}
	if st := jobB.status(); st.State != StateDone {
		t.Fatalf("queued job after drain: %s (%s)", st.State, st.Error)
	}
}

func TestShutdownForceCancelsOnExpiredContext(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 2})
	req := quickRequest()
	req.DurationSec = 3600
	req.Nodes = 30
	req.Static = false
	job, out, err := s.Submit(req)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for job.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want deadline exceeded", err)
	}
	if st := job.status(); !st.State.Terminal() {
		t.Fatalf("job not terminal after forced shutdown: %s", st.State)
	}
}

// TestShutdownForceCancelReportsShutdownCause pins the errShutdown
// branch of classifyRunError: a job force-canceled by an expired Shutdown
// must report "server shutting down", not the generic "context canceled".
// The pre-fix code built forceStop with context.WithCancel, so the cause
// never carried errShutdown and the branch was dead.
func TestShutdownForceCancelReportsShutdownCause(t *testing.T) {
	s, _ := blockingServer(t, Options{Workers: 1, QueueDepth: 2})
	job, out, err := s.Submit(quickRequest())
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for job.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want deadline exceeded", err)
	}
	st := waitTerminal(t, job)
	if st.State != StateCanceled {
		t.Fatalf("state after forced shutdown = %s (%s)", st.State, st.Error)
	}
	if st.Error != "server shutting down" {
		t.Fatalf("forced-shutdown terminal message = %q, want \"server shutting down\"", st.Error)
	}
}

// TestQueueFullDoesNotBurnJobIDs pins ID allocation to admission: a 429
// must not consume an ID, so the job admitted right after a rejection
// gets the next consecutive one. Pre-fix, Submit created the job (and
// incremented nextID) before the queue-full check.
func TestQueueFullDoesNotBurnJobIDs(t *testing.T) {
	s, release := blockingServer(t, Options{Workers: 1, QueueDepth: 1})
	defer shutdownServer(t, s)

	jobA, out, _ := s.Submit(quickRequest())
	if out != OutcomeAccepted {
		t.Fatalf("submit A: %v", out)
	}
	deadline := time.Now().Add(10 * time.Second)
	for jobA.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("A never started")
		}
		time.Sleep(time.Millisecond)
	}
	reqB := quickRequest()
	reqB.Seed = ptr(int64(201))
	jobB, out, _ := s.Submit(reqB)
	if out != OutcomeAccepted {
		t.Fatalf("submit B: %v", out)
	}
	reqC := quickRequest()
	reqC.Seed = ptr(int64(202))
	if _, o, _ := s.Submit(reqC); o != OutcomeQueueFull {
		t.Fatalf("submit C with full queue: %v, want OutcomeQueueFull", o)
	}
	close(release) // A finishes, the worker drains B
	waitTerminal(t, jobA)
	waitTerminal(t, jobB)
	reqD := quickRequest()
	reqD.Seed = ptr(int64(203))
	jobD, out, _ := s.Submit(reqD)
	if out != OutcomeAccepted {
		t.Fatalf("submit D: %v", out)
	}
	waitTerminal(t, jobD)
	if jobB.ID != "job-2" || jobD.ID != "job-3" {
		t.Fatalf("IDs B=%s D=%s, want job-2 and job-3 (the 429 must not burn an ID)", jobB.ID, jobD.ID)
	}
}

func TestConcurrentSubmitPollCancel(t *testing.T) {
	s := New(Options{Workers: 4, QueueDepth: 64})
	defer shutdownServer(t, s)

	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := quickRequest()
			req.DurationSec = 8
			req.Seed = ptr(int64(i % 5)) // some duplicates → coalesce/cache paths
			job, out, err := s.Submit(req)
			switch out {
			case OutcomeAccepted, OutcomeCoalesced, OutcomeCacheHit:
			default:
				t.Errorf("submit %d: out=%v err=%v", i, out, err)
				return
			}
			if i%4 == 0 {
				s.Cancel(job.ID) // racing cancel; any outcome is legal
			}
			deadline := time.Now().Add(30 * time.Second)
			for !job.State().Terminal() {
				if time.Now().After(deadline) {
					t.Errorf("job %s stuck in %s", job.ID, job.State())
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	for _, st := range s.Statuses() {
		if !st.State.Terminal() {
			t.Fatalf("job %s left in %s", st.ID, st.State)
		}
		if st.State == StateDone && len(st.Key) != 64 {
			t.Fatalf("job %s has malformed key %q", st.ID, st.Key)
		}
	}
}

func TestRunErrorFails(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 2})
	defer shutdownServer(t, s)
	s.runFn = func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error) {
		return nil, errors.New("synthetic engine failure")
	}
	job, out, err := s.Submit(quickRequest())
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	st := waitTerminal(t, job)
	if st.State != StateFailed || !strings.Contains(st.Error, "synthetic engine failure") {
		t.Fatalf("status %+v", st)
	}
}

// TestServerParityWithDirectRun pins the determinism contract: the bytes
// a job stores are identical to marshaling a direct engine run of the
// same config — the exact path rcast-bench and rcast-sim use.
func TestServerParityWithDirectRun(t *testing.T) {
	req := quickRequest()
	req.Reps = 2
	s := New(Options{Workers: 2, QueueDepth: 4, SimWorkers: 2})
	defer shutdownServer(t, s)

	job, out, err := s.Submit(req)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	st := waitTerminal(t, job)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	cfg, reps, err := req.Config()
	if err != nil {
		t.Fatalf("Config: %v", err)
	}
	agg, err := scenario.RunReplicationsContext(context.Background(), cfg, reps, 1)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	want, err := MarshalResult(job.Key, reps, agg)
	if err != nil {
		t.Fatalf("MarshalResult: %v", err)
	}
	if string(job.Result()) != string(want) {
		t.Fatalf("server result diverges from direct engine run\nserver: %.200s...\ndirect: %.200s...",
			job.Result(), want)
	}
}
