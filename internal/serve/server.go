package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"sync"

	"rcast/internal/metrics/promtext"
	"rcast/internal/scenario"
	"rcast/internal/trace"
)

// Cancellation causes, distinguishable via context.Cause so a user cancel,
// an expired job deadline and a server shutdown report different terminal
// states.
var (
	errCanceledByUser = errors.New("serve: job canceled by client")
	errShutdown       = errors.New("serve: server shutting down")
)

// Options configures a Server. The zero value selects the documented
// defaults.
type Options struct {
	// Workers is the number of concurrent job executors (default 2).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (default 16).
	// A submission arriving with the queue full is rejected with 429.
	QueueDepth int
	// SimWorkers is the per-job replication fan-out handed to
	// scenario.RunReplicationsContext (default 1: job-level parallelism
	// comes from Workers, and results are identical either way).
	SimWorkers int
	// CacheEntries bounds the content-addressed result cache (default 256).
	CacheEntries int
	// DefaultTimeout is the per-job deadline when the request does not
	// set one (default 10m); MaxTimeout caps requested deadlines
	// (default 1h).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.SimWorkers <= 0 {
		o.SimWorkers = 1
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 10 * time.Minute
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = time.Hour
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Outcome classifies what Submit did with a request.
type Outcome int

// Submit outcomes.
const (
	OutcomeAccepted  Outcome = iota // admitted to the queue
	OutcomeCacheHit                 // served from the result cache, no recompute
	OutcomeCoalesced                // identical job already queued/running; attached to it
	OutcomeQueueFull                // bounded queue full: backpressure (HTTP 429)
	OutcomeDraining                 // server is draining (HTTP 503)
	OutcomeInvalid                  // request failed validation (HTTP 400)
)

// Server is the simulation-as-a-service engine: admission, execution,
// memoization and observability. Create with New, attach Handler to an
// http.Server, stop with Shutdown.
type Server struct {
	opts  Options
	cache *resultCache

	// runFn executes one job's simulation batch; tests stub it to make
	// execution controllable. The default is the same call path
	// rcast-bench and rcast-sim use.
	runFn func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error)

	// sweepExec obtains every cell's result bytes for an admitted sweep:
	// localSweepExecutor on a plain server, fleetExecutor in coordinator
	// mode. Either way the bytes per cell are byte-identical.
	sweepExec sweepExecutor

	mu          sync.Mutex
	jobs        map[string]*Job
	order       []string        // submission order, for listing
	byKey       map[string]*Job // non-terminal jobs by cache key (coalescing)
	queue       chan *Job
	nextID      int
	sweeps      map[string]*Sweep
	sweepOrder  []string
	nextSweepID int
	draining    bool

	baseCtx   context.Context
	forceStop context.CancelCauseFunc
	wg        sync.WaitGroup

	reg           *promtext.Registry
	mSubmitted    *promtext.Counter
	mRuns         *promtext.CounterVec2
	mCacheHits    *promtext.Counter
	mCacheMisses  *promtext.Counter
	mCoalesced    *promtext.Counter
	mRejected     *promtext.CounterVec
	mJobsTerminal *promtext.CounterVec
	mRunning      *promtext.Gauge
	mRunSeconds   *promtext.Histogram

	mSweepsSubmitted *promtext.Counter
	mSweepsTerminal  *promtext.CounterVec
	mSweepsRunning   *promtext.Gauge
	mFleetCells      *promtext.CounterVec
	mFleetRetries    *promtext.Counter

	// traceTallies folds trace events from traced jobs into per-scheme
	// counters. Traced jobs emit into these live (via a trace.Multi
	// alongside the NDJSON buffer), so /api/v1/traces/summary and the
	// rcast_serve_trace_events metric reflect in-flight runs, not just
	// completed ones.
	traceMu      sync.Mutex
	traceTallies map[string]*trace.SyncCounter
}

// channelLabel renders a config's propagation model for the runs metric
// ("" normalizes to "disk", matching the canonical encoding).
func channelLabel(cfg scenario.Config) string {
	if cfg.Channel == "" {
		return "disk"
	}
	return cfg.Channel
}

// policyLabel renders a config's effective overhearing policy for the
// runs metric ("" resolves to the scheme default's name, matching the
// canonical encoding).
func policyLabel(cfg scenario.Config) string {
	return cfg.EffectivePolicyName()
}

// New creates a server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:   opts,
		cache:  newResultCache(opts.CacheEntries),
		jobs:   make(map[string]*Job),
		byKey:  make(map[string]*Job),
		queue:  make(chan *Job, opts.QueueDepth),
		sweeps: make(map[string]*Sweep),
		reg:    promtext.NewRegistry(),

		traceTallies: make(map[string]*trace.SyncCounter),
	}
	s.sweepExec = localSweepExecutor{s: s}
	s.runFn = func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error) {
		return scenario.RunReplicationsContext(ctx, cfg, reps, workers)
	}
	// WithCancelCause, not WithCancel: a force-stop must surface as
	// errShutdown through context.Cause, or classifyRunError reports the
	// generic "context canceled" instead of "server shutting down".
	s.baseCtx, s.forceStop = context.WithCancelCause(context.Background())

	s.mSubmitted = s.reg.NewCounter("rcast_serve_jobs_submitted_total", "Job submissions admitted (cache hits and coalesced submissions included).")
	s.mRuns = s.reg.NewCounterVec2("rcast_serve_runs_total", "Simulation batches actually executed, by propagation model and overhearing policy (cache hits never increment this).", "channel", "policy")
	s.mCacheHits = s.reg.NewCounter("rcast_serve_cache_hits_total", "Submissions served from the content-addressed result cache.")
	s.mCacheMisses = s.reg.NewCounter("rcast_serve_cache_misses_total", "Submissions that missed the result cache and were queued.")
	s.mCoalesced = s.reg.NewCounter("rcast_serve_jobs_coalesced_total", "Submissions attached to an identical in-flight job.")
	s.mRejected = s.reg.NewCounterVec("rcast_serve_rejected_total", "Rejected submissions by reason.", "reason")
	s.mJobsTerminal = s.reg.NewCounterVec("rcast_serve_jobs_total", "Jobs reaching a terminal state.", "state")
	s.mRunning = s.reg.NewGauge("rcast_serve_jobs_running", "Jobs currently executing.")
	s.mRunSeconds = s.reg.NewHistogram("rcast_serve_run_seconds", "Wall-clock latency of executed jobs.",
		[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300})
	s.reg.NewGaugeFunc("rcast_serve_queue_depth", "Jobs admitted but not yet running.", func() int64 {
		return int64(len(s.queue))
	})
	s.reg.NewGaugeFunc("rcast_serve_queue_capacity", "Bounded queue capacity.", func() int64 {
		return int64(cap(s.queue))
	})
	s.reg.NewGaugeFunc("rcast_serve_cache_entries", "Results held by the cache.", func() int64 {
		return int64(s.cache.Len())
	})
	s.mSweepsSubmitted = s.reg.NewCounter("rcast_serve_sweeps_submitted_total", "Sweep submissions admitted (whole-sweep cache hits included).")
	s.mSweepsTerminal = s.reg.NewCounterVec("rcast_serve_sweeps_total", "Sweeps reaching a terminal state.", "state")
	s.mSweepsRunning = s.reg.NewGauge("rcast_serve_sweeps_running", "Sweeps currently executing.")
	s.mFleetCells = s.reg.NewCounterVec("rcast_serve_fleet_cells_total", "Sweep cells resolved, by source (computed, local_cache, peer_cache).", "source")
	s.mFleetRetries = s.reg.NewCounter("rcast_serve_fleet_retries_total", "Sweep cells re-dispatched after a fleet worker was lost.")
	s.reg.NewGaugeFuncVec2("rcast_serve_trace_events", "Trace events observed across traced jobs, by scheme and event kind (updated live while jobs run).", "scheme", "kind", s.traceSamples)

	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry exposes the server's metrics registry (the /metrics page).
func (s *Server) Registry() *promtext.Registry { return s.reg }

// Submit validates, deduplicates and admits one job request. The error is
// non-nil only for OutcomeInvalid.
func (s *Server) Submit(req JobRequest) (*Job, Outcome, error) {
	cfg, reps, err := req.Config()
	if err != nil {
		s.mRejected.Inc("invalid")
		return nil, OutcomeInvalid, err
	}
	key, err := cfg.CanonicalKey(reps)
	if err != nil {
		s.mRejected.Inc("invalid")
		return nil, OutcomeInvalid, err
	}
	timeout := req.Timeout(s.opts.DefaultTimeout, s.opts.MaxTimeout)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.mRejected.Inc("draining")
		return nil, OutcomeDraining, nil
	}
	// A traced submission must actually execute to produce its trace
	// artifact, so it skips both the result cache and coalescing onto an
	// in-flight (untraced) twin. Its result is still cached afterwards.
	if !req.Trace {
		if cached, ok := s.cache.Get(key); ok {
			job := s.newJobLocked(key, cfg, reps, timeout)
			job.state = StateDone
			job.cacheHit = true
			job.result = cached
			job.finished = job.submitted
			s.registerLocked(job)
			s.mSubmitted.Inc()
			s.mCacheHits.Inc()
			s.mJobsTerminal.Inc(string(StateDone))
			return job, OutcomeCacheHit, nil
		}
		if prior, ok := s.byKey[key]; ok {
			s.mSubmitted.Inc()
			s.mCoalesced.Inc()
			return prior, OutcomeCoalesced, nil
		}
	}
	// Admission check BEFORE allocating the job ID: newJobLocked consumes
	// s.nextID, so creating the job first burned one ID per 429 and left
	// gaps in the sequence. Every send happens under s.mu and workers only
	// drain, so a length check here guarantees the send below cannot block.
	if len(s.queue) == cap(s.queue) {
		s.mRejected.Inc("queue_full")
		return nil, OutcomeQueueFull, nil
	}
	job := s.newJobLocked(key, cfg, reps, timeout)
	job.traceRequested = req.Trace
	job.state = StateQueued
	s.queue <- job
	s.registerLocked(job)
	if _, ok := s.byKey[key]; !ok {
		s.byKey[key] = job
	}
	s.mSubmitted.Inc()
	s.mCacheMisses.Inc()
	return job, OutcomeAccepted, nil
}

func (s *Server) newJobLocked(key string, cfg scenario.Config, reps int, timeout time.Duration) *Job {
	s.nextID++
	return &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		Key:       key,
		cfg:       cfg,
		reps:      reps,
		timeout:   timeout,
		submitted: time.Now().UTC(),
	}
}

func (s *Server) registerLocked(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Statuses snapshots every job in submission order.
func (s *Server) Statuses() []Status {
	s.mu.Lock()
	jobs := make([]*Job, len(s.order))
	for i, id := range s.order {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Cancel requests cancellation of a job. A queued job is marked canceled
// immediately (the worker skips it); a running job's context is canceled
// and the simulation stops at its next cooperative check. Returns false
// if the job is unknown or already terminal.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	now := time.Now().UTC()
	if job.tryTransition(StateQueued, StateCanceled, func(j *Job) {
		j.err = "canceled before start"
		j.finished = now
	}) {
		s.detachTerminal(job, StateCanceled)
		return true
	}
	job.mu.Lock()
	cancel := job.cancel
	running := job.state == StateRunning
	job.mu.Unlock()
	if running && cancel != nil {
		cancel(errCanceledByUser)
		return true
	}
	return false
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns (admitted-but-not-running, capacity).
func (s *Server) QueueDepth() (int, int) { return len(s.queue), cap(s.queue) }

// Shutdown drains the server: new submissions are rejected with
// OutcomeDraining, jobs already admitted (queued and running) execute to
// completion, and every job keeps a terminal status. If ctx expires
// first, running jobs are force-canceled (terminal state canceled,
// "server shutting down") and Shutdown returns ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.forceStop(errShutdown)
		<-done
		return ctx.Err()
	}
}

// worker executes queued jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.execute(job)
	}
}

// execute runs one job under its deadline and publishes the outcome.
func (s *Server) execute(job *Job) {
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	tctx, tcancel := context.WithTimeoutCause(ctx, job.timeout, context.DeadlineExceeded)
	defer tcancel()
	defer cancel(nil)

	if !job.tryTransition(StateQueued, StateRunning, func(j *Job) {
		j.started = time.Now().UTC()
		j.cancel = cancel
	}) {
		return // canceled while queued; already terminal
	}
	// A traced job runs a private cfg copy with an NDJSON sink attached;
	// job.cfg stays untouched (its canonical key was computed without a
	// sink, and tracing must not leak into identity). The sink forces the
	// replication fan-out serial inside RunReplicationsContext, and the
	// metrics it feeds are byte-identical to an untraced run.
	cfg := job.cfg
	var traceBuf *bytes.Buffer
	if job.traceRequested {
		traceBuf = &bytes.Buffer{}
		// The tally rides alongside the NDJSON buffer so the per-scheme
		// summary and the trace-events metric tick while the job runs.
		cfg.Trace = trace.Multi{trace.NewWriter(traceBuf), s.traceTally(cfg.Scheme.String())}
	}
	s.mRunning.Inc()
	start := time.Now()
	agg, err := s.runFn(tctx, cfg, job.reps, s.opts.SimWorkers)
	s.mRunSeconds.Observe(time.Since(start).Seconds())
	s.mRunning.Dec()
	s.mRuns.Inc(channelLabel(cfg), policyLabel(cfg))

	// Persist the trace BEFORE classifying the outcome: a traced job that
	// fails or hits its deadline is exactly the run its trace exists to
	// debug, and dropping the partial artifact on the error path lost it.
	if traceBuf != nil {
		job.mu.Lock()
		job.traceData = traceBuf.Bytes()
		job.traceCaptured = true
		job.mu.Unlock()
	}
	if err != nil {
		state, msg := classifyRunError(tctx, err)
		s.finishJob(job, state, msg, nil)
		return
	}
	body, err := MarshalResult(job.Key, job.reps, agg)
	if err != nil {
		s.finishJob(job, StateFailed, fmt.Sprintf("marshal result: %v", err), nil)
		return
	}
	s.cache.Put(job.Key, body)
	s.finishJob(job, StateDone, "", body)
}

// classifyRunError maps a simulation error to a terminal state: a client
// cancel and a server shutdown are "canceled", an expired deadline and
// everything else (validation, audit violations) are "failed".
func classifyRunError(ctx context.Context, err error) (State, string) {
	if errors.Is(err, scenario.ErrCanceled) {
		cause := context.Cause(ctx)
		switch {
		case errors.Is(cause, errCanceledByUser):
			return StateCanceled, "canceled by client"
		case errors.Is(cause, errShutdown):
			return StateCanceled, "server shutting down"
		case errors.Is(cause, context.DeadlineExceeded):
			return StateFailed, "job deadline exceeded"
		}
		return StateCanceled, cause.Error()
	}
	return StateFailed, err.Error()
}

// finishJob moves a job to a terminal state; a no-op if the job already
// reached one (e.g. a cancel raced the finish).
func (s *Server) finishJob(job *Job, state State, msg string, result []byte) {
	if !job.setState(state, func(j *Job) {
		j.err = msg
		j.result = result
		j.finished = time.Now().UTC()
		j.cancel = nil
	}) {
		return
	}
	s.detachTerminal(job, state)
}

// detachTerminal removes a now-terminal job from the coalescing index and
// bumps the terminal-state counter.
func (s *Server) detachTerminal(job *Job, state State) {
	s.mu.Lock()
	if s.byKey[job.Key] == job {
		delete(s.byKey, job.Key)
	}
	s.mu.Unlock()
	s.mJobsTerminal.Inc(string(state))
}
