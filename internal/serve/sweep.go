package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"rcast/internal/scenario"
)

// SweepRequest is the submission body for POST /api/v1/sweeps: a
// parameter grid (schemes × rates × pause times × fault presets × gossip
// fanouts × channels × mobilities × policies × tx powers) over a base
// configuration, expanded server-side into cells
// keyed by scenario.CanonicalKey. Axis fields are plural; every other
// field scopes the whole sweep and mirrors JobRequest. Unknown fields are
// rejected so a typo cannot silently sweep the wrong grid.
type SweepRequest struct {
	// Axes. Schemes is required; the rest are optional (an empty axis
	// keeps the base value for every cell). A negative pause means
	// "static" (pause pinned to the simulation duration).
	Schemes       []string  `json:"schemes"`
	Rates         []float64 `json:"rates,omitempty"`
	PausesSec     []float64 `json:"pauses_sec,omitempty"`
	FaultPresets  []string  `json:"fault_presets,omitempty"`
	GossipFanouts []float64 `json:"gossip_fanouts,omitempty"`
	Channels      []string  `json:"channels,omitempty"`
	Mobilities    []string  `json:"mobilities,omitempty"`
	Policies      []string  `json:"policies,omitempty"`
	TxPowersDBm   []float64 `json:"tx_powers_dbm,omitempty"`

	// Base configuration shared by every cell.
	Routing       string   `json:"routing,omitempty"`
	Nodes         int      `json:"nodes,omitempty"`
	FieldW        float64  `json:"field_w,omitempty"`
	FieldH        float64  `json:"field_h,omitempty"`
	RangeM        float64  `json:"range_m,omitempty"`
	Connections   int      `json:"connections,omitempty"`
	PacketBytes   int      `json:"packet_bytes,omitempty"`
	DurationSec   float64  `json:"duration_sec,omitempty"`
	Static        bool     `json:"static,omitempty"`
	MinSpeed      *float64 `json:"min_speed,omitempty"`
	MaxSpeed      *float64 `json:"max_speed,omitempty"`
	Seed          *int64   `json:"seed,omitempty"`
	Reps          int      `json:"reps,omitempty"`
	BatteryJoules float64  `json:"battery_joules,omitempty"`
	Audit         bool     `json:"audit,omitempty"`
	ShadowSigmaDB float64  `json:"shadow_sigma_db,omitempty"`
	GroupSize     int      `json:"group_size,omitempty"`
	GroupRadiusM  float64  `json:"group_radius_m,omitempty"`

	// TimeoutSec bounds each cell's execution, like JobRequest.TimeoutSec
	// bounds a job; it is outside every cache key.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// ParseSweepRequest decodes a sweep submission strictly: unknown fields
// and trailing garbage are errors.
func ParseSweepRequest(r io.Reader) (SweepRequest, error) {
	var req SweepRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("serve: bad sweep request: %w", err)
	}
	if dec.More() {
		return req, fmt.Errorf("serve: bad sweep request: trailing data after JSON object")
	}
	return req, nil
}

// SweepCell is one expanded cell of a sweep: the paper-facing request the
// fleet dispatches, the resolved config the local path runs, and the
// content-address both share with the plain jobs API.
type SweepCell struct {
	Index int
	Req   JobRequest
	Key   string

	cfg  scenario.Config
	reps int
}

// grid maps the request's axis fields onto scenario.Grid.
func (sr SweepRequest) grid() (scenario.Grid, error) {
	var g scenario.Grid
	if len(sr.Schemes) == 0 {
		return g, fmt.Errorf("serve: sweep has no schemes axis")
	}
	for _, name := range sr.Schemes {
		sch, err := scenario.ParseScheme(name)
		if err != nil {
			return g, err
		}
		g.Schemes = append(g.Schemes, sch)
	}
	g.Rates = sr.Rates
	g.PausesSec = sr.PausesSec
	g.FaultPresets = sr.FaultPresets
	g.GossipFanouts = sr.GossipFanouts
	g.Channels = sr.Channels
	g.Mobilities = sr.Mobilities
	g.Policies = sr.Policies
	g.TxPowersDBm = sr.TxPowersDBm
	return g, nil
}

// baseJobRequest returns the cell-independent part of each cell's job.
func (sr SweepRequest) baseJobRequest() JobRequest {
	return JobRequest{
		Routing:       sr.Routing,
		Nodes:         sr.Nodes,
		FieldW:        sr.FieldW,
		FieldH:        sr.FieldH,
		RangeM:        sr.RangeM,
		Connections:   sr.Connections,
		PacketBytes:   sr.PacketBytes,
		DurationSec:   sr.DurationSec,
		Static:        sr.Static,
		MinSpeed:      sr.MinSpeed,
		MaxSpeed:      sr.MaxSpeed,
		Seed:          sr.Seed,
		Reps:          sr.Reps,
		BatteryJoules: sr.BatteryJoules,
		Audit:         sr.Audit,
		ShadowSigmaDB: sr.ShadowSigmaDB,
		GroupSize:     sr.GroupSize,
		GroupRadiusM:  sr.GroupRadiusM,
		TimeoutSec:    sr.TimeoutSec,
	}
}

// Cells expands the sweep into its cells in canonical grid order, each
// validated and keyed by scenario.CanonicalKey — the same content address
// the jobs API and result cache use.
func (sr SweepRequest) Cells() ([]SweepCell, error) {
	g, err := sr.grid()
	if err != nil {
		return nil, err
	}
	pts, err := g.Points()
	if err != nil {
		return nil, err
	}
	cells := make([]SweepCell, 0, len(pts))
	for i, pt := range pts {
		req := sr.baseJobRequest()
		req.Scheme = pt.Scheme.String()
		if pt.HasRate {
			req.PacketRate = pt.Rate
		}
		if pt.HasPause {
			if pt.Static() {
				req.Static = true
				req.PauseSec = nil
			} else {
				req.Static = false
				req.PauseSec = ptrOf(pt.PauseSec)
			}
		}
		if pt.HasFault {
			req.FaultPreset = pt.FaultPreset
		}
		if pt.HasGossip {
			req.GossipFanout = pt.GossipFanout
		}
		if pt.HasChannel {
			req.Channel = pt.Channel
		}
		if pt.HasMobility {
			req.Mobility = pt.Mobility
		}
		if pt.HasPolicy {
			req.Policy = pt.Policy
		}
		if pt.HasTxPower {
			req.TxPowerDBm = pt.TxPowerDBm
		}
		cfg, reps, err := req.Config()
		if err != nil {
			return nil, fmt.Errorf("serve: sweep cell %d: %w", i, err)
		}
		key, err := cfg.CanonicalKey(reps)
		if err != nil {
			return nil, fmt.Errorf("serve: sweep cell %d: %w", i, err)
		}
		cells = append(cells, SweepCell{Index: i, Req: req, Key: key, cfg: cfg, reps: reps})
	}
	return cells, nil
}

func ptrOf[T any](v T) *T { return &v }

// SweepKey content-addresses a whole sweep: the hex SHA-256 over the
// canonical version stamp and every cell key in expansion order. Two
// sweeps with the same key produce byte-identical aggregate documents.
func SweepKey(cells []SweepCell) string {
	h := sha256.New()
	fmt.Fprintf(h, "sweep|v=%d", scenario.CanonicalVersion)
	for _, c := range cells {
		h.Write([]byte("|"))
		h.Write([]byte(c.Key))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cell sources: how a cell's result bytes were obtained.
const (
	CellSourceComputed  = "computed"    // executed (locally or on a fleet worker)
	CellSourceCache     = "local_cache" // coordinator/local result cache hit
	CellSourcePeerCache = "peer_cache"  // filled from a fleet worker's cache probe
)

// CellStatus is the per-cell view exposed by the sweep status API and the
// SSE stream.
type CellStatus struct {
	Index  int    `json:"index"`
	Key    string `json:"key"`
	State  State  `json:"state"`
	Source string `json:"source,omitempty"` // computed | local_cache | peer_cache
	Worker string `json:"worker,omitempty"` // fleet worker URL that supplied the cell
}

// Sweep is one admitted sweep: an expanded grid executing as a unit. All
// mutable state is guarded by mu.
type Sweep struct {
	ID  string
	Key string

	cells   []SweepCell
	timeout time.Duration

	mu        sync.Mutex
	state     State
	err       string
	cacheHit  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	cellStats []CellStatus
	completed int
	computed  int
	localHits int
	peerHits  int
	retries   int
	result    []byte
	cancel    context.CancelCauseFunc
	subs      map[int]chan SweepEvent
	nextSub   int
}

// SweepStatus is the poll/SSE view of a sweep. CellStates is populated on
// the detail endpoint and omitted from list/SSE snapshots.
type SweepStatus struct {
	ID          string       `json:"id"`
	State       State        `json:"state"`
	Key         string       `json:"key"`
	Cells       int          `json:"cells"`
	Completed   int          `json:"completed"`
	Computed    int          `json:"computed"`
	LocalHits   int          `json:"local_cache_hits"`
	PeerHits    int          `json:"peer_cache_hits"`
	Retries     int          `json:"retries"`
	CacheHit    bool         `json:"cache_hit"`
	Error       string       `json:"error,omitempty"`
	SubmittedAt time.Time    `json:"submitted_at"`
	StartedAt   time.Time    `json:"started_at,omitempty"`
	FinishedAt  time.Time    `json:"finished_at,omitempty"`
	CellStates  []CellStatus `json:"cell_states,omitempty"`
}

// SweepEvent is one SSE frame of a sweep's event stream: "cell" when a
// cell completes, "sweep" on lifecycle transitions.
type SweepEvent struct {
	Type  string      `json:"type"`
	Cell  *CellStatus `json:"cell,omitempty"`
	Sweep SweepStatus `json:"sweep"`
}

func (sw *Sweep) status() SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.statusLocked()
}

func (sw *Sweep) statusLocked() SweepStatus {
	return SweepStatus{
		ID:          sw.ID,
		State:       sw.state,
		Key:         sw.Key,
		Cells:       len(sw.cells),
		Completed:   sw.completed,
		Computed:    sw.computed,
		LocalHits:   sw.localHits,
		PeerHits:    sw.peerHits,
		Retries:     sw.retries,
		CacheHit:    sw.cacheHit,
		Error:       sw.err,
		SubmittedAt: sw.submitted,
		StartedAt:   sw.started,
		FinishedAt:  sw.finished,
	}
}

// detailStatus is status plus a copy of every cell's state.
func (sw *Sweep) detailStatus() SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := sw.statusLocked()
	st.CellStates = append([]CellStatus(nil), sw.cellStats...)
	return st
}

// State returns the sweep's lifecycle state.
func (sw *Sweep) State() State {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.state
}

// Result returns the aggregate result document (nil unless StateDone).
func (sw *Sweep) Result() []byte {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.result
}

// broadcastLocked fans an event to subscribers; callers hold sw.mu.
func (sw *Sweep) broadcastLocked(ev SweepEvent) {
	for _, ch := range sw.subs {
		select {
		case ch <- ev:
		default: // subscriber stalled; it resyncs from the next event
		}
	}
}

// subscribe registers an event listener primed with the current snapshot.
func (sw *Sweep) subscribe() (<-chan SweepEvent, func()) {
	ch := make(chan SweepEvent, 256)
	sw.mu.Lock()
	if sw.subs == nil {
		sw.subs = make(map[int]chan SweepEvent)
	}
	id := sw.nextSub
	sw.nextSub++
	sw.subs[id] = ch
	ch <- SweepEvent{Type: "sweep", Sweep: sw.statusLocked()}
	sw.mu.Unlock()
	return ch, func() {
		sw.mu.Lock()
		delete(sw.subs, id)
		sw.mu.Unlock()
	}
}

// cellRunning marks a cell dispatched/executing.
func (sw *Sweep) cellRunning(i int) {
	sw.mu.Lock()
	sw.cellStats[i].State = StateRunning
	sw.mu.Unlock()
}

// cellDone records a completed cell, its source and the worker that
// supplied it, then broadcasts a "cell" event.
func (sw *Sweep) cellDone(i int, source, worker string) {
	sw.mu.Lock()
	cs := &sw.cellStats[i]
	cs.State = StateDone
	cs.Source = source
	cs.Worker = worker
	sw.completed++
	switch source {
	case CellSourceComputed:
		sw.computed++
	case CellSourceCache:
		sw.localHits++
	case CellSourcePeerCache:
		sw.peerHits++
	}
	snap := *cs
	sw.broadcastLocked(SweepEvent{Type: "cell", Cell: &snap, Sweep: sw.statusLocked()})
	sw.mu.Unlock()
}

// cellRetried counts one retry-on-worker-loss for the status page.
func (sw *Sweep) cellRetried(i int) {
	sw.mu.Lock()
	sw.cellStats[i].State = StateQueued
	sw.retries++
	sw.mu.Unlock()
}

// setState transitions the sweep, refusing to leave a terminal state, and
// broadcasts a "sweep" event. Reports whether the transition happened.
func (sw *Sweep) setState(st State, apply func(*Sweep)) bool {
	sw.mu.Lock()
	if sw.state.Terminal() {
		sw.mu.Unlock()
		return false
	}
	sw.state = st
	if apply != nil {
		apply(sw)
	}
	sw.broadcastLocked(SweepEvent{Type: "sweep", Sweep: sw.statusLocked()})
	sw.mu.Unlock()
	return true
}

// SweepResult is the aggregate document of GET /api/v1/sweeps/{id}/result:
// every cell's request, content address and canonical result bytes in
// expansion order. Marshaling is deterministic, and each embedded Result
// is exactly the bytes the jobs API (and the serial CLI path) produce for
// that cell — so the whole document is byte-identical no matter where or
// in what order the cells ran, which cells were cache- or peer-filled,
// and how many workers the fleet had.
type SweepResult struct {
	V     int               `json:"v"`
	Key   string            `json:"key"`
	Cells []SweepCellResult `json:"cells"`
}

// SweepCellResult is one cell of the aggregate document.
type SweepCellResult struct {
	Index   int             `json:"index"`
	Key     string          `json:"key"`
	Request JobRequest      `json:"request"`
	Result  json.RawMessage `json:"result"`
}

// MarshalSweepResult renders the aggregate document from per-cell result
// bytes indexed like cells.
func MarshalSweepResult(key string, cells []SweepCell, results [][]byte) ([]byte, error) {
	out := SweepResult{V: scenario.CanonicalVersion, Key: key, Cells: make([]SweepCellResult, len(cells))}
	for i, c := range cells {
		out.Cells[i] = SweepCellResult{Index: c.Index, Key: c.Key, Request: c.Req, Result: results[i]}
	}
	return json.Marshal(out)
}

// sweepExecutor obtains every cell's canonical result bytes. The local
// executor computes on this process; the fleet executor shards across
// remote workers. Implementations report per-cell progress through sw's
// cell hooks and must return results indexed like sw.cells.
type sweepExecutor interface {
	runSweep(ctx context.Context, sw *Sweep) ([][]byte, error)
}

// SubmitSweep validates, expands and admits one sweep. The error is
// non-nil only for OutcomeInvalid. Admitted sweeps begin executing
// immediately on their own goroutine; intake is bounded by QueueDepth
// concurrently-running sweeps.
func (s *Server) SubmitSweep(req SweepRequest) (*Sweep, Outcome, error) {
	cells, err := req.Cells()
	if err != nil {
		s.mRejected.Inc("invalid")
		return nil, OutcomeInvalid, err
	}
	key := SweepKey(cells)
	timeout := req.jobTimeout(s.opts)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.mRejected.Inc("draining")
		return nil, OutcomeDraining, nil
	}
	// Whole-sweep memoization: an identical grid resubmission is served
	// from the result cache without touching a single cell.
	if cached, ok := s.cache.Get(sweepCacheKey(key)); ok {
		sw := s.newSweepLocked(key, cells, timeout)
		sw.state = StateDone
		sw.cacheHit = true
		sw.result = cached
		sw.finished = sw.submitted
		for i := range sw.cellStats {
			sw.cellStats[i].State = StateDone
			sw.cellStats[i].Source = CellSourceCache
		}
		sw.completed = len(cells)
		sw.localHits = len(cells)
		s.registerSweepLocked(sw)
		s.mSweepsSubmitted.Inc()
		s.mCacheHits.Inc()
		s.mSweepsTerminal.Inc(string(StateDone))
		return sw, OutcomeCacheHit, nil
	}
	running := 0
	for _, id := range s.sweepOrder {
		if !s.sweeps[id].State().Terminal() {
			running++
		}
	}
	if running >= s.opts.QueueDepth {
		s.mRejected.Inc("queue_full")
		return nil, OutcomeQueueFull, nil
	}
	sw := s.newSweepLocked(key, cells, timeout)
	sw.state = StateQueued
	s.registerSweepLocked(sw)
	s.mSweepsSubmitted.Inc()
	s.wg.Add(1)
	go s.runSweep(sw)
	return sw, OutcomeAccepted, nil
}

// jobTimeout resolves the per-cell deadline like JobRequest.Timeout.
func (sr SweepRequest) jobTimeout(opts Options) time.Duration {
	jr := JobRequest{TimeoutSec: sr.TimeoutSec}
	return jr.Timeout(opts.DefaultTimeout, opts.MaxTimeout)
}

// sweepCacheKey namespaces sweep documents inside the shared result
// cache. Cell results are stored under bare canonical keys; the prefix
// keeps the two address spaces disjoint.
func sweepCacheKey(key string) string { return "sweep:" + key }

func (s *Server) newSweepLocked(key string, cells []SweepCell, timeout time.Duration) *Sweep {
	s.nextSweepID++
	sw := &Sweep{
		ID:        fmt.Sprintf("sweep-%d", s.nextSweepID),
		Key:       key,
		cells:     cells,
		timeout:   timeout,
		submitted: time.Now().UTC(),
		cellStats: make([]CellStatus, len(cells)),
	}
	for i, c := range cells {
		sw.cellStats[i] = CellStatus{Index: i, Key: c.Key, State: StateQueued}
	}
	return sw
}

func (s *Server) registerSweepLocked(sw *Sweep) {
	s.sweeps[sw.ID] = sw
	s.sweepOrder = append(s.sweepOrder, sw.ID)
}

// Sweep looks up a sweep by ID.
func (s *Server) Sweep(id string) (*Sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// SweepStatuses snapshots every sweep in submission order.
func (s *Server) SweepStatuses() []SweepStatus {
	s.mu.Lock()
	sweeps := make([]*Sweep, len(s.sweepOrder))
	for i, id := range s.sweepOrder {
		sweeps[i] = s.sweeps[id]
	}
	s.mu.Unlock()
	out := make([]SweepStatus, len(sweeps))
	for i, sw := range sweeps {
		out[i] = sw.status()
	}
	return out
}

// CancelSweep requests cancellation of a running sweep. Returns false if
// the sweep is unknown or already terminal.
func (s *Server) CancelSweep(id string) bool {
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	sw.mu.Lock()
	cancel := sw.cancel
	terminal := sw.state.Terminal()
	sw.mu.Unlock()
	if terminal || cancel == nil {
		return false
	}
	cancel(errCanceledByUser)
	return true
}

// runSweep drives one sweep to a terminal state on its own goroutine.
func (s *Server) runSweep(sw *Sweep) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	defer cancel(nil)
	if !sw.setState(StateRunning, func(sw *Sweep) {
		sw.started = time.Now().UTC()
		sw.cancel = cancel
	}) {
		return
	}
	s.mSweepsRunning.Inc()
	results, err := s.sweepExec.runSweep(ctx, sw)
	s.mSweepsRunning.Dec()
	if err != nil {
		state, msg := classifySweepError(ctx, err)
		s.finishSweep(sw, state, msg, nil)
		return
	}
	body, err := MarshalSweepResult(sw.Key, sw.cells, results)
	if err != nil {
		s.finishSweep(sw, StateFailed, fmt.Sprintf("marshal sweep result: %v", err), nil)
		return
	}
	s.cache.Put(sweepCacheKey(sw.Key), body)
	s.finishSweep(sw, StateDone, "", body)
}

// classifySweepError maps an executor error to a terminal state, mirroring
// classifyRunError's cancel/shutdown/deadline distinctions.
func classifySweepError(ctx context.Context, err error) (State, string) {
	if errors.Is(err, scenario.ErrCanceled) || errors.Is(err, context.Canceled) {
		cause := context.Cause(ctx)
		switch {
		case errors.Is(cause, errCanceledByUser):
			return StateCanceled, "canceled by client"
		case errors.Is(cause, errShutdown):
			return StateCanceled, "server shutting down"
		case cause != nil && !errors.Is(cause, context.Canceled):
			return StateCanceled, cause.Error()
		}
		return StateCanceled, err.Error()
	}
	return StateFailed, err.Error()
}

func (s *Server) finishSweep(sw *Sweep, state State, msg string, result []byte) {
	if !sw.setState(state, func(sw *Sweep) {
		sw.err = msg
		sw.result = result
		sw.finished = time.Now().UTC()
		sw.cancel = nil
	}) {
		return
	}
	s.mSweepsTerminal.Inc(string(state))
}

// localSweepExecutor computes cells on this process: result cache first,
// then the same engine call path jobs use. Cells sharing a canonical key
// are computed once; the worker-pool fan-out is bounded by Options.Workers.
type localSweepExecutor struct{ s *Server }

func (l localSweepExecutor) runSweep(ctx context.Context, sw *Sweep) ([][]byte, error) {
	s := l.s
	results := make([][]byte, len(sw.cells))

	// Group cells by canonical key: no cell is computed twice per sweep,
	// however the grid was phrased.
	byKey := make(map[string][]int)
	var keyOrder []string
	for i, c := range sw.cells {
		if _, seen := byKey[c.Key]; !seen {
			keyOrder = append(keyOrder, c.Key)
		}
		byKey[c.Key] = append(byKey[c.Key], i)
	}

	workers := s.opts.Workers
	if workers > len(keyOrder) {
		workers = len(keyOrder)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	poolCtx, cancelPool := context.WithCancelCause(ctx)
	defer cancelPool(nil)
	takeKey := func() (string, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(keyOrder) || firstErr != nil {
			return "", false
		}
		k := keyOrder[next]
		next++
		return k, true
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancelPool(err)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if poolCtx.Err() != nil {
					return
				}
				key, ok := takeKey()
				if !ok {
					return
				}
				idxs := byKey[key]
				for _, i := range idxs {
					sw.cellRunning(i)
				}
				body, source, err := l.execCell(poolCtx, sw, &sw.cells[idxs[0]])
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				for _, i := range idxs {
					results[i] = body
				}
				mu.Unlock()
				for _, i := range idxs {
					s.mFleetCells.Inc(source)
					sw.cellDone(i, source, "")
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// execCell resolves one cell: result cache first, then a real engine run
// under the sweep's per-cell deadline. The returned bytes are exactly
// what the jobs API would serve for the same canonical key.
func (l localSweepExecutor) execCell(ctx context.Context, sw *Sweep, c *SweepCell) ([]byte, string, error) {
	s := l.s
	if cached, ok := s.cache.Get(c.Key); ok {
		return cached, CellSourceCache, nil
	}
	tctx, tcancel := context.WithTimeoutCause(ctx, sw.timeout, context.DeadlineExceeded)
	defer tcancel()
	s.mRuns.Inc(channelLabel(c.cfg), policyLabel(c.cfg))
	agg, err := s.runFn(tctx, c.cfg, c.reps, s.opts.SimWorkers)
	if err != nil {
		if errors.Is(err, scenario.ErrCanceled) {
			if errors.Is(context.Cause(tctx), context.DeadlineExceeded) {
				return nil, "", fmt.Errorf("cell %d (%s): cell deadline exceeded", c.Index, c.Key)
			}
			// Plain cancellation: surface it untouched so the sweep-level
			// cause (user cancel vs shutdown) decides the terminal message.
			return nil, "", err
		}
		return nil, "", fmt.Errorf("cell %d (%s): %w", c.Index, c.Key, err)
	}
	body, err := MarshalResult(c.Key, c.reps, agg)
	if err != nil {
		return nil, "", fmt.Errorf("cell %d (%s): marshal result: %w", c.Index, c.Key, err)
	}
	s.cache.Put(c.Key, body)
	return body, CellSourceComputed, nil
}
