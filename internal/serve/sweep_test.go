package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rcast/internal/scenario"
)

// quickSweep is a fast grid: 2 schemes × 2 pauses (one static) over the
// quickRequest base, 4 cells.
func quickSweep() SweepRequest {
	return SweepRequest{
		Schemes:     []string{"802.11", "Rcast"},
		PausesSec:   []float64{0, -1},
		Nodes:       12,
		Connections: 3,
		DurationSec: 10,
		Reps:        1,
	}
}

// waitSweepTerminal polls until the sweep leaves its transient states.
func waitSweepTerminal(t *testing.T, sw *Sweep) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := sw.status()
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not reach a terminal state", sw.ID)
	return SweepStatus{}
}

func TestParseSweepRequestStrict(t *testing.T) {
	if _, err := ParseSweepRequest(strings.NewReader(`{"schemes":["Rcast"],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSweepRequest(strings.NewReader(`{"schemes":["Rcast"]} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	req, err := ParseSweepRequest(strings.NewReader(`{"schemes":["Rcast","PSM"],"rates":[0.4,2],"nodes":30}`))
	if err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if len(req.Schemes) != 2 || len(req.Rates) != 2 || req.Nodes != 30 {
		t.Fatalf("decoded %+v", req)
	}
}

func TestSweepCellsExpansion(t *testing.T) {
	cells, err := quickSweep().Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if len(cells) != 4 {
		t.Fatalf("len(cells) = %d, want 4", len(cells))
	}
	seen := map[string]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
		if len(c.Key) != 64 {
			t.Fatalf("cell %d has malformed key %q", i, c.Key)
		}
		if seen[c.Key] {
			t.Fatalf("cell %d duplicates key %s", i, c.Key)
		}
		seen[c.Key] = true
	}
	// Canonical nesting: scheme outermost, then pause.
	if cells[0].Req.Scheme != "802.11" || cells[2].Req.Scheme != "Rcast" {
		t.Fatalf("scheme order: %s, %s", cells[0].Req.Scheme, cells[2].Req.Scheme)
	}
	if cells[1].Req.Static != true || cells[0].Req.Static != false {
		t.Fatalf("pause axis: cell0 static=%v cell1 static=%v", cells[0].Req.Static, cells[1].Req.Static)
	}
	// The sweep key is deterministic and distinct from any cell key.
	k1, k2 := SweepKey(cells), SweepKey(cells)
	if k1 != k2 || len(k1) != 64 || seen[k1] {
		t.Fatalf("sweep key %q unstable or colliding", k1)
	}

	if _, err := (SweepRequest{}).Cells(); err == nil {
		t.Fatal("sweep without schemes accepted")
	}
	bad := quickSweep()
	bad.FaultPresets = []string{"warp"}
	if _, err := bad.Cells(); err == nil {
		t.Fatal("unknown fault preset accepted")
	}
}

// TestSweepLocalDeterminism pins the sweep determinism contract on the
// local executor: every cell's bytes equal a direct serial engine run of
// the same config (the CLI path), and the aggregate document is exactly
// MarshalSweepResult over those bytes.
func TestSweepLocalDeterminism(t *testing.T) {
	s := New(Options{Workers: 4, QueueDepth: 8})
	defer shutdownServer(t, s)

	req := quickSweep()
	sw, out, err := s.SubmitSweep(req)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	st := waitSweepTerminal(t, sw)
	if st.State != StateDone {
		t.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}
	if st.Completed != 4 || st.Computed != 4 {
		t.Fatalf("completed=%d computed=%d, want 4/4", st.Completed, st.Computed)
	}

	cells, err := req.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	serial := make([][]byte, len(cells))
	for i, c := range cells {
		cfg, reps, err := c.Req.Config()
		if err != nil {
			t.Fatalf("cell %d Config: %v", i, err)
		}
		agg, err := scenario.RunReplicationsContext(context.Background(), cfg, reps, 1)
		if err != nil {
			t.Fatalf("cell %d direct run: %v", i, err)
		}
		serial[i], err = MarshalResult(c.Key, reps, agg)
		if err != nil {
			t.Fatalf("cell %d MarshalResult: %v", i, err)
		}
	}
	want, err := MarshalSweepResult(SweepKey(cells), cells, serial)
	if err != nil {
		t.Fatalf("MarshalSweepResult: %v", err)
	}
	if string(sw.Result()) != string(want) {
		t.Fatalf("sweep result diverges from serial CLI path\nsweep:  %.200s...\nserial: %.200s...", sw.Result(), want)
	}

	// Resubmission is a whole-sweep cache hit: born done, same bytes.
	sw2, out, err := s.SubmitSweep(req)
	if err != nil || out != OutcomeCacheHit {
		t.Fatalf("resubmit: out=%v err=%v", out, err)
	}
	st2 := sw2.status()
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("cache-hit sweep status %+v", st2)
	}
	if string(sw2.Result()) != string(want) {
		t.Fatal("cached sweep served different bytes")
	}
}

// TestSweepDedupIdenticalCells: cells that share a canonical key are
// computed once, and both report completion.
func TestSweepDedupIdenticalCells(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 4})
	defer shutdownServer(t, s)
	var runs atomic.Int64
	base := s.runFn
	s.runFn = func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error) {
		runs.Add(1)
		return base(ctx, cfg, reps, workers)
	}

	// Two identical pause entries → 2 cells, 1 unique key.
	req := quickSweep()
	req.Schemes = []string{"Rcast"}
	req.PausesSec = []float64{600, 600}
	sw, out, err := s.SubmitSweep(req)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	st := waitSweepTerminal(t, sw)
	if st.State != StateDone {
		t.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}
	if st.Completed != 2 {
		t.Fatalf("completed = %d, want 2", st.Completed)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("engine ran %d times for 2 identical cells, want 1", got)
	}
	var doc SweepResult
	if err := json.Unmarshal(sw.Result(), &doc); err != nil {
		t.Fatalf("decode sweep result: %v", err)
	}
	if len(doc.Cells) != 2 || string(doc.Cells[0].Result) != string(doc.Cells[1].Result) {
		t.Fatal("duplicate cells did not share result bytes")
	}
}

func TestSweepInvalidAndIntakeBound(t *testing.T) {
	s, release := blockingServer(t, Options{Workers: 1, QueueDepth: 1})
	defer shutdownServer(t, s)
	defer close(release)

	if _, out, err := s.SubmitSweep(SweepRequest{}); out != OutcomeInvalid || err == nil {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}

	swA, out, err := s.SubmitSweep(quickSweep())
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit A: out=%v err=%v", out, err)
	}
	// QueueDepth bounds concurrently-running sweeps: with A parked on the
	// blocking runFn, a different sweep is rejected with backpressure.
	reqB := quickSweep()
	reqB.Seed = ptr(int64(99))
	if _, o, _ := s.SubmitSweep(reqB); o != OutcomeQueueFull {
		t.Fatalf("submit B with intake full: out=%v, want OutcomeQueueFull", o)
	}
	if got := s.mRejected.Value("queue_full"); got == 0 {
		t.Fatal("rejected{queue_full} not incremented")
	}
	_ = swA
}

func TestSweepCancel(t *testing.T) {
	s, release := blockingServer(t, Options{Workers: 1, QueueDepth: 2})
	defer shutdownServer(t, s)
	defer close(release)

	sw, out, err := s.SubmitSweep(quickSweep())
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sw.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(time.Millisecond)
	}
	if !s.CancelSweep(sw.ID) {
		t.Fatal("cancel refused")
	}
	st := waitSweepTerminal(t, sw)
	if st.State != StateCanceled {
		t.Fatalf("state after cancel = %s (%s)", st.State, st.Error)
	}
	if st.Error != "canceled by client" {
		t.Fatalf("cancel message %q", st.Error)
	}
	if s.CancelSweep(sw.ID) {
		t.Fatal("second cancel of terminal sweep succeeded")
	}
	if s.CancelSweep("sweep-does-not-exist") {
		t.Fatal("cancel of unknown sweep succeeded")
	}
}

// TestSweepShutdownForceCancel: a sweep force-canceled by an expired
// Shutdown reports the shutdown cause, mirroring the job-level fix.
func TestSweepShutdownForceCancel(t *testing.T) {
	s, _ := blockingServer(t, Options{Workers: 1, QueueDepth: 2})
	sw, out, err := s.SubmitSweep(quickSweep())
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("submit: out=%v err=%v", out, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sw.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want deadline exceeded", err)
	}
	st := waitSweepTerminal(t, sw)
	if st.State != StateCanceled {
		t.Fatalf("state after forced shutdown = %s (%s)", st.State, st.Error)
	}
	if st.Error != "server shutting down" {
		t.Fatalf("forced-shutdown terminal message = %q", st.Error)
	}
}

const quickSweepBody = `{"schemes":["802.11","Rcast"],"pauses_sec":[0,-1],"nodes":12,"connections":3,"duration_sec":10,"reps":1}`

func TestHTTPSweepLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 8})
	// Gate the engine until the SSE stream is attached, so the stream
	// observes every cell completion instead of racing a fast sweep.
	gate := make(chan struct{})
	base := s.runFn
	s.runFn = func(ctx context.Context, cfg scenario.Config, reps, workers int) (*scenario.Aggregate, error) {
		<-gate
		return base(ctx, cfg, reps, workers)
	}

	resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", strings.NewReader(quickSweepBody))
	if err != nil {
		t.Fatalf("POST /api/v1/sweeps: %v", err)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if st.ID == "" || st.Cells != 4 || len(st.Key) != 64 {
		t.Fatalf("submit response %+v", st)
	}

	// SSE stream: must carry "cell" events and end with a terminal "sweep".
	sresp, err := http.Get(ts.URL + "/api/v1/sweeps/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer sresp.Body.Close()
	close(gate)
	sc := bufio.NewScanner(sresp.Body)
	cellEvents := 0
	terminal := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev SweepEvent
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("decode SSE %q: %v", line, err)
		}
		if ev.Type == "cell" {
			cellEvents++
			if ev.Cell == nil || ev.Cell.State != StateDone {
				t.Fatalf("cell event %+v", ev)
			}
		}
		if ev.Type == "sweep" && ev.Sweep.State.Terminal() {
			terminal = true
			break
		}
	}
	if !terminal {
		t.Fatal("SSE stream ended without a terminal sweep event")
	}
	if cellEvents != 4 {
		t.Fatalf("saw %d cell events, want 4", cellEvents)
	}

	// Detail status carries per-cell states with sources.
	dresp, err := http.Get(ts.URL + "/api/v1/sweeps/" + st.ID)
	if err != nil {
		t.Fatalf("GET sweep: %v", err)
	}
	var detail SweepStatus
	if err := json.NewDecoder(dresp.Body).Decode(&detail); err != nil {
		t.Fatalf("decode detail: %v", err)
	}
	dresp.Body.Close()
	if detail.State != StateDone || len(detail.CellStates) != 4 {
		t.Fatalf("detail %+v", detail)
	}
	for _, cs := range detail.CellStates {
		if cs.State != StateDone || cs.Source == "" {
			t.Fatalf("cell state %+v", cs)
		}
	}

	// Aggregate result document.
	rresp, err := http.Get(ts.URL + "/api/v1/sweeps/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var doc SweepResult
	if err := json.NewDecoder(rresp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || doc.Key != st.Key || len(doc.Cells) != 4 {
		t.Fatalf("result status=%d doc key=%s cells=%d", rresp.StatusCode, doc.Key, len(doc.Cells))
	}

	// Every cell's bytes are individually addressable via the results
	// probe, with HEAD as the cheap existence check the fleet uses.
	for _, cell := range doc.Cells {
		hresp, err := http.Head(ts.URL + "/api/v1/results/" + cell.Key)
		if err != nil {
			t.Fatalf("HEAD result: %v", err)
		}
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			t.Fatalf("HEAD /api/v1/results/%s = %d", cell.Key, hresp.StatusCode)
		}
		if hresp.ContentLength <= 0 {
			t.Fatalf("HEAD content-length = %d", hresp.ContentLength)
		}
		gresp, err := http.Get(ts.URL + "/api/v1/results/" + cell.Key)
		if err != nil {
			t.Fatalf("GET result by key: %v", err)
		}
		if got := readAll(t, gresp); got != string(cell.Result) {
			t.Fatalf("results probe bytes diverge for %s", cell.Key)
		}
	}
	probe, err := http.Head(ts.URL + "/api/v1/results/no-such-key")
	if err != nil {
		t.Fatalf("HEAD miss: %v", err)
	}
	probe.Body.Close()
	if probe.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD miss = %d, want 404", probe.StatusCode)
	}

	// Listing includes the sweep.
	lresp, err := http.Get(ts.URL + "/api/v1/sweeps")
	if err != nil {
		t.Fatalf("GET sweeps: %v", err)
	}
	var list []SweepStatus
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	lresp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list %+v", list)
	}

	// Metrics page exposes sweep counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	page := readAll(t, mresp)
	for _, want := range []string{
		"rcast_serve_sweeps_submitted_total 1",
		`rcast_serve_sweeps_total{state="done"} 1`,
		`rcast_serve_fleet_cells_total{source="computed"} 4`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	_ = s
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	first := true
	for sc.Scan() {
		if !first {
			sb.WriteByte('\n')
		}
		sb.WriteString(sc.Text())
		first = false
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return sb.String()
}
