package serve

import (
	"net/http"
	"sort"

	"rcast/internal/metrics/promtext"
	"rcast/internal/trace"
)

// traceTally returns the tally for one scheme, creating it on first use.
// The returned counter is mutex-guarded, so traced jobs emit into it
// concurrently with summary reads and metric scrapes.
func (s *Server) traceTally(scheme string) *trace.SyncCounter {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	c, ok := s.traceTallies[scheme]
	if !ok {
		c = trace.NewSyncCounter()
		s.traceTallies[scheme] = c
	}
	return c
}

// traceSnapshots copies every scheme's tally at one instant.
func (s *Server) traceSnapshots() map[string]map[trace.Kind]uint64 {
	s.traceMu.Lock()
	tallies := make(map[string]*trace.SyncCounter, len(s.traceTallies))
	for scheme, c := range s.traceTallies {
		tallies[scheme] = c
	}
	s.traceMu.Unlock()
	out := make(map[string]map[trace.Kind]uint64, len(tallies))
	for scheme, c := range tallies {
		out[scheme] = c.Snapshot()
	}
	return out
}

// traceSamples feeds the rcast_serve_trace_events {scheme,kind} gauge
// family; promtext sorts the samples, so order here is irrelevant.
func (s *Server) traceSamples() []promtext.Sample2 {
	var out []promtext.Sample2
	for scheme, kinds := range s.traceSnapshots() {
		for kind, n := range kinds {
			out = append(out, promtext.Sample2{L1: scheme, L2: string(kind), V: int64(n)})
		}
	}
	return out
}

// SchemeTraceSummary is one scheme's slice of the traces summary: the
// full kind tally plus the headline counts clients usually want.
type SchemeTraceSummary struct {
	Events      map[string]uint64 `json:"events"`
	TotalEvents uint64            `json:"total_events"`
	Delivered   uint64            `json:"delivered"`
	Dropped     uint64            `json:"dropped"`
	PhyDropped  uint64            `json:"phy_dropped"`
	Deaths      uint64            `json:"deaths"`
}

// TraceSummary is the GET /api/v1/traces/summary payload: per-scheme
// trace-event tallies folded from every traced job this server has run
// (including in-flight ones). Schemes lists keys of Schemes in sorted
// order so clients get a deterministic iteration order.
type TraceSummary struct {
	Schemes     []string                      `json:"scheme_order"`
	PerScheme   map[string]SchemeTraceSummary `json:"schemes"`
	TotalEvents uint64                        `json:"total_events"`
}

// TracesSummary builds the current summary snapshot.
func (s *Server) TracesSummary() TraceSummary {
	snaps := s.traceSnapshots()
	sum := TraceSummary{
		Schemes:   make([]string, 0, len(snaps)),
		PerScheme: make(map[string]SchemeTraceSummary, len(snaps)),
	}
	for scheme, kinds := range snaps {
		sch := SchemeTraceSummary{Events: make(map[string]uint64, len(kinds))}
		for kind, n := range kinds {
			sch.Events[string(kind)] = n
			sch.TotalEvents += n
		}
		sch.Delivered = kinds[trace.KindDeliver]
		sch.Dropped = kinds[trace.KindDrop]
		sch.PhyDropped = kinds[trace.KindPhyDrop]
		sch.Deaths = kinds[trace.KindDeath]
		sum.PerScheme[scheme] = sch
		sum.Schemes = append(sum.Schemes, scheme)
		sum.TotalEvents += sch.TotalEvents
	}
	sort.Strings(sum.Schemes)
	return sum
}

func (s *Server) handleTracesSummary(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.TracesSummary())
}
