package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"rcast/internal/trace"
)

// TestTracesSummaryEmpty pins the zero-state payload: no traced job has
// run, so the summary is an empty (but well-formed) document.
func TestTracesSummaryEmpty(t *testing.T) {
	s := New(Options{Workers: 1})
	defer shutdownServer(t, s)

	sum := s.TracesSummary()
	if sum.TotalEvents != 0 || len(sum.PerScheme) != 0 || len(sum.Schemes) != 0 {
		t.Fatalf("fresh server summary not empty: %+v", sum)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/traces/summary")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got TraceSummary
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.TotalEvents != 0 || len(got.PerScheme) != 0 {
		t.Fatalf("empty summary over HTTP: %+v", got)
	}
}

// TestTracesSummaryFoldsTracedJobs runs one traced job and checks the
// summary's tallies match the job's own trace artifact exactly, that an
// untraced job contributes nothing, and that the /metrics page exposes
// the same counts under rcast_serve_trace_events{scheme,kind}.
func TestTracesSummaryFoldsTracedJobs(t *testing.T) {
	s := New(Options{Workers: 1})
	defer shutdownServer(t, s)

	req := quickRequest()
	req.Trace = true
	job, outcome, err := s.Submit(req)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("Submit: outcome=%v err=%v", outcome, err)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	// Ground truth: re-count the job's own NDJSON artifact.
	data, captured := job.Trace()
	if !captured || len(data) == 0 {
		t.Fatal("traced job has no artifact")
	}
	events, err := trace.ReadEvents(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	want := make(map[string]uint64)
	var wantTotal uint64
	for _, e := range events {
		want[string(e.Kind)]++
		wantTotal++
	}

	sum := s.TracesSummary()
	sch, ok := sum.PerScheme["Rcast"]
	if !ok {
		t.Fatalf("summary missing scheme Rcast: %+v", sum.Schemes)
	}
	if sch.TotalEvents != wantTotal || sum.TotalEvents != wantTotal {
		t.Fatalf("totals: scheme=%d overall=%d want %d", sch.TotalEvents, sum.TotalEvents, wantTotal)
	}
	for kind, n := range want {
		if sch.Events[kind] != n {
			t.Fatalf("kind %q: summary %d, artifact %d", kind, sch.Events[kind], n)
		}
	}
	if sch.Delivered != want[string(trace.KindDeliver)] ||
		sch.Dropped != want[string(trace.KindDrop)] ||
		sch.PhyDropped != want[string(trace.KindPhyDrop)] ||
		sch.Deaths != want[string(trace.KindDeath)] {
		t.Fatalf("derived headline counts disagree with kind map: %+v", sch)
	}
	if sch.Delivered == 0 {
		t.Fatal("traced cell delivered nothing; cell too small to exercise the summary")
	}
	if len(sum.Schemes) != 1 || sum.Schemes[0] != "Rcast" {
		t.Fatalf("scheme_order = %v", sum.Schemes)
	}

	// An untraced job must not move the tallies.
	req2 := quickRequest()
	seed := int64(99)
	req2.Seed = &seed
	job2, outcome, err := s.Submit(req2)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("Submit untraced: outcome=%v err=%v", outcome, err)
	}
	if st := waitTerminal(t, job2); st.State != StateDone {
		t.Fatalf("untraced job finished %s: %s", st.State, st.Error)
	}
	if got := s.TracesSummary().TotalEvents; got != wantTotal {
		t.Fatalf("untraced job changed tallies: %d -> %d", wantTotal, got)
	}

	// The metrics page carries the same numbers as a two-label family.
	var page strings.Builder
	if err := s.Registry().Write(&page); err != nil {
		t.Fatalf("metrics write: %v", err)
	}
	for _, kind := range []string{"deliver", "originate"} {
		line := `rcast_serve_trace_events{scheme="Rcast",kind="` + kind + `"} `
		idx := strings.Index(page.String(), line)
		if idx < 0 {
			t.Fatalf("metrics page missing %q", line)
		}
		rest := page.String()[idx+len(line):]
		gotN := rest[:strings.IndexByte(rest, '\n')]
		got, err := strconv.ParseUint(gotN, 10, 64)
		if err != nil || got != want[kind] {
			t.Fatalf("metric %s = %q, want %d (err %v)", kind, gotN, want[kind], err)
		}
	}
}

// TestTracesSummaryPerSchemeIsolation checks two traced jobs under
// different schemes land in separate buckets.
func TestTracesSummaryPerSchemeIsolation(t *testing.T) {
	s := New(Options{Workers: 1})
	defer shutdownServer(t, s)

	for _, scheme := range []string{"Rcast", "PSM"} {
		req := quickRequest()
		req.Scheme = scheme
		req.Trace = true
		job, outcome, err := s.Submit(req)
		if err != nil || outcome != OutcomeAccepted {
			t.Fatalf("Submit %s: outcome=%v err=%v", scheme, outcome, err)
		}
		if st := waitTerminal(t, job); st.State != StateDone {
			t.Fatalf("%s job finished %s: %s", scheme, st.State, st.Error)
		}
	}
	sum := s.TracesSummary()
	if len(sum.Schemes) != 2 || sum.Schemes[0] != "PSM" || sum.Schemes[1] != "Rcast" {
		t.Fatalf("scheme_order = %v", sum.Schemes)
	}
	var folded uint64
	for _, scheme := range sum.Schemes {
		sch := sum.PerScheme[scheme]
		if sch.TotalEvents == 0 {
			t.Fatalf("scheme %s has zero events", scheme)
		}
		folded += sch.TotalEvents
	}
	if folded != sum.TotalEvents {
		t.Fatalf("per-scheme totals %d != overall %d", folded, sum.TotalEvents)
	}
}
