package sim

import "testing"

// Hot-path microbenchmarks for the timing-wheel scheduler. Every benchmark
// reports allocations: the schedule/fire/cancel paths are expected to be
// allocation-free in steady state (the node freelist grows in chunks only
// while the live-timer high-water mark rises).

// BenchmarkWheelScheduleFire measures the full lifecycle of a near-future
// timer: schedule, cascade, fire.
func BenchmarkWheelScheduleFire(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Time(i%64), fn)
		for s.Step() {
		}
	}
}

// BenchmarkWheelScheduleCancel measures schedule followed by cancel, the
// dominant pattern for MAC timeout timers (most timeouts never fire).
func BenchmarkWheelScheduleCancel(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := s.After(Time(100+i%64), fn)
		tm.Cancel()
	}
}

// BenchmarkWheelPendingChurn keeps a realistic standing population of
// pending timers (as a running simulation does) while scheduling and firing
// through them.
func BenchmarkWheelPendingChurn(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		s.After(Time(1+i*257), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Time(1+i%4096), fn)
		s.Step()
	}
}

// BenchmarkWheelFarFuture schedules timers that land on deep wheel levels
// and must cascade down as the clock leaps toward them.
func BenchmarkWheelFarFuture(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Time(1)<<40+Time(i%1024), fn)
		s.RunUntil(s.Now() + Time(1)<<41)
	}
}

// BenchmarkHeapOracleScheduleFire is the reference point: the same
// lifecycle as BenchmarkWheelScheduleFire on the retained binary-heap
// implementation.
func BenchmarkHeapOracleScheduleFire(b *testing.B) {
	s := NewHeapScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Time(i%64), fn)
		for s.Step() {
		}
	}
}
