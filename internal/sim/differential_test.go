package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// The differential harness drives the timing-wheel Scheduler and the
// reference HeapScheduler with one op stream and demands byte-identical
// event orders. Ops cover same-timestamp FIFO ties, cancellation (including
// double-cancel and cancel of already-fired timers), reschedules, and
// far-future deadlines that cross wheel levels.

// diffHarness holds both engines plus the per-engine firing logs.
type diffHarness struct {
	wheel *Scheduler
	heap  *HeapScheduler

	wheelLog []string
	heapLog  []string

	wheelTimers []Timer
	heapTimers  []*HeapTimer
	nextID      int
}

func newDiffHarness() *diffHarness {
	return &diffHarness{wheel: NewScheduler(), heap: NewHeapScheduler()}
}

// schedule registers the same callback instant on both engines. The
// callback records "<id>@<now>" so both the order and the observed clock
// must agree.
func (h *diffHarness) schedule(t *testing.T, delta Time) {
	t.Helper()
	id := h.nextID
	h.nextID++
	wt := h.wheel.After(delta, func() {
		h.wheelLog = append(h.wheelLog, fmt.Sprintf("%d@%d", id, h.wheel.Now()))
	})
	ht := h.heap.After(delta, func() {
		h.heapLog = append(h.heapLog, fmt.Sprintf("%d@%d", id, h.heap.Now()))
	})
	h.wheelTimers = append(h.wheelTimers, wt)
	h.heapTimers = append(h.heapTimers, ht)
	if wt.When() != ht.When() {
		t.Fatalf("schedule %d: wheel deadline %d != heap deadline %d", id, wt.When(), ht.When())
	}
}

// cancel cancels timer slot i on both engines (stale and double cancels
// included: the slot may have fired already).
func (h *diffHarness) cancel(i int) {
	if i < 0 || i >= len(h.wheelTimers) {
		return
	}
	h.wheelTimers[i].Cancel()
	h.heapTimers[i].Cancel()
}

// runUntil advances both engines to the same deadline.
func (h *diffHarness) runUntil(deadline Time) {
	h.wheel.RunUntil(deadline)
	h.heap.RunUntil(deadline)
}

// check compares logs, clocks and pending counts.
func (h *diffHarness) check(t *testing.T) {
	t.Helper()
	if len(h.wheelLog) != len(h.heapLog) {
		t.Fatalf("fired %d events on wheel, %d on heap", len(h.wheelLog), len(h.heapLog))
	}
	for i := range h.wheelLog {
		if h.wheelLog[i] != h.heapLog[i] {
			t.Fatalf("event %d: wheel fired %s, heap fired %s", i, h.wheelLog[i], h.heapLog[i])
		}
	}
	if h.wheel.Now() != h.heap.Now() {
		t.Fatalf("clock skew: wheel at %d, heap at %d", h.wheel.Now(), h.heap.Now())
	}
	if h.wheel.Pending() != h.heap.Pending() {
		t.Fatalf("pending skew: wheel has %d, heap has %d", h.wheel.Pending(), h.heap.Pending())
	}
}

// TestSchedulerMatchesHeapOracle is the randomized differential property
// test: under thousands of random schedule/cancel/advance ops — biased
// toward ties and level-crossing deadlines — the wheel must replay the
// reference heap's event order exactly.
func TestSchedulerMatchesHeapOracle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed)) //nolint:gosec // test determinism
			h := newDiffHarness()
			for op := 0; op < 4000; op++ {
				switch r := rng.Intn(100); {
				case r < 45:
					// Deltas spanning every wheel level: 0 (immediate, and
					// repeated values produce same-timestamp FIFO ties),
					// small, and shifted far-future values up to 2^56.
					var delta Time
					switch rng.Intn(4) {
					case 0:
						delta = Time(rng.Intn(4)) // dense ties
					case 1:
						delta = Time(rng.Intn(256)) // level 0
					case 2:
						delta = Time(rng.Int63n(1 << 16)) // level 1-2
					default:
						delta = Time(rng.Int63n(1 << (8 * uint(1+rng.Intn(6))))) // deep levels
					}
					h.schedule(t, delta)
				case r < 65:
					// Cancel a random slot, alive or not.
					h.cancel(rng.Intn(len(h.wheelTimers) + 1))
				case r < 75:
					// Reschedule: cancel then re-add at a fresh deadline.
					h.cancel(rng.Intn(len(h.wheelTimers) + 1))
					h.schedule(t, Time(rng.Int63n(1<<20)))
				default:
					// Advance time; occasionally leap far ahead so pending
					// far-future timers cascade down through the levels.
					var adv Time
					if rng.Intn(10) == 0 {
						adv = Time(rng.Int63n(1 << 40))
					} else {
						adv = Time(rng.Int63n(1 << 12))
					}
					h.runUntil(h.wheel.Now() + adv)
					h.check(t)
				}
			}
			// Drain everything still pending.
			h.runUntil(h.wheel.Now() + Time(1)<<58)
			h.check(t)
			if h.wheel.Pending() != 0 {
				t.Fatalf("wheel still has %d pending after drain", h.wheel.Pending())
			}
		})
	}
}

// TestSchedulerOracleSameTimestampStorm pins the FIFO tie-break contract:
// many timers on one instant, interleaved with cancellations, must fire in
// schedule order on both engines.
func TestSchedulerOracleSameTimestampStorm(t *testing.T) {
	h := newDiffHarness()
	for i := 0; i < 500; i++ {
		h.schedule(t, 1000)
	}
	for i := 0; i < 500; i += 3 {
		h.cancel(i)
	}
	h.runUntil(2000)
	h.check(t)
	if got := len(h.wheelLog); got != 500-167 {
		t.Fatalf("fired %d events, want %d", got, 500-167)
	}
}

// TestSchedulerOracleCancelDuringFire cancels pending timers from inside a
// firing callback on both engines; the survivors must match.
func TestSchedulerOracleCancelDuringFire(t *testing.T) {
	h := newDiffHarness()
	for i := 0; i < 32; i++ {
		h.schedule(t, Time(10+i%4)) // clusters of ties
	}
	// Timer that, on fire, cancels the second half of the population on
	// both engines simultaneously (it fires first: delta 5 < 10).
	h.wheel.After(5, func() {
		for i := 16; i < 32; i++ {
			h.wheelTimers[i].Cancel()
		}
	})
	h.heap.After(5, func() {
		for i := 16; i < 32; i++ {
			h.heapTimers[i].Cancel()
		}
	})
	h.runUntil(100)
	if len(h.wheelLog) != len(h.heapLog) {
		t.Fatalf("fired %d events on wheel, %d on heap", len(h.wheelLog), len(h.heapLog))
	}
	for i := range h.wheelLog {
		if h.wheelLog[i] != h.heapLog[i] {
			t.Fatalf("event %d: wheel fired %s, heap fired %s", i, h.wheelLog[i], h.heapLog[i])
		}
	}
}
