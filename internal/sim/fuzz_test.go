package sim

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// FuzzSchedulerWheel interprets the fuzz input as an op program and runs it
// against both the timing wheel and the reference heap, failing on any
// divergence in event order, observed clocks, or pending counts. Opcodes
// (one byte, then operands):
//
//	0: schedule at delta = next 3 bytes (little-endian, spans levels 0-2)
//	1: schedule at delta = next 2 bytes shifted left by (byte % 48) bits
//	2: cancel timer slot (next byte % slots)
//	3: advance clock by next 2 bytes
//	4: advance clock by next byte shifted left by (byte % 32) bits
func FuzzSchedulerWheel(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 0, 10, 0, 0, 3, 50, 0})
	f.Add([]byte{1, 1, 0, 40, 2, 0, 4, 1, 30, 3, 255, 255})
	f.Add([]byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, // three ties at delta 1
		2, 1, // cancel the middle one
		3, 255, 0, // fire the rest
		1, 3, 0, 33, // far-future timer crossing levels
		4, 9, 40, // leap toward it
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		wheel := NewScheduler()
		heap := NewHeapScheduler()
		var wheelLog, heapLog []string
		var wheelTimers []Timer
		var heapTimers []*HeapTimer
		id := 0

		schedule := func(delta Time) {
			n := id
			id++
			wheelTimers = append(wheelTimers, wheel.After(delta, func() {
				wheelLog = append(wheelLog, fmt.Sprintf("%d@%d", n, wheel.Now()))
			}))
			heapTimers = append(heapTimers, heap.After(delta, func() {
				heapLog = append(heapLog, fmt.Sprintf("%d@%d", n, heap.Now()))
			}))
		}
		check := func() {
			if len(wheelLog) != len(heapLog) {
				t.Fatalf("fired %d events on wheel, %d on heap", len(wheelLog), len(heapLog))
			}
			for i := range wheelLog {
				if wheelLog[i] != heapLog[i] {
					t.Fatalf("event %d: wheel fired %s, heap fired %s", i, wheelLog[i], heapLog[i])
				}
			}
			if wheel.Now() != heap.Now() || wheel.Pending() != heap.Pending() {
				t.Fatalf("state skew: wheel now=%d pending=%d, heap now=%d pending=%d",
					wheel.Now(), wheel.Pending(), heap.Now(), heap.Pending())
			}
		}

		for i := 0; i < len(data) && id < 1<<12; {
			op := data[i]
			i++
			take := func(n int) []byte {
				b := make([]byte, n)
				copy(b, data[i:min(len(data), i+n)])
				i += n
				return b
			}
			switch op % 5 {
			case 0:
				b := take(3)
				schedule(Time(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16))
			case 1:
				b := take(3)
				shift := uint(b[2]) % 48
				schedule(Time(uint64(binary.LittleEndian.Uint16(b[:2])) << shift))
			case 2:
				b := take(1)
				if len(wheelTimers) > 0 {
					j := int(b[0]) % len(wheelTimers)
					wheelTimers[j].Cancel()
					heapTimers[j].Cancel()
				}
			case 3:
				b := take(2)
				d := Time(binary.LittleEndian.Uint16(b))
				wheel.RunUntil(wheel.Now() + d)
				heap.RunUntil(heap.Now() + d)
				check()
			case 4:
				b := take(2)
				d := Time(uint64(b[0]) << (uint(b[1]) % 32))
				wheel.RunUntil(wheel.Now() + d)
				heap.RunUntil(heap.Now() + d)
				check()
			}
		}
		// Drain both engines completely and compare the final state.
		wheel.RunUntil(wheel.Now() + Time(1)<<56)
		heap.RunUntil(heap.Now() + Time(1)<<56)
		check()
	})
}
