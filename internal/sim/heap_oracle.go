package sim

// HeapScheduler is the original binary-heap event scheduler, retained as a
// differential reference oracle for the timing-wheel Scheduler: the property
// and fuzz tests in scheduler_wheel_test.go drive both implementations with
// identical workloads and assert byte-identical fire order. Unlike the
// pre-refactor version it uses a concrete *HeapTimer-typed heap with
// hand-rolled sift routines instead of container/heap, which removes one
// interface allocation and type assertion per event — keeping the oracle
// cheap enough to run inside fuzzing loops.
//
// Semantics mirror Scheduler exactly: same-instant events fire FIFO by
// schedule order, Cancel removes eagerly, RunUntil pins the clock to its
// deadline.
type HeapScheduler struct {
	now  Time
	heap []*HeapTimer
	seq  uint64

	executed uint64
}

// HeapTimer is the oracle's timer handle.
type HeapTimer struct {
	at        Time
	seq       uint64
	fn        func()
	sched     *HeapScheduler
	index     int // heap index, -1 when popped or cancelled
	cancelled bool
}

// Cancel prevents the timer from firing and removes it from the event heap
// in O(log N). Safe to call multiple times.
func (t *HeapTimer) Cancel() {
	if t.cancelled {
		return
	}
	t.cancelled = true
	t.fn = nil
	if t.sched != nil && t.index >= 0 {
		t.sched.remove(t.index)
	}
}

// Cancelled reports whether Cancel was called.
func (t *HeapTimer) Cancelled() bool { return t.cancelled }

// When returns the instant the timer is (or was) scheduled to fire.
func (t *HeapTimer) When() Time { return t.at }

// NewHeapScheduler returns an oracle scheduler with the clock at zero.
func NewHeapScheduler() *HeapScheduler {
	return &HeapScheduler{}
}

// Now returns the current simulated time.
func (s *HeapScheduler) Now() Time { return s.now }

// Pending returns the number of events not yet fired or cancelled.
func (s *HeapScheduler) Pending() int { return len(s.heap) }

// Executed returns the number of events that have fired so far.
func (s *HeapScheduler) Executed() uint64 { return s.executed }

// At schedules fn to run at instant t.
func (s *HeapScheduler) At(t Time, fn func()) (*HeapTimer, error) {
	if t < s.now {
		return nil, ErrTimeReversal
	}
	tm := &HeapTimer{at: t, seq: s.seq, fn: fn, sched: s, index: len(s.heap)}
	s.seq++
	s.heap = append(s.heap, tm)
	s.siftUp(tm.index)
	return tm, nil
}

// After schedules fn to run d after the current instant.
func (s *HeapScheduler) After(d Time, fn func()) *HeapTimer {
	if d < 0 {
		d = 0
	}
	tm, _ := s.At(s.now+d, fn)
	return tm
}

// Step fires the earliest pending event, advancing the clock to its instant.
func (s *HeapScheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	tm := s.pop()
	s.now = tm.at
	fn := tm.fn
	tm.fn = nil
	s.executed++
	fn()
	return true
}

// RunUntil fires events in order until the clock would pass the deadline,
// then sets the clock to exactly the deadline.
func (s *HeapScheduler) RunUntil(deadline Time) {
	for len(s.heap) > 0 && s.heap[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run fires all events until none remain.
func (s *HeapScheduler) Run() {
	for s.Step() {
	}
}

// Peek returns the earliest pending timer without firing it, or nil.
func (s *HeapScheduler) Peek() *HeapTimer {
	if len(s.heap) == 0 {
		return nil
	}
	return s.heap[0]
}

// less orders timers by (at, seq) so same-instant events fire FIFO.
func (s *HeapScheduler) less(i, j int) bool {
	a, b := s.heap[i], s.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *HeapScheduler) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].index = i
	s.heap[j].index = j
}

func (s *HeapScheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *HeapScheduler) siftDown(i int) {
	n := len(s.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && s.less(right, left) {
			min = right
		}
		if !s.less(min, i) {
			return
		}
		s.swap(i, min)
		i = min
	}
}

// pop removes and returns the root.
func (s *HeapScheduler) pop() *HeapTimer {
	tm := s.heap[0]
	last := len(s.heap) - 1
	s.swap(0, last)
	s.heap[last] = nil
	s.heap = s.heap[:last]
	tm.index = -1
	if last > 0 {
		s.siftDown(0)
	}
	return tm
}

// remove deletes the element at index i.
func (s *HeapScheduler) remove(i int) {
	last := len(s.heap) - 1
	tm := s.heap[i]
	if i != last {
		s.swap(i, last)
	}
	s.heap[last] = nil
	s.heap = s.heap[:last]
	tm.index = -1
	if i < last {
		s.siftDown(i)
		s.siftUp(i)
	}
}
