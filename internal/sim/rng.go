package sim

import (
	"hash/fnv"
	"math/rand"
	"strconv"
)

// DeriveSeed deterministically derives a sub-seed from a base seed and a
// stream name. Every stochastic component in the simulator draws from its
// own named stream so that adding randomness to one subsystem never perturbs
// another — a prerequisite for meaningful A/B comparisons between schemes.
func DeriveSeed(base int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	_, _ = h.Write([]byte(strconv.FormatInt(base, 16)))
	return int64(h.Sum64()) //nolint:gosec // deliberate wraparound
}

// Stream returns a new pseudo-random stream for the given base seed and
// name. Streams with distinct names are statistically independent.
func Stream(base int64, name string) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(base, name))) //nolint:gosec // simulation, not crypto
}
