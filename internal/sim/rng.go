package sim

import (
	"hash/fnv"
	"math/rand"
	"strconv"
)

// DeriveSeed deterministically derives a sub-seed from a base seed and a
// stream name. Every stochastic component in the simulator draws from its
// own named stream so that adding randomness to one subsystem never perturbs
// another — a prerequisite for meaningful A/B comparisons between schemes.
func DeriveSeed(base int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	_, _ = h.Write([]byte(strconv.FormatInt(base, 16)))
	return int64(h.Sum64()) //nolint:gosec // deliberate wraparound
}

// Stream returns a new pseudo-random stream for the given base seed and
// name. Streams with distinct names are statistically independent.
func Stream(base int64, name string) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(base, name))) //nolint:gosec // simulation, not crypto
}

// ReplicationSeed derives the seed for replication rep of a batch rooted
// at base. Replication 0 runs on the base seed itself, so a single
// replication is exactly Run(cfg); later replications mix (base, rep)
// through a splitmix64 finalizer. Plain base+rep derivation would make
// adjacent base seeds share replication seeds (base 1 rep 1 == base 2
// rep 0), silently correlating experiment rows; the mixed seeds are
// spread over the whole 64-bit space instead.
func ReplicationSeed(base int64, rep int) int64 {
	if rep == 0 {
		return base
	}
	z := uint64(base) + uint64(rep)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31)) //nolint:gosec // deliberate wraparound
}
