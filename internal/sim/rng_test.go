package sim

import "testing"

func TestReplicationSeedRepZeroIsBase(t *testing.T) {
	for _, base := range []int64{0, 1, -1, 42, 1 << 40} {
		if got := ReplicationSeed(base, 0); got != base {
			t.Fatalf("ReplicationSeed(%d, 0) = %d, want the base unchanged", base, got)
		}
	}
}

// TestReplicationSeedNoOverlap pins the bug the mixer fixes: with the old
// base+rep rule, base 1 rep 1 and base 2 rep 0 ran the same world. Every
// (base, rep) pair over a grid of adjacent bases must now map to a
// distinct seed.
func TestReplicationSeedNoOverlap(t *testing.T) {
	const bases, reps = 16, 16
	seen := make(map[int64][2]int, bases*reps)
	for b := 0; b < bases; b++ {
		for r := 0; r < reps; r++ {
			s := ReplicationSeed(int64(b), r)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (base=%d, rep=%d) and (base=%d, rep=%d) both map to %d",
					b, r, prev[0], prev[1], s)
			}
			seen[s] = [2]int{b, r}
		}
	}
}

func TestReplicationSeedDeterministic(t *testing.T) {
	if ReplicationSeed(1, 3) != ReplicationSeed(1, 3) {
		t.Fatal("ReplicationSeed is not a pure function")
	}
	if ReplicationSeed(1, 1) == ReplicationSeed(2, 1) {
		t.Fatal("different bases collided at the same rep")
	}
	if ReplicationSeed(1, 1) == 2 {
		t.Fatal("rep 1 of base 1 still equals base 2 (old additive rule)")
	}
}
