package sim

import (
	"errors"
	"math/bits"
)

// ErrTimeReversal is returned by Scheduler.At when an event is scheduled in
// the past.
var ErrTimeReversal = errors.New("sim: event scheduled before current time")

// The scheduler is a hierarchical timing wheel: 8 levels of 256 slots, each
// level covering a byte of the 64-bit microsecond clock, so the full int64
// time range is addressable without overflow wheels. An event at instant t
// is hashed to the highest byte in which t differs from the wheel's
// normalization point (`cur`, the instant of the last fired event):
//
//	level = (bits.Len64(t ^ cur) - 1) / 8    (0 when t == cur)
//	slot  = (t >> (8*level)) & 255
//
// A level-0 slot therefore holds exactly one timestamp, while higher-level
// slots hold a range of instants that is refined lazily: whenever `cur`
// advances into a higher-level slot's range, that slot is drained and its
// events re-hashed to strictly lower levels (a single re-placement always
// suffices; see normalize). The MAC/PSM timers that dominate the event mix
// live almost entirely in level 0, where insert, cancel, and pop are O(1).
//
// Slot lists are intrusive, doubly linked, and kept sorted by schedule
// sequence number so same-instant events fire in FIFO order exactly as the
// binary-heap scheduler fired them (HeapScheduler in heap_oracle.go is
// retained as the reference oracle; the differential tests assert
// byte-identical fire order). Nodes are recycled through a freelist and a
// generation counter makes stale Timer handles held by model code inert.

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 8
	occWords    = wheelSlots / 64
	chunkNodes  = 64
)

// timerNode is a pooled wheel entry. gen is bumped when the node is released
// (fired or cancelled), which invalidates every Timer handle pointing at it.
type timerNode struct {
	at    Time
	seq   uint64
	gen   uint64
	fn    func()
	next  *timerNode
	prev  *timerNode
	sched *Scheduler
	level uint32
	slot  uint32
}

// Timer is a handle to a scheduled event. It can be cancelled before it
// fires; cancelling an already-fired or already-cancelled timer is a no-op.
// The zero Timer is inert: Cancel does nothing and Active reports false.
type Timer struct {
	n   *timerNode
	gen uint64
	at  Time
	c   bool
}

// Cancel prevents the timer from firing and removes it from its wheel slot
// in O(1). Safe to call multiple times, and safe on handles whose event has
// already fired (the generation check makes the call a no-op even though the
// underlying node may have been recycled for an unrelated event).
func (t *Timer) Cancel() {
	if t.c {
		return
	}
	t.c = true
	n := t.n
	if n == nil || n.gen != t.gen {
		return
	}
	s := n.sched
	s.unlink(n)
	s.release(n)
}

// Cancelled reports whether Cancel was called on this handle.
func (t *Timer) Cancelled() bool { return t.c }

// Active reports whether the event is still pending: not yet fired and not
// cancelled through any handle.
func (t *Timer) Active() bool {
	return t.n != nil && t.n.gen == t.gen
}

// When returns the instant the timer is (or was) scheduled to fire.
func (t *Timer) When() Time { return t.at }

// ExecHook observes every timer the scheduler surfaces for execution
// (invariant auditing). cancelled reports a timer that reached the dispatch
// path despite having been cancelled — Cancel unlinks timers from the wheel
// eagerly, so a cancelled timer surfacing is always a bug.
type ExecHook func(at Time, cancelled bool)

// wheelSlot is one doubly-linked, seq-sorted bucket.
type wheelSlot struct {
	head, tail *timerNode
}

// Scheduler is a deterministic discrete-event scheduler. Events scheduled
// for the same instant fire in the order they were scheduled (FIFO), which
// keeps runs reproducible.
type Scheduler struct {
	now Time
	cur Time // wheel normalization point: every pending event has at >= cur
	seq uint64

	wheel      [wheelLevels][wheelSlots]wheelSlot
	occ        [wheelLevels][occWords]uint64
	levelCount [wheelLevels]int32
	pending    int
	free       *timerNode

	executed uint64
	hook     ExecHook

	stopEvery uint64
	stopFn    func() bool
	stopped   bool
}

// SetExecHook installs the execution observer (nil disables it). The hook
// only observes; it must not schedule or cancel timers.
func (s *Scheduler) SetExecHook(h ExecHook) { s.hook = h }

// SetStopCheck installs a cooperative stop condition, polled once every
// `every` executed events (0 selects 1). When the check reports true the
// scheduler latches into the stopped state: no further events fire, Step
// returns false, and RunUntil returns without advancing the clock to its
// deadline. A check that never reports true leaves the run byte-identical
// to one with no check installed — the poll only reads. nil uninstalls.
func (s *Scheduler) SetStopCheck(every uint64, fn func() bool) {
	if every == 0 {
		every = 1
	}
	s.stopEvery = every
	s.stopFn = fn
	s.stopped = false
}

// Stopped reports whether the stop check ended the run early.
func (s *Scheduler) Stopped() bool { return s.stopped }

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events not yet fired or cancelled.
// Cancel unlinks its timer from the wheel eagerly, so this is O(1).
func (s *Scheduler) Pending() int { return s.pending }

// Executed returns the number of events that have fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// alloc pops a recycled node from the freelist, growing it a chunk at a
// time so steady-state scheduling performs no heap allocation.
func (s *Scheduler) alloc() *timerNode {
	n := s.free
	if n == nil {
		chunk := make([]timerNode, chunkNodes)
		for i := 1; i < chunkNodes; i++ {
			chunk[i].sched = s
			chunk[i].next = s.free
			s.free = &chunk[i]
		}
		n = &chunk[0]
		n.sched = s
		return n
	}
	s.free = n.next
	return n
}

// release recycles a node. Bumping gen here — not at allocation — means a
// node sitting on the freelist already rejects stale handle operations.
func (s *Scheduler) release(n *timerNode) {
	n.gen++
	n.fn = nil
	n.prev = nil
	n.next = s.free
	s.free = n
}

// place hashes n into the wheel relative to the normalization point and
// inserts it into its slot's seq-sorted list. Direct inserts carry the
// highest seq yet issued, so the backward walk from the tail is O(1) for
// them; only re-placements during normalize ever walk further.
func (s *Scheduler) place(n *timerNode) {
	var level uint32
	if diff := uint64(n.at) ^ uint64(s.cur); diff != 0 {
		level = uint32(bits.Len64(diff)-1) >> 3
	}
	slot := uint32(uint64(n.at)>>(level*wheelBits)) & wheelMask
	n.level, n.slot = level, slot
	sl := &s.wheel[level][slot]
	if sl.tail == nil {
		n.prev, n.next = nil, nil
		sl.head, sl.tail = n, n
		s.occ[level][slot>>6] |= 1 << (slot & 63)
		s.levelCount[level]++
		return
	}
	p := sl.tail
	for p != nil && p.seq > n.seq {
		p = p.prev
	}
	if p == nil {
		n.prev, n.next = nil, sl.head
		sl.head.prev = n
		sl.head = n
		return
	}
	n.prev, n.next = p, p.next
	if p.next != nil {
		p.next.prev = n
	} else {
		sl.tail = n
	}
	p.next = n
}

// unlink removes n from its slot list and updates occupancy.
func (s *Scheduler) unlink(n *timerNode) {
	sl := &s.wheel[n.level][n.slot]
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		sl.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		sl.tail = n.prev
	}
	if sl.head == nil {
		s.occ[n.level][n.slot>>6] &^= 1 << (n.slot & 63)
		s.levelCount[n.level]--
	}
	s.pending--
}

// normalize drains, for each level >= 1, the slot indexed by the current
// digit of `cur`. Events parked there now agree with cur on that digit and
// everything above it, so they re-hash to a strictly lower level — and never
// into the cur-indexed slot of that lower level (their xor with cur is below
// the lower level's digit), so a single re-placement pass terminates.
// Draining head-to-tail keeps seq order, so merged slots stay FIFO-sorted.
func (s *Scheduler) normalize() {
	for level := uint32(1); level < wheelLevels; level++ {
		if s.levelCount[level] == 0 {
			continue
		}
		slot := uint32(uint64(s.cur)>>(level*wheelBits)) & wheelMask
		if s.occ[level][slot>>6]&(1<<(slot&63)) == 0 {
			continue
		}
		sl := &s.wheel[level][slot]
		n := sl.head
		sl.head, sl.tail = nil, nil
		s.occ[level][slot>>6] &^= 1 << (slot & 63)
		s.levelCount[level]--
		for n != nil {
			next := n.next
			s.place(n)
			n = next
		}
	}
}

// nextOccupied returns the first occupied slot index >= from at the given
// level, scanning the occupancy bitmap.
func (s *Scheduler) nextOccupied(level, from uint32) (uint32, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	w := from >> 6
	word := s.occ[level][w] & (^uint64(0) << (from & 63))
	for {
		if word != 0 {
			return w<<6 + uint32(bits.TrailingZeros64(word)), true
		}
		w++
		if w >= occWords {
			return 0, false
		}
		word = s.occ[level][w]
	}
}

// findMin locates the earliest pending event without removing it. After
// normalization every pending node at level k >= 1 agrees with cur on all
// digits above k and exceeds cur's digit k, which yields a total order:
// all level-0 events precede all level-1 events precede all level-2 events,
// and within a level lower slots precede higher slots. Level-0 slots hold a
// single timestamp so the list head (lowest seq) is the slot minimum;
// higher-level slots span a range of instants and are walked.
func (s *Scheduler) findMin() *timerNode {
	if s.pending == 0 {
		return nil
	}
	s.normalize()
	if s.levelCount[0] > 0 {
		if slot, ok := s.nextOccupied(0, uint32(uint64(s.cur))&wheelMask); ok {
			return s.wheel[0][slot].head
		}
	}
	for level := uint32(1); level < wheelLevels; level++ {
		if s.levelCount[level] == 0 {
			continue
		}
		curIdx := uint32(uint64(s.cur)>>(level*wheelBits)) & wheelMask
		slot, ok := s.nextOccupied(level, curIdx+1)
		if !ok {
			continue
		}
		best := s.wheel[level][slot].head
		for n := best.next; n != nil; n = n.next {
			if n.at < best.at {
				best = n
			}
		}
		return best
	}
	return nil
}

// fireNode dispatches one event: advances the clock and the wheel
// normalization point to its instant, recycles the node, and runs the
// callback, then polls the stop check.
func (s *Scheduler) fireNode(n *timerNode) {
	if s.hook != nil {
		s.hook(n.at, false)
	}
	s.unlink(n)
	s.now = n.at
	s.cur = n.at
	fn := n.fn
	s.release(n)
	s.executed++
	fn()
	if s.stopFn != nil && s.executed%s.stopEvery == 0 && s.stopFn() {
		s.stopped = true
	}
}

// At schedules fn to run at instant t. It returns an error if t is in the
// past relative to the scheduler clock.
func (s *Scheduler) At(t Time, fn func()) (Timer, error) {
	if t < s.now {
		return Timer{}, ErrTimeReversal
	}
	n := s.alloc()
	n.at = t
	n.seq = s.seq
	n.fn = fn
	s.seq++
	s.place(n)
	s.pending++
	return Timer{n: n, gen: n.gen, at: t}, nil
}

// After schedules fn to run d after the current instant. A non-positive d
// schedules the event for "now" (it still runs through the event loop, after
// any events already queued for the current instant).
func (s *Scheduler) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	tm, _ := s.At(s.now+d, fn) // cannot fail: now+d >= now
	return tm
}

// Step fires the earliest pending event, advancing the clock to its instant.
// It returns false when no events remain or the stop check has triggered.
func (s *Scheduler) Step() bool {
	if s.stopped {
		return false
	}
	n := s.findMin()
	if n == nil {
		return false
	}
	s.fireNode(n)
	return true
}

// RunUntil fires events in order until the clock would pass the deadline,
// then sets the clock to exactly the deadline. Events scheduled at the
// deadline itself are fired. A triggered stop check ends the loop early
// and leaves the clock at the last executed instant, so Now reports how
// far the run got.
func (s *Scheduler) RunUntil(deadline Time) {
	for !s.stopped {
		n := s.findMin()
		if n == nil || n.at > deadline {
			break
		}
		s.fireNode(n)
	}
	if s.stopped {
		return
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run fires all events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}
