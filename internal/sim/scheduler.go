package sim

import (
	"container/heap"
	"errors"
)

// ErrTimeReversal is returned by Scheduler.At when an event is scheduled in
// the past.
var ErrTimeReversal = errors.New("sim: event scheduled before current time")

// Timer is a handle to a scheduled event. It can be cancelled before it
// fires; cancelling an already-fired or already-cancelled timer is a no-op.
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	sched     *Scheduler
	index     int // heap index, -1 when popped or cancelled
	cancelled bool
}

// Cancel prevents the timer from firing and removes it from the event heap
// in O(log N). Safe to call multiple times.
func (t *Timer) Cancel() {
	if t.cancelled {
		return
	}
	t.cancelled = true
	t.fn = nil
	if t.sched != nil && t.index >= 0 {
		heap.Remove(&t.sched.heap, t.index)
	}
}

// Cancelled reports whether Cancel was called.
func (t *Timer) Cancelled() bool { return t.cancelled }

// When returns the instant the timer is (or was) scheduled to fire.
func (t *Timer) When() Time { return t.at }

// ExecHook observes every timer the scheduler surfaces for execution
// (invariant auditing). cancelled reports a timer that reached the dispatch
// path despite having been cancelled — Cancel removes timers from the heap
// eagerly, so a cancelled timer surfacing is always a bug.
type ExecHook func(at Time, cancelled bool)

// Scheduler is a deterministic discrete-event scheduler. Events scheduled
// for the same instant fire in the order they were scheduled (FIFO), which
// keeps runs reproducible.
type Scheduler struct {
	now  Time
	heap eventHeap
	seq  uint64

	executed uint64
	hook     ExecHook

	stopEvery uint64
	stopFn    func() bool
	stopped   bool
}

// SetExecHook installs the execution observer (nil disables it). The hook
// only observes; it must not schedule or cancel timers.
func (s *Scheduler) SetExecHook(h ExecHook) { s.hook = h }

// SetStopCheck installs a cooperative stop condition, polled once every
// `every` executed events (0 selects 1). When the check reports true the
// scheduler latches into the stopped state: no further events fire, Step
// returns false, and RunUntil returns without advancing the clock to its
// deadline. A check that never reports true leaves the run byte-identical
// to one with no check installed — the poll only reads. nil uninstalls.
func (s *Scheduler) SetStopCheck(every uint64, fn func() bool) {
	if every == 0 {
		every = 1
	}
	s.stopEvery = every
	s.stopFn = fn
	s.stopped = false
}

// Stopped reports whether the stop check ended the run early.
func (s *Scheduler) Stopped() bool { return s.stopped }

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events not yet fired or cancelled.
// Cancel removes its timer from the heap eagerly, so this is O(1).
func (s *Scheduler) Pending() int { return len(s.heap) }

// Executed returns the number of events that have fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// At schedules fn to run at instant t. It returns an error if t is in the
// past relative to the scheduler clock.
func (s *Scheduler) At(t Time, fn func()) (*Timer, error) {
	if t < s.now {
		return nil, ErrTimeReversal
	}
	tm := &Timer{at: t, seq: s.seq, fn: fn, sched: s}
	s.seq++
	heap.Push(&s.heap, tm)
	return tm, nil
}

// After schedules fn to run d after the current instant. A non-positive d
// schedules the event for "now" (it still runs through the event loop, after
// any events already queued for the current instant).
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	tm, _ := s.At(s.now+d, fn) // cannot fail: now+d >= now
	return tm
}

// Step fires the earliest pending event, advancing the clock to its instant.
// It returns false when no events remain or the stop check has triggered.
func (s *Scheduler) Step() bool {
	if s.stopped {
		return false
	}
	for len(s.heap) > 0 {
		tm, ok := heap.Pop(&s.heap).(*Timer)
		if !ok {
			return false
		}
		if s.hook != nil {
			s.hook(tm.at, tm.cancelled)
		}
		if tm.cancelled {
			continue
		}
		s.now = tm.at
		fn := tm.fn
		tm.fn = nil
		s.executed++
		fn()
		if s.stopFn != nil && s.executed%s.stopEvery == 0 && s.stopFn() {
			s.stopped = true
		}
		return true
	}
	return false
}

// RunUntil fires events in order until the clock would pass the deadline,
// then sets the clock to exactly the deadline. Events scheduled at the
// deadline itself are fired. A triggered stop check ends the loop early
// and leaves the clock at the last executed instant, so Now reports how
// far the run got.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.heap) > 0 && !s.stopped {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.stopped {
		return
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run fires all events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

func (s *Scheduler) peek() *Timer {
	for len(s.heap) > 0 {
		if s.heap[0].cancelled {
			if s.hook != nil {
				s.hook(s.heap[0].at, true)
			}
			heap.Pop(&s.heap)
			continue
		}
		return s.heap[0]
	}
	return nil
}

// eventHeap orders timers by (at, seq) so same-instant events fire FIFO.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	tm, ok := x.(*Timer)
	if !ok {
		return
	}
	tm.index = len(*h)
	*h = append(*h, tm)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	tm.index = -1
	*h = old[:n-1]
	return tm
}
