package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerFiresInOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(30*Millisecond, func() { got = append(got, 3) })
	s.After(10*Millisecond, func() { got = append(got, 1) })
	s.After(20*Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestSchedulerAtRejectsPast(t *testing.T) {
	s := NewScheduler()
	s.After(Second, func() {})
	s.Run()
	if _, err := s.At(Millisecond, func() {}); err != ErrTimeReversal {
		t.Fatalf("At(past) error = %v, want ErrTimeReversal", err)
	}
}

func TestSchedulerNegativeAfterFiresNow(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-5*Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.After(Second, func() { fired = true })
	tm.Cancel()
	tm.Cancel() // idempotent
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestSchedulerPendingSkipsCancelled(t *testing.T) {
	s := NewScheduler()
	a := s.After(Second, func() {})
	s.After(2*Second, func() {})
	a.Cancel()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, d := range []Time{Second, 2 * Second, 3 * Second} {
		d := d
		s.After(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by 2s, want 2", len(fired))
	}
	if s.Now() != 2*Second {
		t.Fatalf("Now() = %v, want 2s", s.Now())
	}
	s.RunUntil(10 * Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by 10s, want 3", len(fired))
	}
	if s.Now() != 10*Second {
		t.Fatalf("Now() = %v, want clock pinned to deadline 10s", s.Now())
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 5 {
			s.After(Millisecond, rec)
		}
	}
	s.After(0, rec)
	s.Run()
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if s.Now() != 4*Millisecond {
		t.Fatalf("Now() = %v, want 4ms", s.Now())
	}
}

func TestSchedulerExecutedCount(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.After(Time(i)*Millisecond, func() {})
	}
	s.Run()
	if s.Executed() != 7 {
		t.Fatalf("Executed() = %d, want 7", s.Executed())
	}
}

func TestSchedulerCancelDuringCallback(t *testing.T) {
	s := NewScheduler()
	fired := false
	var victim Timer
	victim = s.After(2*Second, func() { fired = true })
	s.After(Second, func() { victim.Cancel() })
	s.Run()
	if fired {
		t.Fatal("timer cancelled from another event still fired")
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the clock ends at the max delay.
func TestSchedulerOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		s := NewScheduler()
		var fireTimes []Time
		var maxT Time
		for _, raw := range delays {
			d := Time(raw) * Microsecond
			if d > maxT {
				maxT = d
			}
			s.After(d, func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return len(delays) == 0 || s.Now() == maxT
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	tests := []struct {
		give    float64
		want    Time
		wantSec float64
	}{
		{give: 1.0, want: Second, wantSec: 1.0},
		{give: 0.001, want: Millisecond, wantSec: 0.001},
		{give: 0.0000005, want: Microsecond, wantSec: 1e-6}, // rounds up
		{give: 1125, want: 1125 * Second, wantSec: 1125},
	}
	for _, tt := range tests {
		if got := FromSeconds(tt.give); got != tt.want {
			t.Errorf("FromSeconds(%v) = %v, want %v", tt.give, got, tt.want)
		}
		if got := tt.want.Seconds(); got != tt.wantSec {
			t.Errorf("(%v).Seconds() = %v, want %v", tt.want, got, tt.wantSec)
		}
	}
	if got := (250 * Millisecond).Milliseconds(); got != 250 {
		t.Errorf("Milliseconds() = %v, want 250", got)
	}
	if MinTime(1, 2) != 1 || MaxOf(1, 2) != 2 {
		t.Error("MinTime/MaxOf broken")
	}
	if (2 * Second).String() != "2.000000s" {
		t.Errorf("String() = %q", (2 * Second).String())
	}
}

func TestDeriveSeedStability(t *testing.T) {
	a := DeriveSeed(42, "mobility")
	b := DeriveSeed(42, "mobility")
	c := DeriveSeed(42, "traffic")
	d := DeriveSeed(43, "mobility")
	if a != b {
		t.Error("DeriveSeed not deterministic")
	}
	if a == c {
		t.Error("DeriveSeed ignores name")
	}
	if a == d {
		t.Error("DeriveSeed ignores base seed")
	}
}

func TestStreamIndependence(t *testing.T) {
	r1 := Stream(7, "a")
	r2 := Stream(7, "a")
	r3 := Stream(7, "b")
	same, diff := true, false
	for i := 0; i < 32; i++ {
		v1, v2, v3 := r1.Int63(), r2.Int63(), r3.Int63()
		if v1 != v2 {
			same = false
		}
		if v1 != v3 {
			diff = true
		}
	}
	if !same {
		t.Error("identical streams diverged")
	}
	if !diff {
		t.Error("distinct streams produced identical output")
	}
}

func TestStopCheckLatchesAndHalts(t *testing.T) {
	s := NewScheduler()
	fired := 0
	for i := 0; i < 100; i++ {
		s.After(Time(i)*Millisecond, func() { fired++ })
	}
	// Stop after 10 polls at every=1: exactly 10 events fire.
	polls := 0
	s.SetStopCheck(1, func() bool {
		polls++
		return polls >= 10
	})
	s.RunUntil(Second)
	if fired != 10 {
		t.Fatalf("fired %d events, want 10", fired)
	}
	if !s.Stopped() {
		t.Fatal("scheduler not stopped")
	}
	if s.Now() != 9*Millisecond {
		t.Fatalf("clock at %v, want last executed instant 9ms (not the deadline)", s.Now())
	}
	if s.Pending() != 90 {
		t.Fatalf("pending %d, want 90", s.Pending())
	}
	// Latched: further Step/RunUntil calls fire nothing.
	if s.Step() {
		t.Fatal("Step fired after stop")
	}
	s.RunUntil(Second)
	if fired != 10 {
		t.Fatalf("RunUntil fired events after stop: %d", fired)
	}
}

func TestStopCheckPollInterval(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 20; i++ {
		s.After(Time(i)*Millisecond, func() {})
	}
	polls := 0
	s.SetStopCheck(8, func() bool { polls++; return false })
	s.Run()
	// 20 executed events polled every 8: after events 8 and 16.
	if polls != 2 {
		t.Fatalf("polled %d times, want 2", polls)
	}
	if s.Stopped() {
		t.Fatal("inert check stopped the run")
	}
	if s.Executed() != 20 {
		t.Fatalf("executed %d, want 20", s.Executed())
	}
}

func TestStopCheckInertIsIdentical(t *testing.T) {
	run := func(check bool) (uint64, Time) {
		s := NewScheduler()
		var chain func()
		n := 0
		chain = func() {
			n++
			if n < 500 {
				s.After(Millisecond, chain)
			}
		}
		s.After(0, chain)
		if check {
			s.SetStopCheck(4, func() bool { return false })
		}
		s.RunUntil(Second)
		return s.Executed(), s.Now()
	}
	e1, t1 := run(false)
	e2, t2 := run(true)
	if e1 != e2 || t1 != t2 {
		t.Fatalf("inert stop check perturbed the run: (%d, %v) vs (%d, %v)", e1, t1, e2, t2)
	}
}
