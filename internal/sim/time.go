// Package sim provides the deterministic discrete-event simulation kernel
// used by every other subsystem: a microsecond-resolution virtual clock, a
// binary-heap event scheduler with cancellable timers, and named,
// reproducible pseudo-random streams derived from a single run seed.
//
// The kernel is single-threaded by design: all model code runs inside event
// callbacks, so no locking is required and runs are bit-for-bit reproducible
// for a given seed.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulated instant or duration, measured in microseconds since
// the start of the run. A single type is used for both instants and
// durations, mirroring how ns-2 treats its scalar clock.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable instant.
const MaxTime Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 {
	return float64(t) / float64(Second)
}

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 {
	return float64(t) / float64(Millisecond)
}

// String formats the time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time {
	return Time(math.Round(s * float64(Second)))
}

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxOf returns the larger of a and b.
func MaxOf(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
