// Package stats provides the small statistical toolkit used by the
// metrics collector and the benchmark harness: moments, percentiles, and a
// replication aggregator for multi-seed experiment runs.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// samples). The paper's Fig. 6 "variance of energy consumption" is the
// population variance over the 100 nodes.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleVariance returns the unbiased sample variance of xs (Bessel's
// correction: divide by n-1; 0 for fewer than two samples). Use it when xs
// is a sample standing in for a larger population — across-replication
// error bars, not the paper's per-node Fig. 6 variance.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// SampleStdDev returns the sample standard deviation of xs.
func SampleStdDev(xs []float64) float64 { return math.Sqrt(SampleVariance(xs)) }

// Min returns the smallest value (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. Degenerate inputs are guarded
// explicitly: empty input returns 0, a single element is every percentile
// of itself. It does not mutate xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if len(xs) == 1 {
		return xs[0]
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient of (xs, ys), or
// 0 when undefined (mismatched/short inputs or zero variance).
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// SortedAscending returns a sorted copy of xs — the presentation used by
// the paper's Fig. 5 (per-node energy drawn in increasing order).
func SortedAscending(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// Replications aggregates one scalar metric across repeated runs with
// different seeds.
type Replications struct {
	samples []float64
}

// Add records one replication's value.
func (r *Replications) Add(v float64) { r.samples = append(r.samples, v) }

// N returns the number of replications recorded.
func (r *Replications) N() int { return len(r.samples) }

// Mean returns the across-replication mean.
func (r *Replications) Mean() float64 { return Mean(r.samples) }

// StdDev returns the across-replication sample standard deviation
// (Bessel's correction): the replications are a sample of the seed
// population, so population variance would understate the error bars.
func (r *Replications) StdDev() float64 { return SampleStdDev(r.samples) }

// CI95 returns the half-width of a Student-t 95% confidence interval for
// the mean (0 for fewer than two samples). The paper suite averages 3–10
// replications; at those sizes the old 1.96 normal critical value
// understated the interval by up to ~30% (t_{0.975,2} = 4.303 at n = 3),
// so the critical value comes from the t distribution with n-1 degrees of
// freedom instead.
func (r *Replications) CI95() float64 {
	n := len(r.samples)
	if n < 2 {
		return 0
	}
	return TCritical95(n-1) * SampleStdDev(r.samples) / math.Sqrt(float64(n))
}

// tCrit95 tabulates two-tailed 95% Student-t critical values t_{0.975,df}.
// Degrees of freedom 1–30 are exact to three decimals; selected larger
// entries bridge to the normal limit.
var tCrit95 = map[int]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
	16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
	21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
	26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
	40: 2.021, 50: 2.009, 60: 2.000, 80: 1.990, 100: 1.984, 120: 1.980,
}

// TCritical95 returns the two-tailed 95% Student-t critical value for df
// degrees of freedom. Untabulated df fall back to the nearest tabulated
// value below (a smaller df has a larger critical value, so the rounding
// is conservative: intervals widen, never narrow); beyond df 120 the
// normal limit 1.96 applies. df < 1 is clamped to 1.
func TCritical95(df int) float64 {
	if df < 1 {
		df = 1
	}
	if df > 120 {
		return 1.96
	}
	for d := df; d >= 1; d-- {
		if v, ok := tCrit95[d]; ok {
			return v
		}
	}
	return 1.96 // unreachable: df 1 is tabulated
}
