package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func close2(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Sum(xs); got != 40 {
		t.Errorf("Sum = %v", got)
	}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Sum(nil) != 0 || Variance(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-input moments should be 0")
	}
	if Variance([]float64{7}) != 0 {
		t.Error("singleton variance should be 0")
	}
	if SampleVariance(nil) != 0 || SampleVariance([]float64{7}) != 0 {
		t.Error("sample variance of fewer than two samples should be 0")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	for _, p := range []float64{-10, 0, 37, 50, 100, 250} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Errorf("Percentile([7], %v) = %v, want 7 (a single element is every percentile of itself)", p, got)
		}
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // population variance 4, n = 8
	if got, want := SampleVariance(xs), 4.0*8/7; !close2(got, want) {
		t.Errorf("SampleVariance = %v, want %v", got, want)
	}
	if got := SampleStdDev(xs); !close2(got, math.Sqrt(4.0*8/7)) {
		t.Errorf("SampleStdDev = %v", got)
	}
	// Bessel's correction: the sample estimate always exceeds the
	// population one for spread data.
	if SampleVariance(xs) <= Variance(xs) {
		t.Error("sample variance should exceed population variance")
	}
}

// TestReplicationsUseSampleStdDev pins the across-replication aggregator
// to the n-1 estimator: replications sample the seed population, so the
// population formula would understate the error bars.
func TestReplicationsUseSampleStdDev(t *testing.T) {
	var r Replications
	samples := []float64{10, 12, 8, 10}
	for _, v := range samples {
		r.Add(v)
	}
	if got, want := r.StdDev(), SampleStdDev(samples); !close2(got, want) {
		t.Errorf("Replications.StdDev = %v, want sample estimate %v", got, want)
	}
	// n = 4 → df = 3 → t critical 3.182, not the normal 1.96.
	if got, want := r.CI95(), 3.182*SampleStdDev(samples)/2; !close2(got, want) {
		t.Errorf("Replications.CI95 = %v, want %v", got, want)
	}
}

// TestTCritical95 pins the Student-t critical values against known
// t-table quantiles (two-tailed, 95%), including the conservative
// round-down for untabulated df and the normal limit for large df. The
// pre-fix code used 1.96 for every n — at the paper suite's 3–10
// replications that understated intervals by up to ~30%.
func TestTCritical95(t *testing.T) {
	tests := []struct {
		df   int
		want float64
	}{
		{1, 12.706},
		{2, 4.303}, // n = 3, the committed paper profile
		{4, 2.776},
		{9, 2.262}, // n = 10, the paper's own replication count
		{29, 2.045},
		{30, 2.042},
		{35, 2.042},  // untabulated: rounds down to df 30
		{45, 2.021},  // untabulated: rounds down to df 40
		{119, 1.984}, // untabulated: rounds down to df 100
		{120, 1.980},
		{121, 1.96}, // normal limit
		{1000, 1.96},
		{0, 12.706},  // clamped to df 1
		{-3, 12.706}, // clamped to df 1
	}
	for _, tt := range tests {
		if got := TCritical95(tt.df); !close2(got, tt.want) {
			t.Errorf("TCritical95(%d) = %v, want %v", tt.df, got, tt.want)
		}
	}
	// The critical value must never fall below the normal limit, and must
	// shrink monotonically toward it.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := TCritical95(df)
		if v < 1.96 {
			t.Fatalf("TCritical95(%d) = %v below the normal limit", df, v)
		}
		if v > prev {
			t.Fatalf("TCritical95 not monotone at df %d: %v > %v", df, v, prev)
		}
		prev = v
	}
}

// TestCI95StudentT pins the full CI95 computation on a known sample:
// {1,2,3} has sample stddev 1, n 3, df 2 → half-width 4.303/sqrt(3).
func TestCI95StudentT(t *testing.T) {
	var r Replications
	for _, v := range []float64{1, 2, 3} {
		r.Add(v)
	}
	want := 4.303 / math.Sqrt(3)
	if got := r.CI95(); !close2(got, want) {
		t.Errorf("CI95 = %v, want %v (Student-t, df 2)", got, want)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 4}, {-5, 1}, {200, 4},
		{50, 2.5},
		{25, 1.75},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !close2(got, tt.want) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// Input not mutated.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
}

func TestSortedAscending(t *testing.T) {
	xs := []float64{3, 1, 2}
	got := SortedAscending(xs)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("SortedAscending = %v", got)
	}
	if xs[0] != 3 {
		t.Error("input mutated")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Correlation(xs, []float64{2, 4, 6, 8}); !close2(got, 1) {
		t.Errorf("perfect positive correlation = %v", got)
	}
	if got := Correlation(xs, []float64{8, 6, 4, 2}); !close2(got, -1) {
		t.Errorf("perfect negative correlation = %v", got)
	}
	if got := Correlation(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", got)
	}
	if got := Correlation(xs, []float64{1, 2}); got != 0 {
		t.Errorf("mismatched-length correlation = %v, want 0", got)
	}
	if got := Correlation(nil, nil); got != 0 {
		t.Errorf("empty correlation = %v, want 0", got)
	}
}

func TestReplications(t *testing.T) {
	var r Replications
	if r.N() != 0 || r.CI95() != 0 {
		t.Error("zero-value Replications broken")
	}
	for _, v := range []float64{10, 12, 8, 10} {
		r.Add(v)
	}
	if r.N() != 4 || r.Mean() != 10 {
		t.Errorf("N=%d Mean=%v", r.N(), r.Mean())
	}
	if r.CI95() <= 0 {
		t.Error("CI95 should be positive with spread")
	}
	// CI shrinks with more identical-spread data.
	var big Replications
	for i := 0; i < 16; i++ {
		big.Add([]float64{10, 12, 8, 10}[i%4])
	}
	if big.CI95() >= r.CI95() {
		t.Errorf("CI95 did not shrink: %v vs %v", big.CI95(), r.CI95())
	}
}

// Property: variance is invariant under translation and scales
// quadratically.
func TestVarianceProperties(t *testing.T) {
	prop := func(raw []int8, shift int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			shifted[i] = float64(v) + float64(shift)
			scaled[i] = 3 * float64(v)
		}
		v := Variance(xs)
		return close2(Variance(shifted), v) && math.Abs(Variance(scaled)-9*v) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Min <= Mean <= Max and Percentile(0/100) hit Min/Max.
func TestOrderingProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		lo, hi, m := Min(xs), Max(xs), Mean(xs)
		return lo <= m+1e-9 && m <= hi+1e-9 &&
			Percentile(xs, 0) == lo && Percentile(xs, 100) == hi
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
