package trace

import (
	"io"
	"testing"
)

// BenchmarkWriterEmit measures the per-event cost of the NDJSON encoder —
// the dominant term of enabled-tracing overhead (DESIGN.md §11).
func BenchmarkWriterEmit(b *testing.B) {
	w := NewWriter(io.Discard)
	e := Event{Seq: 123456, At: 987654321, Node: 17, Kind: KindPhyDrop,
		Detail: "collision from=n3 to=n9"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Seq = uint64(i)
		w.Emit(e)
	}
}

// BenchmarkWriterEmitBare is the detail-free variant (wake/sleep events).
func BenchmarkWriterEmitBare(b *testing.B) {
	w := NewWriter(io.Discard)
	e := Event{Seq: 1, At: 987654321, Node: 17, Kind: KindWake}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Seq = uint64(i)
		w.Emit(e)
	}
}
