package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// writerSafeKind reports whether Writer can emit the kind verbatim: kinds
// are written unescaped, so only plain printable ASCII without quotes or
// backslashes round-trips (the package constants all qualify).
func writerSafeKind(k Kind) bool {
	for i := 0; i < len(k); i++ {
		if c := k[i]; c < 0x20 || c > 0x7E || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// FuzzReadEvents throws arbitrary bytes at the NDJSON parser. Properties:
// no panic; a parse error is either positioned ("line N") or the
// truncation sentinel; and whatever parses cleanly must survive a
// Writer→ReadEvents round trip event-for-event (for events whose Kind the
// writer can represent).
func FuzzReadEvents(f *testing.F) {
	f.Add([]byte(`{"seq":1,"atMicros":100,"node":0,"kind":"originate","pkt":"0:1:1"}` + "\n"))
	f.Add([]byte(`{"seq":1,"atMicros":1,"node":2,"kind":"lottery","detail":"from=n1 level=randomized stay-awake"}` + "\n" +
		`{"seq":2,"atMicros":1,"node":3,"kind":"phy-drop","detail":"fault-lost from=n0 to=n3"}` + "\n"))
	f.Add([]byte("\n\n{\"seq\":7,\"atMicros\":-5,\"node\":-1,\"kind\":\"wake\"}\n  \t\n"))
	f.Add([]byte(`{"seq":3,"atMicros":300,"node":2,"ki`)) // truncated mid-key
	f.Add([]byte(`{"seq":1,"atMicros":0,"node":0,"kind":"crash","detail":42}` + "\n"))
	f.Add([]byte(`{"seq":1,"atMicros":0,"node":0,"kind":"drop","detail":{"a":[1,2]}}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte(`{"seq":18446744073709551615,"atMicros":9223372036854775807,"node":2147483647,"kind":"death"}` + "\n"))
	f.Add([]byte(`{"detail":"é <&>"}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			if !strings.Contains(err.Error(), "line ") && !errors.Is(err, ErrTruncated) {
				t.Fatalf("unpositioned parse error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		skipped := false
		var kept []Event
		for _, e := range evs {
			if !writerSafeKind(e.Kind) {
				skipped = true
				continue
			}
			w.Emit(e)
			kept = append(kept, e)
		}
		back, rerr := ReadEvents(&buf)
		if rerr != nil {
			t.Fatalf("re-read of writer output failed: %v", rerr)
		}
		if len(back) != len(kept) {
			t.Fatalf("round trip kept %d of %d events (skipped unsafe kinds: %v)", len(back), len(kept), skipped)
		}
		for i := range kept {
			if back[i] != kept[i] {
				t.Fatalf("event %d round-tripped as %+v, want %+v", i, back[i], kept[i])
			}
		}
	})
}
