package trace

import (
	"errors"
	"strings"
	"testing"
)

// TestReadEventsTruncatedFinalLine pins the salvage behaviour for a
// producer killed mid-write: the complete prefix is returned and the
// error wraps ErrTruncated. The pre-hardening parser (bufio.Scanner +
// hard abort) returned nil events and a generic unmarshal error.
func TestReadEventsTruncatedFinalLine(t *testing.T) {
	in := `{"seq":1,"atMicros":100,"node":0,"kind":"wake"}
{"seq":2,"atMicros":200,"node":1,"kind":"sleep"}
{"seq":3,"atMicros":300,"node":2,"ki`
	evs, err := ReadEvents(strings.NewReader(in))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error does not locate the cut: %v", err)
	}
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Kind != KindSleep {
		t.Fatalf("salvaged prefix = %+v, want the 2 complete events", evs)
	}
}

// TestReadEventsFinalLineNoNewline: a last line that is complete JSON but
// lacks its newline is a valid event, not a truncation.
func TestReadEventsFinalLineNoNewline(t *testing.T) {
	in := `{"seq":1,"atMicros":100,"node":0,"kind":"wake"}
{"seq":2,"atMicros":200,"node":1,"kind":"sleep"}`
	evs, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[1].Seq != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
}

// TestReadEventsMalformedDetail: a detail field of the wrong JSON type
// degrades to its raw token instead of aborting the parse. The
// pre-hardening parser unmarshalled straight into Event and errored on
// the whole stream.
func TestReadEventsMalformedDetail(t *testing.T) {
	in := `{"seq":1,"atMicros":100,"node":0,"kind":"crash","detail":12345}
{"seq":2,"atMicros":200,"node":1,"kind":"drop","detail":{"reason":"ttl"}}
{"seq":3,"atMicros":300,"node":2,"kind":"wake","detail":null}
{"seq":4,"atMicros":400,"node":3,"kind":"sleep","detail":"doze"}
`
	evs, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Detail != "12345" {
		t.Fatalf("numeric detail = %q, want raw token \"12345\"", evs[0].Detail)
	}
	if evs[1].Detail != `{"reason":"ttl"}` {
		t.Fatalf("object detail = %q, want raw token", evs[1].Detail)
	}
	if evs[2].Detail != "" {
		t.Fatalf("null detail = %q, want empty", evs[2].Detail)
	}
	if evs[3].Detail != "doze" {
		t.Fatalf("string detail = %q, want \"doze\"", evs[3].Detail)
	}
}

// TestReadEventsNoLineCap: the parser must accept lines far beyond the
// old 4MiB bufio.Scanner cap — Detail has no length contract. The
// pre-hardening parser failed with "token too long".
func TestReadEventsNoLineCap(t *testing.T) {
	detail := strings.Repeat("x", 5*1024*1024)
	in := `{"seq":1,"atMicros":100,"node":0,"kind":"drop","detail":"` + detail + "\"}\n"
	evs, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || len(evs[0].Detail) != len(detail) {
		t.Fatalf("oversized line did not round-trip")
	}
}

// TestReadEventsWhitespaceLines: lines of spaces/tabs/CR are skipped the
// same way blank lines are, and line numbers in errors still count
// physical lines.
func TestReadEventsWhitespaceLines(t *testing.T) {
	in := "  \t \r\n{\"seq\":1,\"atMicros\":1,\"node\":0,\"kind\":\"wake\"}\r\n   \nnope\n"
	evs, err := ReadEvents(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("err = %v, want a line-4 parse error", err)
	}
	if len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("parsed prefix = %+v, want the one good event", evs)
	}
}

// TestWriterFirstEventAtMinusOne pins a FuzzReadEvents find: the
// timestamp render cache used lastAt == -1 as its "empty" sentinel, so a
// first event at At == -1 reused the uninitialized (empty) buffer and
// emitted `"atMicros":,` — invalid JSON.
func TestWriterFirstEventAtMinusOne(t *testing.T) {
	var buf strings.Builder
	w := NewWriter(&buf)
	w.Emit(Event{Seq: 1, At: -1, Node: 0, Kind: KindWake})
	evs, err := ReadEvents(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("writer output unparseable: %v\n%s", err, buf.String())
	}
	if len(evs) != 1 || evs[0].At != -1 {
		t.Fatalf("round trip = %+v", evs)
	}
}

func TestCounterSnapshot(t *testing.T) {
	c := NewCounter()
	c.Emit(Event{Kind: KindDeliver})
	c.Emit(Event{Kind: KindDeliver})
	c.Emit(Event{Kind: KindDrop})
	snap := c.Snapshot()
	if snap[KindDeliver] != 2 || snap[KindDrop] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	snap[KindDeliver] = 99 // must be a copy
	if c.Count(KindDeliver) != 2 {
		t.Fatal("Snapshot aliases the counter's map")
	}
}

func TestSyncCounter(t *testing.T) {
	c := NewSyncCounter()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			c.Emit(Event{Kind: KindDeliver})
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		c.Emit(Event{Kind: KindDrop})
		_ = c.Snapshot()
	}
	<-done
	if c.Count(KindDeliver) != 1000 || c.Count(KindDrop) != 1000 {
		t.Fatalf("counts = %d/%d", c.Count(KindDeliver), c.Count(KindDrop))
	}
}

func TestDiff(t *testing.T) {
	mk := func(n int) []Event {
		evs := make([]Event, n)
		for i := range evs {
			evs[i] = Event{Seq: uint64(i + 1), Kind: KindForward}
		}
		return evs
	}
	if _, diverged := Diff(mk(5), mk(5)); diverged {
		t.Fatal("identical streams diverged")
	}
	b := mk(5)
	b[3].Kind = KindDrop
	d, diverged := Diff(mk(5), b)
	if !diverged || d.Index != 3 || d.A == nil || d.B == nil {
		t.Fatalf("planted divergence: %+v diverged=%v", d, diverged)
	}
	d, diverged = Diff(mk(5), mk(3))
	if !diverged || d.Index != 3 || d.A == nil || d.B != nil {
		t.Fatalf("prefix divergence: %+v diverged=%v", d, diverged)
	}
}
