// Package trace provides structured event tracing for simulations: a
// compact event type, composable sinks (ring buffer, NDJSON writer,
// filters, fan-out), and counters. The scenario package emits
// routing-level events into a configured sink; tooling (cmd/rcast-sim
// -trace) renders them for debugging protocol behaviour.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the scenario wiring.
const (
	KindOriginate Kind = "originate" // application packet enters the network
	KindDeliver   Kind = "deliver"   // end-to-end delivery
	KindForward   Kind = "forward"   // data packet relayed
	KindDrop      Kind = "drop"      // data packet lost (Detail = reason)
	KindControl   Kind = "control"   // routing control transmission (Detail = class)
	KindCache     Kind = "cache"     // route cache insertion (Detail = route)
	KindDeath     Kind = "death"     // battery depletion
	KindCrash     Kind = "crash"     // fault-injected node crash (Detail = flushed count)
	KindRecover   Kind = "recover"   // fault-injected crash recovery
)

// Event is one traced occurrence.
type Event struct {
	At     sim.Time   `json:"atMicros"`
	Node   phy.NodeID `json:"node"`
	Kind   Kind       `json:"kind"`
	Detail string     `json:"detail,omitempty"`
}

// String renders the event for humans.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%12.6fs %-5v %s", e.At.Seconds(), e.Node, e.Kind)
	}
	return fmt.Sprintf("%12.6fs %-5v %-9s %s", e.At.Seconds(), e.Node, e.Kind, e.Detail)
}

// Sink consumes events.
type Sink interface {
	Emit(e Event)
}

// Nop discards all events.
type Nop struct{}

var _ Sink = Nop{}

// Emit implements Sink.
func (Nop) Emit(Event) {}

// Ring keeps the most recent Cap events in memory.
type Ring struct {
	cap    int
	events []Event
	start  int
	total  uint64
}

var _ Sink = (*Ring)(nil)

// NewRing creates a ring buffer holding up to cap events (min 1).
func NewRing(cap int) *Ring {
	if cap < 1 {
		cap = 1
	}
	return &Ring{cap: cap}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.total++
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start = (r.start + 1) % r.cap
}

// Total returns how many events were emitted (including evicted ones).
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Writer streams events as newline-delimited JSON.
type Writer struct {
	w   io.Writer
	enc *json.Encoder
}

var _ Sink = (*Writer)(nil)

// NewWriter creates an NDJSON sink.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, enc: json.NewEncoder(w)}
}

// Emit implements Sink. Encoding errors are deliberately swallowed: a
// tracing sink must never perturb the simulation.
func (t *Writer) Emit(e Event) { _ = t.enc.Encode(e) }

// Filter passes only events the predicate accepts.
type Filter struct {
	Next Sink
	Keep func(Event) bool
}

var _ Sink = Filter{}

// Emit implements Sink.
func (f Filter) Emit(e Event) {
	if f.Next == nil || (f.Keep != nil && !f.Keep(e)) {
		return
	}
	f.Next.Emit(e)
}

// Multi fans events out to several sinks.
type Multi []Sink

var _ Sink = Multi{}

// Emit implements Sink.
func (m Multi) Emit(e Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(e)
		}
	}
}

// Counter tallies events by kind.
type Counter struct {
	counts map[Kind]uint64
}

var _ Sink = (*Counter)(nil)

// NewCounter creates a counting sink.
func NewCounter() *Counter {
	return &Counter{counts: make(map[Kind]uint64)}
}

// Emit implements Sink.
func (c *Counter) Emit(e Event) { c.counts[e.Kind]++ }

// Count returns the tally for one kind.
func (c *Counter) Count(k Kind) uint64 { return c.counts[k] }
