// Package trace provides packet-lifecycle tracing for simulations: a
// compact event type keyed by packet UID and node ID, composable sinks
// (ring buffer, NDJSON writer, in-memory recorder, filters, fan-out) and
// counters. The scenario package threads a configured sink through every
// layer — routing (originate/forward/deliver/drop/salvage, cache
// insert/evict), MAC (enqueue, ATIM advertisements, the overhearing
// lottery, sleep/wake transitions) and PHY (loss classification) — so a
// packet's whole life can be reconstructed. Tooling (cmd/rcast-sim
// -trace, cmd/rcast-bench -trace, tools/tracediff) renders and diffs the
// streams for debugging protocol behaviour.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Kind classifies an event. Custom kinds must be plain printable ASCII
// without quotes or backslashes: Writer emits them unescaped.
type Kind string

// Event kinds emitted by the scenario wiring.
const (
	// Routing-level lifecycle.
	KindOriginate  Kind = "originate"   // application packet enters the network
	KindDeliver    Kind = "deliver"     // end-to-end delivery
	KindForward    Kind = "forward"     // data packet relayed
	KindDrop       Kind = "drop"        // data packet lost (Detail = reason)
	KindSalvage    Kind = "salvage"     // data packet re-routed after a link failure
	KindControl    Kind = "control"     // routing control transmission (Detail = class)
	KindCache      Kind = "cache"       // route cache insertion (Detail = route)
	KindCacheEvict Kind = "cache-evict" // route cache capacity eviction (Detail = route)

	// MAC-level lifecycle (PSM family).
	KindEnqueue Kind = "enqueue" // packet queued at the MAC (Detail = dst/class)
	KindAtim    Kind = "atim"    // ATIM advertisement sent (Detail = dst/level)
	KindLottery Kind = "lottery" // overhearing lottery outcome (Detail = from/level/verdict)
	KindWake    Kind = "wake"    // station woke for a beacon's ATIM window
	KindSleep   Kind = "sleep"   // station dozed for a data phase

	// PHY-level loss classification.
	KindPhyDrop Kind = "phy-drop" // frame lost at a receiver (Detail = reason + endpoints)

	// Node lifecycle.
	KindDeath   Kind = "death"   // battery depletion
	KindCrash   Kind = "crash"   // fault-injected node crash (Detail = flushed count)
	KindRecover Kind = "recover" // fault-injected crash recovery
)

// Event is one traced occurrence. Seq is a per-run sequence number
// assigned by the emitting world in scheduler order, so two traces of the
// same configuration align event-for-event and the first differing Seq is
// the first divergence. Pkt, when the event concerns one application data
// packet, is its UID "src:flow:seq" — the same identity the invariant
// auditor uses — so one grep reconstructs a packet's life.
type Event struct {
	Seq    uint64     `json:"seq"`
	At     sim.Time   `json:"atMicros"`
	Node   phy.NodeID `json:"node"`
	Kind   Kind       `json:"kind"`
	Pkt    string     `json:"pkt,omitempty"`
	Detail string     `json:"detail,omitempty"`
}

// PacketUID renders the end-to-end identity of an application data packet
// (source node, flow, per-source sequence number). Built with strconv
// rather than fmt: this runs once per traced routing event and sits on
// the enabled-tracing hot path.
func PacketUID(src phy.NodeID, flow, seq uint64) string {
	b := make([]byte, 0, 24)
	b = strconv.AppendInt(b, int64(src), 10)
	b = append(b, ':')
	b = strconv.AppendUint(b, flow, 10)
	b = append(b, ':')
	b = strconv.AppendUint(b, seq, 10)
	return string(b)
}

// String renders the event for humans.
func (e Event) String() string {
	s := fmt.Sprintf("%12.6fs %-5v %-9s", e.At.Seconds(), e.Node, e.Kind)
	if e.Pkt != "" {
		s += " pkt=" + e.Pkt
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Sink consumes events.
type Sink interface {
	Emit(e Event)
}

// Nop discards all events.
type Nop struct{}

var _ Sink = Nop{}

// Emit implements Sink.
func (Nop) Emit(Event) {}

// Ring keeps the most recent Cap events in memory.
type Ring struct {
	cap    int
	events []Event
	start  int
	total  uint64
}

var _ Sink = (*Ring)(nil)

// NewRing creates a ring buffer holding up to cap events (min 1).
func NewRing(cap int) *Ring {
	if cap < 1 {
		cap = 1
	}
	return &Ring{cap: cap}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.total++
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start = (r.start + 1) % r.cap
}

// Total returns how many events were emitted (including evicted ones).
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Recorder retains every emitted event in order — the sink tracediff and
// the golden-trace tests run simulations into. Unlike Ring it is
// unbounded; use it only for runs whose volume is known to fit in memory.
type Recorder struct {
	events []Event
}

var _ Sink = (*Recorder)(nil)

// NewRecorder creates an unbounded recording sink.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Sink.
func (r *Recorder) Emit(e Event) { r.events = append(r.events, e) }

// Events returns the recorded events in emission order. The returned
// slice is the recorder's backing store; do not mutate it.
func (r *Recorder) Events() []Event { return r.events }

// Writer streams events as newline-delimited JSON. The encoder is
// hand-rolled over a reused buffer instead of encoding/json: a full-rate
// trace emits one line per MAC/PHY event and reflective marshalling
// dominated the enabled-tracing overhead. The output is byte-identical
// to what encoding/json produced for these events (ReadEvents accepts
// both, and the golden-trace test pins the bytes).
type Writer struct {
	w   io.Writer
	buf []byte

	// Timestamp render cache: consecutive events frequently share a
	// scheduler instant (every station waking at one beacon tick), so the
	// decimal rendering of At is reused until the clock moves. atCached
	// (not a sentinel At value) marks validity: FuzzReadEvents caught a
	// first event at At == -1 colliding with a -1 sentinel and emitting
	// an empty timestamp.
	lastAt    sim.Time
	lastAtBuf []byte
	atCached  bool
}

var _ Sink = (*Writer)(nil)

// NewWriter creates an NDJSON sink.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, 256)}
}

// Emit implements Sink. Encoding errors are deliberately swallowed: a
// tracing sink must never perturb the simulation.
func (t *Writer) Emit(e Event) {
	if !t.atCached || e.At != t.lastAt {
		t.lastAt = e.At
		t.atCached = true
		t.lastAtBuf = strconv.AppendInt(t.lastAtBuf[:0], int64(e.At), 10)
	}
	b := t.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"atMicros":`...)
	b = append(b, t.lastAtBuf...)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	// Kinds are package constants and never need escaping.
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind...)
	b = append(b, '"')
	if e.Pkt != "" {
		b = append(b, `,"pkt":`...)
		b = appendJSONString(b, e.Pkt)
	}
	if e.Detail != "" {
		b = append(b, `,"detail":`...)
		b = appendJSONString(b, e.Detail)
	}
	b = append(b, '}', '\n')
	t.buf = b
	_, _ = t.w.Write(b)
}

// appendJSONString appends s as a JSON string. Every string the tracer
// emits is plain ASCII without quotes or backslashes, so the fast path is
// a straight copy; anything else (including <, > and & so the bytes match
// encoding/json's HTML-escaping default) defers to encoding/json.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c > 0x7E || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, err := json.Marshal(s)
			if err != nil {
				return append(b, `""`...)
			}
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// ErrTruncated marks a trace whose final line was cut mid-write — the
// common shape of a crashed or killed producer. ReadEvents returns it
// (wrapped, with the line number) alongside every event parsed before the
// cut, so callers can salvage the prefix: errors.Is(err, ErrTruncated).
var ErrTruncated = errors.New("truncated final line")

// wireEvent mirrors Event with a lazily-decoded detail field, so a
// malformed detail (wrong JSON type, e.g. a bare number from a sloppy
// producer) degrades to its raw text instead of aborting the parse.
type wireEvent struct {
	Seq    uint64          `json:"seq"`
	At     sim.Time        `json:"atMicros"`
	Node   phy.NodeID      `json:"node"`
	Kind   Kind            `json:"kind"`
	Pkt    string          `json:"pkt,omitempty"`
	Detail json.RawMessage `json:"detail,omitempty"`
}

// parseLine decodes one NDJSON line into an Event.
func parseLine(b []byte) (Event, error) {
	var w wireEvent
	if err := json.Unmarshal(b, &w); err != nil {
		return Event{}, err
	}
	e := Event{Seq: w.Seq, At: w.At, Node: w.Node, Kind: w.Kind, Pkt: w.Pkt}
	if len(w.Detail) > 0 {
		if w.Detail[0] == '"' {
			// A well-formed JSON string (the outer unmarshal already
			// validated it) — unquote.
			if err := json.Unmarshal(w.Detail, &e.Detail); err != nil {
				e.Detail = strings.ToValidUTF8(string(w.Detail), "�")
			}
		} else if !bytes.Equal(w.Detail, []byte("null")) {
			// Wrong type (number, bool, object…): keep the raw token so
			// the event survives and the oddity stays visible. Invalid
			// UTF-8 inside the token is coerced to U+FFFD — json.Marshal
			// does that anyway on write-out, so sanitizing here keeps
			// read→write→read byte-stable.
			e.Detail = strings.ToValidUTF8(string(w.Detail), "�")
		}
	}
	return e, nil
}

// ReadEvents parses an NDJSON stream as produced by Writer. Blank and
// whitespace-only lines are skipped and there is no line-length cap (a
// Detail field can legally be arbitrarily long). The first malformed line
// aborts with its line number — except a final line cut off without its
// newline, which returns every event parsed so far plus a wrapped
// ErrTruncated, so a trace from a crashed producer yields its usable
// prefix instead of nothing.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	br := bufio.NewReaderSize(r, 64*1024)
	line := 0
	for {
		b, err := br.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return out, fmt.Errorf("trace: read: %w", err)
		}
		if len(b) > 0 {
			line++
		}
		b = bytes.TrimSpace(b)
		if len(b) > 0 {
			e, perr := parseLine(b)
			if perr != nil {
				if atEOF {
					// The producer died mid-line: salvage the prefix.
					return out, fmt.Errorf("trace: line %d: %w", line, ErrTruncated)
				}
				return out, fmt.Errorf("trace: line %d: %w", line, perr)
			}
			out = append(out, e)
		}
		if atEOF {
			return out, nil
		}
	}
}

// Filter passes only events the predicate accepts.
type Filter struct {
	Next Sink
	Keep func(Event) bool
}

var _ Sink = Filter{}

// Emit implements Sink.
func (f Filter) Emit(e Event) {
	if f.Next == nil || (f.Keep != nil && !f.Keep(e)) {
		return
	}
	f.Next.Emit(e)
}

// Multi fans events out to several sinks.
type Multi []Sink

var _ Sink = Multi{}

// Emit implements Sink.
func (m Multi) Emit(e Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(e)
		}
	}
}

// Counter tallies events by kind.
type Counter struct {
	counts map[Kind]uint64
}

var _ Sink = (*Counter)(nil)

// NewCounter creates a counting sink.
func NewCounter() *Counter {
	return &Counter{counts: make(map[Kind]uint64)}
}

// Emit implements Sink.
func (c *Counter) Emit(e Event) { c.counts[e.Kind]++ }

// Count returns the tally for one kind.
func (c *Counter) Count(k Kind) uint64 { return c.counts[k] }

// Snapshot returns a copy of every non-zero tally.
func (c *Counter) Snapshot() map[Kind]uint64 {
	out := make(map[Kind]uint64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// SyncCounter is a Counter safe for concurrent Emit/Count/Snapshot — the
// sink rcast-serve hangs off running traced jobs, where the simulation
// goroutine emits while HTTP handlers read tallies.
type SyncCounter struct {
	mu     sync.Mutex
	counts map[Kind]uint64
}

var _ Sink = (*SyncCounter)(nil)

// NewSyncCounter creates a concurrency-safe counting sink.
func NewSyncCounter() *SyncCounter {
	return &SyncCounter{counts: make(map[Kind]uint64)}
}

// Emit implements Sink.
func (c *SyncCounter) Emit(e Event) {
	c.mu.Lock()
	c.counts[e.Kind]++
	c.mu.Unlock()
}

// Count returns the tally for one kind.
func (c *SyncCounter) Count(k Kind) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

// Snapshot returns a copy of every non-zero tally.
func (c *SyncCounter) Snapshot() map[Kind]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Kind]uint64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Divergence locates the first difference between two event streams.
type Divergence struct {
	Index int    // 0-based position of the first differing event
	A, B  *Event // nil when that side's stream ended first
}

// Diff compares two traces event-for-event and returns the first
// divergence; ok is false when the streams are identical. Events are
// compared in full — sequence number, time, node, kind, packet UID and
// detail — so any behavioural difference between two runs surfaces at
// the earliest event it touches. tools/tracediff, tools/tracegate and
// the replay engine all report through this one comparison.
func Diff(a, b []Event) (Divergence, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return Divergence{Index: i, A: &a[i], B: &b[i]}, true
		}
	}
	if len(a) == len(b) {
		return Divergence{}, false
	}
	d := Divergence{Index: n}
	if len(a) > n {
		d.A = &a[n]
	}
	if len(b) > n {
		d.B = &b[n]
	}
	return d, true
}
