package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rcast/internal/sim"
)

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Emit(Event{At: sim.Time(i), Kind: KindDeliver})
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, want := range []sim.Time{3, 4, 5} {
		if got[i].At != want {
			t.Fatalf("events = %v", got)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Emit(Event{At: 1})
	r.Emit(Event{At: 2})
	got := r.Events()
	if len(got) != 1 || got[0].At != 2 {
		t.Fatalf("events = %v", got)
	}
}

func TestWriterEmitsNDJSON(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{At: 1500000, Node: 3, Kind: KindDrop, Detail: "no-route"})
	w.Emit(Event{At: 2000000, Node: 4, Kind: KindDeliver})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var decoded Event
	if err := json.Unmarshal([]byte(lines[0]), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Kind != KindDrop || decoded.Detail != "no-route" || decoded.At != 1500000 {
		t.Fatalf("decoded = %+v", decoded)
	}
}

func TestFilter(t *testing.T) {
	c := NewCounter()
	f := Filter{Next: c, Keep: func(e Event) bool { return e.Kind == KindDrop }}
	f.Emit(Event{Kind: KindDrop})
	f.Emit(Event{Kind: KindDeliver})
	f.Emit(Event{Kind: KindDrop})
	if c.Count(KindDrop) != 2 || c.Count(KindDeliver) != 0 {
		t.Fatalf("counts: drop=%d deliver=%d", c.Count(KindDrop), c.Count(KindDeliver))
	}
	// Nil next must not panic; nil Keep is the identity filter.
	Filter{}.Emit(Event{Kind: KindDrop})
	Filter{Next: c}.Emit(Event{Kind: KindCache})
	if c.Count(KindCache) != 1 {
		t.Fatal("nil Keep should pass everything through")
	}
}

func TestMultiAndNop(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	m := Multi{a, nil, b, Nop{}}
	m.Emit(Event{Kind: KindForward})
	if a.Count(KindForward) != 1 || b.Count(KindForward) != 1 {
		t.Fatal("fan-out failed")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1500000, Node: 3, Kind: KindDrop, Detail: "no-route"}
	s := e.String()
	if !strings.Contains(s, "1.500000s") || !strings.Contains(s, "drop") || !strings.Contains(s, "no-route") {
		t.Fatalf("String = %q", s)
	}
	bare := Event{At: 0, Node: 1, Kind: KindForward}
	if !strings.Contains(bare.String(), "forward") {
		t.Fatalf("String = %q", bare.String())
	}
}

func TestRecorderWriterReadEventsRoundTrip(t *testing.T) {
	want := []Event{
		{Seq: 1, At: 100, Node: 0, Kind: KindOriginate, Pkt: "0:1:1"},
		{Seq: 2, At: 250, Node: 2, Kind: KindAtim, Detail: "to=3 level=randomized"},
		{Seq: 3, At: 900, Node: 3, Kind: KindDeliver, Pkt: "0:1:1", Detail: "hops=2"},
	}
	rec := NewRecorder()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range want {
		rec.Emit(e)
		w.Emit(e)
	}
	if got := rec.Events(); len(got) != len(want) {
		t.Fatalf("recorder kept %d events, want %d", len(got), len(want))
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d round-tripped as %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{\"seq\":1}\nnot json\n")); err == nil {
		t.Fatal("garbage line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not locate the bad line: %v", err)
	}
	// Blank lines are tolerated (trailing newline from the writer).
	evs, err := ReadEvents(strings.NewReader("\n{\"seq\":1}\n\n"))
	if err != nil || len(evs) != 1 {
		t.Fatalf("blank-line handling: %v, %d events", err, len(evs))
	}
}

func TestPacketUID(t *testing.T) {
	if got := PacketUID(4, 2, 17); got != "4:2:17" {
		t.Fatalf("PacketUID = %q", got)
	}
}

// TestNopEmit pins that the discard sink accepts events directly (not
// just through Multi's interface dispatch).
func TestNopEmit(t *testing.T) {
	var n Nop
	n.Emit(Event{Kind: KindWake})
}

// TestEventStringWithPkt covers the packet-UID branch of the human
// rendering.
func TestEventStringWithPkt(t *testing.T) {
	e := Event{At: 2000000, Node: 1, Kind: KindDeliver, Pkt: "0:1:2", Detail: "src=n0 hops=3"}
	s := e.String()
	if !strings.Contains(s, "pkt=0:1:2") || !strings.Contains(s, "hops=3") {
		t.Fatalf("String = %q", s)
	}
}

// TestWriterMatchesEncodingJSON pins the hand-rolled encoder against
// encoding/json for strings that need escaping: quotes, backslashes,
// control characters, non-ASCII, and the HTML-escaped set. The NDJSON
// stream must stay byte-identical to what a json.Encoder produces.
func TestWriterMatchesEncodingJSON(t *testing.T) {
	details := []string{
		"plain ascii",
		`has "quotes"`,
		`back\slash`,
		"tab\tand\nnewline",
		"non-ascii \u00e9\u4e16",
		"html <b>&</b>",
		"",
	}
	for _, d := range details {
		e := Event{Seq: 9, At: 1234567, Node: 4, Kind: KindDrop, Pkt: d, Detail: d}
		var got bytes.Buffer
		w := NewWriter(&got)
		w.Emit(e)

		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(e); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("detail %q:\n writer  %s encoder %s", d, got.String(), want.String())
		}
	}
}
