package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rcast/internal/sim"
)

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Emit(Event{At: sim.Time(i), Kind: KindDeliver})
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, want := range []sim.Time{3, 4, 5} {
		if got[i].At != want {
			t.Fatalf("events = %v", got)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Emit(Event{At: 1})
	r.Emit(Event{At: 2})
	got := r.Events()
	if len(got) != 1 || got[0].At != 2 {
		t.Fatalf("events = %v", got)
	}
}

func TestWriterEmitsNDJSON(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{At: 1500000, Node: 3, Kind: KindDrop, Detail: "no-route"})
	w.Emit(Event{At: 2000000, Node: 4, Kind: KindDeliver})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var decoded Event
	if err := json.Unmarshal([]byte(lines[0]), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Kind != KindDrop || decoded.Detail != "no-route" || decoded.At != 1500000 {
		t.Fatalf("decoded = %+v", decoded)
	}
}

func TestFilter(t *testing.T) {
	c := NewCounter()
	f := Filter{Next: c, Keep: func(e Event) bool { return e.Kind == KindDrop }}
	f.Emit(Event{Kind: KindDrop})
	f.Emit(Event{Kind: KindDeliver})
	f.Emit(Event{Kind: KindDrop})
	if c.Count(KindDrop) != 2 || c.Count(KindDeliver) != 0 {
		t.Fatalf("counts: drop=%d deliver=%d", c.Count(KindDrop), c.Count(KindDeliver))
	}
	// Nil next must not panic; nil Keep is the identity filter.
	Filter{}.Emit(Event{Kind: KindDrop})
	Filter{Next: c}.Emit(Event{Kind: KindCache})
	if c.Count(KindCache) != 1 {
		t.Fatal("nil Keep should pass everything through")
	}
}

func TestMultiAndNop(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	m := Multi{a, nil, b, Nop{}}
	m.Emit(Event{Kind: KindForward})
	if a.Count(KindForward) != 1 || b.Count(KindForward) != 1 {
		t.Fatal("fan-out failed")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1500000, Node: 3, Kind: KindDrop, Detail: "no-route"}
	s := e.String()
	if !strings.Contains(s, "1.500000s") || !strings.Contains(s, "drop") || !strings.Contains(s, "no-route") {
		t.Fatalf("String = %q", s)
	}
	bare := Event{At: 0, Node: 1, Kind: KindForward}
	if !strings.Contains(bare.String(), "forward") {
		t.Fatalf("String = %q", bare.String())
	}
}
